// Why guess-and-double instead of estimating tmix? — the paper's argument,
// executable.
//
// Related work [29] (Molla & Pandurangan) can estimate the mixing time
// distributedly, but the paper points out it "requires Omega(m) messages and
// hence cannot be used for the purpose of achieving a small message
// complexity". This example makes that concrete on one graph: it runs
//   (a) the [29]-style estimator (BFS tree + walk-distribution convergecast),
//   (b) estimate-then-elect (estimator + the known-tmix election of [25]),
//   (c) the paper's guess-and-double election, which never learns tmix,
// and prints the message bill of each.
//
//   ./build/examples/mixing_time_probe [n] [seed]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "wcle/baselines/known_tmix.hpp"
#include "wcle/baselines/tmix_estimator.hpp"
#include "wcle/core/leader_election.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/graph/spectral.hpp"

int main(int argc, char** argv) {
  using namespace wcle;
  const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 256;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  const Graph g = make_clique(n);  // dense: where the contrast is starkest
  std::cout << "graph: " << g.describe() << "\n";
  const std::uint64_t exact = mixing_time_exact(g, 1u << 16);
  std::cout << "exact tmix (centralized reference): " << exact << "\n\n";

  // (a) distributed estimation.
  const TmixEstimateResult est = run_tmix_estimator(g, 0, seed);
  std::cout << "[29]-style estimator: t ~ " << est.estimate << " after "
            << est.iterations << " doublings, "
            << est.totals.congest_messages << " CONGEST messages ("
            << (est.converged ? "converged" : "NOT converged") << ")\n";

  // (b) estimate-then-elect.
  ElectionParams p;
  p.seed = seed;
  const KnownTmixResult known =
      run_known_tmix_election(g, 2 * est.estimate + 1, p);
  const double est_elect = double(est.totals.congest_messages) +
                           double(known.totals.congest_messages);

  // (c) the paper's algorithm.
  const ElectionResult ours = run_leader_election(g, p);

  std::cout << "\n" << std::left << std::setw(38) << "approach"
            << std::setw(16) << "CONGEST msgs" << "outcome\n"
            << std::string(68, '-') << "\n"
            << std::setw(38) << "estimate tmix [29] + elect [25]"
            << std::setw(16) << static_cast<std::uint64_t>(est_elect)
            << (known.success() ? "1 leader" : "failed") << "\n"
            << std::setw(38) << "paper: guess-and-double election"
            << std::setw(16) << ours.totals.congest_messages
            << (ours.success() ? "1 leader" : "failed") << "\n\n";

  std::cout << "m = " << g.edge_count()
            << " — the estimator's BFS tree alone costs Omega(m), which is "
               "why the paper never estimates tmix.\n";
  return ours.success() ? 0 : 1;
}
