// P2P overlay election — the scenario the paper's introduction motivates:
// large peer-to-peer overlays (Pastry/CAN/Tapestry-style) where scalability
// rules out Omega(m) flooding. Overlay graphs are engineered to be expanders
// (random regular degree ~log n), so the paper's sublinear election applies.
//
// This example compares, on the same overlay, the paper's algorithm against
// flooding election (the classical approach) and then completes the explicit
// variant by broadcasting the leader id — reproducing the paper's conclusion
// that the broadcast, not the election, is the scalable system's bottleneck.
//
//   ./build/examples/p2p_overlay_election [peers] [seed]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "wcle/baselines/candidate_flood.hpp"
#include "wcle/core/explicit_election.hpp"
#include "wcle/graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace wcle;
  const NodeId peers =
      argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 1024;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  // A typical structured-overlay topology: random regular, degree ~ log n.
  std::uint32_t degree = 2;
  while ((NodeId{1} << degree) < peers) ++degree;
  if ((static_cast<std::uint64_t>(peers) * degree) % 2 != 0) ++degree;
  Rng grng(seed);
  const Graph overlay = make_random_regular(peers, degree, grng);
  std::cout << "overlay: " << overlay.describe()
            << " (degree ~ log2 peers)\n\n";

  // --- The paper's algorithm: implicit election + broadcast (Cor. 14).
  ElectionParams params;
  params.seed = seed;
  const ExplicitElectionResult ours = run_explicit_election(overlay, params);

  // --- Classical alternative: candidates flood their ids (Omega(m) regime).
  const CandidateFloodResult flood = run_candidate_flood(overlay, seed);

  std::cout << std::left << std::setw(34) << "approach" << std::setw(16)
            << "CONGEST msgs" << std::setw(10) << "rounds"
            << "outcome\n"
            << std::string(70, '-') << "\n";
  std::cout << std::setw(34) << "paper: implicit election"
            << std::setw(16) << ours.election.totals.congest_messages
            << std::setw(10) << ours.election.totals.rounds
            << (ours.election.success() ? "1 leader" : "failed") << "\n";
  std::cout << std::setw(34) << "paper: + push-pull broadcast"
            << std::setw(16) << ours.broadcast.totals.congest_messages
            << std::setw(10) << ours.broadcast.rounds
            << (ours.broadcast.complete ? "all informed" : "incomplete")
            << "\n";
  std::cout << std::setw(34) << "classical: candidate flooding"
            << std::setw(16) << flood.totals.congest_messages << std::setw(10)
            << flood.rounds << (flood.success() ? "1 leader" : "failed")
            << "\n\n";

  const double bcast_share =
      100.0 * double(ours.broadcast.totals.congest_messages) /
      double(ours.total_congest_messages());
  std::cout << "broadcast share of the explicit variant: " << std::fixed
            << std::setprecision(1) << bcast_share << "%\n"
            << "scaling note: election grows ~sqrt(peers) x polylog while "
               "broadcast and flooding grow ~linearly in peers x degree — at "
            << peers
            << " peers the polylog constants still dominate; the paper's "
               "asymptotic ordering (broadcast > election, election < "
               "flooding) takes over on larger / denser overlays (see "
               "bench_e4 and bench_e9 for the crossovers).\n";
  return ours.success ? 0 : 1;
}
