// wcle_cli — the library as a command-line tool, driven by the algorithm
// registry and the sweep engine: every protocol (the paper's election and
// all baselines) and every experiment (E1-E14) is runnable through one
// surface.
//
//   wcle_cli list                          algorithms + families + specs
//   wcle_cli run    --algo=election --family=expander --n=1024 --seed=7
//                   [--crash=0.2 --linkfail=0.05 --adversary=contenders]
//   wcle_cli trials --algo=flood_max --family=hypercube --n=256 --trials=20
//                   [--threads=8] [--base-seed=1000] [--format=json|csv]
//   wcle_cli sweep  --spec=e1 [--scale=0|1|2] [--format=text|csv|jsonl]
//   wcle_cli sweep  algo=election family=expander n=256,512,1024 trials=5
//                   drop=0,0.05 crash=0,0.2 bandwidth=standard,wide  (grid)
//   wcle_cli bench-baseline [--out=BENCH_sweep.json]   perf-trajectory seed
//
// Legacy commands (pre-registry spellings, kept working):
//   wcle_cli elect    --family=expander --n=1024 --seed=7 [--trials=5]
//   wcle_cli explicit --family=clique --n=512 --seed=3
//   wcle_cli profile  --family=torus --n=256        (tmix / conductance)
//   wcle_cli lowerbound --n=1000 --alpha=0.004      (build G(alpha) + elect)
//   wcle_cli sweep    --family=hypercube --from=64 --to=1024 --trials=3
//                     (doubling-sweep sugar for the grid engine)
//
// Common options: --family=<see `wcle_cli list`> --n= --seed= --c1= --c2=
//                 --wide --paper-schedule --source= --tmix= --budget=
// Unrecognized options produce a warning on stderr (typo protection).
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <ctime>
#include <fstream>
#include <functional>
#include <thread>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "wcle/analysis/cli.hpp"
#include "wcle/analysis/experiment.hpp"
#include "wcle/api/registry.hpp"
#include "wcle/api/scenario.hpp"
#include "wcle/api/serialize.hpp"
#include "wcle/api/sink.hpp"
#include "wcle/api/sweep.hpp"
#include "wcle/api/trials.hpp"
#include "wcle/core/explicit_election.hpp"
#include "wcle/core/leader_election.hpp"
#include "wcle/graph/families.hpp"
#include "wcle/graph/lower_bound_graph.hpp"
#include "wcle/obs/congestion.hpp"
#include "wcle/serve/server.hpp"
#include "wcle/sim/network.hpp"
#include "wcle/obs/perfetto.hpp"
#include "wcle/obs/walks.hpp"
#include "wcle/support/table.hpp"
#include "wcle/trace/reader.hpp"
#include "wcle/trace/recorder.hpp"
#include "wcle/api/replay.hpp"
#include "wcle/trace/summarize.hpp"
#include "wcle/trace/writer.hpp"

namespace {

using namespace wcle;

// get_u64 with a 32-bit range check: --n / --tmix etc. must not silently
// wrap through static_cast (a wrapped-to-zero --tmix would flip known_tmix
// into its "estimate the oracle" path, the opposite of an explicit hint).
std::uint32_t get_u32(const CliArgs& args, const std::string& key,
                      std::uint32_t fallback) {
  const std::uint64_t v = args.get_u64(key, fallback);
  if (v > std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument("--" + key + "=" + std::to_string(v) +
                                " exceeds the 32-bit limit");
  return static_cast<std::uint32_t>(v);
}

/// get_u64 bounded to int for counts (--trials): no silent wrap to 0.
int get_count(const CliArgs& args, const std::string& key, int fallback) {
  const std::uint64_t v =
      args.get_u64(key, static_cast<std::uint64_t>(fallback));
  if (v > static_cast<std::uint64_t>(std::numeric_limits<int>::max()))
    throw std::invalid_argument("--" + key + "=" + std::to_string(v) +
                                " exceeds the supported range");
  return static_cast<int>(v);
}

Graph build_family(const CliArgs& args, const std::string& default_family,
                   NodeId default_n) {
  return make_family(args.get("family", default_family),
                     get_u32(args, "n", default_n), args.get_u64("seed", 1));
}

/// Shared --format parsing: validates against the command's allowed set so
/// run/trials/sweep agree on spelling and error text.
std::string parse_format(const CliArgs& args,
                         const std::vector<std::string>& allowed) {
  const std::string format = args.get("format", allowed.front());
  for (const std::string& name : allowed)
    if (format == name) return format;
  std::string known;
  for (const std::string& name : allowed)
    known += (known.empty() ? "" : ", ") + name;
  throw std::invalid_argument("unknown --format=" + format + " (" + known +
                              ")");
}

/// Shared sink selection for the sweep-style commands ("json" is accepted as
/// an alias for jsonl).
std::unique_ptr<Sink> make_sink(const std::string& format, std::ostream& out) {
  if (format == "text") return std::make_unique<TableSink>(out);
  if (format == "csv") return std::make_unique<CsvSink>(out);
  return std::make_unique<JsonlSink>(out);  // jsonl / json
}

/// --trace=FILE handling shared by run/trials/sweep: an opened stream plus
/// the format-matched writer (JSONL by default, binary for .bin/.btrace or
/// --trace-format=binary). Empty when --trace was not given.
struct TraceOutput {
  // Heap-held so the stream's address survives the move out of open_trace —
  // the writer keeps a pointer to it.
  std::unique_ptr<std::ofstream> file;
  std::unique_ptr<TraceWriter> writer;
  explicit operator bool() const { return writer != nullptr; }
};

TraceOutput open_trace(const CliArgs& args) {
  TraceOutput t;
  const std::string path = args.get("trace", "");
  if (path.empty()) return t;
  const std::string fmt = args.get("trace-format", "");
  TraceFormat format;
  if (fmt.empty()) format = trace_format_for_path(path);
  else if (fmt == "jsonl" || fmt == "json") format = TraceFormat::kJsonl;
  else if (fmt == "binary" || fmt == "bin") format = TraceFormat::kBinary;
  else
    throw std::invalid_argument("unknown --trace-format=" + fmt +
                                " (jsonl, binary)");
  t.file = std::make_unique<std::ofstream>(path, std::ios::binary);
  if (!*t.file) throw std::runtime_error("cannot open --trace=" + path);
  t.writer = make_trace_writer(format, *t.file);
  return t;
}

/// --trace-walks[=K]: the bare flag means K = 1 (record every walk);
/// absent means 0 (walk tracing off).
std::uint32_t get_trace_walks(const CliArgs& args) {
  if (!args.has("trace-walks")) return 0;
  if (args.get("trace-walks", "").empty()) return 1;
  const std::uint32_t k = get_u32(args, "trace-walks", 0);
  if (k == 0)
    throw std::invalid_argument(
        "--trace-walks=0 (use 1 for every walk, or omit the flag)");
  return k;
}

RunOptions options_from(const CliArgs& args) {
  RunOptions opt;
  opt.params.seed = args.get_u64("seed", 1);
  opt.params.c1 = args.get_double("c1", opt.params.c1);
  opt.params.c2 = args.get_double("c2", opt.params.c2);
  // Sampled tracing: keep every K-th round row (purely observational; the
  // traced execution is unchanged). Validated like the spec knob.
  opt.params.trace_every = get_u32(args, "trace-every", 1);
  if (opt.params.trace_every == 0)
    throw std::invalid_argument("--trace-every=0 (use 1 for every round)");
  // Per-walk token tracing (schema v2): emit walk_hop records for sampled
  // origins. Observational like trace-every.
  opt.params.trace_walks = get_trace_walks(args);
  opt.params.wide_messages = args.get_bool("wide", false);
  opt.params.paper_schedule = args.get_bool("paper-schedule", false);
  opt.source = get_u32(args, "source", 0);
  opt.value_bits = get_u32(args, "value-bits", opt.value_bits);
  opt.tmix_hint = get_u32(args, "tmix", 0);
  opt.tmix_multiplier = args.get_double("tmix-mult", opt.tmix_multiplier);
  opt.probe_budget = args.get_u64("budget", 0);
  opt.max_rounds = args.get_u64("max-rounds", 0);
  // Round-engine worker shards (sim/network.hpp): results are bit-identical
  // at any value, so this only moves wall time and pool footprint. 0 is
  // rejected like the spec knob; counts above n clamp with a warning in the
  // commands that know the graph (warn_shard_clamp).
  opt.params.shards = get_u32(args, "shards", 1);
  if (opt.params.shards == 0)
    throw std::invalid_argument(
        "--shards=0 (use 1 for the single-worker engine)");
  // Fault axis (fault/plan.hpp): validated by the Network at run time.
  FaultPlan& f = opt.params.faults;
  f.crash_fraction = args.get_double("crash", 0.0);
  f.crash_round = args.get_u64("crash-round", f.crash_round);
  f.linkfail_fraction = args.get_double("linkfail", 0.0);
  f.linkfail_round = args.get_u64("linkfail-round", f.linkfail_round);
  f.churn_fraction = args.get_double("churn", 0.0);
  f.churn_start = args.get_u64("churn-start", 0);
  f.churn_end = args.get_u64("churn-end", 0);
  f.adversary = args.get("adversary", f.adversary);
  f.validate();
  return opt;
}

/// The user-facing clamp warning for --shards > n. The transport clamps
/// silently (ShardPlan::make) so library callers can pass machine-derived
/// counts; the CLI is where a human typed the number, so it says so.
void warn_shard_clamp(const RunOptions& options, const Graph& g) {
  if (options.params.shards > g.node_count())
    std::cerr << "warning: --shards=" << options.params.shards
              << " exceeds n=" << g.node_count()
              << "; the round engine clamps to one shard per node\n";
}

int cmd_list(const CliArgs& args) {
  const std::string format = parse_format(args, {"text", "json"});
  if (format == "json") {
    // Machine-readable registry listing so external tooling can enumerate
    // scenarios without scraping the aligned table.
    std::cout << "{\"algorithms\":[";
    bool first = true;
    for (const Algorithm* a : AlgorithmRegistry::instance().all()) {
      std::cout << (first ? "" : ",") << "{\"name\":\""
                << json_escape(a->name()) << "\",\"kind\":\""
                << json_escape(kind_name(a->kind())) << "\",\"offline\":"
                << (a->offline() ? "true" : "false") << ",\"caveat\":\""
                << json_escape(a->caveat()) << "\",\"description\":\""
                << json_escape(a->describe()) << "\"}";
      first = false;
    }
    std::cout << "],\"families\":[";
    first = true;
    for (const std::string& f : family_names()) {
      std::cout << (first ? "" : ",") << "\"" << json_escape(f) << "\"";
      first = false;
    }
    std::cout << "],\"experiments\":[";
    first = true;
    for (const auto& [name, title] : builtin_experiment_titles()) {
      std::cout << (first ? "" : ",") << "{\"name\":\"" << json_escape(name)
                << "\",\"title\":\"" << json_escape(title) << "\"}";
      first = false;
    }
    std::cout << "]}\n";
    return 0;
  }
  Table t({"algorithm", "kind", "caveat", "description"});
  for (const Algorithm* a : AlgorithmRegistry::instance().all()) {
    const std::string caveat = a->caveat();
    t.add_row({a->name(), kind_name(a->kind()), caveat.empty() ? "-" : caveat,
               a->describe()});
  }
  t.print(std::cout);
  std::cout << "\ngraph families:";
  for (const std::string& f : family_names()) std::cout << " " << f;
  std::cout << "\n  (lowerbound:<alpha> and dumbbell:<base> take a ':' "
               "parameter)\n";
  std::cout << "\nexperiments (wcle_cli sweep --spec=<name>):\n";
  for (const auto& [name, title] : builtin_experiment_titles())
    std::cout << "  " << name << (name.size() < 3 ? "  " : " ") << title
              << "\n";
  return 0;
}

int cmd_run(const CliArgs& args) {
  const Algorithm& algo =
      AlgorithmRegistry::instance().at(args.get("algo", "election"));
  const Graph g = build_family(args, "expander", 512);
  const std::string format = parse_format(args, {"text", "json"});
  TraceOutput trace = open_trace(args);
  RunOptions options = options_from(args);
  warn_shard_clamp(options, g);
  TraceRecorder recorder;
  if (trace) options.params.trace = &recorder;
  RunResult r = algo.run(g, options);
  attach_verdict(g, options, algo.kind(), r);
  if (trace) {
    const ExperimentSpec spec = single_run_spec(
        algo.name(), args.get("family", "expander"), args.get_u64("n", 512),
        /*trials=*/1, options.seed(), args.get_u64("seed", 1), options);
    trace.writer->header({kTraceVersion, "run", spec.to_string()});
    TraceRunMeta meta;
    meta.seed = options.seed();
    meta.n = g.node_count();
    meta.algorithm = algo.name();
    meta.family = spec.families.front();
    write_run(*trace.writer, meta, recorder);
    trace.writer->finish(1);
  }
  if (format == "json") {
    std::cout << to_json(r) << "\n";
  } else {
    std::cout << g.describe() << "\n" << r.summary() << "\n";
  }
  return r.success ? 0 : 1;
}

int cmd_trials(const CliArgs& args) {
  const Algorithm& algo =
      AlgorithmRegistry::instance().at(args.get("algo", "election"));
  const Graph g = build_family(args, "expander", 512);
  const int trials = get_count(args, "trials", 10);
  const unsigned threads = get_u32(args, "threads", 0);
  const std::uint64_t base_seed =
      args.get_u64("base-seed", args.get_u64("seed", 1000));
  TraceOutput trace = open_trace(args);
  const RunOptions options = options_from(args);
  warn_shard_clamp(options, g);
  std::vector<TraceRecorder> recorders;
  const TrialStats s = run_trials(algo, g, options, trials, base_seed,
                                  threads, trace ? &recorders : nullptr);
  if (trace) {
    const ExperimentSpec spec = single_run_spec(
        algo.name(), args.get("family", "expander"), args.get_u64("n", 512),
        trials, base_seed, args.get_u64("seed", 1), options);
    trace.writer->header({kTraceVersion, "trials", spec.to_string()});
    for (std::size_t i = 0; i < recorders.size(); ++i) {
      TraceRunMeta meta;
      meta.run = i;
      meta.trial = i;
      meta.seed = base_seed + i;
      meta.n = g.node_count();
      meta.algorithm = algo.name();
      meta.family = spec.families.front();
      write_run(*trace.writer, meta, recorders[i]);
    }
    trace.writer->finish(recorders.size());
  }
  const std::string format = parse_format(args, {"text", "json", "csv"});
  if (format == "json") {
    std::cout << to_json(s) << "\n";
    return s.success_rate > 0.5 ? 0 : 1;
  }
  Table t({"metric", "mean", "stddev", "min", "median", "max"});
  const auto row = [&t](const std::string& name, const Summary& m) {
    t.add_row({name, Table::num(m.mean), Table::num(m.stddev),
               Table::num(m.min), Table::num(m.median), Table::num(m.max)});
  };
  row("congest messages", s.congest_messages);
  row("rounds", s.rounds);
  row("leader count", s.leader_count);
  // Always present (all-zero in the reliable model) so the row set — and
  // therefore the CSV schema — does not depend on the data.
  row("dropped messages", s.dropped_messages);
  row("crash-dropped messages", s.crash_dropped_messages);
  row("link-dropped messages", s.link_dropped_messages);
  row("agreement", s.agreement);
  // Data-plane pool gauges (obs): footprint and high-water occupancy of the
  // shared message pool and the IdArena across the trials.
  row("pool msg slots", s.pool_msg_slots);
  row("pool msg live high", s.pool_msg_live_high);
  row("pool id blocks", s.pool_id_blocks);
  row("pool id live high", s.pool_id_live_high);
  for (const auto& [key, summary] : s.extras) row(key, summary);
  if (format == "csv") {
    // Rate rows only carry a mean; the spread columns stay empty.
    t.add_row({"success_rate", Table::num(s.success_rate), "", "", "", ""});
    t.add_row({"zero_leader_rate", Table::num(s.zero_leader_rate), "", "", "",
               ""});
    t.add_row({"multi_leader_rate", Table::num(s.multi_leader_rate), "", "",
               "", ""});
    t.add_row({"safety_rate", Table::num(s.safety_rate), "", "", "", ""});
    t.add_row({"liveness_rate", Table::num(s.liveness_rate), "", "", "", ""});
    t.write_csv(std::cout);
    return s.success_rate > 0.5 ? 0 : 1;
  }
  std::cout << g.describe() << "\nalgorithm: " << s.algorithm << " ("
            << s.trials << " trials, " << s.threads << " threads)\n";
  t.print(std::cout);
  std::cout << "success rate: " << s.success_rate
            << " (zero-leader " << s.zero_leader_rate << ", multi-leader "
            << s.multi_leader_rate << ")\n"
            << "verdicts: safety " << s.safety_rate << ", liveness "
            << s.liveness_rate << ", agreement " << s.agreement.mean << "\n";
  return s.success_rate > 0.5 ? 0 : 1;
}

// Legacy commands read only the election knobs; deliberately NOT
// options_from, which would mark --source/--tmix/--budget/... consumed and
// mute the unconsumed-option warning for knobs these commands ignore.
ElectionParams params_from(const CliArgs& args) {
  ElectionParams p;
  p.seed = args.get_u64("seed", 1);
  p.c1 = args.get_double("c1", p.c1);
  p.c2 = args.get_double("c2", p.c2);
  p.wide_messages = args.get_bool("wide", false);
  p.paper_schedule = args.get_bool("paper-schedule", false);
  return p;
}

int cmd_elect(const CliArgs& args) {
  const Graph g = build_family(args, "expander", 512);
  std::cout << g.describe() << "\n";
  const int trials = get_count(args, "trials", 1);
  if (trials <= 1) {
    const ElectionResult r = run_leader_election(g, params_from(args));
    std::cout << (r.success()
                      ? "leader: node " + std::to_string(r.leaders[0])
                      : "FAILED (" + std::to_string(r.leaders.size()) +
                            " leaders)")
              << "\nmessages=" << r.totals.congest_messages
              << " rounds=" << r.totals.rounds << " phases=" << r.phases
              << " stop_t_u=" << r.final_length << "\n";
    return r.success() ? 0 : 1;
  }
  const ElectionTrialStats s = run_election_trials(
      g, params_from(args), trials, args.get_u64("seed", 1));
  Table t({"metric", "mean", "min", "max"});
  t.add_row({"congest messages", Table::num(s.congest_messages.mean),
             Table::num(s.congest_messages.min),
             Table::num(s.congest_messages.max)});
  t.add_row({"rounds", Table::num(s.rounds.mean), Table::num(s.rounds.min),
             Table::num(s.rounds.max)});
  t.add_row({"stop t_u", Table::num(s.final_length.mean),
             Table::num(s.final_length.min), Table::num(s.final_length.max)});
  t.add_row({"contenders", Table::num(s.contenders.mean),
             Table::num(s.contenders.min), Table::num(s.contenders.max)});
  t.print(std::cout);
  std::cout << "success rate: " << s.success_rate << "\n";
  return s.success_rate > 0.5 ? 0 : 1;
}

int cmd_explicit(const CliArgs& args) {
  const Graph g = build_family(args, "clique", 256);
  const ExplicitElectionResult r = run_explicit_election(g, params_from(args));
  std::cout << g.describe() << "\n"
            << "election:  " << r.election.totals.congest_messages
            << " msgs, " << r.election.totals.rounds << " rounds\n"
            << "broadcast: " << r.broadcast.totals.congest_messages
            << " msgs, " << r.broadcast.rounds << " rounds\n"
            << (r.success ? "success" : "FAILED") << "\n";
  return r.success ? 0 : 1;
}

int cmd_profile(const CliArgs& args) {
  const Graph g = build_family(args, "torus", 256);
  const GraphProfile p = profile_graph(
      g, get_u32(args, "samples", 4));
  std::cout << g.describe() << "\n"
            << "tmix ~ " << p.tmix << "\n"
            << "conductance: cheeger [" << p.cheeger_lower << ", "
            << p.cheeger_upper << "], sweep-cut " << p.sweep_conductance
            << "\n"
            << "Theorem 13 envelopes: "
            << theorem13_message_envelope(p.n, p.tmix) << " msgs, "
            << theorem13_time_envelope(p.n, p.tmix) << " rounds\n";
  return 0;
}

int cmd_lowerbound(const CliArgs& args) {
  Rng rng(args.get_u64("seed", 42));
  const LowerBoundGraph lb = make_lower_bound_graph(
      get_u32(args, "n", 1000),
      args.get_double("alpha", 0.004), rng);
  std::cout << lb.graph.describe() << "  (eps=" << lb.epsilon << ", "
            << lb.num_cliques << " cliques x " << lb.clique_size << ")\n";
  const ElectionResult r = run_leader_election(lb.graph, params_from(args));
  std::cout << (r.success() ? "elected 1 leader" : "FAILED") << " with "
            << r.totals.congest_messages << " msgs; Theorem 15 envelope "
            << theorem15_message_envelope(lb.graph.node_count(), lb.alpha)
            << "\n";
  return r.success() ? 0 : 1;
}

// The declarative sweep: a builtin spec (--spec=e1), grid-grammar
// positionals (algo=... family=... n=256,512 ...), or the legacy
// --from/--to doubling sugar — all three run through the same engine.
int cmd_sweep(const CliArgs& args) {
  ExperimentSpec spec;
  const std::string spec_name = args.get("spec", "");
  if (!spec_name.empty()) {
    const std::uint64_t scale_raw = args.get_u64(
        "scale", static_cast<std::uint64_t>(default_bench_scale()));
    if (scale_raw > 2)
      throw std::invalid_argument("--scale=" + std::to_string(scale_raw) +
                                  " (0 = quick, 1 = default, 2 = extended)");
    const int scale = static_cast<int>(scale_raw);
    // Grid-grammar positionals refine the builtin (e.g. trials=1 n=64):
    // axes they name are replaced, everything else keeps the builtin grid.
    spec = parse_spec_onto(builtin_experiment(spec_name, scale),
                           args.positionals());
  } else if (!args.positionals().empty()) {
    spec = parse_spec(args.positionals());
  } else {
    // Legacy sugar: --family --from --to --trials [--algo], doubling n.
    const NodeId from = get_u32(args, "from", 64);
    const NodeId to = get_u32(args, "to", 512);
    if (from == 0)
      throw std::invalid_argument("--from must be >= 1 (doubling sweep)");
    spec.algorithms = {args.get("algo", "election")};
    spec.families = {args.get("family", "hypercube")};
    spec.sizes.clear();
    for (NodeId n = from; n <= to;) {
      spec.sizes.push_back(n);
      if (n > std::numeric_limits<NodeId>::max() / 2) break;  // no wrap to 0
      n *= 2;
    }
    spec.trials = get_count(args, "trials", 3);
    // The pre-engine doubling sweep seeded trials and graphs from
    // --seed (default 1); keep that so recorded legacy runs reproduce.
    spec.base_seed = args.get_u64("seed", 1);
    spec.graph_seed = args.get_u64("seed", 1);
    spec.title = "sweep: " + spec.algorithms[0] + " on " + spec.families[0];
  }

  const unsigned threads = get_u32(args, "threads", 0);
  // --trace-every=K is sugar for the trace-every grid knob (sampled round
  // rows); explicit grid tokens win over the flag.
  const std::uint64_t trace_every = args.get_u64("trace-every", 1);
  if (trace_every == 0)
    throw std::invalid_argument("--trace-every=0 (use 1 for every round)");
  if (trace_every > 1 && !spec.knobs.count("trace-every"))
    spec.knobs["trace-every"] = {std::to_string(trace_every)};
  // --trace-walks[=K] likewise lifts into the trace-walks grid knob, so the
  // sampling rides in the header spec and traced sweeps replay identically.
  const std::uint32_t trace_walks = get_trace_walks(args);
  if (trace_walks > 0 && !spec.knobs.count("trace-walks"))
    spec.knobs["trace-walks"] = {std::to_string(trace_walks)};
  const std::unique_ptr<Sink> sink =
      make_sink(parse_format(args, {"text", "csv", "jsonl", "json"}),
                std::cout);
  TraceOutput trace = open_trace(args);
  if (trace)
    trace.writer->header({kTraceVersion, "sweep", spec.to_string()});
  run_sweep(spec, {sink.get()}, threads, trace.writer.get());
  return 0;
}

// Byte-compares a recorded trace against a fresh re-execution of its header
// spec (api/replay.hpp): exit 0 = byte-identical, 1 = drift. With --diff a
// mismatch also decodes the first differing record (run meta, round row, or
// event) instead of leaving only a byte offset.
int cmd_replay(const CliArgs& args) {
  const std::string path = args.get("trace", "");
  if (path.empty())
    throw std::invalid_argument("replay needs --trace=FILE");
  const bool diff = args.get_bool("diff", false);
  // --shards=N regenerates under the sharded round engine: byte-identity
  // against the recorded stream is exactly the headline invariant. Absent =
  // run the spec as recorded; 0 is rejected like everywhere else.
  const std::uint32_t shards = get_u32(args, "shards", 0);
  if (args.has("shards") && shards == 0)
    throw std::invalid_argument(
        "--shards=0 (use 1 for the single-worker engine)");
  const ReplayReport rep =
      verify_replay(path, get_u32(args, "threads", 0), diff, shards);
  std::cout << "trace:  " << path << " ("
            << (rep.format == TraceFormat::kBinary ? "binary" : "jsonl")
            << ", tool=" << rep.header.tool << ")\n"
            << "spec:   " << rep.header.spec << "\n";
  if (shards != 0)
    std::cout << "shards: regenerated with " << shards
              << " worker shard(s)\n";
  std::cout << "replay: " << rep.detail << "\n";
  if (!rep.ok && !rep.diff.empty()) std::cout << rep.diff << "\n";
  return rep.ok ? 0 : 1;
}

// Per-round series of one recorded run (trace/summarize.hpp).
int cmd_trace_summary(const CliArgs& args) {
  const std::string path = args.get("trace", "");
  if (path.empty())
    throw std::invalid_argument("trace-summary needs --trace=FILE");
  const TraceFileData data = read_trace_file(path);
  const std::uint64_t run = args.get_u64("run", 0);
  if (run >= data.runs.size())
    throw std::invalid_argument(
        "--run=" + std::to_string(run) + " out of range (trace holds " +
        std::to_string(data.runs.size()) + " runs)");
  const TraceRunData& r = data.runs[run];
  const TraceSummary summary = summarize_trace(r);
  const Table table = trace_summary_table(summary, args.get_u64("every", 1));
  const std::string format = parse_format(args, {"text", "csv"});
  if (format == "csv") {
    table.write_csv(std::cout);
    return 0;
  }
  std::cout << "run " << r.meta.run << ": " << r.meta.algorithm << " on "
            << r.meta.family << " n=" << r.meta.n << " seed=" << r.meta.seed
            << " (cell " << r.meta.cell << ", trial " << r.meta.trial << ")\n";
  if (summary.sampled)
    std::cout << "sampled trace (row stride " << summary.stride
              << "): cumulative series are stride-scaled estimates; "
              << "messages= is the run_end exact total when present\n";
  std::cout << "rounds=" << summary.rounds
            << " quiet_after=" << summary.rounds_to_quiet
            << " messages=" << summary.total_messages
            << " dropped=" << summary.total_dropped << " peak_backlog="
            << summary.peak_backlog << "@r" << summary.peak_backlog_round
            << "\nlive=" << summary.final_live << "/" << r.meta.n
            << " crashes=" << summary.crashes << " link_failures="
            << summary.link_failures << " churn_out=" << summary.churn_outs
            << " contenders=" << summary.contenders << " phases="
            << summary.phase_marks << " segments=" << summary.segments
            << "\n";
  table.print(std::cout);
  return 0;
}

/// Shared by the obs commands: reload --trace=FILE and select --run=<i>.
const TraceRunData& select_run(const TraceFileData& data,
                               const CliArgs& args) {
  const std::uint64_t run = args.get_u64("run", 0);
  if (run >= data.runs.size())
    throw std::invalid_argument(
        "--run=" + std::to_string(run) + " out of range (trace holds " +
        std::to_string(data.runs.size()) + " runs)");
  return data.runs[run];
}

/// Rebuilds the graph a recorded run executed on, the same way run_sweep
/// builds it: expand the header spec and rebuild the run's cell at the
/// spec's graph seed. The trace header is a replayable identity, so this is
/// exact, not a reconstruction.
Graph graph_for_run(const TraceHeader& header, const TraceRunMeta& meta) {
  const ExperimentSpec spec = parse_spec(header.spec);
  const std::vector<SweepCell> cells = expand_cells(spec);
  if (meta.cell >= cells.size())
    throw std::runtime_error("trace run " + std::to_string(meta.run) +
                             " names cell " + std::to_string(meta.cell) +
                             " but the header spec expands to " +
                             std::to_string(cells.size()) + " cells");
  const SweepCell& cell = cells[meta.cell];
  return make_family(cell.family, static_cast<NodeId>(cell.requested_n),
                     spec.graph_seed);
}

// Lemma 12 made visible: per-round max-edge walk-token load from the
// walk_hop stream of a traced run, next to the sqrt(n/phi)*log^2(n)
// envelope with phi bounds computed from the run's actual graph.
int cmd_congestion_report(const CliArgs& args) {
  const std::string path = args.get("trace", "");
  if (path.empty())
    throw std::invalid_argument("congestion-report needs --trace=FILE");
  const TraceFileData data = read_trace_file(path);
  const TraceRunData& r = select_run(data, args);
  if (r.hops.empty())
    throw std::runtime_error(
        "run " + std::to_string(r.meta.run) +
        " holds no walk_hop records — record the trace with --trace-walks "
        "(schema v2) to enable congestion accounting");
  const CongestionReport report = analyze_congestion(r.hops);
  const Graph g = graph_for_run(data.header, r.meta);
  const Lemma12Envelope env = lemma12_envelope(g);

  Table table({"round", "messages", "walkers", "busy-edges",
               "max-edge(msgs)", "max-edge(walkers)", "envelope", "ratio"});
  for (const RoundCongestion& rc : report.rounds)
    table.add_row({std::to_string(rc.round), std::to_string(rc.messages),
                   std::to_string(rc.walkers), std::to_string(rc.busy_edges),
                   std::to_string(rc.max_edge_messages),
                   std::to_string(rc.max_edge_walkers), Table::num(env.bound),
                   Table::num(env.bound > 0.0
                                  ? static_cast<double>(rc.max_edge_walkers) /
                                        env.bound
                                  : 0.0)});
  const std::string format = parse_format(args, {"text", "csv"});
  if (format == "csv") {
    table.write_csv(std::cout);
    return 0;
  }
  std::cout << "run " << r.meta.run << ": " << r.meta.algorithm << " on "
            << r.meta.family << " n=" << r.meta.n << " seed=" << r.meta.seed
            << "\nconductance: phi in [" << Table::num(env.phi_lower) << ", "
            << Table::num(env.phi_upper)
            << "] (Cheeger lower / sweep-cut upper)"
            << "\nLemma 12 envelope: sqrt(n/phi)*log2(n)^2 = "
            << Table::num(env.bound) << " (phi = " << Table::num(env.phi)
            << ", the conservative upper bound)"
            << "\ntotals: " << report.total_messages << " token messages, "
            << report.total_walkers << " walker moves, max edge load "
            << report.max_edge_messages << " msgs / "
            << report.max_edge_walkers << " walkers in one round\n";
  std::cout << "by tag:";
  for (const auto& [tag, count] : report.messages_by_tag)
    std::cout << " 0x" << std::hex << static_cast<unsigned>(tag) << std::dec
              << "=" << count;
  std::cout << "\nper-round max-edge load (msgs): mean="
            << Table::num(report.round_max_messages.mean)
            << " median=" << Table::num(report.round_max_messages.median)
            << " max=" << Table::num(report.round_max_messages.max) << "\n";
  table.print(std::cout);
  return 0;
}

// Per-walk path/lifetime statistics over the sampled origins of one run.
int cmd_trace_walks_summary(const CliArgs& args) {
  const std::string path = args.get("trace", "");
  if (path.empty())
    throw std::invalid_argument("trace-walks-summary needs --trace=FILE");
  const TraceFileData data = read_trace_file(path);
  const TraceRunData& r = select_run(data, args);
  if (r.hops.empty())
    throw std::runtime_error(
        "run " + std::to_string(r.meta.run) +
        " holds no walk_hop records — record the trace with --trace-walks "
        "(schema v2) to enable per-walk summaries");
  const std::vector<WalkSummary> walks = summarize_walks(r.hops);

  Table table({"origin", "hops", "walkers", "first", "last", "lifetime",
               "max-count", "uniq-edges", "uniq-nodes"});
  for (const WalkSummary& w : walks)
    table.add_row({std::to_string(w.origin), std::to_string(w.hops),
                   std::to_string(w.walkers), std::to_string(w.first_round),
                   std::to_string(w.last_round),
                   std::to_string(w.last_round - w.first_round + 1),
                   std::to_string(w.max_count), std::to_string(w.unique_edges),
                   std::to_string(w.unique_nodes)});
  const std::string format = parse_format(args, {"text", "csv"});
  if (format == "csv") {
    table.write_csv(std::cout);
    return 0;
  }
  // Hop sampling is by origin: name the stride so a sparse origin column
  // reads as sampling, not as missing walks.
  std::string stride = "1";
  const ExperimentSpec spec = parse_spec(data.header.spec);
  const auto knob = spec.knobs.find("trace-walks");
  if (knob != spec.knobs.end() && !knob->second.empty())
    stride = knob->second.front();
  std::cout << "run " << r.meta.run << ": " << r.meta.algorithm << " on "
            << r.meta.family << " n=" << r.meta.n << " seed=" << r.meta.seed
            << "\n" << walks.size()
            << " traced walk origins (sampled: origin % " << stride
            << " == 0), " << r.hops.size() << " hop records\n";
  table.print(std::cout);
  return 0;
}

// Renders a trace as Chrome trace-event JSON for chrome://tracing or the
// Perfetto UI (obs/perfetto.hpp). Exports every run in the file.
int cmd_trace_export(const CliArgs& args) {
  const std::string path = args.get("trace", "");
  if (path.empty())
    throw std::invalid_argument("trace-export needs --trace=FILE");
  const std::string out_path = args.get("out", "");
  if (out_path.empty())
    throw std::invalid_argument("trace-export needs --out=FILE.json");
  const TraceFileData data = read_trace_file(path);
  std::ofstream out(out_path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open --out=" + out_path);
  write_chrome_trace(out, data);
  std::cout << "wrote " << out_path << ": " << data.runs.size()
            << " run(s) as trace-event JSON (load in ui.perfetto.dev or "
               "chrome://tracing)\n";
  return 0;
}

// Emits a fixed-scale core-election sweep as a google-benchmark-format JSON
// file (BENCH_sweep.json): the CI perf-trajectory baseline. The workload is
// pinned (independent of WCLE_BENCH_SCALE) so successive commits compare
// like against like; times are wall/CPU per cell, counters carry the
// deterministic message/round means.
int cmd_bench_baseline(const CliArgs& args) {
  const ExperimentSpec spec = parse_spec(
      "name=bench_sweep algo=election family=expander n=128,256,512 "
      "trials=3 base-seed=1000");
  const std::string out_path = args.get("out", "");
  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) throw std::runtime_error("cannot open --out=" + out_path);
  }
  std::ostream& out = out_path.empty() ? std::cout : file;

  const std::vector<SweepCell> cells = expand_cells(spec);
  out << "{\"context\":{\"executable\":\"wcle_cli\",\"num_cpus\":"
      << std::thread::hardware_concurrency()
      << ",\"library_build_type\":\"release\",\"caches\":[]},"
      << "\"benchmarks\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& cell = cells[i];
    const Graph g = make_family(cell.family,
                                static_cast<NodeId>(cell.requested_n),
                                spec.graph_seed);
    const auto wall0 = std::chrono::steady_clock::now();
    const std::clock_t cpu0 = std::clock();
    const TrialStats stats =
        run_trials(AlgorithmRegistry::instance().at(cell.algorithm), g,
                   cell.options, spec.trials, spec.base_seed, /*threads=*/1);
    const double cpu_ns = 1e9 *
                          static_cast<double>(std::clock() - cpu0) /
                          static_cast<double>(CLOCKS_PER_SEC) /
                          spec.trials;
    const double wall_ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wall0)
                .count()) /
        spec.trials;
    const std::string name = "sweep/" + cell.algorithm + "/" + cell.family +
                             "/" + std::to_string(cell.requested_n);
    out << (i ? "," : "") << "{\"name\":\"" << name << "\",\"run_name\":\""
        << name << "\",\"run_type\":\"iteration\",\"repetitions\":1,"
        << "\"repetition_index\":0,\"threads\":1,\"iterations\":"
        << spec.trials << ",\"real_time\":" << json_number(wall_ns)
        << ",\"cpu_time\":" << json_number(cpu_ns)
        << ",\"time_unit\":\"ns\",\"congest_messages\":"
        << json_number(stats.congest_messages.mean)
        << ",\"rounds\":" << json_number(stats.rounds.mean)
        << ",\"success_rate\":" << json_number(stats.success_rate) << "}";
  }
  out << "]}\n";
  out.flush();
  return 0;
}

// Emits the data-plane perf trajectory as google-benchmark-format JSON
// (BENCH_dataplane.json): representative e1 + e13 + e14 cells at their
// scale-1 sizes, timed in-process (no startup or graph-build noise), plus
// the traced e1 smoke sweep the CI regression guard replays. The workload is
// pinned (independent of WCLE_BENCH_SCALE) so successive commits compare
// like against like; counters carry the deterministic message/round means,
// which double as a bit-identity check between recordings.
int cmd_bench_dataplane(const CliArgs& args) {
  struct Workload {
    const char* name;
    const char* spec;
  };
  // One sweep cell each. e13/election/expander/256 is the headline cell the
  // data-plane rebuild is measured on.
  const Workload cells[] = {
      {"dataplane/e1/election/expander/1024",
       "algo=election family=expander n=1024 trials=3 base-seed=1000"},
      {"dataplane/e13/election/expander/256",
       "algo=election family=expander n=256 trials=3 base-seed=1000"},
      {"dataplane/e13/election/clique/256",
       "algo=election family=clique n=256 trials=3 base-seed=1000"},
      {"dataplane/e13/election/hypercube/256",
       "algo=election family=hypercube n=256 trials=3 base-seed=1000"},
      {"dataplane/e14/election/expander/128/faults",
       "algo=election family=expander n=128 trials=2 crash=0.1 linkfail=0.05 "
       "adversary=contenders max-length=256 max-rounds=4000 base-seed=1000"},
  };

  const std::string out_path = args.get("out", "");
  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) throw std::runtime_error("cannot open --out=" + out_path);
  }
  std::ostream& out = out_path.empty() ? std::cout : file;

  out << "{\"context\":{\"executable\":\"wcle_cli\",\"num_cpus\":"
      << std::thread::hardware_concurrency()
      << ",\"library_build_type\":\"release\",\"caches\":[]},"
      << "\"benchmarks\":[";
  bool first_entry = true;
  const auto emit = [&](const std::string& name, std::uint64_t iterations,
                        double wall_ns, double cpu_ns,
                        const std::string& extra) {
    out << (first_entry ? "" : ",") << "{\"name\":\"" << name
        << "\",\"run_name\":\"" << name
        << "\",\"run_type\":\"iteration\",\"repetitions\":1,"
        << "\"repetition_index\":0,\"threads\":1,\"iterations\":" << iterations
        << ",\"real_time\":" << json_number(wall_ns)
        << ",\"cpu_time\":" << json_number(cpu_ns)
        << ",\"time_unit\":\"ns\"" << extra << "}";
    first_entry = false;
  };
  const auto timed = [](const std::function<void()>& body, double& wall_ns,
                        double& cpu_ns) {
    const auto wall0 = std::chrono::steady_clock::now();
    const std::clock_t cpu0 = std::clock();
    body();
    cpu_ns = 1e9 * static_cast<double>(std::clock() - cpu0) /
             static_cast<double>(CLOCKS_PER_SEC);
    wall_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall0)
            .count());
  };

  for (const Workload& w : cells) {
    const ExperimentSpec spec = parse_spec(w.spec);
    const std::vector<SweepCell> expanded = expand_cells(spec);
    if (expanded.size() != 1)
      throw std::logic_error("bench-dataplane: workloads must be one cell");
    const SweepCell& cell = expanded.front();
    const Graph g = make_family(cell.family,
                                static_cast<NodeId>(cell.requested_n),
                                spec.graph_seed);
    TrialStats stats;
    double wall_ns = 0, cpu_ns = 0;
    timed(
        [&] {
          stats = run_trials(AlgorithmRegistry::instance().at(cell.algorithm),
                             g, cell.options, spec.trials, spec.base_seed,
                             /*threads=*/1);
        },
        wall_ns, cpu_ns);
    std::ostringstream extra;
    extra << ",\"congest_messages\":"
          << json_number(stats.congest_messages.mean)
          << ",\"rounds\":" << json_number(stats.rounds.mean)
          << ",\"success_rate\":" << json_number(stats.success_rate);
    emit(w.name, spec.trials, wall_ns / spec.trials, cpu_ns / spec.trials,
         extra.str());
  }

  // The traced e1 smoke sweep (scale 0) — the workload the CI guard times
  // against the recorded baseline. Includes binary trace serialization.
  // Reported as one iteration: real_time is the whole-sweep wall time.
  {
    const ExperimentSpec smoke = builtin_experiment("e1", /*scale=*/0);
    double wall_ns = 0, cpu_ns = 0;
    std::uint64_t trace_bytes = 0;
    timed(
        [&] {
          std::ostringstream trace_buf;
          const std::unique_ptr<TraceWriter> writer =
              make_trace_writer(TraceFormat::kBinary, trace_buf);
          writer->header({kTraceVersion, "bench", smoke.to_string()});
          run_sweep(smoke, /*sinks=*/{}, /*threads=*/1, writer.get());
          trace_bytes = static_cast<std::uint64_t>(trace_buf.str().size());
        },
        wall_ns, cpu_ns);
    std::ostringstream extra;
    extra << ",\"trace_bytes\":" << trace_bytes;
    emit("dataplane/smoke/e1_traced", /*iterations=*/1, wall_ns, cpu_ns,
         extra.str());
  }

  // The same smoke sweep with per-walk token tracing (--trace-walks=1): not
  // guarded, but recorded so the hop-record overhead stays visible next to
  // the walks-off cost the CI guard pins. The walks-off guard above is the
  // one that catches a hot-path regression from the hop check itself.
  {
    ExperimentSpec smoke = builtin_experiment("e1", /*scale=*/0);
    smoke.knobs["trace-walks"] = {"1"};
    double wall_ns = 0, cpu_ns = 0;
    std::uint64_t trace_bytes = 0, hop_records = 0;
    std::string bytes;
    timed(
        [&] {
          std::ostringstream trace_buf;
          const std::unique_ptr<TraceWriter> writer =
              make_trace_writer(TraceFormat::kBinary, trace_buf);
          writer->header({kTraceVersion, "bench", smoke.to_string()});
          run_sweep(smoke, /*sinks=*/{}, /*threads=*/1, writer.get());
          bytes = trace_buf.str();
        },
        wall_ns, cpu_ns);
    trace_bytes = static_cast<std::uint64_t>(bytes.size());
    const TraceFileData data = parse_trace(bytes);
    for (const TraceRunData& run : data.runs) hop_records += run.hops.size();
    std::ostringstream extra;
    extra << ",\"trace_bytes\":" << trace_bytes
          << ",\"walk_hop_records\":" << hop_records;
    emit("dataplane/smoke/e1_traced_walks", /*iterations=*/1, wall_ns, cpu_ns,
         extra.str());
  }
  out << "]}\n";
  out.flush();
  return 0;
}

// Emits the sharded round engine's scaling curves as google-benchmark JSON
// (BENCH_shard.json): the election at shards in {1,2,4,8} across the three
// e13 families, timed in-process. The counters (messages, rounds,
// success_rate) are bit-identical across the shard axis — the headline
// invariant — so a row whose counters drift from its shards=1 sibling is a
// determinism bug, not a perf data point. Each entry also carries the
// transport's per-shard pool gauges (from a fixed all-ports ping probe on
// the same graph) so the footprint cost of sharding stays visible next to
// the wall-clock win. Context honesty: num_cpus is the machine the file was
// recorded on — single-core recorders cannot show a speedup, which is why
// the CI guard on this file is conditional on num_cpus >= 2.
//
// Scale (WCLE_BENCH_SCALE or --scale) sizes the grid; at scale 2 the
// expander column adds the n=10^6 election — the million-node headline run.
int cmd_bench_shard(const CliArgs& args) {
  const std::uint64_t scale_raw = args.get_u64(
      "scale", static_cast<std::uint64_t>(default_bench_scale()));
  if (scale_raw > 2)
    throw std::invalid_argument("--scale=" + std::to_string(scale_raw) +
                                " (0 = quick, 1 = default, 2 = extended)");
  const int scale = static_cast<int>(scale_raw);
  const std::uint32_t shard_axis[] = {1, 2, 4, 8};
  const std::uint64_t grid_n = scale <= 0 ? 256 : scale == 1 ? 1024 : 2048;
  const char* families[] = {"expander", "hypercube", "clique"};

  const std::string out_path = args.get("out", "");
  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) throw std::runtime_error("cannot open --out=" + out_path);
  }
  std::ostream& out = out_path.empty() ? std::cout : file;

  out << "{\"context\":{\"executable\":\"wcle_cli\",\"num_cpus\":"
      << std::thread::hardware_concurrency()
      << ",\"shard_axis\":[1,2,4,8],\"grid_n\":" << grid_n
      << ",\"library_build_type\":\"release\",\"caches\":[]},"
      << "\"benchmarks\":[";
  bool first_entry = true;
  const auto timed = [](const std::function<void()>& body, double& wall_ns,
                        double& cpu_ns) {
    const auto wall0 = std::chrono::steady_clock::now();
    const std::clock_t cpu0 = std::clock();
    body();
    cpu_ns = 1e9 * static_cast<double>(std::clock() - cpu0) /
             static_cast<double>(CLOCKS_PER_SEC);
    wall_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall0)
            .count());
  };

  // One graph per family, reused across the shard axis so every row times
  // the same workload. The per-shard pool gauges come from a fixed probe:
  // every node sends one bandwidth-sized message out of every port, then
  // the network drains — a deterministic footprint sample of the transport
  // itself, independent of which protocol ran.
  const auto shard_pool_json = [](const Graph& g, std::uint32_t shards) {
    CongestConfig cfg = CongestConfig::standard(g.node_count());
    cfg.shards = shards;
    Network net(g, cfg);
    Message ping;
    ping.tag = 0x01;
    ping.bits = cfg.bandwidth_bits;
    for (NodeId v = 0; v < g.node_count(); ++v)
      for (Port p = 0; p < g.degree(v); ++p) net.send(v, p, ping);
    net.run_until_idle([](const Delivery&) {});
    std::ostringstream json;
    json << ",\"pool_msg_slots_per_shard\":[";
    for (std::uint32_t s = 0; s < net.shard_count(); ++s)
      json << (s ? "," : "") << net.shard_pool_stats(s).msg_slots;
    json << "],\"pool_id_blocks_per_shard\":[";
    for (std::uint32_t s = 0; s < net.shard_count(); ++s)
      json << (s ? "," : "") << net.shard_pool_stats(s).id_heap_blocks;
    json << "]";
    return json.str();
  };

  const auto run_cell = [&](const std::string& family, std::uint64_t n,
                            int trials, std::uint32_t shards) {
    const ExperimentSpec spec = parse_spec(
        "algo=election family=" + family + " n=" + std::to_string(n) +
        " trials=" + std::to_string(trials) + " base-seed=1000 shards=" +
        std::to_string(shards));
    const SweepCell cell = expand_cells(spec).front();
    const Graph g = make_family(cell.family,
                                static_cast<NodeId>(cell.requested_n),
                                spec.graph_seed);
    TrialStats stats;
    double wall_ns = 0, cpu_ns = 0;
    timed(
        [&] {
          stats = run_trials(AlgorithmRegistry::instance().at(cell.algorithm),
                             g, cell.options, spec.trials, spec.base_seed,
                             /*threads=*/1);
        },
        wall_ns, cpu_ns);
    const std::string name = "shard/" + family + "/" + std::to_string(n) +
                             "/shards:" + std::to_string(shards);
    out << (first_entry ? "" : ",") << "{\"name\":\"" << name
        << "\",\"run_name\":\"" << name
        << "\",\"run_type\":\"iteration\",\"repetitions\":1,"
        << "\"repetition_index\":0,\"threads\":" << shards
        << ",\"iterations\":" << spec.trials
        << ",\"real_time\":" << json_number(wall_ns / spec.trials)
        << ",\"cpu_time\":" << json_number(cpu_ns / spec.trials)
        << ",\"time_unit\":\"ns\",\"shards\":" << shards
        << ",\"congest_messages\":" << json_number(stats.congest_messages.mean)
        << ",\"rounds\":" << json_number(stats.rounds.mean)
        << ",\"success_rate\":" << json_number(stats.success_rate)
        << shard_pool_json(g, shards) << "}";
    first_entry = false;
    out.flush();
  };

  for (const char* family : families)
    for (const std::uint32_t shards : shard_axis)
      run_cell(family, grid_n, /*trials=*/scale <= 0 ? 1 : 2, shards);

  // The million-node election (scale 2 or --million): one trial per shard
  // count on the 6-regular expander — the e1 workload three decades up.
  if (scale >= 2 || args.get_bool("million", false))
    for (const std::uint32_t shards : {1u, 4u})
      run_cell("expander", 1000000, /*trials=*/1, shards);

  out << "]}\n";
  out.flush();
  return 0;
}

void warn_unconsumed(const CliArgs& args);

// The daemon's drain trigger must be async-signal-safe: the handler writes
// one byte to the event loop's self-pipe (write(2) is on the safe list) and
// the loop does the actual shutdown on its own thread.
int g_serve_wake_fd = -1;

extern "C" void serve_drain_signal(int) {
  if (g_serve_wake_fd >= 0) {
    const char byte = 'd';
    [[maybe_unused]] const ssize_t n = write(g_serve_wake_fd, &byte, 1);
  }
}

// The long-running sweep service: POST specs, poll job status, stream
// results. SIGTERM/SIGINT drain gracefully (stop accepting, finish accepted
// jobs and open streams, then exit 0).
int cmd_serve(const CliArgs& args) {
  ServeConfig config;
  const HostPort listen =
      args.get_host_port("listen", config.host, config.port);
  config.host = listen.host;
  config.port = listen.port;
  config.workers = get_u32(args, "workers", 0);
  config.cache_max_bytes = args.get_u64("cache-mb", 64) * 1024 * 1024;

  Server server(config);
  server.listen();
  g_serve_wake_fd = server.wake_fd();
  std::signal(SIGTERM, serve_drain_signal);
  std::signal(SIGINT, serve_drain_signal);
  warn_unconsumed(args);
  // Flushed before serving so wrappers can wait for readiness on stdout.
  std::cout << "wcle serve: listening on " << config.host << ":"
            << server.port() << " (workers="
            << (config.workers == 0 ? std::thread::hardware_concurrency()
                                    : config.workers)
            << ", cache=" << config.cache_max_bytes / (1024 * 1024) << "MB)"
            << std::endl;
  const int rc = server.run();
  std::cout << "wcle serve: drained, exiting\n";
  return rc;
}

void usage() {
  std::cout <<
      "usage: wcle_cli <command> [options]\n"
      "  registry: list [--format=json]\n"
      "            run    --algo=<name> [--format=json]\n"
      "            trials --algo=<name> --trials=<k> [--threads=<t>]\n"
      "                   [--base-seed=<s>] [--format=json|csv]\n"
      "  sweep:    sweep --spec=<e1..e14> [--scale=0|1|2]\n"
      "                  [--format=text|csv|jsonl] [--threads=<t>]\n"
      "            sweep <key=v1,v2,..> ...   (grid grammar; keys: algo\n"
      "                  family n bandwidth drop crash linkfail adversary\n"
      "                  trials base-seed graph-seed reliable extras + any\n"
      "                  RunOptions knob)\n"
      "            sweep --from= --to= --trials= [--algo=]  (doubling sugar)\n"
      "  serve:    serve [--listen=HOST:PORT] [--workers=<t>]\n"
      "                  [--cache-mb=<m>]   (default 127.0.0.1:8080; sweep\n"
      "            daemon: POST /sweep with spec tokens, GET /jobs/<id>,\n"
      "            GET /jobs/<id>/results streams JSONL byte-identical to\n"
      "            `sweep --format=jsonl`; /cache /metricz /healthz;\n"
      "            SIGTERM drains gracefully)\n"
      "  trace:    run/trials/sweep --trace=FILE "
      "[--trace-format=jsonl|binary]\n"
      "            (per-round timelines; .bin/.btrace default to binary)\n"
      "            run/trials/sweep --trace-every=<k>  (sampled rows: keep\n"
      "            every k-th round row; events always kept)\n"
      "            replay --trace=FILE [--threads=<t>] [--diff]\n"
      "            (re-execute from the header, verify byte-identity;\n"
      "             --diff decodes the first differing record on mismatch)\n"
      "            trace-summary --trace=FILE [--run=<i>] [--every=<k>]\n"
      "                          [--format=text|csv]\n"
      "  obs:      run/trials/sweep --trace-walks[=K]  (schema v2: record\n"
      "            walk_hop records for origins with origin % K == 0)\n"
      "            congestion-report --trace=FILE [--run=<i>]\n"
      "                [--format=text|csv]  (per-round max-edge load vs the\n"
      "                 Lemma 12 sqrt(n/phi)*log2(n)^2 envelope)\n"
      "            trace-walks-summary --trace=FILE [--run=<i>]\n"
      "                [--format=text|csv]  (per-walk path/lifetime stats)\n"
      "            trace-export --trace=FILE --out=FILE.json\n"
      "                (Chrome trace-event JSON for Perfetto)\n"
      "  bench:    bench-baseline [--out=BENCH_sweep.json]\n"
      "            (fixed-scale election sweep, google-benchmark JSON)\n"
      "            bench-dataplane [--out=BENCH_dataplane.json]\n"
      "            (hot-path trajectory: e1/e13/e14 cells + traced e1 smoke)\n"
      "            bench-shard [--out=BENCH_shard.json] [--scale=0|1|2]\n"
      "                        [--million]\n"
      "            (round-engine scaling: shards x {expander, hypercube,\n"
      "             clique}; scale 2 / --million add the n=10^6 election)\n"
      "  shards:   run/trials/sweep/replay --shards=<k>  (worker shards for\n"
      "            the round engine; results are bit-identical at any k —\n"
      "            replay --shards verifies that against a recorded trace)\n"
      "  legacy:   elect, explicit, profile, lowerbound\n"
      "  common:   --family=<see list> --n=<nodes> --seed=<u64>\n"
      "            --c1= --c2= --wide --paper-schedule --source=\n"
      "            --tmix= --tmix-mult= --budget= --value-bits=\n"
      "  faults:   --crash=<frac> --crash-round= --linkfail=<frac>\n"
      "            --linkfail-round= --churn=<frac> --churn-start=\n"
      "            --churn-end= --adversary=random|degree|contenders\n"
      "  elect:      --trials=<k>\n"
      "  lowerbound: --alpha=<conductance target>\n";
}

void warn_unconsumed(const CliArgs& args) {
  for (const std::string& key : args.unconsumed())
    std::cerr << "warning: --" << key << " was ignored by '" << args.command()
              << "' (unknown option, or not used by this command)\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args = CliArgs::parse(argc, argv);
    int rc = 2;
    if (args.command() == "list") rc = cmd_list(args);
    else if (args.command() == "run") rc = cmd_run(args);
    else if (args.command() == "trials") rc = cmd_trials(args);
    else if (args.command() == "elect") rc = cmd_elect(args);
    else if (args.command() == "explicit") rc = cmd_explicit(args);
    else if (args.command() == "profile") rc = cmd_profile(args);
    else if (args.command() == "lowerbound") rc = cmd_lowerbound(args);
    else if (args.command() == "sweep") rc = cmd_sweep(args);
    else if (args.command() == "serve") rc = cmd_serve(args);
    else if (args.command() == "replay") rc = cmd_replay(args);
    else if (args.command() == "trace-summary") rc = cmd_trace_summary(args);
    else if (args.command() == "congestion-report")
      rc = cmd_congestion_report(args);
    else if (args.command() == "trace-walks-summary")
      rc = cmd_trace_walks_summary(args);
    else if (args.command() == "trace-export") rc = cmd_trace_export(args);
    else if (args.command() == "bench-baseline") rc = cmd_bench_baseline(args);
    else if (args.command() == "bench-dataplane")
      rc = cmd_bench_dataplane(args);
    else if (args.command() == "bench-shard") rc = cmd_bench_shard(args);
    else {
      usage();
      return args.command().empty() ? 0 : 2;
    }
    warn_unconsumed(args);
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
