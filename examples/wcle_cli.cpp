// wcle_cli — the library as a command-line tool.
//
//   wcle_cli elect    --family=expander --n=1024 --seed=7 [--trials=5]
//                     [--c1=4] [--c2=2] [--wide] [--paper-schedule]
//   wcle_cli explicit --family=clique --n=512 --seed=3
//   wcle_cli profile  --family=torus --n=256        (tmix / conductance)
//   wcle_cli lowerbound --n=1000 --alpha=0.004      (build G(alpha) + elect)
//   wcle_cli sweep    --family=hypercube --from=64 --to=1024 --trials=3
//
// Families: clique, ring, torus, hypercube, expander (6-regular), star,
//           barbell, ba (Barabasi-Albert m0=3), ws (Watts-Strogatz k=3).
#include <cstdint>
#include <iostream>
#include <string>

#include "wcle/analysis/cli.hpp"
#include "wcle/analysis/experiment.hpp"
#include "wcle/core/explicit_election.hpp"
#include "wcle/core/leader_election.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/graph/lower_bound_graph.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

Graph build_family(const std::string& family, NodeId n, std::uint64_t seed) {
  Rng rng(seed ^ 0xFA111Cull);
  if (family == "clique") return make_clique(n);
  if (family == "ring") return make_ring(n);
  if (family == "torus") {
    NodeId side = 3;
    while ((side + 1) * (side + 1) <= n) ++side;
    return make_torus(side, side);
  }
  if (family == "hypercube") {
    std::uint32_t d = 1;
    while ((NodeId{1} << (d + 1)) <= n) ++d;
    return make_hypercube(d);
  }
  if (family == "expander")
    return make_random_regular(n % 2 ? n + 1 : n, 6, rng);
  if (family == "star") return make_star(n);
  if (family == "barbell") return make_barbell(n / 2);
  if (family == "ba") return make_barabasi_albert(n, 3, rng);
  if (family == "ws") return make_watts_strogatz(n, 3, 0.3, rng);
  throw std::invalid_argument("unknown --family=" + family);
}

ElectionParams params_from(const CliArgs& args) {
  ElectionParams p;
  p.seed = args.get_u64("seed", 1);
  p.c1 = args.get_double("c1", p.c1);
  p.c2 = args.get_double("c2", p.c2);
  p.wide_messages = args.get_bool("wide", false);
  p.paper_schedule = args.get_bool("paper-schedule", false);
  return p;
}

int cmd_elect(const CliArgs& args) {
  const Graph g = build_family(args.get("family", "expander"),
                               static_cast<NodeId>(args.get_u64("n", 512)),
                               args.get_u64("seed", 1));
  std::cout << g.describe() << "\n";
  const int trials = static_cast<int>(args.get_u64("trials", 1));
  if (trials <= 1) {
    const ElectionResult r = run_leader_election(g, params_from(args));
    std::cout << (r.success()
                      ? "leader: node " + std::to_string(r.leaders[0])
                      : "FAILED (" + std::to_string(r.leaders.size()) +
                            " leaders)")
              << "\nmessages=" << r.totals.congest_messages
              << " rounds=" << r.totals.rounds << " phases=" << r.phases
              << " stop_t_u=" << r.final_length << "\n";
    return r.success() ? 0 : 1;
  }
  const ElectionTrialStats s = run_election_trials(
      g, params_from(args), trials, args.get_u64("seed", 1));
  Table t({"metric", "mean", "min", "max"});
  t.add_row({"congest messages", Table::num(s.congest_messages.mean),
             Table::num(s.congest_messages.min),
             Table::num(s.congest_messages.max)});
  t.add_row({"rounds", Table::num(s.rounds.mean), Table::num(s.rounds.min),
             Table::num(s.rounds.max)});
  t.add_row({"stop t_u", Table::num(s.final_length.mean),
             Table::num(s.final_length.min), Table::num(s.final_length.max)});
  t.add_row({"contenders", Table::num(s.contenders.mean),
             Table::num(s.contenders.min), Table::num(s.contenders.max)});
  t.print(std::cout);
  std::cout << "success rate: " << s.success_rate << "\n";
  return s.success_rate > 0.5 ? 0 : 1;
}

int cmd_explicit(const CliArgs& args) {
  const Graph g = build_family(args.get("family", "clique"),
                               static_cast<NodeId>(args.get_u64("n", 256)),
                               args.get_u64("seed", 1));
  const ExplicitElectionResult r = run_explicit_election(g, params_from(args));
  std::cout << g.describe() << "\n"
            << "election:  " << r.election.totals.congest_messages
            << " msgs, " << r.election.totals.rounds << " rounds\n"
            << "broadcast: " << r.broadcast.totals.congest_messages
            << " msgs, " << r.broadcast.rounds << " rounds\n"
            << (r.success ? "success" : "FAILED") << "\n";
  return r.success ? 0 : 1;
}

int cmd_profile(const CliArgs& args) {
  const Graph g = build_family(args.get("family", "torus"),
                               static_cast<NodeId>(args.get_u64("n", 256)),
                               args.get_u64("seed", 1));
  const GraphProfile p = profile_graph(
      g, static_cast<std::uint32_t>(args.get_u64("samples", 4)));
  std::cout << g.describe() << "\n"
            << "tmix ~ " << p.tmix << "\n"
            << "conductance: cheeger [" << p.cheeger_lower << ", "
            << p.cheeger_upper << "], sweep-cut " << p.sweep_conductance
            << "\n"
            << "Theorem 13 envelopes: "
            << theorem13_message_envelope(p.n, p.tmix) << " msgs, "
            << theorem13_time_envelope(p.n, p.tmix) << " rounds\n";
  return 0;
}

int cmd_lowerbound(const CliArgs& args) {
  Rng rng(args.get_u64("seed", 42));
  const LowerBoundGraph lb = make_lower_bound_graph(
      static_cast<NodeId>(args.get_u64("n", 1000)),
      args.get_double("alpha", 0.004), rng);
  std::cout << lb.graph.describe() << "  (eps=" << lb.epsilon << ", "
            << lb.num_cliques << " cliques x " << lb.clique_size << ")\n";
  const ElectionResult r = run_leader_election(lb.graph, params_from(args));
  std::cout << (r.success() ? "elected 1 leader" : "FAILED") << " with "
            << r.totals.congest_messages << " msgs; Theorem 15 envelope "
            << theorem15_message_envelope(lb.graph.node_count(), lb.alpha)
            << "\n";
  return r.success() ? 0 : 1;
}

int cmd_sweep(const CliArgs& args) {
  const std::string family = args.get("family", "hypercube");
  const NodeId from = static_cast<NodeId>(args.get_u64("from", 64));
  const NodeId to = static_cast<NodeId>(args.get_u64("to", 512));
  const int trials = static_cast<int>(args.get_u64("trials", 3));
  Table t({"n", "tmix", "msgs(mean)", "rounds(mean)", "stop_t_u", "success"});
  for (NodeId n = from; n <= to; n *= 2) {
    const Graph g = build_family(family, n, args.get_u64("seed", 1));
    const GraphProfile prof = profile_graph(g, 2);
    ElectionParams p = params_from(args);
    const ElectionTrialStats s =
        run_election_trials(g, p, trials, args.get_u64("seed", 1));
    t.add_row({std::to_string(g.node_count()), std::to_string(prof.tmix),
               Table::num(s.congest_messages.mean), Table::num(s.rounds.mean),
               Table::num(s.final_length.mean, 3),
               Table::num(s.success_rate, 2)});
  }
  t.print(std::cout);
  return 0;
}

void usage() {
  std::cout <<
      "usage: wcle_cli <elect|explicit|profile|lowerbound|sweep> [options]\n"
      "  common: --family=<clique|ring|torus|hypercube|expander|star|barbell"
      "|ba|ws>\n"
      "          --n=<nodes> --seed=<u64> --c1= --c2= --wide "
      "--paper-schedule\n"
      "  elect:      --trials=<k>\n"
      "  lowerbound: --alpha=<conductance target>\n"
      "  sweep:      --from= --to= --trials=\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args = CliArgs::parse(argc, argv);
    if (args.command() == "elect") return cmd_elect(args);
    if (args.command() == "explicit") return cmd_explicit(args);
    if (args.command() == "profile") return cmd_profile(args);
    if (args.command() == "lowerbound") return cmd_lowerbound(args);
    if (args.command() == "sweep") return cmd_sweep(args);
    usage();
    return args.command().empty() ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
