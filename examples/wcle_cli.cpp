// wcle_cli — the library as a command-line tool, driven by the algorithm
// registry and the sweep engine: every protocol (the paper's election and
// all baselines) and every experiment (E1-E13) is runnable through one
// surface.
//
//   wcle_cli list                                   algorithms + families + specs
//   wcle_cli run    --algo=election --family=expander --n=1024 --seed=7
//   wcle_cli trials --algo=flood_max --family=hypercube --n=256 --trials=20
//                   [--threads=8] [--base-seed=1000] [--format=json|csv]
//   wcle_cli sweep  --spec=e1 [--scale=0|1|2] [--format=text|csv|jsonl]
//   wcle_cli sweep  algo=election family=expander n=256,512,1024 trials=5
//                   drop=0,0.05 bandwidth=standard,wide   (grid grammar)
//
// Legacy commands (pre-registry spellings, kept working):
//   wcle_cli elect    --family=expander --n=1024 --seed=7 [--trials=5]
//   wcle_cli explicit --family=clique --n=512 --seed=3
//   wcle_cli profile  --family=torus --n=256        (tmix / conductance)
//   wcle_cli lowerbound --n=1000 --alpha=0.004      (build G(alpha) + elect)
//   wcle_cli sweep    --family=hypercube --from=64 --to=1024 --trials=3
//                     (doubling-sweep sugar for the grid engine)
//
// Common options: --family=<see `wcle_cli list`> --n= --seed= --c1= --c2=
//                 --wide --paper-schedule --source= --tmix= --budget=
// Unrecognized options produce a warning on stderr (typo protection).
#include <cstdint>
#include <iostream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "wcle/analysis/cli.hpp"
#include "wcle/analysis/experiment.hpp"
#include "wcle/api/registry.hpp"
#include "wcle/api/scenario.hpp"
#include "wcle/api/serialize.hpp"
#include "wcle/api/sink.hpp"
#include "wcle/api/sweep.hpp"
#include "wcle/api/trials.hpp"
#include "wcle/core/explicit_election.hpp"
#include "wcle/core/leader_election.hpp"
#include "wcle/graph/families.hpp"
#include "wcle/graph/lower_bound_graph.hpp"
#include "wcle/support/table.hpp"

namespace {

using namespace wcle;

// get_u64 with a 32-bit range check: --n / --tmix etc. must not silently
// wrap through static_cast (a wrapped-to-zero --tmix would flip known_tmix
// into its "estimate the oracle" path, the opposite of an explicit hint).
std::uint32_t get_u32(const CliArgs& args, const std::string& key,
                      std::uint32_t fallback) {
  const std::uint64_t v = args.get_u64(key, fallback);
  if (v > std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument("--" + key + "=" + std::to_string(v) +
                                " exceeds the 32-bit limit");
  return static_cast<std::uint32_t>(v);
}

/// get_u64 bounded to int for counts (--trials): no silent wrap to 0.
int get_count(const CliArgs& args, const std::string& key, int fallback) {
  const std::uint64_t v =
      args.get_u64(key, static_cast<std::uint64_t>(fallback));
  if (v > static_cast<std::uint64_t>(std::numeric_limits<int>::max()))
    throw std::invalid_argument("--" + key + "=" + std::to_string(v) +
                                " exceeds the supported range");
  return static_cast<int>(v);
}

Graph build_family(const CliArgs& args, const std::string& default_family,
                   NodeId default_n) {
  return make_family(args.get("family", default_family),
                     get_u32(args, "n", default_n), args.get_u64("seed", 1));
}

RunOptions options_from(const CliArgs& args) {
  RunOptions opt;
  opt.params.seed = args.get_u64("seed", 1);
  opt.params.c1 = args.get_double("c1", opt.params.c1);
  opt.params.c2 = args.get_double("c2", opt.params.c2);
  opt.params.wide_messages = args.get_bool("wide", false);
  opt.params.paper_schedule = args.get_bool("paper-schedule", false);
  opt.source = get_u32(args, "source", 0);
  opt.value_bits = get_u32(args, "value-bits", opt.value_bits);
  opt.tmix_hint = get_u32(args, "tmix", 0);
  opt.tmix_multiplier = args.get_double("tmix-mult", opt.tmix_multiplier);
  opt.probe_budget = args.get_u64("budget", 0);
  opt.max_rounds = args.get_u64("max-rounds", 0);
  return opt;
}

int cmd_list(const CliArgs&) {
  Table t({"algorithm", "kind", "caveat", "description"});
  for (const Algorithm* a : AlgorithmRegistry::instance().all()) {
    const std::string caveat = a->caveat();
    t.add_row({a->name(), kind_name(a->kind()), caveat.empty() ? "-" : caveat,
               a->describe()});
  }
  t.print(std::cout);
  std::cout << "\ngraph families:";
  for (const std::string& f : family_names()) std::cout << " " << f;
  std::cout << "\n  (lowerbound:<alpha> and dumbbell:<base> take a ':' "
               "parameter)\n";
  std::cout << "\nexperiments (wcle_cli sweep --spec=<name>):\n";
  for (const auto& [name, title] : builtin_experiment_titles())
    std::cout << "  " << name << (name.size() < 3 ? "  " : " ") << title
              << "\n";
  return 0;
}

int cmd_run(const CliArgs& args) {
  const Algorithm& algo =
      AlgorithmRegistry::instance().at(args.get("algo", "election"));
  const Graph g = build_family(args, "expander", 512);
  const RunResult r = algo.run(g, options_from(args));
  if (args.get("format", "text") == "json") {
    std::cout << to_json(r) << "\n";
  } else {
    std::cout << g.describe() << "\n" << r.summary() << "\n";
  }
  return r.success ? 0 : 1;
}

int cmd_trials(const CliArgs& args) {
  const Algorithm& algo =
      AlgorithmRegistry::instance().at(args.get("algo", "election"));
  const Graph g = build_family(args, "expander", 512);
  const int trials = get_count(args, "trials", 10);
  const unsigned threads = get_u32(args, "threads", 0);
  const std::uint64_t base_seed =
      args.get_u64("base-seed", args.get_u64("seed", 1000));
  const TrialStats s =
      run_trials(algo, g, options_from(args), trials, base_seed, threads);
  const std::string format = args.get("format", "text");
  if (format == "json") {
    std::cout << to_json(s) << "\n";
    return s.success_rate > 0.5 ? 0 : 1;
  }
  Table t({"metric", "mean", "stddev", "min", "median", "max"});
  const auto row = [&t](const std::string& name, const Summary& m) {
    t.add_row({name, Table::num(m.mean), Table::num(m.stddev),
               Table::num(m.min), Table::num(m.median), Table::num(m.max)});
  };
  row("congest messages", s.congest_messages);
  row("rounds", s.rounds);
  row("leader count", s.leader_count);
  // Always present (all-zero in the reliable model) so the row set — and
  // therefore the CSV schema — does not depend on the data.
  row("dropped messages", s.dropped_messages);
  for (const auto& [key, summary] : s.extras) row(key, summary);
  if (format == "csv") {
    // Rate rows only carry a mean; the spread columns stay empty.
    t.add_row({"success_rate", Table::num(s.success_rate), "", "", "", ""});
    t.add_row({"zero_leader_rate", Table::num(s.zero_leader_rate), "", "", "",
               ""});
    t.add_row({"multi_leader_rate", Table::num(s.multi_leader_rate), "", "",
               "", ""});
    t.write_csv(std::cout);
    return s.success_rate > 0.5 ? 0 : 1;
  }
  std::cout << g.describe() << "\nalgorithm: " << s.algorithm << " ("
            << s.trials << " trials, " << s.threads << " threads)\n";
  t.print(std::cout);
  std::cout << "success rate: " << s.success_rate
            << " (zero-leader " << s.zero_leader_rate << ", multi-leader "
            << s.multi_leader_rate << ")\n";
  return s.success_rate > 0.5 ? 0 : 1;
}

// Legacy commands read only the election knobs; deliberately NOT
// options_from, which would mark --source/--tmix/--budget/... consumed and
// mute the unconsumed-option warning for knobs these commands ignore.
ElectionParams params_from(const CliArgs& args) {
  ElectionParams p;
  p.seed = args.get_u64("seed", 1);
  p.c1 = args.get_double("c1", p.c1);
  p.c2 = args.get_double("c2", p.c2);
  p.wide_messages = args.get_bool("wide", false);
  p.paper_schedule = args.get_bool("paper-schedule", false);
  return p;
}

int cmd_elect(const CliArgs& args) {
  const Graph g = build_family(args, "expander", 512);
  std::cout << g.describe() << "\n";
  const int trials = get_count(args, "trials", 1);
  if (trials <= 1) {
    const ElectionResult r = run_leader_election(g, params_from(args));
    std::cout << (r.success()
                      ? "leader: node " + std::to_string(r.leaders[0])
                      : "FAILED (" + std::to_string(r.leaders.size()) +
                            " leaders)")
              << "\nmessages=" << r.totals.congest_messages
              << " rounds=" << r.totals.rounds << " phases=" << r.phases
              << " stop_t_u=" << r.final_length << "\n";
    return r.success() ? 0 : 1;
  }
  const ElectionTrialStats s = run_election_trials(
      g, params_from(args), trials, args.get_u64("seed", 1));
  Table t({"metric", "mean", "min", "max"});
  t.add_row({"congest messages", Table::num(s.congest_messages.mean),
             Table::num(s.congest_messages.min),
             Table::num(s.congest_messages.max)});
  t.add_row({"rounds", Table::num(s.rounds.mean), Table::num(s.rounds.min),
             Table::num(s.rounds.max)});
  t.add_row({"stop t_u", Table::num(s.final_length.mean),
             Table::num(s.final_length.min), Table::num(s.final_length.max)});
  t.add_row({"contenders", Table::num(s.contenders.mean),
             Table::num(s.contenders.min), Table::num(s.contenders.max)});
  t.print(std::cout);
  std::cout << "success rate: " << s.success_rate << "\n";
  return s.success_rate > 0.5 ? 0 : 1;
}

int cmd_explicit(const CliArgs& args) {
  const Graph g = build_family(args, "clique", 256);
  const ExplicitElectionResult r = run_explicit_election(g, params_from(args));
  std::cout << g.describe() << "\n"
            << "election:  " << r.election.totals.congest_messages
            << " msgs, " << r.election.totals.rounds << " rounds\n"
            << "broadcast: " << r.broadcast.totals.congest_messages
            << " msgs, " << r.broadcast.rounds << " rounds\n"
            << (r.success ? "success" : "FAILED") << "\n";
  return r.success ? 0 : 1;
}

int cmd_profile(const CliArgs& args) {
  const Graph g = build_family(args, "torus", 256);
  const GraphProfile p = profile_graph(
      g, get_u32(args, "samples", 4));
  std::cout << g.describe() << "\n"
            << "tmix ~ " << p.tmix << "\n"
            << "conductance: cheeger [" << p.cheeger_lower << ", "
            << p.cheeger_upper << "], sweep-cut " << p.sweep_conductance
            << "\n"
            << "Theorem 13 envelopes: "
            << theorem13_message_envelope(p.n, p.tmix) << " msgs, "
            << theorem13_time_envelope(p.n, p.tmix) << " rounds\n";
  return 0;
}

int cmd_lowerbound(const CliArgs& args) {
  Rng rng(args.get_u64("seed", 42));
  const LowerBoundGraph lb = make_lower_bound_graph(
      get_u32(args, "n", 1000),
      args.get_double("alpha", 0.004), rng);
  std::cout << lb.graph.describe() << "  (eps=" << lb.epsilon << ", "
            << lb.num_cliques << " cliques x " << lb.clique_size << ")\n";
  const ElectionResult r = run_leader_election(lb.graph, params_from(args));
  std::cout << (r.success() ? "elected 1 leader" : "FAILED") << " with "
            << r.totals.congest_messages << " msgs; Theorem 15 envelope "
            << theorem15_message_envelope(lb.graph.node_count(), lb.alpha)
            << "\n";
  return r.success() ? 0 : 1;
}

// The declarative sweep: a builtin spec (--spec=e1), grid-grammar
// positionals (algo=... family=... n=256,512 ...), or the legacy
// --from/--to doubling sugar — all three run through the same engine.
int cmd_sweep(const CliArgs& args) {
  ExperimentSpec spec;
  const std::string spec_name = args.get("spec", "");
  if (!spec_name.empty()) {
    const std::uint64_t scale_raw = args.get_u64(
        "scale", static_cast<std::uint64_t>(default_bench_scale()));
    if (scale_raw > 2)
      throw std::invalid_argument("--scale=" + std::to_string(scale_raw) +
                                  " (0 = quick, 1 = default, 2 = extended)");
    const int scale = static_cast<int>(scale_raw);
    // Grid-grammar positionals refine the builtin (e.g. trials=1 n=64):
    // axes they name are replaced, everything else keeps the builtin grid.
    spec = parse_spec_onto(builtin_experiment(spec_name, scale),
                           args.positionals());
  } else if (!args.positionals().empty()) {
    spec = parse_spec(args.positionals());
  } else {
    // Legacy sugar: --family --from --to --trials [--algo], doubling n.
    const NodeId from = get_u32(args, "from", 64);
    const NodeId to = get_u32(args, "to", 512);
    if (from == 0)
      throw std::invalid_argument("--from must be >= 1 (doubling sweep)");
    spec.algorithms = {args.get("algo", "election")};
    spec.families = {args.get("family", "hypercube")};
    spec.sizes.clear();
    for (NodeId n = from; n <= to;) {
      spec.sizes.push_back(n);
      if (n > std::numeric_limits<NodeId>::max() / 2) break;  // no wrap to 0
      n *= 2;
    }
    spec.trials = get_count(args, "trials", 3);
    // The pre-engine doubling sweep seeded trials and graphs from
    // --seed (default 1); keep that so recorded legacy runs reproduce.
    spec.base_seed = args.get_u64("seed", 1);
    spec.graph_seed = args.get_u64("seed", 1);
    spec.title = "sweep: " + spec.algorithms[0] + " on " + spec.families[0];
  }

  const unsigned threads = get_u32(args, "threads", 0);
  const std::string format = args.get("format", "text");
  if (format == "text") {
    TableSink sink(std::cout);
    run_sweep(spec, {&sink}, threads);
  } else if (format == "csv") {
    CsvSink sink(std::cout);
    run_sweep(spec, {&sink}, threads);
  } else if (format == "jsonl" || format == "json") {
    JsonlSink sink(std::cout);
    run_sweep(spec, {&sink}, threads);
  } else {
    throw std::invalid_argument("sweep: unknown --format=" + format +
                                " (text, csv, jsonl)");
  }
  return 0;
}

void usage() {
  std::cout <<
      "usage: wcle_cli <command> [options]\n"
      "  registry: list\n"
      "            run    --algo=<name> [--format=json]\n"
      "            trials --algo=<name> --trials=<k> [--threads=<t>]\n"
      "                   [--base-seed=<s>] [--format=json|csv]\n"
      "  sweep:    sweep --spec=<e1..e13> [--scale=0|1|2]\n"
      "                  [--format=text|csv|jsonl] [--threads=<t>]\n"
      "            sweep <key=v1,v2,..> ...   (grid grammar; keys: algo\n"
      "                  family n bandwidth drop trials base-seed graph-seed\n"
      "                  reliable extras + any RunOptions knob)\n"
      "            sweep --from= --to= --trials= [--algo=]  (doubling sugar)\n"
      "  legacy:   elect, explicit, profile, lowerbound\n"
      "  common:   --family=<see list> --n=<nodes> --seed=<u64>\n"
      "            --c1= --c2= --wide --paper-schedule --source=\n"
      "            --tmix= --tmix-mult= --budget= --value-bits=\n"
      "  elect:      --trials=<k>\n"
      "  lowerbound: --alpha=<conductance target>\n";
}

void warn_unconsumed(const CliArgs& args) {
  for (const std::string& key : args.unconsumed())
    std::cerr << "warning: --" << key << " was ignored by '" << args.command()
              << "' (unknown option, or not used by this command)\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args = CliArgs::parse(argc, argv);
    int rc = 2;
    if (args.command() == "list") rc = cmd_list(args);
    else if (args.command() == "run") rc = cmd_run(args);
    else if (args.command() == "trials") rc = cmd_trials(args);
    else if (args.command() == "elect") rc = cmd_elect(args);
    else if (args.command() == "explicit") rc = cmd_explicit(args);
    else if (args.command() == "profile") rc = cmd_profile(args);
    else if (args.command() == "lowerbound") rc = cmd_lowerbound(args);
    else if (args.command() == "sweep") rc = cmd_sweep(args);
    else {
      usage();
      return args.command().empty() ? 0 : 2;
    }
    warn_unconsumed(args);
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
