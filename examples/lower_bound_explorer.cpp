// Lower-bound explorer: walk through the Section 4 construction hands-on.
//
// Builds G(alpha) for a chosen conductance target, verifies the Lemma 16
// properties (uniform degrees, 4 external-edged nodes per clique, phi ~
// alpha), then runs the paper's election on this adversarial topology and
// shows where its cost lands between the Omega(sqrt n / phi^{3/4}) lower
// envelope and the O~(sqrt n * tmix) upper envelope.
//
//   ./build/examples/lower_bound_explorer [n] [alpha]
#include <cstdlib>
#include <iostream>

#include "wcle/analysis/experiment.hpp"
#include "wcle/core/leader_election.hpp"
#include "wcle/graph/lower_bound_graph.hpp"
#include "wcle/graph/spectral.hpp"

int main(int argc, char** argv) {
  using namespace wcle;
  const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 1200;
  const double alpha = argc > 2 ? std::atof(argv[2]) : 0.004;

  Rng rng(42);
  const LowerBoundGraph lb = make_lower_bound_graph(n, alpha, rng);
  std::cout << "G(alpha): " << lb.graph.describe() << "\n"
            << "  alpha = " << alpha << ", eps = " << lb.epsilon << "\n"
            << "  " << lb.num_cliques << " cliques of size " << lb.clique_size
            << " over a random 4-regular super-node graph (Figure 1)\n"
            << "  " << lb.inter_clique_edges.size()
            << " inter-clique edges; every node degree "
            << lb.graph.min_degree() << " (Figure 2's surgery)\n";

  const double sweep = conductance_sweep(lb.graph, 3000);
  const CheegerBounds cb = cheeger_bounds(spectral_gap(lb.graph, 3000));
  std::cout << "  conductance: sweep-cut " << sweep << " (target Theta("
            << alpha << ")), Cheeger in [" << cb.lower << ", " << cb.upper
            << "]\n\n";

  ElectionParams params;
  params.seed = 3;
  const ElectionResult r = run_leader_election(lb.graph, params);
  const GraphProfile prof = profile_graph(lb.graph, 2);
  const double lower =
      theorem15_message_envelope(lb.graph.node_count(), alpha);
  const double upper =
      theorem13_message_envelope(lb.graph.node_count(), prof.tmix);
  std::cout << "election on G(alpha): "
            << (r.success() ? "1 leader" : "FAILED") << ", "
            << r.totals.congest_messages << " CONGEST messages, stop t_u = "
            << r.final_length << " (tmix ~ " << prof.tmix << ")\n"
            << "Theorem 15 lower envelope sqrt(n)/phi^{3/4}: " << lower << "\n"
            << "Theorem 13 upper envelope sqrt(n) log^{7/2} n tmix: " << upper
            << "\n"
            << "measured/lower = "
            << double(r.totals.congest_messages) / lower
            << " (must be >= 1: no algorithm beats the bound here)\n";
  return r.success() ? 0 : 1;
}
