// Quickstart: elect a leader on a well-connected graph in ~20 lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [n] [seed]
//
// Walks through the library's happy path: build a graph, characterize its
// connectivity (mixing time / conductance), run the paper's implicit leader
// election, and inspect the cost the paper's Theorem 13 bounds.
#include <cstdlib>
#include <iostream>

#include "wcle/analysis/experiment.hpp"
#include "wcle/api/registry.hpp"
#include "wcle/api/trials.hpp"
#include "wcle/core/leader_election.hpp"
#include "wcle/graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace wcle;
  const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 512;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  // 1. A well-connected network: a random 6-regular graph (an expander whp).
  Rng graph_rng(seed);
  const Graph g = make_random_regular(n, 6, graph_rng);
  std::cout << "network: " << g.describe() << "\n";

  // 2. Characterize it: the paper's complexity is parameterized by tmix/phi.
  const GraphProfile profile = profile_graph(g, 2);
  std::cout << "mixing time ~ " << profile.tmix
            << " rounds, conductance <= " << profile.sweep_conductance << "\n";

  // 3. Elect. Nodes know only n and their ports; everything else is derived.
  ElectionParams params;
  params.seed = seed;
  const ElectionResult result = run_leader_election(g, params);

  if (result.success()) {
    std::cout << "leader: node " << result.leaders[0] << " (random id "
              << result.leader_random_id << ")\n";
  } else {
    std::cout << "election failed (" << result.leaders.size()
              << " leaders) — rerun with another seed; failure probability "
                 "is polynomially small\n";
  }
  std::cout << "contenders: " << result.contenders.size() << "\n"
            << "phases (guess-and-double): " << result.phases
            << ", final walk length t_u = " << result.final_length << "\n"
            << "cost: " << result.totals.congest_messages
            << " CONGEST messages in " << result.totals.rounds << " rounds\n"
            << "Theorem 13 envelopes: "
            << theorem13_message_envelope(n, profile.tmix) << " messages, "
            << theorem13_time_envelope(n, profile.tmix) << " rounds\n";

  // 4. The same election through the unified registry API — the surface the
  // CLI, the trial engine, and every baseline share (`wcle_cli list`).
  const Algorithm& flood = AlgorithmRegistry::instance().at("flood_max");
  RunOptions options;
  options.set_seed(seed);
  const TrialStats baseline = run_trials(flood, g, options, 3, seed);
  std::cout << "baseline " << baseline.algorithm << ": "
            << baseline.congest_messages.mean << " msgs mean over "
            << baseline.trials << " trials ("
            << baseline.congest_messages.mean /
                   static_cast<double>(result.totals.congest_messages)
            << "x the paper's algorithm on this run)\n";
  return result.success() ? 0 : 1;
}
