// Datacenter coordinator election on a hypercube fabric.
//
// Hypercubes are the paper's second showcase family (tmix = O(log n log log
// n)): think of a 2^d-node cluster wired as a hypercube choosing a
// coordinator for job scheduling after a crash-restart, where the previous
// coordinator's identity is lost and every rack boots simultaneously — the
// paper's synchronous anonymous start. This example runs repeated elections
// (as a crash-recovery service would), tracking cost stability and the
// guess-and-double behavior phase by phase.
//
//   ./build/examples/datacenter_hypercube [dim] [epochs]
#include <cstdlib>
#include <iostream>

#include "wcle/core/leader_election.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/graph/spectral.hpp"

int main(int argc, char** argv) {
  using namespace wcle;
  const std::uint32_t dim =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 9;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 5;

  const Graph fabric = make_hypercube(dim);
  std::cout << "fabric: " << fabric.describe() << " (hypercube dim " << dim
            << ")\n";
  const std::uint64_t tmix = mixing_time_exact(fabric, 1u << 18);
  std::cout << "mixing time: " << tmix
            << " rounds (theory: O(log n log log n))\n\n";

  int elected = 0;
  std::uint64_t total_msgs = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    ElectionParams params;
    params.seed = 0xDC0 + static_cast<std::uint64_t>(epoch);
    const ElectionResult r = run_leader_election(fabric, params);
    std::cout << "epoch " << epoch << ": ";
    if (r.success()) {
      ++elected;
      std::cout << "coordinator = node " << r.leaders[0];
    } else {
      std::cout << "FAILED (" << r.leaders.size() << " leaders)";
    }
    std::cout << " | contenders " << r.contenders.size() << ", stop t_u "
              << r.final_length << " (" << r.phases << " phases), "
              << r.totals.congest_messages << " msgs, " << r.totals.rounds
              << " rounds\n";
    for (const PhaseStats& ps : r.phase_stats)
      std::cout << "    phase t_u=" << ps.length << ": " << ps.active
                << " active, " << ps.metrics.congest_messages << " msgs, "
                << ps.metrics.rounds << " rounds\n";
    total_msgs += r.totals.congest_messages;
  }
  std::cout << "\n" << elected << "/" << epochs << " epochs elected; mean "
            << total_msgs / static_cast<std::uint64_t>(epochs)
            << " msgs/epoch — note t_u stabilizes near tmix=" << tmix
            << " every epoch without any node knowing tmix.\n";
  return elected == epochs ? 0 : 1;
}
