// End-to-end tests for wcle::serve — a real Server on an ephemeral loopback
// port, driven by a minimal blocking HTTP client over actual sockets: the
// submit/poll/stream round trip, byte-identity of streamed results against
// an in-process run_sweep at several worker counts, cell-cache hits on
// resubmission (observed through /metricz), malformed-request handling, and
// graceful drain. Plus direct unit coverage of the HTTP parser and the
// CellCache eviction policy.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "wcle/api/scenario.hpp"
#include "wcle/api/sink.hpp"
#include "wcle/api/sweep.hpp"
#include "wcle/serve/cell_cache.hpp"
#include "wcle/serve/http.hpp"
#include "wcle/serve/server.hpp"

namespace wcle {
namespace {

// ---------------------------------------------------------------- client --

/// Blocking loopback connection (throws-free; ASSERT on fd < 0 at call
/// sites). Closes on destruction.
class ClientConn {
 public:
  explicit ClientConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (fd_ >= 0 &&
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~ClientConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  ClientConn(const ClientConn&) = delete;
  ClientConn& operator=(const ClientConn&) = delete;

  bool ok() const { return fd_ >= 0; }

  void send_all(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
  }

  /// Reads until the peer closes.
  std::string recv_to_eof() {
    std::string out;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return out;
      out.append(buf, static_cast<std::size_t>(n));
    }
  }

  /// Reads until the response head is complete; returns everything received
  /// so far (head plus any body bytes that rode along).
  void recv_head(std::string* out) {
    char buf[4096];
    while (out->find("\r\n\r\n") == std::string::npos) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out->append(buf, static_cast<std::size_t>(n));
    }
  }

  /// Reads exactly one Content-Length-framed response (keep-alive safe).
  std::string recv_response() {
    std::string out;
    char buf[4096];
    while (out.find("\r\n\r\n") == std::string::npos) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return out;
      out.append(buf, static_cast<std::size_t>(n));
    }
    const std::size_t head_end = out.find("\r\n\r\n") + 4;
    std::size_t content_length = 0;
    std::istringstream head(out.substr(0, head_end));
    std::string line;
    while (std::getline(head, line)) {
      if (line.rfind("Content-Length:", 0) == 0)
        content_length = std::stoul(line.substr(15));
    }
    while (out.size() < head_end + content_length) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return out;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out.substr(0, head_end + content_length);
  }

 private:
  int fd_ = -1;
};

struct Response {
  int status = 0;
  std::string head;
  std::string body;  ///< chunked bodies already decoded
};

Response parse_response(const std::string& raw) {
  Response r;
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return r;
  r.head = raw.substr(0, head_end);
  if (r.head.size() > 12) r.status = std::stoi(r.head.substr(9, 3));
  std::string body = raw.substr(head_end + 4);
  if (r.head.find("Transfer-Encoding: chunked") == std::string::npos) {
    r.body = std::move(body);
    return r;
  }
  // Chunked decoding: <hex>\r\n<data>\r\n ... 0\r\n\r\n
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t eol = body.find("\r\n", pos);
    if (eol == std::string::npos) break;
    const std::size_t len = std::stoul(body.substr(pos, eol - pos), nullptr, 16);
    if (len == 0) break;
    r.body += body.substr(eol + 2, len);
    pos = eol + 2 + len + 2;
  }
  return r;
}

/// One-shot request: connect, send, read to EOF (the server closes —
/// Connection: close on plain responses, stream end on chunked ones).
Response one_shot(std::uint16_t port, const std::string& request) {
  ClientConn conn(port);
  EXPECT_TRUE(conn.ok());
  conn.send_all(request);
  return parse_response(conn.recv_to_eof());
}

std::string get_request(const std::string& target, bool close = true) {
  return "GET " + target + " HTTP/1.1\r\nHost: t\r\n" +
         (close ? "Connection: close\r\n" : "") + "\r\n";
}

std::string post_sweep(const std::string& spec_tokens, bool close = true) {
  return "POST /sweep HTTP/1.1\r\nHost: t\r\nContent-Length: " +
         std::to_string(spec_tokens.size()) + "\r\n" +
         (close ? "Connection: close\r\n" : "") + "\r\n" + spec_tokens;
}

// --------------------------------------------------------------- fixture --

/// A live server on an ephemeral port, running until drained at teardown.
class ServeTest : public ::testing::Test {
 protected:
  void start(unsigned workers, std::uint64_t cache_bytes = 8u << 20) {
    ServeConfig config;
    config.host = "127.0.0.1";
    config.port = 0;  // ephemeral
    config.workers = workers;
    config.cache_max_bytes = cache_bytes;
    server_ = std::make_unique<Server>(config);
    server_->listen();
    port_ = server_->port();
    thread_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    if (server_) server_->begin_drain();
    if (thread_.joinable()) thread_.join();
  }

  std::unique_ptr<Server> server_;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

std::string expected_jsonl(const std::string& spec_text) {
  const ExperimentSpec spec = parse_spec(spec_text);
  std::ostringstream out;
  JsonlSink sink(out);
  run_sweep(spec, {&sink});
  return out.str();
}

constexpr const char* kSmallSpec =
    "algo=flood_max family=clique n=16,32 trials=2 drop=0,0.5";

// ----------------------------------------------------------------- tests --

TEST_F(ServeTest, SubmitPollStreamRoundTrip) {
  start(/*workers=*/2);
  const Response submit = one_shot(port_, post_sweep(kSmallSpec));
  EXPECT_EQ(submit.status, 202);
  EXPECT_NE(submit.body.find("\"job\":0"), std::string::npos);
  EXPECT_NE(submit.body.find("\"cells\":4"), std::string::npos);

  // The results stream blocks until the job completes — the poll-free poll.
  const Response results =
      one_shot(port_, get_request("/jobs/0/results"));
  EXPECT_EQ(results.status, 200);
  EXPECT_EQ(results.body, expected_jsonl(kSmallSpec));

  const Response status = one_shot(port_, get_request("/jobs/0"));
  EXPECT_EQ(status.status, 200);
  EXPECT_NE(status.body.find("\"state\":\"done\""), std::string::npos);
  EXPECT_NE(status.body.find("\"completed\":4"), std::string::npos);

  const Response listing = one_shot(port_, get_request("/jobs"));
  EXPECT_EQ(listing.status, 200);
  EXPECT_NE(listing.body.find("\"job\":0"), std::string::npos);
}

TEST_F(ServeTest, StreamedBytesAreIdenticalAcrossWorkerCounts) {
  // The serve determinism contract: any worker count serves the same bytes
  // as the CLI sweep. Exercise 1 (fully serial) and 4 (cells race).
  const std::string expected = expected_jsonl(kSmallSpec);
  for (const unsigned workers : {1u, 4u}) {
    ServeConfig config;
    config.host = "127.0.0.1";
    config.port = 0;
    config.workers = workers;
    Server server(config);
    server.listen();
    std::thread runner([&server] { server.run(); });
    const Response submit = one_shot(server.port(), post_sweep(kSmallSpec));
    EXPECT_EQ(submit.status, 202) << "workers=" << workers;
    const Response results =
        one_shot(server.port(), get_request("/jobs/0/results"));
    EXPECT_EQ(results.body, expected) << "workers=" << workers;
    server.begin_drain();
    runner.join();
  }
}

TEST_F(ServeTest, CacheHitsOnResubmissionObservableInMetricz) {
  start(/*workers=*/2);
  one_shot(port_, post_sweep(kSmallSpec));
  const Response first = one_shot(port_, get_request("/jobs/0/results"));

  // Same grid again: every cell must come from the cache, byte-identically.
  const Response resubmit = one_shot(port_, post_sweep(kSmallSpec));
  EXPECT_NE(resubmit.body.find("\"job\":1"), std::string::npos);
  const Response second = one_shot(port_, get_request("/jobs/1/results"));
  EXPECT_EQ(second.body, first.body);

  const Response status = one_shot(port_, get_request("/jobs/1"));
  EXPECT_NE(status.body.find("\"cache_hits\":4"), std::string::npos);

  const Response metricz = one_shot(port_, get_request("/metricz"));
  EXPECT_EQ(metricz.status, 200);
  EXPECT_NE(metricz.body.find("\"serve.cache.hits\":4"), std::string::npos);
  EXPECT_NE(metricz.body.find("\"serve.cache.misses\":4"), std::string::npos);
  EXPECT_NE(metricz.body.find("\"serve.cells.completed\":8"),
            std::string::npos);

  const Response cache = one_shot(port_, get_request("/cache"));
  EXPECT_EQ(cache.status, 200);
  EXPECT_NE(cache.body.find("\"entries\":4"), std::string::npos);
  EXPECT_NE(cache.body.find("name=single algo=flood_max family=clique"),
            std::string::npos);
}

TEST_F(ServeTest, OverlappingGridsShareCachedCells) {
  start(/*workers=*/2);
  one_shot(port_, post_sweep("algo=flood_max family=clique n=16,32 trials=2"));
  one_shot(port_, get_request("/jobs/0/results"));  // block until done
  // A different grid that contains one shared cell (n=32).
  one_shot(port_, post_sweep("algo=flood_max family=clique n=32,64 trials=2"));
  one_shot(port_, get_request("/jobs/1/results"));
  const Response status = one_shot(port_, get_request("/jobs/1"));
  EXPECT_NE(status.body.find("\"cache_hits\":1"), std::string::npos);
  // And the served bytes still match a fresh CLI-equivalent sweep.
  const Response results = one_shot(port_, get_request("/jobs/1/results"));
  EXPECT_EQ(results.body,
            expected_jsonl("algo=flood_max family=clique n=32,64 trials=2"));
}

TEST_F(ServeTest, MalformedRequestsAnswer4xx) {
  start(/*workers=*/1);
  EXPECT_EQ(one_shot(port_, "BOGUS\r\n\r\n").status, 400);
  EXPECT_EQ(one_shot(port_, "GET /healthz HTTP/2.0\r\n\r\n").status, 505);
  EXPECT_EQ(one_shot(port_, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n").status,
            404);
  EXPECT_EQ(one_shot(port_, get_request("/jobs/999")).status, 404);
  EXPECT_EQ(one_shot(port_, get_request("/jobs/abc")).status, 404);
  EXPECT_EQ(one_shot(port_, get_request("/sweep")).status, 405);  // GET
  EXPECT_EQ(one_shot(port_,
                     "POST /sweep HTTP/1.1\r\nHost: t\r\n"
                     "Content-Length: zap\r\n\r\n")
                .status,
            400);
  EXPECT_EQ(one_shot(port_,
                     "POST /sweep HTTP/1.1\r\nHost: t\r\n"
                     "Transfer-Encoding: chunked\r\n\r\n")
                .status,
            501);
  // Well-formed HTTP, malformed spec: a clean 400 with the parser's message.
  const Response bad_spec = one_shot(port_, post_sweep("algo=nosuch n=8"));
  EXPECT_EQ(bad_spec.status, 400);
  EXPECT_NE(bad_spec.body.find("unknown algorithm"), std::string::npos);
  // The daemon survives all of the above.
  EXPECT_EQ(one_shot(port_, get_request("/healthz")).status, 200);
}

TEST_F(ServeTest, KeepAliveServesSequentialRequestsOnOneConnection) {
  start(/*workers=*/1);
  ClientConn conn(port_);
  ASSERT_TRUE(conn.ok());
  conn.send_all(get_request("/healthz", /*close=*/false));
  const Response first = parse_response(conn.recv_response());
  EXPECT_EQ(first.status, 200);
  conn.send_all(get_request("/metricz", /*close=*/false));
  const Response second = parse_response(conn.recv_response());
  EXPECT_EQ(second.status, 200);
  EXPECT_NE(second.body.find("serve.http.requests"), std::string::npos);
}

TEST_F(ServeTest, DrainFinishesOpenStreamsAndStopsAccepting) {
  start(/*workers=*/2);
  // Open the stream BEFORE draining, on a job that may still be running.
  ClientConn stream(port_);
  ASSERT_TRUE(stream.ok());
  const Response submit = one_shot(port_, post_sweep(kSmallSpec));
  EXPECT_EQ(submit.status, 202);
  stream.send_all(get_request("/jobs/0/results"));
  // Wait for the response head: once it arrives the server has committed
  // this connection to the stream, so the drain must let it finish. (Without
  // this, the drain could be polled before the request bytes and close the
  // still-idle connection — allowed, but not what this test is about.)
  std::string raw;
  stream.recv_head(&raw);
  ASSERT_NE(raw.find("HTTP/1.1 200"), std::string::npos);

  server_->begin_drain();

  // The open stream still completes with the full byte-exact payload.
  raw += stream.recv_to_eof();
  const Response results = parse_response(raw);
  EXPECT_EQ(results.status, 200);
  EXPECT_EQ(results.body, expected_jsonl(kSmallSpec));

  // run() returns once the last connection is gone; new connects fail.
  thread_.join();
  ClientConn refused(port_);
  if (refused.ok()) {
    // A connect may be absorbed by OS backlog semantics; any request on it
    // must at least see an immediate close.
    refused.send_all(get_request("/healthz"));
    EXPECT_EQ(refused.recv_to_eof(), "");
  }
}

// ------------------------------------------------ http parser unit tests --

TEST(HttpParse, SplitsPipelinedRequestsAndDecodesTargets) {
  std::string in =
      "GET /jobs/7?verbose=1&x=a%20b HTTP/1.1\r\nHost: t\r\n\r\n"
      "POST /sweep HTTP/1.1\r\nContent-Length: 4\r\n\r\nn=16";
  HttpParseResult first = http_parse(in);
  ASSERT_EQ(first.status, HttpParseStatus::kRequest);
  EXPECT_EQ(first.request.method, "GET");
  EXPECT_EQ(first.request.path, "/jobs/7");
  EXPECT_EQ(first.request.query.at("verbose"), "1");
  EXPECT_EQ(first.request.query.at("x"), "a b");
  HttpParseResult second = http_parse(in);
  ASSERT_EQ(second.status, HttpParseStatus::kRequest);
  EXPECT_EQ(second.request.method, "POST");
  EXPECT_EQ(second.request.body, "n=16");
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(http_parse(in).status, HttpParseStatus::kNeedMore);
}

TEST(HttpParse, IncompleteRequestsWaitForMoreBytes) {
  std::string in = "GET /healthz HTTP/1.1\r\nHost:";
  EXPECT_EQ(http_parse(in).status, HttpParseStatus::kNeedMore);
  in += " t\r\n\r\n";
  EXPECT_EQ(http_parse(in).status, HttpParseStatus::kRequest);
  // Body still arriving: head parsed but held until Content-Length bytes.
  std::string partial = "POST /sweep HTTP/1.1\r\nContent-Length: 9\r\n\r\nn=1";
  EXPECT_EQ(http_parse(partial).status, HttpParseStatus::kNeedMore);
  partial += "6 c1=2";
  EXPECT_EQ(http_parse(partial).request.body, "n=16 c1=2");
}

TEST(HttpParse, EnforcesLimitsAndFraming) {
  std::string huge_header = "GET / HTTP/1.1\r\nX: " +
                            std::string(kHttpMaxHeaderBytes, 'a');
  EXPECT_EQ(http_parse(huge_header).error_status, 431);
  std::string huge_body = "POST /sweep HTTP/1.1\r\nContent-Length: " +
                          std::to_string(kHttpMaxBodyBytes + 1) + "\r\n\r\n";
  EXPECT_EQ(http_parse(huge_body).error_status, 413);
  std::string no_colon = "GET / HTTP/1.1\r\nbroken header\r\n\r\n";
  EXPECT_EQ(http_parse(no_colon).error_status, 400);
}

TEST(HttpWriters, ChunkFramingRoundTrips) {
  EXPECT_EQ(http_chunk("hello"), "5\r\nhello\r\n");
  EXPECT_EQ(http_chunk(""), "");  // never emit a premature terminator
  EXPECT_EQ(std::string(kHttpStreamEnd), "0\r\n\r\n");
  const std::string response = http_response(404, "application/json", "{}",
                                             /*close=*/true);
  EXPECT_NE(response.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
}

// ------------------------------------------------- cell cache unit tests --

CellCache::Value value_of(int trials) {
  CellCache::Value v;
  v.n = 16;
  v.m = 120;
  v.stats.trials = trials;
  return v;
}

TEST(CellCacheUnit, HitRefreshesRecencyAndCountsStats) {
  CellCache cache(/*max_bytes=*/1u << 20);
  CellCache::Value out;
  EXPECT_FALSE(cache.lookup("a", &out));
  cache.insert("a", value_of(3));
  EXPECT_TRUE(cache.lookup("a", &out));
  EXPECT_EQ(out.stats.trials, 3);
  const CellCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, 0u);
}

TEST(CellCacheUnit, EvictsLeastRecentlyUsedUnderPressure) {
  // Size the cap to hold roughly two entries; key "a" is kept warm by a
  // lookup, so inserting "c" must evict "b".
  CellCache probe(1u << 20);
  probe.insert("a", value_of(1));
  const std::uint64_t per_entry = probe.stats().bytes;
  CellCache cache(2 * per_entry + per_entry / 2);
  cache.insert("a", value_of(1));
  cache.insert("b", value_of(2));
  CellCache::Value out;
  EXPECT_TRUE(cache.lookup("a", &out));  // warm "a"
  cache.insert("c", value_of(3));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.lookup("a", &out));
  EXPECT_FALSE(cache.lookup("b", &out));  // the cold one went
  EXPECT_TRUE(cache.lookup("c", &out));
}

TEST(CellCacheUnit, ZeroCapacityDisablesCaching) {
  CellCache cache(0);
  cache.insert("a", value_of(1));
  CellCache::Value out;
  EXPECT_FALSE(cache.lookup("a", &out));
  EXPECT_EQ(cache.stats().entries, 0u);
}

}  // namespace
}  // namespace wcle
