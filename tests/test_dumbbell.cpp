#include "wcle/graph/dumbbell.hpp"

#include <gtest/gtest.h>

#include "wcle/graph/generators.hpp"

namespace wcle {
namespace {

TEST(Dumbbell, StructureFromRing) {
  const Graph base = make_ring(8);
  const DumbbellGraph d = make_dumbbell(base, {0, 1}, {3, 4});
  EXPECT_EQ(d.graph.node_count(), 16u);
  // 2*(m-1) retained edges + 2 bridges = 2m.
  EXPECT_EQ(d.graph.edge_count(), 2u * base.edge_count());
  EXPECT_TRUE(d.graph.is_connected());
  EXPECT_EQ(d.base_n, 8u);
  EXPECT_TRUE(d.on_left(7));
  EXPECT_FALSE(d.on_left(8));
}

TEST(Dumbbell, BridgesConnectTheCutEndpoints) {
  const Graph base = make_torus(4, 4);
  const DumbbellGraph d = make_dumbbell(base, {0, 1}, {5, 6});
  EXPECT_EQ(d.bridge1.a, 0u);
  EXPECT_EQ(d.bridge1.b, 16u + 5u);
  EXPECT_EQ(d.bridge2.a, 1u);
  EXPECT_EQ(d.bridge2.b, 16u + 6u);
  // The bridges exist as edges.
  auto has_edge = [&](NodeId a, NodeId b) {
    for (NodeId w : d.graph.neighbors(a))
      if (w == b) return true;
    return false;
  };
  EXPECT_TRUE(has_edge(d.bridge1.a, d.bridge1.b));
  EXPECT_TRUE(has_edge(d.bridge2.a, d.bridge2.b));
}

TEST(Dumbbell, CutEdgesAreRemoved) {
  const Graph base = make_ring(6);
  const DumbbellGraph d = make_dumbbell(base, {2, 3}, {4, 5});
  auto has_edge = [&](NodeId a, NodeId b) {
    for (NodeId w : d.graph.neighbors(a))
      if (w == b) return true;
    return false;
  };
  EXPECT_FALSE(has_edge(2, 3));
  EXPECT_FALSE(has_edge(6 + 4, 6 + 5));
}

TEST(Dumbbell, DegreesPreserved) {
  // Cut endpoints lose one edge and gain a bridge; all degrees unchanged.
  const Graph base = make_torus(3, 5);
  const DumbbellGraph d = make_dumbbell(base, {1, 2}, {7, 8});
  for (NodeId v = 0; v < d.graph.node_count(); ++v)
    EXPECT_EQ(d.graph.degree(v), 4u);
}

TEST(Dumbbell, RequiresTwoConnectedBase) {
  EXPECT_THROW(make_dumbbell(make_path(5), {0, 1}, {2, 3}),
               std::invalid_argument);
}

TEST(Dumbbell, RequiresCutEdgesExist) {
  const Graph base = make_ring(6);
  EXPECT_THROW(make_dumbbell(base, {0, 2}, {3, 4}), std::invalid_argument);
}

TEST(Dumbbell, RandomDumbbellIsValid) {
  Rng rng(17);
  const Graph base = make_hypercube(4);
  const DumbbellGraph d = make_random_dumbbell(base, rng);
  EXPECT_EQ(d.graph.node_count(), 32u);
  EXPECT_TRUE(d.graph.is_connected());
  EXPECT_EQ(d.graph.edge_count(), 2u * base.edge_count());
}

TEST(Dumbbell, LeftCopyIsIsomorphicMinusCut) {
  // Every base edge except the cut must exist inside the left copy.
  const Graph base = make_ring(7);
  const DumbbellGraph d = make_dumbbell(base, {0, 1}, {2, 3});
  auto has_edge = [&](NodeId a, NodeId b) {
    for (NodeId w : d.graph.neighbors(a))
      if (w == b) return true;
    return false;
  };
  for (const Edge& e : base.edges()) {
    const bool is_cut = (std::min(e.a, e.b) == 0 && std::max(e.a, e.b) == 1);
    EXPECT_EQ(has_edge(e.a, e.b), !is_cut);
  }
}

}  // namespace
}  // namespace wcle
