// Tests for the second wave of graph families: star, complete bipartite,
// Barabasi-Albert, Watts-Strogatz — including the spectral behaviours that
// make them interesting election substrates.
#include <gtest/gtest.h>

#include <algorithm>

#include "wcle/core/leader_election.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/graph/spectral.hpp"

namespace wcle {
namespace {

TEST(Star, Shape) {
  const Graph g = make_star(10);
  EXPECT_EQ(g.edge_count(), 9u);
  EXPECT_EQ(g.degree(0), 9u);
  for (NodeId v = 1; v < 10; ++v) EXPECT_EQ(g.degree(v), 1u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_THROW(make_star(2), std::invalid_argument);
}

TEST(Star, MixesFastDespiteIrregularity) {
  // Every leaf is one lazy hop from the hub: tmix = O(log n)-ish.
  EXPECT_LE(mixing_time_exact(make_star(64), 1u << 12), 32u);
}

TEST(CompleteBipartite, Shape) {
  const Graph g = make_complete_bipartite(3, 5);
  EXPECT_EQ(g.node_count(), 8u);
  EXPECT_EQ(g.edge_count(), 15u);
  for (NodeId i = 0; i < 3; ++i) EXPECT_EQ(g.degree(i), 5u);
  for (NodeId j = 3; j < 8; ++j) EXPECT_EQ(g.degree(j), 3u);
  // No edge within a side.
  for (NodeId i = 0; i < 3; ++i)
    for (NodeId w : g.neighbors(i)) EXPECT_GE(w, 3u);
  EXPECT_THROW(make_complete_bipartite(0, 3), std::invalid_argument);
}

TEST(BarabasiAlbert, SizeAndConnectivity) {
  Rng rng(11);
  const Graph g = make_barabasi_albert(300, 3, rng);
  EXPECT_EQ(g.node_count(), 300u);
  // Seed clique C(4,2)=6 edges + 296 arrivals x 3 edges.
  EXPECT_EQ(g.edge_count(), 6u + 296u * 3u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_GE(g.min_degree(), 3u);
}

TEST(BarabasiAlbert, DegreeDistributionIsHeavyTailed) {
  Rng rng(13);
  const Graph g = make_barabasi_albert(500, 2, rng);
  // A hub must emerge: max degree far above the median (= m0-ish).
  std::vector<std::uint32_t> degs;
  for (NodeId v = 0; v < g.node_count(); ++v) degs.push_back(g.degree(v));
  std::sort(degs.begin(), degs.end());
  EXPECT_LE(degs[degs.size() / 2], 4u);
  EXPECT_GE(degs.back(), 20u);
}

TEST(BarabasiAlbert, RejectsBadArgs) {
  Rng rng(1);
  EXPECT_THROW(make_barabasi_albert(3, 2, rng), std::invalid_argument);
  EXPECT_THROW(make_barabasi_albert(10, 0, rng), std::invalid_argument);
}

TEST(WattsStrogatz, BetaZeroIsRingLattice) {
  Rng rng(17);
  const Graph g = make_watts_strogatz(20, 2, 0.0, rng);
  EXPECT_EQ(g.edge_count(), 40u);
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(WattsStrogatz, RewiringShrinksMixingTime) {
  Rng r1(19), r2(19);
  const Graph lattice = make_watts_strogatz(64, 2, 0.0, r1);
  const Graph small_world = make_watts_strogatz(64, 2, 0.3, r2);
  const std::uint64_t t_lat = mixing_time_exact(lattice, 1u << 16);
  const std::uint64_t t_sw = mixing_time_exact(small_world, 1u << 16);
  EXPECT_LT(t_sw, t_lat / 2);
}

TEST(WattsStrogatz, StaysConnectedAndSimple) {
  for (std::uint64_t s = 1; s <= 5; ++s) {
    Rng rng(s);
    const Graph g = make_watts_strogatz(100, 3, 0.2, rng);
    EXPECT_TRUE(g.is_connected());
    EXPECT_EQ(g.node_count(), 100u);
  }
}

TEST(WattsStrogatz, RejectsBadArgs) {
  Rng rng(1);
  EXPECT_THROW(make_watts_strogatz(10, 5, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(make_watts_strogatz(10, 0, 0.1, rng), std::invalid_argument);
}

TEST(NewFamilies, ElectionSucceedsOnAll) {
  // The paper's algorithm is family-agnostic: it must elect on irregular,
  // heavy-tailed, and small-world graphs too.
  Rng rng(23);
  std::vector<Graph> graphs;
  graphs.push_back(make_star(128));
  graphs.push_back(make_complete_bipartite(40, 60));
  graphs.push_back(make_barabasi_albert(200, 3, rng));
  graphs.push_back(make_watts_strogatz(150, 3, 0.3, rng));
  for (const Graph& g : graphs) {
    ElectionParams p;
    p.seed = 9;
    const ElectionResult r = run_leader_election(g, p);
    EXPECT_TRUE(r.success()) << g.describe();
    EXPECT_LE(r.leaders.size(), 1u) << g.describe();
  }
}

}  // namespace
}  // namespace wcle
