#include "wcle/analysis/cli.hpp"

#include <gtest/gtest.h>

namespace wcle {
namespace {

CliArgs parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"wcle_cli"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return CliArgs::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, CommandAndPositionals) {
  const CliArgs a = parse({"elect", "extra1", "extra2"});
  EXPECT_EQ(a.command(), "elect");
  EXPECT_EQ(a.positionals(),
            (std::vector<std::string>{"extra1", "extra2"}));
}

TEST(Cli, EqualsForm) {
  const CliArgs a = parse({"elect", "--n=1024", "--family=torus"});
  EXPECT_EQ(a.get_u64("n", 0), 1024u);
  EXPECT_EQ(a.get("family", ""), "torus");
}

TEST(Cli, SeparatedValueForm) {
  const CliArgs a = parse({"elect", "--n", "256"});
  EXPECT_EQ(a.get_u64("n", 0), 256u);
}

TEST(Cli, BareFlag) {
  const CliArgs a = parse({"elect", "--wide", "--n=4"});
  EXPECT_TRUE(a.get_bool("wide", false));
  EXPECT_FALSE(a.get_bool("absent", false));
  EXPECT_TRUE(a.get_bool("absent", true));
}

TEST(Cli, BooleanSpellings) {
  EXPECT_TRUE(parse({"x", "--f=true"}).get_bool("f", false));
  EXPECT_TRUE(parse({"x", "--f=1"}).get_bool("f", false));
  EXPECT_FALSE(parse({"x", "--f=false"}).get_bool("f", true));
  EXPECT_FALSE(parse({"x", "--f=0"}).get_bool("f", true));
  EXPECT_THROW(parse({"x", "--f=maybe"}).get_bool("f", true),
               std::invalid_argument);
}

TEST(Cli, Doubles) {
  const CliArgs a = parse({"lowerbound", "--alpha=0.004"});
  EXPECT_DOUBLE_EQ(a.get_double("alpha", 1.0), 0.004);
  EXPECT_DOUBLE_EQ(a.get_double("absent", 2.5), 2.5);
}

TEST(Cli, MalformedNumbersThrow) {
  EXPECT_THROW(parse({"x", "--n=12abc"}).get_u64("n", 0),
               std::invalid_argument);
  EXPECT_THROW(parse({"x", "--a=1.2.3"}).get_double("a", 0),
               std::invalid_argument);
}

TEST(Cli, FlagBeforeCommandDoesNotSwallowIt) {
  const CliArgs a = parse({"--verbose", "elect", "--n=8"});
  EXPECT_EQ(a.command(), "elect");
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_EQ(a.get_u64("n", 0), 8u);
}

TEST(Cli, DefaultsWhenEmpty) {
  const CliArgs a = parse({});
  EXPECT_TRUE(a.command().empty());
  EXPECT_EQ(a.get("family", "expander"), "expander");
}

TEST(Cli, KeysEnumeration) {
  const CliArgs a = parse({"elect", "--b=1", "--a=2"});
  EXPECT_EQ(a.keys(), (std::vector<std::string>{"a", "b"}));
}

TEST(Cli, NegativeValuesRejectedByGetU64) {
  EXPECT_THROW(parse({"x", "--n=-1"}).get_u64("n", 0), std::invalid_argument);
  EXPECT_THROW(parse({"x", "--n=-12345"}).get_u64("n", 0),
               std::invalid_argument);
  // std::stoull skips leading whitespace, so " -1" would wrap without the
  // leading-digit requirement.
  EXPECT_THROW(parse({"x", "--n= -1"}).get_u64("n", 0),
               std::invalid_argument);
  EXPECT_THROW(parse({"x", "--n= 7"}).get_u64("n", 0),
               std::invalid_argument);
  EXPECT_THROW(parse({"x", "--n="}).get_u64("n", 0), std::invalid_argument);
  // Negatives stay legal where they make sense.
  EXPECT_DOUBLE_EQ(parse({"x", "--a=-0.5"}).get_double("a", 0), -0.5);
}

TEST(Cli, UnconsumedTracksUntouchedKeys) {
  const CliArgs a = parse({"elect", "--n=8", "--trails=5", "--seed=1"});
  EXPECT_EQ(a.get_u64("n", 0), 8u);
  EXPECT_EQ(a.get_u64("seed", 0), 1u);
  // The typo'd --trails was never looked up: it must be reported.
  EXPECT_EQ(a.unconsumed(), (std::vector<std::string>{"trails"}));
}

TEST(Cli, AllAccessorsMarkConsumption) {
  const CliArgs a =
      parse({"x", "--s=v", "--u=1", "--d=0.5", "--b=true", "--h=1"});
  a.get("s", "");
  a.get_u64("u", 0);
  a.get_double("d", 0);
  a.get_bool("b", false);
  a.has("h");
  EXPECT_TRUE(a.unconsumed().empty());
}

TEST(Cli, ConsumingAbsentKeysLeavesPresentOnesUnconsumed) {
  const CliArgs a = parse({"x", "--present=1"});
  a.get("absent", "");
  EXPECT_EQ(a.unconsumed(), (std::vector<std::string>{"present"}));
}

TEST(Cli, HostPortFullForm) {
  const HostPort hp = parse({"serve", "--listen=0.0.0.0:9000"})
                          .get_host_port("listen", "127.0.0.1", 8080);
  EXPECT_EQ(hp.host, "0.0.0.0");
  EXPECT_EQ(hp.port, 9000);
}

TEST(Cli, HostPortAbsentKeepsFallbacks) {
  const HostPort hp =
      parse({"serve"}).get_host_port("listen", "127.0.0.1", 8080);
  EXPECT_EQ(hp.host, "127.0.0.1");
  EXPECT_EQ(hp.port, 8080);
}

TEST(Cli, HostPortPartialForms) {
  // ":9000" and a bare all-digit value keep the fallback host.
  EXPECT_EQ(parse({"s", "--listen=:9000"}).get_host_port("listen", "h", 1)
                .host,
            "h");
  EXPECT_EQ(parse({"s", "--listen=:9000"}).get_host_port("listen", "h", 1)
                .port,
            9000);
  EXPECT_EQ(parse({"s", "--listen=9000"}).get_host_port("listen", "h", 1)
                .port,
            9000);
  // "HOST" and "HOST:" keep the fallback port.
  EXPECT_EQ(parse({"s", "--listen=localhost"}).get_host_port("listen", "h", 7)
                .host,
            "localhost");
  EXPECT_EQ(parse({"s", "--listen=localhost"}).get_host_port("listen", "h", 7)
                .port,
            7);
  EXPECT_EQ(parse({"s", "--listen=10.0.0.2:"}).get_host_port("listen", "h", 7)
                .host,
            "10.0.0.2");
  EXPECT_EQ(parse({"s", "--listen=10.0.0.2:"}).get_host_port("listen", "h", 7)
                .port,
            7);
}

TEST(Cli, HostPortRejectsMalformedValues) {
  const auto hp = [](const char* value) {
    return parse({"s", value}).get_host_port("listen", "h", 1);
  };
  EXPECT_THROW(hp("--listen="), std::invalid_argument);    // empty
  EXPECT_THROW(hp("--listen=:"), std::invalid_argument);   // ":" alone
  EXPECT_THROW(hp("--listen=h:abc"), std::invalid_argument);
  EXPECT_THROW(hp("--listen=h:12abc"), std::invalid_argument);
  EXPECT_THROW(hp("--listen=h:-1"), std::invalid_argument);
  EXPECT_THROW(hp("--listen=h:65536"), std::invalid_argument);  // > 16-bit
  EXPECT_THROW(hp("--listen=h:99999999999999999999"), std::invalid_argument);
  EXPECT_THROW(hp("--listen=::1"), std::invalid_argument);  // IPv6 literal
}

TEST(Cli, HostPortEdgePortsParse) {
  EXPECT_EQ(parse({"s", "--listen=h:0"}).get_host_port("listen", "x", 1).port,
            0);
  EXPECT_EQ(
      parse({"s", "--listen=h:65535"}).get_host_port("listen", "x", 1).port,
      65535);
}

TEST(Cli, HostPortMarksConsumption) {
  const CliArgs a = parse({"serve", "--listen=h:1"});
  a.get_host_port("listen", "x", 2);
  EXPECT_TRUE(a.unconsumed().empty());
}

}  // namespace
}  // namespace wcle
