#include "wcle/analysis/cli.hpp"

#include <gtest/gtest.h>

namespace wcle {
namespace {

CliArgs parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"wcle_cli"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return CliArgs::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, CommandAndPositionals) {
  const CliArgs a = parse({"elect", "extra1", "extra2"});
  EXPECT_EQ(a.command(), "elect");
  EXPECT_EQ(a.positionals(),
            (std::vector<std::string>{"extra1", "extra2"}));
}

TEST(Cli, EqualsForm) {
  const CliArgs a = parse({"elect", "--n=1024", "--family=torus"});
  EXPECT_EQ(a.get_u64("n", 0), 1024u);
  EXPECT_EQ(a.get("family", ""), "torus");
}

TEST(Cli, SeparatedValueForm) {
  const CliArgs a = parse({"elect", "--n", "256"});
  EXPECT_EQ(a.get_u64("n", 0), 256u);
}

TEST(Cli, BareFlag) {
  const CliArgs a = parse({"elect", "--wide", "--n=4"});
  EXPECT_TRUE(a.get_bool("wide", false));
  EXPECT_FALSE(a.get_bool("absent", false));
  EXPECT_TRUE(a.get_bool("absent", true));
}

TEST(Cli, BooleanSpellings) {
  EXPECT_TRUE(parse({"x", "--f=true"}).get_bool("f", false));
  EXPECT_TRUE(parse({"x", "--f=1"}).get_bool("f", false));
  EXPECT_FALSE(parse({"x", "--f=false"}).get_bool("f", true));
  EXPECT_FALSE(parse({"x", "--f=0"}).get_bool("f", true));
  EXPECT_THROW(parse({"x", "--f=maybe"}).get_bool("f", true),
               std::invalid_argument);
}

TEST(Cli, Doubles) {
  const CliArgs a = parse({"lowerbound", "--alpha=0.004"});
  EXPECT_DOUBLE_EQ(a.get_double("alpha", 1.0), 0.004);
  EXPECT_DOUBLE_EQ(a.get_double("absent", 2.5), 2.5);
}

TEST(Cli, MalformedNumbersThrow) {
  EXPECT_THROW(parse({"x", "--n=12abc"}).get_u64("n", 0),
               std::invalid_argument);
  EXPECT_THROW(parse({"x", "--a=1.2.3"}).get_double("a", 0),
               std::invalid_argument);
}

TEST(Cli, FlagBeforeCommandDoesNotSwallowIt) {
  const CliArgs a = parse({"--verbose", "elect", "--n=8"});
  EXPECT_EQ(a.command(), "elect");
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_EQ(a.get_u64("n", 0), 8u);
}

TEST(Cli, DefaultsWhenEmpty) {
  const CliArgs a = parse({});
  EXPECT_TRUE(a.command().empty());
  EXPECT_EQ(a.get("family", "expander"), "expander");
}

TEST(Cli, KeysEnumeration) {
  const CliArgs a = parse({"elect", "--b=1", "--a=2"});
  EXPECT_EQ(a.keys(), (std::vector<std::string>{"a", "b"}));
}

TEST(Cli, NegativeValuesRejectedByGetU64) {
  EXPECT_THROW(parse({"x", "--n=-1"}).get_u64("n", 0), std::invalid_argument);
  EXPECT_THROW(parse({"x", "--n=-12345"}).get_u64("n", 0),
               std::invalid_argument);
  // std::stoull skips leading whitespace, so " -1" would wrap without the
  // leading-digit requirement.
  EXPECT_THROW(parse({"x", "--n= -1"}).get_u64("n", 0),
               std::invalid_argument);
  EXPECT_THROW(parse({"x", "--n= 7"}).get_u64("n", 0),
               std::invalid_argument);
  EXPECT_THROW(parse({"x", "--n="}).get_u64("n", 0), std::invalid_argument);
  // Negatives stay legal where they make sense.
  EXPECT_DOUBLE_EQ(parse({"x", "--a=-0.5"}).get_double("a", 0), -0.5);
}

TEST(Cli, UnconsumedTracksUntouchedKeys) {
  const CliArgs a = parse({"elect", "--n=8", "--trails=5", "--seed=1"});
  EXPECT_EQ(a.get_u64("n", 0), 8u);
  EXPECT_EQ(a.get_u64("seed", 0), 1u);
  // The typo'd --trails was never looked up: it must be reported.
  EXPECT_EQ(a.unconsumed(), (std::vector<std::string>{"trails"}));
}

TEST(Cli, AllAccessorsMarkConsumption) {
  const CliArgs a =
      parse({"x", "--s=v", "--u=1", "--d=0.5", "--b=true", "--h=1"});
  a.get("s", "");
  a.get_u64("u", 0);
  a.get_double("d", 0);
  a.get_bool("b", false);
  a.has("h");
  EXPECT_TRUE(a.unconsumed().empty());
}

TEST(Cli, ConsumingAbsentKeysLeavesPresentOnesUnconsumed) {
  const CliArgs a = parse({"x", "--present=1"});
  a.get("absent", "");
  EXPECT_EQ(a.unconsumed(), (std::vector<std::string>{"present"}));
}

}  // namespace
}  // namespace wcle
