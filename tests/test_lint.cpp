// wcle_lint proof obligations:
//   1. Golden diagnostics: each fixture under tools/lint/fixtures/ produces
//      byte-identical text output to its checked-in expected/<name>.txt.
//   2. SEED cross-check: every `// SEED: <rule>` marker in a fixture
//      corresponds to exactly one diagnostic of that rule (trailing marker =
//      same line, standalone marker = next line), and no diagnostic fires on
//      an unmarked line. The goldens and the markers must agree
//      independently, so a stale golden cannot hide a rule regression.
//   3. Suppression round-trip: a fully-suppressed fixture reports zero
//      diagnostics, and every suppression reason survives verbatim into the
//      JSON report.
//   4. The real tree is clean: linting src/ yields zero diagnostics, and the
//      hot-path no-alloc regions annotated in PR 5's data plane are present.
//   5. v2 obligations: the interprocedural fixtures (transitive no-alloc,
//      layering, rng-flow) hold their goldens; suppression parsing ignores
//      raw strings / block comments and respects blank-line binding; stale
//      suppressions are findings; SARIF output is well-formed 2.1.0; the
//      per-file cache is byte-deterministic and a warm run over unchanged
//      src/ costs under 25% of a cold run; the CLI exits 2 on a missing
//      root.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/linter.hpp"
#include "lint/rules.hpp"
#include "lint/sarif.hpp"

namespace wcle_lint {
namespace {

#ifndef WCLE_SOURCE_DIR
#define WCLE_SOURCE_DIR "."
#endif

std::string fixture_dir() {
  return std::string(WCLE_SOURCE_DIR) + "/tools/lint/fixtures";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Lints a fixture with its bare filename as the display path so the output
// matches the goldens no matter where the build tree lives.
LintReport lint_fixture(const std::string& name) {
  return lint_source(name + ".cpp",
                     read_file(fixture_dir() + "/" + name + ".cpp"));
}

// ---------------------------------------------------------------------------
// 1. Golden diagnostics
// ---------------------------------------------------------------------------

class LintGolden : public testing::TestWithParam<const char*> {};

TEST_P(LintGolden, TextOutputMatchesExpectedFile) {
  const std::string name = GetParam();
  const LintReport report = lint_fixture(name);
  const std::string expected =
      read_file(fixture_dir() + "/expected/" + name + ".txt");
  EXPECT_EQ(to_text(report), expected)
      << "fixture " << name << ".cpp diverged from its golden; if the rule "
      << "change is intentional, regenerate expected/" << name << ".txt";
}

INSTANTIATE_TEST_SUITE_P(AllFixtures, LintGolden,
                         testing::Values("banned_rng", "unordered_iter",
                                         "pointer_order", "no_alloc",
                                         "bad_directives", "suppressions",
                                         "rng_flow", "transitive_no_alloc",
                                         "shard_merge"));

// ---------------------------------------------------------------------------
// 2. SEED cross-check (independent of the goldens)
// ---------------------------------------------------------------------------

// Extracts (line, rule) expectations from `// SEED: <rule>` markers. A
// trailing marker names its own line; a standalone marker (the comment is
// the whole line) names the next line.
void seed_expectations(
    const std::string& source,
    std::set<std::pair<std::uint32_t, std::string>>& out) {
  const LexResult lx = lex(source);
  for (const Comment& c : lx.comments) {
    const std::size_t pos = c.text.find("SEED:");
    if (pos == std::string::npos) continue;
    std::istringstream rest(c.text.substr(pos + 5));
    std::string rule;
    rest >> rule;
    // Prose in fixture headers may mention "SEED:"; only a marker naming a
    // real rule is an expectation.
    const std::vector<std::string>& known = rule_names();
    if (std::find(known.begin(), known.end(), rule) == known.end()) continue;
    out.emplace(c.trailing ? c.line : c.line + 1, rule);
  }
}

class LintSeeds : public testing::TestWithParam<const char*> {};

TEST_P(LintSeeds, EveryMarkedLineFiresAndNoOtherLineDoes) {
  const std::string name = GetParam();
  const std::string source = read_file(fixture_dir() + "/" + name + ".cpp");
  std::set<std::pair<std::uint32_t, std::string>> expected;
  ASSERT_NO_FATAL_FAILURE(seed_expectations(source, expected));
  ASSERT_FALSE(expected.empty()) << name << ".cpp has no SEED markers";

  std::set<std::pair<std::uint32_t, std::string>> actual;
  for (const Diagnostic& d : lint_fixture(name).diagnostics) {
    actual.emplace(d.line, d.rule);
  }
  EXPECT_EQ(actual, expected) << "diagnostics disagree with the SEED "
                              << "markers in " << name << ".cpp";
}

INSTANTIATE_TEST_SUITE_P(SeededFixtures, LintSeeds,
                         testing::Values("banned_rng", "unordered_iter",
                                         "pointer_order", "no_alloc",
                                         "bad_directives", "rng_flow",
                                         "transitive_no_alloc",
                                         "shard_merge"));

// The layering fixture needs a src-shaped display path and the repo's layer
// config, so it runs outside the shared fixture harness. The absolute
// layers-file path in messages is normalized back to the repo-relative
// spelling the checked-in golden uses.
TEST(LintLayering, FixtureMatchesGoldenAndSeeds) {
  const std::string display = "src/wcle/trace/layering.cpp";
  const std::string source = read_file(fixture_dir() + "/layering.cpp");
  LintOptions options;
  options.layers_file =
      std::string(WCLE_SOURCE_DIR) + "/tools/lint/layers.txt";
  const LintReport report = lint_source(display, source, options);

  std::string text = to_text(report);
  for (std::size_t at = text.find(options.layers_file);
       at != std::string::npos; at = text.find(options.layers_file)) {
    text.replace(at, options.layers_file.size(), "tools/lint/layers.txt");
  }
  EXPECT_EQ(text, read_file(fixture_dir() + "/expected/layering.txt"));

  std::set<std::pair<std::uint32_t, std::string>> expected;
  ASSERT_NO_FATAL_FAILURE(seed_expectations(source, expected));
  ASSERT_FALSE(expected.empty());
  std::set<std::pair<std::uint32_t, std::string>> actual;
  for (const Diagnostic& d : report.diagnostics) actual.emplace(d.line, d.rule);
  EXPECT_EQ(actual, expected);
}

TEST(LintLayering, MalformedConfigIsAnErrorNotACleanPass) {
  LintOptions options;
  options.layers_file = "/nonexistent/layers.txt";
  const LintReport report =
      lint_source("src/wcle/sim/x.cpp", "int x = 0;\n", options);
  EXPECT_FALSE(report.errors.empty());
  EXPECT_FALSE(report.clean());
}

// ---------------------------------------------------------------------------
// 3. Suppression round-trip
// ---------------------------------------------------------------------------

TEST(LintSuppressions, FullySuppressedFixtureIsCleanWithSixEntries) {
  const LintReport report = lint_fixture("suppressions");
  EXPECT_TRUE(report.clean()) << to_text(report);
  ASSERT_EQ(report.suppressed.size(), 6u);
  // Both binding forms appear: time(nullptr) suppressed by a trailing
  // comment on its own line (12) and by a standalone comment above (18).
  std::vector<std::uint32_t> lines;
  for (const SuppressedDiagnostic& s : report.suppressed) {
    lines.push_back(s.line);
    EXPECT_FALSE(s.reason.empty());
  }
  std::sort(lines.begin(), lines.end());
  EXPECT_EQ(lines, (std::vector<std::uint32_t>{12, 18, 25, 31, 32, 40}));
}

TEST(LintSuppressions, ReasonsSurviveVerbatimIntoJson) {
  const LintReport report = lint_fixture("suppressions");
  const std::string json = to_json(report, {"suppressions.cpp"});
  for (const SuppressedDiagnostic& s : report.suppressed) {
    EXPECT_NE(json.find(s.reason), std::string::npos)
        << "reason lost in JSON: " << s.reason;
  }
  EXPECT_NE(json.find("\"tool\":\"wcle_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\""), std::string::npos);
}

TEST(LintSuppressions, SuppressionOnlyCoversItsOwnRuleAndLine) {
  // An unordered-iter suppression must not silence a banned-rng finding on
  // the same line, and a standalone suppression reaches exactly one line.
  const std::string src =
      "#include <ctime>\n"
      "void f() {\n"
      "  // wcle-lint: unordered-iter-ok(wrong rule for the next line)\n"
      "  auto t = time(nullptr);\n"
      "  (void)t;\n"
      "}\n"
      "void g() {\n"
      "  // wcle-lint: banned-rng-ok(covers line 9 only)\n"
      "  auto a = time(nullptr);\n"
      "  auto b = time(nullptr);\n"
      "  (void)a, (void)b;\n"
      "}\n";
  const LintReport report = lint_source("mismatch.cpp", src);
  ASSERT_EQ(report.diagnostics.size(), 3u) << to_text(report);
  // The wrong-rule suppression silences nothing, so it is itself stale.
  EXPECT_EQ(report.diagnostics[0].line, 3u);
  EXPECT_EQ(report.diagnostics[0].rule, "directive");
  EXPECT_EQ(report.diagnostics[1].line, 4u);  // wrong-rule suppression
  EXPECT_EQ(report.diagnostics[2].line, 10u);  // one past the covered line
  ASSERT_EQ(report.suppressed.size(), 1u);
  EXPECT_EQ(report.suppressed[0].line, 9u);
}

TEST(LintSuppressions, DirectivesInRawStringsAndBlockCommentsDoNotParse) {
  // A directive spelled inside a raw string or a /* */ comment is data, not
  // an annotation: the finding on the next line must still fire, and no
  // suppression (used or stale) may be recorded.
  const std::string src =
      "#include <ctime>\n"
      "const char* a = R\"(// wcle-lint: banned-rng-ok(in a raw string))\";\n"
      "/* wcle-lint: banned-rng-ok(in a block comment) */\n"
      "long t = time(nullptr);\n";
  const LintReport report = lint_source("rawstring.cpp", src);
  ASSERT_EQ(report.diagnostics.size(), 1u) << to_text(report);
  EXPECT_EQ(report.diagnostics[0].line, 4u);
  EXPECT_EQ(report.diagnostics[0].rule, "banned-rng");
  EXPECT_TRUE(report.suppressed.empty());
}

TEST(LintSuppressions, BlankLineBreaksStandaloneBinding) {
  // A standalone suppression covers exactly the next line; a blank line in
  // between leaves the finding live and the suppression stale (which is
  // itself a directive finding).
  const std::string src =
      "#include <ctime>\n"
      "// wcle-lint: banned-rng-ok(too far away to bind)\n"
      "\n"
      "long t = time(nullptr);\n";
  const LintReport report = lint_source("blankline.cpp", src);
  ASSERT_EQ(report.diagnostics.size(), 2u) << to_text(report);
  EXPECT_EQ(report.diagnostics[0].line, 2u);
  EXPECT_EQ(report.diagnostics[0].rule, "directive");
  EXPECT_NE(report.diagnostics[0].message.find("stale suppression"),
            std::string::npos);
  EXPECT_EQ(report.diagnostics[1].line, 4u);
  EXPECT_EQ(report.diagnostics[1].rule, "banned-rng");
  EXPECT_TRUE(report.suppressed.empty());
}

TEST(LintSuppressions, StaleSuppressionOnCleanLineIsReported) {
  const std::string src =
      "// wcle-lint: no-alloc-ok(nothing here allocates anymore)\n"
      "int add(int a, int b) { return a + b; }\n";
  const LintReport report = lint_source("stale.cpp", src);
  ASSERT_EQ(report.diagnostics.size(), 1u) << to_text(report);
  EXPECT_EQ(report.diagnostics[0].rule, "directive");
  EXPECT_EQ(report.diagnostics[0].line, 1u);
  EXPECT_NE(report.diagnostics[0].message.find("stale suppression"),
            std::string::npos);
}

TEST(LintSuppressions, EvidenceSuppressionSilencesDownstreamChains) {
  // Silencing the leaf allocation site removes the whole transitive chain:
  // the summary changes, not just one diagnostic.
  const std::string src =
      "#include <vector>\n"
      "struct S { std::vector<int> v; };\n"
      "void leaf(S& s) {\n"
      "  // wcle-lint: no-alloc-ok(grows once per run during setup)\n"
      "  s.v.push_back(1);\n"
      "}\n"
      "void mid(S& s) { leaf(s); }\n"
      "// wcle-lint: begin-no-alloc\n"
      "void hot(S& s) { mid(s); }\n"
      "// wcle-lint: end-no-alloc\n";
  const LintReport report = lint_source("evidence.cpp", src);
  EXPECT_TRUE(report.clean()) << to_text(report);
}

// ---------------------------------------------------------------------------
// 4. Lexer discipline: banned spellings in comments/strings never fire
// ---------------------------------------------------------------------------

TEST(LintLexer, CommentsAndStringsAreNotCode) {
  const std::string src =
      "// std::random_device in a comment\n"
      "/* rand(); srand(7); std::mt19937 gen; */\n"
      "const char* a = \"std::shuffle(v.begin(), v.end(), g)\";\n"
      "const char* b = R\"(time(nullptr) and steady_clock::now())\";\n"
      "const char* c = \"// wcle-lint: begin-no-alloc\";\n"
      "char d = 't';\n";
  const LintReport report = lint_source("strings.cpp", src);
  EXPECT_TRUE(report.clean()) << to_text(report);
  EXPECT_TRUE(report.suppressed.empty());
}

TEST(LintLexer, IdentifiersContainingBannedWordsAreClean) {
  const std::string src =
      "void f(int stationary_distribution, int time_budget) {\n"
      "  int my_rand = stationary_distribution + time_budget;\n"
      "  obj.rand();\n"
      "  obj->time(3);\n"
      "  Custom::time(4);\n"
      "  (void)my_rand;\n"
      "}\n";
  const LintReport report = lint_source("lookalikes.cpp", src);
  EXPECT_TRUE(report.clean()) << to_text(report);
}

TEST(LintOptionsFilter, RuleRestrictionDropsOtherRules) {
  LintOptions only_pointer;
  only_pointer.rules = {"pointer-order"};
  const std::string source =
      read_file(fixture_dir() + "/banned_rng.cpp");
  const LintReport report =
      lint_source("banned_rng.cpp", source, only_pointer);
  EXPECT_TRUE(report.clean()) << to_text(report);
}

// ---------------------------------------------------------------------------
// 5. SARIF output: structurally valid JSON carrying the 2.1.0 shape
// ---------------------------------------------------------------------------

// Minimal recursive-descent JSON well-formedness checker: enough to reject
// unbalanced braces, bad escapes, and trailing garbage without pulling in a
// JSON library.
bool json_skip_value(const std::string& s, std::size_t& i);

void json_skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                          s[i] == '\r'))
    ++i;
}

bool json_skip_string(const std::string& s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') return false;
  for (++i; i < s.size(); ++i) {
    if (s[i] == '\\') {
      ++i;
      continue;
    }
    if (s[i] == '"') {
      ++i;
      return true;
    }
  }
  return false;
}

bool json_skip_value(const std::string& s, std::size_t& i) {
  json_skip_ws(s, i);
  if (i >= s.size()) return false;
  const char c = s[i];
  if (c == '"') return json_skip_string(s, i);
  if (c == '{' || c == '[') {
    const char close = c == '{' ? '}' : ']';
    ++i;
    json_skip_ws(s, i);
    if (i < s.size() && s[i] == close) {
      ++i;
      return true;
    }
    for (;;) {
      if (close == '}') {
        json_skip_ws(s, i);
        if (!json_skip_string(s, i)) return false;
        json_skip_ws(s, i);
        if (i >= s.size() || s[i] != ':') return false;
        ++i;
      }
      if (!json_skip_value(s, i)) return false;
      json_skip_ws(s, i);
      if (i >= s.size()) return false;
      if (s[i] == ',') {
        ++i;
        continue;
      }
      if (s[i] == close) {
        ++i;
        return true;
      }
      return false;
    }
  }
  // Literals and numbers: consume the token, validate the spelling loosely.
  const std::size_t start = i;
  while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']' &&
         s[i] != ' ' && s[i] != '\n')
    ++i;
  const std::string tok = s.substr(start, i - start);
  if (tok == "true" || tok == "false" || tok == "null") return true;
  return !tok.empty() &&
         tok.find_first_not_of("-+.eE0123456789") == std::string::npos;
}

bool json_well_formed(const std::string& s) {
  std::size_t i = 0;
  if (!json_skip_value(s, i)) return false;
  json_skip_ws(s, i);
  return i == s.size();
}

TEST(LintSarif, ReportCarriesTheSarif210Shape) {
  const LintReport report = lint_fixture("no_alloc");
  const std::string sarif = to_sarif(report, {"no_alloc.cpp"});
  ASSERT_TRUE(json_well_formed(sarif)) << sarif;
  EXPECT_NE(sarif.find("\"$schema\":"
                       "\"https://json.schemastore.org/sarif-2.1.0.json\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"wcle_lint\""), std::string::npos);
  // Every rule is declared in the driver metadata, findable by id.
  for (const std::string& rule : rule_names())
    EXPECT_NE(sarif.find("{\"id\":\"" + rule + "\""), std::string::npos)
        << rule;
  // Active findings are errors with 1-based regions.
  EXPECT_NE(sarif.find("\"level\":\"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":18"), std::string::npos);
  // The suppressed warm-growth entry carries its justification inSource.
  EXPECT_NE(sarif.find("\"suppressions\":[{\"kind\":\"inSource\""),
            std::string::npos);
  EXPECT_NE(sarif.find("pool growth is cold-start only"), std::string::npos);
  EXPECT_NE(sarif.find("\"executionSuccessful\":true"), std::string::npos);
}

TEST(LintSarif, ErrorsMarkTheInvocationUnsuccessful) {
  const LintReport report = lint_paths({"/definitely/not/a/path"});
  EXPECT_FALSE(report.errors.empty());
  const std::string sarif = to_sarif(report, {"/definitely/not/a/path"});
  ASSERT_TRUE(json_well_formed(sarif)) << sarif;
  EXPECT_NE(sarif.find("\"executionSuccessful\":false"), std::string::npos);
}

// ---------------------------------------------------------------------------
// 6. Incremental cache: byte-determinism and the warm-run speedup
// ---------------------------------------------------------------------------

TEST(LintCache, WarmRunIsDeterministicAndUnderAQuarterOfCold) {
  namespace fs = std::filesystem;
  const std::string src_root = std::string(WCLE_SOURCE_DIR) + "/src";
  const std::string cache_dir =
      std::string(WCLE_BINARY_DIR) + "/.wcle_lint_cache_test";
  fs::remove_all(cache_dir);

  LintOptions uncached;
  uncached.jobs = 1;
  LintOptions cached = uncached;
  cached.cache_dir = cache_dir;

  using clock = std::chrono::steady_clock;
  auto timed = [&](const LintOptions& options, double& best_ms) {
    LintReport last;
    best_ms = 1e30;
    for (int run = 0; run < 3; ++run) {
      const auto t0 = clock::now();
      last = lint_paths({src_root}, options);
      const auto t1 = clock::now();
      best_ms = std::min(
          best_ms,
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    return last;
  };

  // Cold: every run re-analyzes (no cache at all) — the reference cost.
  double cold_ms = 0.0;
  const LintReport uncached_report = timed(uncached, cold_ms);
  ASSERT_GT(uncached_report.files_scanned, 50u);

  // Populate, then measure warm runs over the unchanged tree.
  const LintReport populate = lint_paths({src_root}, cached);
  EXPECT_EQ(populate.cache_hits, 0u);
  double warm_ms = 0.0;
  const LintReport warm_report = timed(cached, warm_ms);
  EXPECT_EQ(warm_report.cache_hits, warm_report.files_scanned);

  // Byte-determinism: a cache hit must not change a single output byte.
  EXPECT_EQ(to_text(warm_report), to_text(uncached_report));
  EXPECT_EQ(to_json(warm_report, {"src"}), to_json(uncached_report, {"src"}));

  EXPECT_LT(warm_ms, 0.25 * cold_ms)
      << "warm " << warm_ms << " ms vs cold " << cold_ms
      << " ms: the cache no longer pays for itself";
  fs::remove_all(cache_dir);
}

// ---------------------------------------------------------------------------
// 7. CLI contract: a missing root is exit 2, never a clean pass
// ---------------------------------------------------------------------------

int run_cli(const std::string& args) {
  const std::string cmd =
      std::string(WCLE_BINARY_DIR) + "/wcle_lint " + args + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WEXITSTATUS(status);
}

TEST(LintCli, MissingRootExitsTwo) {
  EXPECT_EQ(run_cli("--root=/definitely/not/a/path"), 2);
}

TEST(LintCli, NoInputsExitsTwo) { EXPECT_EQ(run_cli(""), 2); }

TEST(LintCli, UnknownRuleExitsTwo) {
  EXPECT_EQ(run_cli("--rule=frobnicate --root=."), 2);
}

TEST(LintCli, CleanTreeExitsZero) {
  EXPECT_EQ(run_cli("--layers=" + std::string(WCLE_SOURCE_DIR) +
                    "/tools/lint/layers.txt " + std::string(WCLE_SOURCE_DIR) +
                    "/src"),
            0);
}

// ---------------------------------------------------------------------------
// 8. The real tree is clean
// ---------------------------------------------------------------------------

TEST(LintSrcTree, SrcIsCleanUnderAllRules) {
  LintOptions options;
  options.layers_file =
      std::string(WCLE_SOURCE_DIR) + "/tools/lint/layers.txt";
  const LintReport report =
      lint_paths({std::string(WCLE_SOURCE_DIR) + "/src"}, options);
  EXPECT_TRUE(report.clean())
      << "src/ has unsuppressed lint findings:\n"
      << to_text(report);
  EXPECT_GT(report.files_scanned, 50u);
  // The data plane and fault/trace seams carry audited suppressions; their
  // disappearance would mean the regions were deleted, not that src got
  // cleaner.
  EXPECT_GE(report.suppressed.size(), 19u);
  for (const SuppressedDiagnostic& s : report.suppressed) {
    EXPECT_FALSE(s.reason.empty()) << s.file << ":" << s.line;
  }
}

TEST(LintSrcTree, HotPathRegionsAreAnnotated) {
  for (const char* file :
       {"/src/wcle/sim/network.cpp", "/src/wcle/rw/walk_engine.cpp"}) {
    const std::string source = read_file(std::string(WCLE_SOURCE_DIR) + file);
    EXPECT_NE(source.find("wcle-lint: begin-no-alloc"), std::string::npos)
        << file << " lost its no-alloc region";
    EXPECT_NE(source.find("wcle-lint: end-no-alloc"), std::string::npos)
        << file << " lost its region close";
  }
}

}  // namespace
}  // namespace wcle_lint
