// wcle_lint proof obligations:
//   1. Golden diagnostics: each fixture under tools/lint/fixtures/ produces
//      byte-identical text output to its checked-in expected/<name>.txt.
//   2. SEED cross-check: every `// SEED: <rule>` marker in a fixture
//      corresponds to exactly one diagnostic of that rule (trailing marker =
//      same line, standalone marker = next line), and no diagnostic fires on
//      an unmarked line. The goldens and the markers must agree
//      independently, so a stale golden cannot hide a rule regression.
//   3. Suppression round-trip: a fully-suppressed fixture reports zero
//      diagnostics, and every suppression reason survives verbatim into the
//      JSON report.
//   4. The real tree is clean: linting src/ yields zero diagnostics, and the
//      hot-path no-alloc regions annotated in PR 5's data plane are present.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/linter.hpp"
#include "lint/rules.hpp"

namespace wcle_lint {
namespace {

#ifndef WCLE_SOURCE_DIR
#define WCLE_SOURCE_DIR "."
#endif

std::string fixture_dir() {
  return std::string(WCLE_SOURCE_DIR) + "/tools/lint/fixtures";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Lints a fixture with its bare filename as the display path so the output
// matches the goldens no matter where the build tree lives.
LintReport lint_fixture(const std::string& name) {
  return lint_source(name + ".cpp",
                     read_file(fixture_dir() + "/" + name + ".cpp"));
}

// ---------------------------------------------------------------------------
// 1. Golden diagnostics
// ---------------------------------------------------------------------------

class LintGolden : public testing::TestWithParam<const char*> {};

TEST_P(LintGolden, TextOutputMatchesExpectedFile) {
  const std::string name = GetParam();
  const LintReport report = lint_fixture(name);
  const std::string expected =
      read_file(fixture_dir() + "/expected/" + name + ".txt");
  EXPECT_EQ(to_text(report), expected)
      << "fixture " << name << ".cpp diverged from its golden; if the rule "
      << "change is intentional, regenerate expected/" << name << ".txt";
}

INSTANTIATE_TEST_SUITE_P(AllFixtures, LintGolden,
                         testing::Values("banned_rng", "unordered_iter",
                                         "pointer_order", "no_alloc",
                                         "bad_directives", "suppressions"));

// ---------------------------------------------------------------------------
// 2. SEED cross-check (independent of the goldens)
// ---------------------------------------------------------------------------

// Extracts (line, rule) expectations from `// SEED: <rule>` markers. A
// trailing marker names its own line; a standalone marker (the comment is
// the whole line) names the next line.
void seed_expectations(
    const std::string& source,
    std::set<std::pair<std::uint32_t, std::string>>& out) {
  const LexResult lx = lex(source);
  for (const Comment& c : lx.comments) {
    const std::size_t pos = c.text.find("SEED:");
    if (pos == std::string::npos) continue;
    std::istringstream rest(c.text.substr(pos + 5));
    std::string rule;
    rest >> rule;
    // Prose in fixture headers may mention "SEED:"; only a marker naming a
    // real rule is an expectation.
    const std::vector<std::string>& known = rule_names();
    if (std::find(known.begin(), known.end(), rule) == known.end()) continue;
    out.emplace(c.trailing ? c.line : c.line + 1, rule);
  }
}

class LintSeeds : public testing::TestWithParam<const char*> {};

TEST_P(LintSeeds, EveryMarkedLineFiresAndNoOtherLineDoes) {
  const std::string name = GetParam();
  const std::string source = read_file(fixture_dir() + "/" + name + ".cpp");
  std::set<std::pair<std::uint32_t, std::string>> expected;
  ASSERT_NO_FATAL_FAILURE(seed_expectations(source, expected));
  ASSERT_FALSE(expected.empty()) << name << ".cpp has no SEED markers";

  std::set<std::pair<std::uint32_t, std::string>> actual;
  for (const Diagnostic& d : lint_fixture(name).diagnostics) {
    actual.emplace(d.line, d.rule);
  }
  EXPECT_EQ(actual, expected) << "diagnostics disagree with the SEED "
                              << "markers in " << name << ".cpp";
}

INSTANTIATE_TEST_SUITE_P(SeededFixtures, LintSeeds,
                         testing::Values("banned_rng", "unordered_iter",
                                         "pointer_order", "no_alloc",
                                         "bad_directives"));

// ---------------------------------------------------------------------------
// 3. Suppression round-trip
// ---------------------------------------------------------------------------

TEST(LintSuppressions, FullySuppressedFixtureIsCleanWithSixEntries) {
  const LintReport report = lint_fixture("suppressions");
  EXPECT_TRUE(report.clean()) << to_text(report);
  ASSERT_EQ(report.suppressed.size(), 6u);
  // Both binding forms appear: time(nullptr) suppressed by a trailing
  // comment on its own line (12) and by a standalone comment above (18).
  std::vector<std::uint32_t> lines;
  for (const SuppressedDiagnostic& s : report.suppressed) {
    lines.push_back(s.line);
    EXPECT_FALSE(s.reason.empty());
  }
  std::sort(lines.begin(), lines.end());
  EXPECT_EQ(lines, (std::vector<std::uint32_t>{12, 18, 25, 31, 32, 40}));
}

TEST(LintSuppressions, ReasonsSurviveVerbatimIntoJson) {
  const LintReport report = lint_fixture("suppressions");
  const std::string json = to_json(report, {"suppressions.cpp"});
  for (const SuppressedDiagnostic& s : report.suppressed) {
    EXPECT_NE(json.find(s.reason), std::string::npos)
        << "reason lost in JSON: " << s.reason;
  }
  EXPECT_NE(json.find("\"tool\":\"wcle_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\""), std::string::npos);
}

TEST(LintSuppressions, SuppressionOnlyCoversItsOwnRuleAndLine) {
  // An unordered-iter suppression must not silence a banned-rng finding on
  // the same line, and a standalone suppression reaches exactly one line.
  const std::string src =
      "#include <ctime>\n"
      "void f() {\n"
      "  // wcle-lint: unordered-iter-ok(wrong rule for the next line)\n"
      "  auto t = time(nullptr);\n"
      "  (void)t;\n"
      "}\n"
      "void g() {\n"
      "  // wcle-lint: banned-rng-ok(covers line 9 only)\n"
      "  auto a = time(nullptr);\n"
      "  auto b = time(nullptr);\n"
      "  (void)a, (void)b;\n"
      "}\n";
  const LintReport report = lint_source("mismatch.cpp", src);
  ASSERT_EQ(report.diagnostics.size(), 2u) << to_text(report);
  EXPECT_EQ(report.diagnostics[0].line, 4u);  // wrong-rule suppression
  EXPECT_EQ(report.diagnostics[1].line, 10u);  // one past the covered line
  ASSERT_EQ(report.suppressed.size(), 1u);
  EXPECT_EQ(report.suppressed[0].line, 9u);
}

// ---------------------------------------------------------------------------
// 4. Lexer discipline: banned spellings in comments/strings never fire
// ---------------------------------------------------------------------------

TEST(LintLexer, CommentsAndStringsAreNotCode) {
  const std::string src =
      "// std::random_device in a comment\n"
      "/* rand(); srand(7); std::mt19937 gen; */\n"
      "const char* a = \"std::shuffle(v.begin(), v.end(), g)\";\n"
      "const char* b = R\"(time(nullptr) and steady_clock::now())\";\n"
      "const char* c = \"// wcle-lint: begin-no-alloc\";\n"
      "char d = 't';\n";
  const LintReport report = lint_source("strings.cpp", src);
  EXPECT_TRUE(report.clean()) << to_text(report);
  EXPECT_TRUE(report.suppressed.empty());
}

TEST(LintLexer, IdentifiersContainingBannedWordsAreClean) {
  const std::string src =
      "void f(int stationary_distribution, int time_budget) {\n"
      "  int my_rand = stationary_distribution + time_budget;\n"
      "  obj.rand();\n"
      "  obj->time(3);\n"
      "  Custom::time(4);\n"
      "  (void)my_rand;\n"
      "}\n";
  const LintReport report = lint_source("lookalikes.cpp", src);
  EXPECT_TRUE(report.clean()) << to_text(report);
}

TEST(LintOptionsFilter, RuleRestrictionDropsOtherRules) {
  LintOptions only_pointer;
  only_pointer.rules = {"pointer-order"};
  const std::string source =
      read_file(fixture_dir() + "/banned_rng.cpp");
  const LintReport report =
      lint_source("banned_rng.cpp", source, only_pointer);
  EXPECT_TRUE(report.clean()) << to_text(report);
}

// ---------------------------------------------------------------------------
// 5. The real tree is clean
// ---------------------------------------------------------------------------

TEST(LintSrcTree, SrcIsCleanUnderAllRules) {
  const LintReport report =
      lint_paths({std::string(WCLE_SOURCE_DIR) + "/src"});
  EXPECT_TRUE(report.clean())
      << "src/ has unsuppressed lint findings:\n"
      << to_text(report);
  EXPECT_GT(report.files_scanned, 50u);
  // The PR-5 data plane carries audited no-alloc suppressions; their
  // disappearance would mean the regions were deleted, not that src got
  // cleaner.
  EXPECT_GE(report.suppressed.size(), 20u);
  for (const SuppressedDiagnostic& s : report.suppressed) {
    EXPECT_FALSE(s.reason.empty()) << s.file << ":" << s.line;
  }
}

TEST(LintSrcTree, HotPathRegionsAreAnnotated) {
  for (const char* file :
       {"/src/wcle/sim/network.cpp", "/src/wcle/rw/walk_engine.cpp"}) {
    const std::string source = read_file(std::string(WCLE_SOURCE_DIR) + file);
    EXPECT_NE(source.find("wcle-lint: begin-no-alloc"), std::string::npos)
        << file << " lost its no-alloc region";
    EXPECT_NE(source.find("wcle-lint: end-no-alloc"), std::string::npos)
        << file << " lost its region close";
  }
}

}  // namespace
}  // namespace wcle_lint
