// Trace & replay subsystem: recorder rebasing, tracing-never-perturbs,
// timeline/metrics reconciliation, both writer framings round-tripping
// through the reader, single_run_spec's grammar round-trip, thread-count
// invariance of traced trials, the replay verifier (including tamper
// detection), and the summarize pass.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "wcle/api/registry.hpp"
#include "wcle/api/scenario.hpp"
#include "wcle/api/serialize.hpp"
#include "wcle/api/sweep.hpp"
#include "wcle/api/trials.hpp"
#include "wcle/graph/families.hpp"
#include "wcle/trace/reader.hpp"
#include "wcle/trace/recorder.hpp"
#include "wcle/api/replay.hpp"
#include "wcle/trace/summarize.hpp"
#include "wcle/trace/writer.hpp"

namespace wcle {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "wcle_trace_" + name;
}

/// One traced run of `algo_name`, returning (result json, recorder).
std::pair<std::string, TraceRecorder> traced_run(const std::string& algo_name,
                                                 const Graph& g,
                                                 RunOptions options) {
  const Algorithm& algo = AlgorithmRegistry::instance().at(algo_name);
  auto rec = std::make_unique<TraceRecorder>();
  options.params.trace = rec.get();
  const RunResult r = algo.run(g, options);
  TraceRecorder out = std::move(*rec);
  return {to_json(r), std::move(out)};
}

TEST(TraceRecorder, SegmentsRebaseOntoOneTimeline) {
  TraceRecorder rec;
  rec.begin_segment();
  rec.on_send(1);
  rec.on_round(1, 3, 2, 0, 0, 1, 5);
  rec.on_round(2, 1, 1, 0, 0, 0, 0);
  rec.begin_segment();  // a second Network attaches
  rec.on_send(1);       // its local round 1 is absolute round 3
  rec.on_round(1, 2, 2, 0, 0, 0, 0);
  ASSERT_EQ(rec.rounds().size(), 3u);
  EXPECT_EQ(rec.rounds()[2].round, 3u);
  EXPECT_EQ(rec.rounds()[2].sends, 1u);
  EXPECT_EQ(rec.rounds()[2].quanta, 2u);
  EXPECT_EQ(rec.segments(), 2u);
  EXPECT_EQ(rec.total_quanta(), 6u);
  // Segment events sit at the first round of their segment.
  ASSERT_EQ(rec.events().size(), 2u);
  EXPECT_EQ(rec.events()[0].round, 1u);
  EXPECT_EQ(rec.events()[1].round, 3u);
  EXPECT_EQ(rec.events()[1].a, 1u);  // segment ordinal
}

TEST(TraceRecorder, TracingNeverPerturbsResults) {
  const Graph g = make_family("expander", 32, 1);
  for (const char* name : {"election", "flood_max", "push_pull"}) {
    RunOptions options;
    options.params.seed = 7;
    options.params.faults.crash_fraction = 0.2;
    options.params.max_length = 64;
    options.max_rounds = 4000;
    const Algorithm& algo = AlgorithmRegistry::instance().at(name);
    const RunResult plain = algo.run(g, options);
    auto [traced_json, rec] = traced_run(name, g, options);
    EXPECT_EQ(to_json(plain), traced_json) << name;
    EXPECT_FALSE(rec.rounds().empty()) << name;
  }
}

TEST(TraceRecorder, TimelineReconcilesWithMetricsTotals) {
  const Graph g = make_family("hypercube", 32, 1);
  const Algorithm& algo = AlgorithmRegistry::instance().at("election");
  RunOptions options;
  options.params.seed = 5;
  options.params.drop_probability = 0.05;
  options.params.faults.crash_fraction = 0.1;
  options.params.max_length = 64;
  TraceRecorder rec;
  options.params.trace = &rec;
  const RunResult r = algo.run(g, options);
  std::uint64_t quanta = 0, sends = 0, rand_drops = 0, crash_drops = 0,
                link_drops = 0;
  for (const TraceRound& row : rec.rounds()) {
    quanta += row.quanta;
    sends += row.sends;
    rand_drops += row.dropped_rand;
    crash_drops += row.dropped_crash;
    link_drops += row.dropped_link;
  }
  EXPECT_EQ(quanta, r.totals.congest_messages);
  EXPECT_EQ(sends, r.totals.logical_messages);
  EXPECT_EQ(rand_drops, r.totals.dropped_messages);
  EXPECT_EQ(crash_drops, r.totals.crash_dropped_messages);
  EXPECT_EQ(link_drops, r.totals.link_dropped_messages);
  EXPECT_EQ(rec.rounds().back().round, r.rounds);
  // The crash batch shows up as discrete events matching the outcome.
  std::uint64_t crash_events = 0;
  for (const TraceEvent& e : rec.events())
    if (e.kind == TraceEventKind::kCrash) ++crash_events;
  EXPECT_EQ(crash_events, r.faults.crashed.size());
}

TEST(TraceWriter, JsonlRoundTripsThroughTheReader) {
  const Graph g = make_family("clique", 16, 1);
  RunOptions options;
  options.params.seed = 3;
  auto [json, rec] = traced_run("flood_max", g, options);
  (void)json;

  std::ostringstream out;
  JsonlTraceWriter w(out);
  w.header({kTraceVersion, "run", "name=x algo=flood_max"});
  TraceRunMeta meta;
  meta.run = 0;
  meta.seed = 3;
  meta.n = 16;
  meta.algorithm = "flood_max";
  meta.family = "clique";
  write_run(w, meta, rec);
  w.finish(1);

  const TraceFileData data = parse_trace(out.str());
  EXPECT_EQ(data.format, TraceFormat::kJsonl);
  EXPECT_EQ(data.header.tool, "run");
  EXPECT_EQ(data.header.spec, "name=x algo=flood_max");
  EXPECT_EQ(data.declared_runs, 1u);
  ASSERT_EQ(data.runs.size(), 1u);
  EXPECT_EQ(data.runs[0].meta.algorithm, "flood_max");
  EXPECT_EQ(data.runs[0].meta.n, 16u);
  ASSERT_EQ(data.runs[0].rounds.size(), rec.rounds().size());
  for (std::size_t i = 0; i < rec.rounds().size(); ++i) {
    EXPECT_EQ(data.runs[0].rounds[i].round, rec.rounds()[i].round);
    EXPECT_EQ(data.runs[0].rounds[i].quanta, rec.rounds()[i].quanta);
    EXPECT_EQ(data.runs[0].rounds[i].backlog, rec.rounds()[i].backlog);
  }
  ASSERT_EQ(data.runs[0].events.size(), rec.events().size());
}

TEST(TraceWriter, BinaryAndJsonlCarryIdenticalData) {
  const Graph g = make_family("expander", 32, 1);
  RunOptions options;
  options.params.seed = 9;
  options.params.faults.crash_fraction = 0.25;
  options.params.faults.linkfail_fraction = 0.1;
  options.params.max_length = 64;
  options.max_rounds = 4000;
  auto [json, rec] = traced_run("election", g, options);
  (void)json;

  TraceRunMeta meta;
  meta.run = 2;
  meta.cell = 1;
  meta.trial = 0;
  meta.seed = 9;
  meta.n = 32;
  meta.algorithm = "election";
  meta.family = "expander";
  std::ostringstream jout, bout;
  JsonlTraceWriter jw(jout);
  BinaryTraceWriter bw(bout);
  for (TraceWriter* w : {static_cast<TraceWriter*>(&jw),
                         static_cast<TraceWriter*>(&bw)}) {
    w->header({kTraceVersion, "run", "name=y algo=election"});
    write_run(*w, meta, rec);
    w->finish(1);
  }
  // Binary is the compact framing.
  EXPECT_LT(bout.str().size(), jout.str().size() / 2);

  const TraceFileData a = parse_trace(jout.str());
  const TraceFileData b = parse_trace(bout.str());
  EXPECT_EQ(b.format, TraceFormat::kBinary);
  ASSERT_EQ(a.runs.size(), 1u);
  ASSERT_EQ(b.runs.size(), 1u);
  ASSERT_EQ(a.runs[0].rounds.size(), b.runs[0].rounds.size());
  ASSERT_EQ(a.runs[0].events.size(), b.runs[0].events.size());
  for (std::size_t i = 0; i < a.runs[0].events.size(); ++i) {
    EXPECT_EQ(a.runs[0].events[i].kind, b.runs[0].events[i].kind);
    EXPECT_EQ(a.runs[0].events[i].round, b.runs[0].events[i].round);
    EXPECT_EQ(a.runs[0].events[i].a, b.runs[0].events[i].a);
    EXPECT_EQ(a.runs[0].events[i].label, b.runs[0].events[i].label);
  }
  for (std::size_t i = 0; i < a.runs[0].rounds.size(); ++i) {
    EXPECT_EQ(a.runs[0].rounds[i].quanta, b.runs[0].rounds[i].quanta);
    EXPECT_EQ(a.runs[0].rounds[i].sends, b.runs[0].rounds[i].sends);
  }
}

TEST(TraceSpec, SingleRunSpecRoundTripsOptions) {
  RunOptions options;
  options.params.seed = 21;
  options.params.c1 = 5.5;
  options.params.wide_messages = true;
  options.params.drop_probability = 0.125;
  options.params.faults.crash_fraction = 0.3;
  options.params.faults.crash_round = 4;
  options.params.faults.adversary = "degree";
  options.params.max_length = 128;
  options.max_rounds = 999;
  options.source = 3;
  const ExperimentSpec spec = single_run_spec("election", "hypercube", 64, 2,
                                              21, 1, options);
  // The spec line survives the grammar (to_string -> parse -> to_string).
  const std::string line = spec.to_string();
  EXPECT_EQ(parse_spec(line).to_string(), line);
  // Its single cell reproduces the options exactly.
  const std::vector<SweepCell> cells = expand_cells(parse_spec(line));
  ASSERT_EQ(cells.size(), 1u);
  const ElectionParams& p = cells[0].options.params;
  EXPECT_EQ(p.c1, 5.5);
  EXPECT_TRUE(p.wide_messages);
  EXPECT_EQ(p.drop_probability, 0.125);
  EXPECT_EQ(p.faults.crash_fraction, 0.3);
  EXPECT_EQ(p.faults.crash_round, 4u);
  EXPECT_EQ(p.faults.adversary, "degree");
  EXPECT_EQ(p.max_length, 128u);
  EXPECT_EQ(cells[0].options.max_rounds, 999u);
  EXPECT_EQ(cells[0].options.source, 3u);
  // Options the grammar cannot express are rejected, not silently dropped.
  RunOptions pinned = options;
  pinned.params.faults.pinned_crashes = {1};
  EXPECT_THROW(single_run_spec("election", "hypercube", 64, 1, 1, 1, pinned),
               std::invalid_argument);
  RunOptions fault_seeded = options;
  fault_seeded.params.faults.seed = 77;
  EXPECT_THROW(
      single_run_spec("election", "hypercube", 64, 1, 1, 1, fault_seeded),
      std::invalid_argument);
}

TEST(TraceTrials, TracedTrialsAreThreadCountInvariant) {
  const Graph g = make_family("clique", 16, 1);
  const Algorithm& algo = AlgorithmRegistry::instance().at("flood_max");
  RunOptions options;
  options.params.faults.crash_fraction = 0.25;
  const auto serialize = [&](unsigned threads) {
    std::vector<TraceRecorder> recorders;
    const TrialStats s =
        run_trials(algo, g, options, 4, 100, threads, &recorders);
    std::ostringstream out;
    JsonlTraceWriter w(out);
    w.header({kTraceVersion, "trials", "x"});
    for (std::size_t i = 0; i < recorders.size(); ++i) {
      TraceRunMeta meta;
      meta.run = i;
      meta.trial = i;
      meta.seed = 100 + i;
      meta.n = 16;
      meta.algorithm = "flood_max";
      meta.family = "clique";
      write_run(w, meta, recorders[i]);
    }
    w.finish(recorders.size());
    return std::make_pair(out.str(), to_json(s));
  };
  const auto [trace1, stats1] = serialize(1);
  const auto [trace4, stats4] = serialize(4);
  EXPECT_EQ(trace1, trace4);
  // Aggregates differ only in the reported worker count.
  EXPECT_EQ(stats1.substr(stats1.find("success_rate")),
            stats4.substr(stats4.find("success_rate")));
}

TEST(TraceReplay, VerifiesByteIdentityAndCatchesTampering) {
  for (const TraceFormat format :
       {TraceFormat::kJsonl, TraceFormat::kBinary}) {
    const bool binary = format == TraceFormat::kBinary;
    RunOptions options;
    options.params.faults.crash_fraction = 0.25;
    const ExperimentSpec spec =
        single_run_spec("flood_max", "clique", 16, 2, 50, 1, options);
    const std::string path =
        temp_path(binary ? "replay.bin" : "replay.jsonl");
    {
      std::ofstream file(path, std::ios::binary);
      ASSERT_TRUE(file.is_open());
      const auto writer = make_trace_writer(format, file);
      writer->header({kTraceVersion, "trials", spec.to_string()});
      run_sweep(spec, /*sinks=*/{}, /*threads=*/1, writer.get());
    }
    ReplayReport rep = verify_replay(path, /*threads=*/2);
    EXPECT_TRUE(rep.ok) << rep.detail;
    EXPECT_EQ(rep.runs, 2u);
    EXPECT_EQ(rep.format, format);

    // Flip one timeline byte: replay must localize the drift.
    std::string bytes = read_file_bytes(path);
    const std::size_t at = bytes.size() - 10;
    bytes[at] = bytes[at] == '1' ? '2' : '1';
    {
      std::ofstream file(path, std::ios::binary);
      file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    rep = verify_replay(path, 1);
    EXPECT_FALSE(rep.ok);
    EXPECT_GE(rep.first_difference, 1u);
    std::remove(path.c_str());
  }
}

TEST(TraceSummarize, SeriesTrackLiveNodesAndCumulativeBill) {
  const Graph g = make_family("expander", 32, 1);
  RunOptions options;
  options.params.seed = 13;
  options.params.faults.crash_fraction = 0.25;
  options.params.faults.crash_round = 3;
  options.params.max_length = 64;
  options.max_rounds = 4000;
  auto [json, rec] = traced_run("election", g, options);
  (void)json;
  TraceRunData run;
  run.meta.n = 32;
  run.rounds = rec.rounds();
  run.events = rec.events();
  const TraceSummary s = summarize_trace(run);
  ASSERT_EQ(s.series.size(), rec.rounds().size());
  EXPECT_EQ(s.crashes, 8u);  // 0.25 * 32
  // Live nodes: 32 until the crash round, 24 after.
  EXPECT_EQ(s.series.front().live_nodes, 32u);
  EXPECT_EQ(s.series.back().live_nodes, 24u);
  EXPECT_EQ(s.final_live, 24u);
  // Cumulative series are monotone and end at the totals.
  for (std::size_t i = 1; i < s.series.size(); ++i)
    EXPECT_GE(s.series[i].cum_messages, s.series[i - 1].cum_messages);
  EXPECT_EQ(s.series.back().cum_messages, s.total_messages);
  EXPECT_EQ(s.total_messages, rec.total_quanta());
  EXPECT_LE(s.rounds_to_quiet, s.rounds);
  EXPECT_GE(s.peak_backlog, 1u);
  // The table renders one row per round plus the header, and downsampling
  // keeps the last round.
  const Table full = trace_summary_table(s);
  EXPECT_EQ(full.rows(), s.series.size());
  const Table sparse = trace_summary_table(s, 10);
  std::ostringstream csv;
  sparse.write_csv(csv);
  EXPECT_NE(csv.str().find("\n" + std::to_string(s.rounds) + ","),
            std::string::npos);
}

TEST(TraceWriter, WalkHopsRoundTripBothFramings) {
  // A v2 trace with walk_hop records must reload identically from the JSONL
  // and the binary framing, hop for hop.
  const Graph g = make_family("expander", 32, 1);
  RunOptions options;
  options.params.seed = 11;
  options.params.max_length = 64;
  options.params.trace_walks = 1;
  options.max_rounds = 4000;
  auto [json, rec] = traced_run("election", g, options);
  (void)json;
  ASSERT_FALSE(rec.walk_hops().empty());

  TraceRunMeta meta;
  meta.run = 0;
  meta.seed = 11;
  meta.n = 32;
  meta.algorithm = "election";
  meta.family = "expander";
  std::ostringstream jout, bout;
  JsonlTraceWriter jw(jout);
  BinaryTraceWriter bw(bout);
  for (TraceWriter* w : {static_cast<TraceWriter*>(&jw),
                         static_cast<TraceWriter*>(&bw)}) {
    w->header({kTraceVersion, "run",
               "name=single algo=election family=expander n=32 "
               "max-length=64 trace-walks=1 trials=1 base-seed=11"});
    write_run(*w, meta, rec);
    w->finish(1);
  }
  for (const std::string& bytes : {jout.str(), bout.str()}) {
    const TraceFileData data = parse_trace(bytes);
    ASSERT_EQ(data.runs.size(), 1u);
    const std::vector<TraceWalkHop>& got = data.runs[0].hops;
    const std::vector<TraceWalkHop>& want = rec.walk_hops();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].round, want[i].round);
      EXPECT_EQ(got[i].origin, want[i].origin);
      EXPECT_EQ(got[i].src, want[i].src);
      EXPECT_EQ(got[i].dst, want[i].dst);
      EXPECT_EQ(got[i].count, want[i].count);
      EXPECT_EQ(got[i].tag, want[i].tag);
    }
    // v2 run_end still carries the all-rounds quanta bill.
    EXPECT_EQ(data.runs[0].declared_quanta, rec.total_quanta());
  }
}

TEST(TraceSummarize, SampledTraceScalesCumulativeSeriesAndLabelsThem) {
  // A --trace-every=5 trace keeps rows 5, 10, 15, 20. The summarize pass
  // must infer the stride, scale the cumulative series by it, prefer the
  // run_end exact total, and label the estimate columns.
  TraceRunData run;
  run.meta.n = 8;
  for (std::uint64_t round = 5; round <= 20; round += 5) {
    TraceRound r;
    r.round = round;
    r.quanta = 2;
    r.sends = 2;
    run.rounds.push_back(r);
  }
  run.declared_quanta = 43;  // all 20 rounds, not 4 * 2 * 5 = 40
  const TraceSummary s = summarize_trace(run);
  EXPECT_EQ(s.stride, 5u);
  EXPECT_TRUE(s.sampled);
  ASSERT_EQ(s.series.size(), 4u);
  EXPECT_EQ(s.series[0].cum_messages, 10u);  // 2 quanta * stride 5
  EXPECT_EQ(s.series[3].cum_messages, 40u);
  EXPECT_EQ(s.total_messages, 43u);  // run_end exact figure wins
  const Table t = trace_summary_table(s);
  std::ostringstream csv;
  t.write_csv(csv);
  EXPECT_NE(csv.str().find("cum_msgs(est)"), std::string::npos);

  // An unsampled timeline keeps the exact semantics and plain labels.
  TraceRunData dense;
  dense.meta.n = 8;
  for (std::uint64_t round = 1; round <= 4; ++round) {
    TraceRound r;
    r.round = round;
    r.quanta = 3;
    dense.rounds.push_back(r);
  }
  const TraceSummary d = summarize_trace(dense);
  EXPECT_EQ(d.stride, 1u);
  EXPECT_FALSE(d.sampled);
  EXPECT_EQ(d.total_messages, 12u);
  std::ostringstream dense_csv;
  trace_summary_table(d).write_csv(dense_csv);
  EXPECT_EQ(dense_csv.str().find("cum_msgs(est)"), std::string::npos);
}

}  // namespace
}  // namespace wcle
