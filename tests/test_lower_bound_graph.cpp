#include "wcle/graph/lower_bound_graph.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "wcle/graph/spectral.hpp"

namespace wcle {
namespace {

LowerBoundGraph build(NodeId n, double alpha, std::uint64_t seed = 7) {
  Rng rng(seed);
  return make_lower_bound_graph(n, alpha, rng);
}

TEST(LowerBoundGraph, SizesMatchConstruction) {
  const LowerBoundGraph lb = build(1000, 0.004);
  EXPECT_EQ(lb.graph.node_count(), lb.num_cliques * lb.clique_size);
  EXPECT_GE(lb.clique_size, 5u);
  EXPECT_GE(lb.num_cliques, 5u);
  // eps = log(1/alpha) / (2 log n)
  const double eps = std::log(1.0 / 0.004) / (2.0 * std::log(1000.0));
  EXPECT_NEAR(lb.epsilon, eps, 1e-12);
  EXPECT_EQ(lb.clique_size,
            static_cast<NodeId>(std::ceil(std::pow(1000.0, eps))));
}

TEST(LowerBoundGraph, SupernodeGraphIsFourRegular) {
  const LowerBoundGraph lb = build(2000, 0.003);
  const Graph& gs = lb.supernode_graph;
  EXPECT_EQ(gs.node_count(), lb.num_cliques);
  for (NodeId s = 0; s < gs.node_count(); ++s) EXPECT_EQ(gs.degree(s), 4u);
  EXPECT_TRUE(gs.is_connected());
}

TEST(LowerBoundGraph, UniformDegrees) {
  // Figure 2's surgery: every node ends with degree exactly s-1
  // (internal: clique degree; external: clique degree - removed + inter).
  const LowerBoundGraph lb = build(1500, 0.004);
  const std::uint32_t expect = lb.clique_size - 1;
  for (NodeId v = 0; v < lb.graph.node_count(); ++v)
    ASSERT_EQ(lb.graph.degree(v), expect) << "node " << v;
}

TEST(LowerBoundGraph, ExactlyFourExternalNodesPerClique) {
  const LowerBoundGraph lb = build(1200, 0.005);
  std::vector<int> externals(lb.num_cliques, 0);
  for (const Edge& e : lb.inter_clique_edges) {
    EXPECT_NE(lb.clique_of[e.a], lb.clique_of[e.b]);
    ++externals[lb.clique_of[e.a]];
    ++externals[lb.clique_of[e.b]];
  }
  for (const int count : externals) EXPECT_EQ(count, 4);
  EXPECT_EQ(lb.inter_clique_edges.size(), 2u * lb.num_cliques);
}

TEST(LowerBoundGraph, InterCliqueEdgesMirrorSupernodeEdges) {
  const LowerBoundGraph lb = build(1000, 0.005);
  std::multiset<std::pair<NodeId, NodeId>> from_gs, from_g;
  for (const Edge& e : lb.supernode_graph.edges())
    from_gs.insert({std::min(e.a, e.b), std::max(e.a, e.b)});
  for (const Edge& e : lb.inter_clique_edges) {
    const NodeId ca = lb.clique_of[e.a], cb = lb.clique_of[e.b];
    from_g.insert({std::min(ca, cb), std::max(ca, cb)});
  }
  EXPECT_EQ(from_gs, from_g);
}

TEST(LowerBoundGraph, Connected) {
  EXPECT_TRUE(build(800, 0.006).graph.is_connected());
}

TEST(LowerBoundGraph, Lemma16ConductanceScalesWithAlpha) {
  // phi(G) = Theta(alpha): the sweep-cut upper bound and the Cheeger lower
  // bound must both track alpha within constant factors.
  for (const double alpha : {0.0015, 0.003, 0.006}) {
    const LowerBoundGraph lb = build(1500, alpha, 11);
    const double sweep = conductance_sweep(lb.graph);
    const CheegerBounds cb = cheeger_bounds(spectral_gap(lb.graph, 3000));
    EXPECT_GT(sweep, alpha / 8.0) << "alpha=" << alpha;
    EXPECT_LT(sweep, alpha * 8.0) << "alpha=" << alpha;
    EXPECT_LT(cb.lower, alpha * 8.0) << "alpha=" << alpha;
  }
}

TEST(LowerBoundGraph, OptimalCutAvoidsCliques) {
  // Claim 17: the sweep-optimal cut uses only inter-clique edges, i.e. the
  // cut that groups whole cliques beats any clique-splitting cut. Verify the
  // analytically best whole-clique cut is at most the in-clique sweep value.
  const LowerBoundGraph lb = build(1000, 0.005, 13);
  // Cut on a single clique boundary: 4 inter-clique edges cut.
  std::vector<char> in_s(lb.graph.node_count(), 0);
  for (NodeId v = 0; v < lb.graph.node_count(); ++v)
    if (lb.clique_of[v] == 0) in_s[v] = 1;
  const double whole_clique_cut = cut_conductance(lb.graph, in_s);
  // Same volume but splitting a clique in half instead.
  std::vector<char> split(lb.graph.node_count(), 0);
  for (NodeId v = 0; v < lb.clique_size / 2; ++v) split[v] = 1;
  for (NodeId v = lb.clique_size; v < lb.clique_size + lb.clique_size / 2; ++v)
    split[v] = 1;
  const double split_cut = cut_conductance(lb.graph, split);
  EXPECT_LT(whole_clique_cut, split_cut);
}

TEST(LowerBoundGraph, RejectsOutOfRangeAlpha) {
  Rng rng(1);
  EXPECT_THROW(make_lower_bound_graph(1000, 1e-7, rng),
               std::invalid_argument);  // alpha <= 1/n^2
  EXPECT_THROW(make_lower_bound_graph(1000, 0.5, rng),
               std::invalid_argument);  // alpha >= 1/144
  EXPECT_THROW(make_lower_bound_graph(10, 0.004, rng), std::invalid_argument);
}

TEST(LowerBoundGraph, CliqueOfIsConsistent) {
  const LowerBoundGraph lb = build(900, 0.006);
  for (NodeId v = 0; v < lb.graph.node_count(); ++v)
    EXPECT_EQ(lb.clique_of[v], v / lb.clique_size);
}

}  // namespace
}  // namespace wcle
