// Property-based sweeps (parameterized gtest): invariants that must hold for
// every graph family, size, and seed — at-most-one-leader safety, unit
// conservation, schedule bounds, and the monotonicity properties the paper's
// lemmas rest on.
#include <gtest/gtest.h>

#include <cmath>

#include "wcle/core/leader_election.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/rw/walk_engine.hpp"
#include "wcle/sim/network.hpp"

namespace wcle {
namespace {

enum class Family { kClique, kHypercube, kTorus, kExpander, kRing };

struct FamilyCase {
  Family family;
  NodeId size_hint;
  const char* name;
};

Graph build_family(const FamilyCase& c, std::uint64_t seed) {
  Rng rng(seed);
  switch (c.family) {
    case Family::kClique:
      return make_clique(c.size_hint);
    case Family::kHypercube: {
      std::uint32_t d = 1;
      while ((NodeId{1} << (d + 1)) <= c.size_hint) ++d;
      return make_hypercube(d);
    }
    case Family::kTorus: {
      const NodeId side = static_cast<NodeId>(std::sqrt(double(c.size_hint)));
      return make_torus(side, side);
    }
    case Family::kExpander:
      return make_random_regular(c.size_hint, 6, rng);
    case Family::kRing:
      return make_ring(c.size_hint);
  }
  return make_clique(4);
}

std::string family_name(
    const ::testing::TestParamInfo<std::tuple<FamilyCase, int>>& info) {
  return std::string(std::get<0>(info.param).name) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

class ElectionSafetyProperty
    : public ::testing::TestWithParam<std::tuple<FamilyCase, int>> {};

TEST_P(ElectionSafetyProperty, AtMostOneLeaderAndBoundsHold) {
  const auto& [fc, seed] = GetParam();
  const Graph g = build_family(fc, 100 + seed);
  ElectionParams p;
  p.seed = 1000 + seed;
  const ElectionResult r = run_leader_election(g, p);

  // Safety (Lemma 8): never more than one leader.
  EXPECT_LE(r.leaders.size(), 1u);
  // Any leader is a contender and carries a nonzero random id.
  if (!r.leaders.empty()) {
    EXPECT_NE(std::find(r.contenders.begin(), r.contenders.end(),
                        r.leaders[0]),
              r.contenders.end());
    EXPECT_GT(r.leader_random_id, 0u);
  }
  // Time bound (Lemma 12): measured rounds within the paper's schedule.
  EXPECT_LE(r.totals.rounds, r.scheduled_rounds);
  // Accounting: phase metrics partition the totals.
  std::uint64_t msgs = 0;
  for (const PhaseStats& ps : r.phase_stats)
    msgs += ps.metrics.congest_messages;
  EXPECT_EQ(msgs, r.totals.congest_messages);
  // CONGEST accounting: every logical message costs >= 1 CONGEST message.
  EXPECT_GE(r.totals.congest_messages, r.totals.logical_messages);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ElectionSafetyProperty,
    ::testing::Combine(
        ::testing::Values(FamilyCase{Family::kClique, 96, "clique"},
                          FamilyCase{Family::kHypercube, 64, "hypercube"},
                          FamilyCase{Family::kTorus, 100, "torus"},
                          FamilyCase{Family::kExpander, 120, "expander"},
                          FamilyCase{Family::kRing, 24, "ring"}),
        ::testing::Range(0, 4)),
    family_name);

class WalkConservationProperty
    : public ::testing::TestWithParam<std::tuple<FamilyCase, int>> {};

TEST_P(WalkConservationProperty, UnitsConservedAndTrailsRoutable) {
  const auto& [fc, seed] = GetParam();
  const Graph g = build_family(fc, 200 + seed);
  Network net(g, CongestConfig::standard(g.node_count()));
  Rng rng(300 + seed);
  WalkEngine engine(g, net, rng);

  const std::uint64_t count = 64;
  const std::uint32_t length = 6;
  const NodeId origin = g.node_count() / 2;
  engine.run_walk_stage({{origin, count, length}});

  // Conservation: all walk units end registered at proxies.
  std::uint64_t total = 0;
  for (const NodeId p : engine.proxy_nodes(origin))
    total += engine.registrations(p).at(origin);
  EXPECT_EQ(total, count);

  // Every proxy can route a unicast back to the origin.
  for (const NodeId p : engine.proxy_nodes(origin)) {
    bool reached = false;
    auto events = engine.begin_unicast_up(p, origin, {1});
    net.run_until_idle([&](const Delivery& d) {
      for (const WalkEvent& ev : engine.handle(d))
        if (ev.kind == WalkEvent::Kind::kUnicastAtOrigin) reached = true;
    });
    for (const WalkEvent& ev : events)
      if (ev.kind == WalkEvent::Kind::kUnicastAtOrigin) reached = true;
    EXPECT_TRUE(reached) << "proxy " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WalkConservationProperty,
    ::testing::Combine(
        ::testing::Values(FamilyCase{Family::kClique, 32, "clique"},
                          FamilyCase{Family::kHypercube, 32, "hypercube"},
                          FamilyCase{Family::kTorus, 36, "torus"},
                          FamilyCase{Family::kExpander, 40, "expander"},
                          FamilyCase{Family::kRing, 16, "ring"}),
        ::testing::Range(0, 3)),
    family_name);

class SeedDeterminismProperty : public ::testing::TestWithParam<int> {};

TEST_P(SeedDeterminismProperty, IdenticalRunsAreBitIdentical) {
  const Graph g = make_hypercube(5);
  ElectionParams p;
  p.seed = 5000 + GetParam();
  const ElectionResult a = run_leader_election(g, p);
  const ElectionResult b = run_leader_election(g, p);
  EXPECT_EQ(a.leaders, b.leaders);
  EXPECT_EQ(a.contenders, b.contenders);
  EXPECT_EQ(a.totals.congest_messages, b.totals.congest_messages);
  EXPECT_EQ(a.totals.total_bits, b.totals.total_bits);
  EXPECT_EQ(a.totals.rounds, b.totals.rounds);
  EXPECT_EQ(a.phases, b.phases);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedDeterminismProperty,
                         ::testing::Range(0, 6));

class WalkLengthMonotonicityProperty : public ::testing::TestWithParam<int> {};

TEST_P(WalkLengthMonotonicityProperty, LongerWalksSpreadAtLeastAsFar) {
  // Lemma 3's engine: walk endpoints approach stationarity, so the number of
  // distinct proxy nodes is (statistically) non-decreasing in walk length on
  // a poorly-mixed start. Averaged over walks to damp noise.
  const Graph g = make_torus(8, 8);
  Network net(g, CongestConfig::standard(g.node_count()));
  Rng rng(700 + GetParam());
  WalkEngine engine(g, net, rng);
  double short_spread = 0, long_spread = 0;
  const int reps = 3;
  for (int i = 0; i < reps; ++i) {
    engine.run_walk_stage({{0, 96, 2}});
    short_spread += static_cast<double>(engine.proxy_nodes(0).size());
    engine.run_walk_stage({{0, 96, 32}});
    long_spread += static_cast<double>(engine.proxy_nodes(0).size());
  }
  EXPECT_GT(long_spread, short_spread);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalkLengthMonotonicityProperty,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace wcle
