// Tests for the generic trial runner: uniform TrialStats schema across every
// registered algorithm, determinism in the base seed, and bit-identical
// aggregates regardless of worker-thread count (the fan-out only distributes
// seeds; it must never change a result).
#include <gtest/gtest.h>

#include "wcle/api/registry.hpp"
#include "wcle/api/serialize.hpp"
#include "wcle/api/trials.hpp"
#include "wcle/graph/generators.hpp"

namespace wcle {
namespace {

void expect_identical(const Summary& a, const Summary& b, const char* what) {
  EXPECT_EQ(a.count, b.count) << what;
  EXPECT_EQ(a.mean, b.mean) << what;
  EXPECT_EQ(a.stddev, b.stddev) << what;
  EXPECT_EQ(a.min, b.min) << what;
  EXPECT_EQ(a.median, b.median) << what;
  EXPECT_EQ(a.max, b.max) << what;
}

void expect_identical(const TrialStats& a, const TrialStats& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.success_rate, b.success_rate);
  EXPECT_EQ(a.zero_leader_rate, b.zero_leader_rate);
  EXPECT_EQ(a.multi_leader_rate, b.multi_leader_rate);
  expect_identical(a.congest_messages, b.congest_messages, "congest_messages");
  expect_identical(a.logical_messages, b.logical_messages, "logical_messages");
  expect_identical(a.total_bits, b.total_bits, "total_bits");
  expect_identical(a.rounds, b.rounds, "rounds");
  expect_identical(a.leader_count, b.leader_count, "leader_count");
  ASSERT_EQ(a.extras.size(), b.extras.size());
  for (const auto& [key, summary] : a.extras) {
    ASSERT_TRUE(b.extras.count(key)) << key;
    expect_identical(summary, b.extras.at(key), key.c_str());
  }
}

TEST(Trials, UniformSchemaForEveryRegisteredAlgorithm) {
  const Graph g = make_clique(16);
  const RunOptions options;
  constexpr int kTrials = 3;
  for (const Algorithm* a : AlgorithmRegistry::instance().all()) {
    const TrialStats s = run_trials(*a, g, options, kTrials, 77);
    EXPECT_EQ(s.algorithm, a->name());
    EXPECT_EQ(s.trials, kTrials);
    EXPECT_GE(s.threads, 1u);
    EXPECT_EQ(s.congest_messages.count, static_cast<std::size_t>(kTrials))
        << a->name();
    EXPECT_EQ(s.rounds.count, static_cast<std::size_t>(kTrials)) << a->name();
    EXPECT_EQ(s.leader_count.count, static_cast<std::size_t>(kTrials))
        << a->name();
    EXPECT_GE(s.success_rate, 0.0);
    EXPECT_LE(s.success_rate, 1.0);
    // An algorithm reports the same extras keys on every trial, so each
    // extras summary covers all trials — that is what makes the schema
    // uniform enough for tables and JSON without per-algorithm code.
    for (const auto& [key, summary] : s.extras)
      EXPECT_EQ(summary.count, static_cast<std::size_t>(kTrials))
          << a->name() << " extras key " << key;
  }
}

TEST(Trials, MultiThreadedIsBitIdenticalToSingleThreaded) {
  const Graph g = make_hypercube(4);
  const RunOptions options;
  for (const char* name : {"election", "flood_max", "push_pull"}) {
    const Algorithm& a = AlgorithmRegistry::instance().at(name);
    const TrialStats single = run_trials(a, g, options, 8, 900, 1);
    const TrialStats quad = run_trials(a, g, options, 8, 900, 4);
    EXPECT_EQ(single.threads, 1u);
    EXPECT_EQ(quad.threads, 4u);
    expect_identical(single, quad);
  }
}

TEST(Trials, DeterministicInBaseSeedOnly) {
  const Graph g = make_clique(20);
  const Algorithm& a = AlgorithmRegistry::instance().at("election");
  const RunOptions options;
  const TrialStats s1 = run_trials(a, g, options, 5, 1234);
  const TrialStats s2 = run_trials(a, g, options, 5, 1234);
  expect_identical(s1, s2);
  const TrialStats s3 = run_trials(a, g, options, 5, 1235);
  EXPECT_NE(s1.congest_messages.mean, s3.congest_messages.mean);
}

TEST(Trials, ZeroTrialsYieldEmptyStats) {
  const Graph g = make_clique(8);
  const Algorithm& a = AlgorithmRegistry::instance().at("flood_max");
  const TrialStats s = run_trials(a, g, RunOptions{}, 0);
  EXPECT_EQ(s.trials, 0);
  EXPECT_EQ(s.congest_messages.count, 0u);
  EXPECT_EQ(s.success_rate, 0.0);
}

TEST(Trials, ThreadCountIsCappedByTrials) {
  const Graph g = make_clique(8);
  const Algorithm& a = AlgorithmRegistry::instance().at("flood_max");
  const TrialStats s = run_trials(a, g, RunOptions{}, 2, 10, 16);
  EXPECT_EQ(s.threads, 2u);
}

// ---------------------------------------------------------------- JSON

TEST(Serialize, RunResultJsonHasSchemaFields) {
  const Algorithm& a = AlgorithmRegistry::instance().at("election");
  RunOptions options;
  options.set_seed(5);
  const std::string json = to_json(a.run(make_clique(16), options));
  for (const char* key :
       {"\"algorithm\":\"election\"", "\"success\":", "\"leaders\":",
        "\"rounds\":", "\"congest_messages\":", "\"extras\":",
        "\"phases\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST(Serialize, TrialStatsJsonHasSchemaFields) {
  const Algorithm& a = AlgorithmRegistry::instance().at("push_pull");
  const std::string json =
      to_json(run_trials(a, make_clique(16), RunOptions{}, 3, 44));
  for (const char* key :
       {"\"algorithm\":\"push_pull\"", "\"trials\":3", "\"threads\":",
        "\"success_rate\":", "\"metrics\":", "\"congest_messages\":",
        "\"mean\":", "\"median\":", "\"extras\":", "\"informed\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST(Serialize, JsonEscaping) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

}  // namespace
}  // namespace wcle
