// Memory-lean graph construction proof obligations:
//   1. FlatEdgeSet is a faithful membership set (insert-once semantics
//      across rehashes) at a flat 8 bytes per slot.
//   2. make_hypercube's direct-CSR build is indistinguishable from the old
//      edge-list build: same adjacency, same mirror ports, and — when port
//      shuffling is on — the same RNG draw sequence, so every seeded
//      experiment reproduces bit-for-bit.
//   3. Graph::from_adjacency rejects inconsistent CSR arrays instead of
//      constructing a corrupt graph.
//   4. The million-node footprint: a 2^20-node hypercube builds within the
//      flat CSR budget (no per-node vector-of-vectors blowup).
#include <gtest/gtest.h>

#include <bit>
#include <stdexcept>
#include <vector>

#include "wcle/graph/flat_edge_set.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {
namespace {

TEST(FlatEdgeSet, InsertOnceSemanticsSurviveRehash) {
  FlatEdgeSet set(4);  // deliberately undersized: forces several rehashes
  const auto key = [](std::uint32_t a, std::uint32_t b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  for (std::uint32_t i = 0; i < 10000; ++i)
    EXPECT_TRUE(set.insert(key(i, i + 1))) << i;
  EXPECT_EQ(set.size(), 10000u);
  for (std::uint32_t i = 0; i < 10000; ++i) {
    EXPECT_FALSE(set.insert(key(i, i + 1))) << i;
    EXPECT_EQ(set.count(key(i, i + 1)), 1u) << i;
  }
  EXPECT_EQ(set.size(), 10000u);
  EXPECT_FALSE(set.contains(key(10000, 10001)));
  EXPECT_EQ(set.count(key(42, 7)), 0u);
  // Flat footprint: power-of-two slot array at load factor <= 1/2.
  EXPECT_LE(set.memory_bytes(), 10000u * 2 * 2 * sizeof(std::uint64_t));
}

/// The edge list the pre-CSR make_hypercube built, kept as the oracle.
std::vector<Edge> hypercube_edges(std::uint32_t dim) {
  const NodeId n = NodeId{1} << dim;
  std::vector<Edge> edges;
  for (NodeId i = 0; i < n; ++i)
    for (std::uint32_t b = 0; b < dim; ++b) {
      const NodeId j = i ^ (NodeId{1} << b);
      if (i < j) edges.push_back({i, j});
    }
  return edges;
}

void expect_same_graph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (NodeId u = 0; u < a.node_count(); ++u) {
    ASSERT_EQ(a.degree(u), b.degree(u)) << "node " << u;
    for (Port p = 0; p < a.degree(u); ++p) {
      EXPECT_EQ(a.neighbor(u, p), b.neighbor(u, p)) << u << ":" << p;
      EXPECT_EQ(a.mirror_port(u, p), b.mirror_port(u, p)) << u << ":" << p;
    }
  }
}

TEST(HypercubeCsr, DirectBuildMatchesEdgeListBuildDeterministicPorts) {
  for (std::uint32_t dim = 1; dim <= 10; ++dim) {
    const Graph direct = make_hypercube(dim);
    const Graph oracle =
        Graph::from_edges(NodeId{1} << dim, hypercube_edges(dim));
    expect_same_graph(direct, oracle);
  }
}

TEST(HypercubeCsr, DirectBuildMatchesEdgeListBuildUnderPortShuffle) {
  // Same seed into both builds: the graphs must match port-for-port AND the
  // two RNGs must end at the same stream position (the shuffle consumed
  // identical draws), so downstream seeded code is unaffected by the
  // construction path.
  for (std::uint32_t dim = 1; dim <= 8; ++dim) {
    Rng rng_direct(1234 + dim);
    Rng rng_oracle(1234 + dim);
    const Graph direct = make_hypercube(dim, &rng_direct);
    const Graph oracle = Graph::from_edges(
        NodeId{1} << dim, hypercube_edges(dim), &rng_oracle);
    expect_same_graph(direct, oracle);
    EXPECT_EQ(rng_direct.next_below(~0ull), rng_oracle.next_below(~0ull))
        << "dim " << dim;
  }
}

TEST(FromAdjacency, RejectsInconsistentArrays) {
  // A valid 2-node single-edge CSR, then break it one way at a time.
  const std::vector<std::uint64_t> offset{0, 1, 2};
  const std::vector<NodeId> adj{1, 0};
  const std::vector<std::uint64_t> pair{1, 0};
  EXPECT_NO_THROW(Graph::from_adjacency(2, offset, adj, pair));
  // Wrong offset length.
  EXPECT_THROW(Graph::from_adjacency(2, {0, 2}, adj, pair),
               std::invalid_argument);
  // offset[n] disagrees with adj size.
  EXPECT_THROW(Graph::from_adjacency(2, {0, 1, 3}, adj, pair),
               std::invalid_argument);
  // pair_slot size mismatch.
  EXPECT_THROW(Graph::from_adjacency(2, offset, adj, {1}),
               std::invalid_argument);
  // Pairing is not an involution.
  EXPECT_THROW(Graph::from_adjacency(2, offset, adj, {0, 1}),
               std::invalid_argument);
  // Paired slot lands on the wrong endpoint's range.
  EXPECT_THROW(Graph::from_adjacency(2, offset, {1, 1}, pair),
               std::invalid_argument);
}

TEST(MillionNode, HypercubeBuildsWithinFlatCsrBudget) {
  // 2^20 nodes, ~10.5M edges. The CSR arrays are the whole footprint:
  // 8-byte offsets plus 4+4 bytes per directed edge — no per-node vectors.
  const Graph g = make_hypercube(20);
  EXPECT_EQ(g.node_count(), 1u << 20);
  EXPECT_EQ(g.edge_count(), 20ull << 19);
  const std::uint64_t ideal =
      (g.node_count() + 1ull) * 8 + g.volume() * (4 + 4);
  EXPECT_LE(g.memory_bytes(), ideal + (ideal >> 3));  // <= 12.5% slack
  EXPECT_LE(g.memory_bytes(), 256ull << 20);          // hard cap: 256 MiB
  // Structural spot checks at scale.
  EXPECT_EQ(g.degree(0), 20u);
  EXPECT_EQ(g.degree((1u << 20) - 1), 20u);
  const NodeId v = 0xABCDE;
  for (Port p = 0; p < g.degree(v); ++p) {
    const NodeId u = g.neighbor(v, p);
    EXPECT_EQ(std::popcount(v ^ u), 1) << "non-hypercube edge";
    EXPECT_EQ(g.neighbor(u, g.mirror_port(v, p)), v) << "broken mirror";
  }
}

}  // namespace
}  // namespace wcle
