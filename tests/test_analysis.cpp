// Tests for the experiment harness: aggregation correctness, determinism,
// graph profiling, and the theorem envelopes used to normalize bench rows.
#include <gtest/gtest.h>

#include <cmath>

#include "wcle/analysis/experiment.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/graph/lower_bound_graph.hpp"

namespace wcle {
namespace {

TEST(Analysis, TrialsAreDeterministicInBaseSeed) {
  const Graph g = make_clique(48);
  ElectionParams p;
  const ElectionTrialStats a = run_election_trials(g, p, 6, 500);
  const ElectionTrialStats b = run_election_trials(g, p, 6, 500);
  EXPECT_EQ(a.congest_messages.mean, b.congest_messages.mean);
  EXPECT_EQ(a.rounds.max, b.rounds.max);
  EXPECT_EQ(a.success_rate, b.success_rate);
  const ElectionTrialStats c = run_election_trials(g, p, 6, 501);
  EXPECT_NE(a.congest_messages.mean, c.congest_messages.mean);
}

TEST(Analysis, TrialStatsFieldsAreConsistent) {
  const Graph g = make_hypercube(6);
  ElectionParams p;
  const ElectionTrialStats s = run_election_trials(g, p, 8, 42);
  EXPECT_EQ(s.trials, 8);
  EXPECT_EQ(s.congest_messages.count, 8u);
  EXPECT_LE(s.congest_messages.min, s.congest_messages.mean);
  EXPECT_GE(s.congest_messages.max, s.congest_messages.mean);
  EXPECT_GE(s.rounds.min, 1.0);
  // Scheduled rounds always dominate measured rounds.
  EXPECT_GE(s.scheduled_rounds.min, s.rounds.max * 0.99);
  EXPECT_GT(s.contenders.mean, 1.0);
  EXPECT_GE(s.phases.mean, 1.0);
}

TEST(Analysis, ProfileOnLowerBoundGraphMatchesAlpha) {
  Rng rng(9);
  const LowerBoundGraph lb = make_lower_bound_graph(700, 0.005, rng);
  const GraphProfile prof = profile_graph(lb.graph, 2);
  EXPECT_EQ(prof.n, lb.graph.node_count());
  EXPECT_EQ(prof.m, lb.graph.edge_count());
  EXPECT_GT(prof.sweep_conductance, 0.005 / 8);
  EXPECT_LT(prof.sweep_conductance, 0.005 * 8);
  // Equation (1): tmix between ~1/phi and ~1/phi^2.
  EXPECT_GT(static_cast<double>(prof.tmix), 0.05 / 0.005);
  EXPECT_LT(static_cast<double>(prof.tmix), 40.0 / (0.005 * 0.005));
}

TEST(Analysis, EnvelopeFormulas) {
  // Exact arithmetic of the envelopes at a hand-computable point.
  const double lg = 10.0;  // n = 1024
  EXPECT_NEAR(theorem13_message_envelope(1024, 7),
              32.0 * std::pow(lg, 3.5) * 7.0, 1e-6);
  EXPECT_NEAR(theorem13_time_envelope(1024, 7), 700.0, 1e-9);
  EXPECT_NEAR(theorem15_message_envelope(1024, 1.0 / 16.0),
              32.0 * std::pow(16.0, 0.75), 1e-9);
}

TEST(Analysis, FailureRatesPartitionUnity) {
  const Graph g = make_clique(40);
  ElectionParams p;
  p.c1 = 0.0;  // guarantee failure: no contenders
  const ElectionTrialStats s = run_election_trials(g, p, 4, 1);
  EXPECT_EQ(s.success_rate, 0.0);
  EXPECT_EQ(s.zero_leader_rate, 1.0);
  EXPECT_EQ(s.multi_leader_rate, 0.0);
}

}  // namespace
}  // namespace wcle
