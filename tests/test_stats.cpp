#include "wcle/support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "wcle/support/bits.hpp"
#include "wcle/support/table.hpp"

#include <sstream>

namespace wcle {
namespace {

TEST(Summary, EmptyInputIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summary, SingleValue) {
  const Summary s = summarize({42.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summary, KnownValues) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Summary, OddCountMedian) {
  const Summary s = summarize({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(LineFit, PerfectLine) {
  const LineFit f = fit_line({0, 1, 2, 3}, {1, 3, 5, 7});
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(LineFit, DegenerateInputs) {
  EXPECT_EQ(fit_line({}, {}).slope, 0.0);
  EXPECT_EQ(fit_line({1.0}, {2.0}).slope, 0.0);
  EXPECT_EQ(fit_line({1.0, 1.0}, {2.0, 3.0}).slope, 0.0);  // vertical
}

TEST(PowerLaw, RecoversExponent) {
  std::vector<double> xs, ys;
  for (double x = 2; x <= 1024; x *= 2) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 1.5));
  }
  const LineFit f = fit_power_law(xs, ys);
  EXPECT_NEAR(f.slope, 1.5, 1e-9);
  EXPECT_NEAR(std::exp(f.intercept), 3.0, 1e-9);
}

TEST(PowerLaw, SkipsNonPositive) {
  const LineFit f = fit_power_law({-1, 0, 2, 4, 8}, {1, 1, 4, 16, 64});
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
}

TEST(Quantile, Basics) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
  EXPECT_EQ(quantile({}, 0.5), 0.0);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(0), 0u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Bits, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(2047), 10u);
}

TEST(Bits, IdBitsMatchesFourLogN) {
  EXPECT_EQ(id_bits(1024), 40u);
  EXPECT_EQ(id_bits(2), 4u);
}

TEST(Bits, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
}

TEST(Table, PrintAndCsv) {
  Table t({"n", "messages"});
  t.add_row({"100", "2345"});
  t.add_row({"200", "5678"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("messages"), std::string::npos);
  EXPECT_NE(os.str().find("5678"), std::string::npos);
  std::ostringstream csv;
  t.write_csv(csv);
  EXPECT_NE(csv.str().find("100,2345"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(0.0), "0");
  EXPECT_NE(Table::num(1.0e9).find("e"), std::string::npos);
  EXPECT_EQ(Table::num(12.5), "12.5");
}

}  // namespace
}  // namespace wcle
