#include "wcle/sim/network.hpp"

#include <gtest/gtest.h>

#include "wcle/graph/generators.hpp"

namespace wcle {
namespace {

Message small_msg(std::uint8_t tag = 1, std::uint32_t bits = 8) {
  Message m;
  m.tag = tag;
  m.bits = bits;
  return m;
}

TEST(Network, SingleHopDelivery) {
  const Graph g = make_path(2);
  Network net(g, {32});
  Message m = small_msg(3, 16);
  m.a = 42;
  net.send(0, 0, m);
  EXPECT_FALSE(net.idle());
  const auto& d = net.step();
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].dst, 1u);
  EXPECT_EQ(d[0].msg.a, 42u);
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.metrics().rounds, 1u);
  EXPECT_EQ(net.metrics().congest_messages, 1u);
  EXPECT_EQ(net.metrics().logical_messages, 1u);
}

TEST(Network, ArrivalPortIsReceiversPort) {
  Rng rng(3);
  const Graph g = make_torus(4, 4, &rng);
  Network net(g, {64});
  // Send over every directed edge once; check arrival port mirrors.
  for (NodeId u = 0; u < g.node_count(); ++u)
    for (Port p = 0; p < g.degree(u); ++p) {
      Message m = small_msg();
      m.a = (static_cast<std::uint64_t>(u) << 32) | p;
      net.send(u, p, m);
    }
  const auto& d = net.step();
  ASSERT_EQ(d.size(), 2 * g.edge_count());
  for (const Delivery& del : d) {
    const NodeId from = static_cast<NodeId>(del.msg.a >> 32);
    const Port from_port = static_cast<Port>(del.msg.a & 0xffffffffu);
    EXPECT_EQ(g.neighbor(del.dst, del.port), from);
    EXPECT_EQ(g.mirror_port(from, from_port), del.port);
  }
}

TEST(Network, FragmentationDelaysLargeMessages) {
  const Graph g = make_path(2);
  Network net(g, {10});
  net.send(0, 0, small_msg(1, 35));  // ceil(35/10) = 4 quanta
  EXPECT_EQ(net.step().size(), 0u);
  EXPECT_EQ(net.step().size(), 0u);
  EXPECT_EQ(net.step().size(), 0u);
  EXPECT_EQ(net.step().size(), 1u);
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.metrics().congest_messages, 4u);
  EXPECT_EQ(net.metrics().total_bits, 35u);
}

TEST(Network, FifoOrderPerLane) {
  const Graph g = make_path(2);
  Network net(g, {8});
  for (std::uint64_t i = 0; i < 5; ++i) {
    Message m = small_msg(1, 8);
    m.a = i;
    net.send(0, 0, m);
  }
  std::vector<std::uint64_t> got;
  net.run_until_idle([&](const Delivery& d) { got.push_back(d.msg.a); });
  EXPECT_EQ(got, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(Network, OnePerRoundPerLaneCongestion) {
  const Graph g = make_path(2);
  Network net(g, {8});
  for (int i = 0; i < 5; ++i) net.send(0, 0, small_msg(1, 8));
  std::uint64_t deliveries = 0, rounds = 0;
  while (!net.idle()) {
    deliveries += net.step().size();
    ++rounds;
  }
  EXPECT_EQ(deliveries, 5u);
  EXPECT_EQ(rounds, 5u);  // exactly one B-bit quantum per round
  EXPECT_EQ(net.metrics().max_edge_backlog, 5u);
}

TEST(Network, OppositeDirectionsDontContend) {
  const Graph g = make_path(2);
  Network net(g, {8});
  net.send(0, 0, small_msg());
  net.send(1, 0, small_msg());
  EXPECT_EQ(net.step().size(), 2u);  // both delivered in the same round
}

TEST(Network, DistinctLanesServeInParallel) {
  const Graph g = make_clique(4);
  Network net(g, {8});
  for (Port p = 0; p < 3; ++p) net.send(0, p, small_msg());
  EXPECT_EQ(net.step().size(), 3u);
}

TEST(Network, RunUntilIdleRespectsMaxRounds) {
  const Graph g = make_path(2);
  Network net(g, {8});
  for (int i = 0; i < 10; ++i) net.send(0, 0, small_msg(1, 8));
  const std::uint64_t used =
      net.run_until_idle([](const Delivery&) {}, 3);
  EXPECT_EQ(used, 3u);
  EXPECT_FALSE(net.idle());
}

TEST(Network, TagMetricsBreakdown) {
  const Graph g = make_path(2);
  Network net(g, {8});
  net.send(0, 0, small_msg(5, 8));
  net.send(0, 0, small_msg(6, 16));
  net.run_until_idle([](const Delivery&) {});
  EXPECT_EQ(net.metrics().congest_messages_by_tag[5], 1u);
  EXPECT_EQ(net.metrics().congest_messages_by_tag[6], 2u);
}

TEST(Network, MetricsSinceDiffs) {
  const Graph g = make_path(2);
  Network net(g, {8});
  net.send(0, 0, small_msg());
  net.run_until_idle([](const Delivery&) {});
  const Metrics snap = net.metrics();
  net.send(0, 0, small_msg());
  net.send(0, 0, small_msg());
  net.run_until_idle([](const Delivery&) {});
  const Metrics delta = net.metrics().since(snap);
  EXPECT_EQ(delta.congest_messages, 2u);
  EXPECT_EQ(delta.logical_messages, 2u);
}

TEST(Network, StandardConfigScalesWithLogN) {
  EXPECT_GT(CongestConfig::standard(1u << 16).bandwidth_bits,
            CongestConfig::standard(1u << 4).bandwidth_bits);
  EXPECT_GT(CongestConfig::wide(1024).bandwidth_bits,
            CongestConfig::standard(1024).bandwidth_bits);
}

TEST(Network, RejectsZeroBandwidth) {
  const Graph g = make_path(2);
  EXPECT_THROW(Network(g, {0}), std::invalid_argument);
}

TEST(Network, RelayChainTakesOneRoundPerHop) {
  const Graph g = make_path(4);
  Network net(g, {32});
  net.send(0, 0, small_msg());
  std::uint64_t rounds = 0;
  bool done = false;
  while (!done && rounds < 10) {
    const auto& d = net.step();
    ++rounds;
    for (const Delivery& del : d) {
      if (del.dst == 3) {
        done = true;
      } else {
        // forward to the "other" port (port-numbering-only routing)
        const Port out = (g.degree(del.dst) == 1) ? 0 : 1 - del.port;
        net.send(del.dst, out, small_msg());
      }
    }
  }
  EXPECT_TRUE(done);
  EXPECT_EQ(rounds, 3u);
}

}  // namespace
}  // namespace wcle
