#include "wcle/sim/network.hpp"

#include <gtest/gtest.h>

#include "wcle/graph/generators.hpp"

namespace wcle {
namespace {

Message small_msg(std::uint8_t tag = 1, std::uint32_t bits = 8) {
  Message m;
  m.tag = tag;
  m.bits = bits;
  return m;
}

TEST(Network, SingleHopDelivery) {
  const Graph g = make_path(2);
  Network net(g, {32});
  Message m = small_msg(3, 16);
  m.a = 42;
  net.send(0, 0, m);
  EXPECT_FALSE(net.idle());
  const auto& d = net.step();
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].dst, 1u);
  EXPECT_EQ(d[0].msg.a, 42u);
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.metrics().rounds, 1u);
  EXPECT_EQ(net.metrics().congest_messages, 1u);
  EXPECT_EQ(net.metrics().logical_messages, 1u);
}

TEST(Network, ArrivalPortIsReceiversPort) {
  Rng rng(3);
  const Graph g = make_torus(4, 4, &rng);
  Network net(g, {64});
  // Send over every directed edge once; check arrival port mirrors.
  for (NodeId u = 0; u < g.node_count(); ++u)
    for (Port p = 0; p < g.degree(u); ++p) {
      Message m = small_msg();
      m.a = (static_cast<std::uint64_t>(u) << 32) | p;
      net.send(u, p, m);
    }
  const auto& d = net.step();
  ASSERT_EQ(d.size(), 2 * g.edge_count());
  for (const Delivery& del : d) {
    const NodeId from = static_cast<NodeId>(del.msg.a >> 32);
    const Port from_port = static_cast<Port>(del.msg.a & 0xffffffffu);
    EXPECT_EQ(g.neighbor(del.dst, del.port), from);
    EXPECT_EQ(g.mirror_port(from, from_port), del.port);
  }
}

TEST(Network, FragmentationDelaysLargeMessages) {
  const Graph g = make_path(2);
  Network net(g, {10});
  net.send(0, 0, small_msg(1, 35));  // ceil(35/10) = 4 quanta
  EXPECT_EQ(net.step().size(), 0u);
  EXPECT_EQ(net.step().size(), 0u);
  EXPECT_EQ(net.step().size(), 0u);
  EXPECT_EQ(net.step().size(), 1u);
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.metrics().congest_messages, 4u);
  EXPECT_EQ(net.metrics().total_bits, 35u);
}

TEST(Network, FifoOrderPerLane) {
  const Graph g = make_path(2);
  Network net(g, {8});
  for (std::uint64_t i = 0; i < 5; ++i) {
    Message m = small_msg(1, 8);
    m.a = i;
    net.send(0, 0, m);
  }
  std::vector<std::uint64_t> got;
  net.run_until_idle([&](const Delivery& d) { got.push_back(d.msg.a); });
  EXPECT_EQ(got, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(Network, OnePerRoundPerLaneCongestion) {
  const Graph g = make_path(2);
  Network net(g, {8});
  for (int i = 0; i < 5; ++i) net.send(0, 0, small_msg(1, 8));
  std::uint64_t deliveries = 0, rounds = 0;
  while (!net.idle()) {
    deliveries += net.step().size();
    ++rounds;
  }
  EXPECT_EQ(deliveries, 5u);
  EXPECT_EQ(rounds, 5u);  // exactly one B-bit quantum per round
  EXPECT_EQ(net.metrics().max_edge_backlog, 5u);
}

TEST(Network, OppositeDirectionsDontContend) {
  const Graph g = make_path(2);
  Network net(g, {8});
  net.send(0, 0, small_msg());
  net.send(1, 0, small_msg());
  EXPECT_EQ(net.step().size(), 2u);  // both delivered in the same round
}

TEST(Network, DistinctLanesServeInParallel) {
  const Graph g = make_clique(4);
  Network net(g, {8});
  for (Port p = 0; p < 3; ++p) net.send(0, p, small_msg());
  EXPECT_EQ(net.step().size(), 3u);
}

TEST(Network, RunUntilIdleRespectsMaxRounds) {
  const Graph g = make_path(2);
  Network net(g, {8});
  for (int i = 0; i < 10; ++i) net.send(0, 0, small_msg(1, 8));
  const std::uint64_t used =
      net.run_until_idle([](const Delivery&) {}, 3);
  EXPECT_EQ(used, 3u);
  EXPECT_FALSE(net.idle());
}

TEST(Network, TagMetricsBreakdown) {
  const Graph g = make_path(2);
  Network net(g, {8});
  net.send(0, 0, small_msg(5, 8));
  net.send(0, 0, small_msg(6, 16));
  net.run_until_idle([](const Delivery&) {});
  EXPECT_EQ(net.metrics().congest_messages_by_tag[5], 1u);
  EXPECT_EQ(net.metrics().congest_messages_by_tag[6], 2u);
}

TEST(Network, MetricsSinceDiffs) {
  const Graph g = make_path(2);
  Network net(g, {8});
  net.send(0, 0, small_msg());
  net.run_until_idle([](const Delivery&) {});
  const Metrics snap = net.metrics();
  net.send(0, 0, small_msg());
  net.send(0, 0, small_msg());
  net.run_until_idle([](const Delivery&) {});
  const Metrics delta = net.metrics().since(snap);
  EXPECT_EQ(delta.congest_messages, 2u);
  EXPECT_EQ(delta.logical_messages, 2u);
}

TEST(Network, StandardConfigScalesWithLogN) {
  EXPECT_GT(CongestConfig::standard(1u << 16).bandwidth_bits,
            CongestConfig::standard(1u << 4).bandwidth_bits);
  EXPECT_GT(CongestConfig::wide(1024).bandwidth_bits,
            CongestConfig::standard(1024).bandwidth_bits);
}

TEST(Network, RejectsZeroBandwidth) {
  const Graph g = make_path(2);
  EXPECT_THROW(Network(g, {0}), std::invalid_argument);
}

TEST(Network, RelayChainTakesOneRoundPerHop) {
  const Graph g = make_path(4);
  Network net(g, {32});
  net.send(0, 0, small_msg());
  std::uint64_t rounds = 0;
  bool done = false;
  while (!done && rounds < 10) {
    const auto& d = net.step();
    ++rounds;
    for (const Delivery& del : d) {
      if (del.dst == 3) {
        done = true;
      } else {
        // forward to the "other" port (port-numbering-only routing)
        const Port out = (g.degree(del.dst) == 1) ? 0 : 1 - del.port;
        net.send(del.dst, out, small_msg());
      }
    }
  }
  EXPECT_TRUE(done);
  EXPECT_EQ(rounds, 3u);
}

TEST(Network, PayloadIdsRoundTripThroughTheArena) {
  const Graph g = make_path(2);
  Network net(g, {256});
  std::vector<std::uint64_t> ids{7, 11, 13};
  Message m = small_msg(2, 64);
  m.ids = ids;            // view of the caller's buffer
  net.send(0, 0, m);
  ids.assign({99, 99, 99});  // send() copied — mutating the source is safe
  const auto& d = net.step();
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].msg.ids.to_vector(),
            (std::vector<std::uint64_t>{7, 11, 13}));
}

TEST(Network, NoAllocationPerDeliverySteadyState) {
  // The data-plane invariant: once a workload's footprint is warm, the
  // message pool, the id arena, and the delivery buffer stop growing — every
  // further delivery is served from recycled slots. The instrumented pool
  // counters make the property checkable instead of anecdotal.
  const Graph g = make_clique(6);
  Network net(g, {16});
  std::vector<std::uint64_t> payload{1, 2, 3, 4};
  const auto burst = [&] {
    for (NodeId u = 0; u < g.node_count(); ++u)
      for (Port p = 0; p < g.degree(u); ++p) {
        Message m = small_msg(1, 48);
        m.a = u;
        m.ids = payload;
        net.send(u, p, m);
      }
    net.run_until_idle([](const Delivery&) {});
  };
  burst();  // warmup: pools grow to the workload footprint
  const Network::PoolStats warm = net.pool_stats();
  EXPECT_GT(warm.id_alloc_calls, 0u);
  EXPECT_GT(warm.msg_slots, 0u);
  std::uint64_t deliveries = 0;
  for (int round_batch = 0; round_batch < 10; ++round_batch) {
    for (NodeId u = 0; u < g.node_count(); ++u)
      for (Port p = 0; p < g.degree(u); ++p) {
        Message m = small_msg(1, 48);
        m.ids = payload;
        net.send(u, p, m);
      }
    while (!net.idle()) deliveries += net.step().size();
  }
  const Network::PoolStats after = net.pool_stats();
  EXPECT_EQ(deliveries, 10u * 2u * g.edge_count());
  // Payload slots were handed out for every send...
  EXPECT_GT(after.id_alloc_calls, warm.id_alloc_calls);
  // ...yet no new heap block, message slot, or delivery capacity appeared.
  EXPECT_EQ(after.id_heap_blocks, warm.id_heap_blocks);
  EXPECT_EQ(after.msg_slots, warm.msg_slots);
  EXPECT_EQ(after.delivery_capacity, warm.delivery_capacity);
}

TEST(Network, OversizedPayloadsDontCollideWithBumpAllocations) {
  // An id list larger than the arena's 2^14-word chunk takes the dedicated
  // oversized path; it must stay out of bump space (a later small payload
  // must not overwrite it) and its footprint must be handed back once the
  // network drains.
  const Graph g = make_path(2);
  Network net(g, {1u << 20});
  std::vector<std::uint64_t> big(20000);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = 0xAAAA0000u + i;
  Message m1 = small_msg(1, 64);
  m1.ids = big;
  net.send(0, 0, m1);
  const std::vector<std::uint64_t> little{0xBBBB, 0xBBBB, 0xBBBB};
  Message m2 = small_msg(2, 64);
  m2.ids = little;
  net.send(0, 0, m2);
  std::vector<std::vector<std::uint64_t>> got;
  net.run_until_idle(
      [&](const Delivery& d) { got.push_back(d.msg.ids.to_vector()); });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], big);
  EXPECT_EQ(got[1], little);
  net.step();  // retire the last deliveries: the oversized chunk is returned
  const std::uint64_t drained_blocks = net.pool_stats().id_heap_blocks;
  Message m3 = small_msg(3, 64);
  m3.ids = little;
  net.send(0, 0, m3);
  net.run_until_idle([](const Delivery&) {});
  EXPECT_EQ(net.pool_stats().id_heap_blocks, drained_blocks);
}

TEST(Network, ArenaDrainsWithTheNetwork) {
  const Graph g = make_path(2);
  Network net(g, {64});
  std::vector<std::uint64_t> ids{5, 6};
  Message m = small_msg(1, 32);
  m.ids = ids;
  net.send(0, 0, m);
  net.run_until_idle([](const Delivery&) {});
  // The last delivery's payload is retired at the *next* step; after another
  // step the arena must be fully drained (live = 0) — the reset point that
  // keeps long runs at one warm footprint.
  net.step();
  EXPECT_EQ(net.pool_stats().id_live, 0u);
  EXPECT_EQ(net.pool_stats().msg_live, 0u);
}

}  // namespace
}  // namespace wcle
