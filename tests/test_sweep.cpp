// Tests for the sweep engine and sinks: grid expansion order, graph reuse
// and snapping, reliable_on filtering, the seeded message-drop fault axis,
// and the acceptance property of the whole subsystem — the streamed JSONL is
// byte-identical for repeated runs of the same spec at ANY worker-thread
// count.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <streambuf>
#include <string>

#include "wcle/api/scenario.hpp"
#include "wcle/api/sink.hpp"
#include "wcle/api/sweep.hpp"

namespace wcle {
namespace {

std::string jsonl_of(const ExperimentSpec& spec, unsigned threads) {
  std::ostringstream out;
  JsonlSink sink(out);
  run_sweep(spec, {&sink}, threads);
  return out.str();
}

TEST(Sweep, ExpansionOrderIsFamilyOuterThenSizeThenAlgorithm) {
  const ExperimentSpec spec =
      parse_spec("algo=flood_max,flood_broadcast family=clique,ring n=16,32 "
                 "trials=1");
  const std::vector<SweepCell> cells = expand_cells(spec);
  ASSERT_EQ(cells.size(), 8u);
  EXPECT_EQ(cells[0].family, "clique");
  EXPECT_EQ(cells[0].requested_n, 16u);
  EXPECT_EQ(cells[0].algorithm, "flood_max");
  EXPECT_EQ(cells[1].algorithm, "flood_broadcast");
  EXPECT_EQ(cells[2].requested_n, 32u);
  EXPECT_EQ(cells[4].family, "ring");
  for (std::size_t i = 0; i < cells.size(); ++i)
    EXPECT_EQ(cells[i].index, i);
}

TEST(Sweep, KnobGridsExpandAndResolve) {
  const ExperimentSpec spec = parse_spec(
      "algo=flood_max family=clique n=16 trials=1 c1=2,8 wide=false,true");
  const std::vector<SweepCell> cells = expand_cells(spec);
  ASSERT_EQ(cells.size(), 4u);
  // Alphabetical knob order: c1 outer, wide inner.
  EXPECT_EQ(cells[0].options.params.c1, 2.0);
  EXPECT_FALSE(cells[0].options.params.wide_messages);
  EXPECT_TRUE(cells[1].options.params.wide_messages);
  EXPECT_EQ(cells[2].options.params.c1, 8.0);
}

TEST(Sweep, GraphsSnapAndCarryShape) {
  const ExperimentSpec spec =
      parse_spec("algo=flood_max family=torus n=10 trials=1");
  const std::vector<CellResult> results = run_sweep(spec);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].cell.requested_n, 10u);
  EXPECT_EQ(results[0].n, 9u);   // snapped to 3x3
  EXPECT_EQ(results[0].m, 18u);  // torus edges = 2n
  EXPECT_EQ(results[0].stats.trials, 1);
}

TEST(Sweep, SkipUnreliableFiltersUnfairCells) {
  const ExperimentSpec spec = parse_spec(
      "algo=clique_referee,flood_max family=ring,clique n=16 trials=1 "
      "reliable=1");
  const std::vector<CellResult> results = run_sweep(spec);
  // clique_referee survives on the clique only; flood_max everywhere.
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].cell.family, "ring");
  EXPECT_EQ(results[0].cell.algorithm, "flood_max");
  // Post-filter indices stay dense so sinks and JSONL stay gap-free.
  for (std::size_t i = 0; i < results.size(); ++i)
    EXPECT_EQ(results[i].cell.index, i);
}

TEST(Sweep, DropAxisLosesMessagesDeterministically) {
  const ExperimentSpec spec = parse_spec(
      "algo=flood_broadcast family=clique n=16 trials=2 drop=0,0.5");
  const std::vector<CellResult> results = run_sweep(spec);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].stats.dropped_messages.max, 0.0);
  EXPECT_GT(results[1].stats.dropped_messages.mean, 0.0);
  // Lossy links still pay bandwidth: congest messages stay comparable.
  EXPECT_GT(results[1].stats.congest_messages.mean, 0.0);
  // And the faulty cell is exactly reproducible.
  const std::vector<CellResult> again = run_sweep(spec);
  EXPECT_EQ(to_json(results[1]), to_json(again[1]));
}

TEST(Sweep, ElectionSurvivesMildFaultsAndTerminatesUnderHeavyOnes) {
  // The fault axis must never hang the election: walks are phase-driven and
  // the guess-and-double cap bounds the run even when every convergecast is
  // starved. Success under heavy loss is not expected — termination is.
  const ExperimentSpec spec = parse_spec(
      "algo=election family=clique n=16 trials=1 drop=0.3 max-phases=6");
  const std::vector<CellResult> results = run_sweep(spec);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].stats.congest_messages.mean, 0.0);
}

TEST(Sweep, JsonlIsIdenticalForAnyThreadCountAndRepeatedRuns) {
  const ExperimentSpec spec = parse_spec(
      "algo=flood_max,push_pull family=clique,hypercube n=16,32 trials=3 "
      "drop=0,0.25");
  const std::string t1 = jsonl_of(spec, 1);
  const std::string t4 = jsonl_of(spec, 4);
  const std::string t4_again = jsonl_of(spec, 4);
  const std::string hw = jsonl_of(spec, 0);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t4);
  EXPECT_EQ(t4, t4_again);
  EXPECT_EQ(t1, hw);
  // One line per cell, stats always single-threaded inside a cell.
  std::istringstream lines(t1);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_NE(line.find("\"threads\":1"), std::string::npos);
    ++count;
  }
  EXPECT_EQ(count, spec.cell_count());
}

TEST(Sweep, TableAndCsvSinksRenderEveryCell) {
  const ExperimentSpec spec = parse_spec(
      "algo=flood_max family=clique,ring n=16 trials=2 drop=0,0.5 "
      "extras=informed name=demo title=DemoTitle");
  std::ostringstream table_out, csv_out;
  TableSink table(table_out);
  CsvSink csv(csv_out);
  run_sweep(spec, {&table, &csv});

  const std::string text = table_out.str();
  EXPECT_NE(text.find("DemoTitle"), std::string::npos);
  EXPECT_NE(text.find("family"), std::string::npos);  // >1 family => column
  EXPECT_NE(text.find("drop"), std::string::npos);    // >1 drop => column
  EXPECT_NE(text.find("reproduce: wcle_cli sweep"), std::string::npos);

  std::istringstream lines(csv_out.str());
  std::string header;
  std::getline(lines, header);
  EXPECT_NE(header.find("n,m"), std::string::npos);
  EXPECT_NE(header.find("dropped(mean)"), std::string::npos);
  std::size_t rows = 0;
  for (std::string line; std::getline(lines, line);) ++rows;
  EXPECT_EQ(rows, spec.cell_count());
}

TEST(Sweep, CsvCellsWithSeparatorsAreQuoted) {
  // Golden: extras keys and family/adversary names are free-form strings;
  // cells containing commas, quotes, or newlines must arrive RFC 4180
  // quoted instead of shearing the row apart.
  Table t({"name", "value,with,commas", "plain"});
  t.add_row({"say \"hi\"", "line\nbreak", "clean"});
  t.add_row({"a,b", "x", "y"});
  std::ostringstream out;
  t.write_csv(out);
  EXPECT_EQ(out.str(),
            "name,\"value,with,commas\",plain\n"
            "\"say \"\"hi\"\"\",\"line\nbreak\",clean\n"
            "\"a,b\",x,y\n");
  // The escape helper itself: clean cells pass through untouched.
  EXPECT_EQ(Table::csv_escape("plain"), "plain");
  EXPECT_EQ(Table::csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(Table::csv_escape("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(Table::csv_escape("cr\rlf"), "\"cr\rlf\"");
}

TEST(Sweep, FaultAxesExpandAndResolve) {
  const ExperimentSpec spec = parse_spec(
      "algo=flood_max family=clique n=16 trials=1 crash=0,0.25 linkfail=0.1 "
      "adversary=random,degree crash-round=2");
  const std::vector<SweepCell> cells = expand_cells(spec);
  ASSERT_EQ(cells.size(), 4u);
  // Axis order: ... drop, crash, linkfail, adversary.
  EXPECT_EQ(cells[0].crash, 0.0);
  EXPECT_EQ(cells[0].adversary, "random");
  EXPECT_EQ(cells[1].adversary, "degree");
  EXPECT_EQ(cells[2].crash, 0.25);
  for (const SweepCell& cell : cells) {
    EXPECT_EQ(cell.linkfail, 0.1);
    EXPECT_EQ(cell.options.params.faults.crash_fraction, cell.crash);
    EXPECT_EQ(cell.options.params.faults.linkfail_fraction, 0.1);
    EXPECT_EQ(cell.options.params.faults.adversary, cell.adversary);
    EXPECT_EQ(cell.options.params.faults.crash_round, 2u);
  }
  // The reproduction line round-trips the fault axes.
  const ExperimentSpec again = parse_spec(spec.to_string());
  EXPECT_EQ(again.crashes, spec.crashes);
  EXPECT_EQ(again.linkfails, spec.linkfails);
  EXPECT_EQ(again.adversaries, spec.adversaries);
  EXPECT_EQ(again.cell_count(), spec.cell_count());
  EXPECT_THROW(parse_spec("crash=1.5"), std::invalid_argument);
  EXPECT_THROW(parse_spec("adversary=byzantine"), std::invalid_argument);
}

TEST(Sweep, FaultyJsonlIsIdenticalForAnyThreadCountAndRerun) {
  // The acceptance property under faults: nonzero crash/linkfail/drop axes
  // with every adversary strategy, byte-identical JSONL across worker
  // counts and across process-internal reruns.
  const ExperimentSpec spec = parse_spec(
      "algo=flood_max,candidate_flood family=expander n=32 trials=3 "
      "drop=0,0.1 crash=0,0.25 linkfail=0.1 "
      "adversary=random,degree,contenders");
  const std::string t1 = jsonl_of(spec, 1);
  const std::string t4 = jsonl_of(spec, 4);
  const std::string again = jsonl_of(spec, 4);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t4);
  EXPECT_EQ(t4, again);
  // Verdict fields flow into every line, and faulty cells record losses.
  EXPECT_NE(t1.find("\"safety_rate\":"), std::string::npos);
  EXPECT_NE(t1.find("\"crash\":0.25"), std::string::npos);
  EXPECT_NE(t1.find("\"adversary\":\"contenders\""), std::string::npos);
  std::size_t lines = 0;
  std::istringstream in(t1);
  for (std::string line; std::getline(in, line);) ++lines;
  EXPECT_EQ(lines, spec.cell_count());
}

TEST(Sweep, E14ReportsVerdictRatesInEverySink) {
  ExperimentSpec spec = builtin_experiment("e14", 0);
  // Shrink to a fast deterministic slice: the full scale-0 grid runs in CI.
  spec.algorithms = {"election", "flood_max"};
  spec.sizes = {16};
  spec.trials = 2;
  std::ostringstream table_out, csv_out, jsonl_out;
  TableSink table(table_out);
  CsvSink csv(csv_out);
  JsonlSink jsonl(jsonl_out);
  run_sweep(spec, {&table, &csv, &jsonl});
  const std::string text = table_out.str();
  EXPECT_NE(text.find("crash"), std::string::npos);
  EXPECT_NE(text.find("safety"), std::string::npos);
  EXPECT_NE(text.find("liveness"), std::string::npos);
  EXPECT_NE(text.find("agree(mean)"), std::string::npos);
  const std::string csv_text = csv_out.str();
  EXPECT_NE(csv_text.find("safety"), std::string::npos);
  EXPECT_NE(csv_text.find("liveness"), std::string::npos);
  const std::string jsonl_text = jsonl_out.str();
  EXPECT_NE(jsonl_text.find("\"safety_rate\":"), std::string::npos);
  EXPECT_NE(jsonl_text.find("\"liveness_rate\":"), std::string::npos);
  EXPECT_NE(jsonl_text.find("\"agreement\":"), std::string::npos);
}

TEST(Sweep, CustomBandwidthAxisChangesTheBill) {
  const ExperimentSpec spec = parse_spec(
      "algo=flood_max family=clique n=16 trials=2 bandwidth=8,1024");
  const std::vector<CellResult> results = run_sweep(spec);
  ASSERT_EQ(results.size(), 2u);
  // 8-bit links need many more B-bit quanta than 1024-bit links.
  EXPECT_GT(results[0].stats.congest_messages.mean,
            results[1].stats.congest_messages.mean);
}

TEST(Sweep, SweepCellsMatchesRunSweepCellList) {
  // sweep_cells is the cell list the serve job queue schedules from; it must
  // agree with what run_sweep executes — including the reliable_on filter
  // and its re-indexing — or served bytes drift from CLI bytes.
  const ExperimentSpec spec = parse_spec(
      "algo=clique_referee,flood_max family=ring,clique n=16 trials=1 "
      "reliable=1");
  const std::vector<SweepCell> cells = sweep_cells(spec);
  const std::vector<CellResult> results = run_sweep(spec);
  ASSERT_EQ(cells.size(), results.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, results[i].cell.index);
    EXPECT_EQ(cells[i].algorithm, results[i].cell.algorithm);
    EXPECT_EQ(cells[i].family, results[i].cell.family);
    EXPECT_EQ(cells[i].requested_n, results[i].cell.requested_n);
  }
}

TEST(Sweep, RunSweepCellReproducesRunSweepBytes) {
  // One cell at a time through run_sweep_cell must serialize to exactly the
  // whole-sweep lines: this is the determinism contract the serve daemon's
  // cache and streaming rest on.
  const ExperimentSpec spec = parse_spec(
      "algo=flood_max,push_pull family=clique,hypercube n=16,32 trials=2 "
      "drop=0,0.25");
  const std::string whole = jsonl_of(spec, 4);
  std::string cellwise;
  for (const SweepCell& cell : sweep_cells(spec)) {
    cellwise += to_json(run_sweep_cell(spec, cell));
    cellwise += "\n";
  }
  EXPECT_EQ(whole, cellwise);
}

// A streambuf that holds written bytes invisible until sync(): what a
// downstream pipe/file reader would see only materializes on flush. (An
// ostringstream cannot observe this — it has no buffer distinct from its
// visible string.)
class FlushVisibleBuf final : public std::streambuf {
 public:
  const std::string& visible() const { return visible_; }

 protected:
  int_type overflow(int_type ch) override {
    if (ch != traits_type::eof()) pending_.push_back(traits_type::to_char_type(ch));
    return ch;
  }
  int sync() override {
    visible_ += pending_;
    pending_.clear();
    return 0;
  }

 private:
  std::string pending_;
  std::string visible_;
};

TEST(Sweep, JsonlSinkFlushesEveryLineAsItCompletes) {
  // The per-line flush contract (sink.hpp): after each cell() call the full
  // line — terminator included — is already flushed through the stream, so
  // a live consumer (the serve daemon's result streams, tail -f) sees whole
  // lines the moment their cell completes, without waiting for sweep end.
  class FlushObserver final : public Sink {
   public:
    FlushObserver(JsonlSink& inner, const FlushVisibleBuf& buf)
        : inner_(&inner), buf_(&buf) {}
    void cell(const CellResult& result) override {
      inner_->cell(result);
      const std::string& visible = buf_->visible();
      ++cells_seen_;
      std::size_t lines = 0;
      for (const char ch : visible)
        if (ch == '\n') ++lines;
      EXPECT_EQ(lines, cells_seen_);
      ASSERT_FALSE(visible.empty());
      EXPECT_EQ(visible.back(), '\n');  // never a torn line
      EXPECT_NE(visible.rfind("\"cell\":" + std::to_string(result.cell.index)),
                std::string::npos);
    }

   private:
    JsonlSink* inner_;
    const FlushVisibleBuf* buf_;
    std::size_t cells_seen_ = 0;
  };

  const ExperimentSpec spec =
      parse_spec("algo=flood_max family=clique n=16,32 trials=1 drop=0,0.5");
  FlushVisibleBuf buf;
  std::ostream out(&buf);
  JsonlSink sink(out);
  FlushObserver observer(sink, buf);
  const std::vector<CellResult> results =
      run_sweep(spec, {&observer}, /*threads=*/2);
  EXPECT_EQ(results.size(), 4u);
  EXPECT_EQ(std::count(buf.visible().begin(), buf.visible().end(), '\n'), 4);
}

}  // namespace
}  // namespace wcle
