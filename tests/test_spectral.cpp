#include "wcle/graph/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "wcle/graph/generators.hpp"

namespace wcle {
namespace {

TEST(Spectral, LazyWalkStepConservesMass) {
  const Graph g = make_torus(4, 4);
  std::vector<double> pi(g.node_count(), 0.0), next;
  pi[3] = 1.0;
  for (int t = 0; t < 10; ++t) {
    lazy_walk_step(g, pi, next);
    pi.swap(next);
    const double mass = std::accumulate(pi.begin(), pi.end(), 0.0);
    EXPECT_NEAR(mass, 1.0, 1e-12);
  }
}

TEST(Spectral, StationaryIsFixedPoint) {
  Rng rng(7);
  const Graph g = make_connected_gnp(30, 0.2, rng);
  const std::vector<double> pi = stationary_distribution(g);
  std::vector<double> next;
  lazy_walk_step(g, pi, next);
  for (NodeId v = 0; v < g.node_count(); ++v)
    EXPECT_NEAR(next[v], pi[v], 1e-12);
}

TEST(Spectral, StationarySumsToOne) {
  const Graph g = make_barbell(6);
  const std::vector<double> pi = stationary_distribution(g);
  EXPECT_NEAR(std::accumulate(pi.begin(), pi.end(), 0.0), 1.0, 1e-12);
}

TEST(Spectral, MixingTimeCliqueIsTiny) {
  const Graph g = make_clique(64);
  EXPECT_LE(mixing_time_exact(g, 1000), 8u);
}

TEST(Spectral, MixingTimeOrdering) {
  // Conductance ordering ring < torus < hypercube < clique must be reflected
  // in mixing times (equation (1) of the paper).
  const std::uint64_t ring = mixing_time_exact(make_ring(64), 1u << 20);
  const std::uint64_t torus = mixing_time_exact(make_torus(8, 8), 1u << 20);
  const std::uint64_t cube = mixing_time_exact(make_hypercube(6), 1u << 20);
  const std::uint64_t clique = mixing_time_exact(make_clique(64), 1u << 20);
  EXPECT_GT(ring, torus);
  EXPECT_GT(torus, cube);
  EXPECT_GE(cube, clique);
}

TEST(Spectral, MixingTimeRingScalesQuadratically) {
  const std::uint64_t t1 = mixing_time_exact(make_ring(16), 1u << 20);
  const std::uint64_t t2 = mixing_time_exact(make_ring(32), 1u << 20);
  const double ratio = static_cast<double>(t2) / static_cast<double>(t1);
  EXPECT_GT(ratio, 2.8);  // ~4x for doubling n
  EXPECT_LT(ratio, 6.0);
}

TEST(Spectral, MixingTimeEstimateLowerBoundsExact) {
  Rng rng(11);
  const Graph g = make_torus(6, 6);
  const std::uint64_t exact = mixing_time_exact(g, 1u << 20);
  Rng sample_rng(13);
  const std::uint64_t est = mixing_time_estimate(g, 4, sample_rng, 1u << 20);
  EXPECT_LE(est, exact);
  // Vertex-transitive graph: every start is worst-case, so it's tight.
  EXPECT_EQ(est, exact);
}

TEST(Spectral, MixingTimeFromReturnsSentinelWhenCapped) {
  const Graph g = make_ring(128);
  const std::uint64_t capped = mixing_time_from(g, 0, 1e-9, 5);
  EXPECT_EQ(capped, 6u);  // max_t + 1
}

TEST(Spectral, SpectralGapCliqueLarge) {
  EXPECT_GT(spectral_gap(make_clique(32)), 0.4);
}

TEST(Spectral, SpectralGapRingSmall) {
  EXPECT_LT(spectral_gap(make_ring(64)), 0.01);
}

TEST(Spectral, CheegerBoundsSandwichTrueConductance) {
  // Exact conductance via enumeration on small graphs must lie within the
  // Cheeger bounds derived from the lazy spectral gap.
  for (const Graph& g :
       {make_ring(12), make_clique(10), make_barbell(6), make_torus(3, 4)}) {
    const double phi = conductance_exact(g);
    const CheegerBounds cb = cheeger_bounds(spectral_gap(g, 4000));
    EXPECT_LE(cb.lower, phi * 1.0001) << g.describe();
    EXPECT_GE(cb.upper, phi * 0.9999) << g.describe();
  }
}

TEST(Spectral, ConductanceExactKnownValues) {
  // Ring of n: best cut halves it: 2 cut edges / volume n.
  const double phi_ring = conductance_exact(make_ring(12));
  EXPECT_NEAR(phi_ring, 2.0 / 12.0, 1e-9);
  // Barbell of k=6: 1 bridge edge / min-side volume (6*5+1).
  const double phi_barbell = conductance_exact(make_barbell(6));
  EXPECT_NEAR(phi_barbell, 1.0 / 31.0, 1e-9);
}

TEST(Spectral, ConductanceExactRejectsLarge) {
  EXPECT_THROW(conductance_exact(make_ring(30)), std::invalid_argument);
}

TEST(Spectral, SweepUpperBoundsExact) {
  for (const Graph& g :
       {make_ring(16), make_barbell(6), make_torus(4, 4), make_clique(12)}) {
    const double exact = conductance_exact(g);
    const double sweep = conductance_sweep(g);
    EXPECT_GE(sweep, exact * 0.9999) << g.describe();
  }
}

TEST(Spectral, SweepFindsBarbellBottleneck) {
  // The sweep cut should find the barbell's bridge exactly.
  const Graph g = make_barbell(8);
  EXPECT_NEAR(conductance_sweep(g), conductance_exact(g), 1e-9);
}

TEST(Spectral, CutConductanceTrivialCutIsInfinite) {
  const Graph g = make_ring(6);
  std::vector<char> none(6, 0);
  EXPECT_TRUE(std::isinf(cut_conductance(g, none)));
}

TEST(Spectral, CutConductanceHandComputed) {
  // Path 0-1-2-3; S={0,1}: cut=1, vol(S)=1+2=3, vol(V\S)=3 -> phi=1/3.
  const Graph g = make_path(4);
  std::vector<char> s{1, 1, 0, 0};
  EXPECT_NEAR(cut_conductance(g, s), 1.0 / 3.0, 1e-12);
}

TEST(Spectral, EquationOneRelation) {
  // Theta(1/phi) <= tmix <= Theta(1/phi^2), checked with generous constants.
  for (const Graph& g : {make_ring(32), make_torus(6, 6), make_clique(24)}) {
    const double phi = g.node_count() <= 24 ? conductance_exact(g)
                                            : conductance_sweep(g);
    const double tmix =
        static_cast<double>(mixing_time_exact(g, 1u << 22));
    EXPECT_GE(tmix, 0.05 / phi) << g.describe();
    const double logn = std::log2(static_cast<double>(g.node_count()));
    EXPECT_LE(tmix, 40.0 * logn / (phi * phi)) << g.describe();
  }
}

}  // namespace
}  // namespace wcle
