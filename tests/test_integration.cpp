// Cross-module integration tests: the full pipeline (generator -> spectral
// characterization -> election -> broadcast) and the paper-level claims that
// only emerge from modules composed together.
#include <gtest/gtest.h>

#include <cmath>

#include "wcle/analysis/experiment.hpp"
#include "wcle/baselines/candidate_flood.hpp"
#include "wcle/baselines/known_tmix.hpp"
#include "wcle/core/explicit_election.hpp"
#include "wcle/core/leader_election.hpp"
#include "wcle/graph/dumbbell.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/graph/lower_bound_graph.hpp"
#include "wcle/graph/spectral.hpp"

namespace wcle {
namespace {

TEST(Integration, TrialHarnessAggregates) {
  const Graph g = make_clique(64);
  ElectionParams p;
  const ElectionTrialStats stats = run_election_trials(g, p, 10);
  EXPECT_EQ(stats.trials, 10);
  EXPECT_GE(stats.success_rate, 0.8);
  EXPECT_NEAR(stats.success_rate + stats.zero_leader_rate +
                  stats.multi_leader_rate,
              1.0, 1e-12);
  EXPECT_GT(stats.congest_messages.mean, 0.0);
  EXPECT_GT(stats.contenders.mean, 5.0);
}

TEST(Integration, ProfileGraphMatchesKnownFamilies) {
  const GraphProfile clique = profile_graph(make_clique(64));
  const GraphProfile ring = profile_graph(make_ring(64));
  EXPECT_LT(clique.tmix, 8u);
  EXPECT_GT(ring.tmix, 200u);
  EXPECT_GT(clique.sweep_conductance, 0.3);
  EXPECT_LT(ring.sweep_conductance, 0.05);
  // Cheeger sandwich: lower <= sweep (upper bound proxy for phi).
  EXPECT_LE(clique.cheeger_lower, clique.sweep_conductance * 1.001);
  EXPECT_LE(ring.cheeger_lower, ring.sweep_conductance * 1.001);
}

TEST(Integration, BeatsFloodingOnDenseWellConnectedGraphs) {
  // Theorem 13 vs the Omega(m) regime of [24]: the paper's win is on dense
  // well-connected graphs, where m = Theta(n^2) dwarfs sqrt(n) polylog.
  // (On sparse expanders m = Theta(n) and flooding stays competitive at any
  // simulable n — the crossover there is astronomically far out.)
  const Graph g = make_clique(1024);
  ElectionParams p;
  p.seed = 5;
  const ElectionResult ours = run_leader_election(g, p);
  const CandidateFloodResult flood = run_candidate_flood(g, 5);
  ASSERT_TRUE(ours.success());
  ASSERT_TRUE(flood.success());
  EXPECT_LT(ours.totals.congest_messages, flood.totals.congest_messages);
  // And the gap must widen with n: compare against half the size.
  const Graph g2 = make_clique(512);
  const ElectionResult ours2 = run_leader_election(g2, p);
  const CandidateFloodResult flood2 = run_candidate_flood(g2, 5);
  ASSERT_TRUE(ours2.success());
  ASSERT_TRUE(flood2.success());
  const double gap_small = double(flood2.totals.congest_messages) /
                           double(ours2.totals.congest_messages);
  const double gap_large = double(flood.totals.congest_messages) /
                           double(ours.totals.congest_messages);
  EXPECT_GT(gap_large, gap_small);
}

TEST(Integration, GuessAndDoubleTracksMixingTime) {
  // Lemma 6 across families: stopping length correlates with measured tmix.
  const Graph fast = make_clique(128);
  const Graph slow = make_torus(12, 12);
  const std::uint64_t tmix_fast = mixing_time_exact(fast, 1u << 18);
  const std::uint64_t tmix_slow = mixing_time_exact(slow, 1u << 18);
  ASSERT_LT(tmix_fast, tmix_slow);
  ElectionParams p;
  p.seed = 11;
  const ElectionResult rf = run_leader_election(fast, p);
  const ElectionResult rs = run_leader_election(slow, p);
  ASSERT_TRUE(rf.success());
  ASSERT_TRUE(rs.success());
  EXPECT_LT(rf.final_length, rs.final_length);
}

TEST(Integration, KnownTmixUsesFewerRoundsThanGuessAndDouble) {
  // E12's claim: knowing tmix removes the doubling phases.
  const Graph g = make_hypercube(7);
  const std::uint32_t tmix =
      static_cast<std::uint32_t>(mixing_time_exact(g, 1u << 16));
  ElectionParams p;
  p.seed = 13;
  const ElectionResult ours = run_leader_election(g, p);
  const KnownTmixResult known = run_known_tmix_election(g, 2 * tmix, p);
  ASSERT_TRUE(ours.success());
  ASSERT_TRUE(known.success());
  EXPECT_LT(known.rounds, ours.totals.rounds);
  EXPECT_LT(known.totals.congest_messages, ours.totals.congest_messages);
}

TEST(Integration, ElectionWorksOnLowerBoundGraph) {
  // The algorithm must still elect on the adversarial G(alpha) — just at a
  // cost tracking its tiny conductance.
  Rng grng(31);
  const LowerBoundGraph lb = make_lower_bound_graph(600, 0.006, grng);
  ElectionParams p;
  p.seed = 3;
  const ElectionResult r = run_leader_election(lb.graph, p);
  EXPECT_LE(r.leaders.size(), 1u);
  EXPECT_TRUE(r.success());
}

TEST(Integration, ElectionOnDumbbellWithCorrectN) {
  // With n known (the full dumbbell size), election stays correct even on
  // the Theorem 28 construction.
  const Graph base = make_torus(6, 6);
  Rng drng(7);
  const DumbbellGraph d = make_random_dumbbell(base, drng);
  ElectionParams p;
  p.seed = 9;
  const ElectionResult r = run_leader_election(d.graph, p);
  EXPECT_TRUE(r.success());
}

TEST(Integration, UnknownNSplitBrainOnDumbbell) {
  // Theorem 28's engine: run the election independently on each half (what
  // an algorithm parameterized with n0 = |G0| would do before any bridge
  // crossing, by indistinguishability) — both halves elect, giving two
  // leaders on the dumbbell.
  const Graph base = make_torus(6, 6);
  ElectionParams p;
  p.seed = 17;
  const ElectionResult left = run_leader_election(base, p);
  p.seed = 18;
  const ElectionResult right = run_leader_election(base, p);
  ASSERT_TRUE(left.success());
  ASSERT_TRUE(right.success());
  // Two independent leaders: the dumbbell would end with 2 leaders unless
  // Omega(m) messages are spent discovering the bridges.
  EXPECT_EQ(left.leaders.size() + right.leaders.size(), 2u);
}

TEST(Integration, EnvelopesAreMonotone) {
  EXPECT_LT(theorem13_message_envelope(1 << 10, 10),
            theorem13_message_envelope(1 << 12, 10));
  EXPECT_LT(theorem13_time_envelope(1 << 10, 10),
            theorem13_time_envelope(1 << 10, 20));
  EXPECT_GT(theorem15_message_envelope(1 << 10, 0.001),
            theorem15_message_envelope(1 << 10, 0.01));
}

TEST(Integration, ExplicitElectionCostSplitMatchesCorollary14) {
  // Election messages ~ sqrt(n) polylog; broadcast ~ n log n / phi. On a
  // clique (phi ~ 1) both are modest but broadcast grows linearly in n while
  // the election grows ~sqrt(n): the ratio must move toward broadcast.
  ElectionParams p;
  p.seed = 23;
  const ExplicitElectionResult small =
      run_explicit_election(make_clique(64), p);
  const ExplicitElectionResult large =
      run_explicit_election(make_clique(512), p);
  ASSERT_TRUE(small.success);
  ASSERT_TRUE(large.success);
  const double ratio_small =
      static_cast<double>(small.broadcast.totals.logical_messages) /
      static_cast<double>(small.election.totals.logical_messages);
  const double ratio_large =
      static_cast<double>(large.broadcast.totals.logical_messages) /
      static_cast<double>(large.election.totals.logical_messages);
  EXPECT_GT(ratio_large, ratio_small);
}

}  // namespace
}  // namespace wcle
