#include "wcle/graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "wcle/graph/generators.hpp"

namespace wcle {
namespace {

TEST(Graph, TriangleBasics) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.volume(), 6u);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, RejectsSelfLoop) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 0}}), std::invalid_argument);
}

TEST(Graph, RejectsDuplicateEdge) {
  EXPECT_THROW(Graph::from_edges(3, {{0, 1}, {1, 0}}), std::invalid_argument);
  EXPECT_THROW(Graph::from_edges(3, {{0, 1}, {0, 1}}), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRange) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 2}}), std::invalid_argument);
}

TEST(Graph, MirrorPortsAreInvolutive) {
  Rng rng(5);
  const Graph g = make_torus(5, 7, &rng);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (Port p = 0; p < g.degree(u); ++p) {
      const NodeId v = g.neighbor(u, p);
      const Port q = g.mirror_port(u, p);
      EXPECT_EQ(g.neighbor(v, q), u);
      EXPECT_EQ(g.mirror_port(v, q), p);
    }
  }
}

TEST(Graph, PortShuffleKeepsNeighborSet) {
  const std::vector<Edge> edges{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}};
  const Graph plain = Graph::from_edges(4, edges);
  Rng rng(9);
  const Graph shuffled = Graph::from_edges(4, edges, &rng);
  for (NodeId u = 0; u < 4; ++u) {
    std::multiset<NodeId> a, b;
    for (NodeId v : plain.neighbors(u)) a.insert(v);
    for (NodeId v : shuffled.neighbors(u)) b.insert(v);
    EXPECT_EQ(a, b);
  }
}

TEST(Graph, PortShuffleIsAsymmetric) {
  // On a large clique, shuffled port numbering should make at least one edge
  // have different port numbers at its two endpoints.
  Rng rng(11);
  const Graph g = make_clique(20, &rng);
  bool asymmetric = false;
  for (NodeId u = 0; u < g.node_count() && !asymmetric; ++u)
    for (Port p = 0; p < g.degree(u); ++p)
      if (g.mirror_port(u, p) != p) {
        asymmetric = true;
        break;
      }
  EXPECT_TRUE(asymmetric);
}

TEST(Graph, DisconnectedDetected) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(g.is_connected());
}

TEST(Graph, EdgesRoundTrip) {
  const std::vector<Edge> in{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
  const Graph g = Graph::from_edges(4, in);
  std::vector<Edge> out = g.edges();
  EXPECT_EQ(out.size(), in.size());
  const auto norm = [](Edge e) {
    return std::pair<NodeId, NodeId>{std::min(e.a, e.b), std::max(e.a, e.b)};
  };
  std::set<std::pair<NodeId, NodeId>> sin, sout;
  for (const Edge& e : in) sin.insert(norm(e));
  for (const Edge& e : out) sout.insert(norm(e));
  EXPECT_EQ(sin, sout);
}

TEST(Graph, TwoConnectedness) {
  EXPECT_TRUE(make_ring(8).is_two_connected());
  EXPECT_TRUE(make_clique(5).is_two_connected());
  EXPECT_TRUE(make_torus(4, 4).is_two_connected());
  // A path has articulation points.
  EXPECT_FALSE(make_path(5).is_two_connected());
  // A barbell's bridge endpoints are articulation points.
  EXPECT_FALSE(make_barbell(4).is_two_connected());
  // Star graph: center is an articulation point.
  const Graph star = Graph::from_edges(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_FALSE(star.is_two_connected());
}

TEST(Graph, DegreeExtremes) {
  const Graph star = Graph::from_edges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_EQ(star.max_degree(), 4u);
  EXPECT_EQ(star.min_degree(), 1u);
}

TEST(Graph, DescribeMentionsCounts) {
  const Graph g = make_ring(10);
  const std::string d = g.describe();
  EXPECT_NE(d.find("n=10"), std::string::npos);
  EXPECT_NE(d.find("m=10"), std::string::npos);
}

}  // namespace
}  // namespace wcle
