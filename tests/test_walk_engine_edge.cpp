// Walk-engine edge cases beyond the happy path: stale trails, partial-origin
// convergecasts, degree-1 topologies, repeated stages, and the exactness of
// the distinctness bookkeeping the algorithm's properties rest on.
#include <gtest/gtest.h>

#include <set>

#include "wcle/graph/generators.hpp"
#include "wcle/rw/walk_engine.hpp"
#include "wcle/sim/network.hpp"

namespace wcle {
namespace {

struct Harness {
  Graph g;
  Network net;
  Rng rng;
  WalkEngine engine;

  explicit Harness(Graph graph, std::uint64_t seed = 5)
      : g(std::move(graph)),
        net(g, CongestConfig::standard(g.node_count())),
        rng(seed),
        engine(g, net, rng) {}

  std::vector<WalkEvent> pump(std::vector<WalkEvent> initial = {}) {
    std::vector<WalkEvent> all = std::move(initial);
    net.run_until_idle([&](const Delivery& d) {
      for (WalkEvent& ev : engine.handle(d)) all.push_back(std::move(ev));
    });
    return all;
  }
};

TEST(WalkEngineEdge, WalksOnStarTraverseTheHub) {
  // Leaves have degree 1: every move goes through the hub; conservation and
  // trail routing must survive the extreme irregularity.
  Harness h(make_star(12));
  h.engine.run_walk_stage({{3, 50, 5}});
  std::uint64_t total = 0;
  for (const NodeId p : h.engine.proxy_nodes(3))
    total += h.engine.registrations(p).at(3);
  EXPECT_EQ(total, 50u);
  const ProxyPayloadFn payload = [](NodeId, NodeId, std::uint64_t) {
    ReplyPayload r;
    r.proxy_nodes = 1;
    return r;
  };
  auto events = h.pump(h.engine.begin_convergecast({3}, payload));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].reply.proxy_nodes, h.engine.proxy_nodes(3).size());
}

TEST(WalkEngineEdge, ConvergecastForSubsetLeavesOthersIntact) {
  Harness h(make_torus(5, 5));
  h.engine.run_walk_stage({{1, 30, 3}, {2, 30, 3}, {3, 30, 3}});
  const ProxyPayloadFn payload = [](NodeId, NodeId, std::uint64_t) {
    ReplyPayload r;
    r.proxy_nodes = 1;
    return r;
  };
  // Convergecast only origin 2; origins 1 and 3 must stay fully registered
  // and routable afterwards.
  auto events = h.pump(h.engine.begin_convergecast({2}, payload));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].origin, 2u);
  for (const NodeId origin : {1u, 3u}) {
    std::uint64_t total = 0;
    for (const NodeId p : h.engine.proxy_nodes(origin))
      total += h.engine.registrations(p).at(origin);
    EXPECT_EQ(total, 30u);
  }
}

TEST(WalkEngineEdge, RepeatedConvergecastsGiveIdenticalAggregates) {
  // The static trail structure is immutable: Round 1 and Round 3 style
  // convergecasts over the same trails must agree on the unit bookkeeping.
  Harness h(make_hypercube(5));
  h.engine.run_walk_stage({{4, 64, 4}});
  const ProxyPayloadFn payload = [](NodeId, NodeId, std::uint64_t units) {
    ReplyPayload r;
    r.proxy_nodes = 1;
    r.distinct_proxies = units == 1 ? 1 : 0;
    return r;
  };
  auto first = h.pump(h.engine.begin_convergecast({4}, payload));
  auto second = h.pump(h.engine.begin_convergecast({4}, payload));
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(first[0].reply.proxy_nodes, second[0].reply.proxy_nodes);
  EXPECT_EQ(first[0].reply.distinct_proxies,
            second[0].reply.distinct_proxies);
}

TEST(WalkEngineEdge, DistinctnessCountsAreExact) {
  // Cross-check engine bookkeeping against a direct census of registrations.
  Harness h(make_clique(20));
  h.engine.run_walk_stage({{0, 100, 4}});
  std::uint64_t distinct = 0, nodes = 0;
  for (const NodeId p : h.engine.proxy_nodes(0)) {
    ++nodes;
    if (h.engine.registrations(p).at(0) == 1) ++distinct;
  }
  const ProxyPayloadFn payload = [](NodeId, NodeId, std::uint64_t units) {
    ReplyPayload r;
    r.proxy_nodes = 1;
    r.distinct_proxies = units == 1 ? 1 : 0;
    return r;
  };
  auto events = h.pump(h.engine.begin_convergecast({0}, payload));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].reply.proxy_nodes, nodes);
  EXPECT_EQ(events[0].reply.distinct_proxies, distinct);
}

TEST(WalkEngineEdge, FloodForUnknownOriginIsANoop) {
  Harness h(make_ring(8));
  h.engine.run_walk_stage({{0, 10, 2}});
  auto events = h.pump(h.engine.begin_flood_down(5, {1}));  // never walked
  EXPECT_TRUE(events.empty());
  EXPECT_TRUE(h.net.idle());
}

TEST(WalkEngineEdge, UnicastOnStaleTrailDropsSafely) {
  Harness h(make_torus(4, 4));
  h.engine.run_walk_stage({{2, 20, 3}});
  ASSERT_FALSE(h.engine.proxy_nodes(2).empty());
  const NodeId old_proxy = h.engine.proxy_nodes(2).front();
  // Re-walk clears the old trail; a unicast from the former proxy must not
  // crash or loop (it may silently drop or arrive via a fresh trail).
  h.engine.run_walk_stage({{2, 20, 5}});
  auto events = h.pump(h.engine.begin_unicast_up(old_proxy, 2, {9}));
  for (const WalkEvent& ev : events)
    EXPECT_EQ(ev.kind, WalkEvent::Kind::kUnicastAtOrigin);
  EXPECT_TRUE(h.net.idle());
}

TEST(WalkEngineEdge, ManySmallStagesDoNotLeakRegistrations) {
  Harness h(make_clique(12));
  for (int i = 0; i < 8; ++i)
    h.engine.run_walk_stage({{0, 16, 2}});
  std::uint64_t total = 0;
  for (NodeId v = 0; v < 12; ++v) {
    const auto& regs = h.engine.registrations(v);
    const auto it = regs.find(0);
    if (it != regs.end()) total += it->second;
  }
  EXPECT_EQ(total, 16u);  // only the latest stage's units remain
}

TEST(WalkEngineEdge, TwoOriginsAtSameNode) {
  // Distinct contenders can coexist at one node... but origins are node
  // indices, so "same node" means walks launched twice — covered above.
  // Here: two origins whose walks interleave heavily on a tiny graph.
  Harness h(make_path(4));
  h.engine.run_walk_stage({{0, 40, 8}, {3, 40, 8}});
  for (const NodeId origin : {0u, 3u}) {
    std::uint64_t total = 0;
    for (const NodeId p : h.engine.proxy_nodes(origin))
      total += h.engine.registrations(p).at(origin);
    EXPECT_EQ(total, 40u) << "origin " << origin;
  }
}

}  // namespace
}  // namespace wcle
