// Sharded round engine proof obligations:
//   1. ShardPlan partitions the node space into contiguous near-equal ranges
//      and clamps degenerate shard counts.
//   2. ShardExecutor is a real fork/join pool: every lane runs, the caller
//      observes all side effects after run(), and a lane's exception is
//      rethrown on the caller without wedging the pool.
//   3. Bit-identity at ANY shard count: the pre-refactor golden e14 trace
//      replays byte-identically at shards 1, 2, 4, and 8, and sweep
//      aggregates of faulty cells match between shards=1 and shards=4 on
//      every statistic except the per-shard footprint gauges (capacity is
//      the one thing that legitimately scales with the shard count).
//   4. The steady-state no-allocation property holds per shard, not just in
//      aggregate: once warm, every shard's pool stops growing.
//   5. Knob hygiene: shards=0 and non-numeric shard counts are rejected at
//      parse time; shards > node count clamps inside the transport.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "wcle/api/replay.hpp"
#include "wcle/api/scenario.hpp"
#include "wcle/api/sweep.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/sim/network.hpp"
#include "wcle/sim/shard.hpp"

namespace wcle {
namespace {

#ifndef WCLE_SOURCE_DIR
#define WCLE_SOURCE_DIR "."
#endif
#ifndef WCLE_BINARY_DIR
#define WCLE_BINARY_DIR "."
#endif

TEST(ShardPlan, PartitionIsContiguousAndCoversAllNodes) {
  const ShardPlan plan = ShardPlan::make(100, 3);
  EXPECT_EQ(plan.shards, 3u);
  ASSERT_EQ(plan.begin.size(), 4u);
  EXPECT_EQ(plan.begin.front(), 0u);
  EXPECT_EQ(plan.begin.back(), 100u);
  for (std::uint32_t s = 0; s < plan.shards; ++s) {
    EXPECT_LT(plan.begin[s], plan.begin[s + 1]);
    for (std::uint64_t v = plan.begin[s]; v < plan.begin[s + 1]; ++v)
      EXPECT_EQ(plan.shard_of(v), s);
  }
}

TEST(ShardPlan, ClampsToNodeCountAndToOne) {
  EXPECT_EQ(ShardPlan::make(3, 16).shards, 3u);  // more shards than nodes
  EXPECT_EQ(ShardPlan::make(100, 0).shards, 1u);
  EXPECT_EQ(ShardPlan::make(0, 8).shards, 1u);  // empty graph still valid
}

TEST(ShardExecutor, EveryLaneRunsAndJoins) {
  ShardExecutor pool(4);
  EXPECT_EQ(pool.lanes(), 4u);
  std::vector<std::uint32_t> hits(4, 0);
  for (int repeat = 0; repeat < 50; ++repeat)
    pool.run([&](std::uint32_t lane) { hits[lane] += 1; });
  for (std::uint32_t lane = 0; lane < 4; ++lane)
    EXPECT_EQ(hits[lane], 50u) << "lane " << lane;
}

TEST(ShardExecutor, LaneExceptionRethrowsOnCallerAndPoolSurvives) {
  ShardExecutor pool(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.run([&](std::uint32_t lane) {
        ran.fetch_add(1);
        if (lane == 1) throw std::runtime_error("lane 1 failed");
      }),
      std::runtime_error);
  EXPECT_EQ(ran.load(), 3);  // the join still waited for every lane
  // The pool is reusable after an exceptional run.
  std::atomic<int> again{0};
  pool.run([&](std::uint32_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 3);
}

TEST(ShardGolden, E14TraceReplaysByteIdenticallyAtEveryShardCount) {
  // The headline invariant: the SAME golden bytes, recorded by the
  // sequential pre-refactor engine, regenerate byte-for-byte whether the
  // round engine runs 1, 2, 4, or 8 worker shards. This pins the canonical
  // stamp-merge order through the full faulty stack.
  const std::string golden =
      std::string(WCLE_SOURCE_DIR) +
      "/tests/golden/e14_cell_pre_refactor.btrace";
  {
    std::ifstream probe(golden, std::ios::binary);
    ASSERT_TRUE(probe.is_open()) << "missing golden trace: " << golden;
  }
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    const ReplayReport rep =
        verify_replay(golden, /*threads=*/1, /*diff=*/false, shards);
    EXPECT_TRUE(rep.ok) << "shards=" << shards << ": " << rep.detail
                        << "\nthe sharded engine diverged from the "
                           "sequential execution";
    EXPECT_EQ(rep.runs, 2u);
  }
}

void expect_same_summary(const Summary& a, const Summary& b,
                         const char* what) {
  EXPECT_EQ(a.count, b.count) << what;
  EXPECT_EQ(a.mean, b.mean) << what;
  EXPECT_EQ(a.stddev, b.stddev) << what;
  EXPECT_EQ(a.min, b.min) << what;
  EXPECT_EQ(a.median, b.median) << what;
  EXPECT_EQ(a.max, b.max) << what;
}

void expect_shard_invariant_stats(const TrialStats& a, const TrialStats& b) {
  EXPECT_EQ(a.success_rate, b.success_rate);
  EXPECT_EQ(a.zero_leader_rate, b.zero_leader_rate);
  EXPECT_EQ(a.multi_leader_rate, b.multi_leader_rate);
  EXPECT_EQ(a.safety_rate, b.safety_rate);
  EXPECT_EQ(a.liveness_rate, b.liveness_rate);
  expect_same_summary(a.congest_messages, b.congest_messages, "congest");
  expect_same_summary(a.logical_messages, b.logical_messages, "logical");
  expect_same_summary(a.total_bits, b.total_bits, "bits");
  expect_same_summary(a.rounds, b.rounds, "rounds");
  expect_same_summary(a.leader_count, b.leader_count, "leaders");
  expect_same_summary(a.dropped_messages, b.dropped_messages, "dropped");
  expect_same_summary(a.crash_dropped_messages, b.crash_dropped_messages,
                      "crash_dropped");
  expect_same_summary(a.link_dropped_messages, b.link_dropped_messages,
                      "link_dropped");
  expect_same_summary(a.agreement, b.agreement, "agreement");
  // Occupancy gauges are shard-invariant: the same messages are live at the
  // same times regardless of which pool holds them. Capacity gauges
  // (pool_msg_slots, pool_id_blocks) are deliberately NOT compared — every
  // shard warms its own pool, so footprint legitimately varies.
  expect_same_summary(a.pool_msg_live_high, b.pool_msg_live_high,
                      "msg_live_high");
  expect_same_summary(a.pool_id_live_high, b.pool_id_live_high,
                      "id_live_high");
  ASSERT_EQ(a.extras.size(), b.extras.size());
  for (const auto& [key, summary] : a.extras) {
    const auto it = b.extras.find(key);
    ASSERT_NE(it, b.extras.end()) << key;
    expect_same_summary(summary, it->second, key.c_str());
  }
}

TEST(ShardAggregates, FaultyCellsMatchBetweenOneAndFourShards) {
  // e13/e14-style cells (drop fault axis; crash + link failures + adversary)
  // aggregated at shards=1 and shards=4: every statistic except the
  // footprint gauges must be bit-equal.
  const char* cells[] = {
      "algo=election family=expander n=64 drop=0.05 trials=2 base-seed=1000 "
      "graph-seed=1 max-length=128 max-rounds=4000",
      "algo=election family=expander n=64 crash=0.1 linkfail=0.05 "
      "adversary=contenders trials=2 base-seed=1000 graph-seed=1 "
      "max-length=128 max-rounds=4000",
  };
  for (const char* cell : cells) {
    const std::vector<CellResult> seq =
        run_sweep(parse_spec(std::string(cell) + " shards=1"), {}, 1);
    const std::vector<CellResult> par =
        run_sweep(parse_spec(std::string(cell) + " shards=4"), {}, 1);
    ASSERT_EQ(seq.size(), 1u) << cell;
    ASSERT_EQ(par.size(), 1u) << cell;
    EXPECT_EQ(seq[0].n, par[0].n);
    EXPECT_EQ(seq[0].m, par[0].m);
    expect_shard_invariant_stats(seq[0].stats, par[0].stats);
  }
}

TEST(ShardPools, SteadyStateNoAllocationHoldsPerShard) {
  // The no-allocation-per-delivery property, refined per shard: after a
  // warmup burst, repeat the identical workload and require EVERY shard's
  // capacity gauges — not just the cross-shard sum — to stay flat.
  const Graph g = make_clique(8);
  CongestConfig cfg;
  cfg.bandwidth_bits = 16;
  cfg.shards = 4;
  Network net(g, cfg);
  ASSERT_EQ(net.shard_count(), 4u);
  const std::vector<std::uint64_t> payload{1, 2, 3, 4};
  const auto burst = [&] {
    for (NodeId u = 0; u < g.node_count(); ++u)
      for (Port p = 0; p < g.degree(u); ++p) {
        Message m;
        m.tag = 1;
        m.bits = 48;
        m.a = u;
        m.ids = payload;
        net.send(u, p, m);
      }
    net.run_until_idle([](const Delivery&) {});
  };
  burst();  // warmup: every shard grows to its own workload footprint
  std::vector<Network::PoolStats> warm;
  for (std::uint32_t s = 0; s < net.shard_count(); ++s)
    warm.push_back(net.shard_pool_stats(s));
  for (int repeat = 0; repeat < 10; ++repeat) burst();
  for (std::uint32_t s = 0; s < net.shard_count(); ++s) {
    const Network::PoolStats after = net.shard_pool_stats(s);
    EXPECT_GT(after.id_alloc_calls, warm[s].id_alloc_calls) << "shard " << s;
    EXPECT_EQ(after.id_heap_blocks, warm[s].id_heap_blocks) << "shard " << s;
    EXPECT_EQ(after.msg_slots, warm[s].msg_slots) << "shard " << s;
  }
}

TEST(ShardKnob, RejectsZeroAndNonNumericAtParseTime) {
  EXPECT_THROW(
      parse_spec("algo=election family=clique n=8 trials=1 shards=0"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_spec("algo=election family=clique n=8 trials=1 shards=lots"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_spec("algo=election family=clique n=8 trials=1 shards=-2"),
      std::invalid_argument);
}

TEST(ShardKnob, CliWarnsWhenShardsExceedNodeCount) {
  // The transport clamps silently (library callers pass machine-derived
  // counts); the CLI is where a human typed the number, so it must say so
  // on stderr while the run itself still succeeds.
  const std::string err = testing::TempDir() + "wcle_shard_warn.txt";
  const std::string cmd =
      std::string(WCLE_BINARY_DIR) +
      "/wcle_cli run --algo=election --family=ring --n=8 --seed=1 "
      "--shards=64 >/dev/null 2>" +
      err;
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
  std::ifstream in(err);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("warning: --shards=64 exceeds n=8"), std::string::npos)
      << text;
  EXPECT_NE(text.find("clamps"), std::string::npos) << text;
}

TEST(ShardKnob, TransportClampsShardsAboveNodeCount) {
  const Graph g = make_ring(5);
  CongestConfig cfg;
  cfg.bandwidth_bits = 64;
  cfg.shards = 64;  // far more workers than nodes
  Network net(g, cfg);
  EXPECT_EQ(net.shard_count(), 5u);
  // The clamped engine still runs a round correctly.
  Message m;
  m.tag = 1;
  m.bits = 32;
  net.send(0, 0, m);
  std::uint64_t got = 0;
  net.run_until_idle([&](const Delivery&) { ++got; });
  EXPECT_EQ(got, 1u);
}

}  // namespace
}  // namespace wcle
