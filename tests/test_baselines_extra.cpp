// Tests for the second wave of baselines: flooding broadcast, the Lemma-18
// port prober, the [25] clique-referee election, and the [29]-style
// distributed mixing-time estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "wcle/baselines/clique_referee.hpp"
#include "wcle/baselines/flood_broadcast.hpp"
#include "wcle/baselines/port_prober.hpp"
#include "wcle/baselines/tmix_estimator.hpp"
#include "wcle/core/leader_election.hpp"
#include "wcle/graph/dumbbell.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/graph/lower_bound_graph.hpp"
#include "wcle/graph/spectral.hpp"

namespace wcle {
namespace {

// --------------------------------------------------------- FloodBroadcast

TEST(FloodBroadcast, InformsEveryNode) {
  Rng grng(3);
  const Graph g = make_connected_gnp(80, 0.08, grng);
  const FloodBroadcastResult r = run_flood_broadcast(g, 5, 32);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.informed, 80u);
}

TEST(FloodBroadcast, MessagesAreThetaM) {
  const Graph g = make_hypercube(7);
  const FloodBroadcastResult r = run_flood_broadcast(g, 0, 32);
  EXPECT_GE(r.totals.logical_messages, g.edge_count());
  EXPECT_LE(r.totals.logical_messages, 2 * g.edge_count());
}

TEST(FloodBroadcast, RoundsEqualEccentricityPlusDrain) {
  // All nodes informed after ecc = 8 rounds; the antipodal node's duplicate
  // forward drains one round later (flooding's classic wasted crossing).
  const FloodBroadcastResult r = run_flood_broadcast(make_ring(16), 0, 32);
  EXPECT_EQ(r.rounds, 9u);
}

TEST(FloodBroadcast, RejectsBadSource) {
  EXPECT_THROW(run_flood_broadcast(make_ring(8), 8, 32),
               std::invalid_argument);
}

// ------------------------------------------------------------ PortProber

TEST(PortProber, FullBudgetFindsAllTargetEdges) {
  Rng grng(5);
  const LowerBoundGraph lb = make_lower_bound_graph(400, 0.006, grng);
  auto inter = [&](NodeId a, NodeId b) {
    return lb.clique_of[a] != lb.clique_of[b];
  };
  const ProbeResult r =
      run_port_prober(lb.graph, lb.graph.max_degree(), 1, inter);
  // Probing every port crosses every inter-clique edge twice (once per side).
  EXPECT_EQ(r.target_edges_found, 2 * lb.inter_clique_edges.size());
}

TEST(PortProber, SmallBudgetRarelyFindsLongEdges) {
  // Lemma 18: with o(s) probes per node (out of s ports), the expected number
  // of inter-clique discoveries is proportional to the opened fraction.
  Rng grng(7);
  const LowerBoundGraph lb = make_lower_bound_graph(500, 0.004, grng);
  auto inter = [&](NodeId a, NodeId b) {
    return lb.clique_of[a] != lb.clique_of[b];
  };
  double found = 0;
  const int reps = 20;
  for (int i = 0; i < reps; ++i)
    found += static_cast<double>(
        run_port_prober(lb.graph, 1, 100 + i, inter).target_edges_found);
  found /= reps;
  const double open_fraction = 1.0 / lb.graph.max_degree();
  const double expect = 2.0 * lb.inter_clique_edges.size() * open_fraction;
  EXPECT_NEAR(found, expect, std::max(2.0, expect));
  EXPECT_LT(found, 0.25 * 2 * lb.inter_clique_edges.size());
}

TEST(PortProber, ProbeCountMatchesBudget) {
  const Graph g = make_clique(16);
  const ProbeResult r =
      run_port_prober(g, 4, 1, [](NodeId, NodeId) { return false; });
  EXPECT_EQ(r.probes_sent, 16u * 4u);
  EXPECT_EQ(r.target_edges_found, 0u);
}

TEST(PortProber, BridgeDiscoveryOnDumbbellNeedsHighBudget) {
  // Theorem 28's engine: the two bridges hide among 2m ports.
  const Graph base = make_torus(6, 6);
  Rng drng(9);
  const DumbbellGraph d = make_random_dumbbell(base, drng);
  auto is_bridge = [&](NodeId a, NodeId b) {
    auto same = [&](Edge e, NodeId x, NodeId y) {
      return (e.a == x && e.b == y) || (e.a == y && e.b == x);
    };
    return same(d.bridge1, a, b) || same(d.bridge2, a, b);
  };
  int found_low = 0, found_full = 0;
  for (int i = 0; i < 10; ++i) {
    found_low += run_port_prober(d.graph, 1, 50 + i, is_bridge)
                     .target_edges_found > 0;
    found_full += run_port_prober(d.graph, 4, 50 + i, is_bridge)
                      .target_edges_found > 0;
  }
  EXPECT_LE(found_low, found_full);
  EXPECT_EQ(found_full, 10);  // budget = max degree: every port probed
}

// --------------------------------------------------------- CliqueReferee

TEST(CliqueReferee, ElectsUniqueLeaderOnCliqueWhp) {
  const Graph g = make_clique(128);
  ElectionParams p;
  int ok = 0;
  for (std::uint64_t s = 1; s <= 10; ++s) {
    p.seed = s;
    const CliqueRefereeResult r = run_clique_referee(g, p);
    if (r.success()) ++ok;
    EXPECT_LE(r.leaders.size(), 2u);
  }
  EXPECT_GE(ok, 9);
}

TEST(CliqueReferee, LeaderIsMaxIdCandidateMostly) {
  const Graph g = make_clique(96);
  ElectionParams p;
  p.seed = 4;
  const CliqueRefereeResult r = run_clique_referee(g, p);
  ASSERT_TRUE(r.success());
  EXPECT_NE(std::find(r.candidates.begin(), r.candidates.end(), r.leaders[0]),
            r.candidates.end());
}

TEST(CliqueReferee, SublinearMessagesOnClique) {
  // [25]: O(sqrt(n) log^{3/2} n) messages — far below m on a clique.
  const Graph g = make_clique(512);
  ElectionParams p;
  p.seed = 2;
  const CliqueRefereeResult r = run_clique_referee(g, p);
  ASSERT_TRUE(r.success());
  EXPECT_LT(r.totals.congest_messages, g.edge_count() / 4);
}

TEST(CliqueReferee, CheaperThanGeneralAlgorithmOnClique) {
  // The specialized algorithm must beat the paper's general one on its home
  // turf (no walks, no guess-and-double, O(1) rounds).
  const Graph g = make_clique(256);
  ElectionParams p;
  p.seed = 6;
  const CliqueRefereeResult referee = run_clique_referee(g, p);
  const ElectionResult general = run_leader_election(g, p);
  ASSERT_TRUE(referee.success());
  ASSERT_TRUE(general.success());
  EXPECT_LT(referee.totals.congest_messages,
            general.totals.congest_messages);
  EXPECT_LT(referee.rounds, general.totals.rounds);
}

TEST(CliqueReferee, MayElectMultipleLeadersOffClique) {
  // On a large torus the referee's "random port = random node" assumption
  // collapses to a 4-neighbourhood: distant candidates never meet.
  const Graph g = make_torus(16, 16);
  ElectionParams p;
  int multi = 0;
  for (std::uint64_t s = 1; s <= 10; ++s) {
    p.seed = s;
    if (run_clique_referee(g, p).leaders.size() > 1) ++multi;
  }
  EXPECT_GE(multi, 5);
}

TEST(CliqueReferee, NoCandidatesNoLeader) {
  ElectionParams p;
  p.c1 = 0.0;
  const CliqueRefereeResult r = run_clique_referee(make_clique(32), p);
  EXPECT_TRUE(r.candidates.empty());
  EXPECT_TRUE(r.leaders.empty());
}

// --------------------------------------------------------- TmixEstimator

TEST(TmixEstimator, EstimateBracketsExactOnClique) {
  const Graph g = make_clique(64);
  const std::uint64_t exact = mixing_time_exact(g, 1u << 12);
  const TmixEstimateResult r = run_tmix_estimator(g, 0, 1);
  ASSERT_TRUE(r.converged);
  // Doubling + sampling tolerance: within [exact/4, 4*exact] up to rounding.
  EXPECT_LE(r.estimate, std::max<std::uint64_t>(4, 4 * exact));
}

TEST(TmixEstimator, OrdersFamiliesCorrectly) {
  const TmixEstimateResult clique = run_tmix_estimator(make_clique(64), 0, 2);
  const TmixEstimateResult torus =
      run_tmix_estimator(make_torus(8, 8), 0, 2);
  ASSERT_TRUE(clique.converged);
  ASSERT_TRUE(torus.converged);
  EXPECT_LT(clique.estimate, torus.estimate);
}

TEST(TmixEstimator, CostsOmegaM) {
  // The paper's complaint about [29]: estimation alone costs >= m messages
  // (the BFS tree), dwarfing the election's sqrt(n) polylog on dense graphs.
  const Graph g = make_clique(128);
  const TmixEstimateResult r = run_tmix_estimator(g, 0, 3);
  ASSERT_TRUE(r.converged);
  EXPECT_GE(r.totals.logical_messages, g.edge_count());
}

TEST(TmixEstimator, RespectsMaxT) {
  const Graph g = make_ring(64);  // tmix in the thousands
  const TmixEstimateResult r = run_tmix_estimator(g, 0, 4, 512, 4);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3u);  // t = 1, 2, 4
}

TEST(TmixEstimator, RejectsBadInitiator) {
  EXPECT_THROW(run_tmix_estimator(make_ring(8), 9, 1), std::invalid_argument);
}

}  // namespace
}  // namespace wcle
