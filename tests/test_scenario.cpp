// Tests for the declarative experiment spec: the key=v1,v2 grid grammar, the
// RunOptions knob set, grid arithmetic, the builtin E1-E13 registry, and the
// spec -> string -> spec round trip that backs every table's "reproduce:"
// line.
#include <gtest/gtest.h>

#include <stdexcept>

#include "wcle/api/registry.hpp"
#include "wcle/api/scenario.hpp"
#include "wcle/api/sweep.hpp"

namespace wcle {
namespace {

TEST(SpecGrammar, ParsesAxesAndKnobs) {
  const ExperimentSpec spec = parse_spec(
      "algo=flood_max,election family=clique n=32,64 bandwidth=standard,wide "
      "drop=0,0.5 trials=3 base-seed=77 graph-seed=9 c1=2,4 reliable=1 "
      "extras=phases,final_length name=demo");
  EXPECT_EQ(spec.algorithms, (std::vector<std::string>{"flood_max",
                                                       "election"}));
  EXPECT_EQ(spec.families, std::vector<std::string>{"clique"});
  EXPECT_EQ(spec.sizes, (std::vector<std::uint64_t>{32, 64}));
  EXPECT_EQ(spec.bandwidths, (std::vector<std::string>{"standard", "wide"}));
  EXPECT_EQ(spec.drops, (std::vector<double>{0.0, 0.5}));
  EXPECT_EQ(spec.trials, 3);
  EXPECT_EQ(spec.base_seed, 77u);
  EXPECT_EQ(spec.graph_seed, 9u);
  EXPECT_TRUE(spec.skip_unreliable);
  EXPECT_EQ(spec.knobs.at("c1"), (std::vector<std::string>{"2", "4"}));
  EXPECT_EQ(spec.table_extras,
            (std::vector<std::string>{"phases", "final_length"}));
  EXPECT_EQ(spec.name, "demo");
  // 2 algos x 1 family x 2 sizes x 2 bandwidths x 2 drops x 2 c1 values.
  EXPECT_EQ(spec.cell_count(), 32u);
}

TEST(SpecGrammar, DefaultsWhenUnspecified) {
  const ExperimentSpec spec = parse_spec("n=128");
  EXPECT_EQ(spec.algorithms, std::vector<std::string>{"election"});
  EXPECT_EQ(spec.families, std::vector<std::string>{"expander"});
  EXPECT_EQ(spec.bandwidths, std::vector<std::string>{"standard"});
  EXPECT_EQ(spec.drops, std::vector<double>{0.0});
  EXPECT_EQ(spec.cell_count(), 1u);
}

TEST(SpecGrammar, AlgoAllExpandsToRegistry) {
  const ExperimentSpec spec = parse_spec("algo=all n=16");
  EXPECT_EQ(spec.algorithms.size(), AlgorithmRegistry::instance().size());
}

TEST(SpecGrammar, Rejections) {
  EXPECT_THROW(parse_spec("bogus-key=1"), std::invalid_argument);
  EXPECT_THROW(parse_spec("algo=no_such_algorithm"), std::invalid_argument);
  EXPECT_THROW(parse_spec("n=abc"), std::invalid_argument);
  EXPECT_THROW(parse_spec("n=-5"), std::invalid_argument);
  EXPECT_THROW(parse_spec("drop=1.5"), std::invalid_argument);
  EXPECT_THROW(parse_spec("drop=-0.1"), std::invalid_argument);
  EXPECT_THROW(parse_spec("bandwidth=0"), std::invalid_argument);
  EXPECT_THROW(parse_spec("bandwidth=narrow"), std::invalid_argument);
  EXPECT_THROW(parse_spec("trials=0"), std::invalid_argument);
  EXPECT_THROW(parse_spec("wide=maybe"), std::invalid_argument);
  EXPECT_THROW(parse_spec("notkeyvalue"), std::invalid_argument);
  EXPECT_THROW(parse_spec("n="), std::invalid_argument);
}

TEST(SpecGrammar, KnobApplication) {
  RunOptions options;
  apply_knob(options, "c1", "6.5");
  apply_knob(options, "wide", "true");
  apply_knob(options, "coalesce", "false");
  apply_knob(options, "tmix", "12");
  apply_knob(options, "budget", "99");
  EXPECT_EQ(options.params.c1, 6.5);
  EXPECT_TRUE(options.params.wide_messages);
  EXPECT_FALSE(options.params.coalesce_tokens);
  EXPECT_EQ(options.tmix_hint, 12u);
  EXPECT_EQ(options.probe_budget, 99u);
  EXPECT_THROW(apply_knob(options, "nonsense", "1"), std::invalid_argument);

  apply_bandwidth(options, "256");
  EXPECT_EQ(options.params.bandwidth_bits, 256u);
  apply_bandwidth(options, "wide");
  EXPECT_EQ(options.params.bandwidth_bits, 0u);
  EXPECT_TRUE(options.params.wide_messages);
  apply_bandwidth(options, "standard");
  EXPECT_FALSE(options.params.wide_messages);
}

TEST(SpecGrammar, ParseOntoReplacesOnlyNamedAxes) {
  const ExperimentSpec base = builtin_experiment("e6", 1);
  // n=512 must override even though 512 is also parse_spec's default size,
  // and trials=1 even though the base has its own; unnamed axes (families,
  // bandwidths, the coalesce knob grid) keep the builtin values.
  const ExperimentSpec spec =
      parse_spec_onto(base, {"n=512", "trials=1", "reliable=1"});
  EXPECT_EQ(spec.sizes, std::vector<std::uint64_t>{512});
  EXPECT_EQ(spec.trials, 1);
  EXPECT_TRUE(spec.skip_unreliable);
  EXPECT_EQ(spec.families, base.families);
  EXPECT_EQ(spec.bandwidths, base.bandwidths);
  EXPECT_EQ(spec.knobs, base.knobs);
  EXPECT_EQ(spec.name, base.name);
  EXPECT_EQ(spec.title, base.title);

  // Naming a knob the base grids replaces that grid only.
  const ExperimentSpec knobbed = parse_spec_onto(base, {"coalesce=true"});
  EXPECT_EQ(knobbed.knobs.at("coalesce"), std::vector<std::string>{"true"});

  // Repeated mentions of the same key still accumulate.
  const ExperimentSpec repeated = parse_spec_onto(base, {"n=64", "n=128"});
  EXPECT_EQ(repeated.sizes, (std::vector<std::uint64_t>{64, 128}));
}

TEST(Builtins, AllBuiltinExperimentsResolve) {
  const std::vector<std::string> names = builtin_experiment_names();
  EXPECT_EQ(names.size(), 14u);
  for (const std::string& name : names) {
    for (int scale = 0; scale <= 2; ++scale) {
      const ExperimentSpec spec = builtin_experiment(name, scale);
      EXPECT_EQ(spec.name, name);
      EXPECT_FALSE(spec.title.empty()) << name;
      EXPECT_GE(spec.cell_count(), 1u) << name;
      EXPECT_GE(spec.trials, 1) << name;
      for (const std::string& algo : spec.algorithms)
        EXPECT_TRUE(AlgorithmRegistry::instance().contains(algo))
            << name << " uses unknown algorithm " << algo;
    }
  }
  EXPECT_THROW(builtin_experiment("e99"), std::invalid_argument);
}

TEST(Builtins, ToStringRoundTripsTheGrid) {
  for (const std::string& name : builtin_experiment_names()) {
    const ExperimentSpec spec = builtin_experiment(name, 0);
    const ExperimentSpec reparsed = parse_spec(spec.to_string());
    EXPECT_EQ(reparsed.algorithms, spec.algorithms) << name;
    EXPECT_EQ(reparsed.families, spec.families) << name;
    EXPECT_EQ(reparsed.sizes, spec.sizes) << name;
    EXPECT_EQ(reparsed.bandwidths, spec.bandwidths) << name;
    EXPECT_EQ(reparsed.drops, spec.drops) << name;
    EXPECT_EQ(reparsed.trials, spec.trials) << name;
    EXPECT_EQ(reparsed.base_seed, spec.base_seed) << name;
    EXPECT_EQ(reparsed.graph_seed, spec.graph_seed) << name;
    EXPECT_EQ(reparsed.skip_unreliable, spec.skip_unreliable) << name;
    EXPECT_EQ(reparsed.knobs, spec.knobs) << name;
    EXPECT_EQ(reparsed.cell_count(), spec.cell_count()) << name;
  }
}

TEST(Builtins, ScaleZeroStaysSmall) {
  // The CI smoke job runs every spec at scale 0 twice; keep the grids tiny.
  for (const std::string& name : builtin_experiment_names()) {
    const ExperimentSpec spec = builtin_experiment(name, 0);
    EXPECT_LE(spec.cell_count(), 64u) << name;
  }
}

// canonical_cell_key is a persistence format: trace headers record it for
// single runs and the serve CellCache keys on it, so the exact bytes are
// pinned here. A deliberate grammar change must update these strings (and
// invalidates old caches — which is correct, the key IS the identity).
TEST(CanonicalCellKey, GoldenStrings) {
  const ExperimentSpec spec = parse_spec(
      "algo=election,flood_max family=expander n=32,64 trials=3 "
      "base-seed=500 graph-seed=9");
  const std::vector<SweepCell> cells = sweep_cells(spec);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(canonical_cell_key(spec, cells[0]),
            "name=single algo=election family=expander n=32 "
            "bandwidth=standard drop=0 trials=3 base-seed=500 graph-seed=9");
  EXPECT_EQ(canonical_cell_key(spec, cells[1]),
            "name=single algo=flood_max family=expander n=32 "
            "bandwidth=standard drop=0 trials=3 base-seed=500 graph-seed=9");
  EXPECT_EQ(canonical_cell_key(spec, cells[3]),
            "name=single algo=flood_max family=expander n=64 "
            "bandwidth=standard drop=0 trials=3 base-seed=500 graph-seed=9");
}

TEST(CanonicalCellKey, ResolvedKnobsAndFaultAxesSurvive) {
  // c1=3 is deliberately non-default (ElectionParams defaults c1 to 4): the
  // key canonicalizes default-valued knobs away, so only a non-default value
  // can demonstrate that knobs survive into the key.
  const ExperimentSpec spec = parse_spec(
      "algo=election family=hypercube n=64 bandwidth=wide crash=0.1 "
      "linkfail=0.05 adversary=contenders c1=3 max-length=256 trials=2");
  const std::vector<SweepCell> cells = sweep_cells(spec);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(canonical_cell_key(spec, cells[0]),
            "name=single algo=election family=hypercube n=64 bandwidth=wide "
            "drop=0 crash=0.1 linkfail=0.05 adversary=contenders c1=3 "
            "max-length=256 trials=2 base-seed=1000 graph-seed=1");
}

TEST(CanonicalCellKey, SameComputationFromDifferentGridsSharesKey) {
  // A cell reached via a grid axis and the same cell written directly must
  // collapse onto one key — that is what makes the serve cache correct
  // across overlapping submissions.
  const ExperimentSpec grid =
      parse_spec("algo=election family=expander n=32,64 c1=2,3 trials=2");
  const ExperimentSpec direct =
      parse_spec("algo=election family=expander n=64 c1=3 trials=2");
  const std::vector<SweepCell> grid_cells = sweep_cells(grid);
  const std::vector<SweepCell> direct_cells = sweep_cells(direct);
  ASSERT_EQ(grid_cells.size(), 4u);
  ASSERT_EQ(direct_cells.size(), 1u);
  EXPECT_EQ(canonical_cell_key(grid, grid_cells[3]),
            canonical_cell_key(direct, direct_cells[0]));
  // And distinct computations stay distinct.
  EXPECT_NE(canonical_cell_key(grid, grid_cells[0]),
            canonical_cell_key(grid, grid_cells[1]));
}

TEST(CanonicalCellKey, RoundTripsThroughTheGrammar) {
  // The key is itself a valid spec whose only cell is the keyed cell: parse
  // it back and the (single) expanded cell re-keys to the same string.
  const ExperimentSpec spec = parse_spec(
      "algo=election family=expander n=32 bandwidth=wide c2=8 trials=2");
  const std::string key = canonical_cell_key(spec, sweep_cells(spec)[0]);
  const ExperimentSpec reparsed = parse_spec(key);
  const std::vector<SweepCell> cells = sweep_cells(reparsed);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(canonical_cell_key(reparsed, cells[0]), key);
}

}  // namespace
}  // namespace wcle
