// Tests for the unified Algorithm API: registry contents and lookup, and the
// cross-algorithm smoke matrix — every registered algorithm must run through
// the one `run(graph, options)` surface on a clique, a cycle, and a
// hypercube with a fixed seed, and elect exactly one distinguished leader
// wherever its w.h.p. guarantee applies.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "wcle/api/registry.hpp"
#include "wcle/graph/generators.hpp"

namespace wcle {
namespace {

class NullAlgorithm final : public Algorithm {
 public:
  explicit NullAlgorithm(std::string name) : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  std::string describe() const override { return "test stub"; }
  Kind kind() const override { return Kind::kDiagnostic; }
  RunResult run(const Graph&, const RunOptions&) const override {
    return RunResult{};
  }

 private:
  std::string name_;
};

TEST(Registry, ListsAllBuiltinAlgorithms) {
  const AlgorithmRegistry& reg = AlgorithmRegistry::instance();
  EXPECT_GE(reg.size(), 10u);
  const std::vector<std::string> names = reg.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* expected :
       {"election", "explicit_election", "flood_max", "flood_broadcast",
        "candidate_flood", "bfs_tree", "push_pull", "port_prober",
        "clique_referee", "territory_election", "known_tmix",
        "tmix_estimator", "estimate_then_elect"}) {
    EXPECT_TRUE(reg.contains(expected)) << expected;
  }
}

TEST(Registry, LookupAndErrors) {
  AlgorithmRegistry& reg = AlgorithmRegistry::instance();
  EXPECT_EQ(reg.find("election")->name(), "election");
  EXPECT_EQ(reg.find("no_such_algorithm"), nullptr);
  EXPECT_EQ(reg.at("flood_max").kind(), Algorithm::Kind::kElection);
  EXPECT_THROW(reg.at("no_such_algorithm"), std::out_of_range);
  EXPECT_THROW(reg.add(std::make_unique<NullAlgorithm>("election")),
               std::invalid_argument);
  EXPECT_THROW(reg.add(std::make_unique<NullAlgorithm>("")),
               std::invalid_argument);
  EXPECT_THROW(reg.add(nullptr), std::invalid_argument);
}

TEST(Registry, MetadataIsComplete) {
  for (const Algorithm* a : AlgorithmRegistry::instance().all()) {
    EXPECT_FALSE(a->name().empty());
    EXPECT_FALSE(a->describe().empty()) << a->name();
    EXPECT_FALSE(kind_name(a->kind()).empty()) << a->name();
  }
}

// ---------------------------------------------------------------- smoke

struct SmokeGraph {
  const char* label;
  Graph graph;
};

std::vector<SmokeGraph> smoke_graphs() {
  std::vector<SmokeGraph> out;
  out.push_back({"clique24", make_clique(24)});
  out.push_back({"cycle16", make_ring(16)});
  out.push_back({"hypercube16", make_hypercube(4)});
  return out;
}

TEST(AlgorithmSmoke, EveryAlgorithmElectsOneLeaderWhereReliable) {
  RunOptions options;
  options.set_seed(7);
  for (const SmokeGraph& sg : smoke_graphs()) {
    for (const Algorithm* a : AlgorithmRegistry::instance().all()) {
      const RunResult r = a->run(sg.graph, options);
      EXPECT_EQ(r.algorithm, a->name());
      if (!a->reliable_on(sg.graph)) continue;  // clique_referee off-clique
      EXPECT_TRUE(r.success) << a->name() << " on " << sg.label;
      EXPECT_EQ(r.leaders.size(), 1u) << a->name() << " on " << sg.label;
      EXPECT_LT(r.leaders[0], sg.graph.node_count())
          << a->name() << " on " << sg.label;
      if (a->offline()) continue;  // probes measure without the transport
      EXPECT_GE(r.rounds, 1u) << a->name() << " on " << sg.label;
      EXPECT_GT(r.totals.congest_messages, 0u)
          << a->name() << " on " << sg.label;
    }
  }
}

TEST(AlgorithmSmoke, RunsAreDeterministicInSeed) {
  const Graph g = make_hypercube(4);
  RunOptions options;
  options.set_seed(11);
  for (const Algorithm* a : AlgorithmRegistry::instance().all()) {
    const RunResult r1 = a->run(g, options);
    const RunResult r2 = a->run(g, options);
    EXPECT_EQ(r1.leaders, r2.leaders) << a->name();
    EXPECT_EQ(r1.rounds, r2.rounds) << a->name();
    EXPECT_EQ(r1.totals.congest_messages, r2.totals.congest_messages)
        << a->name();
    EXPECT_EQ(r1.extras, r2.extras) << a->name();
  }
}

TEST(AlgorithmSmoke, CliqueRefereeAdmitsOnlyCliques) {
  const Algorithm& a = AlgorithmRegistry::instance().at("clique_referee");
  EXPECT_TRUE(a.reliable_on(make_clique(16)));
  EXPECT_FALSE(a.reliable_on(make_ring(16)));
  EXPECT_FALSE(a.reliable_on(make_hypercube(4)));
}

TEST(AlgorithmSmoke, SummaryMentionsAlgorithmAndOutcome) {
  const Algorithm& a = AlgorithmRegistry::instance().at("flood_max");
  RunOptions options;
  options.set_seed(3);
  const RunResult r = a.run(make_clique(12), options);
  const std::string s = r.summary();
  EXPECT_NE(s.find("flood_max"), std::string::npos);
  EXPECT_NE(s.find("success"), std::string::npos);
}

}  // namespace
}  // namespace wcle
