// Observability invariants: the per-tag CONGEST message breakdown must
// partition the totals, and each protocol stage must show up under the tags
// the walk engine owns — this is what makes the bench cost attributions
// trustworthy.
#include <gtest/gtest.h>

#include <numeric>

#include "wcle/core/leader_election.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/obs/congestion.hpp"
#include "wcle/obs/walks.hpp"
#include "wcle/rw/walk_engine.hpp"
#include "wcle/sim/network.hpp"
#include "wcle/trace/recorder.hpp"

namespace wcle {
namespace {

TEST(Observability, TagBreakdownPartitionsTotals) {
  const Graph g = make_hypercube(6);
  ElectionParams p;
  p.seed = 21;
  const ElectionResult r = run_leader_election(g, p);
  ASSERT_TRUE(r.success());
  const std::uint64_t tag_sum =
      std::accumulate(r.totals.congest_messages_by_tag.begin(),
                      r.totals.congest_messages_by_tag.end(), std::uint64_t{0});
  EXPECT_EQ(tag_sum, r.totals.congest_messages);
}

TEST(Observability, ElectionUsesExactlyTheWalkEngineTags) {
  const Graph g = make_clique(64);
  ElectionParams p;
  p.seed = 22;
  const ElectionResult r = run_leader_election(g, p);
  ASSERT_TRUE(r.success());
  const auto& by_tag = r.totals.congest_messages_by_tag;
  // All four engine tags must be exercised by a successful election...
  EXPECT_GT(by_tag[kTagWalkToken], 0u);
  EXPECT_GT(by_tag[kTagReplyUp], 0u);
  EXPECT_GT(by_tag[kTagFloodDown], 0u);
  EXPECT_GT(by_tag[kTagUnicastUp], 0u);  // winner notifications to contenders
  // ...and nothing else may appear.
  for (std::size_t tag = 0; tag < by_tag.size(); ++tag) {
    if (WalkEngine::owns_tag(static_cast<std::uint8_t>(tag))) continue;
    EXPECT_EQ(by_tag[tag], 0u) << "unexpected tag " << tag;
  }
}

TEST(Observability, WalkTokensDominateReplyCostOnLowFanout) {
  // Rounds 1-3 retrace the trails, so reply+flood cost is within a small
  // multiple of the forward walk cost (the Lemma 12 accounting).
  const Graph g = make_torus(8, 8);
  ElectionParams p;
  p.seed = 23;
  const ElectionResult r = run_leader_election(g, p);
  ASSERT_TRUE(r.success());
  const auto& by_tag = r.totals.congest_messages_by_tag;
  const std::uint64_t walk = by_tag[kTagWalkToken];
  const std::uint64_t exchanges =
      by_tag[kTagReplyUp] + by_tag[kTagFloodDown] + by_tag[kTagUnicastUp];
  EXPECT_GT(walk, 0u);
  // Each phase retraces the trails ~4x (R1, R2, R3, winner), each message
  // fragmenting into O(log n) quanta for its id payload: exchanges stay
  // within 4 * O(log n) of the walk bill (here log2(64) = 6, measured ~21x).
  EXPECT_LT(exchanges, walk * 4 * 12);
}

TEST(Observability, PhaseMetricsRoundsArePositive) {
  const Graph g = make_hypercube(6);
  ElectionParams p;
  p.seed = 24;
  const ElectionResult r = run_leader_election(g, p);
  for (const PhaseStats& ps : r.phase_stats) {
    EXPECT_GT(ps.metrics.rounds, 0u);
    EXPECT_GT(ps.metrics.congest_messages, 0u);
    EXPECT_GE(ps.metrics.congest_messages, ps.metrics.logical_messages);
  }
}

TEST(Observability, WalkHopTracingNeverPerturbsExecution) {
  // Identical seeds with walk tracing off, at K = 1, and at K = 2: the
  // election outcome, the message bill, and the per-round trace timeline
  // must be bit-identical — hop recording is purely observational.
  const Graph g = make_hypercube(6);
  const auto run_with = [&](std::uint32_t trace_walks, TraceRecorder* rec) {
    ElectionParams p;
    p.seed = 26;
    p.trace = rec;
    p.trace_walks = trace_walks;
    return run_leader_election(g, p);
  };
  TraceRecorder off, all, sampled;
  const ElectionResult r_off = run_with(0, &off);
  const ElectionResult r_all = run_with(1, &all);
  const ElectionResult r_sampled = run_with(2, &sampled);
  EXPECT_TRUE(off.walk_hops().empty());
  EXPECT_FALSE(all.walk_hops().empty());

  for (const ElectionResult* r : {&r_all, &r_sampled}) {
    EXPECT_EQ(r->leaders, r_off.leaders);
    EXPECT_EQ(r->phases, r_off.phases);
    EXPECT_EQ(r->totals.congest_messages, r_off.totals.congest_messages);
    EXPECT_EQ(r->totals.rounds, r_off.totals.rounds);
  }
  for (const TraceRecorder* rec : {&all, &sampled}) {
    ASSERT_EQ(rec->rounds().size(), off.rounds().size());
    for (std::size_t i = 0; i < off.rounds().size(); ++i) {
      EXPECT_EQ(rec->rounds()[i].round, off.rounds()[i].round);
      EXPECT_EQ(rec->rounds()[i].sends, off.rounds()[i].sends);
      EXPECT_EQ(rec->rounds()[i].quanta, off.rounds()[i].quanta);
      EXPECT_EQ(rec->rounds()[i].delivered, off.rounds()[i].delivered);
      EXPECT_EQ(rec->rounds()[i].backlog, off.rounds()[i].backlog);
    }
    EXPECT_EQ(rec->events().size(), off.events().size());
  }
  // Origin sampling keeps exactly the origin % K == 0 subsequence, in
  // order — each sampled walk's path stays complete.
  std::vector<TraceWalkHop> expect_sampled;
  for (const TraceWalkHop& h : all.walk_hops())
    if (h.origin % 2 == 0) expect_sampled.push_back(h);
  ASSERT_EQ(sampled.walk_hops().size(), expect_sampled.size());
  for (std::size_t i = 0; i < expect_sampled.size(); ++i) {
    EXPECT_EQ(sampled.walk_hops()[i].round, expect_sampled[i].round);
    EXPECT_EQ(sampled.walk_hops()[i].origin, expect_sampled[i].origin);
    EXPECT_EQ(sampled.walk_hops()[i].src, expect_sampled[i].src);
    EXPECT_EQ(sampled.walk_hops()[i].dst, expect_sampled[i].dst);
    EXPECT_EQ(sampled.walk_hops()[i].count, expect_sampled[i].count);
  }
}

TEST(Observability, WalkHopsReconcileWithTheTagBill) {
  // At K = 1 every delivered token message leaves one hop record, so the
  // congestion report's per-tag totals must equal the transport's own
  // congest_messages_by_tag bill for the walk-token tag (standard
  // bandwidth: one coalesced token message = one B-bit quantum).
  const Graph g = make_hypercube(6);
  ElectionParams p;
  p.seed = 27;
  TraceRecorder rec;
  p.trace = &rec;
  p.trace_walks = 1;
  const ElectionResult r = run_leader_election(g, p);
  ASSERT_TRUE(r.success());
  const CongestionReport report = analyze_congestion(rec.walk_hops());
  ASSERT_EQ(report.messages_by_tag.size(), 1u);
  EXPECT_EQ(report.messages_by_tag.at(kTagWalkToken),
            r.totals.congest_messages_by_tag[kTagWalkToken]);
  EXPECT_EQ(report.total_messages,
            r.totals.congest_messages_by_tag[kTagWalkToken]);
  // The report's shape is internally consistent.
  std::uint64_t msgs = 0;
  for (const RoundCongestion& rc : report.rounds) {
    msgs += rc.messages;
    EXPECT_GE(rc.messages, rc.busy_edges);
    EXPECT_GE(rc.walkers, rc.messages);  // every message moves >= 1 walker
    EXPECT_LE(rc.max_edge_messages, rc.messages);
    EXPECT_LE(rc.max_edge_walkers, rc.walkers);
  }
  EXPECT_EQ(msgs, report.total_messages);

  // Per-walk summaries cover every hop exactly once.
  const std::vector<WalkSummary> walks = summarize_walks(rec.walk_hops());
  std::uint64_t walk_hops = 0;
  for (const WalkSummary& w : walks) {
    walk_hops += w.hops;
    EXPECT_LE(w.first_round, w.last_round);
    EXPECT_GE(w.walkers, w.hops);
    EXPECT_LE(w.unique_nodes, g.node_count());
  }
  EXPECT_EQ(walk_hops, rec.walk_hops().size());
}

TEST(Observability, PoolGaugesSurfaceInMetrics) {
  // The pool_stats() probe promoted into Metrics: every election run must
  // report a positive pool footprint and a high-water mark within it.
  const Graph g = make_hypercube(6);
  ElectionParams p;
  p.seed = 28;
  const ElectionResult r = run_leader_election(g, p);
  ASSERT_TRUE(r.success());
  EXPECT_GT(r.totals.pool_msg_slots, 0u);
  EXPECT_GT(r.totals.pool_msg_live_high, 0u);
  EXPECT_LE(r.totals.pool_msg_live_high, r.totals.pool_msg_slots);
  EXPECT_GT(r.totals.pool_id_blocks, 0u);
  EXPECT_GT(r.totals.pool_id_live_high, 0u);
}

TEST(Observability, BacklogReflectsCongestion) {
  // A clique election funnels many origins' tokens over shared lanes:
  // max_edge_backlog must register the queueing Lemma 12 pads for.
  const Graph g = make_clique(128);
  ElectionParams p;
  p.seed = 25;
  const ElectionResult r = run_leader_election(g, p);
  ASSERT_TRUE(r.success());
  EXPECT_GT(r.totals.max_edge_backlog, 1u);
}

}  // namespace
}  // namespace wcle
