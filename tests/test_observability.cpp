// Observability invariants: the per-tag CONGEST message breakdown must
// partition the totals, and each protocol stage must show up under the tags
// the walk engine owns — this is what makes the bench cost attributions
// trustworthy.
#include <gtest/gtest.h>

#include <numeric>

#include "wcle/core/leader_election.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/rw/walk_engine.hpp"
#include "wcle/sim/network.hpp"

namespace wcle {
namespace {

TEST(Observability, TagBreakdownPartitionsTotals) {
  const Graph g = make_hypercube(6);
  ElectionParams p;
  p.seed = 21;
  const ElectionResult r = run_leader_election(g, p);
  ASSERT_TRUE(r.success());
  const std::uint64_t tag_sum =
      std::accumulate(r.totals.congest_messages_by_tag.begin(),
                      r.totals.congest_messages_by_tag.end(), std::uint64_t{0});
  EXPECT_EQ(tag_sum, r.totals.congest_messages);
}

TEST(Observability, ElectionUsesExactlyTheWalkEngineTags) {
  const Graph g = make_clique(64);
  ElectionParams p;
  p.seed = 22;
  const ElectionResult r = run_leader_election(g, p);
  ASSERT_TRUE(r.success());
  const auto& by_tag = r.totals.congest_messages_by_tag;
  // All four engine tags must be exercised by a successful election...
  EXPECT_GT(by_tag[kTagWalkToken], 0u);
  EXPECT_GT(by_tag[kTagReplyUp], 0u);
  EXPECT_GT(by_tag[kTagFloodDown], 0u);
  EXPECT_GT(by_tag[kTagUnicastUp], 0u);  // winner notifications to contenders
  // ...and nothing else may appear.
  for (std::size_t tag = 0; tag < by_tag.size(); ++tag) {
    if (WalkEngine::owns_tag(static_cast<std::uint8_t>(tag))) continue;
    EXPECT_EQ(by_tag[tag], 0u) << "unexpected tag " << tag;
  }
}

TEST(Observability, WalkTokensDominateReplyCostOnLowFanout) {
  // Rounds 1-3 retrace the trails, so reply+flood cost is within a small
  // multiple of the forward walk cost (the Lemma 12 accounting).
  const Graph g = make_torus(8, 8);
  ElectionParams p;
  p.seed = 23;
  const ElectionResult r = run_leader_election(g, p);
  ASSERT_TRUE(r.success());
  const auto& by_tag = r.totals.congest_messages_by_tag;
  const std::uint64_t walk = by_tag[kTagWalkToken];
  const std::uint64_t exchanges =
      by_tag[kTagReplyUp] + by_tag[kTagFloodDown] + by_tag[kTagUnicastUp];
  EXPECT_GT(walk, 0u);
  // Each phase retraces the trails ~4x (R1, R2, R3, winner), each message
  // fragmenting into O(log n) quanta for its id payload: exchanges stay
  // within 4 * O(log n) of the walk bill (here log2(64) = 6, measured ~21x).
  EXPECT_LT(exchanges, walk * 4 * 12);
}

TEST(Observability, PhaseMetricsRoundsArePositive) {
  const Graph g = make_hypercube(6);
  ElectionParams p;
  p.seed = 24;
  const ElectionResult r = run_leader_election(g, p);
  for (const PhaseStats& ps : r.phase_stats) {
    EXPECT_GT(ps.metrics.rounds, 0u);
    EXPECT_GT(ps.metrics.congest_messages, 0u);
    EXPECT_GE(ps.metrics.congest_messages, ps.metrics.logical_messages);
  }
}

TEST(Observability, BacklogReflectsCongestion) {
  // A clique election funnels many origins' tokens over shared lanes:
  // max_edge_backlog must register the queueing Lemma 12 pads for.
  const Graph g = make_clique(128);
  ElectionParams p;
  p.seed = 25;
  const ElectionResult r = run_leader_election(g, p);
  ASSERT_TRUE(r.success());
  EXPECT_GT(r.totals.max_edge_backlog, 1u);
}

}  // namespace
}  // namespace wcle
