#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "wcle/baselines/bfs_tree.hpp"
#include "wcle/baselines/candidate_flood.hpp"
#include "wcle/baselines/flood_max.hpp"
#include "wcle/baselines/known_tmix.hpp"
#include "wcle/baselines/push_pull.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/graph/spectral.hpp"

namespace wcle {
namespace {

// ---------------------------------------------------------------- FloodMax

TEST(FloodMax, AlwaysElectsExactlyOne) {
  for (std::uint64_t s = 1; s <= 5; ++s) {
    const FloodElectionResult r = run_flood_max(make_torus(8, 8), s);
    EXPECT_EQ(r.leaders.size(), 1u) << "seed " << s;
  }
}

TEST(FloodMax, MessagesAreOmegaM) {
  // Every edge carries at least the initial wave: >= 2m logical messages.
  const Graph g = make_hypercube(6);
  const FloodElectionResult r = run_flood_max(g, 3);
  EXPECT_GE(r.totals.logical_messages, 2 * g.edge_count());
}

TEST(FloodMax, RoundsScaleWithDiameter) {
  const FloodElectionResult ring = run_flood_max(make_ring(64), 1);
  const FloodElectionResult clique = run_flood_max(make_clique(64), 1);
  EXPECT_GT(ring.rounds, clique.rounds);
}

// ----------------------------------------------------------- CandidateFlood

TEST(CandidateFlood, ElectsUniqueLeaderWhp) {
  int ok = 0;
  for (std::uint64_t s = 1; s <= 10; ++s) {
    const CandidateFloodResult r = run_candidate_flood(make_torus(8, 8), s);
    if (r.success()) ++ok;
    EXPECT_LE(r.leaders.size(), 1u);
  }
  EXPECT_GE(ok, 9);
}

TEST(CandidateFlood, LeaderIsACandidate) {
  const CandidateFloodResult r = run_candidate_flood(make_clique(64), 2);
  ASSERT_TRUE(r.success());
  EXPECT_NE(
      std::find(r.candidates.begin(), r.candidates.end(), r.leaders[0]),
      r.candidates.end());
}

TEST(CandidateFlood, ZeroRateYieldsNoLeader) {
  const CandidateFloodResult r = run_candidate_flood(make_clique(16), 1, 0.0);
  EXPECT_TRUE(r.candidates.empty());
  EXPECT_TRUE(r.leaders.empty());
}

TEST(CandidateFlood, CheaperThanFloodMaxButStillOmegaM) {
  const Graph g = make_hypercube(7);
  const CandidateFloodResult c = run_candidate_flood(g, 4);
  const FloodElectionResult f = run_flood_max(g, 4);
  ASSERT_TRUE(c.success());
  EXPECT_LT(c.totals.logical_messages, f.totals.logical_messages);
  EXPECT_GE(c.totals.logical_messages, 2 * g.edge_count());
}

// -------------------------------------------------------------- KnownTmix

TEST(KnownTmix, ElectsWithCorrectTmix) {
  const Graph g = make_clique(128);
  const std::uint32_t tmix =
      static_cast<std::uint32_t>(mixing_time_exact(g, 1u << 16));
  ElectionParams p;
  int ok = 0;
  for (std::uint64_t s = 1; s <= 10; ++s) {
    p.seed = s;
    const KnownTmixResult r = run_known_tmix_election(g, 2 * tmix + 1, p);
    if (r.success()) ++ok;
    EXPECT_LE(r.leaders.size(), 1u);
  }
  EXPECT_GE(ok, 9);
}

TEST(KnownTmix, TooShortWalksRiskMultipleLeaders) {
  // With walk length 1 on a large torus, contenders far apart never become
  // adjacent, so several elect themselves: exactly the failure mode the
  // guess-and-double machinery exists to prevent.
  const Graph g = make_torus(16, 16);
  ElectionParams p;
  int multi = 0;
  for (std::uint64_t s = 1; s <= 10; ++s) {
    p.seed = s;
    const KnownTmixResult r = run_known_tmix_election(g, 1, p);
    if (r.leaders.size() > 1) ++multi;
  }
  EXPECT_GE(multi, 5);
}

TEST(KnownTmix, RejectsZeroLength) {
  ElectionParams p;
  EXPECT_THROW(run_known_tmix_election(make_clique(8), 0, p),
               std::invalid_argument);
}

// --------------------------------------------------------------- PushPull

TEST(PushPull, InformsEveryoneOnExpander) {
  Rng grng(5);
  const Graph g = make_random_regular(200, 6, grng);
  const BroadcastResult r = run_push_pull(g, {0}, 32, 1);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.informed, 200u);
}

TEST(PushPull, RoundsLogarithmicOnClique) {
  const Graph g = make_clique(256);
  const BroadcastResult r = run_push_pull(g, {0}, 32, 2);
  ASSERT_TRUE(r.complete);
  EXPECT_LE(r.rounds, 40u);  // O(log n) with generous constant
}

TEST(PushPull, SlowerOnPoorConductance) {
  const BroadcastResult fast = run_push_pull(make_clique(64), {0}, 32, 3);
  const BroadcastResult slow = run_push_pull(make_barbell(32), {0}, 32, 3);
  ASSERT_TRUE(fast.complete);
  ASSERT_TRUE(slow.complete);
  EXPECT_GT(slow.rounds, fast.rounds);
}

TEST(PushPull, MultipleSourcesAreFaster) {
  const Graph g = make_torus(10, 10);
  const BroadcastResult one = run_push_pull(g, {0}, 32, 4);
  const BroadcastResult many = run_push_pull(g, {0, 37, 55, 99}, 32, 4);
  ASSERT_TRUE(one.complete);
  ASSERT_TRUE(many.complete);
  EXPECT_LE(many.rounds, one.rounds);
}

TEST(PushPull, RespectsMaxRounds) {
  const BroadcastResult r = run_push_pull(make_ring(64), {0}, 32, 5, 2);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.rounds, 2u);
}

TEST(PushPull, ThrowsWithoutSource) {
  EXPECT_THROW(run_push_pull(make_ring(8), {}, 32, 1), std::invalid_argument);
}

// ---------------------------------------------------------------- BfsTree

TEST(BfsTree, SpansEveryNode) {
  Rng grng(7);
  const Graph g = make_connected_gnp(60, 0.1, grng);
  const BfsTreeResult r = run_bfs_tree(g, 0);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.tree_nodes, 60u);
}

TEST(BfsTree, ParentPortsFormTree) {
  const Graph g = make_torus(6, 6);
  const BfsTreeResult r = run_bfs_tree(g, 5);
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(r.parent_port[5], BfsTreeResult::kNoParent);
  // Follow parents to the root from every node; no cycles, bounded length.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    NodeId cur = v;
    int hops = 0;
    while (cur != 5) {
      ASSERT_NE(r.parent_port[cur], BfsTreeResult::kNoParent);
      cur = g.neighbor(cur, r.parent_port[cur]);
      ASSERT_LE(++hops, 36);
    }
  }
}

TEST(BfsTree, DepthMatchesEccentricity) {
  const Graph g = make_ring(12);
  const BfsTreeResult r = run_bfs_tree(g, 0);
  EXPECT_EQ(r.depth, 6u);
}

TEST(BfsTree, MessagesThetaM) {
  const Graph g = make_hypercube(6);
  const BfsTreeResult r = run_bfs_tree(g, 0);
  // Every node announces on degree-1 ports (root on all): ~2m total.
  EXPECT_GE(r.totals.logical_messages, g.edge_count());
  EXPECT_LE(r.totals.logical_messages, 2 * g.edge_count() + g.node_count());
}

TEST(BfsTree, RejectsBadRoot) {
  EXPECT_THROW(run_bfs_tree(make_ring(8), 8), std::invalid_argument);
}

}  // namespace
}  // namespace wcle
