#include "wcle/rw/walk_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "wcle/graph/generators.hpp"
#include "wcle/sim/network.hpp"

namespace wcle {
namespace {

struct Harness {
  Graph g;
  Network net;
  Rng rng;
  WalkEngine engine;

  explicit Harness(Graph graph, std::uint64_t seed = 5)
      : g(std::move(graph)),
        net(g, CongestConfig::standard(g.node_count())),
        rng(seed),
        engine(g, net, rng) {}

  /// Pumps the network to idle, collecting all surfaced events.
  std::vector<WalkEvent> pump(std::vector<WalkEvent> initial = {}) {
    std::vector<WalkEvent> all = std::move(initial);
    net.run_until_idle([&](const Delivery& d) {
      for (WalkEvent& ev : engine.handle(d)) all.push_back(std::move(ev));
    });
    return all;
  }

  std::uint64_t total_registered(NodeId origin) {
    std::uint64_t total = 0;
    for (const NodeId p : engine.proxy_nodes(origin)) {
      const auto& regs = engine.registrations(p);
      total += regs.at(origin);
    }
    return total;
  }
};

TEST(WalkEngine, UnitConservation) {
  Harness h(make_torus(5, 5));
  h.engine.run_walk_stage({{7, 100, 6}});
  EXPECT_TRUE(h.net.idle());
  EXPECT_EQ(h.total_registered(7), 100u);
}

TEST(WalkEngine, LengthOneEndsAtSelfOrNeighbors) {
  Harness h(make_ring(8));
  h.engine.run_walk_stage({{2, 50, 1}});
  std::set<NodeId> allowed{2};
  for (NodeId v : h.g.neighbors(2)) allowed.insert(v);
  for (const NodeId p : h.engine.proxy_nodes(2))
    EXPECT_TRUE(allowed.count(p)) << "proxy " << p;
  EXPECT_EQ(h.total_registered(2), 50u);
}

TEST(WalkEngine, LazyWalkStaysWithAboutHalf) {
  // With length 1, ~half the tokens stay home.
  Harness h(make_clique(16));
  h.engine.run_walk_stage({{0, 10000, 1}});
  const auto& regs = h.engine.registrations(0);
  const auto it = regs.find(0);
  ASSERT_NE(it, regs.end());
  EXPECT_NEAR(static_cast<double>(it->second), 5000.0, 300.0);
}

TEST(WalkEngine, MultipleOriginsConserveIndependently) {
  Harness h(make_hypercube(5));
  h.engine.run_walk_stage({{0, 40, 4}, {9, 70, 4}, {31, 25, 4}});
  EXPECT_EQ(h.total_registered(0), 40u);
  EXPECT_EQ(h.total_registered(9), 70u);
  EXPECT_EQ(h.total_registered(31), 25u);
}

TEST(WalkEngine, RewalkingClearsOldRegistrations) {
  Harness h(make_torus(4, 4));
  h.engine.run_walk_stage({{3, 30, 2}});
  const std::uint64_t first = h.total_registered(3);
  h.engine.run_walk_stage({{3, 30, 4}});
  EXPECT_EQ(h.total_registered(3), 30u);
  EXPECT_EQ(first, 30u);
  // All registrations are from the second stage: walk counts sum to 30, not 60.
  std::uint64_t sum = 0;
  for (NodeId v = 0; v < h.g.node_count(); ++v) {
    const auto& regs = h.engine.registrations(v);
    const auto it = regs.find(3);
    if (it != regs.end()) sum += it->second;
  }
  EXPECT_EQ(sum, 30u);
}

TEST(WalkEngine, OtherOriginsRegistrationsPersist) {
  Harness h(make_torus(4, 4));
  h.engine.run_walk_stage({{1, 20, 2}, {2, 20, 2}});
  h.engine.run_walk_stage({{1, 20, 4}});  // origin 2 inactive: keeps proxies
  EXPECT_EQ(h.total_registered(2), 20u);
}

TEST(WalkEngine, ConvergecastCountsProxiesExactly) {
  Harness h(make_torus(6, 6));
  h.engine.run_walk_stage({{5, 64, 5}});
  const std::uint64_t expect_nodes = h.engine.proxy_nodes(5).size();
  std::uint64_t expect_distinct = 0;
  for (const NodeId p : h.engine.proxy_nodes(5))
    if (h.engine.registrations(p).at(5) == 1) ++expect_distinct;

  const ProxyPayloadFn payload = [&](NodeId, NodeId, std::uint64_t units) {
    ReplyPayload r;
    r.proxy_nodes = 1;
    r.distinct_proxies = (units == 1) ? 1 : 0;
    return r;
  };
  auto events = h.pump(h.engine.begin_convergecast({5}, payload));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, WalkEvent::Kind::kConvergecastDone);
  EXPECT_EQ(events[0].origin, 5u);
  EXPECT_EQ(events[0].reply.proxy_nodes, expect_nodes);
  EXPECT_EQ(events[0].reply.distinct_proxies, expect_distinct);
}

TEST(WalkEngine, ConvergecastUnionsIds) {
  Harness h(make_clique(10));
  h.engine.run_walk_stage({{0, 30, 3}});
  const ProxyPayloadFn payload = [&](NodeId proxy, NodeId,
                                     std::uint64_t) {
    ReplyPayload r;
    r.add_id(1000 + proxy);  // unique per proxy
    return r;
  };
  auto events = h.pump(h.engine.begin_convergecast({0}, payload));
  ASSERT_EQ(events.size(), 1u);
  std::set<std::uint64_t> expect;
  for (const NodeId p : h.engine.proxy_nodes(0)) expect.insert(1000 + p);
  const std::set<std::uint64_t> got(events[0].reply.ids.begin(),
                                    events[0].reply.ids.end());
  EXPECT_EQ(got, expect);
}

TEST(WalkEngine, ConvergecastForAllOriginsAtOnce) {
  Harness h(make_hypercube(4));
  h.engine.run_walk_stage({{0, 25, 3}, {7, 25, 3}, {12, 25, 3}});
  const ProxyPayloadFn payload = [&](NodeId, NodeId, std::uint64_t) {
    ReplyPayload r;
    r.proxy_nodes = 1;
    return r;
  };
  auto events = h.pump(h.engine.begin_convergecast({0, 7, 12}, payload));
  EXPECT_EQ(events.size(), 3u);
  std::set<NodeId> origins;
  for (const auto& ev : events) origins.insert(ev.origin);
  EXPECT_EQ(origins, (std::set<NodeId>{0, 7, 12}));
}

TEST(WalkEngine, FloodReachesEveryProxy) {
  Harness h(make_torus(5, 5));
  h.engine.run_walk_stage({{4, 48, 6}});
  auto events = h.pump(h.engine.begin_flood_down(4, {99}));
  std::set<NodeId> reached;
  for (const auto& ev : events) {
    EXPECT_EQ(ev.kind, WalkEvent::Kind::kFloodAtProxy);
    EXPECT_EQ(ev.origin, 4u);
    ASSERT_EQ(ev.ids.size(), 1u);
    EXPECT_EQ(ev.ids[0], 99u);
    reached.insert(ev.node);
  }
  const std::set<NodeId> expect(h.engine.proxy_nodes(4).begin(),
                                h.engine.proxy_nodes(4).end());
  EXPECT_EQ(reached, expect);
}

TEST(WalkEngine, SecondFloodGenerationTraversesAgain) {
  Harness h(make_clique(8));
  h.engine.run_walk_stage({{1, 20, 2}});
  const auto first = h.pump(h.engine.begin_flood_down(1, {7}));
  const auto second = h.pump(h.engine.begin_flood_down(1, {8}));
  EXPECT_EQ(first.size(), second.size());
  ASSERT_FALSE(second.empty());
  EXPECT_EQ(second[0].ids[0], 8u);
}

TEST(WalkEngine, UnicastReachesOrigin) {
  Harness h(make_torus(5, 5));
  h.engine.run_walk_stage({{11, 32, 5}});
  ASSERT_FALSE(h.engine.proxy_nodes(11).empty());
  const NodeId some_proxy = h.engine.proxy_nodes(11).front();
  auto events = h.pump(h.engine.begin_unicast_up(some_proxy, 11, {123}));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, WalkEvent::Kind::kUnicastAtOrigin);
  EXPECT_EQ(events[0].node, 11u);
  EXPECT_EQ(events[0].origin, 11u);
  EXPECT_EQ(events[0].ids, (std::vector<std::uint64_t>{123}));
}

TEST(WalkEngine, UnicastFromEveryProxyWorks) {
  Harness h(make_hypercube(4));
  h.engine.run_walk_stage({{6, 40, 4}});
  for (const NodeId p : h.engine.proxy_nodes(6)) {
    auto events = h.pump(h.engine.begin_unicast_up(p, 6, {1}));
    ASSERT_EQ(events.size(), 1u) << "proxy " << p;
    EXPECT_EQ(events[0].node, 6u);
  }
}

TEST(WalkEngine, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    Harness h(make_torus(4, 4), seed);
    h.engine.run_walk_stage({{0, 64, 4}});
    std::vector<std::pair<NodeId, std::uint64_t>> regs;
    for (const NodeId p : h.engine.proxy_nodes(0))
      regs.emplace_back(p, h.engine.registrations(p).at(0));
    std::sort(regs.begin(), regs.end());
    return std::pair{regs, h.net.metrics().congest_messages};
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(WalkEngine, TokenCoalescingBeatsPerWalkCost) {
  // Lemma 12's device: parallel walks of one origin travel as counts, so the
  // per-level cost is bounded by the edges touched, not the walk count.
  // 2048 walks x 8 steps would move ~8192 per-walk tokens (half are lazy);
  // coalesced cost must be far below that and below edges x levels.
  Harness h(make_clique(16), 9);
  h.engine.run_walk_stage({{0, 2048, 8}});
  const std::uint64_t bulk = h.net.metrics().congest_messages;
  EXPECT_LT(bulk, 4096u);             // < half the naive token moves
  EXPECT_LE(bulk, 16u * 15u * 10u);   // <= directed edges x (levels + slack)
  EXPECT_EQ(h.total_registered(0), 2048u);
}

TEST(WalkEngine, LongWalkOnRingCompletes) {
  Harness h(make_ring(16));
  h.engine.run_walk_stage({{0, 10, 64}});
  EXPECT_EQ(h.total_registered(0), 10u);
  // Long walks mix: proxies spread beyond the immediate neighborhood.
  EXPECT_GE(h.engine.proxy_nodes(0).size(), 3u);
}

TEST(WalkEngine, RejectsZeroCountOrLength) {
  Harness h(make_ring(8));
  EXPECT_THROW(h.engine.run_walk_stage({{0, 0, 4}}), std::invalid_argument);
  EXPECT_THROW(h.engine.run_walk_stage({{0, 4, 0}}), std::invalid_argument);
}

TEST(WalkEngine, ProxyDistributionApproachesStationary) {
  // After >= tmix steps on a regular graph, endpoints are near uniform:
  // chi-square-lite check that no node hoards walks.
  Harness h(make_hypercube(5));
  const std::uint64_t walks = 3200;
  h.engine.run_walk_stage({{0, walks, 40}});
  const double expect = static_cast<double>(walks) / 32.0;
  for (NodeId v = 0; v < 32; ++v) {
    const auto& regs = h.engine.registrations(v);
    const auto it = regs.find(0);
    const double got = it == regs.end() ? 0.0 : static_cast<double>(it->second);
    EXPECT_NEAR(got, expect, 6 * std::sqrt(expect)) << "node " << v;
  }
}

}  // namespace
}  // namespace wcle
