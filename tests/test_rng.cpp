#include "wcle/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace wcle {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  std::vector<int> hist(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++hist[rng.next_below(kBuckets)];
  const double expected = kSamples / static_cast<double>(kBuckets);
  for (int h : hist) EXPECT_NEAR(h, expected, 5 * std::sqrt(expected));
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.next_in(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    saw_lo |= v == 5;
    saw_hi |= v == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
    EXPECT_FALSE(rng.next_bool(-0.5));
    EXPECT_TRUE(rng.next_bool(1.5));
  }
}

TEST(Rng, BernoulliMeanMatchesP) {
  Rng rng(23);
  const double p = 0.3;
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) hits += rng.next_bool(p);
  EXPECT_NEAR(hits / static_cast<double>(trials), p, 0.01);
}

TEST(Rng, BinomialBoundaryCases) {
  Rng rng(29);
  EXPECT_EQ(rng.next_binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.next_binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.next_binomial(100, 1.0), 100u);
}

class RngBinomialParam
    : public ::testing::TestWithParam<std::pair<std::uint64_t, double>> {};

TEST_P(RngBinomialParam, MeanAndRangeMatch) {
  const auto [n, p] = GetParam();
  Rng rng(31 + n);
  const int trials = 4000;
  double sum = 0.0;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t k = rng.next_binomial(n, p);
    ASSERT_LE(k, n);
    sum += static_cast<double>(k);
  }
  const double mean = sum / trials;
  const double expect = static_cast<double>(n) * p;
  const double sigma = std::sqrt(expect * (1 - p));
  EXPECT_NEAR(mean, expect, 5 * sigma / std::sqrt(trials) + 0.3);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RngBinomialParam,
    ::testing::Values(std::pair<std::uint64_t, double>{1, 0.5},
                      std::pair<std::uint64_t, double>{10, 0.5},
                      std::pair<std::uint64_t, double>{10, 0.05},
                      std::pair<std::uint64_t, double>{100, 0.9},
                      std::pair<std::uint64_t, double>{1000, 0.5},
                      std::pair<std::uint64_t, double>{100000, 0.125},
                      std::pair<std::uint64_t, double>{1000000, 0.01}));

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(101);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (child1.next() == child2.next()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(37);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Rng, ShuffleIsUnbiasedOnFirstPosition) {
  Rng rng(41);
  std::vector<int> counts(5, 0);
  for (int t = 0; t < 50000; ++t) {
    std::vector<int> v{0, 1, 2, 3, 4};
    rng.shuffle(v);
    ++counts[v[0]];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(SplitMix, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), first);
  EXPECT_NE(splitmix64(s2), first);  // state advanced
}

}  // namespace
}  // namespace wcle
