#include "wcle/graph/generators.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wcle {
namespace {

TEST(Generators, Ring) {
  const Graph g = make_ring(10);
  EXPECT_EQ(g.node_count(), 10u);
  EXPECT_EQ(g.edge_count(), 10u);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_THROW(make_ring(2), std::invalid_argument);
}

TEST(Generators, Path) {
  const Graph g = make_path(6);
  EXPECT_EQ(g.edge_count(), 5u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(3), 2u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Generators, Clique) {
  const Graph g = make_clique(7);
  EXPECT_EQ(g.edge_count(), 21u);
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 6u);
}

TEST(Generators, HypercubeStructure) {
  const Graph g = make_hypercube(4);
  EXPECT_EQ(g.node_count(), 16u);
  EXPECT_EQ(g.edge_count(), 32u);  // n*d/2
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
  // Neighbors differ in exactly one bit.
  for (NodeId v = 0; v < 16; ++v)
    for (NodeId w : g.neighbors(v)) {
      const NodeId x = v ^ w;
      EXPECT_EQ(x & (x - 1), 0u);
      EXPECT_NE(x, 0u);
    }
  EXPECT_THROW(make_hypercube(0), std::invalid_argument);
  EXPECT_THROW(make_hypercube(31), std::invalid_argument);
}

TEST(Generators, Torus) {
  const Graph g = make_torus(4, 5);
  EXPECT_EQ(g.node_count(), 20u);
  EXPECT_EQ(g.edge_count(), 40u);
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Generators, Grid) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.edge_count(), 3u * 3 + 4u * 2);  // rows*(cols-1)+cols*(rows-1)
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior (row 1, col 1)
  EXPECT_TRUE(g.is_connected());
}

class RandomRegularParam
    : public ::testing::TestWithParam<std::pair<NodeId, std::uint32_t>> {};

TEST_P(RandomRegularParam, DegreesAndConnectivity) {
  const auto [n, d] = GetParam();
  Rng rng(1234 + n + d);
  const Graph g = make_random_regular(n, d, rng);
  EXPECT_EQ(g.node_count(), n);
  EXPECT_EQ(g.edge_count(), static_cast<std::uint64_t>(n) * d / 2);
  for (NodeId v = 0; v < n; ++v) ASSERT_EQ(g.degree(v), d);
  EXPECT_TRUE(g.is_connected());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomRegularParam,
    ::testing::Values(std::pair<NodeId, std::uint32_t>{10, 3},
                      std::pair<NodeId, std::uint32_t>{64, 4},
                      std::pair<NodeId, std::uint32_t>{101, 4},
                      std::pair<NodeId, std::uint32_t>{256, 8},
                      std::pair<NodeId, std::uint32_t>{1000, 6}));

TEST(Generators, RandomRegularRejectsBadArgs) {
  Rng rng(1);
  EXPECT_THROW(make_random_regular(5, 3, rng), std::invalid_argument);  // odd
  EXPECT_THROW(make_random_regular(4, 4, rng), std::invalid_argument);  // d>=n
  EXPECT_THROW(make_random_regular(4, 0, rng), std::invalid_argument);
}

TEST(Generators, RandomRegularVariesWithSeed) {
  Rng r1(1), r2(2);
  const Graph a = make_random_regular(50, 4, r1);
  const Graph b = make_random_regular(50, 4, r2);
  const std::vector<Edge> ea = a.edges(), eb = b.edges();
  std::set<std::pair<NodeId, NodeId>> sa, sb;
  for (const Edge& e : ea) sa.insert({std::min(e.a, e.b), std::max(e.a, e.b)});
  for (const Edge& e : eb) sb.insert({std::min(e.a, e.b), std::max(e.a, e.b)});
  EXPECT_NE(sa, sb);
}

TEST(Generators, ConnectedGnp) {
  Rng rng(3);
  const Graph g = make_connected_gnp(40, 0.2, rng);
  EXPECT_EQ(g.node_count(), 40u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Generators, BarbellShape) {
  const Graph g = make_barbell(5);
  EXPECT_EQ(g.node_count(), 10u);
  EXPECT_EQ(g.edge_count(), 2u * 10 + 1);  // two K5s + bridge
  EXPECT_TRUE(g.is_connected());
}

TEST(Generators, LollipopPairWithLongBridge) {
  const Graph g = make_lollipop_pair(4, 3);
  EXPECT_EQ(g.node_count(), 2u * 4 + 2);
  EXPECT_TRUE(g.is_connected());
  EXPECT_THROW(make_lollipop_pair(2, 1), std::invalid_argument);
  EXPECT_THROW(make_lollipop_pair(4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace wcle
