// Data-plane rebuild proof obligations:
//   1. Bit-identity against the PRE-refactor engine: a fixed-seed faulty
//      (e14-style) cell's binary trace, recorded before the pool/ring/flat
//      rebuild and checked into tests/golden/, must replay byte-identically
//      on the current engine. This pins the whole stack — graph build, walk
//      engine RNG draw order, transport service order, fault injection, and
//      serialization — to the pre-refactor execution.
//   2. Sampled tracing (--trace-every=K): every K-th round row is kept,
//      events survive untouched, replay still round-trips, and K = 1 is the
//      pre-sampling format.
//   3. replay --diff decodes the first differing record instead of leaving
//      only a byte offset.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "wcle/api/scenario.hpp"
#include "wcle/api/sweep.hpp"
#include "wcle/graph/families.hpp"
#include "wcle/sim/network.hpp"
#include "wcle/trace/reader.hpp"
#include "wcle/trace/recorder.hpp"
#include "wcle/api/replay.hpp"
#include "wcle/trace/writer.hpp"

namespace wcle {
namespace {

#ifndef WCLE_SOURCE_DIR
#define WCLE_SOURCE_DIR "."
#endif

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "wcle_dataplane_" + name;
}

TEST(DataPlaneGolden, PreRefactorTraceReplaysByteIdentically) {
  const std::string golden =
      std::string(WCLE_SOURCE_DIR) +
      "/tests/golden/e14_cell_pre_refactor.btrace";
  {
    std::ifstream probe(golden, std::ios::binary);
    ASSERT_TRUE(probe.is_open()) << "missing golden trace: " << golden;
  }
  const ReplayReport rep = verify_replay(golden, /*threads=*/1);
  EXPECT_TRUE(rep.ok) << rep.detail << "\n"
                      << "the data plane no longer reproduces the "
                         "pre-refactor execution bit-for-bit";
  EXPECT_EQ(rep.runs, 2u);
  EXPECT_EQ(rep.format, TraceFormat::kBinary);
}

TEST(DataPlaneGolden, PreObsE1TraceReplaysByteIdentically) {
  // Recorded at trace schema v1, before the wcle::obs layer landed: the
  // fault-free e1 slice must keep replaying byte-identically — walk-hop
  // tracing, pool gauges, and the schema v2 writer must all be invisible
  // when --trace-walks is off and the header says version 1.
  const std::string golden =
      std::string(WCLE_SOURCE_DIR) + "/tests/golden/e1_pre_obs.btrace";
  {
    std::ifstream probe(golden, std::ios::binary);
    ASSERT_TRUE(probe.is_open()) << "missing golden trace: " << golden;
  }
  const ReplayReport rep = verify_replay(golden, /*threads=*/1);
  EXPECT_TRUE(rep.ok) << rep.detail << "\n"
                      << "the obs layer perturbed the pre-obs execution "
                         "or the v1 trace encoding";
  EXPECT_EQ(rep.runs, 4u);
  EXPECT_EQ(rep.format, TraceFormat::kBinary);
}

TEST(DataPlaneSampling, RecorderKeepsEveryKthRowAndAllEvents) {
  // Identical runs, traced at K = 1 and K = 4: the sampled row set must be
  // exactly the K-grid restriction of the full one, events identical, and
  // the total quanta bill unchanged.
  const ExperimentSpec spec = parse_spec(
      "algo=election family=expander n=32 trials=1 base-seed=7 "
      "max-length=64");
  const auto record = [&](std::uint32_t every) {
    std::ostringstream buf;
    const auto writer = make_trace_writer(TraceFormat::kJsonl, buf);
    ExperimentSpec s = spec;
    if (every > 1) s.knobs["trace-every"] = {std::to_string(every)};
    writer->header({kTraceVersion, "test", s.to_string()});
    run_sweep(s, /*sinks=*/{}, /*threads=*/1, writer.get());
    return parse_trace(buf.str());
  };
  const TraceFileData full = record(1);
  const TraceFileData sampled = record(4);
  ASSERT_EQ(full.runs.size(), 1u);
  ASSERT_EQ(sampled.runs.size(), 1u);

  std::vector<TraceRound> expect;
  for (const TraceRound& r : full.runs[0].rounds)
    if (r.round % 4 == 0) expect.push_back(r);
  ASSERT_EQ(sampled.runs[0].rounds.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(sampled.runs[0].rounds[i].round, expect[i].round);
    EXPECT_EQ(sampled.runs[0].rounds[i].quanta, expect[i].quanta);
    EXPECT_EQ(sampled.runs[0].rounds[i].sends, expect[i].sends);
    EXPECT_EQ(sampled.runs[0].rounds[i].backlog, expect[i].backlog);
  }
  // Events are never sampled away.
  ASSERT_EQ(sampled.runs[0].events.size(), full.runs[0].events.size());
  for (std::size_t i = 0; i < full.runs[0].events.size(); ++i) {
    EXPECT_EQ(sampled.runs[0].events[i].round, full.runs[0].events[i].round);
    EXPECT_EQ(sampled.runs[0].events[i].kind, full.runs[0].events[i].kind);
  }
  EXPECT_LT(sampled.runs[0].rounds.size(), full.runs[0].rounds.size());
}

TEST(DataPlaneSampling, SampledTraceStillReplaysByteIdentically) {
  // The trace-every knob rides in the header spec, so replay re-executes
  // with the same sampling and the bytes round-trip.
  const ExperimentSpec spec = parse_spec(
      "algo=flood_max family=clique n=16 trials=2 base-seed=50 "
      "trace-every=3");
  const std::string path = temp_path("sampled.btrace");
  {
    std::ofstream file(path, std::ios::binary);
    ASSERT_TRUE(file.is_open());
    const auto writer = make_trace_writer(TraceFormat::kBinary, file);
    writer->header({kTraceVersion, "sweep", spec.to_string()});
    run_sweep(spec, /*sinks=*/{}, /*threads=*/1, writer.get());
  }
  const ReplayReport rep = verify_replay(path, /*threads=*/2);
  EXPECT_TRUE(rep.ok) << rep.detail;
  std::remove(path.c_str());
}

TEST(DataPlaneDiff, ReplayDiffDecodesTheFirstDifferingRecord) {
  const ExperimentSpec spec = parse_spec(
      "algo=flood_max family=clique n=16 trials=1 base-seed=50");
  const std::string path = temp_path("diff.jsonl");
  {
    std::ofstream file(path, std::ios::binary);
    ASSERT_TRUE(file.is_open());
    const auto writer = make_trace_writer(TraceFormat::kJsonl, file);
    writer->header({kTraceVersion, "trials", spec.to_string()});
    run_sweep(spec, /*sinks=*/{}, /*threads=*/1, writer.get());
  }
  // Tamper with a round row's quanta digit: --diff must name the record and
  // decode both sides rather than only reporting a byte offset.
  std::string bytes = read_file_bytes(path);
  const std::size_t at = bytes.find("\"quanta\":");
  ASSERT_NE(at, std::string::npos);
  const std::size_t digit = at + 9;
  bytes[digit] = bytes[digit] == '1' ? '2' : '1';
  {
    std::ofstream file(path, std::ios::binary);
    file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const ReplayReport rep = verify_replay(path, /*threads=*/1, /*diff=*/true);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.diff.find("first differing record"), std::string::npos)
      << rep.diff;
  EXPECT_NE(rep.diff.find("round row"), std::string::npos) << rep.diff;
  EXPECT_NE(rep.diff.find("original:"), std::string::npos) << rep.diff;
  EXPECT_NE(rep.diff.find("regenerated:"), std::string::npos) << rep.diff;
  std::remove(path.c_str());
}

TEST(DataPlaneDiff, DiffIsEmptyOnByteIdenticalTraces) {
  const ExperimentSpec spec = parse_spec(
      "algo=flood_max family=clique n=16 trials=1 base-seed=50");
  const std::string path = temp_path("clean.jsonl");
  {
    std::ofstream file(path, std::ios::binary);
    ASSERT_TRUE(file.is_open());
    const auto writer = make_trace_writer(TraceFormat::kJsonl, file);
    writer->header({kTraceVersion, "trials", spec.to_string()});
    run_sweep(spec, /*sinks=*/{}, /*threads=*/1, writer.get());
  }
  const ReplayReport rep = verify_replay(path, /*threads=*/1, /*diff=*/true);
  EXPECT_TRUE(rep.ok) << rep.detail;
  EXPECT_TRUE(rep.diff.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wcle
