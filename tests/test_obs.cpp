// wcle::obs unit tests: the stat registry's update-path semantics, round-
// denominated scoped phase timers, congestion aggregation over hand-built
// hop streams, the Lemma 12 envelope, per-walk summaries, and the Chrome
// trace-event exporter's output shape.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "wcle/graph/families.hpp"
#include "wcle/obs/congestion.hpp"
#include "wcle/obs/perfetto.hpp"
#include "wcle/obs/registry.hpp"
#include "wcle/obs/walks.hpp"
#include "wcle/trace/reader.hpp"

namespace wcle {
namespace {

TraceWalkHop hop(std::uint64_t round, std::uint32_t origin, std::uint32_t src,
                 std::uint32_t dst, std::uint32_t count) {
  return TraceWalkHop{round, origin, src, dst, count, 0x10};
}

TEST(ObsRegistry, CountersGaugesAndHistograms) {
  StatRegistry reg;
  const std::size_t sends = reg.counter("sends");
  const std::size_t peak = reg.gauge("peak_backlog");
  const std::size_t loads = reg.histogram("edge_load");

  reg.add(sends, 3);
  reg.add(sends, 4);
  EXPECT_EQ(reg.counter_value(sends), 7u);

  reg.set_max(peak, 5);
  reg.set_max(peak, 2);  // lower value must not regress the high-water mark
  reg.set_max(peak, 9);
  EXPECT_EQ(reg.gauge_value(peak), 9u);

  reg.observe(loads, 0);
  reg.observe(loads, 1);
  reg.observe(loads, 5);
  reg.observe(loads, 1024);
  const std::vector<HistogramSnapshot> hists = reg.histograms();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].name, "edge_load");
  EXPECT_EQ(hists[0].count, 4u);
  EXPECT_EQ(hists[0].sum, 1030u);
  EXPECT_EQ(hists[0].min, 0u);
  EXPECT_EQ(hists[0].max, 1024u);
  ASSERT_EQ(hists[0].buckets.size(), 65u);
  EXPECT_EQ(hists[0].buckets[0], 1u);   // value 0
  EXPECT_EQ(hists[0].buckets[1], 1u);   // value 1 (bit width 1)
  EXPECT_EQ(hists[0].buckets[3], 1u);   // value 5 (bit width 3)
  EXPECT_EQ(hists[0].buckets[11], 1u);  // value 1024 (bit width 11)

  reg.reset();
  EXPECT_EQ(reg.counter_value(sends), 0u);
  EXPECT_EQ(reg.gauge_value(peak), 0u);
  EXPECT_EQ(reg.histograms()[0].count, 0u);
}

TEST(ObsRegistry, ScopedPhaseTimerMeasuresRounds) {
  StatRegistry reg;
  const std::size_t durations = reg.histogram("phase_rounds");
  std::uint64_t round = 10;
  {
    ScopedPhaseTimer timer(reg, durations, round);
    round = 17;  // the protocol advances 7 rounds inside the phase
  }
  const HistogramSnapshot h = reg.histograms()[0];
  EXPECT_EQ(h.count, 1u);
  EXPECT_EQ(h.sum, 7u);
  EXPECT_EQ(h.max, 7u);
}

TEST(ObsCongestion, AggregatesPerRoundEdgeLoads) {
  // Round 1: edge 0->1 carries two messages (3 + 4 walkers), edge 2->3 one.
  // Round 4: one message. Hop streams arrive round-ordered, as recorded.
  const std::vector<TraceWalkHop> hops = {
      hop(1, 8, 0, 1, 3), hop(1, 12, 0, 1, 4), hop(1, 8, 2, 3, 1),
      hop(4, 12, 1, 0, 2)};
  const CongestionReport report = analyze_congestion(hops);
  ASSERT_EQ(report.rounds.size(), 2u);
  EXPECT_EQ(report.rounds[0].round, 1u);
  EXPECT_EQ(report.rounds[0].messages, 3u);
  EXPECT_EQ(report.rounds[0].walkers, 8u);
  EXPECT_EQ(report.rounds[0].busy_edges, 2u);
  EXPECT_EQ(report.rounds[0].max_edge_messages, 2u);  // edge 0->1
  EXPECT_EQ(report.rounds[0].max_edge_walkers, 7u);   // 3 + 4
  EXPECT_EQ(report.rounds[1].round, 4u);
  EXPECT_EQ(report.rounds[1].messages, 1u);
  EXPECT_EQ(report.total_messages, 4u);
  EXPECT_EQ(report.total_walkers, 10u);
  EXPECT_EQ(report.max_edge_messages, 2u);
  EXPECT_EQ(report.max_edge_walkers, 7u);
  EXPECT_EQ(report.messages_by_tag.at(0x10), 4u);
  EXPECT_EQ(report.round_max_messages.count, 2u);
  EXPECT_EQ(report.round_max_messages.max, 2.0);
}

TEST(ObsCongestion, Lemma12EnvelopeShape) {
  EXPECT_EQ(lemma12_bound(0, 0.5), 0.0);
  EXPECT_EQ(lemma12_bound(128, 0.0), 0.0);
  // sqrt(n/phi) * log2(n)^2: grows with n, shrinks as phi improves.
  EXPECT_GT(lemma12_bound(1024, 0.25), lemma12_bound(256, 0.25));
  EXPECT_GT(lemma12_bound(256, 0.1), lemma12_bound(256, 0.4));
  const double expect = 16.0 * 64.0;  // sqrt(256/1) * 8^2
  EXPECT_NEAR(lemma12_bound(256, 1.0), expect, 1e-9);

  const Graph g = make_family("expander", 64, 1);
  const Lemma12Envelope env = lemma12_envelope(g);
  EXPECT_GT(env.phi_lower, 0.0);
  EXPECT_GE(env.phi_upper, env.phi_lower);
  EXPECT_EQ(env.phi, env.phi_upper);
  EXPECT_GT(env.bound, 0.0);
}

TEST(ObsWalks, PerWalkSummariesGroupByOrigin) {
  const std::vector<TraceWalkHop> hops = {
      hop(1, 4, 0, 1, 2), hop(1, 6, 5, 6, 1), hop(2, 4, 1, 2, 3),
      hop(5, 4, 2, 1, 1), hop(6, 4, 1, 2, 1)};
  const std::vector<WalkSummary> walks = summarize_walks(hops);
  ASSERT_EQ(walks.size(), 2u);
  EXPECT_EQ(walks[0].origin, 4u);
  EXPECT_EQ(walks[0].hops, 4u);
  EXPECT_EQ(walks[0].walkers, 7u);
  EXPECT_EQ(walks[0].first_round, 1u);
  EXPECT_EQ(walks[0].last_round, 6u);
  EXPECT_EQ(walks[0].max_count, 3u);
  EXPECT_EQ(walks[0].unique_edges, 3u);  // 0->1, 1->2 (twice), 2->1
  EXPECT_EQ(walks[0].unique_nodes, 2u);  // dst endpoints {1, 2}
  EXPECT_EQ(walks[1].origin, 6u);
  EXPECT_EQ(walks[1].hops, 1u);
}

TEST(ObsPerfetto, ChromeTraceEventShape) {
  TraceFileData data;
  data.header = {kTraceVersion, "run", "name=x algo=election"};
  TraceRunData run;
  run.meta.run = 0;
  run.meta.n = 8;
  run.meta.algorithm = "election";
  run.meta.family = "expander";
  for (std::uint64_t round = 1; round <= 3; ++round) {
    TraceRound r;
    r.round = round;
    r.quanta = 2;
    run.rounds.push_back(r);
  }
  TraceEvent phase1;
  phase1.round = 1;
  phase1.kind = TraceEventKind::kPhase;
  phase1.label = "phase";
  phase1.a = 1;
  TraceEvent phase2 = phase1;
  phase2.round = 2;
  phase2.a = 2;
  TraceEvent crash;
  crash.round = 2;
  crash.kind = TraceEventKind::kCrash;
  crash.a = 5;
  run.events = {phase1, phase2, crash};
  run.hops = {hop(1, 0, 0, 1, 2), hop(2, 0, 1, 2, 2)};
  data.runs.push_back(run);

  std::ostringstream out;
  write_chrome_trace(out, data);
  const std::string json = out.str();
  EXPECT_EQ(json.find("{\"displayTimeUnit\""), 0u);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  // Phase 1 closes where phase 2 opens: a duration slice of 1 round.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1"), std::string::npos);
  // The crash renders as an instant, the rows as counters, the hop stream
  // as the walk_load counter track.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"crash\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"quanta\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"walk_load\""), std::string::npos);
  // Balanced object: ends with the closed array and root brace.
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

}  // namespace
}  // namespace wcle
