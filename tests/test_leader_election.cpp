#include "wcle/core/leader_election.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "wcle/graph/generators.hpp"
#include "wcle/graph/spectral.hpp"

namespace wcle {
namespace {

ElectionParams params_with_seed(std::uint64_t seed) {
  ElectionParams p;
  p.seed = seed;
  return p;
}

TEST(LeaderElection, ElectsExactlyOneLeaderOnClique) {
  const Graph g = make_clique(128);
  int ok = 0;
  for (std::uint64_t s = 1; s <= 10; ++s) {
    const ElectionResult r = run_leader_election(g, params_with_seed(s));
    if (r.success()) ++ok;
    EXPECT_LE(r.leaders.size(), 1u) << "seed " << s;
  }
  EXPECT_GE(ok, 9);
}

TEST(LeaderElection, ElectsOnHypercube) {
  const Graph g = make_hypercube(7);  // 128 nodes
  int ok = 0;
  for (std::uint64_t s = 1; s <= 10; ++s) {
    const ElectionResult r = run_leader_election(g, params_with_seed(s));
    if (r.success()) ++ok;
    EXPECT_LE(r.leaders.size(), 1u);
  }
  EXPECT_GE(ok, 9);
}

TEST(LeaderElection, ElectsOnExpander) {
  Rng grng(77);
  const Graph g = make_random_regular(200, 6, grng);
  int ok = 0;
  for (std::uint64_t s = 1; s <= 10; ++s) {
    const ElectionResult r = run_leader_election(g, params_with_seed(s));
    if (r.success()) ++ok;
  }
  EXPECT_GE(ok, 9);
}

TEST(LeaderElection, ElectsOnTorus) {
  const Graph g = make_torus(12, 12);
  const ElectionResult r = run_leader_election(g, params_with_seed(3));
  EXPECT_TRUE(r.success());
}

TEST(LeaderElection, LeaderIsAContender) {
  const Graph g = make_clique(96);
  const ElectionResult r = run_leader_election(g, params_with_seed(2));
  ASSERT_TRUE(r.success());
  EXPECT_NE(std::find(r.contenders.begin(), r.contenders.end(), r.leaders[0]),
            r.contenders.end());
  EXPECT_NE(r.leader_random_id, 0u);
}

TEST(LeaderElection, DeterministicForFixedSeed) {
  const Graph g = make_hypercube(6);
  const ElectionResult a = run_leader_election(g, params_with_seed(9));
  const ElectionResult b = run_leader_election(g, params_with_seed(9));
  EXPECT_EQ(a.leaders, b.leaders);
  EXPECT_EQ(a.totals.congest_messages, b.totals.congest_messages);
  EXPECT_EQ(a.totals.rounds, b.totals.rounds);
  EXPECT_EQ(a.phases, b.phases);
}

TEST(LeaderElection, SeedsChangeOutcome) {
  const Graph g = make_hypercube(6);
  const ElectionResult a = run_leader_election(g, params_with_seed(1));
  const ElectionResult b = run_leader_election(g, params_with_seed(2));
  EXPECT_NE(a.totals.congest_messages, b.totals.congest_messages);
}

TEST(LeaderElection, ContenderCountNearExpectation) {
  // Lemma 1 at test scale: E[contenders] = c1 log2 n.
  const Graph g = make_clique(256);
  ElectionParams p = params_with_seed(1);
  double total = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    p.seed = 100 + t;
    total += static_cast<double>(run_leader_election(g, p).contenders.size());
  }
  const double expect = p.c1 * std::log2(256.0);
  EXPECT_NEAR(total / trials, expect, expect * 0.25);
}

TEST(LeaderElection, StopsByMixingTime) {
  // Lemma 6: final walk length is O(tmix); with guess-and-double it is at
  // most ~2 * c3 * tmix. Verified on graphs with very different tmix.
  struct Case {
    Graph g;
    const char* name;
  };
  for (auto& [g, name] : std::vector<Case>{{make_clique(128), "clique"},
                                           {make_hypercube(7), "hypercube"},
                                           {make_torus(10, 10), "torus"}}) {
    const std::uint64_t tmix = mixing_time_exact(g, 1u << 20);
    const ElectionResult r = run_leader_election(g, params_with_seed(5));
    ASSERT_TRUE(r.success()) << name;
    EXPECT_LE(r.final_length, std::max<std::uint64_t>(8, 8 * tmix)) << name;
    EXPECT_FALSE(r.hit_phase_cap) << name;
  }
}

TEST(LeaderElection, MeasuredRoundsWithinScheduledBound) {
  // Lemma 12's congestion padding: the real execution must fit within the
  // paper's schedule of 6T per phase.
  const Graph g = make_hypercube(7);
  for (std::uint64_t s = 1; s <= 5; ++s) {
    const ElectionResult r = run_leader_election(g, params_with_seed(s));
    EXPECT_LE(r.totals.rounds, r.scheduled_rounds) << "seed " << s;
  }
}

TEST(LeaderElection, PhaseStatsAreCoherent) {
  const Graph g = make_clique(100);
  const ElectionResult r = run_leader_election(g, params_with_seed(4));
  ASSERT_EQ(r.phase_stats.size(), r.phases);
  std::uint64_t rounds = 0, msgs = 0;
  std::uint32_t prev_len = 0;
  for (const PhaseStats& ps : r.phase_stats) {
    EXPECT_GT(ps.length, prev_len);  // guess-and-double
    prev_len = ps.length;
    rounds += ps.metrics.rounds;
    msgs += ps.metrics.congest_messages;
    EXPECT_GT(ps.active, 0u);
  }
  EXPECT_EQ(rounds, r.totals.rounds);
  EXPECT_EQ(msgs, r.totals.congest_messages);
}

TEST(LeaderElection, WideMessagesReduceMessageCount) {
  // Lemma 12, second regime: O(log^3 n) links collapse the fragmentation.
  const Graph g = make_clique(128);
  ElectionParams narrow = params_with_seed(6);
  ElectionParams wide = params_with_seed(6);
  wide.wide_messages = true;
  const ElectionResult rn = run_leader_election(g, narrow);
  const ElectionResult rw = run_leader_election(g, wide);
  ASSERT_TRUE(rn.success());
  ASSERT_TRUE(rw.success());
  EXPECT_LT(rw.totals.congest_messages, rn.totals.congest_messages);
  EXPECT_LE(rw.totals.rounds, rn.totals.rounds);
}

TEST(LeaderElection, SublinearInEdgesOnClique) {
  // Theorem 13's headline: on constant-conductance graphs message cost is
  // O~(sqrt(n)) — asymptotically far below m = Theta(n^2). At simulable n
  // the polylog constants still dominate, so we check the crossover: the
  // messages/m ratio must fall steeply and drop below 1 by n = 1024.
  const Graph small = make_clique(256);
  const Graph large = make_clique(1024);
  const ElectionResult rs = run_leader_election(small, params_with_seed(7));
  const ElectionResult rl = run_leader_election(large, params_with_seed(7));
  ASSERT_TRUE(rs.success());
  ASSERT_TRUE(rl.success());
  const double ratio_small = double(rs.totals.congest_messages) /
                             double(small.edge_count());
  const double ratio_large = double(rl.totals.congest_messages) /
                             double(large.edge_count());
  EXPECT_LT(ratio_large, 1.0);
  EXPECT_LT(ratio_large, ratio_small / 2.0);
}

TEST(LeaderElection, HigherC2GivesMoreWalksAndMessages) {
  const Graph g = make_clique(64);
  ElectionParams small_c2 = params_with_seed(8);
  small_c2.c2 = 2.0;
  ElectionParams big_c2 = params_with_seed(8);
  big_c2.c2 = 4.0;
  const ElectionResult rs = run_leader_election(g, small_c2);
  const ElectionResult rb = run_leader_election(g, big_c2);
  EXPECT_LT(rs.totals.congest_messages, rb.totals.congest_messages);
}

TEST(LeaderElection, ThrowsOnBadInput) {
  EXPECT_THROW(run_leader_election(Graph::from_edges(4, {{0, 1}, {2, 3}}),
                                   params_with_seed(1)),
               std::invalid_argument);  // disconnected
}

TEST(LeaderElection, ParamsDerivedQuantities) {
  ElectionParams p;
  p.c1 = 4.0;
  p.c2 = 2.0;
  EXPECT_DOUBLE_EQ(p.log2_n(1024), 10.0);
  EXPECT_DOUBLE_EQ(p.contender_probability(1024), 4.0 * 10.0 / 1024.0);
  EXPECT_EQ(p.walk_count(1024),
            static_cast<std::uint64_t>(std::ceil(2.0 * std::sqrt(10240.0))));
  // Intersection threshold: paper's ceil(0.75*c1*log n) capped at the
  // 3-sigma lower binomial quantile of the contender count.
  {
    const double mu = 4.0 * 10.0;
    const double sigma = std::sqrt(mu * (1.0 - 40.0 / 1024.0));
    const double expect =
        std::max(1.0, std::min(std::ceil(0.75 * mu),
                               std::floor(mu - 3.0 * sigma) - 1.0));
    EXPECT_EQ(p.intersection_threshold(1024),
              static_cast<std::uint64_t>(expect));
    EXPECT_LE(p.intersection_threshold(1024), 30u);
  }
  // Finite-size distinctness threshold: half the expected distinct proxies.
  const double w = static_cast<double>(p.walk_count(1024));
  const std::uint64_t expect_distinct = static_cast<std::uint64_t>(
      std::ceil(0.5 * w * std::pow(1.0 - 1.0 / 1024.0, w - 1.0)));
  EXPECT_EQ(p.distinct_threshold(1024), expect_distinct);
  EXPECT_LT(p.distinct_threshold(1024), p.walk_count(1024) / 2 + 1);
  EXPECT_GT(p.scheduled_T(1024, 16), 16u * 100u);  // (25/16)*4*16*100
  EXPECT_EQ(p.id_space(10), 10000u);
}

TEST(LeaderElection, SmallRingStillElects) {
  // Poorly connected but tiny: guess-and-double must push past tmix ~ n^2.
  const Graph g = make_ring(24);
  int ok = 0;
  for (std::uint64_t s = 1; s <= 5; ++s) {
    const ElectionResult r = run_leader_election(g, params_with_seed(s));
    if (r.success()) ++ok;
    EXPECT_LE(r.leaders.size(), 1u);
  }
  EXPECT_GE(ok, 4);
}

TEST(LeaderElection, NoContendersMeansNoLeader) {
  // c1 = 0 forces zero contenders; the algorithm reports a failed election
  // rather than crashing (the paper's n^{-c1} failure mode).
  const Graph g = make_clique(32);
  ElectionParams p = params_with_seed(1);
  p.c1 = 0.0;
  const ElectionResult r = run_leader_election(g, p);
  EXPECT_TRUE(r.leaders.empty());
  EXPECT_TRUE(r.contenders.empty());
  EXPECT_FALSE(r.success());
}

}  // namespace
}  // namespace wcle
