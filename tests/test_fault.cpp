// Tests for the fault subsystem (wcle/fault/): plan validation, adversary
// strategies, injector semantics on a live Network (crash-stop suppression,
// link failures that bill congestion, churn windows), verdict classification,
// determinism of faulty executions, and the Metrics round-trip audit — the
// fault counters must survive since()/operator+= and both JSON schemas.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "wcle/api/algorithm.hpp"
#include "wcle/api/registry.hpp"
#include "wcle/api/serialize.hpp"
#include "wcle/api/trials.hpp"
#include "wcle/baselines/flood_broadcast.hpp"
#include "wcle/fault/adversary.hpp"
#include "wcle/fault/injector.hpp"
#include "wcle/fault/plan.hpp"
#include "wcle/fault/verdict.hpp"
#include "wcle/graph/families.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/sim/network.hpp"

namespace wcle {
namespace {

Graph path_graph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return Graph::from_edges(n, edges);
}

// ------------------------------------------------------------------- plan

TEST(FaultPlan, ValidateRejectsBadValues) {
  FaultPlan p;
  EXPECT_NO_THROW(p.validate());
  p.crash_fraction = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.crash_fraction = 0.1;
  p.adversary = "nope";
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.adversary = "degree";
  EXPECT_NO_THROW(p.validate());
  p.churn_fraction = 0.2;
  p.churn_start = 5;
  p.churn_end = 5;  // inverted window
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.churn_end = 9;
  EXPECT_NO_THROW(p.validate());
}

TEST(FaultPlan, AnyReflectsActiveAxes) {
  FaultPlan p;
  EXPECT_FALSE(p.any());
  p.crash_fraction = 0.1;
  EXPECT_TRUE(p.any());
  p = FaultPlan{};
  p.pinned_crashes = {3};
  EXPECT_TRUE(p.any());
  p = FaultPlan{};
  p.churn_fraction = 0.5;
  EXPECT_TRUE(p.any());
  // ...but a churn fraction without a window is a user error, not a silent
  // fault-free run: validation demands the window.
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.churn_start = 3;
  p.churn_end = 6;
  EXPECT_NO_THROW(p.validate());
}

TEST(FaultNetwork, PinnedCrashesOverrideTheAdversary) {
  // Composed protocols pin the first stage's victims: the second stage must
  // kill exactly those nodes, whatever the strategy or rng state says.
  const Graph g = make_family("clique", 8, 1);
  CongestConfig cfg = CongestConfig::standard(8);
  cfg.faults.crash_fraction = 0.25;
  cfg.faults.adversary = "contenders";
  cfg.faults.seed = 13;
  cfg.faults.pinned_crashes = {6, 2, 99};  // 99 is out of range: skipped
  Network net(g, cfg);
  net.step();
  EXPECT_FALSE(net.node_up(6));
  EXPECT_FALSE(net.node_up(2));
  EXPECT_EQ(net.up_count(), 6u);
  const FaultOutcome fo = net.fault_outcome();
  EXPECT_EQ(fo.crashed, (std::vector<NodeId>{6, 2}));
}

// -------------------------------------------------------------- adversary

TEST(Adversary, RandomPicksAreDistinctAndSeedStable) {
  const Graph g = make_family("expander", 64, 1);
  const auto adversary = make_adversary("random");
  std::vector<NodeId> pool;
  for (NodeId v = 0; v < 64; ++v) pool.push_back(v);
  Rng rng1(42), rng2(42), rng3(7);
  const auto a = adversary->select(g, pool, {}, 10, rng1);
  const auto b = adversary->select(g, pool, {}, 10, rng2);
  const auto c = adversary->select(g, pool, {}, 10, rng3);
  ASSERT_EQ(a.size(), 10u);
  EXPECT_EQ(a, b);               // same seed, same victims
  EXPECT_NE(a, c);               // different stream, different victims
  const std::set<NodeId> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), a.size());
}

TEST(Adversary, DegreeTargetsHubsFirst) {
  // Star-ish graph: node 0 sees everyone, the rest form a path.
  std::vector<Edge> edges;
  for (NodeId v = 1; v < 8; ++v) edges.push_back({0, v});
  for (NodeId v = 1; v + 1 < 8; ++v) edges.push_back({v, v + 1});
  const Graph g = Graph::from_edges(8, edges);
  const auto adversary = make_adversary("degree");
  std::vector<NodeId> pool;
  for (NodeId v = 0; v < 8; ++v) pool.push_back(v);
  Rng rng(1);
  const auto victims = adversary->select(g, pool, {}, 1, rng);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 0u);  // the hub dies first
}

TEST(Adversary, ContendersTargetsHintsThenFallsBackToRandom) {
  const Graph g = make_family("expander", 32, 1);
  const auto adversary = make_adversary("contenders");
  std::vector<NodeId> pool;
  for (NodeId v = 0; v < 32; ++v) pool.push_back(v);
  Rng rng(9);
  const auto victims = adversary->select(g, pool, {5, 11, 5, 29}, 3, rng);
  ASSERT_EQ(victims.size(), 3u);
  EXPECT_EQ(victims[0], 5u);   // hint order, dedup
  EXPECT_EQ(victims[1], 11u);
  EXPECT_EQ(victims[2], 29u);
  // More victims than hints: the tail is drawn from the non-hinted pool.
  Rng rng2(9);
  const auto more = adversary->select(g, pool, {5}, 4, rng2);
  ASSERT_EQ(more.size(), 4u);
  EXPECT_EQ(more[0], 5u);
  for (std::size_t i = 1; i < more.size(); ++i) EXPECT_NE(more[i], 5u);
  EXPECT_THROW(make_adversary("zombie"), std::invalid_argument);
}

// --------------------------------------------------- injector via Network

FaultPlan crash_plan(double fraction, std::uint64_t round = 1,
                     std::uint64_t seed = 77) {
  FaultPlan p;
  p.crash_fraction = fraction;
  p.crash_round = round;
  p.seed = seed;
  return p;
}

TEST(FaultNetwork, CrashedNodesNeitherSendNorReceive) {
  // Path 0-1-2: crash the middle node; a flood from 0 must never reach 2.
  const Graph g = path_graph(3);
  CongestConfig cfg = CongestConfig::standard(3);
  cfg.faults = crash_plan(0.34);  // exactly one victim
  cfg.faults.adversary = "degree";  // node 1 has the highest degree
  const FloodBroadcastResult r = run_flood_broadcast(g, 0, 16, cfg);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.informed, 1u);  // only the source
  ASSERT_EQ(r.faults.up.size(), 3u);
  EXPECT_TRUE(r.faults.up[0]);
  EXPECT_FALSE(r.faults.up[1]);
  EXPECT_TRUE(r.faults.up[2]);
  EXPECT_GT(r.totals.crash_dropped_messages, 0u);
}

TEST(FaultNetwork, FailedLinksEatTrafficButBillCongestion) {
  const Graph g = make_family("clique", 16, 1);
  CongestConfig reliable = CongestConfig::standard(16);
  CongestConfig faulty = reliable;
  faulty.faults.linkfail_fraction = 0.3;
  faulty.faults.seed = 5;
  const FloodBroadcastResult a = run_flood_broadcast(g, 0, 16, reliable);
  const FloodBroadcastResult b = run_flood_broadcast(g, 0, 16, faulty);
  EXPECT_GT(b.totals.link_dropped_messages, 0u);
  EXPECT_EQ(b.faults.failed_links, 36u);  // round(0.3 * 120)
  // The congestion bill is still paid for eaten messages: the initial wave
  // alone already bills every out-port of the source.
  EXPECT_GT(b.totals.congest_messages, 0u);
  EXPECT_EQ(a.totals.dropped_messages, 0u);
  // Symmetry: both directions of a failed undirected link are down.
  ASSERT_FALSE(b.faults.link_failed.empty());
  std::uint64_t directed_failed = 0;
  for (const char f : b.faults.link_failed) directed_failed += f ? 1 : 0;
  EXPECT_EQ(directed_failed, 2 * b.faults.failed_links);
}

TEST(FaultNetwork, ChurnWindowSuppressesThenRestores) {
  const Graph g = path_graph(2);
  CongestConfig cfg = CongestConfig::standard(2);
  cfg.faults.churn_fraction = 0.5;  // one of the two nodes
  cfg.faults.churn_start = 1;
  cfg.faults.churn_end = 3;  // down during rounds 1-2, back at round 3
  cfg.faults.seed = 3;
  Network net(g, cfg);
  ASSERT_TRUE(cfg.faults.any());
  // Figure out who churns (deterministic from the seed).
  net.step();
  const NodeId down = net.node_up(0) ? 1 : 0;
  const NodeId up = 1 - down;
  EXPECT_EQ(net.up_count(), 1u);
  // A message to the churned node during the window is eaten.
  Message msg;
  msg.tag = 1;
  msg.bits = 1;
  net.send(up, 0, msg);
  net.step();
  EXPECT_EQ(net.metrics().crash_dropped_messages, 1u);
  net.step();  // round 3: the window closes
  EXPECT_TRUE(net.node_up(down));
  EXPECT_EQ(net.up_count(), 2u);
  net.send(up, 0, msg);
  const std::vector<Delivery>& delivered = net.step();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].dst, down);
}

TEST(FaultNetwork, FaultyRunsAreBitReproducible) {
  const Graph g = make_family("hypercube", 32, 1);
  CongestConfig cfg = CongestConfig::standard(32);
  cfg.faults.crash_fraction = 0.25;
  cfg.faults.linkfail_fraction = 0.1;
  cfg.faults.seed = 99;
  cfg.drop_probability = 0.05;
  cfg.drop_seed = 4;
  const FloodBroadcastResult a = run_flood_broadcast(g, 3, 16, cfg);
  const FloodBroadcastResult b = run_flood_broadcast(g, 3, 16, cfg);
  EXPECT_EQ(a.informed, b.informed);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.totals.congest_messages, b.totals.congest_messages);
  EXPECT_EQ(a.totals.crash_dropped_messages, b.totals.crash_dropped_messages);
  EXPECT_EQ(a.totals.link_dropped_messages, b.totals.link_dropped_messages);
  EXPECT_EQ(a.totals.dropped_messages, b.totals.dropped_messages);
  EXPECT_EQ(a.faults.up, b.faults.up);
  EXPECT_EQ(a.faults.crashed, b.faults.crashed);
}

// ----------------------------------------------------------------- verdict

TEST(Verdict, SafetyCountsOnlySurvivingLeaders) {
  const Graph g = make_family("clique", 8, 1);
  FaultOutcome fo;
  fo.up.assign(8, 1);
  fo.up[3] = 0;  // leader 3 died
  Verdict v = classify_execution(g, fo, {3, 5}, 10, 0, /*election=*/true);
  EXPECT_TRUE(v.evaluated);
  EXPECT_TRUE(v.safe);  // one dead + one live leader => still safe
  EXPECT_EQ(v.surviving, 7u);
  EXPECT_EQ(v.surviving_leaders, 1u);
  EXPECT_DOUBLE_EQ(v.agreement, 1.0);

  v = classify_execution(g, fo, {1, 5}, 10, 0, /*election=*/true);
  EXPECT_FALSE(v.safe);  // two live leaders
  EXPECT_EQ(v.surviving_leaders, 2u);

  v = classify_execution(g, fo, {3}, 10, 0, /*election=*/true);
  EXPECT_TRUE(v.safe);           // vacuously: no surviving leader
  EXPECT_DOUBLE_EQ(v.agreement, 0.0);
}

TEST(Verdict, LivenessUsesBudgetAndCapFlag) {
  const Graph g = make_family("clique", 4, 1);
  FaultOutcome fo;
  Verdict v = classify_execution(g, fo, {0}, 100, 50, true);
  EXPECT_FALSE(v.live);  // over budget
  v = classify_execution(g, fo, {0}, 100, 0, true);
  EXPECT_TRUE(v.live);   // no budget
  fo.hit_round_cap = true;
  v = classify_execution(g, fo, {0}, 10, 0, true);
  EXPECT_FALSE(v.live);  // the protocol's own cap fired
}

TEST(Verdict, AgreementIsSurvivingComponentCoverage) {
  // Path 0-1-2-3 with node 1 dead: the leader at 0 is cut off from {2, 3}.
  const Graph g = path_graph(4);
  FaultOutcome fo;
  fo.up = {1, 0, 1, 1};
  const Verdict v = classify_execution(g, fo, {0}, 5, 0, true);
  EXPECT_EQ(v.surviving, 3u);
  EXPECT_DOUBLE_EQ(v.agreement, 1.0 / 3.0);
  // Same topology, but the cut is a failed link 2-3 instead of a death.
  FaultOutcome lf;
  lf.link_failed.assign(6, 0);  // path lanes: 0:{0}, 1:{0,1}, 2:{0,1}, 3:{0}
  // Node 2's port to 3 and node 3's port to 2 (lane bases: 0,1,3,5).
  lf.link_failed[4] = 1;
  lf.link_failed[5] = 1;
  lf.failed_links = 1;
  const Verdict w = classify_execution(g, lf, {0}, 5, 0, true);
  EXPECT_EQ(w.surviving, 4u);
  EXPECT_DOUBLE_EQ(w.agreement, 0.75);
}

// ------------------------------------------ harness & metrics round-trip

TEST(FaultHarness, TrialsCarryVerdictRatesAndCounters) {
  const Graph g = make_family("expander", 32, 1);
  const Algorithm& algo = AlgorithmRegistry::instance().at("flood_max");
  RunOptions options;
  options.params.faults.crash_fraction = 0.25;
  const TrialStats s = run_trials(algo, g, options, 4, 1000, 1);
  EXPECT_GT(s.crash_dropped_messages.mean, 0.0);
  EXPECT_GE(s.safety_rate, 0.0);
  EXPECT_LE(s.safety_rate, 1.0);
  EXPECT_EQ(s.agreement.count, 4u);
  // The whole stats object serializes with the new fields present.
  const std::string json = to_json(s);
  EXPECT_NE(json.find("\"safety_rate\":"), std::string::npos);
  EXPECT_NE(json.find("\"liveness_rate\":"), std::string::npos);
  EXPECT_NE(json.find("\"crash_dropped_messages\":"), std::string::npos);
  EXPECT_NE(json.find("\"link_dropped_messages\":"), std::string::npos);
  EXPECT_NE(json.find("\"agreement\":"), std::string::npos);
}

TEST(MetricsAudit, FaultCountersSurviveSinceAndAccumulate) {
  Metrics a;
  a.rounds = 10;
  a.congest_messages = 100;
  a.dropped_messages = 7;
  a.crash_dropped_messages = 5;
  a.link_dropped_messages = 3;
  Metrics b = a;
  b.rounds = 25;
  b.dropped_messages = 11;
  b.crash_dropped_messages = 9;
  b.link_dropped_messages = 4;
  const Metrics d = b.since(a);
  EXPECT_EQ(d.rounds, 15u);
  EXPECT_EQ(d.dropped_messages, 4u);
  EXPECT_EQ(d.crash_dropped_messages, 4u);
  EXPECT_EQ(d.link_dropped_messages, 1u);
  // Round trip: a + (b - a) == b on every counter.
  Metrics sum = a;
  sum += d;
  EXPECT_EQ(sum.rounds, b.rounds);
  EXPECT_EQ(sum.dropped_messages, b.dropped_messages);
  EXPECT_EQ(sum.crash_dropped_messages, b.crash_dropped_messages);
  EXPECT_EQ(sum.link_dropped_messages, b.link_dropped_messages);
  EXPECT_EQ(sum.congest_messages, b.congest_messages + d.congest_messages);
  // The summary surfaces active fault counters.
  const std::string line = sum.summary();
  EXPECT_NE(line.find("crash_dropped="), std::string::npos);
  EXPECT_NE(line.find("link_dropped="), std::string::npos);
  // And the RunResult JSON carries them (name-level schema check; the exact
  // bytes are pinned in test_serialize.cpp).
  RunResult r;
  r.totals = sum;
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"crash_dropped_messages\":9"), std::string::npos);
  EXPECT_NE(json.find("\"link_dropped_messages\":4"), std::string::npos);
}

TEST(FaultHarness, ElectionUnderContenderAdversaryStaysBounded) {
  // The worst-case adversary kills the contender set at round 1. The run
  // must terminate (phase cap at worst) and the verdict must record the
  // liveness/safety outcome rather than hanging or crashing.
  const Graph g = make_family("expander", 32, 1);
  const Algorithm& algo = AlgorithmRegistry::instance().at("election");
  RunOptions options;
  options.params.faults.crash_fraction = 0.3;
  options.params.faults.adversary = "contenders";
  options.params.max_length = 64;
  options.params.seed = 11;
  RunResult r = algo.run(g, options);
  attach_verdict(g, options, Algorithm::Kind::kElection, r);
  EXPECT_TRUE(r.verdict.evaluated);
  EXPECT_GT(r.totals.crash_dropped_messages, 0u);
  ASSERT_FALSE(r.faults.up.empty());
  // Contender targeting: every crashed node was a reported contender (the
  // fraction is far below the contender count at this size/seed).
  const double contenders = r.extras.at("contenders");
  ASSERT_GE(contenders, static_cast<double>(r.faults.crashed.size()));
}

// ----------------------------------------------------- verdict edge cases

TEST(VerdictEdge, AllNodesCrashedYieldsZeroSurvivorsAndZeroAgreement) {
  const Graph g = make_family("clique", 6, 1);
  FaultOutcome fo;
  fo.up.assign(6, 0);
  fo.crashed = {0, 1, 2, 3, 4, 5};
  const Verdict v = classify_execution(g, fo, {2}, 9, 0, /*election=*/true);
  EXPECT_TRUE(v.evaluated);
  EXPECT_EQ(v.surviving, 0u);
  EXPECT_EQ(v.surviving_leaders, 0u);
  EXPECT_TRUE(v.safe);  // vacuously: nobody left to disagree
  EXPECT_DOUBLE_EQ(v.agreement, 0.0);
}

TEST(VerdictEdge, CrashingEveryNodeEndToEndStaysClassifiable) {
  // crash_fraction = 1.0 kills the whole graph at round 1: the protocol
  // must still terminate and the harness must classify the run.
  const Graph g = make_family("clique", 8, 1);
  const Algorithm& algo = AlgorithmRegistry::instance().at("flood_max");
  RunOptions options;
  options.params.faults.crash_fraction = 1.0;
  options.max_rounds = 200;
  const TrialStats s = run_trials(algo, g, options, 2, 500, 1);
  EXPECT_DOUBLE_EQ(s.success_rate, 0.0);
  EXPECT_DOUBLE_EQ(s.agreement.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.agreement.max, 0.0);
}

TEST(VerdictEdge, ZeroSurvivorComponentDoesNotCountTowardAgreement) {
  // Path 0-1-2-3-4 with the middle and the far end dead: the survivors
  // {0, 1} all sit in the live leader's component — agreement is 1.0 even
  // though most of the graph is a zero-survivor wasteland. A leader chosen
  // from the dead side scores 0.
  const Graph g = path_graph(5);
  FaultOutcome fo;
  fo.up = {1, 1, 0, 0, 0};
  Verdict v = classify_execution(g, fo, {0}, 5, 0, /*election=*/true);
  EXPECT_EQ(v.surviving, 2u);
  EXPECT_DOUBLE_EQ(v.agreement, 1.0);
  v = classify_execution(g, fo, {4}, 5, 0, /*election=*/true);
  EXPECT_EQ(v.surviving_leaders, 0u);
  EXPECT_DOUBLE_EQ(v.agreement, 0.0);
}

TEST(VerdictEdge, LinkFailuresAloneDisconnectAndCapAgreement) {
  // Every link fails at round 1 but no node dies: the graph is shattered
  // into singletons purely by the link axis. All 8 nodes survive, yet the
  // broadcast source can only stand for itself.
  const Graph g = make_family("ring", 8, 1);
  const Algorithm& algo = AlgorithmRegistry::instance().at("flood_broadcast");
  RunOptions options;
  options.params.faults.linkfail_fraction = 1.0;
  RunResult r = algo.run(g, options);
  attach_verdict(g, options, algo.kind(), r);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.verdict.evaluated);
  EXPECT_EQ(r.verdict.surviving, 8u);
  EXPECT_DOUBLE_EQ(r.verdict.agreement, 1.0 / 8.0);
  EXPECT_GT(r.totals.link_dropped_messages, 0u);
}

}  // namespace
}  // namespace wcle
