#include "wcle/core/explicit_election.hpp"

#include <gtest/gtest.h>

#include "wcle/graph/generators.hpp"

namespace wcle {
namespace {

ElectionParams params_with_seed(std::uint64_t seed) {
  ElectionParams p;
  p.seed = seed;
  return p;
}

TEST(ExplicitElection, SucceedsOnClique) {
  const Graph g = make_clique(128);
  const ExplicitElectionResult r =
      run_explicit_election(g, params_with_seed(1));
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.broadcast.complete);
  EXPECT_EQ(r.broadcast.informed, 128u);
}

TEST(ExplicitElection, SucceedsOnExpander) {
  Rng grng(11);
  const Graph g = make_random_regular(150, 6, grng);
  const ExplicitElectionResult r =
      run_explicit_election(g, params_with_seed(2));
  EXPECT_TRUE(r.success);
}

TEST(ExplicitElection, TotalsAreSums) {
  const Graph g = make_hypercube(6);
  const ExplicitElectionResult r =
      run_explicit_election(g, params_with_seed(3));
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.total_congest_messages(),
            r.election.totals.congest_messages +
                r.broadcast.totals.congest_messages);
  EXPECT_EQ(r.total_rounds(),
            r.election.totals.rounds + r.broadcast.rounds);
}

TEST(ExplicitElection, BroadcastDominatesMessagesOnWellConnected) {
  // The paper's concluding observation (Cor. 14): for the explicit variant
  // on well-connected graphs, the broadcast's n log n / phi messages dominate
  // the election's ~sqrt(n) polylog(n) messages once n is large enough.
  const Graph g = make_clique(512);
  const ExplicitElectionResult r =
      run_explicit_election(g, params_with_seed(4));
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.broadcast.totals.logical_messages,
            r.election.totals.logical_messages / 4);
}

TEST(ExplicitElection, FailedElectionSkipsBroadcast) {
  const Graph g = make_clique(32);
  ElectionParams p = params_with_seed(5);
  p.c1 = 0.0;  // no contenders -> no leader
  const ExplicitElectionResult r = run_explicit_election(g, p);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.broadcast.rounds, 0u);
  EXPECT_EQ(r.broadcast.totals.congest_messages, 0u);
}

TEST(ExplicitElection, DeterministicForFixedSeed) {
  const Graph g = make_torus(8, 8);
  const ExplicitElectionResult a =
      run_explicit_election(g, params_with_seed(6));
  const ExplicitElectionResult b =
      run_explicit_election(g, params_with_seed(6));
  EXPECT_EQ(a.election.leaders, b.election.leaders);
  EXPECT_EQ(a.total_congest_messages(), b.total_congest_messages());
}

}  // namespace
}  // namespace wcle
