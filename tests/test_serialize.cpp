// Golden-string tests for serialize.hpp: the JSON renderings of RunResult
// and TrialStats are pinned byte-for-byte on hand-constructed values, so any
// schema drift (field rename, reorder, number formatting change) fails
// loudly here before it silently breaks BENCH_*.json consumers or the CI
// sweep determinism diffs.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "wcle/api/serialize.hpp"
#include "wcle/api/trials.hpp"

namespace wcle {
namespace {

TEST(SerializeGolden, RunResultFullSchema) {
  RunResult r;
  r.algorithm = "election";
  r.success = true;
  r.leaders = {3, 7};
  r.rounds = 42;
  r.totals.congest_messages = 100;
  r.totals.logical_messages = 25;
  r.totals.total_bits = 4096;
  r.totals.max_edge_backlog = 6;
  r.totals.dropped_messages = 2;
  r.totals.crash_dropped_messages = 4;
  r.totals.link_dropped_messages = 1;
  r.totals.pool_msg_slots = 512;
  r.totals.pool_msg_live_high = 80;
  r.totals.pool_id_blocks = 2;
  r.totals.pool_id_live_high = 33;
  r.verdict.evaluated = true;
  r.verdict.safe = true;
  r.verdict.live = false;
  r.verdict.agreement = 0.75;
  r.verdict.surviving = 30;
  r.verdict.surviving_leaders = 1;
  r.extras["phases"] = 3.0;
  r.extras["ratio"] = 0.5;
  EXPECT_EQ(to_json(r),
            "{\"algorithm\":\"election\",\"success\":true,\"leaders\":[3,7],"
            "\"rounds\":42,\"congest_messages\":100,\"logical_messages\":25,"
            "\"total_bits\":4096,\"max_edge_backlog\":6,"
            "\"dropped_messages\":2,\"crash_dropped_messages\":4,"
            "\"link_dropped_messages\":1,"
            "\"pool_msg_slots\":512,\"pool_msg_live_high\":80,"
            "\"pool_id_blocks\":2,\"pool_id_live_high\":33,"
            "\"verdict\":{\"evaluated\":true,\"safe\":true,\"live\":false,"
            "\"agreement\":0.75,\"surviving\":30,\"surviving_leaders\":1},"
            "\"extras\":{\"phases\":3,\"ratio\":0.5}}");
}

TEST(SerializeGolden, RunResultEmpty) {
  RunResult r;
  r.algorithm = "x";
  EXPECT_EQ(to_json(r),
            "{\"algorithm\":\"x\",\"success\":false,\"leaders\":[],"
            "\"rounds\":0,\"congest_messages\":0,\"logical_messages\":0,"
            "\"total_bits\":0,\"max_edge_backlog\":0,\"dropped_messages\":0,"
            "\"crash_dropped_messages\":0,\"link_dropped_messages\":0,"
            "\"pool_msg_slots\":0,\"pool_msg_live_high\":0,"
            "\"pool_id_blocks\":0,\"pool_id_live_high\":0,"
            "\"verdict\":{\"evaluated\":false,\"safe\":true,\"live\":true,"
            "\"agreement\":0,\"surviving\":0,\"surviving_leaders\":0},"
            "\"extras\":{}}");
}

TEST(SerializeGolden, TrialStatsFullSchema) {
  TrialStats s;
  s.algorithm = "flood_max";
  s.trials = 2;
  s.threads = 1;
  s.success_rate = 0.5;
  s.multi_leader_rate = 0.5;
  s.safety_rate = 0.5;
  s.liveness_rate = 1.0;
  s.congest_messages = Summary{2, 10.0, 1.0, 9.0, 10.0, 11.0};
  const std::string json = to_json(s);
  EXPECT_EQ(json,
            "{\"algorithm\":\"flood_max\",\"trials\":2,\"threads\":1,"
            "\"success_rate\":0.5,\"zero_leader_rate\":0,"
            "\"multi_leader_rate\":0.5,\"safety_rate\":0.5,"
            "\"liveness_rate\":1,\"metrics\":{"
            "\"congest_messages\":{\"count\":2,\"mean\":10,\"stddev\":1,"
            "\"min\":9,\"median\":10,\"max\":11},"
            "\"logical_messages\":{\"count\":0,\"mean\":0,\"stddev\":0,"
            "\"min\":0,\"median\":0,\"max\":0},"
            "\"total_bits\":{\"count\":0,\"mean\":0,\"stddev\":0,\"min\":0,"
            "\"median\":0,\"max\":0},"
            "\"rounds\":{\"count\":0,\"mean\":0,\"stddev\":0,\"min\":0,"
            "\"median\":0,\"max\":0},"
            "\"leader_count\":{\"count\":0,\"mean\":0,\"stddev\":0,\"min\":0,"
            "\"median\":0,\"max\":0},"
            "\"dropped_messages\":{\"count\":0,\"mean\":0,\"stddev\":0,"
            "\"min\":0,\"median\":0,\"max\":0},"
            "\"crash_dropped_messages\":{\"count\":0,\"mean\":0,\"stddev\":0,"
            "\"min\":0,\"median\":0,\"max\":0},"
            "\"link_dropped_messages\":{\"count\":0,\"mean\":0,\"stddev\":0,"
            "\"min\":0,\"median\":0,\"max\":0},"
            "\"agreement\":{\"count\":0,\"mean\":0,\"stddev\":0,"
            "\"min\":0,\"median\":0,\"max\":0},"
            "\"pool_msg_slots\":{\"count\":0,\"mean\":0,\"stddev\":0,"
            "\"min\":0,\"median\":0,\"max\":0},"
            "\"pool_msg_live_high\":{\"count\":0,\"mean\":0,\"stddev\":0,"
            "\"min\":0,\"median\":0,\"max\":0},"
            "\"pool_id_blocks\":{\"count\":0,\"mean\":0,\"stddev\":0,"
            "\"min\":0,\"median\":0,\"max\":0},"
            "\"pool_id_live_high\":{\"count\":0,\"mean\":0,\"stddev\":0,"
            "\"min\":0,\"median\":0,\"max\":0}},\"extras\":{}}");
}

TEST(SerializeGolden, ExtrasKeysAreEscapedAndSorted) {
  RunResult r;
  r.algorithm = "a\"b";
  r.extras["z"] = 1.0;
  r.extras["a\nkey"] = 2.0;
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"algorithm\":\"a\\\"b\""), std::string::npos) << json;
  // std::map ordering puts the escaped key first.
  EXPECT_NE(json.find("\"extras\":{\"a\\nkey\":2,\"z\":1}"),
            std::string::npos)
      << json;
}

TEST(SerializeGolden, JsonEscapeControlCharacters) {
  EXPECT_EQ(json_escape("plain ascii"), "plain ascii");
  EXPECT_EQ(json_escape("q\"b\\s"), "q\\\"b\\\\s");
  EXPECT_EQ(json_escape("a\nb\rc\td"), "a\\nb\\rc\\td");
  // Every remaining control character below 0x20 goes to \u00XX.
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(json_escape(std::string("x\x1f") + "y"), "x\\u001fy");
  EXPECT_EQ(json_escape(std::string("u") + '\b' + "v"), "u\\u0008v");
  EXPECT_EQ(json_escape(std::string("u") + '\f' + "v"), "u\\u000cv");
  EXPECT_EQ(json_escape(std::string(1, '\0')), "\\u0000");
  // 0x7f (DEL) is not a JSON-mandatory escape; it passes through.
  EXPECT_EQ(json_escape("\x7f"), "\x7f");
}

TEST(SerializeGolden, JsonNumberShortestRoundTrip) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(0.5), "0.5");
  EXPECT_EQ(json_number(1.0 / 3.0), "0.3333333333333333");
  EXPECT_EQ(json_number(1e300), "1e+300");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
}

}  // namespace
}  // namespace wcle
