// Ablations of the design choices DESIGN.md §5 calls out: each switch must
// change behaviour in exactly the direction the paper's design arguments
// predict — coalescing saves the per-walk token bill, laziness fixes the
// bipartite parity trap, wide links trade bandwidth for message count.
#include <gtest/gtest.h>

#include "wcle/core/leader_election.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/rw/walk_engine.hpp"
#include "wcle/sim/network.hpp"

namespace wcle {
namespace {

TEST(Ablation, CoalescingSavesWalkMessages) {
  // Same seed, same walks; naive per-walk tokens pay per unit crossing each
  // edge, coalesced tokens pay per (origin, level, edge). The denser the
  // traffic the bigger the gap — at 4096 walks over a 16-clique the savings
  // must exceed 3x.
  const NodeId n = 16;
  std::uint64_t coalesced, naive;
  {
    const Graph g = make_clique(n);
    Network net(g, CongestConfig::standard(n));
    Rng rng(5);
    WalkEngine engine(g, net, rng, {true, true});
    engine.run_walk_stage({{0, 4096, 6}});
    coalesced = net.metrics().congest_messages;
  }
  {
    const Graph g = make_clique(n);
    Network net(g, CongestConfig::standard(n));
    Rng rng(5);
    WalkEngine engine(g, net, rng, {true, false});
    engine.run_walk_stage({{0, 4096, 6}});
    naive = net.metrics().congest_messages;
  }
  EXPECT_GT(naive, 3 * coalesced);
}

TEST(Ablation, CoalescingPreservesWalkStatistics) {
  // The accounting mode changes delivery timing (bigger messages queue
  // longer), which perturbs merge order and thus individual endpoints — but
  // unit conservation and the coarse spread must be unaffected.
  const Graph g = make_torus(5, 5);
  auto run = [&](bool coalesce) {
    Network net(g, CongestConfig::standard(25));
    Rng rng(7);
    WalkEngine engine(g, net, rng, {true, coalesce});
    engine.run_walk_stage({{3, 256, 6}});
    std::uint64_t total = 0;
    for (const NodeId p : engine.proxy_nodes(3))
      total += engine.registrations(p).at(3);
    return std::pair{total, engine.proxy_nodes(3).size()};
  };
  const auto [total_c, spread_c] = run(true);
  const auto [total_n, spread_n] = run(false);
  EXPECT_EQ(total_c, 256u);
  EXPECT_EQ(total_n, 256u);
  // 256 walks over 25 nodes at >= tmix: nearly every node is a proxy.
  EXPECT_GE(spread_c, 20u);
  EXPECT_GE(spread_n, 20u);
}

TEST(Ablation, NonLazyWalksNeverStay) {
  const Graph g = make_ring(8);
  Network net(g, CongestConfig::standard(8));
  Rng rng(9);
  WalkEngine engine(g, net, rng, {false, true});
  // Length-1 non-lazy walks always move: origin cannot be its own proxy.
  engine.run_walk_stage({{0, 100, 1}});
  const auto& regs = engine.registrations(0);
  EXPECT_EQ(regs.find(0), regs.end());
  std::uint64_t total = 0;
  for (const NodeId p : engine.proxy_nodes(0))
    total += engine.registrations(p).at(0);
  EXPECT_EQ(total, 100u);
}

TEST(Ablation, NonLazyWalksHitParityTrapOnBipartiteGraphs) {
  // On a hypercube (bipartite), non-lazy walks of length t always end at
  // parity (start + t) mod 2: contenders in different parity classes can
  // never share a proxy, so the intersection property starves and the
  // guess-and-double loop hits its cap — exactly why the paper uses the
  // lazy chain.
  const Graph g = make_hypercube(6);
  ElectionParams p;
  p.seed = 3;
  p.lazy_walks = false;
  p.max_phases = 6;           // bound the doomed doubling for test speed
  p.max_length = 64;
  const ElectionResult r = run_leader_election(g, p);
  EXPECT_TRUE(r.hit_phase_cap || !r.success());

  // Control: the lazy chain with the same budget succeeds.
  ElectionParams q = p;
  q.lazy_walks = true;
  const ElectionResult rl = run_leader_election(g, q);
  EXPECT_TRUE(rl.success());
  EXPECT_FALSE(rl.hit_phase_cap);
}

TEST(Ablation, NonLazyParityInvariantHolds) {
  // Directly verify the parity invariant driving the trap.
  const Graph g = make_hypercube(5);
  Network net(g, CongestConfig::standard(32));
  Rng rng(11);
  WalkEngine engine(g, net, rng, {false, true});
  const std::uint32_t length = 7;  // odd
  engine.run_walk_stage({{0, 200, length}});
  for (const NodeId p : engine.proxy_nodes(0)) {
    const int parity = __builtin_popcount(p) % 2;
    EXPECT_EQ(parity, static_cast<int>(length % 2)) << "proxy " << p;
  }
}

TEST(Ablation, ElectionWithNaiveTokensCostsMore) {
  const Graph g = make_clique(64);
  ElectionParams a;
  a.seed = 13;
  ElectionParams b = a;
  b.coalesce_tokens = false;
  const ElectionResult ra = run_leader_election(g, a);
  const ElectionResult rb = run_leader_election(g, b);
  ASSERT_TRUE(ra.success());
  ASSERT_TRUE(rb.success());
  EXPECT_EQ(ra.leaders, rb.leaders);  // accounting only, same behaviour
  EXPECT_GT(rb.totals.congest_messages, ra.totals.congest_messages);
}

}  // namespace
}  // namespace wcle
