// Edge-case tests for the named graph-family builder: size snapping,
// degenerate n = 1 / n = 2 requests (which must snap UP to each family's
// structural minimum, never crash or return a disconnected graph), the ':'
// parameter grammar of the lowerbound/dumbbell families, and unknown-name
// rejection.
#include <gtest/gtest.h>

#include <stdexcept>

#include "wcle/graph/families.hpp"

namespace wcle {
namespace {

TEST(Families, SizeSnapping) {
  // Torus snaps to a square side (floor side 3).
  EXPECT_EQ(make_family("torus", 10, 1).node_count(), 9u);
  EXPECT_EQ(make_family("torus", 256, 1).node_count(), 256u);
  EXPECT_EQ(make_family("torus", 255, 1).node_count(), 225u);
  // Hypercube snaps to a power of two.
  EXPECT_EQ(make_family("hypercube", 100, 1).node_count(), 64u);
  EXPECT_EQ(make_family("hypercube", 128, 1).node_count(), 128u);
  // Expander (6-regular pairing model) snaps odd n up to even.
  EXPECT_EQ(make_family("expander", 65, 1).node_count(), 66u);
  // Grid snaps to a square side (floor side 2).
  EXPECT_EQ(make_family("grid", 5, 1).node_count(), 4u);
}

TEST(Families, DegenerateSizesSnapUpToValidGraphs) {
  for (const std::string& family : family_names()) {
    if (family == "lowerbound") continue;  // structural minima throw instead
    for (const NodeId n : {NodeId{1}, NodeId{2}}) {
      const Graph g = make_family(family, n, 7);
      EXPECT_GE(g.node_count(), 2u) << family << " n=" << n;
      EXPECT_TRUE(g.is_connected()) << family << " n=" << n;
    }
  }
}

TEST(Families, EverySizeYieldsConnectedGraphs) {
  for (const std::string& family : family_names()) {
    if (family == "lowerbound") continue;
    const Graph g = make_family(family, 40, 3);
    EXPECT_TRUE(g.is_connected()) << family;
    EXPECT_GE(g.node_count(), 2u) << family;
  }
}

TEST(Families, UnknownNameThrows) {
  EXPECT_THROW(make_family("petersen", 10, 1), std::invalid_argument);
  EXPECT_THROW(make_family("", 10, 1), std::invalid_argument);
  // The error names the unknown base, not the parameter.
  try {
    make_family("nope:42", 10, 1);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("nope"), std::string::npos);
  }
}

TEST(Families, ParameterGrammar) {
  // Families that take no parameter reject one instead of ignoring it.
  EXPECT_THROW(make_family("ring:3", 16, 1), std::invalid_argument);
  EXPECT_THROW(make_family("clique:big", 16, 1), std::invalid_argument);

  // lowerbound: optional alpha parameter, validated.
  const Graph lb = make_family("lowerbound:0.004", 500, 1);
  EXPECT_TRUE(lb.is_connected());
  EXPECT_GE(lb.node_count(), 300u);
  EXPECT_THROW(make_family("lowerbound:zzz", 500, 1), std::invalid_argument);
  EXPECT_THROW(make_family("lowerbound:2.5", 500, 1), std::invalid_argument);
  EXPECT_THROW(make_family("lowerbound:-0.1", 500, 1), std::invalid_argument);

  // dumbbell: optional base family; two ~n/2 copies bridged.
  const Graph db = make_family("dumbbell:hypercube", 128, 1);
  EXPECT_EQ(db.node_count(), 128u);
  EXPECT_TRUE(db.is_connected());
  const Graph db_default = make_family("dumbbell", 128, 1);  // torus base
  EXPECT_EQ(db_default.node_count(), 128u);
  EXPECT_THROW(make_family("dumbbell:dumbbell", 64, 1), std::invalid_argument);
}

TEST(Families, DeterministicInSeed) {
  const Graph a = make_family("expander", 64, 5);
  const Graph b = make_family("expander", 64, 5);
  EXPECT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.edge_count(), b.edge_count());
  for (NodeId v = 0; v < a.node_count(); ++v)
    EXPECT_EQ(a.degree(v), b.degree(v)) << v;
}

}  // namespace
}  // namespace wcle
