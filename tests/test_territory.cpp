// Territory-growing DFS election ([24]'s O(m)-message / slow-time regime).
#include <gtest/gtest.h>

#include "wcle/baselines/territory_election.hpp"
#include "wcle/core/leader_election.hpp"
#include "wcle/graph/generators.hpp"

namespace wcle {
namespace {

TEST(Territory, ElectsUniqueLeaderAcrossFamilies) {
  Rng grng(31);
  for (const Graph& g : {make_clique(64), make_torus(8, 8), make_ring(48),
                         make_hypercube(6),
                         make_random_regular(100, 6, grng)}) {
    ElectionParams p;
    p.seed = 5;
    const TerritoryElectionResult r = run_territory_election(g, p);
    EXPECT_EQ(r.leaders.size(), 1u) << g.describe();
  }
}

TEST(Territory, LeaderIsTheMaxIdCandidate) {
  // The strongest token can never die, and weaker tokens can never complete
  // the census (the strongest candidate's own node blocks them).
  const Graph g = make_torus(10, 10);
  ElectionParams p;
  for (std::uint64_t s = 1; s <= 8; ++s) {
    p.seed = s;
    const TerritoryElectionResult r = run_territory_election(g, p);
    ASSERT_EQ(r.leaders.size(), 1u) << "seed " << s;
    EXPECT_NE(std::find(r.candidates.begin(), r.candidates.end(),
                        r.leaders[0]),
              r.candidates.end());
  }
}

TEST(Territory, MessagesAreOrderMNotMTimesCandidates) {
  // Weak tokens die early: total logical messages stay within a small
  // multiple of 2m (each edge twice for the winner, plus dying prefixes),
  // far below candidates * 2m.
  const Graph g = make_hypercube(7);  // m = 448
  ElectionParams p;
  p.seed = 3;
  const TerritoryElectionResult r = run_territory_election(g, p);
  ASSERT_TRUE(r.success());
  ASSERT_GE(r.candidates.size(), 3u);
  EXPECT_GE(r.totals.logical_messages, 2 * g.edge_count());
  EXPECT_LT(r.totals.logical_messages,
            r.candidates.size() * 2 * g.edge_count());
}

TEST(Territory, TimeIsThetaM) {
  // The sequential token makes rounds scale with m — the "arbitrary (albeit
  // finite) time" cost [24] accepts and the paper's algorithm avoids.
  const Graph small = make_clique(32);   // m = 496
  const Graph large = make_clique(64);   // m = 2016
  ElectionParams p;
  p.seed = 7;
  const TerritoryElectionResult rs = run_territory_election(small, p);
  const TerritoryElectionResult rl = run_territory_election(large, p);
  ASSERT_TRUE(rs.success());
  ASSERT_TRUE(rl.success());
  EXPECT_GE(rs.rounds, small.edge_count());
  EXPECT_GE(rl.rounds, large.edge_count());
  EXPECT_GT(rl.rounds, 2 * rs.rounds);
}

TEST(Territory, SlowerButLeanerThanPaperOnSparseGraphs) {
  // The tradeoff the paper stakes out: on sparse graphs territory-DFS spends
  // fewer messages (O(m)) but vastly more time than the O~(tmix) algorithm.
  Rng grng(41);
  const Graph g = make_random_regular(256, 6, grng);
  ElectionParams p;
  p.seed = 9;
  const TerritoryElectionResult dfs = run_territory_election(g, p);
  const ElectionResult ours = run_leader_election(g, p);
  ASSERT_TRUE(dfs.success());
  ASSERT_TRUE(ours.success());
  EXPECT_LT(dfs.totals.congest_messages, ours.totals.congest_messages);
  EXPECT_GT(dfs.rounds, ours.totals.rounds / 4);
}

TEST(Territory, NoCandidatesNoLeader) {
  ElectionParams p;
  p.c1 = 0.0;
  const TerritoryElectionResult r =
      run_territory_election(make_clique(16), p);
  EXPECT_TRUE(r.candidates.empty());
  EXPECT_TRUE(r.leaders.empty());
}

TEST(Territory, DeterministicInSeed) {
  const Graph g = make_torus(6, 6);
  ElectionParams p;
  p.seed = 13;
  const TerritoryElectionResult a = run_territory_election(g, p);
  const TerritoryElectionResult b = run_territory_election(g, p);
  EXPECT_EQ(a.leaders, b.leaders);
  EXPECT_EQ(a.totals.congest_messages, b.totals.congest_messages);
  EXPECT_EQ(a.rounds, b.rounds);
}

}  // namespace
}  // namespace wcle
