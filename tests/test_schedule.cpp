// Paper-schedule execution mode: padding every sub-phase to the full
// T = (25/16) c1 t_u log^2 n must reproduce the paper's literal clock without
// changing a single message.
#include <gtest/gtest.h>

#include "wcle/core/leader_election.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/sim/metrics.hpp"

namespace wcle {
namespace {

TEST(PaperSchedule, RoundsEqualScheduleMessagesUnchanged) {
  const Graph g = make_clique(96);
  ElectionParams quiesce;
  quiesce.seed = 11;
  ElectionParams lockstep = quiesce;
  lockstep.paper_schedule = true;

  const ElectionResult rq = run_leader_election(g, quiesce);
  const ElectionResult rl = run_leader_election(g, lockstep);

  // Same randomness, same protocol: identical outcome and message bill.
  EXPECT_EQ(rq.leaders, rl.leaders);
  EXPECT_EQ(rq.contenders, rl.contenders);
  EXPECT_EQ(rq.totals.congest_messages, rl.totals.congest_messages);
  EXPECT_EQ(rq.totals.total_bits, rl.totals.total_bits);
  EXPECT_EQ(rq.phases, rl.phases);

  // The lockstep clock runs the full schedule; quiescence runs inside it.
  EXPECT_EQ(rl.totals.rounds, rl.scheduled_rounds);
  EXPECT_LT(rq.totals.rounds, rl.totals.rounds);
}

TEST(PaperSchedule, HoldsAcrossFamilies) {
  Rng grng(13);
  for (const Graph& g : {make_hypercube(6), make_torus(8, 8),
                         make_random_regular(100, 6, grng)}) {
    ElectionParams p;
    p.seed = 17;
    p.paper_schedule = true;
    const ElectionResult r = run_leader_election(g, p);
    EXPECT_EQ(r.totals.rounds, r.scheduled_rounds) << g.describe();
    EXPECT_TRUE(r.success()) << g.describe();
  }
}

TEST(Metrics, AccumulationOperator) {
  Metrics a, b;
  a.rounds = 10;
  a.congest_messages = 5;
  a.max_edge_backlog = 3;
  a.congest_messages_by_tag[7] = 5;
  b.rounds = 2;
  b.congest_messages = 1;
  b.max_edge_backlog = 9;
  b.congest_messages_by_tag[7] = 1;
  a += b;
  EXPECT_EQ(a.rounds, 12u);
  EXPECT_EQ(a.congest_messages, 6u);
  EXPECT_EQ(a.max_edge_backlog, 9u);
  EXPECT_EQ(a.congest_messages_by_tag[7], 6u);
}

TEST(Metrics, SummaryMentionsCounters) {
  Metrics m;
  m.rounds = 3;
  m.congest_messages = 4;
  const std::string s = m.summary();
  EXPECT_NE(s.find("rounds=3"), std::string::npos);
  EXPECT_NE(s.find("congest_msgs=4"), std::string::npos);
}

}  // namespace
}  // namespace wcle
