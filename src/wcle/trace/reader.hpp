// Readers for the two trace framings (writer.hpp). The JSONL parser is
// deliberately minimal: it understands exactly the line shapes the writers
// emit (flat objects, known keys) — enough for the replay verifier to pull
// the header out of any trace and for the summarize pass to reload full
// timelines, without dragging a JSON library into the build.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wcle/trace/writer.hpp"

namespace wcle {

/// One reloaded run: meta plus its timeline.
struct TraceRunData {
  TraceRunMeta meta;
  std::vector<TraceRound> rounds;
  std::vector<TraceEvent> events;
  std::vector<TraceWalkHop> hops;  ///< schema v2 (`--trace-walks`), else empty
  /// The run_end record's quanta total: bills ALL rounds, including rows a
  /// --trace-every sampling dropped (0 for a truncated trace).
  std::uint64_t declared_quanta = 0;
};

/// A fully reloaded trace file.
struct TraceFileData {
  TraceHeader header;
  TraceFormat format = TraceFormat::kJsonl;
  std::vector<TraceRunData> runs;
  std::uint64_t declared_runs = 0;  ///< the trailer's run count
};

/// Reads the whole file into a string (binary-safe). Throws
/// std::runtime_error when the file cannot be opened.
std::string read_file_bytes(const std::string& path);

/// Detects the framing from the leading bytes (binary magic vs JSONL).
TraceFormat detect_trace_format(const std::string& contents);

/// Extracts just the header from raw trace bytes (either framing). Throws
/// std::runtime_error on malformed input or a version the reader does not
/// understand.
TraceHeader parse_trace_header(const std::string& contents,
                               TraceFormat* format = nullptr);

/// Fully parses raw trace bytes (either framing).
TraceFileData parse_trace(const std::string& contents);

/// read_file_bytes + parse_trace.
TraceFileData read_trace_file(const std::string& path);

}  // namespace wcle
