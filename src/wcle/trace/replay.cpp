#include "wcle/trace/replay.hpp"

#include <algorithm>
#include <sstream>

#include "wcle/api/scenario.hpp"
#include "wcle/api/sweep.hpp"
#include "wcle/trace/reader.hpp"

namespace wcle {

ReplayReport verify_replay(const std::string& path, unsigned threads) {
  ReplayReport report;
  const std::string original = read_file_bytes(path);
  report.header = parse_trace_header(original, &report.format);
  report.original_bytes = original.size();

  const ExperimentSpec spec = parse_spec(report.header.spec);

  std::ostringstream buf;
  const std::unique_ptr<TraceWriter> writer =
      make_trace_writer(report.format, buf);
  writer->header(report.header);
  const std::vector<CellResult> results =
      run_sweep(spec, /*sinks=*/{}, threads, writer.get());
  report.runs = static_cast<std::uint64_t>(results.size()) *
                static_cast<std::uint64_t>(spec.trials);

  const std::string regenerated = buf.str();
  report.regenerated_bytes = regenerated.size();
  if (regenerated == original) {
    report.ok = true;
    report.detail = "byte-identical: " + std::to_string(report.runs) +
                    " run(s), " + std::to_string(original.size()) + " bytes";
    return report;
  }
  const std::size_t limit = std::min(original.size(), regenerated.size());
  std::size_t at = 0;
  while (at < limit && original[at] == regenerated[at]) ++at;
  report.first_difference = at;
  report.detail = "MISMATCH at byte " + std::to_string(at) + " (original " +
                  std::to_string(original.size()) + " bytes, regenerated " +
                  std::to_string(regenerated.size()) + ")";
  return report;
}

}  // namespace wcle
