// Timeline analysis: folds one recorded run's rows and events into
// per-round series (traffic, in-flight backlog, live nodes, cumulative
// message bill) plus the scalar shape of the trajectory (rounds-to-quiet,
// peak congestion, fault totals). The series render through the shared
// Table layer, so `wcle_cli trace-summary` can emit the same data as an
// aligned table or CSV — the per-round view of the paper's O~(tmix) /
// O~(sqrt(n)·tmix) claims that end-of-run totals cannot show.
#pragma once

#include <cstdint>
#include <vector>

#include "wcle/support/table.hpp"
#include "wcle/trace/reader.hpp"

namespace wcle {

struct TraceSeriesPoint {
  std::uint64_t round = 0;
  std::uint32_t sends = 0;
  std::uint32_t quanta = 0;
  std::uint32_t delivered = 0;
  std::uint32_t dropped = 0;  ///< all causes
  std::uint32_t backlog = 0;  ///< directed edges still busy (in-flight work)
  std::uint64_t live_nodes = 0;
  std::uint64_t cum_messages = 0;  ///< cumulative quanta (paper's unit)
  std::uint64_t cum_dropped = 0;
};

struct TraceSummary {
  std::vector<TraceSeriesPoint> series;
  /// Row stride of a `--trace-every=K` sampled trace, inferred as the
  /// smallest gap between consecutive recorded rounds (1 = every round).
  /// When sampled, per-row quanta/drop deltas are scaled by the stride
  /// before accumulating, so the cumulative series estimate the full bill
  /// instead of summing only the kept rows; total_messages prefers the
  /// run_end record's exact all-rounds figure when the trace carries one.
  std::uint64_t stride = 1;
  bool sampled = false;  ///< stride > 1: cumulative series are estimates
  std::uint64_t rounds = 0;           ///< timeline length
  std::uint64_t rounds_to_quiet = 0;  ///< last round with any traffic
  std::uint64_t peak_backlog = 0;
  std::uint64_t peak_backlog_round = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_dropped = 0;
  std::uint64_t final_live = 0;
  std::uint64_t crashes = 0;
  std::uint64_t link_failures = 0;
  std::uint64_t churn_outs = 0;
  std::uint64_t contenders = 0;
  std::uint64_t phase_marks = 0;
  std::uint64_t segments = 0;
};

/// Folds one run's timeline. Live-node counts start from run.meta.n and
/// follow the crash/churn events.
TraceSummary summarize_trace(const TraceRunData& run);

/// The per-round series as a Table (one row per `every`-th round; the first
/// and last rounds always appear). Renders via Table::print / write_csv.
Table trace_summary_table(const TraceSummary& summary,
                          std::uint64_t every = 1);

}  // namespace wcle
