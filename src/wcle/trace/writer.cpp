#include "wcle/trace/writer.hpp"

#include <ostream>
#include <sstream>

#include "wcle/support/json.hpp"

namespace wcle {

// ------------------------------------------------------------------ JSONL

std::string trace_header_line(const TraceHeader& h) {
  std::ostringstream out;
  out << "{\"type\":\"header\",\"version\":" << h.version << ",\"tool\":\""
      << json_escape(h.tool) << "\",\"spec\":\"" << json_escape(h.spec)
      << "\"}";
  return out.str();
}

void JsonlTraceWriter::header(const TraceHeader& h) {
  *out_ << trace_header_line(h) << "\n";
}

void JsonlTraceWriter::begin_run(const TraceRunMeta& m) {
  run_ = m.run;
  *out_ << "{\"type\":\"run\",\"run\":" << m.run << ",\"cell\":" << m.cell
        << ",\"trial\":" << m.trial << ",\"seed\":" << m.seed
        << ",\"algorithm\":\"" << json_escape(m.algorithm)
        << "\",\"family\":\"" << json_escape(m.family) << "\",\"n\":" << m.n
        << "}\n";
}

void JsonlTraceWriter::round(const TraceRound& r) {
  *out_ << "{\"type\":\"round\",\"run\":" << run_ << ",\"round\":" << r.round
        << ",\"sends\":" << r.sends << ",\"quanta\":" << r.quanta
        << ",\"delivered\":" << r.delivered << ",\"drop_rand\":"
        << r.dropped_rand << ",\"drop_crash\":" << r.dropped_crash
        << ",\"drop_link\":" << r.dropped_link << ",\"backlog\":" << r.backlog
        << "}\n";
}

void JsonlTraceWriter::event(const TraceEvent& e) {
  *out_ << "{\"type\":\"event\",\"run\":" << run_ << ",\"round\":" << e.round
        << ",\"kind\":\"" << trace_event_kind_name(e.kind) << "\",\"a\":"
        << e.a << ",\"b\":" << e.b << ",\"label\":\"" << json_escape(e.label)
        << "\"}\n";
}

void JsonlTraceWriter::walk_hop(const TraceWalkHop& h) {
  *out_ << "{\"type\":\"walk_hop\",\"run\":" << run_ << ",\"round\":"
        << h.round << ",\"origin\":" << h.origin << ",\"src\":" << h.src
        << ",\"dst\":" << h.dst << ",\"count\":" << h.count
        << ",\"tag\":" << static_cast<std::uint32_t>(h.tag) << "}\n";
}

void JsonlTraceWriter::end_run(std::uint64_t rounds, std::uint64_t events,
                               std::uint64_t quanta) {
  *out_ << "{\"type\":\"run_end\",\"run\":" << run_ << ",\"rounds\":" << rounds
        << ",\"events\":" << events << ",\"quanta\":" << quanta << "}\n";
}

void JsonlTraceWriter::finish(std::uint64_t runs) {
  *out_ << "{\"type\":\"trace_end\",\"runs\":" << runs << "}\n";
  out_->flush();
}

// ----------------------------------------------------------------- binary

namespace {

// Record tags of the binary framing (one byte each).
constexpr std::uint8_t kRecRun = 1;
constexpr std::uint8_t kRecRound = 2;
constexpr std::uint8_t kRecEvent = 3;
constexpr std::uint8_t kRecRunEnd = 4;
constexpr std::uint8_t kRecEnd = 5;
constexpr std::uint8_t kRecWalkHop = 6;  // schema v2

void put_u8(std::ostream& out, std::uint8_t v) {
  out.put(static_cast<char>(v));
}

void put_u16(std::ostream& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) out.put(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u32(std::ostream& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.put(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::ostream& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.put(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_str(std::ostream& out, const std::string& s) {
  const std::uint16_t len =
      static_cast<std::uint16_t>(s.size() > 0xffff ? 0xffff : s.size());
  put_u16(out, len);
  out.write(s.data(), len);
}

}  // namespace

void BinaryTraceWriter::header(const TraceHeader& h) {
  out_->write(kTraceMagic, 8);
  const std::string line = trace_header_line(h);
  put_u32(*out_, static_cast<std::uint32_t>(line.size()));
  out_->write(line.data(), static_cast<std::streamsize>(line.size()));
}

void BinaryTraceWriter::begin_run(const TraceRunMeta& m) {
  put_u8(*out_, kRecRun);
  put_u64(*out_, m.run);
  put_u64(*out_, m.cell);
  put_u64(*out_, m.trial);
  put_u64(*out_, m.seed);
  put_u64(*out_, m.n);
  put_str(*out_, m.algorithm);
  put_str(*out_, m.family);
}

void BinaryTraceWriter::round(const TraceRound& r) {
  put_u8(*out_, kRecRound);
  put_u64(*out_, r.round);
  put_u32(*out_, r.sends);
  put_u32(*out_, r.quanta);
  put_u32(*out_, r.delivered);
  put_u32(*out_, r.dropped_rand);
  put_u32(*out_, r.dropped_crash);
  put_u32(*out_, r.dropped_link);
  put_u32(*out_, r.backlog);
}

void BinaryTraceWriter::event(const TraceEvent& e) {
  put_u8(*out_, kRecEvent);
  put_u64(*out_, e.round);
  put_u8(*out_, static_cast<std::uint8_t>(e.kind));
  put_u64(*out_, e.a);
  put_u64(*out_, e.b);
  put_str(*out_, e.label);
}

void BinaryTraceWriter::walk_hop(const TraceWalkHop& h) {
  put_u8(*out_, kRecWalkHop);
  put_u64(*out_, h.round);
  put_u32(*out_, h.origin);
  put_u32(*out_, h.src);
  put_u32(*out_, h.dst);
  put_u32(*out_, h.count);
  put_u8(*out_, h.tag);
}

void BinaryTraceWriter::end_run(std::uint64_t rounds, std::uint64_t events,
                                std::uint64_t quanta) {
  put_u8(*out_, kRecRunEnd);
  put_u64(*out_, rounds);
  put_u64(*out_, events);
  put_u64(*out_, quanta);
}

void BinaryTraceWriter::finish(std::uint64_t runs) {
  put_u8(*out_, kRecEnd);
  put_u64(*out_, runs);
  out_->flush();
}

// ----------------------------------------------------------------- shared

TraceFormat trace_format_for_path(const std::string& path) {
  const auto ends_with = [&path](const char* suffix) {
    const std::string s(suffix);
    return path.size() >= s.size() &&
           path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with(".bin") || ends_with(".btrace") ? TraceFormat::kBinary
                                                   : TraceFormat::kJsonl;
}

std::unique_ptr<TraceWriter> make_trace_writer(TraceFormat format,
                                               std::ostream& out) {
  if (format == TraceFormat::kBinary)
    return std::make_unique<BinaryTraceWriter>(out);
  return std::make_unique<JsonlTraceWriter>(out);
}

void write_run(TraceWriter& w, const TraceRunMeta& meta,
               const TraceRecorder& rec) {
  w.begin_run(meta);
  const std::vector<TraceRound>& rounds = rec.rounds();
  const std::vector<TraceEvent>& events = rec.events();
  const std::vector<TraceWalkHop>& hops = rec.walk_hops();
  // Merge in round order: events land before the row that closes their
  // round (fault batches fire at the start of a round, before service),
  // walk hops after the events of their round. Event and hop rounds are
  // non-decreasing except across segment rebases, so both cursors only ever
  // advance — trailing records are flushed after the last row.
  std::size_t e = 0;
  std::size_t h = 0;
  for (const TraceRound& r : rounds) {
    while (e < events.size() && events[e].round <= r.round) {
      w.event(events[e]);
      ++e;
    }
    while (h < hops.size() && hops[h].round <= r.round) {
      w.walk_hop(hops[h]);
      ++h;
    }
    w.round(r);
  }
  while (e < events.size()) {
    w.event(events[e]);
    ++e;
  }
  while (h < hops.size()) {
    w.walk_hop(hops[h]);
    ++h;
  }
  w.end_run(rounds.size(), events.size(), rec.total_quanta());
}

}  // namespace wcle
