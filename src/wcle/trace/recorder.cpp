#include "wcle/trace/recorder.hpp"

namespace wcle {

const char* trace_event_kind_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSegment: return "segment";
    case TraceEventKind::kCrash: return "crash";
    case TraceEventKind::kLinkDown: return "link_down";
    case TraceEventKind::kChurnOut: return "churn_out";
    case TraceEventKind::kChurnIn: return "churn_in";
    case TraceEventKind::kContender: return "contender";
    case TraceEventKind::kPhase: return "phase";
  }
  return "unknown";
}

void TraceRecorder::begin_segment() {
  offset_ = rounds_.empty() ? 0 : rounds_.back().round;
  events_.push_back(
      {offset_ + 1, TraceEventKind::kSegment, segments_, 0, ""});
  segments_ += 1;
}

TraceRound& TraceRecorder::row(std::uint64_t local_round) {
  const std::uint64_t absolute = offset_ + local_round;
  // Rounds advance one step() at a time, but sends can announce the upcoming
  // round before its step runs — append rows up to the requested index.
  while (rounds_.empty() || rounds_.back().round < absolute) {
    TraceRound r;
    r.round = rounds_.empty() ? absolute : rounds_.back().round + 1;
    rounds_.push_back(r);
  }
  return rounds_.back();
}

void TraceRecorder::on_round(std::uint64_t round, std::uint32_t quanta,
                             std::uint32_t delivered,
                             std::uint32_t dropped_rand,
                             std::uint32_t dropped_crash,
                             std::uint32_t dropped_link,
                             std::uint32_t backlog) {
  TraceRound& r = row(round);
  r.quanta += quanta;
  r.delivered += delivered;
  r.dropped_rand += dropped_rand;
  r.dropped_crash += dropped_crash;
  r.dropped_link += dropped_link;
  r.backlog = backlog;
}

void TraceRecorder::event(std::uint64_t round, TraceEventKind kind,
                          std::uint64_t a, std::uint64_t b,
                          std::string label) {
  events_.push_back({offset_ + round, kind, a, b, std::move(label)});
}

void TraceRecorder::annotate(std::string label, std::uint64_t value) {
  const std::uint64_t at = rounds_.empty() ? 1 : rounds_.back().round + 1;
  events_.push_back({at, TraceEventKind::kPhase, value, 0, std::move(label)});
}

std::uint64_t TraceRecorder::total_quanta() const {
  std::uint64_t total = 0;
  for (const TraceRound& r : rounds_) total += r.quanta;
  return total;
}

void TraceRecorder::clear() {
  rounds_.clear();
  events_.clear();
  offset_ = 0;
  segments_ = 0;
}

}  // namespace wcle
