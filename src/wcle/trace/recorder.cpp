#include "wcle/trace/recorder.hpp"

namespace wcle {

const char* trace_event_kind_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSegment: return "segment";
    case TraceEventKind::kCrash: return "crash";
    case TraceEventKind::kLinkDown: return "link_down";
    case TraceEventKind::kChurnOut: return "churn_out";
    case TraceEventKind::kChurnIn: return "churn_in";
    case TraceEventKind::kContender: return "contender";
    case TraceEventKind::kPhase: return "phase";
  }
  return "unknown";
}

namespace {
/// Initial hop-buffer capacity: one warm chunk big enough that short runs
/// never grow it, small enough to be free when walk tracing is off (the
/// vector stays unallocated until set_trace_walks enables the stream).
constexpr std::size_t kWalkHopReserve = 1 << 14;
}  // namespace

void TraceRecorder::set_trace_walks(std::uint32_t every) {
  walks_every_ = every;
  if (every != 0 && hops_.capacity() == 0) hops_.reserve(kWalkHopReserve);
}

void TraceRecorder::on_walk_hop(std::uint64_t round, std::uint32_t origin,
                                std::uint32_t src, std::uint32_t dst,
                                std::uint32_t count, std::uint8_t tag) {
  if (walks_every_ == 0) return;
  if (walks_every_ > 1 && origin % walks_every_ != 0) return;
  const TraceWalkHop hop{offset_ + round, origin, src, dst, count, tag};
  // Capacity-guarded cold growth: the buffer is pre-sized by
  // set_trace_walks, so the steady state of the walk-stage no-alloc region
  // never reaches the allocator; doubling happens O(log hops) times.
  if (hops_.size() == hops_.capacity()) {
    hops_.reserve(hops_.capacity() == 0 ? kWalkHopReserve
                                        : hops_.capacity() * 2);
    hops_.push_back(hop);
    return;
  }
  hops_.push_back(hop);
}

void TraceRecorder::begin_segment() {
  offset_ = frontier();
  events_.push_back(
      {offset_ + 1, TraceEventKind::kSegment, segments_, 0, ""});
  segments_ += 1;
}

void TraceRecorder::close_row() {
  TraceRound& r = rounds_.back();
  total_quanta_ += r.quanta;
  last_round_ = r.round;
  // Sampling: drop rows off the K-grid. K = 1 keeps everything, which makes
  // rounds_ byte-for-byte the pre-sampling row set.
  if (every_ > 1 && r.round % every_ != 0) rounds_.pop_back();
  open_ = false;
}

TraceRound& TraceRecorder::row(std::uint64_t local_round) {
  const std::uint64_t absolute = offset_ + local_round;
  // Rounds advance one step() at a time, but sends can announce the upcoming
  // round before its step runs — open rows up to the requested index,
  // closing (and sampling) everything the cursor passes.
  if (open_ && rounds_.back().round >= absolute) return rounds_.back();
  for (;;) {
    if (open_) {
      if (rounds_.back().round >= absolute) return rounds_.back();
      close_row();
    }
    TraceRound r;
    r.round = last_round_ == 0 ? absolute : last_round_ + 1;
    // wcle-lint: no-alloc-ok(rows grow only under a runtime-wired recorder)
    rounds_.push_back(r);
    open_ = true;
  }
}

void TraceRecorder::on_round(std::uint64_t round, std::uint32_t quanta,
                             std::uint32_t delivered,
                             std::uint32_t dropped_rand,
                             std::uint32_t dropped_crash,
                             std::uint32_t dropped_link,
                             std::uint32_t backlog) {
  TraceRound& r = row(round);
  r.quanta += quanta;
  r.delivered += delivered;
  r.dropped_rand += dropped_rand;
  r.dropped_crash += dropped_crash;
  r.dropped_link += dropped_link;
  r.backlog = backlog;
  // A round's step() is the only writer of its row (later hooks only touch
  // later rounds) — close it so sampling applies immediately.
  close_row();
}

void TraceRecorder::event(std::uint64_t round, TraceEventKind kind,
                          std::uint64_t a, std::uint64_t b,
                          std::string label) {
  events_.push_back({offset_ + round, kind, a, b, std::move(label)});
}

void TraceRecorder::annotate(std::string label, std::uint64_t value) {
  const std::uint64_t at = frontier() == 0 ? 1 : frontier() + 1;
  events_.push_back({at, TraceEventKind::kPhase, value, 0, std::move(label)});
}

const std::vector<TraceRound>& TraceRecorder::rounds() const {
  // A trailing open row (a send announced for a round whose step never ran)
  // already sits at the back of rounds_ — nothing to materialize.
  return rounds_;
}

std::uint64_t TraceRecorder::total_quanta() const {
  // total_quanta_ counts closed rounds (sampled away or not); an open
  // trailing row has not been billed yet.
  return total_quanta_ + (open_ ? rounds_.back().quanta : 0);
}

void TraceRecorder::clear() {
  rounds_.clear();
  events_.clear();
  hops_.clear();
  open_ = false;
  last_round_ = 0;
  total_quanta_ = 0;
  offset_ = 0;
  segments_ = 0;
}

}  // namespace wcle
