#include "wcle/trace/reader.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wcle {

namespace {

// ------------------------------------------------ targeted JSONL parsing

/// Position just past `"key":` in `line`, or npos. Keys are unique within
/// every line shape the writers emit, so plain substring search is exact.
std::size_t value_pos(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  return at == std::string::npos ? std::string::npos : at + needle.size();
}

bool field_u64(const std::string& line, const std::string& key,
               std::uint64_t& out) {
  std::size_t at = value_pos(line, key);
  if (at == std::string::npos) return false;
  std::uint64_t v = 0;
  bool any = false;
  while (at < line.size() && line[at] >= '0' && line[at] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(line[at] - '0');
    ++at;
    any = true;
  }
  if (!any) return false;
  out = v;
  return true;
}

std::uint64_t require_u64(const std::string& line, const std::string& key) {
  std::uint64_t v = 0;
  if (!field_u64(line, key, v))
    throw std::runtime_error("trace: line missing numeric field '" + key +
                             "': " + line);
  return v;
}

bool field_str(const std::string& line, const std::string& key,
               std::string& out) {
  std::size_t at = value_pos(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] != '"')
    return false;
  ++at;
  std::string v;
  while (at < line.size() && line[at] != '"') {
    char c = line[at];
    if (c == '\\' && at + 1 < line.size()) {
      const char esc = line[at + 1];
      at += 2;
      switch (esc) {
        case '"': v += '"'; break;
        case '\\': v += '\\'; break;
        case 'n': v += '\n'; break;
        case 'r': v += '\r'; break;
        case 't': v += '\t'; break;
        case 'u': {
          // Writers only emit \u00XX (control characters).
          if (at + 4 <= line.size()) {
            const unsigned code =
                static_cast<unsigned>(std::stoul(line.substr(at, 4), nullptr,
                                                 16));
            v += static_cast<char>(code & 0xff);
            at += 4;
          }
          break;
        }
        default: v += esc; break;
      }
      continue;
    }
    v += c;
    ++at;
  }
  out = std::move(v);
  return true;
}

std::string require_str(const std::string& line, const std::string& key) {
  std::string v;
  if (!field_str(line, key, v))
    throw std::runtime_error("trace: line missing string field '" + key +
                             "': " + line);
  return v;
}

TraceEventKind kind_from_name(const std::string& name) {
  for (int k = 0; k <= static_cast<int>(TraceEventKind::kPhase); ++k) {
    const auto kind = static_cast<TraceEventKind>(k);
    if (name == trace_event_kind_name(kind)) return kind;
  }
  throw std::runtime_error("trace: unknown event kind '" + name + "'");
}

TraceHeader header_from_line(const std::string& line) {
  TraceHeader h;
  h.version = static_cast<std::uint32_t>(require_u64(line, "version"));
  // v1 is a strict subset of v2 (no walk_hop records), so every supported
  // version parses with one reader.
  if (h.version < kTraceVersionMin || h.version > kTraceVersion)
    throw std::runtime_error("trace: unsupported version " +
                             std::to_string(h.version));
  h.tool = require_str(line, "tool");
  h.spec = require_str(line, "spec");
  return h;
}

TraceFileData parse_jsonl(const std::string& contents) {
  TraceFileData data;
  data.format = TraceFormat::kJsonl;
  std::istringstream in(contents);
  std::string line;
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::string type = require_str(line, "type");
    if (type == "header") {
      data.header = header_from_line(line);
      have_header = true;
    } else if (type == "run") {
      TraceRunData run;
      run.meta.run = require_u64(line, "run");
      run.meta.cell = require_u64(line, "cell");
      run.meta.trial = require_u64(line, "trial");
      run.meta.seed = require_u64(line, "seed");
      run.meta.n = require_u64(line, "n");
      run.meta.algorithm = require_str(line, "algorithm");
      run.meta.family = require_str(line, "family");
      data.runs.push_back(std::move(run));
    } else if (type == "round") {
      if (data.runs.empty())
        throw std::runtime_error("trace: round line before any run line");
      TraceRound r;
      r.round = require_u64(line, "round");
      r.sends = static_cast<std::uint32_t>(require_u64(line, "sends"));
      r.quanta = static_cast<std::uint32_t>(require_u64(line, "quanta"));
      r.delivered = static_cast<std::uint32_t>(require_u64(line, "delivered"));
      r.dropped_rand =
          static_cast<std::uint32_t>(require_u64(line, "drop_rand"));
      r.dropped_crash =
          static_cast<std::uint32_t>(require_u64(line, "drop_crash"));
      r.dropped_link =
          static_cast<std::uint32_t>(require_u64(line, "drop_link"));
      r.backlog = static_cast<std::uint32_t>(require_u64(line, "backlog"));
      data.runs.back().rounds.push_back(r);
    } else if (type == "event") {
      if (data.runs.empty())
        throw std::runtime_error("trace: event line before any run line");
      TraceEvent e;
      e.round = require_u64(line, "round");
      e.kind = kind_from_name(require_str(line, "kind"));
      e.a = require_u64(line, "a");
      e.b = require_u64(line, "b");
      e.label = require_str(line, "label");
      data.runs.back().events.push_back(std::move(e));
    } else if (type == "walk_hop") {
      if (data.runs.empty())
        throw std::runtime_error("trace: walk_hop line before any run line");
      TraceWalkHop h;
      h.round = require_u64(line, "round");
      h.origin = static_cast<std::uint32_t>(require_u64(line, "origin"));
      h.src = static_cast<std::uint32_t>(require_u64(line, "src"));
      h.dst = static_cast<std::uint32_t>(require_u64(line, "dst"));
      h.count = static_cast<std::uint32_t>(require_u64(line, "count"));
      h.tag = static_cast<std::uint8_t>(require_u64(line, "tag"));
      data.runs.back().hops.push_back(h);
    } else if (type == "run_end") {
      // Rows and events are re-derivable; only the declared quanta total is
      // kept — it bills rounds a --trace-every sampling dropped, which the
      // summarize pass needs to report sampled traces honestly.
      if (!data.runs.empty())
        data.runs.back().declared_quanta = require_u64(line, "quanta");
    } else if (type == "trace_end") {
      data.declared_runs = require_u64(line, "runs");
    } else {
      throw std::runtime_error("trace: unknown line type '" + type + "'");
    }
  }
  if (!have_header) throw std::runtime_error("trace: missing header line");
  return data;
}

// ------------------------------------------------------- binary parsing

class BinaryCursor {
 public:
  BinaryCursor(const std::string& data, std::size_t at)
      : data_(&data), at_(at) {}

  bool done() const { return at_ >= data_->size(); }

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>((*data_)[at_++]);
  }
  std::uint16_t u16() { return static_cast<std::uint16_t>(uint_le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(uint_le(4)); }
  std::uint64_t u64() { return uint_le(8); }

  std::string str() {
    const std::uint16_t len = u16();
    need(len);
    std::string s = data_->substr(at_, len);
    at_ += len;
    return s;
  }

 private:
  void need(std::size_t bytes) const {
    if (at_ + bytes > data_->size())
      throw std::runtime_error("trace: truncated binary trace");
  }
  std::uint64_t uint_le(int bytes) {
    need(static_cast<std::size_t>(bytes));
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>((*data_)[at_ + i]))
           << (8 * i);
    at_ += static_cast<std::size_t>(bytes);
    return v;
  }

  const std::string* data_;
  std::size_t at_;
};

TraceFileData parse_binary(const std::string& contents) {
  TraceFileData data;
  data.format = TraceFormat::kBinary;
  BinaryCursor cur(contents, 8);  // past the magic
  const std::uint32_t header_len = cur.u32();
  if (12 + static_cast<std::size_t>(header_len) > contents.size())
    throw std::runtime_error("trace: truncated binary header");
  data.header = header_from_line(contents.substr(12, header_len));
  BinaryCursor rec(contents, 12 + header_len);
  while (!rec.done()) {
    const std::uint8_t tag = rec.u8();
    if (tag == 1) {  // run
      TraceRunData run;
      run.meta.run = rec.u64();
      run.meta.cell = rec.u64();
      run.meta.trial = rec.u64();
      run.meta.seed = rec.u64();
      run.meta.n = rec.u64();
      run.meta.algorithm = rec.str();
      run.meta.family = rec.str();
      data.runs.push_back(std::move(run));
    } else if (tag == 2) {  // round
      if (data.runs.empty())
        throw std::runtime_error("trace: round record before any run");
      TraceRound r;
      r.round = rec.u64();
      r.sends = rec.u32();
      r.quanta = rec.u32();
      r.delivered = rec.u32();
      r.dropped_rand = rec.u32();
      r.dropped_crash = rec.u32();
      r.dropped_link = rec.u32();
      r.backlog = rec.u32();
      data.runs.back().rounds.push_back(r);
    } else if (tag == 3) {  // event
      if (data.runs.empty())
        throw std::runtime_error("trace: event record before any run");
      TraceEvent e;
      e.round = rec.u64();
      e.kind = static_cast<TraceEventKind>(rec.u8());
      e.a = rec.u64();
      e.b = rec.u64();
      e.label = rec.str();
      data.runs.back().events.push_back(std::move(e));
    } else if (tag == 4) {  // run_end
      rec.u64();
      rec.u64();
      const std::uint64_t quanta = rec.u64();
      if (!data.runs.empty()) data.runs.back().declared_quanta = quanta;
    } else if (tag == 5) {  // trace_end
      data.declared_runs = rec.u64();
    } else if (tag == 6) {  // walk_hop (schema v2)
      if (data.runs.empty())
        throw std::runtime_error("trace: walk_hop record before any run");
      TraceWalkHop h;
      h.round = rec.u64();
      h.origin = rec.u32();
      h.src = rec.u32();
      h.dst = rec.u32();
      h.count = rec.u32();
      h.tag = rec.u8();
      data.runs.back().hops.push_back(h);
    } else {
      throw std::runtime_error("trace: unknown binary record tag " +
                               std::to_string(tag));
    }
  }
  return data;
}

}  // namespace

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TraceFormat detect_trace_format(const std::string& contents) {
  return contents.size() >= 8 &&
                 std::memcmp(contents.data(), kTraceMagic, 8) == 0
             ? TraceFormat::kBinary
             : TraceFormat::kJsonl;
}

TraceHeader parse_trace_header(const std::string& contents,
                               TraceFormat* format) {
  const TraceFormat f = detect_trace_format(contents);
  if (format) *format = f;
  if (f == TraceFormat::kBinary) {
    BinaryCursor cur(contents, 8);
    const std::uint32_t header_len = cur.u32();
    if (12 + static_cast<std::size_t>(header_len) > contents.size())
      throw std::runtime_error("trace: truncated binary header");
    return header_from_line(contents.substr(12, header_len));
  }
  const std::size_t eol = contents.find('\n');
  const std::string first =
      eol == std::string::npos ? contents : contents.substr(0, eol);
  if (first.find("\"type\":\"header\"") == std::string::npos)
    throw std::runtime_error("trace: first line is not a header line");
  return header_from_line(first);
}

TraceFileData parse_trace(const std::string& contents) {
  return detect_trace_format(contents) == TraceFormat::kBinary
             ? parse_binary(contents)
             : parse_jsonl(contents);
}

TraceFileData read_trace_file(const std::string& path) {
  return parse_trace(read_file_bytes(path));
}

}  // namespace wcle
