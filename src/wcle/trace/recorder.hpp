// Per-round event recorder — the opt-in observability spine of the trace
// subsystem. A TraceRecorder is handed to the transport through
// `CongestConfig::trace` (protocols inherit it via `ElectionParams::trace`
// and congest_config_for); when the pointer is null the hot path pays a
// single predictable branch and records nothing.
//
// The recorder accumulates two streams for ONE protocol run:
//   - rows:   one TraceRound per transport round (sends, quanta served,
//             deliveries, drops by cause, end-of-round backlog), and
//   - events: discrete happenings (crashes, link failures, churn, contender
//             announcements, protocol phase transitions).
//
// Sampled tracing: set_sample_every(K) keeps only every K-th round row
// (absolute round % K == 0) while events are always kept, so traced scale-2
// sweeps pay 1/K of the row memory and bytes. K = 1 (the default) records
// every round and is byte-for-byte the pre-sampling format. total_quanta()
// always sums over ALL rounds, sampled away or not.
//
// Composed protocols (explicit election = election + broadcast) drive several
// Networks in sequence; each Network opens a *segment* and the recorder
// rebases its network-local round numbers onto one absolute timeline, so a
// trace reads as a single run even across sub-protocols. Recording draws no
// randomness and never feeds back into the execution — a traced run is
// bit-identical to the untraced one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wcle {

enum class TraceEventKind : std::uint8_t {
  kSegment = 0,    ///< a new Network attached (a = segment ordinal)
  kCrash = 1,      ///< node a crash-stopped
  kLinkDown = 2,   ///< undirected link (a, b) failed
  kChurnOut = 3,   ///< node a churned out
  kChurnIn = 4,    ///< node a rejoined
  kContender = 5,  ///< node a announced itself a contender/candidate
  kPhase = 6,      ///< protocol phase transition (label + value a)
};

/// Stable wire name ("crash", "link_down", ...) used by every writer.
const char* trace_event_kind_name(TraceEventKind kind);

/// One transport round on the absolute timeline.
struct TraceRound {
  std::uint64_t round = 0;          ///< absolute round (1-based)
  std::uint32_t sends = 0;          ///< logical send() calls enqueued
  std::uint32_t quanta = 0;         ///< B-bit transmissions served
  std::uint32_t delivered = 0;      ///< messages delivered
  std::uint32_t dropped_rand = 0;   ///< random-drop losses
  std::uint32_t dropped_crash = 0;  ///< crash-stop losses (incl. muted sends)
  std::uint32_t dropped_link = 0;   ///< failed-link losses
  std::uint32_t backlog = 0;        ///< directed edges still busy at round end
};

/// One discrete event. `a`/`b` are kind-specific operands (see
/// TraceEventKind); `label` names phase transitions.
struct TraceEvent {
  std::uint64_t round = 0;  ///< absolute round the event took effect in
  TraceEventKind kind = TraceEventKind::kSegment;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::string label;
};

/// One walk-token delivery (schema v2, `--trace-walks`): a coalesced token
/// message for walk origin `origin` crossed directed edge `src -> dst` in
/// `round`, carrying `count` walkers under transport tag `tag`. One record
/// per delivered token message, so at `--trace-walks=1` the record count of
/// a run reconciles exactly with `congest_messages_by_tag[tag]`.
struct TraceWalkHop {
  std::uint64_t round = 0;   ///< absolute round of the delivery
  std::uint32_t origin = 0;  ///< walk origin node id
  std::uint32_t src = 0;     ///< sending endpoint of the directed edge
  std::uint32_t dst = 0;     ///< receiving endpoint
  std::uint32_t count = 0;   ///< coalesced walker multiplicity
  std::uint8_t tag = 0;      ///< transport tag (kTagWalkToken)
};

class TraceRecorder {
 public:
  /// Keep every `every`-th round row (1 or 0 = all rows, the default).
  /// Applied by the Network constructor from CongestConfig::trace_every;
  /// changing it mid-run only affects rows closed afterwards.
  void set_sample_every(std::uint32_t every) {
    every_ = every == 0 ? 1 : every;
  }
  std::uint32_t sample_every() const noexcept { return every_; }

  /// Enables per-walk token tracing: keep hop records for walk origins with
  /// `origin % K == 0` (K = 1 records every walk; 0 = off, the default).
  /// Sampling by origin — not by round — keeps every sampled walk's path
  /// complete, which the per-walk summary pass depends on. Applied by the
  /// Network constructor from CongestConfig::trace_walks; pre-sizes the hop
  /// buffer so the steady state of a traced run stays allocation-free.
  void set_trace_walks(std::uint32_t every);
  std::uint32_t trace_walks() const noexcept { return walks_every_; }

  /// Called by each Network constructor: subsequent network-local rounds are
  /// rebased past everything recorded so far, and a kSegment event marks the
  /// boundary.
  void begin_segment();

  /// Transport hooks; `round` is network-local (the current segment's count).
  void on_send(std::uint64_t round) { row(round).sends += 1; }
  void on_muted_send(std::uint64_t round) { row(round).dropped_crash += 1; }
  /// End-of-round flush: the per-cause deltas of one step() call. Closes the
  /// row — a step() is the only writer of its round, so the row is final.
  void on_round(std::uint64_t round, std::uint32_t quanta,
                std::uint32_t delivered, std::uint32_t dropped_rand,
                std::uint32_t dropped_crash, std::uint32_t dropped_link,
                std::uint32_t backlog);

  /// Records a discrete event at network-local `round`. Events are never
  /// sampled away.
  void event(std::uint64_t round, TraceEventKind kind, std::uint64_t a,
             std::uint64_t b = 0, std::string label = "");

  /// Records one walk-token delivery at network-local `round` (the walk
  /// engine's hook; a no-op unless set_trace_walks enabled the stream and
  /// `origin` is on the sampling grid). Called from inside the walk-stage
  /// no-alloc region: growth is capacity-guarded cold-path only.
  void on_walk_hop(std::uint64_t round, std::uint32_t origin,
                   std::uint32_t src, std::uint32_t dst, std::uint32_t count,
                   std::uint8_t tag);

  /// The kept hop records, in delivery order (round-major). Independent of
  /// the row sampling grid: `--trace-every` thins rows, not hops.
  const std::vector<TraceWalkHop>& walk_hops() const { return hops_; }

  /// Protocol-level annotation between networks (no local round available):
  /// lands one past the last recorded absolute round.
  void annotate(std::string label, std::uint64_t value);

  /// The kept rows (all rounds at K = 1, every K-th otherwise). Flushes a
  /// trailing open row (a send announced for a round whose step never ran),
  /// so call after the run — matching the pre-sampling row set exactly.
  const std::vector<TraceRound>& rounds() const;
  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t segments() const { return segments_; }

  /// Total quanta over ALL rounds (the run's congest-message bill),
  /// including rows a K > 1 sampling dropped.
  std::uint64_t total_quanta() const;

  void clear();

 private:
  TraceRound& row(std::uint64_t local_round);
  void close_row();
  /// Highest absolute round observed so far (open row included).
  std::uint64_t frontier() const noexcept {
    return open_ ? rounds_.back().round : last_round_;
  }

  std::vector<TraceRound> rounds_;
  std::vector<TraceEvent> events_;
  std::vector<TraceWalkHop> hops_;
  bool open_ = false;           ///< rounds_.back() is an unflushed open row
  std::uint64_t last_round_ = 0;  ///< highest absolute round closed
  std::uint64_t total_quanta_ = 0;
  std::uint32_t every_ = 1;
  std::uint32_t walks_every_ = 0;  ///< 0 = walk tracing off
  std::uint64_t offset_ = 0;  ///< absolute round of the segment's local 0
  std::uint64_t segments_ = 0;
};

}  // namespace wcle
