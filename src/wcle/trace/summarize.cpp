#include "wcle/trace/summarize.hpp"

#include <algorithm>
#include <string>

namespace wcle {

TraceSummary summarize_trace(const TraceRunData& run) {
  TraceSummary s;
  s.final_live = run.meta.n;
  std::uint64_t live = run.meta.n;
  std::uint64_t cum_messages = 0, cum_dropped = 0;
  std::size_t e = 0;
  s.series.reserve(run.rounds.size());
  // Detect --trace-every sampling: rows of a sampled trace sit a fixed
  // stride apart. The smallest observed gap is that stride (the last round
  // is always kept, so the final gap can be shorter — min handles it).
  std::uint64_t stride = 0;
  for (std::size_t i = 1; i < run.rounds.size(); ++i) {
    const std::uint64_t gap = run.rounds[i].round - run.rounds[i - 1].round;
    if (gap > 0 && (stride == 0 || gap < stride)) stride = gap;
  }
  s.stride = stride == 0 ? 1 : stride;
  s.sampled = s.stride > 1;
  for (const TraceRound& r : run.rounds) {
    // Apply events up to and including this round before sampling live
    // counts — fault batches fire at the start of their round.
    while (e < run.events.size() && run.events[e].round <= r.round) {
      const TraceEvent& ev = run.events[e];
      switch (ev.kind) {
        case TraceEventKind::kCrash:
          live = live > 0 ? live - 1 : 0;
          s.crashes += 1;
          break;
        case TraceEventKind::kChurnOut:
          live = live > 0 ? live - 1 : 0;
          s.churn_outs += 1;
          break;
        case TraceEventKind::kChurnIn:
          live += 1;
          break;
        case TraceEventKind::kLinkDown: s.link_failures += 1; break;
        case TraceEventKind::kContender: s.contenders += 1; break;
        case TraceEventKind::kPhase: s.phase_marks += 1; break;
        case TraceEventKind::kSegment: s.segments += 1; break;
      }
      ++e;
    }
    const std::uint32_t dropped =
        r.dropped_rand + r.dropped_crash + r.dropped_link;
    // A sampled trace keeps one row per stride: scale each kept row's
    // deltas by the stride so the cumulative series estimate the whole
    // bill rather than the kept rows' share of it.
    cum_messages += static_cast<std::uint64_t>(r.quanta) * s.stride;
    cum_dropped += static_cast<std::uint64_t>(dropped) * s.stride;
    TraceSeriesPoint p;
    p.round = r.round;
    p.sends = r.sends;
    p.quanta = r.quanta;
    p.delivered = r.delivered;
    p.dropped = dropped;
    p.backlog = r.backlog;
    p.live_nodes = live;
    p.cum_messages = cum_messages;
    p.cum_dropped = cum_dropped;
    s.series.push_back(p);
    if (r.quanta > 0 || r.sends > 0) s.rounds_to_quiet = r.round;
    if (r.backlog > s.peak_backlog) {
      s.peak_backlog = r.backlog;
      s.peak_backlog_round = r.round;
    }
  }
  // Trailing events (post-run annotations, end-of-run phase marks).
  for (; e < run.events.size(); ++e) {
    const TraceEvent& ev = run.events[e];
    if (ev.kind == TraceEventKind::kPhase) s.phase_marks += 1;
    if (ev.kind == TraceEventKind::kSegment) s.segments += 1;
  }
  s.rounds = run.rounds.empty() ? 0 : run.rounds.back().round;
  // The run_end record bills ALL rounds, including rows sampling dropped —
  // prefer that exact figure over the stride-scaled estimate when present.
  s.total_messages =
      run.declared_quanta > 0 ? run.declared_quanta : cum_messages;
  s.total_dropped = cum_dropped;
  s.final_live = live;
  return s;
}

Table trace_summary_table(const TraceSummary& s, std::uint64_t every) {
  if (every == 0) every = 1;
  // Sampled traces get their estimate columns labelled as such: the
  // cumulative values are stride-scaled reconstructions, not exact sums.
  Table t({"round", "sends", "quanta", "delivered", "dropped", "backlog",
           "live", s.sampled ? "cum_msgs(est)" : "cum_msgs",
           s.sampled ? "cum_dropped(est)" : "cum_dropped"});
  for (std::size_t i = 0; i < s.series.size(); ++i) {
    if (i % every != 0 && i + 1 != s.series.size()) continue;
    const TraceSeriesPoint& p = s.series[i];
    t.add_row({std::to_string(p.round), std::to_string(p.sends),
               std::to_string(p.quanta), std::to_string(p.delivered),
               std::to_string(p.dropped), std::to_string(p.backlog),
               std::to_string(p.live_nodes), std::to_string(p.cum_messages),
               std::to_string(p.cum_dropped)});
  }
  return t;
}

}  // namespace wcle
