// Timeline writers: serialize a TraceRecorder's per-round rows and discrete
// events to a trace file. Two formats ship behind one TraceWriter interface:
//
//   - JSONL ("one JSON object per line"): a versioned header line, then for
//     each run a `run` meta line, `round`/`event` lines merged in round
//     order, and a `run_end` summary; a final `trace_end` trailer. The
//     schema is documented in README.md ("Tracing & replay").
//   - binary: the same stream in a compact little-endian framing (magic
//     "WCLETR01", the header JSON embedded verbatim, then fixed-width
//     records) — ~4x smaller, for long traced sweeps.
//
// Both renderings are byte-deterministic functions of the recorded data:
// the replay verifier (replay.hpp) regenerates a trace from its header and
// byte-compares, so writers must never emit anything time- or
// environment-dependent.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "wcle/trace/recorder.hpp"

namespace wcle {

// Version history:
//   1 — header/run/round/event/run_end/trace_end.
//   2 — adds the optional `walk_hop` record stream (`--trace-walks`); every
//       v1 record shape is unchanged, so v1 traces parse and replay
//       byte-identically (replay regenerates with the parsed header's own
//       version, and walk_hop records only exist when the trace-walks knob
//       rides in the header spec).
inline constexpr std::uint32_t kTraceVersion = 2;
/// Oldest header version the reader still accepts.
inline constexpr std::uint32_t kTraceVersionMin = 1;
/// First 8 bytes of a binary trace (no terminating NUL on the wire).
inline constexpr char kTraceMagic[] = "WCLETR01";

/// The replayable identity of a trace file: `spec` is a grid-grammar line
/// (scenario.hpp) whose sweep expansion regenerates every recorded run;
/// `tool` records which CLI surface produced the trace (run/trials/sweep).
struct TraceHeader {
  std::uint32_t version = kTraceVersion;
  std::string tool;
  std::string spec;
};

/// Identity of one recorded run inside a trace file. Runs are ordered
/// cell-major, trial-minor; `run` is the global ordinal.
struct TraceRunMeta {
  std::uint64_t run = 0;
  std::uint64_t cell = 0;
  std::uint64_t trial = 0;
  std::uint64_t seed = 0;
  std::uint64_t n = 0;  ///< actual node count after family snapping
  std::string algorithm;
  std::string family;
};

class TraceWriter {
 public:
  virtual ~TraceWriter() = default;
  virtual void header(const TraceHeader& h) = 0;
  virtual void begin_run(const TraceRunMeta& meta) = 0;
  virtual void round(const TraceRound& r) = 0;
  virtual void event(const TraceEvent& e) = 0;
  /// Schema v2 walk-token record; defaulted so v1-era writers stay valid.
  virtual void walk_hop(const TraceWalkHop& h) { (void)h; }
  virtual void end_run(std::uint64_t rounds, std::uint64_t events,
                       std::uint64_t quanta) = 0;
  virtual void finish(std::uint64_t runs) = 0;
};

class JsonlTraceWriter final : public TraceWriter {
 public:
  explicit JsonlTraceWriter(std::ostream& out) : out_(&out) {}
  void header(const TraceHeader& h) override;
  void begin_run(const TraceRunMeta& meta) override;
  void round(const TraceRound& r) override;
  void event(const TraceEvent& e) override;
  void walk_hop(const TraceWalkHop& h) override;
  void end_run(std::uint64_t rounds, std::uint64_t events,
               std::uint64_t quanta) override;
  void finish(std::uint64_t runs) override;

 private:
  std::ostream* out_;
  std::uint64_t run_ = 0;  ///< current run ordinal, stamped on every line
};

class BinaryTraceWriter final : public TraceWriter {
 public:
  explicit BinaryTraceWriter(std::ostream& out) : out_(&out) {}
  void header(const TraceHeader& h) override;
  void begin_run(const TraceRunMeta& meta) override;
  void round(const TraceRound& r) override;
  void event(const TraceEvent& e) override;
  void walk_hop(const TraceWalkHop& h) override;
  void end_run(std::uint64_t rounds, std::uint64_t events,
               std::uint64_t quanta) override;
  void finish(std::uint64_t runs) override;

 private:
  std::ostream* out_;
};

enum class TraceFormat { kJsonl, kBinary };

/// Format selection by file extension: ".bin" / ".btrace" choose the binary
/// framing, everything else JSONL.
TraceFormat trace_format_for_path(const std::string& path);

std::unique_ptr<TraceWriter> make_trace_writer(TraceFormat format,
                                               std::ostream& out);

/// The JSONL header line for `h` (without trailing newline) — also the text
/// embedded in the binary framing, so one parser serves both formats.
std::string trace_header_line(const TraceHeader& h);

/// Streams one recorded run through `w`: the meta line, then rounds, events,
/// and walk hops merged in round order (events, then hops, precede the row
/// that closes their round), then the run summary.
void write_run(TraceWriter& w, const TraceRunMeta& meta,
               const TraceRecorder& rec);

}  // namespace wcle
