#include "wcle/baselines/clique_referee.hpp"

#include <memory>

#include "wcle/api/algorithm.hpp"

#include <algorithm>
#include <unordered_map>

#include "wcle/sim/network.hpp"
#include "wcle/support/bits.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

namespace {
constexpr std::uint8_t kTagNominate = 0x27;
constexpr std::uint8_t kTagKill = 0x28;
}  // namespace

CliqueRefereeResult run_clique_referee(const Graph& g,
                                       const ElectionParams& params) {
  const NodeId n = g.node_count();
  CliqueRefereeResult res;
  Rng root(params.seed);
  Rng id_rng = root.fork(0x1d5);
  Rng coin_rng = root.fork(0xc01);
  Rng port_rng = root.fork(0x907);

  std::vector<std::uint64_t> rid(n);
  const std::uint64_t space = params.id_space(n);
  for (NodeId v = 0; v < n; ++v) rid[v] = id_rng.next_in(1, space);

  const double pc = params.contender_probability(n);
  for (NodeId v = 0; v < n; ++v)
    if (coin_rng.next_bool(pc)) res.candidates.push_back(v);
  if (res.candidates.empty()) return res;

  Network net(g, congest_config_for(params, n));
  for (const NodeId c : res.candidates) net.note_contender(c);
  const std::uint32_t bits = id_bits(n) + 8;

  // Step 2: candidates nominate themselves to random referees (sampling
  // ports with replacement, as [25] does — duplicates waste a message).
  const std::uint64_t fanout = params.walk_count(n);
  for (const NodeId c : res.candidates) {
    for (std::uint64_t k = 0; k < fanout; ++k) {
      const Port p = static_cast<Port>(port_rng.next_below(g.degree(c)));
      Message msg;
      msg.tag = kTagNominate;
      msg.a = rid[c];
      msg.bits = bits;
      net.send(c, p, msg);
    }
  }

  // Step 3, phase A: referees collect the nomination wave (one synchronous
  // round in [25]; here: until the wave quiesces).
  struct RefereeState {
    std::uint64_t max_id = 0;
    std::vector<std::pair<Port, std::uint64_t>> senders;
  };
  std::unordered_map<NodeId, RefereeState> referees;
  res.rounds = net.run_until_idle([&](const Delivery& d) {
    RefereeState& st = referees[d.dst];
    st.max_id = std::max(st.max_id, d.msg.a);
    st.senders.emplace_back(d.port, d.msg.a);
  });

  // Phase B: each referee kills every dominated nominator it heard from.
  std::vector<NodeId> referee_nodes;
  referee_nodes.reserve(referees.size());
  // Hash order provably cannot leak: this loop only collects the key set,
  // the sort below canonicalizes it, and every send is issued from the
  // sorted order — so neither the transport, the RNG, nor any output sees
  // the map's iteration order.
  // wcle-lint: unordered-iter-ok(keys collected then sorted before any send)
  for (const auto& [node, st] : referees) referee_nodes.push_back(node);
  std::sort(referee_nodes.begin(), referee_nodes.end());
  for (const NodeId node : referee_nodes) {
    const RefereeState& st = referees.at(node);
    for (const auto& [port, id] : st.senders) {
      if (id == st.max_id) continue;
      Message msg;
      msg.tag = kTagKill;
      msg.bits = 8;
      net.send(node, port, msg);
    }
  }

  // Step 4: killed candidates drop out.
  std::vector<char> killed(n, 0);
  res.rounds += net.run_until_idle(
      [&](const Delivery& d) { killed[d.dst] = 1; });

  for (const NodeId c : res.candidates)
    if (!killed[c]) res.leaders.push_back(c);
  res.totals = net.metrics();
  res.faults = net.fault_outcome();
  return res;
}

namespace {

class CliqueRefereeAlgorithm final : public Algorithm {
 public:
  std::string name() const override { return "clique_referee"; }
  std::string describe() const override {
    return "complete-network referee election of [25]; O(1) rounds, "
           "O(sqrt(n) log^{3/2} n) messages, correct on cliques only";
  }
  Kind kind() const override { return Kind::kElection; }
  bool reliable_on(const Graph& g) const override {
    const std::uint64_t n = g.node_count();
    return g.edge_count() == n * (n - 1) / 2;
  }
  std::string caveat() const override { return "complete graphs only"; }
  RunResult run(const Graph& g, const RunOptions& options) const override {
    const CliqueRefereeResult r = run_clique_referee(g, options.params);
    RunResult out;
    out.algorithm = name();
    out.leaders = r.leaders;
    out.rounds = r.rounds;
    out.totals = r.totals;
    out.success = r.success();
    out.faults = r.faults;
    out.extras["candidates"] = static_cast<double>(r.candidates.size());
    return out;
  }
};

}  // namespace

std::unique_ptr<Algorithm> make_clique_referee_algorithm() {
  return std::make_unique<CliqueRefereeAlgorithm>();
}

}  // namespace wcle
