// CandidateFlood: randomized flooding election in the Omega(m) message regime
// of Kutten et al. [24]. Only nodes that self-select as candidates (with the
// same c1 log n / n rate as the paper's algorithm) flood their ids; everyone
// relays improvements. Succeeds w.h.p. with Theta(m)-to-Theta(m log log n)
// messages — the strongest flooding-style comparator for bench E4.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "wcle/fault/outcome.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/sim/metrics.hpp"
#include "wcle/sim/network.hpp"

namespace wcle {

struct CandidateFloodResult {
  std::vector<NodeId> leaders;
  std::vector<NodeId> candidates;
  std::uint64_t rounds = 0;
  Metrics totals;
  FaultOutcome faults;
  bool success() const { return leaders.size() == 1; }
};

/// `candidate_rate_multiplier` plays the paper's c1 role. `cfg` selects the
/// transport regime and fault axis (bandwidth_bits == 0 = standard budget).
CandidateFloodResult run_candidate_flood(const Graph& g, std::uint64_t seed,
                                         double candidate_rate_multiplier = 4.0,
                                         CongestConfig cfg = {});

class Algorithm;

/// Factory for the `candidate_flood` registry adapter (see
/// wcle/api/registry.hpp).
std::unique_ptr<Algorithm> make_candidate_flood_algorithm();

}  // namespace wcle
