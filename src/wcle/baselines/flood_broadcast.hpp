// Flooding broadcast: every node forwards the rumor once over all its other
// ports. Theta(m) messages, O(D) rounds — the deterministic comparator for
// Corollary 26 next to push-pull (which pays n log n / phi): on the
// lower-bound graph both are Omega(n / sqrt(phi)); on well-connected graphs
// flooding still pays m while push-pull pays ~n log n.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "wcle/fault/outcome.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/sim/metrics.hpp"
#include "wcle/sim/network.hpp"

namespace wcle {

struct FloodBroadcastResult {
  bool complete = false;
  std::uint64_t informed = 0;
  std::uint64_t rounds = 0;
  Metrics totals;
  FaultOutcome faults;
};

/// Floods a rumor of `value_bits` bits from `source` until quiescence.
/// `cfg` selects the transport regime and fault axis (bandwidth_bits == 0 =
/// the standard budget).
FloodBroadcastResult run_flood_broadcast(const Graph& g, NodeId source,
                                         std::uint32_t value_bits,
                                         CongestConfig cfg = {});

class Algorithm;

/// Factory for the `flood_broadcast` registry adapter (see
/// wcle/api/registry.hpp).
std::unique_ptr<Algorithm> make_flood_broadcast_algorithm();

}  // namespace wcle
