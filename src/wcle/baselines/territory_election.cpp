#include "wcle/baselines/territory_election.hpp"

#include <memory>

#include "wcle/api/algorithm.hpp"

#include <limits>
#include <unordered_map>

#include "wcle/sim/network.hpp"
#include "wcle/support/bits.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

namespace {

constexpr std::uint8_t kTagTerritory = 0x2a;
constexpr std::uint64_t kAdvance = 0;
constexpr std::uint64_t kBacktrack = 1;
constexpr Port kRoot = std::numeric_limits<Port>::max();

/// Per-(node, candidate) DFS cursor.
struct DfsState {
  Port parent_port = kRoot;
  Port next_port = 0;
};

}  // namespace

TerritoryElectionResult run_territory_election(const Graph& g,
                                               const ElectionParams& params) {
  const NodeId n = g.node_count();
  TerritoryElectionResult res;
  Rng root(params.seed);
  Rng id_rng = root.fork(0x1d5);
  Rng coin_rng = root.fork(0xc01);

  std::vector<std::uint64_t> rid(n);
  const std::uint64_t space = params.id_space(n);
  for (NodeId v = 0; v < n; ++v) rid[v] = id_rng.next_in(1, space);

  const double pc = params.contender_probability(n);
  // Lookup-only reverse index (at()/find(), never iterated): hash order
  // cannot reach the DFS token order or the leader list.
  std::unordered_map<std::uint64_t, NodeId> candidate_of_rid;
  for (NodeId v = 0; v < n; ++v) {
    if (coin_rng.next_bool(pc)) {
      res.candidates.push_back(v);
      candidate_of_rid[rid[v]] = v;
    }
  }
  if (res.candidates.empty()) return res;

  Network net(g, congest_config_for(params, n));
  for (const NodeId c : res.candidates) net.note_contender(c);
  const std::uint32_t bits = id_bits(n) + ceil_log2(n) + 8;

  std::vector<std::uint64_t> owner(n, 0);
  // DFS cursors keyed by (node, candidate rid). Lookup-only: every access
  // goes through operator[]/find on a key arriving from the (deterministic)
  // delivery order, and the maps are never iterated, so hash order is inert.
  std::unordered_map<NodeId, std::unordered_map<std::uint64_t, DfsState>>
      state;

  auto send_token = [&](NodeId v, Port p, std::uint64_t r,
                        std::uint64_t kind, std::uint64_t count) {
    Message msg;
    msg.tag = kTagTerritory;
    msg.a = r;
    msg.b = kind;
    msg.c = count;
    msg.bits = bits;
    net.send(v, p, msg);
  };

  // Advances the DFS of candidate-rid r sitting at v; returns true when the
  // root finished with a full census (leader).
  auto continue_dfs = [&](NodeId v, std::uint64_t r,
                          std::uint64_t count) -> bool {
    DfsState& st = state[v][r];
    while (st.next_port < g.degree(v)) {
      const Port port = st.next_port++;
      if (port == st.parent_port) continue;
      send_token(v, port, r, kAdvance, count);
      return false;
    }
    if (st.parent_port == kRoot) return count == n;  // census complete?
    send_token(v, st.parent_port, r, kBacktrack, count);
    return false;
  };

  // Launch: each candidate owns itself and starts its DFS.
  for (const NodeId c : res.candidates) owner[c] = rid[c];
  for (const NodeId c : res.candidates) {
    state[c][rid[c]] = DfsState{};  // root cursor
    if (continue_dfs(c, rid[c], 1)) res.leaders.push_back(c);
  }

  res.rounds = net.run_until_idle([&](const Delivery& d) {
    const std::uint64_t r = d.msg.a;
    const NodeId v = d.dst;
    if (d.msg.b == kBacktrack) {
      if (continue_dfs(v, r, d.msg.c))
        res.leaders.push_back(candidate_of_rid.at(r));
      return;
    }
    // Advance into v.
    if (owner[v] > r) return;  // stronger territory: the token dies
    owner[v] = r;
    auto& per_node = state[v];
    const auto it = per_node.find(r);
    if (it != per_node.end()) {
      // Already visited by this candidate (non-tree edge): bounce back
      // without counting.
      send_token(v, d.port, r, kBacktrack, d.msg.c);
      return;
    }
    DfsState st;
    st.parent_port = d.port;
    per_node.emplace(r, st);
    if (continue_dfs(v, r, d.msg.c + 1))
      res.leaders.push_back(candidate_of_rid.at(r));
  });

  res.totals = net.metrics();
  res.faults = net.fault_outcome();
  return res;
}

namespace {

class TerritoryElectionAlgorithm final : public Algorithm {
 public:
  std::string name() const override { return "territory_election"; }
  std::string describe() const override {
    return "territory-growing DFS election; O(m log k) messages but Theta(m) "
           "time (the message-optimal extreme of [24])";
  }
  Kind kind() const override { return Kind::kElection; }
  RunResult run(const Graph& g, const RunOptions& options) const override {
    const TerritoryElectionResult r = run_territory_election(g, options.params);
    RunResult out;
    out.algorithm = name();
    out.leaders = r.leaders;
    out.rounds = r.rounds;
    out.totals = r.totals;
    out.success = r.success();
    out.faults = r.faults;
    out.extras["candidates"] = static_cast<double>(r.candidates.size());
    return out;
  }
};

}  // namespace

std::unique_ptr<Algorithm> make_territory_election_algorithm() {
  return std::make_unique<TerritoryElectionAlgorithm>();
}

}  // namespace wcle
