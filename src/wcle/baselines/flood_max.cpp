#include "wcle/baselines/flood_max.hpp"

#include <memory>

#include "wcle/api/algorithm.hpp"

#include <algorithm>
#include <cmath>

#include "wcle/sim/network.hpp"
#include "wcle/support/bits.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

namespace {
constexpr std::uint8_t kTagMaxId = 0x22;
}

FloodElectionResult run_flood_max(const Graph& g, std::uint64_t seed,
                                  CongestConfig cfg) {
  const NodeId n = g.node_count();
  Network net(g, cfg.resolved(n));
  Rng rng(seed);

  std::vector<std::uint64_t> rid(n), best(n);
  const std::uint64_t space =
      static_cast<std::uint64_t>(std::min<double>(
          9.0e18, std::pow(static_cast<double>(n < 2 ? 2 : n), 4.0)));
  for (NodeId v = 0; v < n; ++v) best[v] = rid[v] = rng.next_in(1, space);
  std::vector<char> superseded(n, 0);

  const std::uint32_t bits = id_bits(n);
  auto broadcast_from = [&](NodeId v) {
    for (Port p = 0; p < g.degree(v); ++p) {
      Message msg;
      msg.tag = kTagMaxId;
      msg.a = best[v];
      msg.bits = bits;
      net.send(v, p, msg);
    }
  };
  for (NodeId v = 0; v < n; ++v) broadcast_from(v);

  FloodElectionResult res;
  res.rounds = net.run_until_idle([&](const Delivery& d) {
    if (d.msg.a > best[d.dst]) {
      best[d.dst] = d.msg.a;
      superseded[d.dst] = 1;
      broadcast_from(d.dst);
    }
  });

  for (NodeId v = 0; v < n; ++v)
    if (!superseded[v]) res.leaders.push_back(v);
  res.totals = net.metrics();
  res.faults = net.fault_outcome();
  return res;
}

namespace {

class FloodMaxAlgorithm final : public Algorithm {
 public:
  std::string name() const override { return "flood_max"; }
  std::string describe() const override {
    return "classic FloodMax election; Theta(m)-per-wave messages, the "
           "Omega(m) regime of Kutten et al. [24]";
  }
  Kind kind() const override { return Kind::kElection; }
  RunResult run(const Graph& g, const RunOptions& options) const override {
    const FloodElectionResult r = run_flood_max(
        g, options.seed(), congest_config_for(options.params, g.node_count()));
    RunResult out;
    out.algorithm = name();
    out.leaders = r.leaders;
    out.rounds = r.rounds;
    out.totals = r.totals;
    out.success = r.success();
    out.faults = r.faults;
    return out;
  }
};

}  // namespace

std::unique_ptr<Algorithm> make_flood_max_algorithm() {
  return std::make_unique<FloodMaxAlgorithm>();
}

}  // namespace wcle
