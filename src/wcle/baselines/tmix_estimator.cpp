#include "wcle/baselines/tmix_estimator.hpp"

#include <memory>

#include "wcle/api/algorithm.hpp"
#include "wcle/baselines/known_tmix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "wcle/baselines/bfs_tree.hpp"
#include "wcle/rw/walk_engine.hpp"
#include "wcle/sim/network.hpp"
#include "wcle/support/bits.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

namespace {

constexpr std::uint8_t kTagReport = 0x29;

/// Doubling cap for the registry adapters: every tested family mixes in
/// far fewer than 8n steps, and an uncapped 2^16 ceiling would let a
/// fault-starved run (eaten walks never pass the mixing test) burn tens of
/// thousands of simulated rounds per iteration before giving up.
std::uint32_t adapter_max_t(NodeId n) {
  std::uint32_t cap = 1;
  while (cap < 8u * n && cap < (1u << 16)) cap *= 2;
  return cap;
}

}  // namespace

TmixEstimateResult run_tmix_estimator(const Graph& g, NodeId initiator,
                                      std::uint64_t seed,
                                      std::uint64_t walks_per_round,
                                      std::uint32_t max_t, CongestConfig cfg) {
  const NodeId n = g.node_count();
  if (initiator >= n)
    throw std::invalid_argument("run_tmix_estimator: initiator out of range");
  if (walks_per_round == 0) walks_per_round = 64ull * n;

  TmixEstimateResult res;

  // 1. BFS spanning tree from the initiator: the Omega(m) entry fee, billed
  // at the caller's bandwidth regime. The walk/report stage below must be
  // able to reach the root through every parent port, so only the fault
  // fields are suppressed for the tree construction.
  CongestConfig tree_cfg = cfg;
  tree_cfg.drop_probability = 0.0;
  tree_cfg.faults = FaultPlan{};
  const BfsTreeResult tree = run_bfs_tree(g, initiator, tree_cfg);
  res.totals += tree.totals;
  res.rounds += tree.rounds;

  // 2+3. Doubling walk lengths with tree convergecast of the L-inf distance.
  Network net(g, cfg.resolved(n));
  Rng rng(seed);
  WalkEngine engine(g, net, rng);
  const double vol = static_cast<double>(g.volume());
  const std::uint32_t report_bits = 2 * ceil_log2(n) + 24;

  for (std::uint32_t t = 1; t <= max_t; t *= 2) {
    res.iterations += 1;
    engine.run_walk_stage({{initiator, walks_per_round, t}});

    // Local statistic: |count/K - d_v/(2m)|, scaled to a fixed-point value
    // so it fits an O(log n)-bit message.
    std::vector<double> local(n, 0.0);
    for (NodeId v = 0; v < n; ++v) {
      const auto& regs = engine.registrations(v);
      const auto it = regs.find(initiator);
      const double mass =
          it == regs.end()
              ? 0.0
              : static_cast<double>(it->second) /
                    static_cast<double>(walks_per_round);
      local[v] =
          std::fabs(mass - static_cast<double>(g.degree(v)) / vol);
    }

    // Convergecast up the BFS tree with flood-max style filtering: a node
    // forwards a value to its parent only when it beats what it forwarded
    // before (at most depth improvements per node).
    std::vector<double> best(n, -1.0);
    auto forward_up = [&](NodeId v, double value) {
      if (value <= best[v]) return;
      best[v] = value;
      if (tree.parent_port[v] == BfsTreeResult::kNoParent) return;  // root
      Message msg;
      msg.tag = kTagReport;
      msg.a = static_cast<std::uint64_t>(value * 1e12);
      msg.bits = report_bits;
      net.send(v, tree.parent_port[v], msg);
    };
    for (NodeId v = 0; v < n; ++v) forward_up(v, local[v]);
    net.run_until_idle([&](const Delivery& d) {
      forward_up(d.dst, static_cast<double>(d.msg.a) / 1e12);
    });

    const double linf = best[initiator];
    // Mixing test at the initiator: the paper's 1/(2n) plus the sampling
    // tolerance of the K-walk empirical distribution.
    const double pi_max = static_cast<double>(g.max_degree()) / vol;
    const double tolerance =
        2.0 * std::sqrt(pi_max / static_cast<double>(walks_per_round));
    if (linf <= 1.0 / (2.0 * static_cast<double>(n)) + tolerance) {
      res.converged = true;
      res.estimate = t;
      break;
    }
  }

  res.totals += net.metrics();
  res.rounds += net.metrics().rounds;
  res.faults = net.fault_outcome();
  return res;
}

namespace {

class TmixEstimatorAlgorithm final : public Algorithm {
 public:
  std::string name() const override { return "tmix_estimator"; }
  std::string describe() const override {
    return "distributed tmix estimation (Molla-Pandurangan [29] spirit); "
           "Omega(m) messages from the BFS tree alone";
  }
  Kind kind() const override { return Kind::kDiagnostic; }
  RunResult run(const Graph& g, const RunOptions& options) const override {
    const NodeId src = options.source < g.node_count() ? options.source : 0;
    const TmixEstimateResult r = run_tmix_estimator(
        g, src, options.seed(), /*walks_per_round=*/0,
        adapter_max_t(g.node_count()),
        congest_config_for(options.params, g.node_count()));
    RunResult out;
    out.algorithm = name();
    out.leaders = {src};
    out.rounds = r.rounds;
    out.totals = r.totals;
    out.success = r.converged;
    out.faults = r.faults;
    out.faults.hit_round_cap = !r.converged;
    out.extras["tmix_estimate"] = static_cast<double>(r.estimate);
    out.extras["iterations"] = static_cast<double>(r.iterations);
    return out;
  }
};

class EstimateThenElectAlgorithm final : public Algorithm {
 public:
  std::string name() const override { return "estimate_then_elect"; }
  std::string describe() const override {
    return "distributed tmix estimation, then the known-tmix election [25]: "
           "the Omega(m)-message alternative the paper rejects";
  }
  Kind kind() const override { return Kind::kElection; }
  std::string caveat() const override {
    return "pays Omega(m) messages for the tmix estimate";
  }
  RunResult run(const Graph& g, const RunOptions& options) const override {
    const NodeId src = options.source < g.node_count() ? options.source : 0;
    const TmixEstimateResult est = run_tmix_estimator(
        g, src, options.seed(), /*walks_per_round=*/0,
        adapter_max_t(g.node_count()),
        congest_config_for(options.params, g.node_count()));
    const std::uint32_t walk_length = scaled_walk_length(
        options.tmix_multiplier, std::max<std::uint64_t>(1, est.estimate));
    const KnownTmixResult elect =
        run_known_tmix_election(g, walk_length, options.params);
    RunResult out;
    out.algorithm = name();
    out.leaders = elect.leaders;
    out.rounds = est.rounds + elect.rounds;
    out.totals = est.totals;
    out.totals += elect.totals;
    out.success = est.converged && elect.success();
    // The election stage's exposure judges safety (same fault seed => same
    // victims as the estimation stage, modulo contender targeting); a
    // cap-starved estimator is a liveness loss exactly as in the standalone
    // tmix_estimator adapter.
    out.faults = elect.faults;
    out.faults.hit_round_cap = !est.converged || elect.faults.hit_round_cap;
    out.extras["tmix_estimate"] = static_cast<double>(est.estimate);
    out.extras["estimator_messages"] =
        static_cast<double>(est.totals.congest_messages);
    out.extras["walk_length"] = static_cast<double>(walk_length);
    out.extras["contenders"] = static_cast<double>(elect.contenders.size());
    return out;
  }
};

}  // namespace

std::unique_ptr<Algorithm> make_tmix_estimator_algorithm() {
  return std::make_unique<TmixEstimatorAlgorithm>();
}

std::unique_ptr<Algorithm> make_estimate_then_elect_algorithm() {
  return std::make_unique<EstimateThenElectAlgorithm>();
}

}  // namespace wcle
