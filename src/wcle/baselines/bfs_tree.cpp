#include "wcle/baselines/bfs_tree.hpp"

#include <memory>

#include "wcle/api/algorithm.hpp"

#include <algorithm>
#include <stdexcept>

#include "wcle/sim/network.hpp"
#include "wcle/support/bits.hpp"

namespace wcle {

namespace {
constexpr std::uint8_t kTagBfs = 0x24;
}

BfsTreeResult run_bfs_tree(const Graph& g, NodeId root, CongestConfig cfg) {
  const NodeId n = g.node_count();
  if (root >= n) throw std::invalid_argument("run_bfs_tree: root out of range");

  Network net(g, cfg.resolved(n));
  BfsTreeResult res;
  res.parent_port.assign(n, BfsTreeResult::kNoParent);
  std::vector<char> joined(n, 0);
  joined[root] = 1;
  res.tree_nodes = 1;

  const std::uint32_t bits = ceil_log2(n) + 8;
  auto announce = [&](NodeId v, std::uint64_t level, Port skip) {
    for (Port p = 0; p < g.degree(v); ++p) {
      if (p == skip) continue;
      Message msg;
      msg.tag = kTagBfs;
      msg.a = level;
      msg.bits = bits;
      net.send(v, p, msg);
    }
  };
  announce(root, 0, BfsTreeResult::kNoParent);

  res.rounds = net.run_until_idle([&](const Delivery& d) {
    if (joined[d.dst]) return;
    joined[d.dst] = 1;
    ++res.tree_nodes;
    res.parent_port[d.dst] = d.port;
    res.depth = std::max(res.depth, d.msg.a + 1);
    announce(d.dst, d.msg.a + 1, d.port);
  });

  res.complete = res.tree_nodes == n;
  res.totals = net.metrics();
  res.faults = net.fault_outcome();
  return res;
}

namespace {

class BfsTreeAlgorithm final : public Algorithm {
 public:
  std::string name() const override { return "bfs_tree"; }
  std::string describe() const override {
    return "BFS spanning tree from `source` by level flooding; Theta(m) "
           "messages, O(D) rounds (Corollary 27 comparator)";
  }
  Kind kind() const override { return Kind::kBroadcast; }
  RunResult run(const Graph& g, const RunOptions& options) const override {
    const NodeId root = options.source < g.node_count() ? options.source : 0;
    const BfsTreeResult r = run_bfs_tree(
        g, root, congest_config_for(options.params, g.node_count()));
    RunResult out;
    out.algorithm = name();
    out.leaders = {root};
    out.rounds = r.rounds;
    out.totals = r.totals;
    out.success = r.complete;
    out.faults = r.faults;
    out.extras["tree_nodes"] = static_cast<double>(r.tree_nodes);
    out.extras["depth"] = static_cast<double>(r.depth);
    return out;
  }
};

}  // namespace

std::unique_ptr<Algorithm> make_bfs_tree_algorithm() {
  return std::make_unique<BfsTreeAlgorithm>();
}

}  // namespace wcle
