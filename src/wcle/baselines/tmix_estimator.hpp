// Distributed mixing-time estimation in the spirit of Molla & Pandurangan
// [29] — the alternative the paper rejects for its message bill: "their
// algorithm requires Omega(m) messages and hence cannot be used for the
// purpose of achieving a small message complexity".
//
// Protocol (doubling estimate, all machinery already in this library):
//   1. An initiator builds a BFS spanning tree (Theta(m) messages — already
//      Omega(m), the paper's point).
//   2. For t = 1, 2, 4, ...: the initiator launches K coalesced random walks
//      of length t; each node then reports |empirical endpoint mass -
//      stationary mass| up the tree (convergecast of the running maximum,
//      Theta(n) messages per iteration).
//   3. Stop at the first t whose L-infinity distance falls below the mixing
//      threshold 1/(2n) plus a sampling tolerance of 2*sqrt(pi_max/K).
//
// The estimate converges to the true tmix as K grows; the message count is
// dominated by the BFS tree's Theta(m), demonstrating why "estimate tmix,
// then run the known-tmix election [25]" loses to the paper's guess-and-
// double on every well-connected graph (bench E12's third column).
#pragma once

#include <cstdint>
#include <memory>

#include "wcle/fault/outcome.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/sim/metrics.hpp"
#include "wcle/sim/network.hpp"

namespace wcle {

struct TmixEstimateResult {
  bool converged = false;
  std::uint32_t estimate = 0;       ///< first t passing the mixing test
  std::uint64_t iterations = 0;     ///< doubling steps taken
  std::uint64_t rounds = 0;
  Metrics totals;                   ///< includes the BFS tree construction
  FaultOutcome faults;
};

/// Estimates tmix from `initiator` using `walks_per_round` parallel walks
/// (default 0 = 64 * n, enough to resolve the 1/(2n) threshold on regular
/// graphs at test scale). `max_t` caps the doubling.
TmixEstimateResult run_tmix_estimator(const Graph& g, NodeId initiator,
                                      std::uint64_t seed,
                                      std::uint64_t walks_per_round = 0,
                                      std::uint32_t max_t = 1u << 16,
                                      CongestConfig cfg = {});

class Algorithm;

/// Factory for the `tmix_estimator` / `estimate_then_elect` registry
/// adapter (see wcle/api/registry.hpp).
std::unique_ptr<Algorithm> make_tmix_estimator_algorithm();
std::unique_ptr<Algorithm> make_estimate_then_elect_algorithm();

}  // namespace wcle
