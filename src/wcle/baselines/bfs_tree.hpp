// Distributed BFS spanning-tree construction by level flooding: the
// comparator for Corollary 27 (spanning tree needs Omega(n/sqrt(phi))
// messages on the lower-bound graph). Theta(m) messages, O(D) rounds.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "wcle/fault/outcome.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/sim/metrics.hpp"
#include "wcle/sim/network.hpp"

namespace wcle {

struct BfsTreeResult {
  bool complete = false;            ///< all nodes joined the tree
  std::uint64_t tree_nodes = 0;
  std::uint64_t depth = 0;          ///< max level reached
  std::uint64_t rounds = 0;
  Metrics totals;
  FaultOutcome faults;
  /// parent_port[v] = port through which v reached its parent
  /// (root and unreached nodes hold the sentinel kNoParent).
  std::vector<Port> parent_port;
  static constexpr Port kNoParent = ~Port{0};
};

/// `cfg` selects the transport regime and fault axis (bandwidth_bits == 0 =
/// the standard budget).
BfsTreeResult run_bfs_tree(const Graph& g, NodeId root,
                           CongestConfig cfg = {});

class Algorithm;

/// Factory for the `bfs_tree` registry adapter (see wcle/api/registry.hpp).
std::unique_ptr<Algorithm> make_bfs_tree_algorithm();

}  // namespace wcle
