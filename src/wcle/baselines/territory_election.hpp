// Territory-growing DFS election — the O(m)-message / slow-time point of
// [24]'s tradeoff space ("an algorithm that requires only O(m) messages
// though it could take arbitrary (albeit finite) time").
//
// Each candidate launches a single sequential DFS token carrying its random
// id. A token entering a node owned by a larger id dies silently; otherwise
// it (re)claims the node and continues its depth-first traversal (each
// candidate's DFS visits a node once, crossing every edge at most twice).
// The candidate whose token completes a DFS that visited all n nodes — n is
// known — declares itself leader. The strongest candidate always completes;
// weaker tokens die on first contact with stronger territory, so the total
// message count is O(m) per *surviving prefix*, O(m log k) in expectation
// over k candidates — while the single sequential token makes the running
// time Theta(m): the message-optimal/time-poor extreme the paper contrasts
// its O~(tmix)-time algorithm against.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "wcle/core/params.hpp"
#include "wcle/fault/outcome.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/sim/metrics.hpp"

namespace wcle {

struct TerritoryElectionResult {
  std::vector<NodeId> leaders;
  std::vector<NodeId> candidates;
  std::uint64_t rounds = 0;
  Metrics totals;
  FaultOutcome faults;
  bool success() const { return leaders.size() == 1; }
};

/// Candidates self-select at rate c1 log n / n (params.c1); ids from
/// [1, n^4]. Requires a connected graph.
TerritoryElectionResult run_territory_election(const Graph& g,
                                               const ElectionParams& params);

class Algorithm;

/// Factory for the `territory_election` registry adapter (see
/// wcle/api/registry.hpp).
std::unique_ptr<Algorithm> make_territory_election_algorithm();

}  // namespace wcle
