// Known-tmix election (Kutten et al. [25], the paper's main point of
// comparison): identical contender sampling and walk fan-out, but the walk
// length is FIXED to c3 * tmix, supplied a priori — the knowledge the paper's
// guess-and-double machinery exists to avoid. One walk stage plus one
// convergecast; a contender wins iff its id beats every adjacent contender's.
// Bench E12 measures what knowing tmix is worth.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "wcle/core/params.hpp"
#include "wcle/fault/outcome.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/sim/metrics.hpp"

namespace wcle {

struct KnownTmixResult {
  std::vector<NodeId> leaders;
  std::vector<NodeId> contenders;
  std::uint64_t rounds = 0;
  Metrics totals;
  FaultOutcome faults;
  bool success() const { return leaders.size() == 1; }
};

/// `walk_length` should be c3 * tmix (c3 > 1) for the w.h.p. guarantee.
KnownTmixResult run_known_tmix_election(const Graph& g,
                                        std::uint32_t walk_length,
                                        const ElectionParams& params);

/// Clamps multiplier * tmix to the walk-length range [1, 2^24]. Shared by
/// the known-tmix and estimate-then-elect adapters so the cap cannot diverge.
std::uint32_t scaled_walk_length(double multiplier, std::uint64_t tmix);

class Algorithm;

/// Factory for the `known_tmix` registry adapter (see wcle/api/registry.hpp).
std::unique_ptr<Algorithm> make_known_tmix_algorithm();

}  // namespace wcle
