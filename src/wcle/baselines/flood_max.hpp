// FloodMax: the classic deterministic flooding election. Every node floods
// the largest id it has seen; at quiescence the unique maximum-id node is the
// only one that never saw a larger id. Theta(m)-per-wave messages — the
// Omega(m)-regime comparator that the paper's algorithm beats on
// well-connected graphs (cf. [24] and bench E4).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "wcle/fault/outcome.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/sim/metrics.hpp"
#include "wcle/sim/network.hpp"

namespace wcle {

struct FloodElectionResult {
  std::vector<NodeId> leaders;
  std::uint64_t rounds = 0;
  Metrics totals;
  FaultOutcome faults;
  bool success() const { return leaders.size() == 1; }
};

/// Runs FloodMax with random ids drawn from [1, n^4]. `cfg` selects the
/// transport regime and fault axis (bandwidth_bits == 0 = standard budget).
FloodElectionResult run_flood_max(const Graph& g, std::uint64_t seed,
                                  CongestConfig cfg = {});

class Algorithm;

/// Factory for the `flood_max` registry adapter (see wcle/api/registry.hpp).
std::unique_ptr<Algorithm> make_flood_max_algorithm();

}  // namespace wcle
