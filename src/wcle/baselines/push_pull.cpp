#include "wcle/baselines/push_pull.hpp"

#include <memory>

#include "wcle/api/algorithm.hpp"

#include <stdexcept>
#include <utility>

#include "wcle/sim/network.hpp"
#include "wcle/support/bits.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

namespace {
constexpr std::uint8_t kTagRumor = 0x20;
constexpr std::uint8_t kTagPull = 0x21;
}  // namespace

BroadcastResult run_push_pull(const Graph& g,
                              const std::vector<NodeId>& sources,
                              std::uint32_t value_bits, std::uint64_t seed,
                              std::uint64_t max_rounds, CongestConfig cfg) {
  const NodeId n = g.node_count();
  if (sources.empty())
    throw std::invalid_argument("run_push_pull: need at least one source");
  if (max_rounds == 0) {
    const std::uint64_t lg = ceil_log2(n) ? ceil_log2(n) : 1;
    max_rounds = 64 * lg * static_cast<std::uint64_t>(n);  // >= O(log n / phi)
  }

  Network net(g, cfg.resolved(n));
  Rng rng(seed);
  std::vector<char> informed(n, 0);
  std::uint64_t informed_count = 0;
  for (const NodeId s : sources) {
    if (!informed[s]) {
      informed[s] = 1;
      ++informed_count;
    }
  }

  const std::uint32_t rumor_bits = value_bits ? value_bits : id_bits(n);
  // Pull replies owed from the previous round: (node, port).
  std::vector<std::pair<NodeId, Port>> owed, next_owed;

  BroadcastResult res;
  // Completion target under faults: every *currently up* node informed.
  // Dead or partitioned-off survivors can never learn the rumor; without
  // this the loop would spin its full round cap on every faulty run.
  auto informed_up = [&]() {
    std::uint64_t count = 0;
    for (NodeId v = 0; v < n; ++v)
      if (informed[v] && net.node_up(v)) ++count;
    return count;
  };
  while (informed_up() < net.up_count() && res.rounds < max_rounds) {
    // Each node contacts one uniformly random neighbour per round.
    for (NodeId v = 0; v < n; ++v) {
      const Port p = static_cast<Port>(rng.next_below(g.degree(v)));
      Message msg;
      if (informed[v]) {
        msg.tag = kTagRumor;
        msg.bits = rumor_bits;
      } else {
        msg.tag = kTagPull;
        msg.bits = 8;
      }
      net.send(v, p, msg);
    }
    // Answer pulls that arrived last round.
    for (const auto& [v, p] : owed) {
      if (!informed[v]) continue;
      Message msg;
      msg.tag = kTagRumor;
      msg.bits = rumor_bits;
      net.send(v, p, msg);
    }
    owed.clear();

    const std::vector<Delivery>& delivered = net.step();
    res.rounds += 1;
    for (const Delivery& d : delivered) {
      if (d.msg.tag == kTagRumor) {
        if (!informed[d.dst]) {
          informed[d.dst] = 1;
          ++informed_count;
        }
      } else {
        next_owed.emplace_back(d.dst, d.port);
      }
    }
    owed.swap(next_owed);
  }

  net.note_phase(res.rounds >= max_rounds ? "push_pull_capped"
                                          : "push_pull_done",
                 informed_count);
  res.complete = informed_up() == net.up_count();
  res.informed = informed_count;
  res.totals = net.metrics();
  res.faults = net.fault_outcome();
  res.faults.hit_round_cap = !res.complete && res.rounds >= max_rounds;
  return res;
}

namespace {

class PushPullAlgorithm final : public Algorithm {
 public:
  std::string name() const override { return "push_pull"; }
  std::string describe() const override {
    return "push-pull rumor spreading from `source`; O(log n / phi) rounds "
           "(Karp et al. [22], Giakkoupis [17])";
  }
  Kind kind() const override { return Kind::kBroadcast; }
  RunResult run(const Graph& g, const RunOptions& options) const override {
    const NodeId src = options.source < g.node_count() ? options.source : 0;
    const BroadcastResult r = run_push_pull(
        g, {src}, options.value_bits, options.seed(), options.max_rounds,
        congest_config_for(options.params, g.node_count()));
    RunResult out;
    out.algorithm = name();
    out.leaders = {src};
    out.rounds = r.rounds;
    out.totals = r.totals;
    out.success = r.complete;
    out.faults = r.faults;
    out.extras["informed"] = static_cast<double>(r.informed);
    return out;
  }
};

}  // namespace

std::unique_ptr<Algorithm> make_push_pull_algorithm() {
  return std::make_unique<PushPullAlgorithm>();
}

}  // namespace wcle
