// Push-pull rumor spreading (Karp et al. [22]; conductance-tight analysis by
// Giakkoupis [17]): every round each informed node pushes the rumor through a
// uniformly random port and each uninformed node pulls through a uniformly
// random port (informed nodes answer pulls). Completes in O(log n / phi)
// rounds, i.e. O(n log n / phi) messages — the broadcast stage of the
// explicit variant (Corollary 14) and the comparator of Corollary 26.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "wcle/fault/outcome.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/sim/metrics.hpp"
#include "wcle/sim/network.hpp"

namespace wcle {

struct BroadcastResult {
  bool complete = false;       ///< every *surviving* node informed
  std::uint64_t informed = 0;  ///< nodes informed at the end
  std::uint64_t rounds = 0;
  Metrics totals;
  FaultOutcome faults;
};

/// Spreads a rumor of `value_bits` bits from `sources` until every node is
/// informed or `max_rounds` elapse (0 = 64 * log2(n)^2 / a generous default).
/// `cfg` selects the transport regime and fault axis; bandwidth_bits == 0
/// means the standard CONGEST budget.
BroadcastResult run_push_pull(const Graph& g,
                              const std::vector<NodeId>& sources,
                              std::uint32_t value_bits, std::uint64_t seed,
                              std::uint64_t max_rounds = 0,
                              CongestConfig cfg = {});

class Algorithm;

/// Factory for the `push_pull` registry adapter (see wcle/api/registry.hpp).
std::unique_ptr<Algorithm> make_push_pull_algorithm();

}  // namespace wcle
