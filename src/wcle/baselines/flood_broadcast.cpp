#include "wcle/baselines/flood_broadcast.hpp"

#include <stdexcept>

#include "wcle/sim/network.hpp"
#include "wcle/support/bits.hpp"

namespace wcle {

namespace {
constexpr std::uint8_t kTagFlood = 0x25;
}

FloodBroadcastResult run_flood_broadcast(const Graph& g, NodeId source,
                                         std::uint32_t value_bits) {
  const NodeId n = g.node_count();
  if (source >= n)
    throw std::invalid_argument("run_flood_broadcast: source out of range");

  Network net(g, CongestConfig::standard(n));
  std::vector<char> informed(n, 0);
  FloodBroadcastResult res;
  informed[source] = 1;
  res.informed = 1;

  const std::uint32_t bits = value_bits ? value_bits : id_bits(n);
  auto forward = [&](NodeId v, Port skip) {
    for (Port p = 0; p < g.degree(v); ++p) {
      if (p == skip) continue;
      Message msg;
      msg.tag = kTagFlood;
      msg.bits = bits;
      net.send(v, p, msg);
    }
  };
  forward(source, ~Port{0});

  res.rounds = net.run_until_idle([&](const Delivery& d) {
    if (informed[d.dst]) return;
    informed[d.dst] = 1;
    ++res.informed;
    forward(d.dst, d.port);
  });
  res.complete = res.informed == n;
  res.totals = net.metrics();
  return res;
}

}  // namespace wcle
