#include "wcle/baselines/flood_broadcast.hpp"

#include <memory>

#include "wcle/api/algorithm.hpp"

#include <stdexcept>

#include "wcle/sim/network.hpp"
#include "wcle/support/bits.hpp"

namespace wcle {

namespace {
constexpr std::uint8_t kTagFlood = 0x25;
}

FloodBroadcastResult run_flood_broadcast(const Graph& g, NodeId source,
                                         std::uint32_t value_bits,
                                         CongestConfig cfg) {
  const NodeId n = g.node_count();
  if (source >= n)
    throw std::invalid_argument("run_flood_broadcast: source out of range");

  Network net(g, cfg.resolved(n));
  std::vector<char> informed(n, 0);
  FloodBroadcastResult res;
  informed[source] = 1;
  res.informed = 1;

  const std::uint32_t bits = value_bits ? value_bits : id_bits(n);
  auto forward = [&](NodeId v, Port skip) {
    for (Port p = 0; p < g.degree(v); ++p) {
      if (p == skip) continue;
      Message msg;
      msg.tag = kTagFlood;
      msg.bits = bits;
      net.send(v, p, msg);
    }
  };
  forward(source, ~Port{0});

  res.rounds = net.run_until_idle([&](const Delivery& d) {
    if (informed[d.dst]) return;
    informed[d.dst] = 1;
    ++res.informed;
    forward(d.dst, d.port);
  });
  res.complete = res.informed == n;
  net.note_phase("flood_done", res.informed);
  res.totals = net.metrics();
  res.faults = net.fault_outcome();
  return res;
}

namespace {

class FloodBroadcastAlgorithm final : public Algorithm {
 public:
  std::string name() const override { return "flood_broadcast"; }
  std::string describe() const override {
    return "deterministic flooding broadcast from `source`; Theta(m) "
           "messages, O(D) rounds (Corollary 26 comparator)";
  }
  Kind kind() const override { return Kind::kBroadcast; }
  RunResult run(const Graph& g, const RunOptions& options) const override {
    const NodeId src = options.source < g.node_count() ? options.source : 0;
    const FloodBroadcastResult r = run_flood_broadcast(
        g, src, options.value_bits,
        congest_config_for(options.params, g.node_count()));
    RunResult out;
    out.algorithm = name();
    out.leaders = {src};
    out.rounds = r.rounds;
    out.totals = r.totals;
    out.success = r.complete;
    out.faults = r.faults;
    out.extras["informed"] = static_cast<double>(r.informed);
    return out;
  }
};

}  // namespace

std::unique_ptr<Algorithm> make_flood_broadcast_algorithm() {
  return std::make_unique<FloodBroadcastAlgorithm>();
}

}  // namespace wcle
