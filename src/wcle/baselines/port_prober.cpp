#include "wcle/baselines/port_prober.hpp"

#include <algorithm>

#include "wcle/sim/network.hpp"
#include "wcle/support/bits.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

namespace {
constexpr std::uint8_t kTagProbe = 0x26;
}

ProbeResult run_port_prober(
    const Graph& g, std::uint64_t budget_per_node, std::uint64_t seed,
    const std::function<bool(NodeId, NodeId)>& is_target_edge) {
  const NodeId n = g.node_count();
  Network net(g, CongestConfig::standard(n));
  Rng rng(seed);
  ProbeResult res;

  // Each node opens a random subset of its ports (partial Fisher-Yates).
  const std::uint32_t bits = ceil_log2(n) + 8;
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t deg = g.degree(v);
    const std::uint64_t opens =
        std::min<std::uint64_t>(budget_per_node, deg);
    std::vector<Port> ports(deg);
    for (Port p = 0; p < deg; ++p) ports[p] = p;
    for (std::uint64_t k = 0; k < opens; ++k) {
      const std::uint64_t j = k + rng.next_below(deg - k);
      std::swap(ports[k], ports[j]);
      Message msg;
      msg.tag = kTagProbe;
      msg.a = v;
      msg.bits = bits;
      net.send(v, ports[k], msg);
      ++res.probes_sent;
    }
  }

  res.rounds = net.run_until_idle([&](const Delivery& d) {
    const NodeId from = static_cast<NodeId>(d.msg.a);
    if (is_target_edge(from, d.dst)) ++res.target_edges_found;
  });
  res.totals = net.metrics();
  return res;
}

}  // namespace wcle
