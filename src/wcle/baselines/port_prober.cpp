#include "wcle/baselines/port_prober.hpp"

#include <cmath>
#include <memory>

#include "wcle/api/algorithm.hpp"

#include <algorithm>

#include "wcle/sim/network.hpp"
#include "wcle/support/bits.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

namespace {
constexpr std::uint8_t kTagProbe = 0x26;
}

ProbeResult run_port_prober(
    const Graph& g, std::uint64_t budget_per_node, std::uint64_t seed,
    const std::function<bool(NodeId, NodeId)>& is_target_edge,
    CongestConfig cfg) {
  const NodeId n = g.node_count();
  Network net(g, cfg.resolved(n));
  Rng rng(seed);
  ProbeResult res;

  // Each node opens a random subset of its ports (partial Fisher-Yates).
  const std::uint32_t bits = ceil_log2(n) + 8;
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t deg = g.degree(v);
    const std::uint64_t opens =
        std::min<std::uint64_t>(budget_per_node, deg);
    std::vector<Port> ports(deg);
    for (Port p = 0; p < deg; ++p) ports[p] = p;
    for (std::uint64_t k = 0; k < opens; ++k) {
      const std::uint64_t j = k + rng.next_below(deg - k);
      std::swap(ports[k], ports[j]);
      Message msg;
      msg.tag = kTagProbe;
      msg.a = v;
      msg.bits = bits;
      net.send(v, ports[k], msg);
      ++res.probes_sent;
    }
  }

  res.rounds = net.run_until_idle([&](const Delivery& d) {
    const NodeId from = static_cast<NodeId>(d.msg.a);
    if (is_target_edge(from, d.dst)) ++res.target_edges_found;
  });
  res.totals = net.metrics();
  res.faults = net.fault_outcome();
  return res;
}

namespace {

class PortProberAlgorithm final : public Algorithm {
 public:
  std::string name() const override { return "port_prober"; }
  std::string describe() const override {
    return "random port probing with per-node budget (default ceil(sqrt n)); "
           "target edges = bisection cut (Lemma 18 mechanism)";
  }
  Kind kind() const override { return Kind::kDiagnostic; }
  RunResult run(const Graph& g, const RunOptions& options) const override {
    const NodeId n = g.node_count();
    std::uint64_t budget = options.probe_budget;
    if (budget == 0)
      budget = static_cast<std::uint64_t>(
          std::ceil(std::sqrt(static_cast<double>(n))));
    const NodeId half = n / 2;
    const ProbeResult r = run_port_prober(
        g, budget, options.seed(),
        [half](NodeId a, NodeId b) { return (a < half) != (b < half); },
        congest_config_for(options.params, n));
    RunResult out;
    out.algorithm = name();
    // Diagnostic protocol: the distinguished node is the sweep coordinator.
    out.leaders = {options.source < n ? options.source : 0};
    out.rounds = r.rounds;
    out.totals = r.totals;
    out.success = r.probes_sent > 0;
    out.faults = r.faults;
    out.extras["probes_sent"] = static_cast<double>(r.probes_sent);
    out.extras["target_edges_found"] =
        static_cast<double>(r.target_edges_found);
    out.extras["budget_per_node"] = static_cast<double>(budget);
    return out;
  }
};

}  // namespace

std::unique_ptr<Algorithm> make_port_prober_algorithm() {
  return std::make_unique<PortProberAlgorithm>();
}

}  // namespace wcle
