#include "wcle/baselines/known_tmix.hpp"

#include <memory>

#include "wcle/api/algorithm.hpp"
#include "wcle/graph/spectral.hpp"
#include "wcle/support/rng.hpp"

#include <algorithm>
#include <stdexcept>

#include "wcle/rw/walk_engine.hpp"
#include "wcle/sim/network.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

KnownTmixResult run_known_tmix_election(const Graph& g,
                                        std::uint32_t walk_length,
                                        const ElectionParams& params) {
  const NodeId n = g.node_count();
  if (walk_length == 0)
    throw std::invalid_argument("run_known_tmix_election: walk_length >= 1");

  KnownTmixResult res;
  Rng root(params.seed);
  Rng id_rng = root.fork(0x1d5);
  Rng coin_rng = root.fork(0xc01);
  Rng walk_rng = root.fork(0x3a1);

  std::vector<std::uint64_t> rid(n);
  const std::uint64_t space = params.id_space(n);
  for (NodeId v = 0; v < n; ++v) rid[v] = id_rng.next_in(1, space);

  const double pc = params.contender_probability(n);
  for (NodeId v = 0; v < n; ++v)
    if (coin_rng.next_bool(pc)) res.contenders.push_back(v);
  if (res.contenders.empty()) return res;

  Network net(g, congest_config_for(params, n));
  for (const NodeId v : res.contenders) net.note_contender(v);
  WalkEngine engine(g, net, walk_rng,
                    {params.lazy_walks, params.coalesce_tokens});

  std::vector<WalkOrder> orders;
  const std::uint64_t walks = params.walk_count(n);
  for (const NodeId v : res.contenders)
    orders.push_back({v, walks, walk_length});
  engine.run_walk_stage(orders);

  // One convergecast: each proxy reports the other contenders it serves.
  const ProxyPayloadFn payload = [&](NodeId proxy, NodeId origin,
                                     std::uint64_t /*units*/) {
    ReplyPayload p;
    p.proxy_nodes = 1;
    for (const auto& [x, cnt] : engine.registrations(proxy))
      if (x != origin) p.add_id(rid[x]);
    return p;
  };
  std::vector<std::pair<NodeId, std::uint64_t>> adjacency_max;
  auto react = [&](const std::vector<WalkEvent>& events) {
    for (const WalkEvent& ev : events) {
      if (ev.kind != WalkEvent::Kind::kConvergecastDone) continue;
      // Crash-stop: a dead contender makes no leadership decision, even if
      // its convergecast completed locally (walks that stayed home).
      if (!net.node_up(ev.origin)) continue;
      const std::uint64_t max_adj =
          ev.reply.ids.empty() ? 0 : ev.reply.ids.back();
      adjacency_max.emplace_back(ev.origin, max_adj);
    }
  };
  react(engine.begin_convergecast(res.contenders, payload));
  net.run_until_idle(
      [&](const Delivery& d) { react(engine.handle(d)); });

  for (const auto& [v, max_adj] : adjacency_max)
    if (rid[v] > max_adj) res.leaders.push_back(v);
  std::sort(res.leaders.begin(), res.leaders.end());

  res.rounds = net.metrics().rounds;
  res.totals = net.metrics();
  res.faults = net.fault_outcome();
  return res;
}

std::uint32_t scaled_walk_length(double multiplier, std::uint64_t tmix) {
  const double scaled = multiplier * static_cast<double>(tmix);
  return static_cast<std::uint32_t>(
      std::min<double>(std::max(1.0, scaled), double{1u << 24}));
}

namespace {

class KnownTmixAlgorithm final : public Algorithm {
 public:
  std::string name() const override { return "known_tmix"; }
  std::string describe() const override {
    return "election with a-priori tmix [25]: fixed walk length "
           "c3 * tmix (tmix from options.tmix_hint or an offline oracle)";
  }
  Kind kind() const override { return Kind::kElection; }
  std::string caveat() const override {
    return "assumes a tmix oracle (the knowledge the paper removes)";
  }
  RunResult run(const Graph& g, const RunOptions& options) const override {
    // The oracle estimate is computed offline (centralized) and costs no
    // messages — that is exactly the foreknowledge the paper dispenses with.
    std::uint64_t tmix = options.tmix_hint;
    if (tmix == 0) {
      Rng rng(options.seed() ^ 0x731Aull);
      tmix = mixing_time_estimate(g, 2, rng, 1u << 16);
    }
    const std::uint32_t walk_length =
        scaled_walk_length(options.tmix_multiplier, tmix);
    const KnownTmixResult r =
        run_known_tmix_election(g, walk_length, options.params);
    RunResult out;
    out.algorithm = name();
    out.leaders = r.leaders;
    out.rounds = r.rounds;
    out.totals = r.totals;
    out.success = r.success();
    out.faults = r.faults;
    out.extras["walk_length"] = static_cast<double>(walk_length);
    out.extras["tmix_oracle"] = static_cast<double>(tmix);
    out.extras["contenders"] = static_cast<double>(r.contenders.size());
    return out;
  }
};

}  // namespace

std::unique_ptr<Algorithm> make_known_tmix_algorithm() {
  return std::make_unique<KnownTmixAlgorithm>();
}

}  // namespace wcle
