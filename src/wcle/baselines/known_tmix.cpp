#include "wcle/baselines/known_tmix.hpp"

#include <algorithm>
#include <stdexcept>

#include "wcle/rw/walk_engine.hpp"
#include "wcle/sim/network.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

KnownTmixResult run_known_tmix_election(const Graph& g,
                                        std::uint32_t walk_length,
                                        const ElectionParams& params) {
  const NodeId n = g.node_count();
  if (walk_length == 0)
    throw std::invalid_argument("run_known_tmix_election: walk_length >= 1");

  KnownTmixResult res;
  Rng root(params.seed);
  Rng id_rng = root.fork(0x1d5);
  Rng coin_rng = root.fork(0xc01);
  Rng walk_rng = root.fork(0x3a1);

  std::vector<std::uint64_t> rid(n);
  const std::uint64_t space = params.id_space(n);
  for (NodeId v = 0; v < n; ++v) rid[v] = id_rng.next_in(1, space);

  const double pc = params.contender_probability(n);
  for (NodeId v = 0; v < n; ++v)
    if (coin_rng.next_bool(pc)) res.contenders.push_back(v);
  if (res.contenders.empty()) return res;

  Network net(g, params.wide_messages ? CongestConfig::wide(n)
                                      : CongestConfig::standard(n));
  WalkEngine engine(g, net, walk_rng,
                    {params.lazy_walks, params.coalesce_tokens});

  std::vector<WalkOrder> orders;
  const std::uint64_t walks = params.walk_count(n);
  for (const NodeId v : res.contenders)
    orders.push_back({v, walks, walk_length});
  engine.run_walk_stage(orders);

  // One convergecast: each proxy reports the other contenders it serves.
  const ProxyPayloadFn payload = [&](NodeId proxy, NodeId origin,
                                     std::uint64_t /*units*/) {
    ReplyPayload p;
    p.proxy_nodes = 1;
    for (const auto& [x, cnt] : engine.registrations(proxy))
      if (x != origin) p.add_id(rid[x]);
    return p;
  };
  std::vector<std::pair<NodeId, std::uint64_t>> adjacency_max;
  auto react = [&](const std::vector<WalkEvent>& events) {
    for (const WalkEvent& ev : events) {
      if (ev.kind != WalkEvent::Kind::kConvergecastDone) continue;
      const std::uint64_t max_adj =
          ev.reply.ids.empty() ? 0 : ev.reply.ids.back();
      adjacency_max.emplace_back(ev.origin, max_adj);
    }
  };
  react(engine.begin_convergecast(res.contenders, payload));
  net.run_until_idle(
      [&](const Delivery& d) { react(engine.handle(d)); });

  for (const auto& [v, max_adj] : adjacency_max)
    if (rid[v] > max_adj) res.leaders.push_back(v);
  std::sort(res.leaders.begin(), res.leaders.end());

  res.rounds = net.metrics().rounds;
  res.totals = net.metrics();
  return res;
}

}  // namespace wcle
