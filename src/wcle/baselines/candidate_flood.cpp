#include "wcle/baselines/candidate_flood.hpp"

#include <memory>

#include "wcle/api/algorithm.hpp"

#include <algorithm>
#include <cmath>

#include "wcle/sim/network.hpp"
#include "wcle/support/bits.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

namespace {
constexpr std::uint8_t kTagCandId = 0x23;
}

CandidateFloodResult run_candidate_flood(const Graph& g, std::uint64_t seed,
                                         double candidate_rate_multiplier,
                                         CongestConfig cfg) {
  const NodeId n = g.node_count();
  Network net(g, cfg.resolved(n));
  Rng rng(seed);

  const std::uint64_t space =
      static_cast<std::uint64_t>(std::min<double>(
          9.0e18, std::pow(static_cast<double>(n < 2 ? 2 : n), 4.0)));
  const double lg = std::log2(std::max<double>(2.0, n));
  const double rate =
      std::min(1.0, candidate_rate_multiplier * lg / static_cast<double>(n));

  std::vector<std::uint64_t> rid(n), best(n, 0);
  std::vector<char> candidate(n, 0), superseded(n, 0);
  CandidateFloodResult res;
  for (NodeId v = 0; v < n; ++v) {
    rid[v] = rng.next_in(1, space);
    if (rng.next_bool(rate)) {
      candidate[v] = 1;
      best[v] = rid[v];
      res.candidates.push_back(v);
    }
  }
  if (res.candidates.empty()) {
    res.totals = net.metrics();
    res.faults = net.fault_outcome();
    return res;  // fails (probability n^{-c1})
  }
  for (const NodeId v : res.candidates) net.note_contender(v);

  const std::uint32_t bits = id_bits(n);
  auto broadcast_from = [&](NodeId v) {
    for (Port p = 0; p < g.degree(v); ++p) {
      Message msg;
      msg.tag = kTagCandId;
      msg.a = best[v];
      msg.bits = bits;
      net.send(v, p, msg);
    }
  };
  for (const NodeId v : res.candidates) broadcast_from(v);

  res.rounds = net.run_until_idle([&](const Delivery& d) {
    if (d.msg.a > best[d.dst]) {
      best[d.dst] = d.msg.a;
      if (candidate[d.dst]) superseded[d.dst] = 1;
      broadcast_from(d.dst);
    }
  });

  for (const NodeId v : res.candidates)
    if (!superseded[v]) res.leaders.push_back(v);
  res.totals = net.metrics();
  res.faults = net.fault_outcome();
  return res;
}

namespace {

class CandidateFloodAlgorithm final : public Algorithm {
 public:
  std::string name() const override { return "candidate_flood"; }
  std::string describe() const override {
    return "randomized candidate flooding (rate c1 log n / n); "
           "Theta(m)..Theta(m log log n) messages [24]";
  }
  Kind kind() const override { return Kind::kElection; }
  RunResult run(const Graph& g, const RunOptions& options) const override {
    const CandidateFloodResult r = run_candidate_flood(
        g, options.seed(), options.params.c1,
        congest_config_for(options.params, g.node_count()));
    RunResult out;
    out.algorithm = name();
    out.leaders = r.leaders;
    out.rounds = r.rounds;
    out.totals = r.totals;
    out.success = r.success();
    out.faults = r.faults;
    out.extras["candidates"] = static_cast<double>(r.candidates.size());
    return out;
  }
};

}  // namespace

std::unique_ptr<Algorithm> make_candidate_flood_algorithm() {
  return std::make_unique<CandidateFloodAlgorithm>();
}

}  // namespace wcle
