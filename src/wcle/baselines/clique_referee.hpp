// The complete-network election of Kutten, Pandurangan, Peleg, Robinson,
// Trehan [25]: O(1) rounds and O(sqrt(n) log^{3/2} n) messages on cliques.
//
//   1. Each node becomes a *candidate* with probability c1 log n / n.
//   2. Each candidate sends its random id through c2 sqrt(n log n) uniformly
//      random ports; the receivers act as referees.
//   3. A referee that has seen a larger id replies "kill" to the smaller
//      candidate (one message per dominated candidate-message).
//   4. A candidate that receives no kill declares itself leader.
//
// By the birthday paradox any two candidates share a referee w.h.p., so the
// non-maximal ones are killed. Correctness leans on the clique property that
// every port is a uniformly random distinct node — this is the specialized
// algorithm the paper generalizes to arbitrary graphs via random walks, and
// the E4 comparator for the "nearly matches the Omega(sqrt n) clique bound"
// claim.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "wcle/core/params.hpp"
#include "wcle/fault/outcome.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/sim/metrics.hpp"

namespace wcle {

struct CliqueRefereeResult {
  std::vector<NodeId> leaders;
  std::vector<NodeId> candidates;
  std::uint64_t rounds = 0;
  Metrics totals;
  FaultOutcome faults;
  bool success() const { return leaders.size() == 1; }
};

/// Runs the referee election. `g` should be a complete graph for the w.h.p.
/// guarantee (the function itself runs on any graph; on non-cliques the
/// referee sampling is only neighbourhood-local and may elect several
/// leaders — which is precisely the failure the paper's walks fix).
CliqueRefereeResult run_clique_referee(const Graph& g,
                                       const ElectionParams& params);

class Algorithm;

/// Factory for the `clique_referee` registry adapter (see
/// wcle/api/registry.hpp).
std::unique_ptr<Algorithm> make_clique_referee_algorithm();

}  // namespace wcle
