// Port-probing explorer: the mechanism inside Lemma 18 as a real CONGEST
// protocol. Every node spends a per-node probe budget opening previously
// unopened ports in random order (one probe message each); probed neighbours
// ack with their id. Because nodes cannot tell which ports lead outside
// their own dense neighbourhood, discovering one of the few "long" edges
// (inter-clique edges in G(alpha), bridges in a dumbbell) takes Theta(ports)
// probes in expectation — the engine of both Theorem 15 and Theorem 28.
#pragma once

#include <cstdint>
#include <memory>
#include <functional>
#include <vector>

#include "wcle/fault/outcome.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/sim/metrics.hpp"
#include "wcle/sim/network.hpp"

namespace wcle {

struct ProbeResult {
  std::uint64_t probes_sent = 0;
  std::uint64_t target_edges_found = 0;  ///< probes that crossed a target edge
  std::uint64_t rounds = 0;
  Metrics totals;
  FaultOutcome faults;
};

/// Every node probes up to `budget_per_node` distinct random ports.
/// `is_target_edge(u, v)` classifies discovered edges (e.g. inter-clique).
/// `cfg` selects the transport regime and fault axis (bandwidth_bits == 0 =
/// the standard budget).
ProbeResult run_port_prober(
    const Graph& g, std::uint64_t budget_per_node, std::uint64_t seed,
    const std::function<bool(NodeId, NodeId)>& is_target_edge,
    CongestConfig cfg = {});

class Algorithm;

/// Factory for the `port_prober` registry adapter (see wcle/api/registry.hpp).
std::unique_ptr<Algorithm> make_port_prober_algorithm();

}  // namespace wcle
