#include "wcle/graph/families.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>

#include "wcle/graph/dumbbell.hpp"
#include "wcle/graph/generators.hpp"
#include "wcle/graph/lower_bound_graph.hpp"
#include "wcle/support/rng.hpp"
#include "wcle/support/strict_parse.hpp"

namespace wcle {

namespace {

using Builder = Graph (*)(NodeId n, Rng& rng, const std::string& param);

NodeId square_side(NodeId n, NodeId floor_side) {
  NodeId side = floor_side;
  while ((side + 1) * (side + 1) <= n) ++side;
  return side;
}

void reject_param(const char* family, const std::string& param) {
  if (!param.empty())
    throw std::invalid_argument("graph family '" + std::string(family) +
                                "' takes no ':' parameter (got ':" + param +
                                "')");
}

double parse_alpha(const std::string& param) {
  if (param.empty()) return 0.004;
  const auto alpha = strict_double(param);
  if (!alpha || !(*alpha > 0.0) || *alpha >= 1.0)
    throw std::invalid_argument("lowerbound: alpha parameter '" + param +
                                "' must be a real in (0, 1)");
  return *alpha;
}

// One table drives both make_family and family_names, so the advertised set
// and the accepted set cannot drift apart. Kept name-sorted. Each builder
// clamps degenerate n up to its structural minimum (documented in the
// header) so n = 1 / n = 2 requests still produce valid connected graphs.
constexpr std::pair<const char*, Builder> kFamilies[] = {
    {"ba",
     [](NodeId n, Rng& rng, const std::string& param) {
       reject_param("ba", param);
       return make_barabasi_albert(std::max<NodeId>(n, 5), 3, rng);
     }},
    {"barbell",
     [](NodeId n, Rng&, const std::string& param) {
       reject_param("barbell", param);
       return make_barbell(std::max<NodeId>(n / 2, 3));
     }},
    {"bipartite",
     [](NodeId n, Rng&, const std::string& param) {
       reject_param("bipartite", param);
       const NodeId m = std::max<NodeId>(n, 3);
       return make_complete_bipartite(m / 2, m - m / 2);
     }},
    {"clique",
     [](NodeId n, Rng&, const std::string& param) {
       reject_param("clique", param);
       return make_clique(std::max<NodeId>(n, 2));
     }},
    {"dumbbell",
     [](NodeId n, Rng& rng, const std::string& param) {
       const std::string base = param.empty() ? "torus" : param;
       if (base == "dumbbell" || base == "lowerbound")
         throw std::invalid_argument("dumbbell: base family '" + base +
                                     "' is not supported");
       const Graph g0 = make_family(base, std::max<NodeId>(n / 2, 4),
                                    rng.next());
       return make_random_dumbbell(g0, rng).graph;
     }},
    {"expander",
     [](NodeId n, Rng& rng, const std::string& param) {
       reject_param("expander", param);
       NodeId m = std::max<NodeId>(n, 8);
       if (m % 2) ++m;  // n*d must be even for the pairing model
       return make_random_regular(m, 6, rng);
     }},
    {"grid",
     [](NodeId n, Rng&, const std::string& param) {
       reject_param("grid", param);
       const NodeId side = square_side(n, 2);
       return make_grid(side, side);
     }},
    {"hypercube",
     [](NodeId n, Rng&, const std::string& param) {
       reject_param("hypercube", param);
       std::uint32_t d = 1;
       while ((NodeId{1} << (d + 1)) <= n) ++d;
       return make_hypercube(d);
     }},
    {"lollipop",
     [](NodeId n, Rng&, const std::string& param) {
       reject_param("lollipop", param);
       return make_lollipop_pair(std::max<NodeId>(n / 2, 3), 2);
     }},
    {"lowerbound",
     [](NodeId n, Rng& rng, const std::string& param) {
       return make_lower_bound_graph(n, parse_alpha(param), rng).graph;
     }},
    {"path",
     [](NodeId n, Rng&, const std::string& param) {
       reject_param("path", param);
       return make_path(std::max<NodeId>(n, 2));
     }},
    {"ring",
     [](NodeId n, Rng&, const std::string& param) {
       reject_param("ring", param);
       return make_ring(std::max<NodeId>(n, 3));
     }},
    {"star",
     [](NodeId n, Rng&, const std::string& param) {
       reject_param("star", param);
       return make_star(std::max<NodeId>(n, 3));
     }},
    {"torus",
     [](NodeId n, Rng&, const std::string& param) {
       reject_param("torus", param);
       const NodeId side = square_side(n, 3);
       return make_torus(side, side);
     }},
    {"ws",
     [](NodeId n, Rng& rng, const std::string& param) {
       reject_param("ws", param);
       return make_watts_strogatz(std::max<NodeId>(n, 8), 3, 0.3, rng);
     }},
};

}  // namespace

Graph make_family(const std::string& family, NodeId n, std::uint64_t seed) {
  std::string base = family, param;
  if (const auto colon = family.find(':'); colon != std::string::npos) {
    base = family.substr(0, colon);
    param = family.substr(colon + 1);
  }
  Rng rng(seed ^ 0xFA111Cull);
  for (const auto& [name, builder] : kFamilies)
    if (base == name) return builder(n, rng, param);
  throw std::invalid_argument("unknown graph family '" + base + "'");
}

double lowerbound_alpha(const std::string& family) {
  const auto colon = family.find(':');
  return parse_alpha(colon == std::string::npos ? ""
                                                : family.substr(colon + 1));
}

std::vector<std::string> family_names() {
  std::vector<std::string> out;
  out.reserve(std::size(kFamilies));
  for (const auto& [name, builder] : kFamilies) out.emplace_back(name);
  return out;
}

}  // namespace wcle
