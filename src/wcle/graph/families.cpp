#include "wcle/graph/families.hpp"

#include <stdexcept>
#include <utility>

#include "wcle/graph/generators.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

namespace {

using Builder = Graph (*)(NodeId n, Rng& rng);

NodeId square_side(NodeId n, NodeId floor_side) {
  NodeId side = floor_side;
  while ((side + 1) * (side + 1) <= n) ++side;
  return side;
}

// One table drives both make_family and family_names, so the advertised set
// and the accepted set cannot drift apart. Kept name-sorted.
constexpr std::pair<const char*, Builder> kFamilies[] = {
    {"ba", [](NodeId n, Rng& rng) { return make_barabasi_albert(n, 3, rng); }},
    {"barbell", [](NodeId n, Rng&) { return make_barbell(n / 2); }},
    {"bipartite",
     [](NodeId n, Rng&) { return make_complete_bipartite(n / 2, n - n / 2); }},
    {"clique", [](NodeId n, Rng&) { return make_clique(n); }},
    {"expander",
     [](NodeId n, Rng& rng) {
       return make_random_regular(n % 2 ? n + 1 : n, 6, rng);
     }},
    {"grid",
     [](NodeId n, Rng&) {
       const NodeId side = square_side(n, 2);
       return make_grid(side, side);
     }},
    {"hypercube",
     [](NodeId n, Rng&) {
       std::uint32_t d = 1;
       while ((NodeId{1} << (d + 1)) <= n) ++d;
       return make_hypercube(d);
     }},
    {"lollipop", [](NodeId n, Rng&) { return make_lollipop_pair(n / 2, 2); }},
    {"path", [](NodeId n, Rng&) { return make_path(n); }},
    {"ring", [](NodeId n, Rng&) { return make_ring(n); }},
    {"star", [](NodeId n, Rng&) { return make_star(n); }},
    {"torus",
     [](NodeId n, Rng&) {
       const NodeId side = square_side(n, 3);
       return make_torus(side, side);
     }},
    {"ws",
     [](NodeId n, Rng& rng) { return make_watts_strogatz(n, 3, 0.3, rng); }},
};

}  // namespace

Graph make_family(const std::string& family, NodeId n, std::uint64_t seed) {
  Rng rng(seed ^ 0xFA111Cull);
  for (const auto& [name, builder] : kFamilies)
    if (family == name) return builder(n, rng);
  throw std::invalid_argument("unknown graph family '" + family + "'");
}

std::vector<std::string> family_names() {
  std::vector<std::string> out;
  out.reserve(std::size(kFamilies));
  for (const auto& [name, builder] : kFamilies) out.emplace_back(name);
  return out;
}

}  // namespace wcle
