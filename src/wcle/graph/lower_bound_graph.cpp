#include "wcle/graph/lower_bound_graph.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "wcle/graph/generators.hpp"

namespace wcle {

LowerBoundGraph make_lower_bound_graph(NodeId n_target, double alpha, Rng& rng,
                                       Rng* port_rng) {
  if (n_target < 25)
    throw std::invalid_argument("make_lower_bound_graph: n_target too small");
  const double n = static_cast<double>(n_target);
  if (!(alpha > 1.0 / (n * n)) || !(alpha < 1.0 / 144.0))
    throw std::invalid_argument(
        "make_lower_bound_graph: alpha outside (1/n^2, 1/144)");

  LowerBoundGraph out;
  out.alpha = alpha;
  out.epsilon = std::log(1.0 / alpha) / (2.0 * std::log(n));
  const NodeId s =
      static_cast<NodeId>(std::ceil(std::pow(n, out.epsilon)));
  const NodeId N =
      static_cast<NodeId>(std::floor(std::pow(n, 1.0 - out.epsilon)));
  if (s < 5)
    throw std::invalid_argument(
        "make_lower_bound_graph: clique size < 5 (alpha too large for n)");
  if (N < 5)
    throw std::invalid_argument(
        "make_lower_bound_graph: fewer than 5 cliques (alpha too small for n)");
  out.clique_size = s;
  out.num_cliques = N;

  // GS: random 4-regular super-node graph (Figure 1). 4N is even for any N.
  out.supernode_graph = make_random_regular(N, 4, rng);

  const NodeId total = N * s;
  out.clique_of.resize(total);
  for (NodeId c = 0; c < N; ++c)
    for (NodeId i = 0; i < s; ++i) out.clique_of[c * s + i] = c;

  // Choose, per clique, a random assignment of its 4 incident GS-edges to 4
  // distinct member nodes (the external-edged nodes, "previously unchosen").
  std::vector<std::array<NodeId, 4>> externals(N);
  for (NodeId c = 0; c < N; ++c) {
    // Sample 4 distinct offsets in [0, s) by partial Fisher-Yates.
    std::vector<NodeId> pool(s);
    for (NodeId i = 0; i < s; ++i) pool[i] = i;
    for (int k = 0; k < 4; ++k) {
      const std::uint64_t j = k + rng.next_below(s - k);
      std::swap(pool[k], pool[j]);
      externals[c][static_cast<std::size_t>(k)] = c * s + pool[k];
    }
  }

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(N) * s * (s - 1) / 2 + 2ull * N);

  // Intra-clique edges: K_s minus the two removed external pairs (Figure 2).
  for (NodeId c = 0; c < N; ++c) {
    const NodeId base = c * s;
    const auto& ext = externals[c];
    auto removed = [&](NodeId a, NodeId b) {
      const auto eq = [](NodeId x, NodeId y, NodeId p, NodeId q) {
        return (x == p && y == q) || (x == q && y == p);
      };
      return eq(a, b, ext[0], ext[1]) || eq(a, b, ext[2], ext[3]);
    };
    for (NodeId i = 0; i < s; ++i)
      for (NodeId j = i + 1; j < s; ++j) {
        const NodeId u = base + i, v = base + j;
        if (!removed(u, v)) edges.push_back({u, v});
      }
  }

  // Inter-clique edges: one per GS edge, consuming each clique's externals in
  // GS-port order so every external node carries exactly one inter-clique edge.
  std::vector<int> next_ext(N, 0);
  out.inter_clique_edges.reserve(2ull * N);
  for (const Edge& se : out.supernode_graph.edges()) {
    const NodeId ua =
        externals[se.a][static_cast<std::size_t>(next_ext[se.a]++)];
    const NodeId ub =
        externals[se.b][static_cast<std::size_t>(next_ext[se.b]++)];
    edges.push_back({ua, ub});
    out.inter_clique_edges.push_back({std::min(ua, ub), std::max(ua, ub)});
  }

  out.graph = Graph::from_edges(total, edges, port_rng);
  return out;
}

}  // namespace wcle
