// The lower-bound construction of Section 4.1 (Figures 1 and 2): a random
// 4-regular "super-node" graph GS on N = floor(n^{1-eps}) super-nodes, where
// each super-node is expanded into a clique of s = ceil(n^eps) nodes. Each
// GS-edge becomes one inter-clique edge between distinct, randomly chosen
// "external-edged" nodes of the two cliques; to keep node degrees uniform,
// two intra-clique edges are removed (one between each pair of the four
// external-edged nodes). The resulting graph has conductance Theta(alpha)
// with alpha = 1/n^{2 eps}   (Lemma 16), where eps = log(1/alpha)/(2 log n).
#pragma once

#include <vector>

#include "wcle/graph/graph.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

/// The constructed graph plus the bookkeeping the lower-bound experiments
/// need (clique membership, inter-clique edges, the super-node graph).
struct LowerBoundGraph {
  Graph graph;
  Graph supernode_graph;                ///< GS: random 4-regular on N nodes
  NodeId clique_size = 0;               ///< s = ceil(n^eps)
  NodeId num_cliques = 0;               ///< N = floor(n^{1-eps})
  double epsilon = 0.0;                 ///< eps = log(1/alpha) / (2 log n)
  double alpha = 0.0;                   ///< requested conductance scale
  std::vector<NodeId> clique_of;        ///< node -> clique index
  std::vector<Edge> inter_clique_edges; ///< the N*2 cross edges (a<b per edge)
};

/// Builds G(alpha) targeting ~`n_target` nodes. Requires
/// 1/n^2 < alpha < 1/12^2 (the theorem's range) adjusted so that the clique
/// size is at least 5 (needed for 4 distinct external-edged nodes with two
/// removable intra-clique edges) and N >= 5. Throws std::invalid_argument if
/// the requested (n, alpha) cannot satisfy these structural minima.
LowerBoundGraph make_lower_bound_graph(NodeId n_target, double alpha, Rng& rng,
                                       Rng* port_rng = nullptr);

}  // namespace wcle
