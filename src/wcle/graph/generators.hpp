// Graph family generators used across tests, examples, and the benchmark
// sweeps. Families mirror those named in the paper: rings (poorly connected),
// tori/grids, cliques (constant conductance), hypercubes, and expanders
// (realized as random d-regular graphs, which are expanders w.h.p. [Bollobas]).
#pragma once

#include <cstdint>

#include "wcle/graph/graph.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

/// Cycle on n >= 3 nodes. tmix = Theta(n^2), phi = Theta(1/n).
Graph make_ring(NodeId n, Rng* port_rng = nullptr);

/// Simple path on n >= 2 nodes (worst-case connectivity; test fodder).
Graph make_path(NodeId n, Rng* port_rng = nullptr);

/// Complete graph on n >= 2 nodes. phi = Theta(1), tmix = O(1).
Graph make_clique(NodeId n, Rng* port_rng = nullptr);

/// d-dimensional hypercube on 2^dim nodes. tmix = O(log n log log n).
Graph make_hypercube(std::uint32_t dim, Rng* port_rng = nullptr);

/// rows x cols torus (wrap-around 2D grid), rows, cols >= 3.
/// tmix = Theta(max(rows, cols)^2).
Graph make_torus(NodeId rows, NodeId cols, Rng* port_rng = nullptr);

/// rows x cols open grid (no wrap-around), rows, cols >= 2.
Graph make_grid(NodeId rows, NodeId cols, Rng* port_rng = nullptr);

/// Random d-regular simple graph via the pairing/configuration model with
/// rejection-and-repair; requires n*d even, d < n. W.h.p. an expander for
/// d >= 3: tmix = O(log n). Also used for the 4-regular supernode graph GS
/// of the lower-bound construction (Figure 1).
Graph make_random_regular(NodeId n, std::uint32_t d, Rng& rng,
                          Rng* port_rng = nullptr);

/// Erdos-Renyi G(n, p), conditioned on connectivity by resampling (throws
/// after `max_attempts` failures). Useful for irregular-degree coverage.
Graph make_connected_gnp(NodeId n, double p, Rng& rng,
                         Rng* port_rng = nullptr, int max_attempts = 64);

/// Barbell: two cliques of size k joined by a single edge. phi = Theta(1/k^2);
/// the classic poorly-connected stress test.
Graph make_barbell(NodeId k, Rng* port_rng = nullptr);

/// Two cliques of size k joined by a path of length `bridge_len` (>=1 edges).
Graph make_lollipop_pair(NodeId k, NodeId bridge_len, Rng* port_rng = nullptr);

/// Star: center 0 connected to n-1 leaves. phi = Theta(1) but maximally
/// irregular degrees — stress test for the degree-weighted machinery.
Graph make_star(NodeId n, Rng* port_rng = nullptr);

/// Complete bipartite K_{a,b} (a, b >= 1, a+b >= 3). Bipartite: the lazy
/// walk mixes, the non-lazy walk does not (ablation 4's family).
Graph make_complete_bipartite(NodeId a, NodeId b, Rng* port_rng = nullptr);

/// Barabasi-Albert preferential attachment: starts from a clique on m0+1
/// nodes, each new node attaches to `m0` distinct existing nodes sampled
/// proportionally to degree. Power-law degrees, small diameter — the
/// unstructured-P2P topology of the paper's motivating applications.
Graph make_barabasi_albert(NodeId n, std::uint32_t m0, Rng& rng,
                           Rng* port_rng = nullptr);

/// Watts-Strogatz small world: ring lattice with k neighbours per side,
/// each lattice edge rewired with probability beta (conditioned on staying
/// simple and connected). Interpolates ring (beta=0) to expander-like.
Graph make_watts_strogatz(NodeId n, std::uint32_t k, double beta, Rng& rng,
                          Rng* port_rng = nullptr, int max_attempts = 64);

}  // namespace wcle
