// Dumbbell graphs (Section 5, Theorem 28): two "open graphs" — copies of a
// 2-connected base graph G0 each with one edge erased — joined by two bridge
// edges across the freed ports. Running an algorithm that does not know n on
// Dumbbell(G0[e'], G0[e'']) is indistinguishable from running it on G0 alone
// until a message crosses a bridge ("bridge crossing"), which is the engine of
// the Omega(m) unknown-n lower bound.
#pragma once

#include "wcle/graph/graph.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

/// A dumbbell plus the bookkeeping needed by the indistinguishability
/// experiments: which side each node lies on and the two bridge edges.
struct DumbbellGraph {
  Graph graph;
  NodeId base_n = 0;             ///< |V(G0)|; left side is [0, base_n)
  Edge left_cut;                 ///< edge removed from the left copy
  Edge right_cut;                ///< edge removed from right copy (base ids)
  Edge bridge1;                  ///< (left_cut.a, base_n + right_cut.a)
  Edge bridge2;                  ///< (left_cut.b, base_n + right_cut.b)

  bool on_left(NodeId v) const noexcept { return v < base_n; }
};

/// Builds Dumbbell(G0[left_cut], G0[right_cut]). `g0` must be 2-connected
/// (checked) and both cuts must be edges of g0 (checked). Right-copy node v of
/// the base graph becomes node base_n + v.
DumbbellGraph make_dumbbell(const Graph& g0, Edge left_cut, Edge right_cut,
                            Rng* port_rng = nullptr);

/// Convenience: picks two random (distinct) edges of g0 as the cuts.
DumbbellGraph make_random_dumbbell(const Graph& g0, Rng& rng,
                                   Rng* port_rng = nullptr);

}  // namespace wcle
