// Spectral and random-walk analysis of graphs: lazy-walk transition operator,
// mixing time (the paper's exact definition: minimum t with
// ||P pi_t - pi*||_inf <= 1/(2n) for every start), spectral gap via power
// iteration, Cheeger bounds relating the gap to conductance, and conductance
// itself (exact for tiny graphs, sweep-cut upper bound otherwise). These
// implement Section 2 of the paper, including equation (1):
//   Theta(1/phi) <= tmix <= Theta(1/phi^2).
#pragma once

#include <cstdint>
#include <vector>

#include "wcle/graph/graph.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

/// One step of the lazy random walk:
/// out[v] = in[v]/2 + sum_{u~v} in[u]/(2 d_u).
/// `out` is resized to n. This is the paper's transition matrix P.
void lazy_walk_step(const Graph& g, const std::vector<double>& in,
                    std::vector<double>& out);

/// Stationary distribution pi*_v = d_v / (2m).
std::vector<double> stationary_distribution(const Graph& g);

/// Mixing time from a single point-mass start at `source`: minimum t such that
/// ||pi_t - pi*||_inf <= eps (paper: eps = 1/(2n)). Returns max_t+1 if not
/// reached within max_t steps.
std::uint64_t mixing_time_from(const Graph& g, NodeId source, double eps,
                               std::uint64_t max_t);

/// Exact mixing time per the paper's definition (max over all point-mass
/// starts; point masses are the extreme points of the simplex, so this equals
/// the max over all starting distributions). O(n^2 * tmix) time — intended for
/// n up to a few thousand.
std::uint64_t mixing_time_exact(const Graph& g, std::uint64_t max_t);

/// Estimated mixing time: max over `samples` random sources plus the min- and
/// max-degree vertices. A lower bound on the exact value; tight in practice on
/// vertex-transitive and random regular families.
std::uint64_t mixing_time_estimate(const Graph& g, std::uint32_t samples,
                                   Rng& rng, std::uint64_t max_t);

/// Spectral gap 1 - lambda_2 of the lazy walk (equivalently of the symmetric
/// normalized operator S = D^{1/2} P D^{-1/2}), computed by power iteration
/// with deflation of the known top eigenvector D^{1/2} 1. `iters` power steps.
double spectral_gap(const Graph& g, std::uint32_t iters = 2000);

/// Cheeger bounds on conductance from the lazy-walk spectral gap `gap`:
/// for the lazy chain, 1 - lambda_2(lazy) = (1 - lambda_2(nonlazy))/2, and the
/// standard Cheeger inequality gives gap <= phi and phi <= 2*sqrt(gap).
struct CheegerBounds {
  double lower = 0.0;
  double upper = 0.0;
};
CheegerBounds cheeger_bounds(double lazy_gap);

/// Conductance of the cut (S, V\S): |E(S, V\S)| / min(vol S, vol V\S).
/// `in_s[v]` nonzero marks membership. Returns +inf for trivial cuts.
double cut_conductance(const Graph& g, const std::vector<char>& in_s);

/// Exact conductance by enumerating all 2^(n-1)-1 nontrivial cuts. n <= 24.
double conductance_exact(const Graph& g);

/// Sweep-cut upper bound on conductance: order vertices by the (approximate)
/// second eigenvector of S, scan prefix cuts, return the best. Standard
/// spectral-partitioning heuristic; an upper bound on phi, within the Cheeger
/// factor of optimal.
double conductance_sweep(const Graph& g, std::uint32_t iters = 2000);

}  // namespace wcle
