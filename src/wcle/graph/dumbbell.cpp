#include "wcle/graph/dumbbell.hpp"

#include <algorithm>
#include <stdexcept>

namespace wcle {

namespace {

bool same_edge(const Edge& x, const Edge& y) {
  return (x.a == y.a && x.b == y.b) || (x.a == y.b && x.b == y.a);
}

}  // namespace

DumbbellGraph make_dumbbell(const Graph& g0, Edge left_cut, Edge right_cut,
                            Rng* port_rng) {
  if (!g0.is_two_connected())
    throw std::invalid_argument("make_dumbbell: base graph not 2-connected");
  const std::vector<Edge> base_edges = g0.edges();
  auto has = [&](const Edge& e) {
    return std::any_of(base_edges.begin(), base_edges.end(),
                       [&](const Edge& x) { return same_edge(x, e); });
  };
  if (!has(left_cut) || !has(right_cut))
    throw std::invalid_argument("make_dumbbell: cut edge not in base graph");

  DumbbellGraph out;
  out.base_n = g0.node_count();
  out.left_cut = left_cut;
  out.right_cut = right_cut;

  std::vector<Edge> edges;
  edges.reserve(2 * base_edges.size());
  for (const Edge& e : base_edges)
    if (!same_edge(e, left_cut)) edges.push_back(e);
  for (const Edge& e : base_edges)
    if (!same_edge(e, right_cut))
      edges.push_back({e.a + out.base_n, e.b + out.base_n});

  out.bridge1 = {left_cut.a, out.base_n + right_cut.a};
  out.bridge2 = {left_cut.b, out.base_n + right_cut.b};
  edges.push_back(out.bridge1);
  edges.push_back(out.bridge2);

  out.graph = Graph::from_edges(2 * out.base_n, edges, port_rng);
  return out;
}

DumbbellGraph make_random_dumbbell(const Graph& g0, Rng& rng, Rng* port_rng) {
  const std::vector<Edge> base_edges = g0.edges();
  if (base_edges.size() < 2)
    throw std::invalid_argument("make_random_dumbbell: need >= 2 edges");
  const std::size_t i = rng.next_below(base_edges.size());
  std::size_t j = rng.next_below(base_edges.size() - 1);
  if (j >= i) ++j;
  return make_dumbbell(g0, base_edges[i], base_edges[j], port_rng);
}

}  // namespace wcle
