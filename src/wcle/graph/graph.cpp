#include "wcle/graph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "wcle/graph/flat_edge_set.hpp"

namespace wcle {

Graph Graph::from_edges(NodeId n, const std::vector<Edge>& edges,
                        Rng* port_rng) {
  std::vector<std::uint32_t> deg(n, 0);
  // Membership-only duplicate detector: FlatEdgeSet has no iteration surface,
  // so its hash order cannot reach the port layout by construction.
  FlatEdgeSet seen(edges.size());
  for (const Edge& e : edges) {
    if (e.a >= n || e.b >= n)
      throw std::invalid_argument("Graph::from_edges: endpoint out of range");
    if (e.a == e.b)
      throw std::invalid_argument("Graph::from_edges: self-loop");
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(e.a, e.b)) << 32) |
        std::max(e.a, e.b);
    if (!seen.insert(key))
      throw std::invalid_argument("Graph::from_edges: duplicate edge");
    ++deg[e.a];
    ++deg[e.b];
  }

  std::vector<std::uint64_t> offset(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId u = 0; u < n; ++u) offset[u + 1] = offset[u] + deg[u];
  std::vector<NodeId> adj(2 * edges.size(), 0);

  // Lay out neighbours, remembering for each slot the paired slot on the
  // other endpoint so mirror ports survive the shuffle in from_adjacency.
  std::vector<std::uint64_t> cursor(offset.begin(), offset.end() - 1);
  std::vector<std::uint64_t> pair_slot(2 * edges.size(), 0);
  for (const Edge& e : edges) {
    const std::uint64_t sa = cursor[e.a]++;
    const std::uint64_t sb = cursor[e.b]++;
    adj[sa] = e.b;
    adj[sb] = e.a;
    pair_slot[sa] = sb;
    pair_slot[sb] = sa;
  }
  return from_adjacency(n, std::move(offset), std::move(adj),
                        std::move(pair_slot), port_rng);
}

Graph Graph::from_adjacency(NodeId n, std::vector<std::uint64_t> offset,
                            std::vector<NodeId> adj,
                            std::vector<std::uint64_t> pair_slot,
                            Rng* port_rng) {
  if (offset.size() != static_cast<std::size_t>(n) + 1 || offset[0] != 0 ||
      offset[n] != adj.size() || pair_slot.size() != adj.size() ||
      adj.size() % 2 != 0)
    throw std::invalid_argument("Graph::from_adjacency: inconsistent arrays");
  for (NodeId u = 0; u < n; ++u)
    if (offset[u] > offset[u + 1])
      throw std::invalid_argument(
          "Graph::from_adjacency: offsets not monotone");

  Graph g;
  g.n_ = n;
  g.m_ = adj.size() / 2;
  g.offset_ = std::move(offset);
  g.adj_ = std::move(adj);

  if (port_rng != nullptr) {
    // Shuffle each node's slots independently: asymmetric port numbering.
    for (NodeId u = 0; u < n; ++u) {
      const std::uint64_t lo = g.offset_[u], hi = g.offset_[u + 1];
      for (std::uint64_t i = hi - lo; i > 1; --i) {
        const std::uint64_t j = port_rng->next_below(i);
        const std::uint64_t x = lo + i - 1, y = lo + j;
        if (x == y) continue;
        std::swap(g.adj_[x], g.adj_[y]);
        std::swap(pair_slot[x], pair_slot[y]);
        pair_slot[pair_slot[x]] = x;
        pair_slot[pair_slot[y]] = y;
      }
    }
  }

  g.mirror_.assign(g.adj_.size(), 0);
  for (NodeId u = 0; u < n; ++u) {
    for (std::uint64_t s = g.offset_[u]; s < g.offset_[u + 1]; ++s) {
      const NodeId v = g.adj_[s];
      const std::uint64_t ps = pair_slot[s];
      if (v >= n || ps >= g.adj_.size() || pair_slot[ps] != s ||
          g.adj_[ps] != u || ps < g.offset_[v] || ps >= g.offset_[v + 1])
        throw std::invalid_argument(
            "Graph::from_adjacency: pairing is not a port involution");
      g.mirror_[s] = static_cast<Port>(ps - g.offset_[v]);
    }
  }
  return g;
}

std::uint32_t Graph::min_degree() const noexcept {
  std::uint32_t d = n_ > 0 ? degree(0) : 0;
  for (NodeId u = 1; u < n_; ++u) d = std::min(d, degree(u));
  return d;
}

std::uint32_t Graph::max_degree() const noexcept {
  std::uint32_t d = 0;
  for (NodeId u = 0; u < n_; ++u) d = std::max(d, degree(u));
  return d;
}

bool Graph::is_connected() const {
  if (n_ == 0) return true;
  std::vector<char> vis(n_, 0);
  std::vector<NodeId> stack{0};
  vis[0] = 1;
  NodeId reached = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (NodeId v : neighbors(u)) {
      if (!vis[v]) {
        vis[v] = 1;
        ++reached;
        stack.push_back(v);
      }
    }
  }
  return reached == n_;
}

bool Graph::is_two_connected() const {
  if (n_ < 3 || !is_connected()) return false;
  // Iterative Tarjan articulation-point detection.
  std::vector<std::uint32_t> disc(n_, 0), low(n_, 0);
  std::vector<NodeId> parent(n_, n_);
  std::uint32_t timer = 1;
  struct Frame {
    NodeId u;
    std::uint32_t next_port;
  };
  std::vector<Frame> stack;
  stack.push_back({0, 0});
  disc[0] = low[0] = timer++;
  std::uint32_t root_children = 0;
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_port < degree(f.u)) {
      const NodeId v = neighbor(f.u, f.next_port++);
      if (disc[v] == 0) {
        parent[v] = f.u;
        if (f.u == 0) ++root_children;
        disc[v] = low[v] = timer++;
        stack.push_back({v, 0});
      } else if (v != parent[f.u]) {
        low[f.u] = std::min(low[f.u], disc[v]);
      }
    } else {
      const NodeId u = f.u;
      stack.pop_back();
      if (!stack.empty()) {
        const NodeId p = stack.back().u;
        low[p] = std::min(low[p], low[u]);
        if (p != 0 && low[u] >= disc[p]) return false;  // articulation point
      }
    }
  }
  return root_children < 2;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(m_);
  for (NodeId u = 0; u < n_; ++u)
    for (NodeId v : neighbors(u))
      if (u < v) out.push_back({u, v});
  return out;
}

std::string Graph::describe() const {
  std::ostringstream os;
  os << "graph(n=" << n_ << ", m=" << m_ << ", deg=[" << min_degree() << ","
     << max_degree() << "])";
  return os.str();
}

}  // namespace wcle
