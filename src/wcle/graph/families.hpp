// Named graph families: the string-keyed counterpart of generators.hpp, so
// the CLI, tests, benches, and the sweep engine can build any family from
// ("name", n, seed) alone — the graph-side analogue of the algorithm
// registry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wcle/graph/graph.hpp"

namespace wcle {

/// Builds the named family sized as close to `n` as the family permits.
/// Sizes snap to the nearest realizable shape: torus/grid to a square side,
/// hypercube to a power of two, expander to even n; degenerate requests
/// (n = 1, n = 2, ...) snap UP to each family's structural minimum, so every
/// call that names a known family yields a valid connected graph. Throws
/// std::invalid_argument for an unknown name or malformed parameter.
///
/// Families: clique, ring, path, torus, grid, hypercube, expander
/// (6-regular), star, barbell, lollipop, bipartite, ba (Barabasi-Albert
/// m0=3), ws (Watts-Strogatz k=3), plus two parameterized families used by
/// the lower-bound experiments:
///
///   lowerbound[:alpha]  — the Section-4.1 graph G(alpha) of ~n nodes
///                         (default alpha 0.004); throws when (n, alpha)
///                         cannot satisfy the construction's minima.
///   dumbbell[:base]     — Dumbbell(G0[e'], G0[e'']) of Theorem 28 over two
///                         copies of `base` (default torus) of ~n/2 nodes
///                         each; `base` is any non-parameterized family name
///                         that yields a 2-connected graph.
///
/// The ':' parameter is only accepted by the families documented to take
/// one; "ring:3" is rejected rather than silently ignored.
Graph make_family(const std::string& family, NodeId n, std::uint64_t seed);

/// All recognized family names, sorted (parameterized families appear under
/// their base name).
std::vector<std::string> family_names();

/// The alpha a "lowerbound[:alpha]" family string resolves to — the single
/// source of truth for the default, shared with the bench normalization
/// columns. Throws std::invalid_argument on a malformed parameter, exactly
/// like make_family would.
double lowerbound_alpha(const std::string& family);

}  // namespace wcle
