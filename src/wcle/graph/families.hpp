// Named graph families: the string-keyed counterpart of generators.hpp, so
// the CLI, tests, and benches can build any family from ("name", n, seed)
// alone — the graph-side analogue of the algorithm registry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wcle/graph/graph.hpp"

namespace wcle {

/// Builds the named family sized as close to `n` as the family permits
/// (torus snaps to a square side, hypercube to a power of two, expander to
/// even n). Throws std::invalid_argument for an unknown name.
/// Families: clique, ring, path, torus, grid, hypercube, expander
/// (6-regular), star, barbell, lollipop, bipartite, ba (Barabasi-Albert
/// m0=3), ws (Watts-Strogatz k=3).
Graph make_family(const std::string& family, NodeId n, std::uint64_t seed);

/// All recognized family names, sorted.
std::vector<std::string> family_names();

}  // namespace wcle
