// Membership-only set of 64-bit edge keys, the duplicate-edge filter used by
// Graph::from_edges and the randomized generators. Open addressing with
// linear probing over a power-of-two flat array at load factor <= 1/2: eight
// bytes per slot instead of std::unordered_set's ~40-byte heap nodes, which
// is the difference between a ~50 MB and a ~300 MB dedup table when building
// a million-node expander (3M edges). Deliberately membership-only — there
// is no iteration surface at all, so hash order can never leak into an RNG
// stream; the unordered_set it replaces had to document that contract by
// hand at every use site.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace wcle {

class FlatEdgeSet {
 public:
  FlatEdgeSet() = default;
  explicit FlatEdgeSet(std::uint64_t expected) { reserve(expected); }

  /// Grows the table so `expected` keys fit without rehashing.
  void reserve(std::uint64_t expected) {
    std::uint64_t cap = 16;
    while (cap < expected * 2) cap *= 2;
    if (cap > slots_.size()) rehash(cap);
  }

  /// Inserts `key`; returns true if it was not present. Keys of ~0 are
  /// reserved (impossible for edge keys: min(a,b) << 32 | max(a,b) with
  /// a != b never has all 64 bits set).
  bool insert(std::uint64_t key) {
    assert(key != kEmpty);
    if ((size_ + 1) * 2 > slots_.size()) rehash(grown());
    std::uint64_t i = mix(key) & mask_;
    while (slots_[i] != kEmpty) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask_;
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

  bool contains(std::uint64_t key) const {
    if (slots_.empty()) return false;
    std::uint64_t i = mix(key) & mask_;
    while (slots_[i] != kEmpty) {
      if (slots_[i] == key) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  /// unordered_set-compatible membership spelling (0 or 1).
  std::uint64_t count(std::uint64_t key) const {
    return contains(key) ? 1 : 0;
  }

  std::uint64_t size() const noexcept { return size_; }
  std::uint64_t memory_bytes() const noexcept {
    return slots_.capacity() * sizeof(std::uint64_t);
  }

 private:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  /// splitmix64 finalizer: full-avalanche mix so edge keys (structured
  /// high/low node-id halves) spread over the table.
  static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::uint64_t grown() const {
    return slots_.empty() ? 16 : slots_.size() * 2;
  }

  void rehash(std::uint64_t cap) {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(cap, kEmpty);
    mask_ = cap - 1;
    for (const std::uint64_t key : old) {
      if (key == kEmpty) continue;
      std::uint64_t i = mix(key) & mask_;
      while (slots_[i] != kEmpty) i = (i + 1) & mask_;
      slots_[i] = key;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::uint64_t mask_ = 0;
  std::uint64_t size_ = 0;
};

}  // namespace wcle
