#include "wcle/graph/generators.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>

#include "wcle/graph/flat_edge_set.hpp"

namespace wcle {

namespace {

std::uint64_t edge_key(NodeId a, NodeId b) {
  return (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
}

}  // namespace

Graph make_ring(NodeId n, Rng* port_rng) {
  if (n < 3) throw std::invalid_argument("make_ring: n must be >= 3");
  std::vector<Edge> edges;
  edges.reserve(n);
  for (NodeId i = 0; i < n; ++i) edges.push_back({i, (i + 1) % n});
  return Graph::from_edges(n, edges, port_rng);
}

Graph make_path(NodeId n, Rng* port_rng) {
  if (n < 2) throw std::invalid_argument("make_path: n must be >= 2");
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (NodeId i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  return Graph::from_edges(n, edges, port_rng);
}

Graph make_clique(NodeId n, Rng* port_rng) {
  if (n < 2) throw std::invalid_argument("make_clique: n must be >= 2");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) edges.push_back({i, j});
  return Graph::from_edges(n, edges, port_rng);
}

Graph make_hypercube(std::uint32_t dim, Rng* port_rng) {
  if (dim < 1 || dim > 30)
    throw std::invalid_argument("make_hypercube: dim must be in [1,30]");
  const NodeId n = NodeId{1} << dim;
  // Direct CSR construction: every node has degree `dim`, and the port
  // layout from_edges would produce (edges pushed in (min endpoint, bit)
  // order) is closed-form, so no edge list or dedup table is ever built.
  // Node v's ports are its down-neighbours v - 2^b for set bits b in
  // DESCENDING order, then its up-neighbours v + 2^b for clear bits b in
  // ASCENDING order. That keeps a direct build byte-identical (adjacency,
  // mirrors, and any port-shuffle RNG stream) to the old edge-list build.
  std::vector<std::uint64_t> offset(static_cast<std::size_t>(n) + 1);
  for (std::uint64_t v = 0; v <= n; ++v) offset[v] = v * dim;
  std::vector<NodeId> adj(static_cast<std::size_t>(n) * dim);
  std::vector<std::uint64_t> pair_slot(adj.size());
  for (NodeId v = 0; v < n; ++v) {
    const std::uint64_t base = static_cast<std::uint64_t>(v) * dim;
    for (std::uint32_t b = 0; b < dim; ++b) {
      const NodeId bit = NodeId{1} << b;
      const NodeId u = v ^ bit;
      const NodeId low = v & (bit - 1);  // bits of v strictly below b
      std::uint32_t my_idx, partner_idx;
      if ((v & bit) != 0) {
        // Down-edge to u = v - 2^b: position among set bits, descending.
        my_idx = static_cast<std::uint32_t>(std::popcount(v >> (b + 1)));
        partner_idx = static_cast<std::uint32_t>(std::popcount(u)) +
                      (b - static_cast<std::uint32_t>(std::popcount(low)));
      } else {
        // Up-edge to u = v + 2^b: after all down-ports, clear bits ascending.
        my_idx = static_cast<std::uint32_t>(std::popcount(v)) +
                 (b - static_cast<std::uint32_t>(std::popcount(low)));
        partner_idx = static_cast<std::uint32_t>(std::popcount(v >> (b + 1)));
      }
      adj[base + my_idx] = u;
      pair_slot[base + my_idx] =
          static_cast<std::uint64_t>(u) * dim + partner_idx;
    }
  }
  return Graph::from_adjacency(n, std::move(offset), std::move(adj),
                               std::move(pair_slot), port_rng);
}

Graph make_torus(NodeId rows, NodeId cols, Rng* port_rng) {
  if (rows < 3 || cols < 3)
    throw std::invalid_argument("make_torus: rows, cols must be >= 3");
  const NodeId n = rows * cols;
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  std::vector<Edge> edges;
  edges.reserve(2ull * n);
  for (NodeId r = 0; r < rows; ++r)
    for (NodeId c = 0; c < cols; ++c) {
      edges.push_back({id(r, c), id(r, (c + 1) % cols)});
      edges.push_back({id(r, c), id((r + 1) % rows, c)});
    }
  return Graph::from_edges(n, edges, port_rng);
}

Graph make_grid(NodeId rows, NodeId cols, Rng* port_rng) {
  if (rows < 2 || cols < 2)
    throw std::invalid_argument("make_grid: rows, cols must be >= 2");
  const NodeId n = rows * cols;
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  std::vector<Edge> edges;
  for (NodeId r = 0; r < rows; ++r)
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c)});
    }
  return Graph::from_edges(n, edges, port_rng);
}

Graph make_random_regular(NodeId n, std::uint32_t d, Rng& rng, Rng* port_rng) {
  if (d >= n) throw std::invalid_argument("make_random_regular: need d < n");
  if ((static_cast<std::uint64_t>(n) * d) % 2 != 0)
    throw std::invalid_argument("make_random_regular: n*d must be even");
  if (d == 0) throw std::invalid_argument("make_random_regular: d must be > 0");

  // Steger-Wormald incremental pairing: repeatedly match two random unused
  // stubs that form a "suitable" pair (no loop, no duplicate edge); fall back
  // to an exhaustive scan when random probing fails near the end, restarting
  // only in the rare case no suitable pair remains. Asymptotically uniform
  // for constant d and succeeds w.h.p. without restarts.
  const std::uint64_t stubs_count = static_cast<std::uint64_t>(n) * d;
  for (int attempt = 0; attempt < 256; ++attempt) {
    std::vector<NodeId> stubs(stubs_count);
    std::uint64_t idx = 0;
    for (NodeId u = 0; u < n; ++u)
      for (std::uint32_t k = 0; k < d; ++k) stubs[idx++] = u;
    // Membership-only duplicate-edge filter: FlatEdgeSet exposes no
    // iteration at all, so hash order cannot perturb the pairing RNG stream.
    FlatEdgeSet seen(stubs_count / 2);
    std::vector<Edge> edges;
    edges.reserve(stubs_count / 2);

    auto remove_stub = [&](std::uint64_t i) {
      stubs[i] = stubs.back();
      stubs.pop_back();
    };

    bool stuck = false;
    while (!stubs.empty()) {
      bool matched = false;
      for (int probe = 0; probe < 64 && !matched; ++probe) {
        const std::uint64_t i = rng.next_below(stubs.size());
        std::uint64_t j = rng.next_below(stubs.size() - 1);
        if (j >= i) ++j;
        const NodeId a = stubs[i], b = stubs[j];
        if (a == b || !seen.insert(edge_key(a, b))) continue;
        edges.push_back({a, b});
        remove_stub(std::max(i, j));
        remove_stub(std::min(i, j));
        matched = true;
      }
      if (matched) continue;
      // Exhaustive scan (only reached when few stubs remain).
      for (std::uint64_t i = 0; i < stubs.size() && !matched; ++i) {
        for (std::uint64_t j = i + 1; j < stubs.size() && !matched; ++j) {
          const NodeId a = stubs[i], b = stubs[j];
          if (a == b || !seen.insert(edge_key(a, b))) continue;
          edges.push_back({a, b});
          remove_stub(j);
          remove_stub(i);
          matched = true;
        }
      }
      if (!matched) {
        stuck = true;
        break;
      }
    }
    if (stuck) continue;
    Graph g = Graph::from_edges(n, edges, port_rng);
    if (g.is_connected()) return g;
  }
  throw std::runtime_error(
      "make_random_regular: failed to build a connected simple graph");
}

Graph make_connected_gnp(NodeId n, double p, Rng& rng, Rng* port_rng,
                         int max_attempts) {
  if (n < 2) throw std::invalid_argument("make_connected_gnp: n must be >= 2");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    std::vector<Edge> edges;
    for (NodeId i = 0; i < n; ++i)
      for (NodeId j = i + 1; j < n; ++j)
        if (rng.next_bool(p)) edges.push_back({i, j});
    if (edges.empty()) continue;
    Graph g = Graph::from_edges(n, edges, port_rng);
    if (g.is_connected()) return g;
  }
  throw std::runtime_error("make_connected_gnp: no connected sample");
}

Graph make_barbell(NodeId k, Rng* port_rng) {
  return make_lollipop_pair(k, 1, port_rng);
}

Graph make_lollipop_pair(NodeId k, NodeId bridge_len, Rng* port_rng) {
  if (k < 3) throw std::invalid_argument("make_lollipop_pair: k must be >= 3");
  if (bridge_len < 1)
    throw std::invalid_argument("make_lollipop_pair: bridge_len must be >= 1");
  // Nodes [0,k) form clique A, [k, k+bridge_len-1) are path nodes, the last k
  // form clique B. bridge_len edges connect A's node 0 ... B's node 0.
  const NodeId path_nodes = bridge_len - 1;
  const NodeId n = 2 * k + path_nodes;
  std::vector<Edge> edges;
  for (NodeId i = 0; i < k; ++i)
    for (NodeId j = i + 1; j < k; ++j) edges.push_back({i, j});
  const NodeId b0 = k + path_nodes;  // first node of clique B
  for (NodeId i = 0; i < k; ++i)
    for (NodeId j = i + 1; j < k; ++j) edges.push_back({b0 + i, b0 + j});
  NodeId prev = 0;
  for (NodeId s = 0; s < path_nodes; ++s) {
    edges.push_back({prev, k + s});
    prev = k + s;
  }
  edges.push_back({prev, b0});
  return Graph::from_edges(n, edges, port_rng);
}

Graph make_star(NodeId n, Rng* port_rng) {
  if (n < 3) throw std::invalid_argument("make_star: n must be >= 3");
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (NodeId v = 1; v < n; ++v) edges.push_back({0, v});
  return Graph::from_edges(n, edges, port_rng);
}

Graph make_complete_bipartite(NodeId a, NodeId b, Rng* port_rng) {
  if (a < 1 || b < 1 || a + b < 3)
    throw std::invalid_argument("make_complete_bipartite: need a,b >= 1");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(a) * b);
  for (NodeId i = 0; i < a; ++i)
    for (NodeId j = 0; j < b; ++j) edges.push_back({i, a + j});
  return Graph::from_edges(a + b, edges, port_rng);
}

Graph make_barabasi_albert(NodeId n, std::uint32_t m0, Rng& rng,
                           Rng* port_rng) {
  if (m0 < 1) throw std::invalid_argument("make_barabasi_albert: m0 >= 1");
  if (n < m0 + 2)
    throw std::invalid_argument("make_barabasi_albert: need n >= m0 + 2");
  std::vector<Edge> edges;
  // Seed: clique on the first m0+1 nodes.
  for (NodeId i = 0; i <= m0; ++i)
    for (NodeId j = i + 1; j <= m0; ++j) edges.push_back({i, j});
  // Degree-proportional sampling via the repeated-endpoints trick: every
  // edge endpoint appears once in `endpoints`, so a uniform draw from it is
  // a degree-weighted draw over nodes.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2ull * n * m0);
  for (const Edge& e : edges) {
    endpoints.push_back(e.a);
    endpoints.push_back(e.b);
  }
  for (NodeId v = m0 + 1; v < n; ++v) {
    std::vector<NodeId> targets;
    while (targets.size() < m0) {
      const NodeId t = endpoints[rng.next_below(endpoints.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end())
        targets.push_back(t);
    }
    for (const NodeId t : targets) {
      edges.push_back({v, t});
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return Graph::from_edges(n, edges, port_rng);
}

Graph make_watts_strogatz(NodeId n, std::uint32_t k, double beta, Rng& rng,
                          Rng* port_rng, int max_attempts) {
  if (k < 1 || 2ull * k >= n)
    throw std::invalid_argument("make_watts_strogatz: need 1 <= k < n/2");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // Membership-only rewire-collision filter: FlatEdgeSet cannot be
    // iterated, so hash order stays out of the rewiring draws.
    FlatEdgeSet seen(static_cast<std::uint64_t>(n) * k);
    std::vector<Edge> edges;
    edges.reserve(static_cast<std::size_t>(n) * k);
    bool ok = true;
    for (NodeId i = 0; i < n && ok; ++i) {
      for (std::uint32_t d = 1; d <= k && ok; ++d) {
        NodeId j = (i + d) % n;
        if (rng.next_bool(beta)) {
          // Rewire: keep i, pick a fresh random other endpoint.
          int tries = 0;
          do {
            j = static_cast<NodeId>(rng.next_below(n));
          } while ((j == i || seen.count(edge_key(i, j))) && ++tries < 64);
          if (j == i || seen.count(edge_key(i, j))) {
            ok = false;
            break;
          }
        } else if (seen.count(edge_key(i, j))) {
          continue;  // lattice edge already present via a rewire collision
        }
        seen.insert(edge_key(i, j));
        edges.push_back({i, j});
      }
    }
    if (!ok) continue;
    Graph g = Graph::from_edges(n, edges, port_rng);
    if (g.is_connected()) return g;
  }
  throw std::runtime_error("make_watts_strogatz: no connected simple sample");
}

}  // namespace wcle
