#include "wcle/graph/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace wcle {

void lazy_walk_step(const Graph& g, const std::vector<double>& in,
                    std::vector<double>& out) {
  const NodeId n = g.node_count();
  out.assign(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    const double mass = in[u];
    if (mass == 0.0) continue;
    out[u] += mass * 0.5;
    const double share = mass * 0.5 / static_cast<double>(g.degree(u));
    for (NodeId v : g.neighbors(u)) out[v] += share;
  }
}

std::vector<double> stationary_distribution(const Graph& g) {
  const double vol = static_cast<double>(g.volume());
  std::vector<double> pi(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u)
    pi[u] = static_cast<double>(g.degree(u)) / vol;
  return pi;
}

std::uint64_t mixing_time_from(const Graph& g, NodeId source, double eps,
                               std::uint64_t max_t) {
  const NodeId n = g.node_count();
  const std::vector<double> pi_star = stationary_distribution(g);
  std::vector<double> cur(n, 0.0), next;
  cur[source] = 1.0;
  for (std::uint64_t t = 0; t <= max_t; ++t) {
    double dist = 0.0;
    for (NodeId v = 0; v < n; ++v)
      dist = std::max(dist, std::fabs(cur[v] - pi_star[v]));
    if (dist <= eps) return t;
    lazy_walk_step(g, cur, next);
    cur.swap(next);
  }
  return max_t + 1;
}

std::uint64_t mixing_time_exact(const Graph& g, std::uint64_t max_t) {
  const double eps = 1.0 / (2.0 * static_cast<double>(g.node_count()));
  std::uint64_t worst = 0;
  for (NodeId s = 0; s < g.node_count(); ++s)
    worst = std::max(worst, mixing_time_from(g, s, eps, max_t));
  return worst;
}

std::uint64_t mixing_time_estimate(const Graph& g, std::uint32_t samples,
                                   Rng& rng, std::uint64_t max_t) {
  const NodeId n = g.node_count();
  const double eps = 1.0 / (2.0 * static_cast<double>(n));
  NodeId min_v = 0, max_v = 0;
  for (NodeId u = 1; u < n; ++u) {
    if (g.degree(u) < g.degree(min_v)) min_v = u;
    if (g.degree(u) > g.degree(max_v)) max_v = u;
  }
  std::uint64_t worst =
      std::max(mixing_time_from(g, min_v, eps, max_t),
               mixing_time_from(g, max_v, eps, max_t));
  for (std::uint32_t i = 0; i < samples; ++i) {
    const NodeId s = static_cast<NodeId>(rng.next_below(n));
    worst = std::max(worst, mixing_time_from(g, s, eps, max_t));
  }
  return worst;
}

namespace {

/// Applies the symmetric operator S = D^{1/2} P D^{-1/2} where P is the lazy
/// walk: (Sx)_v = x_v/2 + sum_{u~v} x_u / (2 sqrt(d_u d_v)).
void symmetric_step(const Graph& g, const std::vector<double>& in,
                    std::vector<double>& out,
                    const std::vector<double>& inv_sqrt_deg) {
  const NodeId n = g.node_count();
  out.assign(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    out[u] += in[u] * 0.5;
    const double scaled = in[u] * 0.5 * inv_sqrt_deg[u];
    for (NodeId v : g.neighbors(u)) out[v] += scaled * inv_sqrt_deg[v];
  }
}

double norm2(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

/// Power iteration for lambda_2 of S; also writes the (approximate)
/// eigenvector into `vec_out` if non-null.
double second_eigenvalue(const Graph& g, std::uint32_t iters,
                         std::vector<double>* vec_out) {
  const NodeId n = g.node_count();
  if (n < 2) return 0.0;
  std::vector<double> top(n), inv_sqrt_deg(n);
  for (NodeId u = 0; u < n; ++u) {
    top[u] = std::sqrt(static_cast<double>(g.degree(u)));
    inv_sqrt_deg[u] = 1.0 / top[u];
  }
  const double top_norm = norm2(top);
  for (double& x : top) x /= top_norm;

  // Deterministic pseudo-random start vector, deflated against `top`.
  std::vector<double> x(n), next;
  Rng rng(0xc0ffee ^ (static_cast<std::uint64_t>(n) << 20));
  for (double& xi : x) xi = rng.next_double() - 0.5;
  auto deflate = [&](std::vector<double>& v) {
    double dot = 0.0;
    for (NodeId u = 0; u < n; ++u) dot += v[u] * top[u];
    for (NodeId u = 0; u < n; ++u) v[u] -= dot * top[u];
  };
  deflate(x);
  double nx = norm2(x);
  if (nx == 0.0) return 0.0;
  for (double& xi : x) xi /= nx;

  double lambda = 0.0;
  for (std::uint32_t it = 0; it < iters; ++it) {
    symmetric_step(g, x, next, inv_sqrt_deg);
    deflate(next);
    const double nn = norm2(next);
    if (nn < 1e-300) return 0.0;
    lambda = 0.0;
    for (NodeId u = 0; u < n; ++u) lambda += next[u] * x[u];
    for (double& v : next) v /= nn;
    x.swap(next);
  }
  if (vec_out != nullptr) *vec_out = x;
  // S is PSD (lazy), so lambda_2 >= 0; clamp numerical noise.
  return std::clamp(lambda, 0.0, 1.0);
}

}  // namespace

double spectral_gap(const Graph& g, std::uint32_t iters) {
  return 1.0 - second_eigenvalue(g, iters, nullptr);
}

CheegerBounds cheeger_bounds(double lazy_gap) {
  // Non-lazy normalized-adjacency gap is twice the lazy gap. Cheeger:
  // gap_nonlazy / 2 <= phi <= sqrt(2 * gap_nonlazy).
  const double gap_nonlazy = std::clamp(2.0 * lazy_gap, 0.0, 1.0);
  return {gap_nonlazy / 2.0, std::sqrt(2.0 * gap_nonlazy)};
}

double cut_conductance(const Graph& g, const std::vector<char>& in_s) {
  std::uint64_t vol_s = 0, cut = 0;
  const std::uint64_t vol_total = g.volume();
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (!in_s[u]) continue;
    vol_s += g.degree(u);
    for (NodeId v : g.neighbors(u))
      if (!in_s[v]) ++cut;
  }
  const std::uint64_t vol_min = std::min(vol_s, vol_total - vol_s);
  if (vol_min == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(cut) / static_cast<double>(vol_min);
}

double conductance_exact(const Graph& g) {
  const NodeId n = g.node_count();
  if (n > 24) throw std::invalid_argument("conductance_exact: n > 24");
  if (n < 2) return std::numeric_limits<double>::infinity();
  double best = std::numeric_limits<double>::infinity();
  std::vector<char> in_s(n, 0);
  // Fix vertex 0 on one side to halve the enumeration.
  const std::uint64_t limit = 1ull << (n - 1);
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    for (NodeId v = 0; v + 1 < n; ++v)
      in_s[v + 1] = static_cast<char>((mask >> v) & 1);
    best = std::min(best, cut_conductance(g, in_s));
  }
  return best;
}

double conductance_sweep(const Graph& g, std::uint32_t iters) {
  const NodeId n = g.node_count();
  if (n < 2) return std::numeric_limits<double>::infinity();
  std::vector<double> vec;
  second_eigenvalue(g, iters, &vec);
  if (vec.empty()) vec.assign(n, 0.0);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    // Embedding coordinate is v / sqrt(d); tie-break by id for determinism.
    const double xa = vec[a] / std::sqrt(static_cast<double>(g.degree(a)));
    const double xb = vec[b] / std::sqrt(static_cast<double>(g.degree(b)));
    if (xa != xb) return xa < xb;
    return a < b;
  });
  // Incremental sweep: maintain volume and cut size as vertices move into S.
  std::vector<char> in_s(n, 0);
  std::uint64_t vol_s = 0, cut = 0;
  const std::uint64_t vol_total = g.volume();
  double best = std::numeric_limits<double>::infinity();
  for (NodeId i = 0; i + 1 < n; ++i) {
    const NodeId u = order[i];
    in_s[u] = 1;
    vol_s += g.degree(u);
    for (NodeId v : g.neighbors(u)) {
      if (in_s[v])
        --cut;
      else
        ++cut;
    }
    const std::uint64_t vol_min = std::min(vol_s, vol_total - vol_s);
    if (vol_min == 0) continue;
    best = std::min(best,
                    static_cast<double>(cut) / static_cast<double>(vol_min));
  }
  return best;
}

}  // namespace wcle
