// Undirected graph with explicit *port numbering*, the communication substrate
// of the paper's model: each node u of degree d_u owns ports 0..d_u-1, each
// port leads to exactly one neighbour, and the two endpoints of an edge need
// not use the same port number (asymmetric port mapping). Nodes in the
// simulator address neighbours only through ports; they never see neighbour
// identities, matching the anonymous CONGEST/port-numbering model.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "wcle/support/rng.hpp"

namespace wcle {

using NodeId = std::uint32_t;
using Port = std::uint32_t;

/// An undirected edge as a pair of node ids (order irrelevant).
struct Edge {
  NodeId a = 0;
  NodeId b = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Immutable undirected multigraph-free graph in CSR form with per-node port
/// permutations. Construction validates simplicity (no loops, no parallel
/// edges) and optionally randomizes port orders.
class Graph {
 public:
  /// An empty graph (0 nodes); useful as a placeholder before assignment.
  Graph() = default;

  /// Builds a graph on `n` nodes from an edge list. Throws
  /// std::invalid_argument on self-loops, duplicate edges, or out-of-range
  /// endpoints. If `port_rng`
  /// is non-null each node's port order is independently shuffled (asymmetric
  /// port numbering); otherwise ports follow neighbour-id order.
  static Graph from_edges(NodeId n, const std::vector<Edge>& edges,
                          Rng* port_rng = nullptr);

  /// Builds a graph directly from CSR arrays, bypassing the edge-list path:
  /// `offset` has n+1 entries, `adj[offset[u]..offset[u+1])` lists u's
  /// neighbours in port order, and `pair_slot[s]` is the global slot of the
  /// reverse direction of slot s's edge (an involution). Structured families
  /// (hypercube) use this to construct million-node graphs without ever
  /// materializing an edge list or a dedup table. Port shuffling draws from
  /// `port_rng` exactly as from_edges does, so a direct build and an
  /// edge-list build of the same layout are RNG-stream identical. Throws
  /// std::invalid_argument when the arrays are inconsistent (sizes, slot
  /// range, pairing not an involution across a real edge).
  static Graph from_adjacency(NodeId n, std::vector<std::uint64_t> offset,
                              std::vector<NodeId> adj,
                              std::vector<std::uint64_t> pair_slot,
                              Rng* port_rng = nullptr);

  NodeId node_count() const noexcept { return n_; }
  std::uint64_t edge_count() const noexcept { return m_; }

  std::uint32_t degree(NodeId u) const noexcept {
    return static_cast<std::uint32_t>(offset_[u + 1] - offset_[u]);
  }

  /// Neighbour reached through port p of node u.
  NodeId neighbor(NodeId u, Port p) const noexcept {
    return adj_[offset_[u] + p];
  }

  /// The port on which `neighbor(u,p)` sees u (the reverse direction of the
  /// same physical link). Needed by the simulator to report arrival ports.
  Port mirror_port(NodeId u, Port p) const noexcept {
    return mirror_[offset_[u] + p];
  }

  /// All neighbours of u in port order.
  std::span<const NodeId> neighbors(NodeId u) const noexcept {
    return {adj_.data() + offset_[u], adj_.data() + offset_[u + 1]};
  }

  /// Sum of degrees of all nodes (= 2m). "Volume" in conductance formulas.
  std::uint64_t volume() const noexcept { return 2 * m_; }

  std::uint32_t min_degree() const noexcept;
  std::uint32_t max_degree() const noexcept;

  bool is_connected() const;

  /// True if the graph is 2-vertex-connected (no articulation points and
  /// connected, n >= 3). Used to validate dumbbell base graphs (Section 5).
  bool is_two_connected() const;

  /// Enumerates each undirected edge once (a < b), in unspecified order.
  std::vector<Edge> edges() const;

  /// Human-readable one-line description (for logging in benches/examples).
  std::string describe() const;

  /// Heap bytes held by the CSR arrays (offsets + adjacency + mirror ports)
  /// — the graph's whole footprint beyond sizeof(Graph). Lets benches and
  /// the million-node footprint test assert the build stays lean.
  std::uint64_t memory_bytes() const noexcept {
    return offset_.capacity() * sizeof(std::uint64_t) +
           adj_.capacity() * sizeof(NodeId) + mirror_.capacity() * sizeof(Port);
  }

 private:
  NodeId n_ = 0;
  std::uint64_t m_ = 0;
  std::vector<std::uint64_t> offset_;  // size n_+1
  std::vector<NodeId> adj_;            // size 2m_, port order per node
  std::vector<Port> mirror_;           // size 2m_
};

}  // namespace wcle
