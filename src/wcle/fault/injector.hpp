// Materializes a FaultPlan against a concrete graph and drives it round by
// round. The Network owns one injector per faulty execution and consults it
// on every send and delivery; protocols may also query node_up() to model
// crash-stop state machines (a dead node takes no local steps).
//
// Event order within a round is fixed (link failures, crashes, churn-out,
// churn-in) and every random choice draws from one seeded stream, so a
// faulty execution is a pure function of (graph, plan) — the property the
// sweep engine's byte-identical-across-thread-counts guarantee rests on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "wcle/fault/adversary.hpp"
#include "wcle/fault/outcome.hpp"
#include "wcle/fault/plan.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

class TraceRecorder;

class FaultInjector {
 public:
  /// Validates `plan` (throws std::invalid_argument) and precomputes lane
  /// offsets. No fault fires before the first advance(). A non-null `trace`
  /// receives a discrete event for every fault the injector fires.
  FaultInjector(const Graph& g, FaultPlan plan, TraceRecorder* trace = nullptr);

  /// Protocols report nodes that became contenders/candidates; the
  /// "contenders" adversary targets these when its batch fires. Reports
  /// after the batch fired are recorded but change nothing.
  void note_contender(NodeId node);

  /// Applies every event whose scheduled round is <= `round`. Called by the
  /// Network at the start of each step; idempotent.
  void advance(std::uint64_t round);

  bool node_up(NodeId node) const { return up_[node] != 0; }
  std::uint64_t up_count() const { return up_count_; }

  /// True when the directed edge out of `from` through `port` still works.
  bool link_up(NodeId from, Port port) const {
    return link_failed_.empty() || !link_failed_[first_lane_[from] + port];
  }

  const std::vector<NodeId>& contender_hints() const { return hints_; }

  /// Snapshot of the fault exposure so far (typically taken at end of run).
  FaultOutcome outcome() const;

 private:
  void fail_links(std::uint64_t round);
  std::vector<NodeId> up_pool() const;
  std::vector<NodeId> pick_victims(std::uint64_t count);

  const Graph* g_;
  FaultPlan plan_;
  TraceRecorder* trace_;
  Rng rng_;
  std::unique_ptr<Adversary> adversary_;
  std::vector<std::uint64_t> first_lane_;  ///< per-node base into lane space
  std::vector<char> up_;
  std::vector<char> link_failed_;  ///< per directed edge; empty until needed
  std::vector<NodeId> hints_;
  std::vector<char> hinted_;
  std::vector<NodeId> crashed_;
  std::vector<NodeId> churned_;
  std::uint64_t up_count_ = 0;
  std::uint64_t failed_links_ = 0;
  bool linkfail_done_ = false;
  bool crash_done_ = false;
  bool churn_out_done_ = false;
  bool churn_in_done_ = false;
};

}  // namespace wcle
