#include "wcle/fault/plan.hpp"

#include <stdexcept>

#include "wcle/fault/adversary.hpp"

namespace wcle {

bool FaultPlan::any() const {
  return crash_fraction > 0.0 || !pinned_crashes.empty() ||
         linkfail_fraction > 0.0 || churn_fraction > 0.0;
}

void FaultPlan::validate() const {
  const auto fraction_in_range = [](const char* name, double f) {
    if (f < 0.0 || f > 1.0)
      throw std::invalid_argument(std::string("FaultPlan: ") + name +
                                  " must be in [0, 1]");
  };
  fraction_in_range("crash_fraction", crash_fraction);
  fraction_in_range("linkfail_fraction", linkfail_fraction);
  fraction_in_range("churn_fraction", churn_fraction);
  if (churn_fraction > 0.0 && (churn_start == 0 || churn_end <= churn_start))
    throw std::invalid_argument(
        "FaultPlan: churn_fraction > 0 needs a window (churn_start >= 1, "
        "churn_end > churn_start)");
  if (!is_adversary_name(adversary))
    throw std::invalid_argument("FaultPlan: unknown adversary '" + adversary +
                                "' (known: " + joined_adversary_names() + ")");
}

}  // namespace wcle
