// The fault exposure of one finished execution, extracted from the
// FaultInjector so it can outlive the Network: which nodes ended the run
// alive, who crashed or churned, and which links failed. Protocol result
// structs carry one of these (empty vectors = a fault-free run) and the
// verdict layer (verdict.hpp) classifies executions from it.
#pragma once

#include <cstdint>
#include <vector>

#include "wcle/graph/graph.hpp"

namespace wcle {

struct FaultOutcome {
  /// Per-node up flag at the end of the run; empty = every node survived.
  std::vector<char> up;
  /// Per-directed-edge failed flag in lane order (node-major, port-minor —
  /// the Network's lane indexing); empty = no link failures.
  std::vector<char> link_failed;
  /// Nodes permanently crash-stopped, in victim-selection order.
  std::vector<NodeId> crashed;
  /// Nodes that churned out (and, after churn_end, back in).
  std::vector<NodeId> churned;
  /// Undirected links failed.
  std::uint64_t failed_links = 0;
  /// The protocol's own termination guard fired (phase cap, round cap):
  /// the run was cut off rather than finishing — liveness is lost.
  bool hit_round_cap = false;

  /// True when `node` survived the run (empty `up` = all survived).
  bool node_up(NodeId node) const {
    return up.empty() || up[node];
  }
  /// Count of surviving nodes out of `n`.
  std::uint64_t surviving(std::uint64_t n) const;
};

/// Per-node base offsets into the directed-edge lane space (node-major,
/// port-minor; size n+1 with the total as sentinel). The one definition of
/// the indexing that Network, FaultInjector, and the verdict layer all use
/// to interpret `FaultOutcome::link_failed`.
std::vector<std::uint64_t> lane_bases(const Graph& g);

}  // namespace wcle
