#include "wcle/fault/adversary.hpp"

#include <algorithm>
#include <stdexcept>

namespace wcle {

namespace {

/// Partial Fisher-Yates: min(count, pool.size()) uniform picks without
/// replacement, in draw order. The pool copy keeps the caller's vector
/// intact.
std::vector<NodeId> random_picks(std::vector<NodeId> pool, std::uint64_t count,
                                 Rng& rng) {
  const std::size_t k =
      static_cast<std::size_t>(std::min<std::uint64_t>(count, pool.size()));
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.next_below(pool.size() - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

class RandomAdversary final : public Adversary {
 public:
  std::string name() const override { return "random"; }
  std::vector<NodeId> select(const Graph& /*g*/,
                             const std::vector<NodeId>& pool,
                             const std::vector<NodeId>& /*hints*/,
                             std::uint64_t count, Rng& rng) const override {
    return random_picks(pool, count, rng);
  }
};

class DegreeAdversary final : public Adversary {
 public:
  std::string name() const override { return "degree"; }
  std::vector<NodeId> select(const Graph& g, const std::vector<NodeId>& pool,
                             const std::vector<NodeId>& /*hints*/,
                             std::uint64_t count, Rng& /*rng*/) const override {
    // Highest degree first, ties by node id: kills hubs, deterministic
    // without consuming the rng (regular graphs degrade to lowest-id picks,
    // which is itself a legitimate worst case — the adversary knows ids).
    std::vector<NodeId> sorted = pool;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&g](NodeId a, NodeId b) {
                       if (g.degree(a) != g.degree(b))
                         return g.degree(a) > g.degree(b);
                       return a < b;
                     });
    sorted.resize(static_cast<std::size_t>(
        std::min<std::uint64_t>(count, sorted.size())));
    return sorted;
  }
};

class ContenderAdversary final : public Adversary {
 public:
  std::string name() const override { return "contenders"; }
  std::vector<NodeId> select(const Graph& /*g*/,
                             const std::vector<NodeId>& pool,
                             const std::vector<NodeId>& hints,
                             std::uint64_t count, Rng& rng) const override {
    // Reported contenders first (report order, deduplicated, pool members
    // only), then uniform picks from the rest. Protocols that report nothing
    // degrade to the random adversary.
    std::vector<NodeId> victims;
    std::vector<char> taken;
    if (!pool.empty()) {
      const NodeId max_node = pool.back();
      taken.assign(static_cast<std::size_t>(max_node) + 1, 0);
      for (const NodeId h : hints) {
        if (victims.size() >= count) break;
        if (h > max_node || taken[h]) continue;
        if (!std::binary_search(pool.begin(), pool.end(), h)) continue;
        taken[h] = 1;
        victims.push_back(h);
      }
    }
    if (victims.size() < count) {
      std::vector<NodeId> rest;
      rest.reserve(pool.size() - victims.size());
      for (const NodeId v : pool)
        if (taken.empty() || !taken[v]) rest.push_back(v);
      for (const NodeId v :
           random_picks(std::move(rest), count - victims.size(), rng))
        victims.push_back(v);
    }
    return victims;
  }
};

}  // namespace

std::unique_ptr<Adversary> make_adversary(const std::string& name) {
  if (name == "random") return std::make_unique<RandomAdversary>();
  if (name == "degree") return std::make_unique<DegreeAdversary>();
  if (name == "contenders") return std::make_unique<ContenderAdversary>();
  throw std::invalid_argument("make_adversary: unknown strategy '" + name +
                              "' (known: " + joined_adversary_names() + ")");
}

std::vector<std::string> adversary_names() {
  return {"contenders", "degree", "random"};
}

bool is_adversary_name(const std::string& name) {
  const std::vector<std::string> names = adversary_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

std::string joined_adversary_names() {
  std::string out;
  for (const std::string& name : adversary_names()) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace wcle
