#include "wcle/fault/injector.hpp"

#include <algorithm>
#include <cmath>

#include "wcle/trace/recorder.hpp"

namespace wcle {

namespace {

/// Victim count for a fraction axis: rounded, but a nonzero fraction always
/// claims at least one victim (otherwise small-n sweeps would silently run
/// fault-free) and never more than the population.
std::uint64_t victim_count(double fraction, std::uint64_t population) {
  if (fraction <= 0.0 || population == 0) return 0;
  const std::uint64_t count = static_cast<std::uint64_t>(
      std::llround(fraction * static_cast<double>(population)));
  return std::min(population, std::max<std::uint64_t>(1, count));
}

}  // namespace

std::uint64_t FaultOutcome::surviving(std::uint64_t n) const {
  if (up.empty()) return n;
  std::uint64_t count = 0;
  for (const char flag : up) count += flag ? 1 : 0;
  return count;
}

std::vector<std::uint64_t> lane_bases(const Graph& g) {
  std::vector<std::uint64_t> bases(g.node_count() + 1);
  std::uint64_t acc = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    bases[u] = acc;
    acc += g.degree(u);
  }
  bases[g.node_count()] = acc;
  return bases;
}

FaultInjector::FaultInjector(const Graph& g, FaultPlan plan,
                             TraceRecorder* trace)
    : g_(&g), plan_(std::move(plan)), trace_(trace), rng_(plan_.seed) {
  plan_.validate();
  adversary_ = make_adversary(plan_.adversary);
  const NodeId n = g.node_count();
  first_lane_ = lane_bases(g);
  up_.assign(n, 1);
  up_count_ = n;
  hinted_.assign(n, 0);
}

void FaultInjector::note_contender(NodeId node) {
  if (node >= up_.size() || hinted_[node]) return;
  hinted_[node] = 1;
  hints_.push_back(node);
}

std::vector<NodeId> FaultInjector::up_pool() const {
  std::vector<NodeId> pool;
  pool.reserve(up_count_);
  for (NodeId v = 0; v < up_.size(); ++v)
    if (up_[v]) pool.push_back(v);
  return pool;
}

std::vector<NodeId> FaultInjector::pick_victims(std::uint64_t count) {
  const std::vector<NodeId> pool = up_pool();
  std::vector<NodeId> victims =
      adversary_->select(*g_, pool, hints_, count, rng_);
  for (const NodeId v : victims) {
    up_[v] = 0;
    --up_count_;
  }
  return victims;
}

void FaultInjector::fail_links(std::uint64_t round) {
  // Canonical undirected-edge order: node-major, port-minor, counting each
  // link once from its lower endpoint. Victims by partial Fisher-Yates.
  std::vector<std::pair<NodeId, Port>> edges;
  edges.reserve(g_->edge_count());
  for (NodeId u = 0; u < g_->node_count(); ++u)
    for (Port p = 0; p < g_->degree(u); ++p)
      if (u < g_->neighbor(u, p)) edges.emplace_back(u, p);
  const std::uint64_t count =
      victim_count(plan_.linkfail_fraction, edges.size());
  link_failed_.assign(first_lane_.back(), 0);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t j = i + rng_.next_below(edges.size() - i);
    std::swap(edges[i], edges[j]);
    const auto [u, p] = edges[i];
    link_failed_[first_lane_[u] + p] = 1;
    const NodeId v = g_->neighbor(u, p);
    link_failed_[first_lane_[v] + g_->mirror_port(u, p)] = 1;
    if (trace_) trace_->event(round, TraceEventKind::kLinkDown, u, v);
  }
  failed_links_ = count;
}

void FaultInjector::advance(std::uint64_t round) {
  if (!linkfail_done_ && plan_.linkfail_fraction > 0.0 &&
      round >= plan_.linkfail_round) {
    linkfail_done_ = true;
    fail_links(round);
  }
  if (!crash_done_ &&
      (plan_.crash_fraction > 0.0 || !plan_.pinned_crashes.empty()) &&
      round >= plan_.crash_round) {
    crash_done_ = true;
    if (!plan_.pinned_crashes.empty()) {
      // Pinned universe (composed protocols): kill exactly the given nodes,
      // no adversary or rng involvement.
      for (const NodeId v : plan_.pinned_crashes) {
        if (v < up_.size() && up_[v]) {
          up_[v] = 0;
          --up_count_;
          crashed_.push_back(v);
        }
      }
    } else {
      crashed_ = pick_victims(victim_count(plan_.crash_fraction, up_.size()));
    }
    if (trace_)
      for (const NodeId v : crashed_)
        trace_->event(round, TraceEventKind::kCrash, v);
  }
  const bool churn_active = plan_.churn_fraction > 0.0 && plan_.churn_start > 0;
  if (!churn_out_done_ && churn_active && round >= plan_.churn_start) {
    churn_out_done_ = true;
    churned_ = pick_victims(victim_count(plan_.churn_fraction, up_.size()));
    if (trace_)
      for (const NodeId v : churned_)
        trace_->event(round, TraceEventKind::kChurnOut, v);
  }
  if (churn_out_done_ && !churn_in_done_ && round >= plan_.churn_end) {
    churn_in_done_ = true;
    for (const NodeId v : churned_) {
      if (!up_[v]) {
        up_[v] = 1;
        ++up_count_;
        if (trace_) trace_->event(round, TraceEventKind::kChurnIn, v);
      }
    }
  }
}

FaultOutcome FaultInjector::outcome() const {
  FaultOutcome out;
  out.up = up_;
  out.link_failed = link_failed_;
  out.crashed = crashed_;
  out.churned = churned_;
  out.failed_links = failed_links_;
  return out;
}

}  // namespace wcle
