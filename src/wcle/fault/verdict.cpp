#include "wcle/fault/verdict.hpp"

#include <algorithm>
#include <sstream>

namespace wcle {

namespace {

/// Nodes reachable from `start` through up nodes and unfailed links.
/// `first_lane` is the node-major/port-minor lane base (same indexing the
/// Network and FaultOutcome::link_failed use).
std::uint64_t reachable_survivors(const Graph& g, const FaultOutcome& fo,
                                  const std::vector<std::uint64_t>& first_lane,
                                  NodeId start, std::vector<char>& visited) {
  std::fill(visited.begin(), visited.end(), 0);
  std::vector<NodeId> frontier{start};
  visited[start] = 1;
  std::uint64_t count = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    for (Port p = 0; p < g.degree(u); ++p) {
      if (!fo.link_failed.empty() && fo.link_failed[first_lane[u] + p])
        continue;
      const NodeId v = g.neighbor(u, p);
      if (visited[v] || !fo.node_up(v)) continue;
      visited[v] = 1;
      ++count;
      frontier.push_back(v);
    }
  }
  return count;
}

}  // namespace

std::string Verdict::summary() const {
  std::ostringstream out;
  out << (safe ? "safe" : "UNSAFE") << " " << (live ? "live" : "NOT-LIVE")
      << " agree=" << agreement << " surviving=" << surviving;
  return out.str();
}

Verdict classify_execution(const Graph& g, const FaultOutcome& fo,
                           const std::vector<NodeId>& leaders,
                           std::uint64_t rounds, std::uint64_t round_budget,
                           bool election) {
  Verdict v;
  v.evaluated = true;
  v.surviving = fo.surviving(g.node_count());

  std::vector<NodeId> live_leaders;
  for (const NodeId l : leaders)
    if (l < g.node_count() && fo.node_up(l)) live_leaders.push_back(l);
  v.surviving_leaders = live_leaders.size();

  v.safe = !election || live_leaders.size() <= 1;
  v.live = !fo.hit_round_cap && (round_budget == 0 || rounds <= round_budget);

  // Agreement: best single-leader coverage of the surviving subgraph. With
  // several live leaders this is the largest camp one of them could muster —
  // safety already records the violation; agreement stays a coverage number.
  v.agreement = 0.0;
  if (v.surviving > 0 && !live_leaders.empty()) {
    const std::vector<std::uint64_t> first_lane = lane_bases(g);
    std::vector<char> visited(g.node_count(), 0);
    std::uint64_t best = 0;
    for (const NodeId l : live_leaders)
      best = std::max(best,
                      reachable_survivors(g, fo, first_lane, l, visited));
    v.agreement =
        static_cast<double>(best) / static_cast<double>(v.surviving);
  }
  return v;
}

}  // namespace wcle
