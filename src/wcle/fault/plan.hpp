// Declarative fault schedule for one execution. A FaultPlan names *what* goes
// wrong and *when* — crash-stop faults at a round, permanent link failures,
// a churn window during which nodes are offline — plus the adversary strategy
// that picks the victims (see adversary.hpp). The plan carries no graph or
// transport state: the FaultInjector (injector.hpp) materializes it against a
// concrete graph, and the Network consults the injector every round. All
// selections derive from `seed`, so faulty executions are bit-reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wcle/graph/graph.hpp"

namespace wcle {

struct FaultPlan {
  /// Fraction of nodes crash-stopped (permanently) at `crash_round`. A
  /// nonzero fraction crashes at least one node. Crashed nodes stop sending
  /// and receiving: their queued traffic still pays the congestion bill but
  /// is eaten at delivery time (a node that died mid-transmission never
  /// completes the send).
  double crash_fraction = 0.0;
  /// Round at whose start the crash batch fires (1 = before any delivery).
  std::uint64_t crash_round = 1;

  /// Fraction of undirected links that fail (permanently, both directions)
  /// at `linkfail_round`. A nonzero fraction fails at least one link. Failed
  /// links silently eat traffic while still paying the congestion bill.
  double linkfail_fraction = 0.0;
  std::uint64_t linkfail_round = 1;

  /// Churn: this fraction of nodes leaves at round `churn_start` and rejoins
  /// at round `churn_end` (window [start, end); messages to/from a churned
  /// node are eaten while it is away). A nonzero fraction requires a real
  /// window (start >= 1, end > start) — validate() rejects an unset one
  /// rather than letting the churn axis silently do nothing.
  double churn_fraction = 0.0;
  std::uint64_t churn_start = 0;
  std::uint64_t churn_end = 0;

  /// Victim-selection strategy: "random", "degree" (highest-degree first),
  /// or "contenders" (targets nodes the protocol reported as contenders via
  /// Network::note_contender, falling back to random). See adversary.hpp.
  std::string adversary = "random";

  /// Seed of the fault stream (victim picks, link picks). 0 = derive from
  /// the run seed (congest_config_for salts it); nonzero = explicit, kept
  /// verbatim so composed protocols can share one fault universe.
  std::uint64_t seed = 0;

  /// When non-empty, the crash batch kills exactly these nodes (out-of-range
  /// or already-down entries are skipped) instead of consulting the
  /// adversary. Composed protocols (explicit election) pin the first stage's
  /// victims here so every sub-protocol sees the same dead set even under
  /// hint-dependent strategies like "contenders".
  std::vector<NodeId> pinned_crashes;

  /// True when any fault axis is active (the Network only builds an
  /// injector — and pays any per-round cost — for plans that do something).
  bool any() const;

  /// Throws std::invalid_argument on out-of-range fractions, an inverted
  /// churn window, or an unknown adversary name.
  void validate() const;
};

}  // namespace wcle
