// Seeded victim-selection strategies for the fault subsystem. An Adversary
// picks which nodes a FaultPlan's crash/churn batch hits; three strategies
// ship: uniform random, targeted-by-degree (hub removal), and
// targeted-at-current-contenders (the worst case for the paper's election:
// the adversary kills exactly the nodes that sampled themselves as
// contenders, which the protocol reports through Network::note_contender).
// Selection is deterministic in (graph, pool, hints, rng state), which is
// what keeps faulty sweeps byte-identical across reruns and thread counts.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "wcle/graph/graph.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Registry key ("random", "degree", "contenders").
  virtual std::string name() const = 0;

  /// Picks min(count, pool.size()) distinct victims from `pool` (the
  /// currently-up nodes, ascending). `hints` are protocol-reported contender
  /// nodes in report order (may contain nodes outside the pool; those are
  /// skipped). Draws from `rng` in a strategy-defined but deterministic
  /// order.
  virtual std::vector<NodeId> select(const Graph& g,
                                     const std::vector<NodeId>& pool,
                                     const std::vector<NodeId>& hints,
                                     std::uint64_t count, Rng& rng) const = 0;
};

/// Factory; throws std::invalid_argument for an unknown name.
std::unique_ptr<Adversary> make_adversary(const std::string& name);

/// All strategy names, sorted.
std::vector<std::string> adversary_names();

bool is_adversary_name(const std::string& name);

/// "contenders, degree, random" — for error messages.
std::string joined_adversary_names();

}  // namespace wcle
