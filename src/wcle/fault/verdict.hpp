// Correctness verdicts for executions under faults. The fault-free harness
// judges a run by `success` alone; once nodes can die mid-run that single bit
// conflates "the algorithm broke" with "the adversary broke the problem".
// The verdict layer separates the three questions that stay well-posed:
//
//   safety    — at most one leader among the *surviving* nodes (a leader that
//               crashed is no safety violation; two live leaders are).
//   liveness  — the run terminated on its own (no phase/round cap fired) and,
//               when a round budget is given, within it.
//   agreement — the fraction of surviving nodes that can stand behind one
//               leader: those in the same surviving component (up nodes,
//               unfailed links) as a surviving leader. For broadcast and
//               diagnostic protocols the same quantity is measured from the
//               source. 1.0 on a fault-free successful run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wcle/fault/outcome.hpp"
#include "wcle/graph/graph.hpp"

namespace wcle {

struct Verdict {
  bool evaluated = false;  ///< classify_execution ran for this result
  bool safe = true;
  bool live = true;
  double agreement = 0.0;
  std::uint64_t surviving = 0;          ///< nodes up at end of run
  std::uint64_t surviving_leaders = 0;  ///< leaders among the survivors

  /// "safe live agree=0.88 surviving=29/32" (CLI run output).
  std::string summary() const;
};

/// Classifies one finished execution. `leaders` is the protocol's output
/// (elected leaders, or the broadcast source); `election` selects the
/// at-most-one-leader safety rule (broadcast/diagnostic runs are trivially
/// safe). `round_budget` = 0 means no budget: liveness is just "no cap
/// fired". An empty `outcome` (fault-free run) still yields a meaningful
/// verdict — e.g. a fault-free multi-leader election run is unsafe.
Verdict classify_execution(const Graph& g, const FaultOutcome& outcome,
                           const std::vector<NodeId>& leaders,
                           std::uint64_t rounds, std::uint64_t round_budget,
                           bool election);

}  // namespace wcle
