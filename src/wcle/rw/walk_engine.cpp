#include "wcle/rw/walk_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "wcle/support/bits.hpp"
#include "wcle/trace/recorder.hpp"

namespace wcle {

namespace {

/// lower_bound position of `origin` in a sorted registration list.
std::vector<WalkEngine::Registration>::iterator reg_position(
    std::vector<WalkEngine::Registration>& regs, NodeId origin) {
  return std::lower_bound(
      regs.begin(), regs.end(), origin,
      [](const WalkEngine::Registration& r, NodeId o) { return r.first < o; });
}

}  // namespace

void ReplyPayload::merge(const ReplyPayload& other) {
  distinct_proxies += other.distinct_proxies;
  proxy_nodes += other.proxy_nodes;
  if (other.ids.empty()) return;
  std::vector<std::uint64_t> merged;
  merged.reserve(ids.size() + other.ids.size());
  std::set_union(ids.begin(), ids.end(), other.ids.begin(), other.ids.end(),
                 std::back_inserter(merged));
  ids = std::move(merged);
}

void ReplyPayload::add_id(std::uint64_t id) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) ids.insert(it, id);
}

// ---------------------------------------------------------------- WordPool

std::uint32_t WordPool::size_class(std::uint32_t n) noexcept {
  return ceil_log2(n > 1 ? n : 1);
}

std::uint32_t WordPool::alloc(std::uint32_t n) {
  const std::uint32_t cls = size_class(n);
  const std::uint32_t cap = 1u << cls;
  if (free_head_[cls] != kNull) {
    const std::uint32_t h = free_head_[cls];
    free_head_[cls] = static_cast<std::uint32_t>(*data(h));
    return h;
  }
  if (cap > kChunkWords) {
    // Oversized: a dedicated chunk at offset 0. Never bump-reused; rewind
    // hands the slot back through its class free list instead.
    if (chunks_.size() > (kNull >> kChunkBits))
      throw std::length_error("WordPool: chunk index space exhausted");
    const std::uint32_t h = static_cast<std::uint32_t>(chunks_.size())
                            << kChunkBits;
    // wcle-lint: no-alloc-ok(oversized id set; warms once, recycled forever)
    chunks_.push_back(std::make_unique<std::uint64_t[]>(cap));
    // wcle-lint: no-alloc-ok(one entry per oversized slot ever created)
    dedicated_.push_back({h, cls});
    return h;
  }
  if (bump_at_ < bump_order_.size() && cur_used_ + cap > kChunkWords) {
    ++bump_at_;
    cur_used_ = 0;
  }
  if (bump_at_ == bump_order_.size()) {
    if (chunks_.size() > (kNull >> kChunkBits))
      throw std::length_error("WordPool: chunk index space exhausted");
    bump_order_.push_back(static_cast<std::uint32_t>(chunks_.size()));
    chunks_.push_back(std::make_unique<std::uint64_t[]>(kChunkWords));
    cur_used_ = 0;
  }
  const std::uint32_t h =
      (bump_order_[bump_at_] << kChunkBits) | cur_used_;
  cur_used_ += cap;
  return h;
}

void WordPool::free(std::uint32_t h, std::uint32_t n) {
  // The class is derived from the *logical* length, which can undershoot the
  // allocated class after a shrinking set-union; the slot is then merely
  // larger than its new class requires, never smaller, so reuse stays safe.
  const std::uint32_t cls = size_class(n);
  *data(h) = free_head_[cls];
  free_head_[cls] = h;
}

void WordPool::rewind() {
  for (std::uint32_t c = 0; c < kClasses; ++c) free_head_[c] = kNull;
  bump_at_ = 0;
  cur_used_ = 0;
  for (const auto& [h, cls] : dedicated_) {
    *data(h) = free_head_[cls];
    free_head_[cls] = h;
  }
}

// -------------------------------------------------------- RegistrationView

WalkEngine::RegistrationView::const_iterator
WalkEngine::RegistrationView::find(NodeId origin) const noexcept {
  const Registration* lo = data_;
  const Registration* hi = data_ + size_;
  const Registration* it = std::lower_bound(
      lo, hi, origin,
      [](const Registration& r, NodeId o) { return r.first < o; });
  return (it != hi && it->first == origin) ? it : hi;
}

std::uint64_t WalkEngine::RegistrationView::at(NodeId origin) const {
  const const_iterator it = find(origin);
  if (it == end())
    throw std::out_of_range("RegistrationView::at: origin not registered");
  return it->second;
}

WalkEngine::WalkEngine(const Graph& g, Network& net, Rng& rng,
                       WalkConfig config)
    : g_(&g), net_(&net), rng_(&rng), config_(config) {
  id_bits_ = id_bits(g.node_count());
  base_bits_ = id_bits_ + 2 * ceil_log2(g.node_count()) + 8;
  origin_index_.assign(g.node_count(), kNoOrigin);
  registrations_.resize(g.node_count());
}

std::uint32_t WalkEngine::token_bits(std::uint32_t /*remaining*/) const {
  return base_bits_;
}

std::uint32_t WalkEngine::payload_bits(std::size_t id_count) const {
  return base_bits_ + static_cast<std::uint32_t>(id_count) * id_bits_;
}

// ----------------------------------------------------------------- SlotMap

void WalkEngine::SlotMap::init(std::uint64_t n) {
  const std::uint64_t chunk = std::uint64_t{1} << kChunkBits;
  // wcle-lint: no-alloc-ok(pointer table only — n/65536 entries, no chunks)
  chunks_.resize(static_cast<std::size_t>((n + chunk - 1) >> kChunkBits));
}

void WalkEngine::SlotMap::set(NodeId node, std::int32_t v) {
  std::unique_ptr<std::int32_t[]>& chunk = chunks_[node >> kChunkBits];
  if (chunk == nullptr) {
    constexpr std::size_t kWords = std::size_t{1} << kChunkBits;
    // wcle-lint: no-alloc-ok(one 256 KiB chunk per 65536 touched nodes, warm)
    chunk = std::make_unique<std::int32_t[]>(kWords);
    std::memset(chunk.get(), 0xff, kWords * sizeof(std::int32_t));  // kNoSlot
  }
  chunk[node & ((1u << kChunkBits) - 1)] = v;
}

// --------------------------------------------------------------- LevelPool

std::uint32_t WalkEngine::LevelPool::acquire() {
  const std::uint32_t idx = static_cast<std::uint32_t>(used);
  if (used == stay_in.size()) {
    // Cold growth, capacity-guarded: every column gains its slot exactly
    // once; recycled slots take the else branch with warm storage.
    stay_in.push_back(0);
    origin_inject.push_back(0);
    stay_out.push_back(0);
    sent_total.push_back(0);
    proxy_units.push_back(0);
    in_head.push_back(kNil);
    out_head.push_back(kNil);
    cc_got.push_back(0);
    cc_distinct.push_back(0);
    cc_proxy_nodes.push_back(0);
    cc_ids.push_back(WordPool::kNull);
    cc_ids_len.push_back(0);
    cc_gen.push_back(0);
    flood_seen.push_back(0);
  } else {
    stay_in[idx] = 0;
    origin_inject[idx] = 0;
    stay_out[idx] = 0;
    sent_total[idx] = 0;
    proxy_units[idx] = 0;
    in_head[idx] = kNil;
    out_head[idx] = kNil;
    cc_got[idx] = 0;
    cc_distinct[idx] = 0;
    cc_proxy_nodes[idx] = 0;
    cc_ids[idx] = WordPool::kNull;  // stale handles died with their generation
    cc_ids_len[idx] = 0;
    cc_gen[idx] = 0;
    flood_seen[idx] = 0;
  }
  ++used;
  return idx;
}

// ------------------------------------------------------------ origin state

WalkEngine::OriginState& WalkEngine::intern(NodeId origin) {
  std::uint32_t idx = origin_index_[origin];
  if (idx == kNoOrigin) {
    idx = static_cast<std::uint32_t>(origins_.size());
    origin_index_[origin] = idx;
    // wcle-lint: no-alloc-ok(first-seen origin only; steady rounds reuse it)
    origins_.emplace_back();
    OriginState& os = origins_.back();
    os.node = origin;
    os.slot_of.init(g_->node_count());
  }
  return origins_[idx];
}

WalkEngine::OriginState* WalkEngine::find_origin(NodeId origin) noexcept {
  const std::uint32_t idx = origin_index_[origin];
  return idx == kNoOrigin ? nullptr : &origins_[idx];
}

const WalkEngine::OriginState* WalkEngine::find_origin(
    NodeId origin) const noexcept {
  const std::uint32_t idx = origin_index_[origin];
  return idx == kNoOrigin ? nullptr : &origins_[idx];
}

// The walk stage is the inner loop of every election phase: token disposal,
// slot-table lookups, and the per-round pending queues all recycle pooled
// storage — SoA level columns, chunked slot maps, port lists threaded
// through per-origin arenas — so the steady state allocates nothing. Every
// suppression inside this region is a warm-up-only growth point; slots,
// levels, and arena entries are recycled across phases with their
// capacities intact (see clear_origin and the recycled-slot branches).
// wcle-lint: begin-no-alloc
std::uint32_t WalkEngine::level_at(OriginState& os, NodeId node,
                                   std::uint32_t r) {
  std::int32_t s = os.slot_of.get(node);
  if (s == kNoSlot) {
    s = static_cast<std::int32_t>(os.slots_used);
    os.slot_of.set(node, s);
    // wcle-lint: no-alloc-ok(touched-list growth; survives clear_origin)
    os.touched.push_back(node);
    if (os.slots_used == os.slots.size())
      os.slots.emplace_back();
    else
      os.slots[os.slots_used].refs.clear();  // recycled slot, warm capacity
    ++os.slots_used;
  }
  NodeTrail& trail = os.slots[static_cast<std::size_t>(s)];
  const auto it = std::lower_bound(
      trail.refs.begin(), trail.refs.end(), r,
      [](const std::pair<std::uint32_t, std::uint32_t>& ref,
         std::uint32_t level) { return ref.first < level; });
  if (it != trail.refs.end() && it->first == r) return it->second;
  const std::uint32_t idx = os.pool.acquire();
  // wcle-lint: no-alloc-ok(refs capacity retained across phases)
  trail.refs.insert(it, {r, idx});
  return idx;
}

std::uint32_t WalkEngine::find_level(const OriginState& os, NodeId node,
                                     std::uint32_t r) const noexcept {
  const std::int32_t s = os.slot_of.get(node);
  if (s == kNoSlot) return kNil;
  const NodeTrail& trail = os.slots[static_cast<std::size_t>(s)];
  const auto it = std::lower_bound(
      trail.refs.begin(), trail.refs.end(), r,
      [](const std::pair<std::uint32_t, std::uint32_t>& ref,
         std::uint32_t level) { return ref.first < level; });
  if (it == trail.refs.end() || it->first != r) return kNil;
  return it->second;
}

void WalkEngine::clear_origin(NodeId origin) {
  OriginState* os = find_origin(origin);
  if (os == nullptr) return;
  for (const NodeId node : os->touched) os->slot_of.set(node, kNoSlot);
  os->touched.clear();
  os->slots_used = 0;   // trail slots recycle lazily (refs cleared on reuse)
  os->pool.used = 0;    // levels recycle lazily (reset on reuse in acquire)
  os->in_arena.clear();  // port-list entries die with their levels
  os->out_arena.clear();
  for (const NodeId node : os->proxies) {
    auto& regs = registrations_[node];
    const auto it = reg_position(regs, origin);
    if (it != regs.end() && it->first == origin) regs.erase(it);
  }
  os->proxies.clear();
  os->length = 0;
}

void WalkEngine::note_arrival(OriginState& os, std::uint32_t lv, Port port,
                              std::uint64_t count) {
  std::uint32_t tail = kNil;
  for (std::uint32_t e = os.pool.in_head[lv]; e != kNil;
       e = os.in_arena[e].next) {
    if (os.in_arena[e].port == port) {
      os.in_arena[e].count += count;
      return;
    }
    tail = e;
  }
  const std::uint32_t e = static_cast<std::uint32_t>(os.in_arena.size());
  // wcle-lint: no-alloc-ok(arena entry, bounded by degree; stays warm)
  os.in_arena.push_back({count, port, kNil});
  if (tail == kNil)
    os.pool.in_head[lv] = e;
  else
    os.in_arena[tail].next = e;
}

WalkEngine::RegistrationView WalkEngine::registrations(NodeId node) const {
  const std::vector<Registration>& regs = registrations_[node];
  return RegistrationView(regs.data(), regs.size());
}

const std::vector<NodeId>& WalkEngine::proxy_nodes(NodeId origin) const {
  const OriginState* os = find_origin(origin);
  return os == nullptr ? empty_nodes_ : os->proxies;
}

void WalkEngine::dispose_units(OriginState& os, NodeId node, std::uint32_t r,
                               std::uint64_t count,
                               std::vector<Pending>& next) {
  const std::uint32_t li = level_at(os, node, r);
  LevelPool& pool = os.pool;
  if (r == 0) {
    pool.proxy_units[li] += count;
    auto& regs = registrations_[node];
    const auto it = reg_position(regs, os.node);
    if (it == regs.end() || it->first != os.node) {
      // wcle-lint: no-alloc-ok(one entry per proxy-origin pair; stays warm)
      regs.insert(it, {os.node, count});
      // wcle-lint: no-alloc-ok(bounded by proxies per origin; stays warm)
      os.proxies.push_back(node);
    } else {
      it->second += count;
    }
    return;
  }

  const std::uint64_t stays =
      config_.lazy ? rng_->next_binomial(count, 0.5) : 0;
  const std::uint64_t movers = count - stays;
  if (stays > 0) {
    pool.stay_out[li] += stays;
    // level_at may grow the columns; li-indexed access stays valid.
    pool.stay_in[level_at(os, node, r - 1)] += stays;
    // wcle-lint: no-alloc-ok(phase-local queue; warm after round one)
    next.push_back({node, os.node, r - 1, stays});
  }
  if (movers == 0) return;

  const std::uint32_t deg = g_->degree(node);
  std::uint64_t left = movers;
  for (Port p = 0; p < deg && left > 0; ++p) {
    const std::uint64_t sent =
        (p + 1 == deg) ? left
                       : rng_->next_binomial(left, 1.0 / double(deg - p));
    if (sent == 0) continue;
    left -= sent;
    std::uint32_t tail = kNil;
    std::uint32_t e = pool.out_head[li];
    while (e != kNil && os.out_arena[e].port != p) {
      tail = e;
      e = os.out_arena[e].next;
    }
    if (e == kNil) {  // port not yet on the departure list: append at tail
      const std::uint32_t ne = static_cast<std::uint32_t>(os.out_arena.size());
      // wcle-lint: no-alloc-ok(arena entry, bounded by degree; stays warm)
      os.out_arena.push_back({p, kNil});
      if (tail == kNil)
        pool.out_head[li] = ne;
      else
        os.out_arena[tail].next = ne;
    }
    pool.sent_total[li] += sent;
    Message msg;
    msg.tag = kTagWalkToken;
    msg.a = os.node;
    msg.b = r - 1;
    msg.c = sent;
    // Without coalescing every walk unit pays for its own token (the naive
    // transport Lemma 12 improves on); with it the count rides along free.
    msg.bits = config_.coalesce
                   ? token_bits(r - 1)
                   : static_cast<std::uint32_t>(
                         std::min<std::uint64_t>(sent, 1u << 20) *
                         token_bits(r - 1));
    net_->send(node, p, msg);
  }
}

std::uint64_t WalkEngine::run_walk_stage(const std::vector<WalkOrder>& orders) {
  std::vector<Pending> cur, next;

  for (const WalkOrder& o : orders) {
    if (o.count == 0 || o.length == 0)
      throw std::invalid_argument("run_walk_stage: count/length must be >= 1");
    clear_origin(o.origin);
  }
  for (const WalkOrder& o : orders) {
    OriginState& os = intern(o.origin);
    os.length = std::max(os.length, o.length);
    os.pool.origin_inject[level_at(os, o.origin, o.length)] += o.count;
    // wcle-lint: no-alloc-ok(stage setup, once per phase)
    cur.push_back({o.origin, o.origin, o.length, o.count});
  }

  const std::uint32_t nshards = net_->shard_count();
  if (shard_pending_.size() < nshards) shard_pending_.resize(nshards);

  // Deterministic processing order: (node, origin) ascending, descending
  // remaining-length within — the order the hash-map engine produced by
  // sorting its keys. Equal (node, origin, level) buckets merge before
  // disposal so the coalesced RNG draws are identical too.
  const auto by_token = [](const Pending& x, const Pending& y) {
    if (x.node != y.node) return x.node < y.node;
    if (x.origin != y.origin) return x.origin < y.origin;
    return x.level > y.level;
  };
  const auto dispose_sorted = [&](const std::vector<Pending>& bucket) {
    std::size_t i = 0;
    while (i < bucket.size()) {
      std::uint64_t total = bucket[i].count;
      std::size_t j = i + 1;
      while (j < bucket.size() && bucket[j].node == bucket[i].node &&
             bucket[j].origin == bucket[i].origin &&
             bucket[j].level == bucket[i].level) {
        total += bucket[j].count;
        ++j;
      }
      OriginState* os = find_origin(bucket[i].origin);
      assert(os != nullptr);
      dispose_units(*os, bucket[i].node, bucket[i].level, total, next);
      i = j;
    }
  };

  const std::uint64_t round0 = net_->round();
  // Per-walk token tracing (--trace-walks): one hop record per delivered
  // token message, emitted into the recorder's pre-sized buffer. Purely
  // observational — the check is hoisted so the walks-off path pays one
  // branch per delivery and the recorder is never consulted.
  TraceRecorder* const rec = net_->config().trace;
  const bool trace_walks = rec != nullptr && rec->trace_walks() != 0;
  while (!cur.empty() || !net_->idle()) {
    if (nshards == 1) {
      std::sort(cur.begin(), cur.end(), by_token);
      dispose_sorted(cur);
    } else {
      // Sharded sort: buckets partition by the transport's contiguous node
      // ranges and the comparator leads with the node, so walking the sorted
      // buckets in shard order IS the global sorted order — the per-shard
      // sorts run concurrently, the RNG-consuming disposal stays sequential.
      for (const Pending& p : cur)
        // wcle-lint: no-alloc-ok(per-shard buckets stay warm across rounds)
        shard_pending_[net_->shard_of(p.node)].push_back(p);
      // wcle-lint: no-alloc-transitive-ok(fork/join handoff, not per-message)
      net_->run_on_shards([this, &by_token](std::uint32_t s) {
        std::sort(shard_pending_[s].begin(), shard_pending_[s].end(),
                  by_token);
      });
      for (std::uint32_t s = 0; s < nshards; ++s) {
        dispose_sorted(shard_pending_[s]);
        shard_pending_[s].clear();
      }
    }
    cur.clear();

    // wcle-lint: no-alloc-transitive-ok(reaches only fault-event scratch)
    const std::vector<Delivery>& delivered = net_->step();
    for (const Delivery& d : delivered) {
      assert(d.msg.tag == kTagWalkToken);
      const NodeId origin = static_cast<NodeId>(d.msg.a);
      const std::uint32_t r = static_cast<std::uint32_t>(d.msg.b);
      const std::uint64_t count = d.msg.c;
      if (trace_walks)
        // d.port is the receiver's mirror port, so its neighbor view names
        // the sender: the hop's directed edge is src -> dst.
        rec->on_walk_hop(
            net_->round(), static_cast<std::uint32_t>(origin),
            static_cast<std::uint32_t>(g_->neighbor(d.dst, d.port)),
            static_cast<std::uint32_t>(d.dst),
            static_cast<std::uint32_t>(
                std::min<std::uint64_t>(count, 0xffffffffull)),
            d.msg.tag);
      OriginState* os = find_origin(origin);
      assert(os != nullptr);
      note_arrival(*os, level_at(*os, d.dst, r), d.port, count);
      // wcle-lint: no-alloc-ok(phase-local queue; warm after round one)
      next.push_back({d.dst, origin, r, count});
    }
    cur.swap(next);
  }
  return net_->round() - round0;
}
// wcle-lint: end-no-alloc

// ------------------------------------------------------------ convergecast

WalkEngine::PooledReply WalkEngine::intern_reply(const std::uint64_t* ids,
                                                 std::uint32_t len,
                                                 std::uint64_t distinct,
                                                 std::uint64_t proxies) {
  PooledReply r;
  r.distinct_proxies = distinct;
  r.proxy_nodes = proxies;
  if (len > 0) {
    r.ids = cc_pool_.alloc(len);
    r.len = len;
    std::memcpy(cc_pool_.data(r.ids), ids,
                std::size_t{len} * sizeof(std::uint64_t));
  }
  return r;
}

ReplyPayload WalkEngine::materialize(PooledReply& r) {
  ReplyPayload out;
  out.distinct_proxies = r.distinct_proxies;
  out.proxy_nodes = r.proxy_nodes;
  if (r.len > 0) {
    const std::uint64_t* d = cc_pool_.data(r.ids);
    out.ids.assign(d, d + r.len);
  }
  free_reply(r);
  return out;
}

void WalkEngine::free_reply(PooledReply& r) {
  if (r.ids != WordPool::kNull) cc_pool_.free(r.ids, r.len);
  r.ids = WordPool::kNull;
  r.len = 0;
}

void WalkEngine::merge_reply(PooledReply& into, PooledReply& from) {
  into.distinct_proxies += from.distinct_proxies;
  into.proxy_nodes += from.proxy_nodes;
  if (from.len == 0) return;  // nothing pooled to fold in
  if (into.len == 0) {        // adopt from's buffer wholesale
    into.ids = from.ids;
    into.len = from.len;
    from.ids = WordPool::kNull;
    from.len = 0;
    return;
  }
  const std::uint32_t dst = cc_pool_.alloc(into.len + from.len);
  const std::uint64_t* a = cc_pool_.data(into.ids);
  const std::uint64_t* b = cc_pool_.data(from.ids);
  std::uint64_t* out = cc_pool_.data(dst);
  std::uint64_t* end =
      std::set_union(a, a + into.len, b, b + from.len, out);
  cc_pool_.free(into.ids, into.len);
  cc_pool_.free(from.ids, from.len);
  into.ids = dst;
  into.len = static_cast<std::uint32_t>(end - out);
  from.ids = WordPool::kNull;
  from.len = 0;
}

std::vector<WalkEvent> WalkEngine::begin_convergecast(
    const std::vector<NodeId>& origins, const ProxyPayloadFn& at_proxy) {
  cc_gen_ += 1;        // invalidates every level's embedded convergecast state
  cc_pool_.rewind();   // every outstanding id-set handle died with it
  std::vector<WalkEvent> events;
  for (const NodeId origin : origins) {
    for (const NodeId proxy : proxy_nodes(origin)) {
      const RegistrationView regs = registrations(proxy);
      const auto it = regs.find(origin);
      assert(it != regs.end());
      ReplyPayload payload = at_proxy(proxy, origin, it->second);
      const PooledReply pooled = intern_reply(
          payload.ids.data(), static_cast<std::uint32_t>(payload.ids.size()),
          payload.distinct_proxies, payload.proxy_nodes);
      // Seed distribution from the trail's terminal level.
      credit(proxy, origin, 0, it->second, pooled, events);
    }
  }
  return events;
}

void WalkEngine::credit(NodeId node, NodeId origin, std::uint32_t r,
                        std::uint64_t units, PooledReply payload,
                        std::vector<WalkEvent>& events) {
  OriginState* osp = find_origin(origin);
  assert(osp != nullptr);
  OriginState& os = *osp;
  LevelPool& pool = os.pool;
  struct Work {
    NodeId node;
    std::uint32_t r;
    std::uint64_t units;
    PooledReply payload;
  };
  std::vector<Work> stack;
  stack.push_back({node, r, units, payload});

  while (!stack.empty()) {
    Work w = stack.back();
    stack.pop_back();
    const std::uint32_t li = find_level(os, w.node, w.r);
    assert(li != kNil);

    PooledReply agg;
    if (w.r == 0) {
      // Terminal level: all proxy units report at once; no counting needed.
      agg = w.payload;
    } else {
      if (pool.cc_gen[li] != cc_gen_) {
        // First credit of this convergecast generation: reset in place. The
        // previous generation's handle is NOT freed — its storage died in
        // the rewind, so freeing it would corrupt the fresh pool.
        pool.cc_gen[li] = cc_gen_;
        pool.cc_got[li] = 0;
        pool.cc_distinct[li] = 0;
        pool.cc_proxy_nodes[li] = 0;
        pool.cc_ids[li] = WordPool::kNull;
        pool.cc_ids_len[li] = 0;
      }
      pool.cc_got[li] += w.units;
      PooledReply cur{pool.cc_distinct[li], pool.cc_proxy_nodes[li],
                      pool.cc_ids[li], pool.cc_ids_len[li]};
      merge_reply(cur, w.payload);
      pool.cc_distinct[li] = cur.distinct_proxies;
      pool.cc_proxy_nodes[li] = cur.proxy_nodes;
      pool.cc_ids[li] = cur.ids;
      pool.cc_ids_len[li] = cur.len;
      const std::uint64_t need = pool.stay_out[li] + pool.sent_total[li];
      assert(pool.cc_got[li] <= need);
      if (pool.cc_got[li] < need) continue;
      agg = cur;  // completed: take the aggregate out of the level
      pool.cc_distinct[li] = 0;
      pool.cc_proxy_nodes[li] = 0;
      pool.cc_ids[li] = WordPool::kNull;
      pool.cc_ids_len[li] = 0;
    }

    // Completed: partition units over the parents; the full aggregate
    // travels with the first parent, the rest carry unit counts only.
    bool first = true;
    if (pool.stay_in[li] > 0) {
      stack.push_back({w.node, w.r + 1, pool.stay_in[li],
                       first ? agg : PooledReply{}});
      if (first) agg = PooledReply{};  // ownership moved to the stack entry
      first = false;
    }
    for (std::uint32_t e = pool.in_head[li]; e != kNil;
         e = os.in_arena[e].next) {
      Message msg;
      msg.tag = kTagReplyUp;
      msg.a = origin;
      msg.b = w.r + 1;
      msg.c = os.in_arena[e].count;
      const bool carried = first;
      if (carried) {
        msg.d = (agg.distinct_proxies << 32) | agg.proxy_nodes;
        if (agg.len > 0) msg.ids = IdSpan(cc_pool_.data(agg.ids), agg.len);
        first = false;
      }
      msg.bits = payload_bits(msg.ids.size());
      net_->send(w.node, os.in_arena[e].port, msg);
      if (carried) free_reply(agg);  // send() copied the ids into its arena
    }
    if (pool.origin_inject[li] > 0) {
      WalkEvent ev;
      ev.kind = WalkEvent::Kind::kConvergecastDone;
      ev.node = w.node;
      ev.origin = origin;
      if (first) {
        ev.reply = materialize(agg);
        first = false;
      }
      events.push_back(std::move(ev));
    }
    free_reply(agg);  // no-op unless no parent consumed the aggregate
  }
}

// ------------------------------------------------------- flood and unicast

std::vector<WalkEvent> WalkEngine::begin_flood_down(
    NodeId origin, std::vector<std::uint64_t> ids) {
  std::vector<WalkEvent> events;
  OriginState* os = find_origin(origin);
  if (os == nullptr || os->length == 0) return events;
  const std::uint32_t gen = ++os->flood_gen;
  flood_at(origin, origin, os->length, gen, IdSpan(ids), events);
  return events;
}

void WalkEngine::flood_at(NodeId node, NodeId origin, std::uint32_t r,
                          std::uint32_t gen, IdSpan ids,
                          std::vector<WalkEvent>& events) {
  OriginState* osp = find_origin(origin);
  if (osp == nullptr) return;  // stale message for a never-walked origin
  OriginState& os = *osp;
  LevelPool& pool = os.pool;
  NodeId cur = node;
  std::uint32_t level = r;
  for (;;) {
    const std::uint32_t li = find_level(os, cur, level);
    if (li == kNil) return;
    if (pool.flood_seen[li] == gen) return;
    pool.flood_seen[li] = gen;
    if (level == 0) {
      if (pool.proxy_units[li] > 0) {
        WalkEvent ev;
        ev.kind = WalkEvent::Kind::kFloodAtProxy;
        ev.node = cur;
        ev.origin = origin;
        ev.ids = ids.to_vector();
        events.push_back(std::move(ev));
      }
      return;
    }
    for (std::uint32_t e = pool.out_head[li]; e != kNil;
         e = os.out_arena[e].next) {
      Message msg;
      msg.tag = kTagFloodDown;
      msg.a = origin;
      msg.b = level - 1;
      msg.c = gen;
      msg.ids = ids;  // forwarded as a view; send() copies into the arena
      msg.bits = payload_bits(ids.size());
      net_->send(cur, os.out_arena[e].port, msg);
    }
    if (pool.stay_out[li] == 0) return;
    --level;  // continue locally through the lazy self-step link
  }
}

std::vector<WalkEvent> WalkEngine::begin_unicast_up(
    NodeId node, NodeId origin, std::vector<std::uint64_t> ids) {
  std::vector<WalkEvent> events;
  unicast_at(node, origin, 0, std::move(ids), events);
  return events;
}

void WalkEngine::unicast_at(NodeId node, NodeId origin, std::uint32_t r,
                            std::vector<std::uint64_t> ids,
                            std::vector<WalkEvent>& events) {
  OriginState* osp = find_origin(origin);
  if (osp == nullptr) return;  // stale trail; drop
  OriginState& os = *osp;
  LevelPool& pool = os.pool;
  NodeId cur = node;
  std::uint32_t level = r;
  for (;;) {
    const std::uint32_t li = find_level(os, cur, level);
    if (li == kNil) return;  // stale trail; drop
    if (pool.origin_inject[li] > 0) {
      WalkEvent ev;
      ev.kind = WalkEvent::Kind::kUnicastAtOrigin;
      ev.node = cur;
      ev.origin = origin;
      ev.ids = std::move(ids);
      events.push_back(std::move(ev));
      return;
    }
    if (pool.stay_in[li] > 0) {
      ++level;  // lazy self-step: ascend locally
      continue;
    }
    if (pool.in_head[li] != kNil) {
      Message msg;
      msg.tag = kTagUnicastUp;
      msg.a = origin;
      msg.b = level + 1;
      msg.ids = IdSpan(ids);
      msg.bits = payload_bits(ids.size());
      net_->send(cur, os.in_arena[pool.in_head[li]].port, msg);
      return;
    }
    return;  // orphan level (should not happen on complete trails)
  }
}

std::vector<WalkEvent> WalkEngine::handle(const Delivery& d) {
  std::vector<WalkEvent> events;
  switch (d.msg.tag) {
    case kTagReplyUp: {
      const PooledReply payload =
          intern_reply(d.msg.ids.data(), d.msg.ids.size(), d.msg.d >> 32,
                       d.msg.d & 0xffffffffu);
      credit(d.dst, static_cast<NodeId>(d.msg.a),
             static_cast<std::uint32_t>(d.msg.b), d.msg.c, payload, events);
      break;
    }
    case kTagFloodDown:
      flood_at(d.dst, static_cast<NodeId>(d.msg.a),
               static_cast<std::uint32_t>(d.msg.b),
               static_cast<std::uint32_t>(d.msg.c), d.msg.ids, events);
      break;
    case kTagUnicastUp:
      unicast_at(d.dst, static_cast<NodeId>(d.msg.a),
                 static_cast<std::uint32_t>(d.msg.b), d.msg.ids.to_vector(),
                 events);
      break;
    default:
      assert(false && "WalkEngine::handle: unexpected tag");
  }
  return events;
}

}  // namespace wcle
