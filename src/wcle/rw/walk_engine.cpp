#include "wcle/rw/walk_engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "wcle/support/bits.hpp"

namespace wcle {

void ReplyPayload::merge(const ReplyPayload& other) {
  distinct_proxies += other.distinct_proxies;
  proxy_nodes += other.proxy_nodes;
  if (other.ids.empty()) return;
  std::vector<std::uint64_t> merged;
  merged.reserve(ids.size() + other.ids.size());
  std::set_union(ids.begin(), ids.end(), other.ids.begin(), other.ids.end(),
                 std::back_inserter(merged));
  ids = std::move(merged);
}

void ReplyPayload::add_id(std::uint64_t id) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) ids.insert(it, id);
}

WalkEngine::WalkEngine(const Graph& g, Network& net, Rng& rng,
                       WalkConfig config)
    : g_(&g), net_(&net), rng_(&rng), config_(config) {
  id_bits_ = id_bits(g.node_count());
  base_bits_ = id_bits_ + 2 * ceil_log2(g.node_count()) + 8;
}

std::uint32_t WalkEngine::token_bits(std::uint32_t /*remaining*/) const {
  return base_bits_;
}

std::uint32_t WalkEngine::payload_bits(std::size_t id_count) const {
  return base_bits_ + static_cast<std::uint32_t>(id_count) * id_bits_;
}

WalkEngine::Level& WalkEngine::level_at(NodeId node, NodeId origin,
                                        std::uint32_t r) {
  const std::uint64_t k = key(node, origin);
  auto [it, inserted] = trails_.try_emplace(k);
  if (inserted) touched_[origin].push_back(node);
  return it->second[r];
}

const WalkEngine::Level* WalkEngine::find_level(NodeId node, NodeId origin,
                                                std::uint32_t r) const {
  const auto t = trails_.find(key(node, origin));
  if (t == trails_.end()) return nullptr;
  const auto l = t->second.find(r);
  return l == t->second.end() ? nullptr : &l->second;
}

void WalkEngine::clear_origin(NodeId origin) {
  if (const auto t = touched_.find(origin); t != touched_.end()) {
    for (NodeId node : t->second) trails_.erase(key(node, origin));
    touched_.erase(t);
  }
  if (const auto p = proxy_nodes_.find(origin); p != proxy_nodes_.end()) {
    for (NodeId node : p->second) {
      const auto r = registrations_.find(node);
      if (r != registrations_.end()) {
        r->second.erase(origin);
        if (r->second.empty()) registrations_.erase(r);
      }
    }
    proxy_nodes_.erase(p);
  }
  walk_length_.erase(origin);
}

const std::unordered_map<NodeId, std::uint64_t>& WalkEngine::registrations(
    NodeId node) const {
  const auto it = registrations_.find(node);
  return it == registrations_.end() ? empty_regs_ : it->second;
}

const std::vector<NodeId>& WalkEngine::proxy_nodes(NodeId origin) const {
  const auto it = proxy_nodes_.find(origin);
  return it == proxy_nodes_.end() ? empty_nodes_ : it->second;
}

void WalkEngine::dispose_units(
    NodeId node, NodeId origin, std::uint32_t r, std::uint64_t count,
    std::unordered_map<std::uint64_t,
                       std::unordered_map<std::uint32_t, std::uint64_t>>&
        next_buckets,
    std::vector<std::uint64_t>& next_hot) {
  Level& lv = level_at(node, origin, r);
  if (r == 0) {
    lv.proxy_units += count;
    auto& regs = registrations_[node];
    auto [it, inserted] = regs.try_emplace(origin, 0);
    if (inserted) proxy_nodes_[origin].push_back(node);
    it->second += count;
    return;
  }

  const std::uint64_t stays =
      config_.lazy ? rng_->next_binomial(count, 0.5) : 0;
  const std::uint64_t movers = count - stays;
  if (stays > 0) {
    lv.stay_out += stays;
    level_at(node, origin, r - 1).stay_in += stays;
    const std::uint64_t k = key(node, origin);
    auto [bucket, fresh] = next_buckets.try_emplace(k);
    if (fresh) next_hot.push_back(k);
    (*bucket).second[r - 1] += stays;
  }
  if (movers == 0) return;

  const std::uint32_t deg = g_->degree(node);
  std::uint64_t left = movers;
  for (Port p = 0; p < deg && left > 0; ++p) {
    const std::uint64_t sent =
        (p + 1 == deg) ? left
                       : rng_->next_binomial(left, 1.0 / double(deg - p));
    if (sent == 0) continue;
    left -= sent;
    if (std::find(lv.out_ports.begin(), lv.out_ports.end(), p) ==
        lv.out_ports.end())
      lv.out_ports.push_back(p);
    lv.sent_total += sent;
    Message msg;
    msg.tag = kTagWalkToken;
    msg.a = origin;
    msg.b = r - 1;
    msg.c = sent;
    // Without coalescing every walk unit pays for its own token (the naive
    // transport Lemma 12 improves on); with it the count rides along free.
    msg.bits = config_.coalesce
                   ? token_bits(r - 1)
                   : static_cast<std::uint32_t>(
                         std::min<std::uint64_t>(sent, 1u << 20) *
                         token_bits(r - 1));
    net_->send(node, p, std::move(msg));
  }
}

std::uint64_t WalkEngine::run_walk_stage(const std::vector<WalkOrder>& orders) {
  using Buckets =
      std::unordered_map<std::uint64_t,
                         std::unordered_map<std::uint32_t, std::uint64_t>>;
  Buckets buckets, next_buckets;
  std::vector<std::uint64_t> hot, next_hot;

  for (const WalkOrder& o : orders) {
    if (o.count == 0 || o.length == 0)
      throw std::invalid_argument("run_walk_stage: count/length must be >= 1");
    clear_origin(o.origin);
  }
  for (const WalkOrder& o : orders) {
    level_at(o.origin, o.origin, o.length).origin_inject += o.count;
    const std::uint64_t k = key(o.origin, o.origin);
    auto [bucket, fresh] = buckets.try_emplace(k);
    if (fresh) hot.push_back(k);
    (*bucket).second[o.length] += o.count;
    walk_length_[o.origin] =
        std::max(walk_length_[o.origin], o.length);
  }

  const std::uint64_t round0 = net_->round();
  while (!buckets.empty() || !net_->idle()) {
    // Deterministic processing order: sorted (node, origin) keys, then
    // descending remaining-length within a bucket.
    std::sort(hot.begin(), hot.end());
    for (const std::uint64_t k : hot) {
      const NodeId node = static_cast<NodeId>(k >> 32);
      const NodeId origin = static_cast<NodeId>(k & 0xffffffffu);
      auto& levels = buckets[k];
      std::vector<std::pair<std::uint32_t, std::uint64_t>> items(
          levels.begin(), levels.end());
      std::sort(items.begin(), items.end(),
                [](const auto& x, const auto& y) { return x.first > y.first; });
      for (const auto& [r, count] : items)
        dispose_units(node, origin, r, count, next_buckets, next_hot);
    }
    buckets.clear();
    hot.clear();

    const std::vector<Delivery>& delivered = net_->step();
    for (const Delivery& d : delivered) {
      assert(d.msg.tag == kTagWalkToken);
      const NodeId origin = static_cast<NodeId>(d.msg.a);
      const std::uint32_t r = static_cast<std::uint32_t>(d.msg.b);
      const std::uint64_t count = d.msg.c;
      Level& lv = level_at(d.dst, origin, r);
      const auto in = std::find_if(
          lv.in_ports.begin(), lv.in_ports.end(),
          [&](const auto& e) { return e.first == d.port; });
      if (in == lv.in_ports.end())
        lv.in_ports.emplace_back(d.port, count);
      else
        in->second += count;
      const std::uint64_t k = key(d.dst, origin);
      auto [bucket, fresh] = next_buckets.try_emplace(k);
      if (fresh) next_hot.push_back(k);
      (*bucket).second[r] += count;
    }
    buckets.swap(next_buckets);
    hot.swap(next_hot);
  }
  return net_->round() - round0;
}

std::vector<WalkEvent> WalkEngine::begin_convergecast(
    const std::vector<NodeId>& origins, const ProxyPayloadFn& at_proxy) {
  cc_.clear();
  std::vector<WalkEvent> events;
  for (const NodeId origin : origins) {
    for (const NodeId proxy : proxy_nodes(origin)) {
      const auto& regs = registrations(proxy);
      const auto it = regs.find(origin);
      assert(it != regs.end());
      ReplyPayload payload = at_proxy(proxy, origin, it->second);
      // Seed distribution from the trail's terminal level.
      credit(proxy, origin, 0, it->second, std::move(payload), events);
    }
  }
  return events;
}

void WalkEngine::credit(NodeId node, NodeId origin, std::uint32_t r,
                        std::uint64_t units, ReplyPayload payload,
                        std::vector<WalkEvent>& events) {
  struct Work {
    NodeId node;
    std::uint32_t r;
    std::uint64_t units;
    ReplyPayload payload;
  };
  std::vector<Work> stack;
  stack.push_back({node, r, units, std::move(payload)});

  while (!stack.empty()) {
    Work w = std::move(stack.back());
    stack.pop_back();
    const Level* lv = find_level(w.node, origin, w.r);
    assert(lv != nullptr);

    ReplyPayload agg;
    if (w.r == 0) {
      // Terminal level: all proxy units report at once; no counting needed.
      agg = std::move(w.payload);
    } else {
      CcState& st = cc_[key(w.node, origin)][w.r];
      st.got += w.units;
      st.agg.merge(w.payload);
      const std::uint64_t need = lv->stay_out + lv->sent_total;
      assert(st.got <= need);
      if (st.got < need) continue;
      agg = std::move(st.agg);
    }

    // Completed: partition units over the parents; the full aggregate
    // travels with the first parent, the rest carry unit counts only.
    bool first = true;
    if (lv->stay_in > 0) {
      stack.push_back({w.node, w.r + 1, lv->stay_in,
                       first ? std::move(agg) : ReplyPayload{}});
      first = false;
    }
    for (const auto& [port, cnt] : lv->in_ports) {
      Message msg;
      msg.tag = kTagReplyUp;
      msg.a = origin;
      msg.b = w.r + 1;
      msg.c = cnt;
      if (first) {
        msg.d = (agg.distinct_proxies << 32) | agg.proxy_nodes;
        msg.ids = std::move(agg.ids);
        first = false;
      }
      msg.bits = payload_bits(msg.ids.size());
      net_->send(w.node, port, std::move(msg));
    }
    if (lv->origin_inject > 0) {
      WalkEvent ev;
      ev.kind = WalkEvent::Kind::kConvergecastDone;
      ev.node = w.node;
      ev.origin = origin;
      if (first) ev.reply = std::move(agg);
      events.push_back(std::move(ev));
    }
  }
}

std::vector<WalkEvent> WalkEngine::begin_flood_down(
    NodeId origin, std::vector<std::uint64_t> ids) {
  std::vector<WalkEvent> events;
  const auto len = walk_length_.find(origin);
  if (len == walk_length_.end()) return events;
  const std::uint32_t gen = ++flood_gen_[origin];
  flood_at(origin, origin, len->second, gen, ids, events);
  return events;
}

void WalkEngine::flood_at(NodeId node, NodeId origin, std::uint32_t r,
                          std::uint32_t gen,
                          const std::vector<std::uint64_t>& ids,
                          std::vector<WalkEvent>& events) {
  NodeId cur = node;
  std::uint32_t level = r;
  for (;;) {
    std::uint32_t& seen = flood_seen_[key(cur, origin)][level];
    if (seen == gen) return;
    seen = gen;
    const Level* lv = find_level(cur, origin, level);
    if (lv == nullptr) return;
    if (level == 0) {
      if (lv->proxy_units > 0) {
        WalkEvent ev;
        ev.kind = WalkEvent::Kind::kFloodAtProxy;
        ev.node = cur;
        ev.origin = origin;
        ev.ids = ids;
        events.push_back(std::move(ev));
      }
      return;
    }
    for (const Port p : lv->out_ports) {
      Message msg;
      msg.tag = kTagFloodDown;
      msg.a = origin;
      msg.b = level - 1;
      msg.c = gen;
      msg.ids = ids;
      msg.bits = payload_bits(ids.size());
      net_->send(cur, p, std::move(msg));
    }
    if (lv->stay_out == 0) return;
    --level;  // continue locally through the lazy self-step link
  }
}

std::vector<WalkEvent> WalkEngine::begin_unicast_up(
    NodeId node, NodeId origin, std::vector<std::uint64_t> ids) {
  std::vector<WalkEvent> events;
  unicast_at(node, origin, 0, std::move(ids), events);
  return events;
}

void WalkEngine::unicast_at(NodeId node, NodeId origin, std::uint32_t r,
                            std::vector<std::uint64_t> ids,
                            std::vector<WalkEvent>& events) {
  NodeId cur = node;
  std::uint32_t level = r;
  for (;;) {
    const Level* lv = find_level(cur, origin, level);
    if (lv == nullptr) return;  // stale trail; drop
    if (lv->origin_inject > 0) {
      WalkEvent ev;
      ev.kind = WalkEvent::Kind::kUnicastAtOrigin;
      ev.node = cur;
      ev.origin = origin;
      ev.ids = std::move(ids);
      events.push_back(std::move(ev));
      return;
    }
    if (lv->stay_in > 0) {
      ++level;  // lazy self-step: ascend locally
      continue;
    }
    if (!lv->in_ports.empty()) {
      Message msg;
      msg.tag = kTagUnicastUp;
      msg.a = origin;
      msg.b = level + 1;
      msg.ids = std::move(ids);
      msg.bits = payload_bits(msg.ids.size());
      net_->send(cur, lv->in_ports.front().first, std::move(msg));
      return;
    }
    return;  // orphan level (should not happen on complete trails)
  }
}

std::vector<WalkEvent> WalkEngine::handle(const Delivery& d) {
  std::vector<WalkEvent> events;
  switch (d.msg.tag) {
    case kTagReplyUp: {
      ReplyPayload payload;
      payload.distinct_proxies = d.msg.d >> 32;
      payload.proxy_nodes = d.msg.d & 0xffffffffu;
      payload.ids = d.msg.ids;
      credit(d.dst, static_cast<NodeId>(d.msg.a),
             static_cast<std::uint32_t>(d.msg.b), d.msg.c, std::move(payload),
             events);
      break;
    }
    case kTagFloodDown:
      flood_at(d.dst, static_cast<NodeId>(d.msg.a),
               static_cast<std::uint32_t>(d.msg.b),
               static_cast<std::uint32_t>(d.msg.c), d.msg.ids, events);
      break;
    case kTagUnicastUp:
      unicast_at(d.dst, static_cast<NodeId>(d.msg.a),
                 static_cast<std::uint32_t>(d.msg.b), d.msg.ids, events);
      break;
    default:
      assert(false && "WalkEngine::handle: unexpected tag");
  }
  return events;
}

}  // namespace wcle
