#include "wcle/rw/walk_engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "wcle/support/bits.hpp"
#include "wcle/trace/recorder.hpp"

namespace wcle {

namespace {

/// lower_bound position of `origin` in a sorted registration list.
std::vector<WalkEngine::Registration>::iterator reg_position(
    std::vector<WalkEngine::Registration>& regs, NodeId origin) {
  return std::lower_bound(
      regs.begin(), regs.end(), origin,
      [](const WalkEngine::Registration& r, NodeId o) { return r.first < o; });
}

}  // namespace

void ReplyPayload::merge(const ReplyPayload& other) {
  distinct_proxies += other.distinct_proxies;
  proxy_nodes += other.proxy_nodes;
  if (other.ids.empty()) return;
  std::vector<std::uint64_t> merged;
  merged.reserve(ids.size() + other.ids.size());
  std::set_union(ids.begin(), ids.end(), other.ids.begin(), other.ids.end(),
                 std::back_inserter(merged));
  ids = std::move(merged);
}

void ReplyPayload::add_id(std::uint64_t id) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) ids.insert(it, id);
}

WalkEngine::RegistrationView::const_iterator
WalkEngine::RegistrationView::find(NodeId origin) const noexcept {
  const Registration* lo = data_;
  const Registration* hi = data_ + size_;
  const Registration* it = std::lower_bound(
      lo, hi, origin,
      [](const Registration& r, NodeId o) { return r.first < o; });
  return (it != hi && it->first == origin) ? it : hi;
}

std::uint64_t WalkEngine::RegistrationView::at(NodeId origin) const {
  const const_iterator it = find(origin);
  if (it == end())
    throw std::out_of_range("RegistrationView::at: origin not registered");
  return it->second;
}

WalkEngine::WalkEngine(const Graph& g, Network& net, Rng& rng,
                       WalkConfig config)
    : g_(&g), net_(&net), rng_(&rng), config_(config) {
  id_bits_ = id_bits(g.node_count());
  base_bits_ = id_bits_ + 2 * ceil_log2(g.node_count()) + 8;
  origin_index_.assign(g.node_count(), kNoOrigin);
  registrations_.resize(g.node_count());
}

std::uint32_t WalkEngine::token_bits(std::uint32_t /*remaining*/) const {
  return base_bits_;
}

std::uint32_t WalkEngine::payload_bits(std::size_t id_count) const {
  return base_bits_ + static_cast<std::uint32_t>(id_count) * id_bits_;
}

WalkEngine::OriginState& WalkEngine::intern(NodeId origin) {
  std::uint32_t idx = origin_index_[origin];
  if (idx == kNoOrigin) {
    idx = static_cast<std::uint32_t>(origins_.size());
    origin_index_[origin] = idx;
    // wcle-lint: no-alloc-ok(first-seen origin only; steady rounds reuse it)
    origins_.emplace_back();
    OriginState& os = origins_.back();
    os.node = origin;
    // wcle-lint: no-alloc-ok(sized once when its origin is interned)
    os.slot_of.assign(g_->node_count(), kNoSlot);
  }
  return origins_[idx];
}

WalkEngine::OriginState* WalkEngine::find_origin(NodeId origin) noexcept {
  const std::uint32_t idx = origin_index_[origin];
  return idx == kNoOrigin ? nullptr : &origins_[idx];
}

const WalkEngine::OriginState* WalkEngine::find_origin(
    NodeId origin) const noexcept {
  const std::uint32_t idx = origin_index_[origin];
  return idx == kNoOrigin ? nullptr : &origins_[idx];
}

// The walk stage is the inner loop of every election phase: token disposal,
// slot-table lookups, and the per-round pending queues all recycle pooled
// storage (PR 5's flattened state), so the steady state allocates nothing.
// Every suppression inside this region is a warm-up-only growth point —
// slots, levels, and port lists are recycled across phases with their
// capacities intact (see clear_origin and the recycled-slot branches).
// wcle-lint: begin-no-alloc
WalkEngine::Level& WalkEngine::level_at(OriginState& os, NodeId node,
                                        std::uint32_t r) {
  std::int32_t s = os.slot_of[node];
  if (s == kNoSlot) {
    s = static_cast<std::int32_t>(os.slots_used);
    os.slot_of[node] = s;
    // wcle-lint: no-alloc-ok(touched-list growth; survives clear_origin)
    os.touched.push_back(node);
    if (os.slots_used == os.slots.size())
      os.slots.emplace_back();
    else
      os.slots[os.slots_used].refs.clear();  // recycled slot, warm capacity
    ++os.slots_used;
  }
  NodeTrail& trail = os.slots[static_cast<std::size_t>(s)];
  const auto it = std::lower_bound(
      trail.refs.begin(), trail.refs.end(), r,
      [](const std::pair<std::uint32_t, std::uint32_t>& ref,
         std::uint32_t level) { return ref.first < level; });
  if (it != trail.refs.end() && it->first == r) return os.pool[it->second];
  const std::uint32_t idx = static_cast<std::uint32_t>(os.pool_used);
  if (os.pool_used == os.pool.size()) {
    os.pool.emplace_back();
  } else {
    // Recycled level: zero the bookkeeping, keep the vector capacities.
    Level& lv = os.pool[idx];
    lv.stay_in = lv.origin_inject = lv.stay_out = lv.sent_total = 0;
    lv.proxy_units = 0;
    lv.in_ports.clear();
    lv.out_ports.clear();
    lv.cc_got = 0;
    lv.cc_agg.distinct_proxies = 0;
    lv.cc_agg.proxy_nodes = 0;
    lv.cc_agg.ids.clear();
    lv.cc_gen = 0;
    lv.flood_seen = 0;
  }
  ++os.pool_used;
  // wcle-lint: no-alloc-ok(refs capacity retained across phases)
  trail.refs.insert(it, {r, idx});
  return os.pool[idx];
}

WalkEngine::Level* WalkEngine::find_level(OriginState& os, NodeId node,
                                          std::uint32_t r) noexcept {
  const std::int32_t s = os.slot_of[node];
  if (s == kNoSlot) return nullptr;
  const NodeTrail& trail = os.slots[static_cast<std::size_t>(s)];
  const auto it = std::lower_bound(
      trail.refs.begin(), trail.refs.end(), r,
      [](const std::pair<std::uint32_t, std::uint32_t>& ref,
         std::uint32_t level) { return ref.first < level; });
  if (it == trail.refs.end() || it->first != r) return nullptr;
  return &os.pool[it->second];
}

void WalkEngine::clear_origin(NodeId origin) {
  OriginState* os = find_origin(origin);
  if (os == nullptr) return;
  for (const NodeId node : os->touched) os->slot_of[node] = kNoSlot;
  os->touched.clear();
  os->slots_used = 0;  // trail slots recycle lazily (refs cleared on reuse)
  os->pool_used = 0;   // levels recycle lazily (reset on reuse)
  for (const NodeId node : os->proxies) {
    auto& regs = registrations_[node];
    const auto it = reg_position(regs, origin);
    if (it != regs.end() && it->first == origin) regs.erase(it);
  }
  os->proxies.clear();
  os->length = 0;
}

WalkEngine::RegistrationView WalkEngine::registrations(NodeId node) const {
  const std::vector<Registration>& regs = registrations_[node];
  return RegistrationView(regs.data(), regs.size());
}

const std::vector<NodeId>& WalkEngine::proxy_nodes(NodeId origin) const {
  const OriginState* os = find_origin(origin);
  return os == nullptr ? empty_nodes_ : os->proxies;
}

void WalkEngine::dispose_units(OriginState& os, NodeId node, std::uint32_t r,
                               std::uint64_t count,
                               std::vector<Pending>& next) {
  Level& lv = level_at(os, node, r);
  if (r == 0) {
    lv.proxy_units += count;
    auto& regs = registrations_[node];
    const auto it = reg_position(regs, os.node);
    if (it == regs.end() || it->first != os.node) {
      // wcle-lint: no-alloc-ok(one entry per proxy-origin pair; stays warm)
      regs.insert(it, {os.node, count});
      // wcle-lint: no-alloc-ok(bounded by proxies per origin; stays warm)
      os.proxies.push_back(node);
    } else {
      it->second += count;
    }
    return;
  }

  const std::uint64_t stays =
      config_.lazy ? rng_->next_binomial(count, 0.5) : 0;
  const std::uint64_t movers = count - stays;
  if (stays > 0) {
    lv.stay_out += stays;
    level_at(os, node, r - 1).stay_in += stays;  // lv stays valid (deque pool)
    // wcle-lint: no-alloc-ok(phase-local queue; warm after round one)
    next.push_back({node, os.node, r - 1, stays});
  }
  if (movers == 0) return;

  const std::uint32_t deg = g_->degree(node);
  std::uint64_t left = movers;
  for (Port p = 0; p < deg && left > 0; ++p) {
    const std::uint64_t sent =
        (p + 1 == deg) ? left
                       : rng_->next_binomial(left, 1.0 / double(deg - p));
    if (sent == 0) continue;
    left -= sent;
    if (std::find(lv.out_ports.begin(), lv.out_ports.end(), p) ==
        lv.out_ports.end())
      // wcle-lint: no-alloc-ok(bounded by node degree; recycled capacity)
      lv.out_ports.push_back(p);
    lv.sent_total += sent;
    Message msg;
    msg.tag = kTagWalkToken;
    msg.a = os.node;
    msg.b = r - 1;
    msg.c = sent;
    // Without coalescing every walk unit pays for its own token (the naive
    // transport Lemma 12 improves on); with it the count rides along free.
    msg.bits = config_.coalesce
                   ? token_bits(r - 1)
                   : static_cast<std::uint32_t>(
                         std::min<std::uint64_t>(sent, 1u << 20) *
                         token_bits(r - 1));
    net_->send(node, p, msg);
  }
}

std::uint64_t WalkEngine::run_walk_stage(const std::vector<WalkOrder>& orders) {
  std::vector<Pending> cur, next;

  for (const WalkOrder& o : orders) {
    if (o.count == 0 || o.length == 0)
      throw std::invalid_argument("run_walk_stage: count/length must be >= 1");
    clear_origin(o.origin);
  }
  for (const WalkOrder& o : orders) {
    OriginState& os = intern(o.origin);
    os.length = std::max(os.length, o.length);
    level_at(os, o.origin, o.length).origin_inject += o.count;
    // wcle-lint: no-alloc-ok(stage setup, once per phase)
    cur.push_back({o.origin, o.origin, o.length, o.count});
  }

  const std::uint64_t round0 = net_->round();
  // Per-walk token tracing (--trace-walks): one hop record per delivered
  // token message, emitted into the recorder's pre-sized buffer. Purely
  // observational — the check is hoisted so the walks-off path pays one
  // branch per delivery and the recorder is never consulted.
  TraceRecorder* const rec = net_->config().trace;
  const bool trace_walks = rec != nullptr && rec->trace_walks() != 0;
  while (!cur.empty() || !net_->idle()) {
    // Deterministic processing order: (node, origin) ascending, descending
    // remaining-length within — the order the hash-map engine produced by
    // sorting its keys. Equal (node, origin, level) buckets merge before
    // disposal so the coalesced RNG draws are identical too.
    std::sort(cur.begin(), cur.end(),
              [](const Pending& x, const Pending& y) {
                if (x.node != y.node) return x.node < y.node;
                if (x.origin != y.origin) return x.origin < y.origin;
                return x.level > y.level;
              });
    std::size_t i = 0;
    while (i < cur.size()) {
      std::uint64_t total = cur[i].count;
      std::size_t j = i + 1;
      while (j < cur.size() && cur[j].node == cur[i].node &&
             cur[j].origin == cur[i].origin && cur[j].level == cur[i].level) {
        total += cur[j].count;
        ++j;
      }
      OriginState* os = find_origin(cur[i].origin);
      assert(os != nullptr);
      dispose_units(*os, cur[i].node, cur[i].level, total, next);
      i = j;
    }
    cur.clear();

    // wcle-lint: no-alloc-transitive-ok(reaches only fault-event scratch)
    const std::vector<Delivery>& delivered = net_->step();
    for (const Delivery& d : delivered) {
      assert(d.msg.tag == kTagWalkToken);
      const NodeId origin = static_cast<NodeId>(d.msg.a);
      const std::uint32_t r = static_cast<std::uint32_t>(d.msg.b);
      const std::uint64_t count = d.msg.c;
      if (trace_walks)
        // d.port is the receiver's mirror port, so its neighbor view names
        // the sender: the hop's directed edge is src -> dst.
        rec->on_walk_hop(
            net_->round(), static_cast<std::uint32_t>(origin),
            static_cast<std::uint32_t>(g_->neighbor(d.dst, d.port)),
            static_cast<std::uint32_t>(d.dst),
            static_cast<std::uint32_t>(
                std::min<std::uint64_t>(count, 0xffffffffull)),
            d.msg.tag);
      OriginState* os = find_origin(origin);
      assert(os != nullptr);
      Level& lv = level_at(*os, d.dst, r);
      const auto in = std::find_if(
          lv.in_ports.begin(), lv.in_ports.end(),
          [&](const auto& e) { return e.first == d.port; });
      if (in == lv.in_ports.end())
        // wcle-lint: no-alloc-ok(bounded by node degree; recycled capacity)
        lv.in_ports.emplace_back(d.port, count);
      else
        in->second += count;
      // wcle-lint: no-alloc-ok(phase-local queue; warm after round one)
      next.push_back({d.dst, origin, r, count});
    }
    cur.swap(next);
  }
  return net_->round() - round0;
}
// wcle-lint: end-no-alloc

std::vector<WalkEvent> WalkEngine::begin_convergecast(
    const std::vector<NodeId>& origins, const ProxyPayloadFn& at_proxy) {
  cc_gen_ += 1;  // invalidates every Level's embedded convergecast state
  std::vector<WalkEvent> events;
  for (const NodeId origin : origins) {
    for (const NodeId proxy : proxy_nodes(origin)) {
      const RegistrationView regs = registrations(proxy);
      const auto it = regs.find(origin);
      assert(it != regs.end());
      ReplyPayload payload = at_proxy(proxy, origin, it->second);
      // Seed distribution from the trail's terminal level.
      credit(proxy, origin, 0, it->second, std::move(payload), events);
    }
  }
  return events;
}

void WalkEngine::credit(NodeId node, NodeId origin, std::uint32_t r,
                        std::uint64_t units, ReplyPayload payload,
                        std::vector<WalkEvent>& events) {
  OriginState* osp = find_origin(origin);
  assert(osp != nullptr);
  OriginState& os = *osp;
  struct Work {
    NodeId node;
    std::uint32_t r;
    std::uint64_t units;
    ReplyPayload payload;
  };
  std::vector<Work> stack;
  stack.push_back({node, r, units, std::move(payload)});

  while (!stack.empty()) {
    Work w = std::move(stack.back());
    stack.pop_back();
    Level* lv = find_level(os, w.node, w.r);
    assert(lv != nullptr);

    ReplyPayload agg;
    if (w.r == 0) {
      // Terminal level: all proxy units report at once; no counting needed.
      agg = std::move(w.payload);
    } else {
      if (lv->cc_gen != cc_gen_) {
        // First credit of this convergecast generation: reset in place.
        lv->cc_gen = cc_gen_;
        lv->cc_got = 0;
        lv->cc_agg.distinct_proxies = 0;
        lv->cc_agg.proxy_nodes = 0;
        lv->cc_agg.ids.clear();
      }
      lv->cc_got += w.units;
      lv->cc_agg.merge(w.payload);
      const std::uint64_t need = lv->stay_out + lv->sent_total;
      assert(lv->cc_got <= need);
      if (lv->cc_got < need) continue;
      agg = std::move(lv->cc_agg);
    }

    // Completed: partition units over the parents; the full aggregate
    // travels with the first parent, the rest carry unit counts only.
    bool first = true;
    if (lv->stay_in > 0) {
      stack.push_back({w.node, w.r + 1, lv->stay_in,
                       first ? std::move(agg) : ReplyPayload{}});
      first = false;
    }
    for (const auto& [port, cnt] : lv->in_ports) {
      Message msg;
      msg.tag = kTagReplyUp;
      msg.a = origin;
      msg.b = w.r + 1;
      msg.c = cnt;
      if (first) {
        msg.d = (agg.distinct_proxies << 32) | agg.proxy_nodes;
        msg.ids = IdSpan(agg.ids);
        first = false;
      }
      msg.bits = payload_bits(msg.ids.size());
      net_->send(w.node, port, msg);
    }
    if (lv->origin_inject > 0) {
      WalkEvent ev;
      ev.kind = WalkEvent::Kind::kConvergecastDone;
      ev.node = w.node;
      ev.origin = origin;
      if (first) ev.reply = std::move(agg);
      events.push_back(std::move(ev));
    }
  }
}

std::vector<WalkEvent> WalkEngine::begin_flood_down(
    NodeId origin, std::vector<std::uint64_t> ids) {
  std::vector<WalkEvent> events;
  OriginState* os = find_origin(origin);
  if (os == nullptr || os->length == 0) return events;
  const std::uint32_t gen = ++os->flood_gen;
  flood_at(origin, origin, os->length, gen, IdSpan(ids), events);
  return events;
}

void WalkEngine::flood_at(NodeId node, NodeId origin, std::uint32_t r,
                          std::uint32_t gen, IdSpan ids,
                          std::vector<WalkEvent>& events) {
  OriginState* osp = find_origin(origin);
  if (osp == nullptr) return;  // stale message for a never-walked origin
  OriginState& os = *osp;
  NodeId cur = node;
  std::uint32_t level = r;
  for (;;) {
    Level* lv = find_level(os, cur, level);
    if (lv == nullptr) return;
    if (lv->flood_seen == gen) return;
    lv->flood_seen = gen;
    if (level == 0) {
      if (lv->proxy_units > 0) {
        WalkEvent ev;
        ev.kind = WalkEvent::Kind::kFloodAtProxy;
        ev.node = cur;
        ev.origin = origin;
        ev.ids = ids.to_vector();
        events.push_back(std::move(ev));
      }
      return;
    }
    for (const Port p : lv->out_ports) {
      Message msg;
      msg.tag = kTagFloodDown;
      msg.a = origin;
      msg.b = level - 1;
      msg.c = gen;
      msg.ids = ids;  // forwarded as a view; send() copies into the arena
      msg.bits = payload_bits(ids.size());
      net_->send(cur, p, msg);
    }
    if (lv->stay_out == 0) return;
    --level;  // continue locally through the lazy self-step link
  }
}

std::vector<WalkEvent> WalkEngine::begin_unicast_up(
    NodeId node, NodeId origin, std::vector<std::uint64_t> ids) {
  std::vector<WalkEvent> events;
  unicast_at(node, origin, 0, std::move(ids), events);
  return events;
}

void WalkEngine::unicast_at(NodeId node, NodeId origin, std::uint32_t r,
                            std::vector<std::uint64_t> ids,
                            std::vector<WalkEvent>& events) {
  OriginState* osp = find_origin(origin);
  if (osp == nullptr) return;  // stale trail; drop
  OriginState& os = *osp;
  NodeId cur = node;
  std::uint32_t level = r;
  for (;;) {
    Level* lv = find_level(os, cur, level);
    if (lv == nullptr) return;  // stale trail; drop
    if (lv->origin_inject > 0) {
      WalkEvent ev;
      ev.kind = WalkEvent::Kind::kUnicastAtOrigin;
      ev.node = cur;
      ev.origin = origin;
      ev.ids = std::move(ids);
      events.push_back(std::move(ev));
      return;
    }
    if (lv->stay_in > 0) {
      ++level;  // lazy self-step: ascend locally
      continue;
    }
    if (!lv->in_ports.empty()) {
      Message msg;
      msg.tag = kTagUnicastUp;
      msg.a = origin;
      msg.b = level + 1;
      msg.ids = IdSpan(ids);
      msg.bits = payload_bits(ids.size());
      net_->send(cur, lv->in_ports.front().first, msg);
      return;
    }
    return;  // orphan level (should not happen on complete trails)
  }
}

std::vector<WalkEvent> WalkEngine::handle(const Delivery& d) {
  std::vector<WalkEvent> events;
  switch (d.msg.tag) {
    case kTagReplyUp: {
      ReplyPayload payload;
      payload.distinct_proxies = d.msg.d >> 32;
      payload.proxy_nodes = d.msg.d & 0xffffffffu;
      payload.ids = d.msg.ids.to_vector();
      credit(d.dst, static_cast<NodeId>(d.msg.a),
             static_cast<std::uint32_t>(d.msg.b), d.msg.c, std::move(payload),
             events);
      break;
    }
    case kTagFloodDown:
      flood_at(d.dst, static_cast<NodeId>(d.msg.a),
               static_cast<std::uint32_t>(d.msg.b),
               static_cast<std::uint32_t>(d.msg.c), d.msg.ids, events);
      break;
    case kTagUnicastUp:
      unicast_at(d.dst, static_cast<NodeId>(d.msg.a),
                 static_cast<std::uint32_t>(d.msg.b), d.msg.ids.to_vector(),
                 events);
      break;
    default:
      assert(false && "WalkEngine::handle: unexpected tag");
  }
  return events;
}

}  // namespace wcle
