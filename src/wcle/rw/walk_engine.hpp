// Parallel lazy random walks over the CONGEST transport, with the paper's two
// message-saving devices built in:
//
//  * Token coalescing — a node never forwards per-walk tokens; all walks of
//    one origin at the same node with the same remaining length travel as a
//    single (origin, remaining, count) token (Lemma 12: "sends only one token
//    along with a count of tokens").
//  * Trail routing — every node records, per (origin, remaining-level), which
//    ports tokens arrived on and which ports they left on. These breadcrumbs
//    let the three "synchronized rounds of information exchange" of
//    Algorithm 2 retrace the walks: convergecast (proxies -> origin, exact
//    unit-accounted aggregation; Rounds 1 and 3), flood-down (origin ->
//    proxies; Round 2 and winner notifications), and unicast-up (proxy ->
//    origin along a single trail; winner forwarding to contenders).
//
// Proxy registrations — which nodes terminate how many of an origin's walks —
// persist across walk stages until that origin walks again, which is exactly
// the lifetime the algorithm needs (inactive contenders keep their proxies;
// active contenders re-walk with doubled length and re-register).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "wcle/graph/graph.hpp"
#include "wcle/sim/network.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

/// Message tags owned by the walk engine. Protocols must not reuse these.
inline constexpr std::uint8_t kTagWalkToken = 0x10;
inline constexpr std::uint8_t kTagReplyUp = 0x11;
inline constexpr std::uint8_t kTagFloodDown = 0x12;
inline constexpr std::uint8_t kTagUnicastUp = 0x13;

/// A request to run `count` parallel lazy walks of `length` steps from
/// `origin`. Any previous trails/registrations of `origin` are discarded.
struct WalkOrder {
  NodeId origin = 0;
  std::uint64_t count = 0;
  std::uint32_t length = 0;
};

/// Aggregate carried by convergecast replies (Rounds 1 and 3 of Algorithm 2).
/// Sums are partitioned exactly over the trail DAG (each proxy contributes
/// once); id sets are unions.
struct ReplyPayload {
  std::uint64_t distinct_proxies = 0; ///< sum of the per-proxy booleans d
  std::uint64_t proxy_nodes = 0;      ///< distinct proxy nodes covered
  std::vector<std::uint64_t> ids;     ///< union of id sets (sorted, unique)

  void merge(const ReplyPayload& other);
  void add_id(std::uint64_t id);
};

/// High-level events surfaced by the engine while the protocol pumps the
/// network loop. The protocol reacts (possibly issuing new engine operations,
/// e.g. cascading winner notifications) and keeps pumping until idle.
struct WalkEvent {
  enum class Kind {
    kConvergecastDone,  ///< `origin`'s aggregation finished; see `reply`
    kFloodAtProxy,      ///< flood from `origin` reached proxy `node`
    kUnicastAtOrigin,   ///< unicast-up along `origin`'s trail reached it
  };
  Kind kind = Kind::kConvergecastDone;
  NodeId node = 0;    ///< proxy node (kFloodAtProxy) or origin node (others)
  NodeId origin = 0;  ///< origin owning the trail the message travelled on
  std::vector<std::uint64_t> ids;  ///< payload ids (flood / unicast)
  ReplyPayload reply;              ///< payload (kConvergecastDone)
};

/// Builds a proxy's Round-1 payload: called once per (proxy node, origin)
/// holding `units` walk endpoints there. Typically fills ids with the random
/// ids of the *other* contenders registered at the proxy (the set I1).
using ProxyPayloadFn =
    std::function<ReplyPayload(NodeId proxy, NodeId origin, std::uint64_t units)>;

/// Ablation switches (DESIGN.md §5). Defaults reproduce the paper.
struct WalkConfig {
  /// Lazy walks (stay w.p. 1/2) — the paper's chain. Non-lazy walks fail to
  /// mix on bipartite graphs (parity trap): ablation 4.
  bool lazy = true;
  /// Token coalescing (one (origin, remaining, count) token per edge) —
  /// Lemma 12's device. When false, each walk unit is charged as its own
  /// O(log n)-bit token, modelling the naive per-walk transport: ablation 1.
  bool coalesce = true;
};

class WalkEngine {
 public:
  WalkEngine(const Graph& g, Network& net, Rng& rng,
             WalkConfig config = {});

  /// Runs all orders' walks in parallel to completion (every token reaches
  /// remaining==0 and registers at its proxy). Returns rounds consumed.
  /// Clears previous trails and registrations of the ordered origins first.
  std::uint64_t run_walk_stage(const std::vector<WalkOrder>& orders);

  /// Origins registered at `node` with their unit counts (walk endpoints from
  /// each origin's latest stage). Empty map reference if none.
  const std::unordered_map<NodeId, std::uint64_t>& registrations(
      NodeId node) const;

  /// Proxy nodes of `origin` from its latest walk stage.
  const std::vector<NodeId>& proxy_nodes(NodeId origin) const;

  /// Begins a convergecast for every origin in `origins`: each of its proxies
  /// produces a payload via `at_proxy`, aggregates flow back along the trails
  /// with exact unit accounting (sums are partitioned over parents; id sets
  /// are unioned). Returns events completed without network traffic; the rest
  /// surface via handle(). Resets any previous convergecast state.
  std::vector<WalkEvent> begin_convergecast(const std::vector<NodeId>& origins,
                                            const ProxyPayloadFn& at_proxy);

  /// Begins flooding `ids` from `origin` down its trails toward its proxies
  /// (Round 2 / winner dissemination). Each begin_flood_down is a fresh
  /// "generation": it traverses every trail level exactly once, independent
  /// of earlier floods of the same origin. Returns locally-completed events.
  std::vector<WalkEvent> begin_flood_down(NodeId origin,
                                          std::vector<std::uint64_t> ids);

  /// Routes `ids` from proxy `node` up a single path of `origin`'s trail to
  /// the origin (winner forwarding from a proxy to a contender).
  std::vector<WalkEvent> begin_unicast_up(NodeId node, NodeId origin,
                                          std::vector<std::uint64_t> ids);

  /// True if `msg.tag` belongs to the walk engine.
  static bool owns_tag(std::uint8_t tag) {
    return tag >= kTagWalkToken && tag <= kTagUnicastUp;
  }

  /// Processes one delivery of an engine-owned message, returning any events
  /// it completes. Must be called for every such delivery.
  std::vector<WalkEvent> handle(const Delivery& d);

 private:
  /// Static breadcrumbs for one (node, origin, remaining-level).
  struct Level {
    std::uint64_t stay_in = 0;       ///< units arriving by a lazy self-step
    std::uint64_t origin_inject = 0; ///< units injected here (origin, r=len)
    std::uint64_t stay_out = 0;      ///< units leaving by a lazy self-step
    std::uint64_t sent_total = 0;    ///< units forwarded over out_ports
    std::uint64_t proxy_units = 0;   ///< units terminating here (r==0)
    std::vector<std::pair<Port, std::uint64_t>> in_ports;  ///< arrivals
    std::vector<Port> out_ports;                           ///< departures
  };
  /// Trail of one origin at one node: remaining-level -> breadcrumbs.
  using Trail = std::unordered_map<std::uint32_t, Level>;

  /// Convergecast runtime per (node, origin, level).
  struct CcState {
    std::uint64_t got = 0;
    ReplyPayload agg;
  };

  static std::uint64_t key(NodeId node, NodeId origin) {
    return (static_cast<std::uint64_t>(node) << 32) | origin;
  }

  void clear_origin(NodeId origin);
  Level& level_at(NodeId node, NodeId origin, std::uint32_t r);
  const Level* find_level(NodeId node, NodeId origin, std::uint32_t r) const;

  /// Walk-stage helper: disposes `count` units at (node, origin, r).
  void dispose_units(NodeId node, NodeId origin, std::uint32_t r,
                     std::uint64_t count,
                     std::unordered_map<std::uint64_t,
                                        std::unordered_map<std::uint32_t,
                                                           std::uint64_t>>&
                         next_buckets,
                     std::vector<std::uint64_t>& next_hot);

  /// Convergecast helper: credits `units`/`payload` to (node, origin, r) and
  /// cascades completions (locally through stay-links, remotely via sends).
  void credit(NodeId node, NodeId origin, std::uint32_t r, std::uint64_t units,
              ReplyPayload payload, std::vector<WalkEvent>& events);

  /// Flood helper: processes payload at (node, origin, r) cascading locally
  /// through stay-links and remotely via out_ports. `gen` identifies the
  /// flood generation for deduplication.
  void flood_at(NodeId node, NodeId origin, std::uint32_t r, std::uint32_t gen,
                const std::vector<std::uint64_t>& ids,
                std::vector<WalkEvent>& events);

  /// Unicast helper: advances toward the origin from (node, origin, r).
  void unicast_at(NodeId node, NodeId origin, std::uint32_t r,
                  std::vector<std::uint64_t> ids,
                  std::vector<WalkEvent>& events);

  std::uint32_t token_bits(std::uint32_t remaining) const;
  std::uint32_t payload_bits(std::size_t id_count) const;

  const Graph* g_;
  Network* net_;
  Rng* rng_;
  WalkConfig config_;
  std::uint32_t id_bits_;
  std::uint32_t base_bits_;

  std::unordered_map<std::uint64_t, Trail> trails_;  ///< key(node,origin)
  std::unordered_map<NodeId, std::vector<NodeId>> touched_;  ///< origin->nodes
  std::unordered_map<NodeId, std::unordered_map<NodeId, std::uint64_t>>
      registrations_;  ///< node -> origin -> units
  std::unordered_map<NodeId, std::vector<NodeId>> proxy_nodes_;  ///< by origin

  std::unordered_map<NodeId, std::uint32_t> walk_length_;  ///< latest length

  std::unordered_map<std::uint64_t, std::unordered_map<std::uint32_t, CcState>>
      cc_;  ///< convergecast runtime
  std::unordered_map<NodeId, std::uint32_t> flood_gen_;  ///< per-origin counter
  std::unordered_map<std::uint64_t,
                     std::unordered_map<std::uint32_t, std::uint32_t>>
      flood_seen_;  ///< (node,origin) -> level -> last generation forwarded

  const std::unordered_map<NodeId, std::uint64_t> empty_regs_;
  const std::vector<NodeId> empty_nodes_;
};

}  // namespace wcle
