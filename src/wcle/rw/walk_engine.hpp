// Parallel lazy random walks over the CONGEST transport, with the paper's two
// message-saving devices built in:
//
//  * Token coalescing — a node never forwards per-walk tokens; all walks of
//    one origin at the same node with the same remaining length travel as a
//    single (origin, remaining, count) token (Lemma 12: "sends only one token
//    along with a count of tokens").
//  * Trail routing — every node records, per (origin, remaining-level), which
//    ports tokens arrived on and which ports they left on. These breadcrumbs
//    let the three "synchronized rounds of information exchange" of
//    Algorithm 2 retrace the walks: convergecast (proxies -> origin, exact
//    unit-accounted aggregation; Rounds 1 and 3), flood-down (origin ->
//    proxies; Round 2 and winner notifications), and unicast-up (proxy ->
//    origin along a single trail; winner forwarding to contenders).
//
// Proxy registrations — which nodes terminate how many of an origin's walks —
// persist across walk stages until that origin walks again, which is exactly
// the lifetime the algorithm needs (inactive contenders keep their proxies;
// active contenders re-walk with doubled length and re-register).
//
// State layout (the data-plane rebuild): origins are interned into a dense
// index; each origin owns a per-node slot table (plain array lookup) whose
// slots hold small level-sorted trail arrays referencing a recycled level
// pool, and the convergecast/flood runtime is embedded in the Level records
// behind generation counters. run_walk_stage's per-round token buckets are a
// flat sorted vector. No hash table is touched anywhere on the hot path, and
// after the first phase the engine performs no steady-state allocation;
// executions are bit-identical to the hash-map implementation.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "wcle/graph/graph.hpp"
#include "wcle/sim/network.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

/// Message tags owned by the walk engine. Protocols must not reuse these.
inline constexpr std::uint8_t kTagWalkToken = 0x10;
inline constexpr std::uint8_t kTagReplyUp = 0x11;
inline constexpr std::uint8_t kTagFloodDown = 0x12;
inline constexpr std::uint8_t kTagUnicastUp = 0x13;

/// A request to run `count` parallel lazy walks of `length` steps from
/// `origin`. Any previous trails/registrations of `origin` are discarded.
struct WalkOrder {
  NodeId origin = 0;
  std::uint64_t count = 0;
  std::uint32_t length = 0;
};

/// Aggregate carried by convergecast replies (Rounds 1 and 3 of Algorithm 2).
/// Sums are partitioned exactly over the trail DAG (each proxy contributes
/// once); id sets are unions.
struct ReplyPayload {
  std::uint64_t distinct_proxies = 0; ///< sum of the per-proxy booleans d
  std::uint64_t proxy_nodes = 0;      ///< distinct proxy nodes covered
  std::vector<std::uint64_t> ids;     ///< union of id sets (sorted, unique)

  void merge(const ReplyPayload& other);
  void add_id(std::uint64_t id);
};

/// High-level events surfaced by the engine while the protocol pumps the
/// network loop. The protocol reacts (possibly issuing new engine operations,
/// e.g. cascading winner notifications) and keeps pumping until idle.
struct WalkEvent {
  enum class Kind {
    kConvergecastDone,  ///< `origin`'s aggregation finished; see `reply`
    kFloodAtProxy,      ///< flood from `origin` reached proxy `node`
    kUnicastAtOrigin,   ///< unicast-up along `origin`'s trail reached it
  };
  Kind kind = Kind::kConvergecastDone;
  NodeId node = 0;    ///< proxy node (kFloodAtProxy) or origin node (others)
  NodeId origin = 0;  ///< origin owning the trail the message travelled on
  std::vector<std::uint64_t> ids;  ///< payload ids (flood / unicast)
  ReplyPayload reply;              ///< payload (kConvergecastDone)
};

/// Builds a proxy's Round-1 payload: called once per (proxy node, origin)
/// holding `units` walk endpoints there. Typically fills ids with the random
/// ids of the *other* contenders registered at the proxy (the set I1).
using ProxyPayloadFn = std::function<ReplyPayload(
    NodeId proxy, NodeId origin, std::uint64_t units)>;

/// Ablation switches (DESIGN.md §5). Defaults reproduce the paper.
struct WalkConfig {
  /// Lazy walks (stay w.p. 1/2) — the paper's chain. Non-lazy walks fail to
  /// mix on bipartite graphs (parity trap): ablation 4.
  bool lazy = true;
  /// Token coalescing (one (origin, remaining, count) token per edge) —
  /// Lemma 12's device. When false, each walk unit is charged as its own
  /// O(log n)-bit token, modelling the naive per-walk transport: ablation 1.
  bool coalesce = true;
};

class WalkEngine {
 public:
  WalkEngine(const Graph& g, Network& net, Rng& rng,
             WalkConfig config = {});

  /// One (origin, units) registration entry at a proxy node.
  using Registration = std::pair<NodeId, std::uint64_t>;

  /// The registrations of one node, sorted by origin id — map-like reads
  /// (find / at / iteration as (origin, units) pairs) over a flat array.
  class RegistrationView {
   public:
    using const_iterator = const Registration*;
    RegistrationView() = default;
    RegistrationView(const Registration* data, std::size_t size)
        : data_(data), size_(size) {}
    const_iterator begin() const noexcept { return data_; }
    const_iterator end() const noexcept { return data_ + size_; }
    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }
    /// end() when `origin` holds no registration here (binary search).
    const_iterator find(NodeId origin) const noexcept;
    /// Units registered by `origin`; throws std::out_of_range if absent.
    std::uint64_t at(NodeId origin) const;

   private:
    const Registration* data_ = nullptr;
    std::size_t size_ = 0;
  };

  /// Runs all orders' walks in parallel to completion (every token reaches
  /// remaining==0 and registers at its proxy). Returns rounds consumed.
  /// Clears previous trails and registrations of the ordered origins first.
  std::uint64_t run_walk_stage(const std::vector<WalkOrder>& orders);

  /// Origins registered at `node` with their unit counts (walk endpoints from
  /// each origin's latest stage), sorted by origin. Empty view if none.
  RegistrationView registrations(NodeId node) const;

  /// Proxy nodes of `origin` from its latest walk stage.
  const std::vector<NodeId>& proxy_nodes(NodeId origin) const;

  /// Begins a convergecast for every origin in `origins`: each of its proxies
  /// produces a payload via `at_proxy`, aggregates flow back along the trails
  /// with exact unit accounting (sums are partitioned over parents; id sets
  /// are unioned). Returns events completed without network traffic; the rest
  /// surface via handle(). Resets any previous convergecast state.
  std::vector<WalkEvent> begin_convergecast(const std::vector<NodeId>& origins,
                                            const ProxyPayloadFn& at_proxy);

  /// Begins flooding `ids` from `origin` down its trails toward its proxies
  /// (Round 2 / winner dissemination). Each begin_flood_down is a fresh
  /// "generation": it traverses every trail level exactly once, independent
  /// of earlier floods of the same origin. Returns locally-completed events.
  std::vector<WalkEvent> begin_flood_down(NodeId origin,
                                          std::vector<std::uint64_t> ids);

  /// Routes `ids` from proxy `node` up a single path of `origin`'s trail to
  /// the origin (winner forwarding from a proxy to a contender).
  std::vector<WalkEvent> begin_unicast_up(NodeId node, NodeId origin,
                                          std::vector<std::uint64_t> ids);

  /// True if `msg.tag` belongs to the walk engine.
  static bool owns_tag(std::uint8_t tag) {
    return tag >= kTagWalkToken && tag <= kTagUnicastUp;
  }

  /// Processes one delivery of an engine-owned message, returning any events
  /// it completes. Must be called for every such delivery.
  std::vector<WalkEvent> handle(const Delivery& d);

 private:
  static constexpr std::uint32_t kNoOrigin = 0xffffffffu;
  static constexpr std::int32_t kNoSlot = -1;

  /// Static breadcrumbs for one (node, origin, remaining-level), with the
  /// convergecast and flood runtime embedded behind generation counters (no
  /// side tables, no hashing).
  struct Level {
    std::uint64_t stay_in = 0;       ///< units arriving by a lazy self-step
    std::uint64_t origin_inject = 0; ///< units injected here (origin, r=len)
    std::uint64_t stay_out = 0;      ///< units leaving by a lazy self-step
    std::uint64_t sent_total = 0;    ///< units forwarded over out_ports
    std::uint64_t proxy_units = 0;   ///< units terminating here (r==0)
    std::vector<std::pair<Port, std::uint64_t>> in_ports;  ///< arrivals
    std::vector<Port> out_ports;                           ///< departures
    // Convergecast runtime, valid while cc_gen matches the engine's counter.
    std::uint64_t cc_got = 0;
    ReplyPayload cc_agg;
    std::uint32_t cc_gen = 0;
    // Last flood generation forwarded through this level.
    std::uint32_t flood_seen = 0;
  };

  /// Trail of one origin at one node: (level, pool index) sorted by level.
  /// Typically a handful of entries — binary search beats any hash here.
  struct NodeTrail {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> refs;
  };

  /// All engine state of one interned origin. Trail storage (slots + level
  /// pool) is recycled via cursors on clear, so re-walking origins reuse
  /// warm capacity instead of churning the allocator.
  struct OriginState {
    NodeId node = 0;
    std::uint32_t length = 0;     ///< latest walk length (0 = no trails)
    std::uint32_t flood_gen = 0;  ///< per-origin flood generation counter
    std::vector<std::int32_t> slot_of;  ///< node -> slot index | kNoSlot
    std::vector<NodeId> touched;        ///< nodes with a slot
    std::vector<NodeTrail> slots;
    std::size_t slots_used = 0;
    std::deque<Level> pool;  ///< stable addresses: Level&s survive growth
    std::size_t pool_used = 0;
    std::vector<NodeId> proxies;
  };

  /// A pending (node, origin, level, units) token bucket of the walk stage.
  /// Sorted by (node, origin, level desc) and merged each engine round —
  /// the same deterministic disposal order the hash-map implementation
  /// produced by sorting its keys.
  struct Pending {
    NodeId node = 0;
    NodeId origin = 0;
    std::uint32_t level = 0;
    std::uint64_t count = 0;
  };

  OriginState& intern(NodeId origin);
  OriginState* find_origin(NodeId origin) noexcept;
  const OriginState* find_origin(NodeId origin) const noexcept;

  void clear_origin(NodeId origin);
  Level& level_at(OriginState& os, NodeId node, std::uint32_t r);
  Level* find_level(OriginState& os, NodeId node, std::uint32_t r) noexcept;

  /// Walk-stage helper: disposes `count` units at (node, origin, r).
  void dispose_units(OriginState& os, NodeId node, std::uint32_t r,
                     std::uint64_t count, std::vector<Pending>& next);

  /// Convergecast helper: credits `units`/`payload` to (node, origin, r) and
  /// cascades completions (locally through stay-links, remotely via sends).
  void credit(NodeId node, NodeId origin, std::uint32_t r, std::uint64_t units,
              ReplyPayload payload, std::vector<WalkEvent>& events);

  /// Flood helper: processes payload at (node, origin, r) cascading locally
  /// through stay-links and remotely via out_ports. `gen` identifies the
  /// flood generation for deduplication.
  void flood_at(NodeId node, NodeId origin, std::uint32_t r, std::uint32_t gen,
                IdSpan ids, std::vector<WalkEvent>& events);

  /// Unicast helper: advances toward the origin from (node, origin, r).
  void unicast_at(NodeId node, NodeId origin, std::uint32_t r,
                  std::vector<std::uint64_t> ids,
                  std::vector<WalkEvent>& events);

  std::uint32_t token_bits(std::uint32_t remaining) const;
  std::uint32_t payload_bits(std::size_t id_count) const;

  const Graph* g_;
  Network* net_;
  Rng* rng_;
  WalkConfig config_;
  std::uint32_t id_bits_;
  std::uint32_t base_bits_;

  std::vector<std::uint32_t> origin_index_;  ///< node -> interned index
  std::vector<OriginState> origins_;

  /// Per-node registrations (origin -> units), sorted by origin.
  std::vector<std::vector<Registration>> registrations_;

  std::uint32_t cc_gen_ = 0;  ///< bumped by begin_convergecast (state reset)

  const std::vector<NodeId> empty_nodes_;
};

}  // namespace wcle
