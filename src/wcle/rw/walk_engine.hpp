// Parallel lazy random walks over the CONGEST transport, with the paper's two
// message-saving devices built in:
//
//  * Token coalescing — a node never forwards per-walk tokens; all walks of
//    one origin at the same node with the same remaining length travel as a
//    single (origin, remaining, count) token (Lemma 12: "sends only one token
//    along with a count of tokens").
//  * Trail routing — every node records, per (origin, remaining-level), which
//    ports tokens arrived on and which ports they left on. These breadcrumbs
//    let the three "synchronized rounds of information exchange" of
//    Algorithm 2 retrace the walks: convergecast (proxies -> origin, exact
//    unit-accounted aggregation; Rounds 1 and 3), flood-down (origin ->
//    proxies; Round 2 and winner notifications), and unicast-up (proxy ->
//    origin along a single trail; winner forwarding to contenders).
//
// Proxy registrations — which nodes terminate how many of an origin's walks —
// persist across walk stages until that origin walks again, which is exactly
// the lifetime the algorithm needs (inactive contenders keep their proxies;
// active contenders re-walk with doubled length and re-register).
//
// State layout (the data-plane rebuild, grown for million-node runs): origins
// are interned into a dense index; each origin owns a chunked, lazily
// materialized node->slot map (a dense per-origin array would cost O(n) per
// contender at n = 10^6), slots hold small level-sorted trail arrays, and the
// level records live in a structure-of-arrays pool — parallel scalar columns
// plus port lists threaded through per-origin arenas, so a trail level costs
// a fixed few words in flat storage instead of a struct with two heap-backed
// vectors. Convergecast id sets live in an engine-owned WordPool whose
// size-class free lists are threaded through the freed storage itself, so
// the merge-heavy aggregation recycles buffers without touching the heap.
// run_walk_stage's per-round token buckets partition by the transport's node
// shards and sort per shard (concatenating sorted shard buckets reproduces
// the global order, since shards are contiguous node ranges and the sort key
// leads with the node). No hash table is touched anywhere on the hot path,
// and after the first phase the engine performs no steady-state allocation;
// executions are bit-identical to the hash-map implementation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "wcle/graph/graph.hpp"
#include "wcle/sim/network.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

/// Message tags owned by the walk engine. Protocols must not reuse these.
inline constexpr std::uint8_t kTagWalkToken = 0x10;
inline constexpr std::uint8_t kTagReplyUp = 0x11;
inline constexpr std::uint8_t kTagFloodDown = 0x12;
inline constexpr std::uint8_t kTagUnicastUp = 0x13;

/// A request to run `count` parallel lazy walks of `length` steps from
/// `origin`. Any previous trails/registrations of `origin` are discarded.
struct WalkOrder {
  NodeId origin = 0;
  std::uint64_t count = 0;
  std::uint32_t length = 0;
};

/// Aggregate carried by convergecast replies (Rounds 1 and 3 of Algorithm 2).
/// Sums are partitioned exactly over the trail DAG (each proxy contributes
/// once); id sets are unions. This is the *materialized* form protocols see
/// (events, the at_proxy callback); in flight the engine keeps the id set in
/// its WordPool and only builds the vector at the API boundary.
struct ReplyPayload {
  std::uint64_t distinct_proxies = 0; ///< sum of the per-proxy booleans d
  std::uint64_t proxy_nodes = 0;      ///< distinct proxy nodes covered
  std::vector<std::uint64_t> ids;     ///< union of id sets (sorted, unique)

  void merge(const ReplyPayload& other);
  void add_id(std::uint64_t id);
};

/// High-level events surfaced by the engine while the protocol pumps the
/// network loop. The protocol reacts (possibly issuing new engine operations,
/// e.g. cascading winner notifications) and keeps pumping until idle.
struct WalkEvent {
  enum class Kind {
    kConvergecastDone,  ///< `origin`'s aggregation finished; see `reply`
    kFloodAtProxy,      ///< flood from `origin` reached proxy `node`
    kUnicastAtOrigin,   ///< unicast-up along `origin`'s trail reached it
  };
  Kind kind = Kind::kConvergecastDone;
  NodeId node = 0;    ///< proxy node (kFloodAtProxy) or origin node (others)
  NodeId origin = 0;  ///< origin owning the trail the message travelled on
  std::vector<std::uint64_t> ids;  ///< payload ids (flood / unicast)
  ReplyPayload reply;              ///< payload (kConvergecastDone)
};

/// Builds a proxy's Round-1 payload: called once per (proxy node, origin)
/// holding `units` walk endpoints there. Typically fills ids with the random
/// ids of the *other* contenders registered at the proxy (the set I1).
using ProxyPayloadFn = std::function<ReplyPayload(
    NodeId proxy, NodeId origin, std::uint64_t units)>;

/// Ablation switches (DESIGN.md §5). Defaults reproduce the paper.
struct WalkConfig {
  /// Lazy walks (stay w.p. 1/2) — the paper's chain. Non-lazy walks fail to
  /// mix on bipartite graphs (parity trap): ablation 4.
  bool lazy = true;
  /// Token coalescing (one (origin, remaining, count) token per edge) —
  /// Lemma 12's device. When false, each walk unit is charged as its own
  /// O(log n)-bit token, modelling the naive per-walk transport: ablation 1.
  bool coalesce = true;
};

/// Chunked bump/free-list pool for the sorted id sets convergecast replies
/// carry. Slots are handed out in power-of-two size classes; each class's
/// free list is threaded *through the freed storage itself* (the first word
/// of a freed slot holds the next-free handle), so recycling costs zero side
/// memory. rewind() reclaims everything at once — called per convergecast
/// generation, when every outstanding handle is dead by construction.
/// Addresses are stable (chunks never move), so IdSpan views over pooled
/// buffers stay valid across later allocations.
class WordPool {
 public:
  static constexpr std::uint32_t kNull = 0xffffffffu;

  /// Returns a handle to a slot of capacity >= n words (n >= 1).
  std::uint32_t alloc(std::uint32_t n);
  /// Releases a slot previously allocated with the same n.
  void free(std::uint32_t h, std::uint32_t n);
  /// Drops every allocation and rewinds to the first chunk.
  void rewind();

  std::uint64_t* data(std::uint32_t h) noexcept {
    return chunks_[h >> kChunkBits].get() + (h & (kChunkWords - 1));
  }
  const std::uint64_t* data(std::uint32_t h) const noexcept {
    return chunks_[h >> kChunkBits].get() + (h & (kChunkWords - 1));
  }
  std::uint64_t chunk_count() const noexcept { return chunks_.size(); }

 private:
  static constexpr std::uint32_t kChunkBits = 16;
  static constexpr std::uint32_t kChunkWords = 1u << kChunkBits;
  static constexpr std::uint32_t kClasses = 32;

  static std::uint32_t size_class(std::uint32_t n) noexcept;

  std::vector<std::unique_ptr<std::uint64_t[]>> chunks_;
  /// Chunk indices eligible for bump allocation, in fill order. Dedicated
  /// whole-chunk slots are excluded, so rewinding the bump cursor can never
  /// alias storage that a recycled oversized handle still names.
  std::vector<std::uint32_t> bump_order_;
  std::uint32_t bump_at_ = 0;
  std::uint32_t cur_used_ = 0;
  /// Head handle per size class; links live in the freed words themselves.
  std::uint32_t free_head_[kClasses];
  /// Dedicated whole-chunk slots (capacity > kChunkWords): returned to their
  /// class free list on rewind instead of being dropped, so a pathological
  /// id-set burst warms once.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> dedicated_;

 public:
  WordPool() {
    for (std::uint32_t c = 0; c < kClasses; ++c) free_head_[c] = kNull;
  }
};

class WalkEngine {
 public:
  WalkEngine(const Graph& g, Network& net, Rng& rng,
             WalkConfig config = {});

  /// One (origin, units) registration entry at a proxy node.
  using Registration = std::pair<NodeId, std::uint64_t>;

  /// The registrations of one node, sorted by origin id — map-like reads
  /// (find / at / iteration as (origin, units) pairs) over a flat array.
  class RegistrationView {
   public:
    using const_iterator = const Registration*;
    RegistrationView() = default;
    RegistrationView(const Registration* data, std::size_t size)
        : data_(data), size_(size) {}
    const_iterator begin() const noexcept { return data_; }
    const_iterator end() const noexcept { return data_ + size_; }
    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }
    /// end() when `origin` holds no registration here (binary search).
    const_iterator find(NodeId origin) const noexcept;
    /// Units registered by `origin`; throws std::out_of_range if absent.
    std::uint64_t at(NodeId origin) const;

   private:
    const Registration* data_ = nullptr;
    std::size_t size_ = 0;
  };

  /// Runs all orders' walks in parallel to completion (every token reaches
  /// remaining==0 and registers at its proxy). Returns rounds consumed.
  /// Clears previous trails and registrations of the ordered origins first.
  std::uint64_t run_walk_stage(const std::vector<WalkOrder>& orders);

  /// Origins registered at `node` with their unit counts (walk endpoints from
  /// each origin's latest stage), sorted by origin. Empty view if none.
  RegistrationView registrations(NodeId node) const;

  /// Proxy nodes of `origin` from its latest walk stage.
  const std::vector<NodeId>& proxy_nodes(NodeId origin) const;

  /// Begins a convergecast for every origin in `origins`: each of its proxies
  /// produces a payload via `at_proxy`, aggregates flow back along the trails
  /// with exact unit accounting (sums are partitioned over parents; id sets
  /// are unioned). Returns events completed without network traffic; the rest
  /// surface via handle(). Resets any previous convergecast state.
  std::vector<WalkEvent> begin_convergecast(const std::vector<NodeId>& origins,
                                            const ProxyPayloadFn& at_proxy);

  /// Begins flooding `ids` from `origin` down its trails toward its proxies
  /// (Round 2 / winner dissemination). Each begin_flood_down is a fresh
  /// "generation": it traverses every trail level exactly once, independent
  /// of earlier floods of the same origin. Returns locally-completed events.
  std::vector<WalkEvent> begin_flood_down(NodeId origin,
                                          std::vector<std::uint64_t> ids);

  /// Routes `ids` from proxy `node` up a single path of `origin`'s trail to
  /// the origin (winner forwarding from a proxy to a contender).
  std::vector<WalkEvent> begin_unicast_up(NodeId node, NodeId origin,
                                          std::vector<std::uint64_t> ids);

  /// True if `msg.tag` belongs to the walk engine.
  static bool owns_tag(std::uint8_t tag) {
    return tag >= kTagWalkToken && tag <= kTagUnicastUp;
  }

  /// Processes one delivery of an engine-owned message, returning any events
  /// it completes. Must be called for every such delivery.
  std::vector<WalkEvent> handle(const Delivery& d);

 private:
  static constexpr std::uint32_t kNoOrigin = 0xffffffffu;
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::int32_t kNoSlot = -1;

  /// node -> slot map, chunked and lazily materialized: a chunk is allocated
  /// (and memset to kNoSlot — all 0xff bytes) the first time a node in its
  /// range is assigned. An origin's walks touch O(walks * length) nodes, a
  /// small fraction of a million-node id space, so the dense array this
  /// replaces would be almost entirely untouched -1s.
  class SlotMap {
   public:
    void init(std::uint64_t n);
    std::int32_t get(NodeId node) const noexcept {
      const std::int32_t* chunk = chunks_[node >> kChunkBits].get();
      return chunk == nullptr ? kNoSlot
                              : chunk[node & ((1u << kChunkBits) - 1)];
    }
    void set(NodeId node, std::int32_t v);

   private:
    static constexpr std::uint32_t kChunkBits = 16;
    std::vector<std::unique_ptr<std::int32_t[]>> chunks_;
  };

  /// The level records of one origin, structure-of-arrays: parallel scalar
  /// columns indexed by pool slot, with the per-level port lists threaded
  /// through the owning OriginState's arenas (in_head/out_head are arena
  /// indices, kNil = empty). Slots recycle via the `used` cursor — acquire()
  /// zeroes a recycled slot in place, so re-walking origins reuse warm
  /// storage. Replaces the AoS Level struct whose two heap-backed vectors
  /// per record dominated footprint and allocator traffic at n = 10^6.
  struct LevelPool {
    std::vector<std::uint64_t> stay_in;       ///< units arriving by self-step
    std::vector<std::uint64_t> origin_inject; ///< units injected (r = len)
    std::vector<std::uint64_t> stay_out;      ///< units leaving by self-step
    std::vector<std::uint64_t> sent_total;    ///< units forwarded over ports
    std::vector<std::uint64_t> proxy_units;   ///< units terminating (r == 0)
    std::vector<std::uint32_t> in_head;       ///< arrivals list head (arena)
    std::vector<std::uint32_t> out_head;      ///< departures list head
    // Convergecast runtime, valid while cc_gen matches the engine counter;
    // the id-set union lives in the engine's WordPool as (handle, len).
    std::vector<std::uint64_t> cc_got;
    std::vector<std::uint64_t> cc_distinct;
    std::vector<std::uint64_t> cc_proxy_nodes;
    std::vector<std::uint32_t> cc_ids;
    std::vector<std::uint32_t> cc_ids_len;
    std::vector<std::uint32_t> cc_gen;
    // Last flood generation forwarded through this level.
    std::vector<std::uint32_t> flood_seen;
    std::size_t used = 0;

    std::size_t size() const noexcept { return stay_in.size(); }
    /// Next slot index: recycles (reset in place) or grows every column.
    std::uint32_t acquire();
  };

  /// One entry of a level's arrival list: `count` units came in over `port`.
  struct InEntry {
    std::uint64_t count;
    Port port;
    std::uint32_t next;  ///< arena index of the next entry | kNil
  };
  /// One entry of a level's departure list.
  struct OutEntry {
    Port port;
    std::uint32_t next;
  };

  /// Trail of one origin at one node: (level, pool index) sorted by level.
  /// Typically a handful of entries — binary search beats any hash here.
  struct NodeTrail {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> refs;
  };

  /// All engine state of one interned origin. Trail storage (slots + level
  /// pool + port arenas) is recycled via cursors on clear, so re-walking
  /// origins reuse warm capacity instead of churning the allocator.
  struct OriginState {
    NodeId node = 0;
    std::uint32_t length = 0;     ///< latest walk length (0 = no trails)
    std::uint32_t flood_gen = 0;  ///< per-origin flood generation counter
    SlotMap slot_of;              ///< node -> slot index | kNoSlot
    std::vector<NodeId> touched;  ///< nodes with a slot
    std::vector<NodeTrail> slots;
    std::size_t slots_used = 0;
    LevelPool pool;
    std::vector<InEntry> in_arena;    ///< arrival-list entries, all levels
    std::vector<OutEntry> out_arena;  ///< departure-list entries
    std::vector<NodeId> proxies;
  };

  /// In-flight convergecast aggregate: the counters plus the id set as a
  /// WordPool (handle, len). The engine's internal currency; materialized
  /// into a ReplyPayload only at the protocol boundary.
  struct PooledReply {
    std::uint64_t distinct_proxies = 0;
    std::uint64_t proxy_nodes = 0;
    std::uint32_t ids = WordPool::kNull;
    std::uint32_t len = 0;
  };

  /// A pending (node, origin, level, units) token bucket of the walk stage.
  /// Partitioned by the node's transport shard and sorted per shard by
  /// (node, origin, level desc); concatenating the shard buckets in shard
  /// order is the same global order the unsharded engine sorted into, so the
  /// coalesced RNG draws are identical.
  struct Pending {
    NodeId node = 0;
    NodeId origin = 0;
    std::uint32_t level = 0;
    std::uint64_t count = 0;
  };

  OriginState& intern(NodeId origin);
  OriginState* find_origin(NodeId origin) noexcept;
  const OriginState* find_origin(NodeId origin) const noexcept;

  void clear_origin(NodeId origin);
  /// Pool slot of (node, r), creating the level if absent.
  std::uint32_t level_at(OriginState& os, NodeId node, std::uint32_t r);
  /// Pool slot of (node, r) | kNil.
  std::uint32_t find_level(const OriginState& os, NodeId node,
                           std::uint32_t r) const noexcept;

  /// Walk-stage helper: disposes `count` units at (node, origin, r).
  void dispose_units(OriginState& os, NodeId node, std::uint32_t r,
                     std::uint64_t count, std::vector<Pending>& next);

  /// Records `count` units arriving at level slot `lv` over `port`.
  void note_arrival(OriginState& os, std::uint32_t lv, Port port,
                    std::uint64_t count);

  /// Convergecast plumbing between the pooled and materialized forms.
  PooledReply intern_reply(const std::uint64_t* ids, std::uint32_t len,
                           std::uint64_t distinct, std::uint64_t proxies);
  ReplyPayload materialize(PooledReply& r);  ///< frees r's pooled buffer
  void free_reply(PooledReply& r);
  /// Folds `from` into `into` (sorted set-union of the id buffers, counter
  /// sums); both source buffers are recycled.
  void merge_reply(PooledReply& into, PooledReply& from);

  /// Convergecast helper: credits `units`/`payload` to (node, origin, r) and
  /// cascades completions (locally through stay-links, remotely via sends).
  void credit(NodeId node, NodeId origin, std::uint32_t r, std::uint64_t units,
              PooledReply payload, std::vector<WalkEvent>& events);

  /// Flood helper: processes payload at (node, origin, r) cascading locally
  /// through stay-links and remotely via out_ports. `gen` identifies the
  /// flood generation for deduplication.
  void flood_at(NodeId node, NodeId origin, std::uint32_t r, std::uint32_t gen,
                IdSpan ids, std::vector<WalkEvent>& events);

  /// Unicast helper: advances toward the origin from (node, origin, r).
  void unicast_at(NodeId node, NodeId origin, std::uint32_t r,
                  std::vector<std::uint64_t> ids,
                  std::vector<WalkEvent>& events);

  std::uint32_t token_bits(std::uint32_t remaining) const;
  std::uint32_t payload_bits(std::size_t id_count) const;

  const Graph* g_;
  Network* net_;
  Rng* rng_;
  WalkConfig config_;
  std::uint32_t id_bits_;
  std::uint32_t base_bits_;

  std::vector<std::uint32_t> origin_index_;  ///< node -> interned index
  std::vector<OriginState> origins_;

  /// Per-node registrations (origin -> units), sorted by origin.
  std::vector<std::vector<Registration>> registrations_;

  std::uint32_t cc_gen_ = 0;  ///< bumped by begin_convergecast (state reset)
  WordPool cc_pool_;          ///< id-set buffers, rewound per generation

  /// Walk-stage scratch: one token bucket per transport shard, sorted in
  /// parallel via Network::run_on_shards.
  std::vector<std::vector<Pending>> shard_pending_;

  const std::vector<NodeId> empty_nodes_;
};

}  // namespace wcle
