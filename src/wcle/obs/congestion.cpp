#include "wcle/obs/congestion.hpp"

#include <cmath>

#include "wcle/graph/spectral.hpp"
#include "wcle/support/bits.hpp"

namespace wcle {

namespace {

/// Directed edge key: src in the high word, dst in the low word — ordered
/// map iteration is then deterministic and src-major.
std::uint64_t edge_key(std::uint32_t src, std::uint32_t dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}

struct EdgeLoad {
  std::uint64_t messages = 0;
  std::uint64_t walkers = 0;
};

}  // namespace

CongestionReport analyze_congestion(const std::vector<TraceWalkHop>& hops) {
  CongestionReport report;
  std::vector<double> round_maxima;
  std::map<std::uint64_t, EdgeLoad> edges;  // one round at a time

  std::size_t i = 0;
  while (i < hops.size()) {
    const std::uint64_t round = hops[i].round;
    edges.clear();
    RoundCongestion rc;
    rc.round = round;
    for (; i < hops.size() && hops[i].round == round; ++i) {
      const TraceWalkHop& h = hops[i];
      EdgeLoad& load = edges[edge_key(h.src, h.dst)];
      load.messages += 1;
      load.walkers += h.count;
      rc.messages += 1;
      rc.walkers += h.count;
      report.messages_by_tag[h.tag] += 1;
    }
    rc.busy_edges = edges.size();
    for (const auto& [key, load] : edges) {
      (void)key;
      if (load.messages > rc.max_edge_messages)
        rc.max_edge_messages = load.messages;
      if (load.walkers > rc.max_edge_walkers)
        rc.max_edge_walkers = load.walkers;
    }
    report.total_messages += rc.messages;
    report.total_walkers += rc.walkers;
    if (rc.max_edge_messages > report.max_edge_messages)
      report.max_edge_messages = rc.max_edge_messages;
    if (rc.max_edge_walkers > report.max_edge_walkers)
      report.max_edge_walkers = rc.max_edge_walkers;
    round_maxima.push_back(static_cast<double>(rc.max_edge_messages));
    report.rounds.push_back(rc);
  }
  report.round_max_messages = summarize(std::move(round_maxima));
  return report;
}

double lemma12_bound(std::uint64_t n, double phi) {
  if (n == 0 || phi <= 0.0) return 0.0;
  const double dn = static_cast<double>(n);
  const double lg = std::log2(dn > 2.0 ? dn : 2.0);
  return std::sqrt(dn / phi) * lg * lg;
}

Lemma12Envelope lemma12_envelope(const Graph& g, std::uint32_t iters) {
  Lemma12Envelope env;
  const double gap = spectral_gap(g, iters);
  const CheegerBounds cheeger = cheeger_bounds(gap);
  env.phi_lower = cheeger.lower;
  env.phi_upper = conductance_sweep(g, iters);
  env.phi = env.phi_upper;
  env.bound = lemma12_bound(g.node_count(), env.phi);
  return env;
}

}  // namespace wcle
