#include "wcle/obs/registry.hpp"

#include <sstream>
#include <utility>

#include "wcle/support/bits.hpp"
#include "wcle/support/json.hpp"

namespace wcle {

namespace {
constexpr std::size_t kLog2Buckets = 65;  // bucket 0 + bit widths 1..64
}  // namespace

std::size_t StatRegistry::counter(std::string name) {
  counter_names_.push_back(std::move(name));
  counters_.push_back(0);
  return counters_.size() - 1;
}

std::size_t StatRegistry::gauge(std::string name) {
  gauge_names_.push_back(std::move(name));
  gauges_.push_back(0);
  return gauges_.size() - 1;
}

std::size_t StatRegistry::histogram(std::string name) {
  histogram_names_.push_back(std::move(name));
  Histogram h;
  h.buckets.assign(kLog2Buckets, 0);
  histograms_.push_back(std::move(h));
  return histograms_.size() - 1;
}

void StatRegistry::observe(std::size_t histogram_handle, std::uint64_t value) {
  Histogram& h = histograms_[histogram_handle];
  if (h.count == 0 || value < h.min) h.min = value;
  if (value > h.max) h.max = value;
  h.count += 1;
  h.sum += value;
  h.buckets[value == 0 ? 0 : floor_log2(value) + 1] += 1;
}

std::vector<ScalarSnapshot> StatRegistry::counters() const {
  std::vector<ScalarSnapshot> out;
  out.reserve(counters_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i)
    out.push_back({counter_names_[i], counters_[i]});
  return out;
}

std::vector<ScalarSnapshot> StatRegistry::gauges() const {
  std::vector<ScalarSnapshot> out;
  out.reserve(gauges_.size());
  for (std::size_t i = 0; i < gauges_.size(); ++i)
    out.push_back({gauge_names_[i], gauges_[i]});
  return out;
}

std::vector<HistogramSnapshot> StatRegistry::histograms() const {
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const Histogram& h = histograms_[i];
    out.push_back(
        {histogram_names_[i], h.count, h.sum, h.min, h.max, h.buckets});
  }
  return out;
}

std::string to_json(const StatRegistry& registry) {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const ScalarSnapshot& c : registry.counters()) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(c.name) << "\":" << c.value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const ScalarSnapshot& g : registry.gauges()) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(g.name) << "\":" << g.value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& h : registry.histograms()) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(h.name) << "\":{\"count\":" << h.count
        << ",\"sum\":" << h.sum << ",\"min\":" << h.min << ",\"max\":" << h.max
        << "}";
  }
  out << "}}";
  return out.str();
}

void StatRegistry::reset() {
  for (std::uint64_t& c : counters_) c = 0;
  for (std::uint64_t& g : gauges_) g = 0;
  for (Histogram& h : histograms_) {
    h.count = h.sum = h.min = h.max = 0;
    for (std::uint64_t& b : h.buckets) b = 0;
  }
}

}  // namespace wcle
