// wcle::obs statistics registry: named counters, high-water gauges, and
// power-of-two histograms with a register-then-update discipline. All storage
// is sized at registration time, so the update path (add / set_max / observe)
// never allocates and is safe to call from inside a begin-no-alloc region.
// There are no wall clocks anywhere in obs — ScopedPhaseTimer measures in
// transport rounds (or any caller-supplied monotone tick), which keeps every
// derived statistic a deterministic function of the run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wcle {

/// Snapshot of one histogram: log2 buckets. observe(v) lands in bucket 0 for
/// v == 0 and bucket bit_width(v) otherwise, so bucket i >= 1 covers
/// [2^(i-1), 2^i - 1] and the layout is fixed at 65 buckets regardless of
/// the value range.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;  ///< 65 log2 buckets
};

/// Named scalar statistic (counter or gauge) in a registry snapshot.
struct ScalarSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

class StatRegistry {
 public:
  /// Registers a monotone counter; returns its handle. Registration may
  /// allocate — do it before entering any allocation-free region.
  std::size_t counter(std::string name);
  /// Registers a high-water gauge (set_max keeps the running maximum).
  std::size_t gauge(std::string name);
  /// Registers a log2 histogram (65 buckets, pre-sized at registration).
  std::size_t histogram(std::string name);

  // Update path: index-addressed, allocation-free, no bounds surprises —
  // handles come from the registration calls above.
  void add(std::size_t counter_handle, std::uint64_t delta) {
    counters_[counter_handle] += delta;
  }
  void set_max(std::size_t gauge_handle, std::uint64_t value) {
    if (value > gauges_[gauge_handle]) gauges_[gauge_handle] = value;
  }
  void observe(std::size_t histogram_handle, std::uint64_t value);

  std::uint64_t counter_value(std::size_t handle) const {
    return counters_[handle];
  }
  std::uint64_t gauge_value(std::size_t handle) const {
    return gauges_[handle];
  }

  /// Snapshots in registration order (deterministic for any content).
  std::vector<ScalarSnapshot> counters() const;
  std::vector<ScalarSnapshot> gauges() const;
  std::vector<HistogramSnapshot> histograms() const;

  /// Zeroes every value; registered names and handles survive.
  void reset();

 private:
  struct Histogram {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::vector<std::uint64_t> buckets;  ///< always 65 entries
  };
  std::vector<std::string> counter_names_;
  std::vector<std::uint64_t> counters_;
  std::vector<std::string> gauge_names_;
  std::vector<std::uint64_t> gauges_;
  std::vector<std::string> histogram_names_;
  std::vector<Histogram> histograms_;
};

/// JSON object over a registry snapshot: {"counters":{name:value,...},
/// "gauges":{...},"histograms":{name:{count,sum,min,max},...}} with entries
/// in registration order. Histogram buckets are folded to the four scalar
/// aggregates — the /metricz surface, not the Perfetto exporter.
std::string to_json(const StatRegistry& registry);

/// RAII phase timer over a caller-supplied monotone tick (typically the
/// absolute transport round): records `*clock - start` into a registry
/// histogram when the scope closes. Rounds, not wall time — the recorded
/// durations replay bit-identically.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(StatRegistry& registry, std::size_t histogram_handle,
                   const std::uint64_t& clock)
      : registry_(&registry),
        histogram_(histogram_handle),
        clock_(&clock),
        start_(clock) {}
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;
  ~ScopedPhaseTimer() { registry_->observe(histogram_, *clock_ - start_); }

 private:
  StatRegistry* registry_;
  std::size_t histogram_;
  const std::uint64_t* clock_;
  std::uint64_t start_;
};

}  // namespace wcle
