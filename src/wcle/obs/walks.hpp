// Per-walk path and lifetime statistics over a recorded hop stream. Hop
// sampling is by origin (`--trace-walks=K` keeps origins with origin % K ==
// 0), so every walk that appears here appears with its complete path — the
// per-walk numbers are exact for the sampled origins, not estimates.
#pragma once

#include <cstdint>
#include <vector>

#include "wcle/trace/recorder.hpp"

namespace wcle {

/// Lifetime statistics of one traced walk origin.
struct WalkSummary {
  std::uint32_t origin = 0;
  std::uint64_t hops = 0;          ///< token messages carrying this origin
  std::uint64_t walkers = 0;       ///< walker multiplicity moved in total
  std::uint64_t first_round = 0;   ///< round of the first delivery
  std::uint64_t last_round = 0;    ///< round of the last delivery
  std::uint64_t max_count = 0;     ///< coalescing high-water (walkers/message)
  std::uint64_t unique_edges = 0;  ///< distinct directed edges used
  std::uint64_t unique_nodes = 0;  ///< distinct nodes visited (dst endpoints)
};

/// Groups a hop stream by origin; output is sorted by origin ascending.
std::vector<WalkSummary> summarize_walks(
    const std::vector<TraceWalkHop>& hops);

}  // namespace wcle
