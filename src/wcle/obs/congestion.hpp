// Congestion accounting over recorded walk-hop streams (`--trace-walks`):
// per-round directed-edge load aggregation, the distribution of per-round
// maximum edge loads, and the paper's Lemma 12 envelope sqrt(n/phi) *
// polylog(n) with phi taken from graph/spectral. This is the offline half of
// the obs tentpole — the recorder collects hops without perturbing the run,
// and this pass makes the whp congestion bound visible next to the data.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "wcle/graph/graph.hpp"
#include "wcle/support/stats.hpp"
#include "wcle/trace/recorder.hpp"

namespace wcle {

/// Aggregated walk-token load of one transport round.
struct RoundCongestion {
  std::uint64_t round = 0;
  std::uint64_t messages = 0;    ///< coalesced token messages delivered
  std::uint64_t walkers = 0;     ///< walker multiplicity (sum of counts)
  std::uint64_t busy_edges = 0;  ///< distinct directed edges carrying tokens
  /// Lemma 12 quantities: the heaviest directed edge this round, in
  /// messages (= B-bit quanta at standard bandwidth) and in walkers.
  std::uint64_t max_edge_messages = 0;
  std::uint64_t max_edge_walkers = 0;
};

/// Whole-run congestion report derived from a hop stream.
struct CongestionReport {
  std::vector<RoundCongestion> rounds;  ///< rounds with traffic, ascending
  std::uint64_t total_messages = 0;     ///< == hop record count
  std::uint64_t total_walkers = 0;
  std::uint64_t max_edge_messages = 0;  ///< max over all rounds
  std::uint64_t max_edge_walkers = 0;
  /// Hop records per transport tag; at `--trace-walks=1` each per-tag total
  /// reconciles exactly with Metrics::congest_messages_by_tag[tag].
  std::map<std::uint8_t, std::uint64_t> messages_by_tag;
  /// Distribution of per-round max-edge load (messages), over traffic rounds.
  Summary round_max_messages;
};

/// Builds the report. Hops must be in recording order (rounds
/// non-decreasing) — exactly what TraceRecorder::walk_hops() and
/// TraceRunData::hops provide.
CongestionReport analyze_congestion(const std::vector<TraceWalkHop>& hops);

/// The Lemma 12 congestion envelope evaluated for a concrete graph:
/// sqrt(n/phi) * log2(n)^2 walkers per edge per round, with the polylog
/// factor fixed at log2(n)^2 (the paper leaves the exponent inside polylog;
/// squaring keeps the envelope safely above the whp bound at the sizes the
/// harness runs while preserving the sqrt(n/phi) shape the plot is about).
struct Lemma12Envelope {
  double phi = 0.0;        ///< conductance estimate actually used (upper)
  double phi_lower = 0.0;  ///< Cheeger lower bound from the spectral gap
  double phi_upper = 0.0;  ///< sweep-cut upper bound
  double bound = 0.0;      ///< sqrt(n/phi) * log2(n)^2
};

/// Evaluates sqrt(n/phi) * log2(n)^2 (0 when n == 0 or phi <= 0).
double lemma12_bound(std::uint64_t n, double phi);

/// Computes conductance bounds for `g` via graph/spectral (power iteration
/// with `iters` steps + sweep cut) and evaluates the envelope at the
/// sweep-cut upper bound — the conservative choice: a larger phi gives a
/// smaller envelope, so load under this line is under every candidate line.
Lemma12Envelope lemma12_envelope(const Graph& g, std::uint32_t iters = 2000);

}  // namespace wcle
