#include "wcle/obs/walks.hpp"

#include <map>
#include <set>

namespace wcle {

std::vector<WalkSummary> summarize_walks(
    const std::vector<TraceWalkHop>& hops) {
  struct Accum {
    WalkSummary sum;
    std::set<std::uint64_t> edges;
    std::set<std::uint32_t> nodes;
  };
  std::map<std::uint32_t, Accum> by_origin;
  for (const TraceWalkHop& h : hops) {
    Accum& a = by_origin[h.origin];
    if (a.sum.hops == 0) {
      a.sum.origin = h.origin;
      a.sum.first_round = h.round;
    }
    a.sum.hops += 1;
    a.sum.walkers += h.count;
    a.sum.last_round = h.round;
    if (h.count > a.sum.max_count) a.sum.max_count = h.count;
    a.edges.insert((static_cast<std::uint64_t>(h.src) << 32) | h.dst);
    a.nodes.insert(h.dst);
  }
  std::vector<WalkSummary> out;
  out.reserve(by_origin.size());
  for (auto& [origin, a] : by_origin) {
    (void)origin;
    a.sum.unique_edges = a.edges.size();
    a.sum.unique_nodes = a.nodes.size();
    out.push_back(a.sum);
  }
  return out;
}

}  // namespace wcle
