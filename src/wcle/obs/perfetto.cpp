#include "wcle/obs/perfetto.hpp"

#include <ostream>
#include <string>

#include "wcle/obs/congestion.hpp"
#include "wcle/support/json.hpp"

namespace wcle {

namespace {

/// Emits one event object, managing the comma between array elements.
class EventStream {
 public:
  explicit EventStream(std::ostream& out) : out_(&out) {}

  std::ostream& begin() {
    *out_ << (first_ ? "\n  " : ",\n  ");
    first_ = false;
    return *out_;
  }

 private:
  std::ostream* out_;
  bool first_ = true;
};

void thread_name(EventStream& ev, std::uint64_t pid, std::uint64_t tid,
                 const char* name) {
  ev.begin() << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
             << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << name
             << "\"}}";
}

void counter(EventStream& ev, std::uint64_t pid, std::uint64_t ts,
             const char* name, const char* key, std::uint64_t value) {
  ev.begin() << "{\"ph\":\"C\",\"pid\":" << pid << ",\"tid\":0,\"ts\":" << ts
             << ",\"name\":\"" << name << "\",\"args\":{\"" << key
             << "\":" << value << "}}";
}

void export_run(EventStream& ev, const TraceRunData& run) {
  // Process = run; its ordinal keeps distinct runs side by side in the UI.
  const std::uint64_t pid = run.meta.run + 1;
  ev.begin() << "{\"ph\":\"M\",\"pid\":" << pid
             << ",\"name\":\"process_name\",\"args\":{\"name\":\"run "
             << run.meta.run << ": " << json_escape(run.meta.algorithm)
             << " on " << json_escape(run.meta.family) << " n=" << run.meta.n
             << " seed=" << run.meta.seed << "\"}}";
  thread_name(ev, pid, 0, "transport");
  thread_name(ev, pid, 1, "phases");
  if (!run.hops.empty()) thread_name(ev, pid, 2, "walks");

  for (const TraceRound& r : run.rounds) {
    counter(ev, pid, r.round, "sends", "sends", r.sends);
    counter(ev, pid, r.round, "quanta", "quanta", r.quanta);
    counter(ev, pid, r.round, "delivered", "delivered", r.delivered);
    counter(ev, pid, r.round, "backlog", "backlog", r.backlog);
  }

  // Phases: each kPhase event opens a slice that the next kPhase (or the
  // last recorded round) closes. Other events render as instants.
  const std::uint64_t end_round =
      run.rounds.empty() ? 0 : run.rounds.back().round;
  const TraceEvent* open_phase = nullptr;
  for (const TraceEvent& e : run.events) {
    if (e.kind == TraceEventKind::kPhase) {
      if (open_phase) {
        const std::uint64_t dur = e.round > open_phase->round
                                      ? e.round - open_phase->round
                                      : 1;
        ev.begin() << "{\"ph\":\"X\",\"pid\":" << pid
                   << ",\"tid\":1,\"ts\":" << open_phase->round
                   << ",\"dur\":" << dur << ",\"name\":\""
                   << json_escape(open_phase->label) << "\",\"args\":{\"a\":"
                   << open_phase->a << "}}";
      }
      open_phase = &e;
      continue;
    }
    ev.begin() << "{\"ph\":\"i\",\"pid\":" << pid
               << ",\"tid\":1,\"ts\":" << e.round << ",\"s\":\"t\",\"name\":\""
               << trace_event_kind_name(e.kind) << "\",\"args\":{\"a\":" << e.a
               << ",\"b\":" << e.b << "}}";
  }
  if (open_phase) {
    const std::uint64_t dur =
        end_round > open_phase->round ? end_round - open_phase->round : 1;
    ev.begin() << "{\"ph\":\"X\",\"pid\":" << pid
               << ",\"tid\":1,\"ts\":" << open_phase->round
               << ",\"dur\":" << dur << ",\"name\":\""
               << json_escape(open_phase->label)
               << "\",\"args\":{\"a\":" << open_phase->a << "}}";
  }

  if (run.hops.empty()) return;
  const CongestionReport congestion = analyze_congestion(run.hops);
  for (const RoundCongestion& rc : congestion.rounds) {
    ev.begin() << "{\"ph\":\"C\",\"pid\":" << pid
               << ",\"tid\":2,\"ts\":" << rc.round
               << ",\"name\":\"walk_load\",\"args\":{\"messages\":"
               << rc.messages << ",\"walkers\":" << rc.walkers
               << ",\"max_edge\":" << rc.max_edge_messages << "}}";
  }
}

}  // namespace

void write_chrome_trace(std::ostream& out, const TraceFileData& trace) {
  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\""
      << json_escape(trace.header.tool) << "\",\"spec\":\""
      << json_escape(trace.header.spec)
      << "\",\"version\":" << trace.header.version << "},\"traceEvents\":[";
  EventStream ev(out);
  for (const TraceRunData& run : trace.runs) export_run(ev, run);
  out << "\n]}\n";
}

}  // namespace wcle
