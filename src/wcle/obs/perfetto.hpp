// Chrome trace-event exporter: renders a reloaded wcle trace as the JSON
// object format that chrome://tracing and the Perfetto UI load directly.
// The timeline axis is the absolute transport round (1 round = 1 "us" on
// the viewer's clock) — there are no wall clocks anywhere in the pipeline,
// so the exported profile is a deterministic function of the trace bytes.
//
// Track layout, one process per recorded run:
//   tid 0 "transport"  counter tracks from the per-round rows (sends,
//                      quanta, delivered, backlog)
//   tid 1 "phases"     duration slices between successive kPhase events
//                      (the last phase closes at the final recorded round),
//                      instants for every other discrete event
//   tid 2 "walks"      counter tracks from the walk-hop stream (messages,
//                      walkers, max edge load per round; schema v2 only)
#pragma once

#include <iosfwd>

#include "wcle/trace/reader.hpp"

namespace wcle {

/// Writes `trace` as Chrome trace-event JSON ({"traceEvents": [...]}).
void write_chrome_trace(std::ostream& out, const TraceFileData& trace);

}  // namespace wcle
