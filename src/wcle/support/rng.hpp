// Deterministic, fast pseudo-random number generation for simulations.
//
// All randomness in the library flows through `Rng` so that every experiment is
// reproducible from a single 64-bit seed. The generator is xoshiro256**, seeded
// via SplitMix64 (the recommended seeding procedure of its authors). We avoid
// std::mt19937 because its state is large and its distributions are not
// guaranteed to be bit-identical across standard-library implementations;
// every distribution used here is implemented explicitly.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace wcle {

/// SplitMix64 step: used for seeding and for hashing seeds into streams.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** PRNG with explicitly implemented, implementation-independent
/// distributions. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased (rejection).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p) noexcept;

  /// Binomial(n, p) sample. Exact inversion for small n*p, otherwise a
  /// numerically-safe BTPE-free fallback (sum of bernoullis is avoided via
  /// the inverse-transform on the normal approximation with correction by
  /// explicit tail walk). Deterministic given the stream.
  std::uint64_t next_binomial(std::uint64_t n, double p) noexcept;

  /// Derive an independent child stream (hash of this stream's seed and key).
  Rng fork(std::uint64_t key) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace wcle
