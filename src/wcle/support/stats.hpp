// Small statistics toolkit used by the experiment harness: summary statistics
// over repeated trials and least-squares fits on log-log data (to recover
// empirical complexity exponents, e.g. "messages ~ n^0.52").
#pragma once

#include <cstddef>
#include <vector>

namespace wcle {

/// Summary of a sample: count, mean, stddev (population), min/median/max.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

/// Computes a Summary. Empty input yields a zeroed Summary.
Summary summarize(std::vector<double> values);

/// Result of an ordinary least-squares line fit y = slope*x + intercept.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// OLS fit. Requires xs.size() == ys.size(); fewer than 2 points yields zeros.
LineFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys);

/// Fit y = C * x^k by regressing log y on log x; returns {k, log C, r2}.
/// Non-positive values are skipped.
LineFit fit_power_law(const std::vector<double>& xs,
                      const std::vector<double>& ys);

/// Quantile of a sample via linear interpolation, q in [0,1].
double quantile(std::vector<double> values, double q);

}  // namespace wcle
