#include "wcle/support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace wcle {

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  const std::size_t n = values.size();
  s.median = (n % 2 == 1) ? values[n / 2]
                          : 0.5 * (values[n / 2 - 1] + values[n / 2]);
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(n);
  double ss = 0.0;
  for (double v : values) ss += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(ss / static_cast<double>(n));
  return s;
}

LineFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys) {
  LineFit f;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return f;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return f;
  f.slope = (dn * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / dn;
  const double ss_tot = syy - sy * sy / dn;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = ys[i] - (f.slope * xs[i] + f.intercept);
    ss_res += e * e;
  }
  f.r2 = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

LineFit fit_power_law(const std::vector<double>& xs,
                      const std::vector<double>& ys) {
  std::vector<double> lx, ly;
  const std::size_t n = std::min(xs.size(), ys.size());
  lx.reserve(n);
  ly.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (xs[i] > 0.0 && ys[i] > 0.0) {
      lx.push_back(std::log(xs[i]));
      ly.push_back(std::log(ys[i]));
    }
  }
  return fit_line(lx, ly);
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (q <= 0.0) return values.front();
  if (q >= 1.0) return values.back();
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

}  // namespace wcle
