// Bit-size accounting helpers for CONGEST message budgeting.
#pragma once

#include <cstdint>

namespace wcle {

/// ceil(log2(x)) for x >= 1; 0 for x <= 1.
constexpr std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  std::uint32_t bits = 0;
  std::uint64_t v = x - 1;
  while (v > 0) {
    v >>= 1;
    ++bits;
  }
  return bits;
}

/// floor(log2(x)) for x >= 1; 0 for x == 0.
constexpr std::uint32_t floor_log2(std::uint64_t x) noexcept {
  std::uint32_t bits = 0;
  while (x > 1) {
    x >>= 1;
    ++bits;
  }
  return bits;
}

/// Number of bits needed to encode an id drawn from [1, n^4]: 4*ceil(log2 n).
constexpr std::uint32_t id_bits(std::uint64_t n) noexcept {
  return 4 * ceil_log2(n > 1 ? n : 2);
}

/// True if x is a power of two (x >= 1).
constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

}  // namespace wcle
