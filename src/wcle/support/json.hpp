// Dependency-free JSON primitives shared by every layer that renders JSON
// (trace writers below the api, result serialization inside it). Lives in
// support so the trace layer does not have to reach up into api for a
// string-escaper.
#pragma once

#include <string>

namespace wcle {

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& raw);

/// Shortest-round-trip JSON rendering of a double ("null" for NaN/Inf).
/// Integral values render as plain integers ("10", not "1e+01").
std::string json_number(double value);

}  // namespace wcle
