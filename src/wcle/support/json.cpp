#include "wcle/support/json.hpp"

#include <cmath>
#include <cstdio>

namespace wcle {

// Shortest-round-trip double rendering; JSON has no NaN/Inf, map to null.
// Integral values render as plain integers ("10", not the equally-short but
// unreadable "1e+01" the round-trip search would pick).
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  if (std::floor(value) == value && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  if (parsed == value) {
    for (int prec = 1; prec < 17; ++prec) {
      char shorter[32];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, value);
      std::sscanf(shorter, "%lf", &parsed);
      if (parsed == value) return shorter;
    }
  }
  return buf;
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace wcle
