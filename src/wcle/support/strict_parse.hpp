// Strict whole-string numeric parsing shared by every surface that turns
// user-supplied text into numbers (the spec grammar, the family ':'
// parameters): the value parses iff the entire string is consumed, so
// "12abc", "", and locale surprises are rejected uniformly instead of each
// call site hand-rolling its own stod/stoull-with-used check.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace wcle {

/// Whole-string unsigned parse; nullopt on empty, sign, trailing garbage,
/// or overflow.
inline std::optional<std::uint64_t> strict_u64(const std::string& s) {
  if (s.empty() || s[0] == '-' || s[0] == '+') return std::nullopt;
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(s, &used);
    if (used == s.size()) return v;
  } catch (const std::exception&) {
  }
  return std::nullopt;
}

/// Whole-string double parse; nullopt on empty or trailing garbage.
inline std::optional<double> strict_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used == s.size()) return v;
  } catch (const std::exception&) {
  }
  return std::nullopt;
}

}  // namespace wcle
