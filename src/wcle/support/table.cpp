#include "wcle/support/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace wcle {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  if (v != 0.0 && (std::fabs(v) >= 1e7 || std::fabs(v) < 1e-3)) {
    os.setf(std::ios::scientific);
    os.precision(precision - 1);
  } else {
    os.precision(precision);
  }
  os << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_)
      widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c] + 2; ++pad)
        os << ' ';
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::csv_escape(const std::string& cell) {
  // RFC 4180: cells containing the separator, quotes, or line breaks are
  // quoted, with embedded quotes doubled. Extras keys and family/adversary
  // names are free-form strings, so they cannot be trusted to be clean.
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace wcle
