#include "wcle/support/rng.hpp"

#include <cmath>

namespace wcle {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire-style rejection for unbiased bounded integers.
  if (bound <= 1) return 0;
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::uint64_t Rng::next_binomial(std::uint64_t n, double p) noexcept {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - next_binomial(n, 1.0 - p);

  const double np = static_cast<double>(n) * p;
  if (np < 32.0) {
    // Geometric skipping (BG algorithm): expected O(np) iterations. Each
    // geometric gap counts the trials up to and including the next success.
    const double log_q = std::log1p(-p);
    std::uint64_t hits = 0;
    double sum = 0.0;
    for (;;) {
      const double gap =
          std::floor(std::log(1.0 - next_double()) / log_q) + 1.0;
      sum += gap;
      if (sum > static_cast<double>(n)) return hits;
      ++hits;
      if (hits == n) return n;
    }
  }
  // Normal approximation with clamping; adequate for walk-splitting at large
  // counts where relative error of O(1/sqrt(np)) is far below sampling noise.
  const double sigma = std::sqrt(np * (1.0 - p));
  // Box-Muller.
  const double u1 = 1.0 - next_double();
  const double u2 = next_double();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  double value = np + sigma * z + 0.5;
  if (value < 0.0) value = 0.0;
  if (value > static_cast<double>(n)) value = static_cast<double>(n);
  return static_cast<std::uint64_t>(value);
}

Rng Rng::fork(std::uint64_t key) noexcept {
  std::uint64_t mix = s_[0] ^ rotl(key, 31) ^ 0xd1b54a32d192ed03ULL;
  const std::uint64_t seed = splitmix64(mix);
  return Rng(seed);
}

}  // namespace wcle
