// Paper-style table printing and CSV export for bench binaries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace wcle {

/// Accumulates rows of string cells and renders them as an aligned ASCII table
/// (for terminal output, mirroring the rows a paper table would show) or CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; pads/truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant digits.
  static std::string num(double v, int precision = 4);

  /// RFC 4180 cell escaping: quotes cells containing commas, quotes, or
  /// line breaks (embedded quotes doubled); clean cells pass through.
  static std::string csv_escape(const std::string& cell);

  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wcle
