// Minimal dependency-free HTTP/1.1 for the sweep daemon (serve/server.hpp):
// an incremental request parser over a byte buffer (the event loop appends
// raw socket reads, the parser consumes complete requests) and response
// writers for both framings the daemon emits — Content-Length bodies for
// the JSON command surface and chunked transfer coding for the streaming
// results endpoint. Deliberately small: GET/POST, Content-Length request
// bodies, percent-decoded paths and query strings. Anything outside that
// subset is a 4xx, never undefined behavior.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace wcle {

/// One parsed request. Header names are lowercased; values keep their bytes
/// (outer whitespace trimmed). `path` and every query key/value are
/// percent-decoded; `target` is the raw request target.
struct HttpRequest {
  std::string method;
  std::string target;
  std::string path;
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1"
  std::map<std::string, std::string> query;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First value of `name` (lowercase), or "" when absent.
  std::string header(const std::string& name) const;
  /// True when the client asked for (or its HTTP version implies) closing
  /// the connection after this response.
  bool wants_close() const;
};

/// Incremental parser outcome: a buffer can hold zero, one, or several
/// pipelined requests; errors name the status the server must answer with
/// before closing (400 malformed, 413 too large, 501 unsupported framing).
enum class HttpParseStatus { kNeedMore, kRequest, kError };

struct HttpParseResult {
  HttpParseStatus status = HttpParseStatus::kNeedMore;
  HttpRequest request;   ///< valid when status == kRequest
  int error_status = 0;  ///< valid when status == kError
  std::string error;     ///< one-line reason, rendered into the error body
};

/// Hard limits the parser enforces before buffering more input.
inline constexpr std::size_t kHttpMaxHeaderBytes = 64 * 1024;
inline constexpr std::size_t kHttpMaxBodyBytes = 1024 * 1024;

/// Consumes at most one complete request from the front of `in` (erasing
/// the consumed bytes). kNeedMore leaves `in` untouched unless the buffered
/// prefix already violates a limit, which reports kError. After kError the
/// connection must be closed: the buffer is left unusable by design.
HttpParseResult http_parse(std::string& in);

/// Reason phrase for the status codes the daemon emits.
const char* http_status_reason(int status);

/// A complete Content-Length response. `close` adds "Connection: close".
std::string http_response(int status, const std::string& content_type,
                          const std::string& body, bool close);

/// Response head opening a chunked stream (always "Connection: close" —
/// stream ends are signaled by the terminal chunk and the close).
std::string http_stream_head(int status, const std::string& content_type);

/// One chunk of a chunked body. Empty data yields the empty string (a
/// zero-length chunk would terminate the stream).
std::string http_chunk(const std::string& data);

/// The terminal chunk ending a chunked body.
inline constexpr const char* kHttpStreamEnd = "0\r\n\r\n";

/// Percent-decoding ("%41" -> "A", "+" -> " "); malformed escapes are kept
/// verbatim so decoding never fails.
std::string http_unescape(const std::string& text);

}  // namespace wcle
