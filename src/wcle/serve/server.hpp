// wcle::serve — the long-running sweep daemon behind `wcle_cli serve`.
// One poll()-based event loop (event_loop.hpp) owns the sockets and the
// HTTP surface; a JobQueue (jobs.hpp) executes submitted sweeps on a worker
// pool with per-job round-robin fairness; a CellCache (cell_cache.hpp)
// short-circuits cells already computed under the same canonical spec key.
// The streamed results of a job are byte-identical to
// `wcle_cli sweep --format=jsonl` of the same spec, for any worker count —
// the same determinism contract run_sweep gives, lifted across the network
// boundary.
//
// Endpoints:
//   POST /sweep               body = spec tokens (grid grammar; a spec=e1
//                             token selects a builtin, scale=K sizes it)
//                             -> 202 {"job":id,"cells":n,"spec":"..."}
//   GET  /jobs                -> all job statuses
//   GET  /jobs/<id>           -> one job status
//   GET  /jobs/<id>/results   -> chunked JSONL stream, cells in order as
//                             they complete (ends when the job does)
//   GET  /cache               -> cell-cache stats + resident keys
//   GET  /metricz             -> StatRegistry dump (obs to_json)
//   GET  /healthz             -> liveness + drain state
//
// Graceful drain: begin_drain() (or a 'd' byte on wake_fd(), which is what
// the SIGTERM handler writes) stops accepting connections and submissions,
// finishes accepted jobs, lets open streams run to completion, and run()
// returns once the last connection closes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "wcle/serve/cell_cache.hpp"
#include "wcle/serve/event_loop.hpp"
#include "wcle/serve/jobs.hpp"

namespace wcle {

struct ServeConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 8080;
  unsigned workers = 0;  ///< sweep workers; 0 = hardware concurrency
  std::uint64_t cache_max_bytes = 64ull * 1024 * 1024;
};

class Server final : public EventLoopHandler {
 public:
  explicit Server(const ServeConfig& config);

  /// Binds the listen socket (throws on failure). port() is then the
  /// actual port — config.port == 0 binds an ephemeral one (tests).
  void listen();
  std::uint16_t port() const { return loop_.port(); }

  /// Serves until drained. Returns run()'s exit code (0).
  int run();

  /// Thread-safe drain trigger; wake_fd() is the async-signal-safe spelling
  /// (write a 'd' byte from a signal handler).
  void begin_drain() { loop_.begin_drain(); }
  int wake_fd() const { return loop_.wake_fd(); }

  // EventLoopHandler (loop thread only).
  void on_input(Conn& c) override;
  void on_wake() override;
  void on_drain() override;
  void on_close(Conn& c) override;

 private:
  void handle_request(Conn& c, const HttpRequest& req);
  void respond(Conn& c, const HttpRequest& req, int status,
               const std::string& content_type, const std::string& body);
  void start_stream(Conn& c, std::uint64_t job);
  void advance_stream(Conn& c);
  std::string metricz_json();

  ServeConfig config_;
  CellCache cache_;
  EventLoop loop_;
  /// Declared after loop_ (so it is destroyed first): worker threads call
  /// loop_.wake() through on_progress until the queue is gone.
  std::unique_ptr<JobQueue> jobs_;

  // Request counters (loop thread only; /metricz snapshots them into a
  // fresh StatRegistry per request — the registry update path is not
  // thread-safe, so no registry is ever shared across threads).
  std::uint64_t requests_ = 0;
  std::uint64_t bad_requests_ = 0;
  std::uint64_t jobs_submitted_ = 0;
  std::uint64_t streams_opened_ = 0;
};

}  // namespace wcle
