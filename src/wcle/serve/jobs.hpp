// The sweep job queue: each submitted ExperimentSpec becomes a job whose
// cells (the exact run_sweep cell list, via sweep_cells) are executed by a
// fixed pool of worker threads. Scheduling is cell-granular round-robin
// across jobs — a 10,000-cell sweep cannot starve a 4-cell probe submitted
// after it — and every cell consults the CellCache under its canonical spec
// key before simulating. Completed cells are rendered to the same JSONL
// bytes the CLI's JsonlSink writes, in cell order, so streaming a job's
// results is byte-identical to `wcle_cli sweep --format=jsonl` of the same
// spec. Thread-safe throughout; the queue never touches sockets — it calls
// one injected wake callback so the event loop can advance streams.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "wcle/api/sweep.hpp"
#include "wcle/serve/cell_cache.hpp"

namespace wcle {

class JobQueue {
 public:
  /// `workers` threads start immediately (0 picks hardware concurrency).
  /// `cache` may be null (no caching). `on_progress` is invoked — from
  /// worker threads — after every completed cell and must be cheap and
  /// thread-safe (the server passes EventLoop::wake).
  JobQueue(CellCache* cache, unsigned workers,
           std::function<void()> on_progress);
  /// Drains: started cells finish, unstarted cells of accepted jobs still
  /// run to completion, then workers exit.
  ~JobQueue();
  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Accepts a job. Expands and validates the spec eagerly (unknown
  /// algorithms, empty axes, unknown graph families all throw
  /// std::invalid_argument here, so the client gets a 400 at submit time,
  /// not a failed job later). Returns the job id.
  std::uint64_t submit(const ExperimentSpec& spec);

  struct Status {
    bool exists = false;
    std::uint64_t id = 0;
    std::string state;  ///< "queued" | "running" | "done" | "failed"
    std::string spec;   ///< canonical spec string (ExperimentSpec::to_string)
    std::uint64_t cells = 0;
    std::uint64_t completed = 0;
    std::uint64_t cache_hits = 0;
    std::string error;  ///< set when state == "failed"
  };
  Status status(std::uint64_t id) const;

  /// All job statuses, ascending id (the GET /jobs listing).
  std::vector<Status> statuses() const;

  /// Appends to `*out` the JSONL lines of every cell that is complete AND
  /// contiguous from `cursor` (cell order — exactly the CLI byte stream),
  /// advancing `*cursor` past them. Returns true when the stream is
  /// finished: the cursor reached the end (or the job failed — a failed
  /// job's stream ends after the last contiguous completed cell).
  bool stream(std::uint64_t id, std::size_t* cursor, std::string* out) const;

  /// Stops accepting submissions (submit throws std::runtime_error) but
  /// keeps executing everything already accepted.
  void begin_drain();

  /// True when every accepted job has finished (done or failed).
  bool idle() const;

 private:
  struct Job {
    std::uint64_t id = 0;
    ExperimentSpec spec;
    std::string spec_string;
    std::vector<SweepCell> cells;
    std::vector<std::string> keys;   ///< canonical_cell_key per cell
    std::vector<std::string> lines;  ///< rendered JSONL, filled per cell
    std::vector<char> done;
    std::size_t next_unclaimed = 0;
    std::uint64_t completed = 0;
    std::uint64_t cache_hits = 0;
    bool failed = false;
    std::string error;
  };

  void worker_loop();
  Status status_locked(const Job& job) const;

  CellCache* cache_;
  std::function<void()> on_progress_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  /// Round-robin ring of job ids with unclaimed cells: a worker pops the
  /// front, claims ONE cell, and re-appends the id if cells remain.
  std::deque<std::uint64_t> ready_;
  std::uint64_t next_id_ = 0;
  bool draining_ = false;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace wcle
