#include "wcle/serve/event_loop.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace wcle {

namespace {

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("serve: " + what + ": " + std::strerror(errno));
}

}  // namespace

EventLoop::EventLoop(std::string host, std::uint16_t port,
                     EventLoopHandler* handler)
    : host_(std::move(host)), port_(port), handler_(handler) {}

EventLoop::~EventLoop() {
  for (auto& [id, c] : conns_)
    if (c->fd >= 0) ::close(c->fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

void EventLoop::listen() {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (host_ == "*" || host_ == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else {
    const std::string numeric = host_ == "localhost" ? "127.0.0.1" : host_;
    if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1)
      throw std::runtime_error(
          "serve: listen host '" + host_ +
          "' is not an IPv4 address (use a dotted quad, localhost, or *)");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) fail("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0)
    fail("bind " + host_ + ":" + std::to_string(port_));
  if (::listen(listen_fd_, 64) < 0) fail("listen");
  set_nonblocking(listen_fd_);

  // Recover the ephemeral port when the caller asked for 0.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_ = ntohs(bound.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) fail("pipe");
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  set_nonblocking(wake_read_);
  set_nonblocking(wake_write_);
}

void EventLoop::wake() {
  const char byte = 'w';
  // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_, &byte, 1);
}

void EventLoop::begin_drain() {
  const char byte = 'd';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_, &byte, 1);
}

std::vector<Conn*> EventLoop::connections() {
  std::vector<Conn*> out;
  out.reserve(conns_.size());
  for (auto& [id, c] : conns_) out.push_back(c.get());
  return out;
}

void EventLoop::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept errors: retry on the next poll round
    }
    set_nonblocking(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_id_++;
    conns_.emplace(conn->id, std::move(conn));
  }
}

void EventLoop::read_ready(Conn& c) {
  char buf[8192];
  bool got_bytes = false;
  for (;;) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c.in.append(buf, static_cast<std::size_t>(n));
      got_bytes = true;
      continue;
    }
    if (n == 0) {
      c.input_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    c.input_closed = true;  // reset: whatever is buffered is all there is
    c.close_after_flush = true;
    break;
  }
  if (got_bytes || c.input_closed) handler_->on_input(c);
}

void EventLoop::write_ready(Conn& c) {
  while (!c.out.empty()) {
    const ssize_t n =
        ::send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      c.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    // Peer gone (EPIPE/ECONNRESET): drop the rest.
    c.out.clear();
    c.close_after_flush = true;
    return;
  }
}

void EventLoop::close_conn(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  handler_->on_close(*it->second);
  ::close(it->second->fd);
  conns_.erase(it);
}

void EventLoop::start_drain_on_loop() {
  if (draining_) return;
  draining_ = true;
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  handler_->on_drain();
}

int EventLoop::run() {
  if (wake_read_ < 0)
    throw std::logic_error("serve: EventLoop::run before listen()");
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn;  // conn id per pollfd (or ~0 marker)
  while (!(draining_ && conns_.empty())) {
    fds.clear();
    fd_conn.clear();
    fds.push_back({wake_read_, POLLIN, 0});
    fd_conn.push_back(~0ull);
    if (listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn.push_back(~0ull - 1);
    }
    for (auto& [id, c] : conns_) {
      short events = 0;
      if (!c->input_closed) events |= POLLIN;
      if (!c->out.empty()) events |= POLLOUT;
      if (events == 0) {
        // Nothing to wait for: either close now or idle-park on errors.
        if (c->close_after_flush) continue;  // swept below
        events = POLLIN;                     // watch for peer close
      }
      fds.push_back({c->fd, events, 0});
      fd_conn.push_back(id);
    }

    const int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      fail("poll");
    }

    bool woke = false, drain_requested = false;
    if (fds[0].revents & POLLIN) {
      char buf[256];
      for (;;) {
        const ssize_t n = ::read(wake_read_, buf, sizeof(buf));
        if (n <= 0) break;
        for (ssize_t i = 0; i < n; ++i)
          if (buf[i] == 'd') drain_requested = true;
      }
      woke = true;
    }
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (fd_conn[i] == ~0ull - 1) {
        accept_ready();
        continue;
      }
      const auto it = conns_.find(fd_conn[i]);
      if (it == conns_.end()) continue;
      Conn& c = *it->second;
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) read_ready(c);
      if (conns_.count(fd_conn[i]) && (fds[i].revents & POLLOUT))
        write_ready(c);
    }

    if (drain_requested) start_drain_on_loop();
    if (woke) handler_->on_wake();

    // Opportunistic flush (handlers just appended bytes), then sweep
    // connections whose work is done.
    std::vector<std::uint64_t> to_close;
    for (auto& [id, c] : conns_) {
      if (!c->out.empty()) write_ready(*c);
      const bool flushed = c->out.empty();
      if (flushed && c->close_after_flush) to_close.push_back(id);
      else if (flushed && c->input_closed && !c->streaming)
        to_close.push_back(id);
    }
    for (const std::uint64_t id : to_close) close_conn(id);
  }
  return 0;
}

}  // namespace wcle
