// The canonical-spec cell cache: finished sweep cells keyed by
// canonical_cell_key(spec, cell) — the same one-cell replayable spec string
// the trace header writes — so a repeat request for an overlapping grid
// serves shared cells from memory instead of re-simulating them. Safe by
// construction: the key is the complete computational identity of a cell
// (algorithm, graph family + size + graph seed, every resolved knob, trial
// count, base seed), and cell execution is deterministic, so a hit is
// bit-identical to a fresh run. Byte-capped with least-recently-used
// eviction; thread-safe (job workers populate it, the event loop reads
// stats). Shaped after pazpar2's normalization cache: normalize once, reuse
// across sessions.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "wcle/api/trials.hpp"

namespace wcle {

class CellCache {
 public:
  /// `max_bytes` caps the (estimated) resident footprint; 0 disables
  /// caching entirely (every lookup misses, inserts are dropped).
  explicit CellCache(std::uint64_t max_bytes);

  /// What a cell computation produces, minus its position in any particular
  /// grid: the snapped graph shape and the aggregated trials. The caller
  /// re-attaches its own SweepCell to rebuild a CellResult.
  struct Value {
    std::uint64_t n = 0;
    std::uint64_t m = 0;
    TrialStats stats;
  };

  /// True + *out filled on a hit (refreshes recency). Counts hit/miss.
  bool lookup(const std::string& key, Value* out);

  /// Inserts (or refreshes) `key`, then evicts least-recently-used entries
  /// until the byte estimate fits the cap.
  void insert(const std::string& key, const Value& value);

  struct Stats {
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;       ///< current estimated footprint
    std::uint64_t bytes_high = 0;  ///< footprint high-water mark
    std::uint64_t max_bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };
  Stats stats() const;

  /// The GET /cache body: stats plus every resident key (sorted — the map
  /// order) with its byte estimate and trial count.
  std::string to_json() const;

 private:
  struct Entry {
    Value value;
    std::uint64_t bytes = 0;
    std::uint64_t last_use = 0;  ///< recency tick, not wall time
  };

  void evict_locked();

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::uint64_t max_bytes_;
  std::uint64_t bytes_ = 0;
  std::uint64_t bytes_high_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace wcle
