#include "wcle/serve/cell_cache.hpp"

#include <sstream>

#include "wcle/support/json.hpp"

namespace wcle {

namespace {

/// Rough resident footprint of one entry: the key bytes plus the TrialStats
/// payload. TrialStats is a fixed frame of Summary structs plus the extras
/// map, so size it structurally rather than serializing on every insert.
std::uint64_t entry_bytes(const std::string& key,
                          const CellCache::Value& value) {
  std::uint64_t bytes = key.size() + sizeof(CellCache::Value);
  for (const auto& [name, summary] : value.stats.extras)
    bytes += name.size() + sizeof(summary);
  bytes += value.stats.algorithm.size();
  return bytes;
}

}  // namespace

CellCache::CellCache(std::uint64_t max_bytes) : max_bytes_(max_bytes) {}

bool CellCache::lookup(const std::string& key, Value* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  it->second.last_use = ++tick_;
  *out = it->second.value;
  return true;
}

void CellCache::insert(const std::string& key, const Value& value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (max_bytes_ == 0) return;  // caching disabled
  const std::uint64_t bytes = entry_bytes(key, value);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Deterministic cells make a same-key refresh a no-op payload-wise;
    // just bump recency.
    it->second.last_use = ++tick_;
    return;
  }
  ++insertions_;
  entries_[key] = Entry{value, bytes, ++tick_};
  bytes_ += bytes;
  if (bytes_ > bytes_high_) bytes_high_ = bytes_;
  evict_locked();
}

void CellCache::evict_locked() {
  while (bytes_ > max_bytes_ && entries_.size() > 1) {
    // Scan for the least-recently-used entry. The cache holds finished
    // sweep cells — hundreds, not millions — so a linear scan beats the
    // bookkeeping of a second index.
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it)
      if (it->second.last_use < victim->second.last_use) victim = it;
    bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++evictions_;
  }
}

CellCache::Stats CellCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.entries = entries_.size();
  s.bytes = bytes_;
  s.bytes_high = bytes_high_;
  s.max_bytes = max_bytes_;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  return s;
}

std::string CellCache::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"entries\":" << entries_.size() << ",\"bytes\":" << bytes_
      << ",\"bytes_high\":" << bytes_high_ << ",\"max_bytes\":" << max_bytes_
      << ",\"hits\":" << hits_ << ",\"misses\":" << misses_
      << ",\"insertions\":" << insertions_ << ",\"evictions\":" << evictions_
      << ",\"cells\":[";
  bool first = true;
  for (const auto& [key, entry] : entries_) {
    if (!first) out << ",";
    first = false;
    out << "{\"key\":\"" << json_escape(key) << "\",\"bytes\":" << entry.bytes
        << ",\"trials\":" << entry.value.stats.trials << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace wcle
