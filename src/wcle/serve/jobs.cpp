#include "wcle/serve/jobs.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "wcle/api/sink.hpp"

namespace wcle {

JobQueue::JobQueue(CellCache* cache, unsigned workers,
                   std::function<void()> on_progress)
    : cache_(cache), on_progress_(std::move(on_progress)) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned count = workers == 0 ? hw : workers;
  threads_.reserve(count);
  for (unsigned w = 0; w < count; ++w)
    threads_.emplace_back([this] { worker_loop(); });
}

JobQueue::~JobQueue() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    cv_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
}

std::uint64_t JobQueue::submit(const ExperimentSpec& spec) {
  // Expansion validates the whole spec (axes, algorithm names, graph
  // families — sweep_cells builds the graphs) before the job is visible,
  // so a job never fails on malformed input after being accepted.
  auto job = std::make_unique<Job>();
  job->spec = spec;
  job->spec_string = spec.to_string();
  job->cells = sweep_cells(spec);
  job->keys.reserve(job->cells.size());
  for (const SweepCell& cell : job->cells)
    job->keys.push_back(canonical_cell_key(spec, cell));
  job->lines.resize(job->cells.size());
  job->done.assign(job->cells.size(), 0);

  const std::lock_guard<std::mutex> lock(mu_);
  if (draining_ || stopping_)
    throw std::runtime_error("serve: draining, not accepting new jobs");
  job->id = next_id_++;
  const std::uint64_t id = job->id;
  const bool has_cells = !job->cells.empty();
  jobs_.emplace(id, std::move(job));
  if (has_cells) {
    ready_.push_back(id);
    cv_.notify_all();
  }
  return id;
}

void JobQueue::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return !ready_.empty() || stopping_; });
    if (ready_.empty()) {
      if (stopping_) return;
      continue;
    }
    const std::uint64_t id = ready_.front();
    ready_.pop_front();
    Job& job = *jobs_.at(id);
    const std::size_t i = job.next_unclaimed++;
    // Round-robin fairness: one cell per turn, back of the ring if more.
    if (job.next_unclaimed < job.cells.size()) ready_.push_back(id);

    const ExperimentSpec spec = job.spec;
    const SweepCell cell = job.cells[i];
    const std::string key = job.keys[i];
    lock.unlock();

    std::string line;
    bool hit = false;
    bool failed = false;
    std::string error;
    CellCache::Value value;
    if (cache_ && cache_->lookup(key, &value)) {
      hit = true;
    } else {
      try {
        const CellResult result = run_sweep_cell(spec, cell);
        value.n = result.n;
        value.m = result.m;
        value.stats = result.stats;
        if (cache_) cache_->insert(key, value);
      } catch (const std::exception& e) {
        failed = true;
        error = e.what();
      }
    }
    if (!failed) {
      // Re-render under THIS job's cell (its own index and axes): a cache
      // hit from a different grid still yields the exact CLI line.
      CellResult result;
      result.cell = cell;
      result.n = value.n;
      result.m = value.m;
      result.stats = value.stats;
      line = to_json(result);
      line.push_back('\n');
    }

    lock.lock();
    if (failed) {
      if (!job.failed) {
        job.failed = true;
        job.error = error;
      }
    } else {
      job.lines[i] = std::move(line);
      job.done[i] = 1;
      job.completed += 1;
      if (hit) job.cache_hits += 1;
    }
    lock.unlock();
    if (on_progress_) on_progress_();
    lock.lock();
  }
}

JobQueue::Status JobQueue::status_locked(const Job& job) const {
  Status s;
  s.exists = true;
  s.id = job.id;
  s.spec = job.spec_string;
  s.cells = job.cells.size();
  s.completed = job.completed;
  s.cache_hits = job.cache_hits;
  s.error = job.error;
  if (job.failed)
    s.state = "failed";
  else if (job.completed == job.cells.size())
    s.state = "done";
  else if (job.next_unclaimed > 0)
    s.state = "running";
  else
    s.state = "queued";
  return s;
}

JobQueue::Status JobQueue::status(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status{};
  return status_locked(*it->second);
}

std::vector<JobQueue::Status> JobQueue::statuses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Status> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(status_locked(*job));
  return out;
}

bool JobQueue::stream(std::uint64_t id, std::size_t* cursor,
                      std::string* out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return true;  // vanished: end the stream
  const Job& job = *it->second;
  while (*cursor < job.done.size() && job.done[*cursor]) {
    out->append(job.lines[*cursor]);
    ++*cursor;
  }
  if (*cursor >= job.done.size()) return true;
  // A failed job never completes its remaining cells: end after the
  // contiguous prefix so the client is not left hanging.
  return job.failed;
}

void JobQueue::begin_drain() {
  const std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

bool JobQueue::idle() const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, job] : jobs_)
    if (!job->failed && job->completed < job->cells.size()) return false;
  return true;
}

}  // namespace wcle
