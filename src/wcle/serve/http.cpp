#include "wcle/serve/http.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace wcle {

namespace {

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

HttpParseResult parse_error(int status, std::string reason) {
  HttpParseResult r;
  r.status = HttpParseStatus::kError;
  r.error_status = status;
  r.error = std::move(reason);
  return r;
}

/// Splits "a=1&b=2" into decoded pairs; a bare "flag" token maps to "".
void parse_query(const std::string& raw,
                 std::map<std::string, std::string>* out) {
  std::size_t start = 0;
  while (start <= raw.size()) {
    std::size_t amp = raw.find('&', start);
    if (amp == std::string::npos) amp = raw.size();
    const std::string pair = raw.substr(start, amp - start);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos)
        (*out)[http_unescape(pair)] = "";
      else
        (*out)[http_unescape(pair.substr(0, eq))] =
            http_unescape(pair.substr(eq + 1));
    }
    start = amp + 1;
  }
}

}  // namespace

std::string HttpRequest::header(const std::string& name) const {
  for (const auto& [key, value] : headers)
    if (key == name) return value;
  return "";
}

bool HttpRequest::wants_close() const {
  const std::string conn = lowercase(header("connection"));
  if (conn == "close") return true;
  if (version == "HTTP/1.0") return conn != "keep-alive";
  return false;
}

std::string http_unescape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '+') {
      out.push_back(' ');
    } else if (text[i] == '%' && i + 2 < text.size() &&
               hex_digit(text[i + 1]) >= 0 && hex_digit(text[i + 2]) >= 0) {
      out.push_back(static_cast<char>(hex_digit(text[i + 1]) * 16 +
                                      hex_digit(text[i + 2])));
      i += 2;
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

HttpParseResult http_parse(std::string& in) {
  HttpParseResult r;
  const std::size_t head_end = in.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    if (in.size() > kHttpMaxHeaderBytes)
      return parse_error(431, "request header exceeds " +
                                  std::to_string(kHttpMaxHeaderBytes) +
                                  " bytes");
    return r;  // kNeedMore
  }
  if (head_end > kHttpMaxHeaderBytes)
    return parse_error(431, "request header exceeds " +
                                std::to_string(kHttpMaxHeaderBytes) +
                                " bytes");

  // Request line: METHOD SP TARGET SP VERSION.
  const std::string head = in.substr(0, head_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                   : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.find(' ', sp2 + 1) != std::string::npos)
    return parse_error(400, "malformed request line");
  HttpRequest req;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  req.version = line.substr(sp2 + 1);
  if (req.method.empty() || req.target.empty() || req.target[0] != '/')
    return parse_error(400, "malformed request line");
  if (req.version != "HTTP/1.1" && req.version != "HTTP/1.0")
    return parse_error(505, "unsupported protocol version '" + req.version +
                                "'");

  // Headers: "Name: value" per line, names lowercased.
  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string header_line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = header_line.find(':');
    if (colon == std::string::npos || colon == 0)
      return parse_error(400, "malformed header line");
    req.headers.emplace_back(lowercase(trim(header_line.substr(0, colon))),
                             trim(header_line.substr(colon + 1)));
  }

  // Body framing: Content-Length only. Chunked *requests* are refused (the
  // daemon streams chunked responses, it never needs chunked uploads).
  if (lowercase(req.header("transfer-encoding")).find("chunked") !=
      std::string::npos)
    return parse_error(501, "chunked request bodies are not supported");
  std::size_t body_len = 0;
  const std::string length = req.header("content-length");
  if (!length.empty()) {
    if (length.find_first_not_of("0123456789") != std::string::npos ||
        length.size() > 9)
      return parse_error(400, "malformed Content-Length");
    body_len = static_cast<std::size_t>(std::stoul(length));
    if (body_len > kHttpMaxBodyBytes)
      return parse_error(413, "request body exceeds " +
                                  std::to_string(kHttpMaxBodyBytes) +
                                  " bytes");
  }
  const std::size_t total = head_end + 4 + body_len;
  if (in.size() < total) return r;  // kNeedMore (body still arriving)
  req.body = in.substr(head_end + 4, body_len);

  // Split the target into decoded path + query map.
  const std::size_t qmark = req.target.find('?');
  req.path = http_unescape(req.target.substr(0, qmark));
  if (qmark != std::string::npos)
    parse_query(req.target.substr(qmark + 1), &req.query);

  in.erase(0, total);
  r.status = HttpParseStatus::kRequest;
  r.request = std::move(req);
  return r;
}

const char* http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Internal Server Error";
  }
}

std::string http_response(int status, const std::string& content_type,
                          const std::string& body, bool close) {
  std::ostringstream out;
  out << "HTTP/1.1 " << status << " " << http_status_reason(status) << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n";
  if (close) out << "Connection: close\r\n";
  out << "\r\n" << body;
  return out.str();
}

std::string http_stream_head(int status, const std::string& content_type) {
  std::ostringstream out;
  out << "HTTP/1.1 " << status << " " << http_status_reason(status) << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Transfer-Encoding: chunked\r\n"
      << "Connection: close\r\n\r\n";
  return out.str();
}

std::string http_chunk(const std::string& data) {
  if (data.empty()) return "";
  std::ostringstream out;
  out << std::hex << data.size() << "\r\n" << data << "\r\n";
  return out.str();
}

}  // namespace wcle
