// The daemon's reactor: one poll()-based loop over non-blocking sockets,
// shaped after the classic metasearch-daemon select loop (pazpar2's eventl)
// but with the modern trimmings — a self-pipe so worker threads (and signal
// handlers: write(2) is async-signal-safe) can wake the loop, buffered
// per-connection I/O, and an explicit drain protocol for graceful SIGTERM
// shutdown. The loop owns every socket; all connection state is touched only
// from the loop thread. Cross-thread interaction is exactly two calls:
// wake() and begin_drain().
//
// There are deliberately no wall clocks here (the repo-wide banned-rng lint
// rule): the loop blocks in poll() until a socket or the self-pipe is ready,
// so nothing in serve ever reads time.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "wcle/serve/http.hpp"

namespace wcle {

/// Per-connection state. I/O buffers belong to the loop; the fields below
/// the marker belong to the request handler (server.cpp) and ride along so
/// the handler needs no side table keyed by connection.
struct Conn {
  int fd = -1;
  std::uint64_t id = 0;      ///< monotone accept counter (stable identity)
  std::string in;            ///< bytes read, not yet parsed
  std::string out;           ///< bytes to write
  bool input_closed = false;      ///< peer half-closed (read returned 0)
  bool close_after_flush = false; ///< close once `out` drains

  // ---- handler state (serve/server.cpp) ----
  bool streaming = false;         ///< chunked results stream in progress
  std::uint64_t stream_job = 0;   ///< job id the stream follows
  std::size_t stream_cursor = 0;  ///< next cell index to emit
};

/// Loop callbacks. All methods run on the loop thread.
class EventLoopHandler {
 public:
  virtual ~EventLoopHandler() = default;
  /// New input bytes (or EOF) on `c`: parse c.in, append responses to c.out,
  /// set c.close_after_flush / streaming state as needed.
  virtual void on_input(Conn& c) = 0;
  /// The self-pipe was written (worker progress): advance streams.
  virtual void on_wake() = 0;
  /// Drain has begun: listen socket is closed; mark idle connections
  /// close_after_flush. Streaming connections are left to finish.
  virtual void on_drain() = 0;
  /// `c` is about to be destroyed (peer reset, flush complete, ...).
  virtual void on_close(Conn& c) = 0;
};

class EventLoop {
 public:
  /// `host` must be a dotted-quad IPv4 address, "localhost", or "*"
  /// (0.0.0.0). Port 0 binds an ephemeral port (see port()).
  EventLoop(std::string host, std::uint16_t port, EventLoopHandler* handler);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Binds + listens (throws std::runtime_error on failure) and opens the
  /// self-pipe. After this, port() reports the actual bound port.
  void listen();
  std::uint16_t port() const { return port_; }

  /// Runs until drained: begin_drain() (or a 'd' byte on the self-pipe,
  /// e.g. from a signal handler via wake_fd()) closes the listen socket,
  /// lets in-flight responses and streams finish, and returns 0 when the
  /// last connection is gone.
  int run();

  /// Thread-safe: schedules an on_wake() on the loop thread.
  void wake();
  /// Thread-safe and signal-safe (one pipe write): starts the drain.
  void begin_drain();
  /// Write end of the self-pipe, for async-signal-safe drain requests:
  /// write(wake_fd(), "d", 1) from a SIGTERM handler == begin_drain().
  int wake_fd() const { return wake_write_; }

  bool draining() const { return draining_; }

  /// Live connections in accept order (loop thread only). The handler uses
  /// this to push stream chunks on worker progress.
  std::vector<Conn*> connections();

 private:
  void accept_ready();
  void read_ready(Conn& c);
  void write_ready(Conn& c);
  void close_conn(std::uint64_t id);
  void start_drain_on_loop();

  std::string host_;
  std::uint16_t port_ = 0;
  EventLoopHandler* handler_;
  int listen_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  bool draining_ = false;
  std::uint64_t next_id_ = 0;
  /// Keyed by the accept counter, not the fd: ordered iteration is
  /// deterministic and ids are never reused within a process.
  std::map<std::uint64_t, std::unique_ptr<Conn>> conns_;
};

}  // namespace wcle
