#include "wcle/serve/server.hpp"

#include <sstream>
#include <stdexcept>

#include "wcle/api/scenario.hpp"
#include "wcle/obs/registry.hpp"
#include "wcle/support/json.hpp"
#include "wcle/support/strict_parse.hpp"

namespace wcle {

namespace {

std::string error_body(int status, const std::string& detail) {
  return "{\"error\":\"" + json_escape(http_status_reason(status)) +
         "\",\"detail\":\"" + json_escape(detail) + "\"}\n";
}

std::string status_json(const JobQueue::Status& s) {
  std::ostringstream out;
  out << "{\"job\":" << s.id << ",\"state\":\"" << json_escape(s.state)
      << "\",\"spec\":\"" << json_escape(s.spec) << "\",\"cells\":" << s.cells
      << ",\"completed\":" << s.completed
      << ",\"cache_hits\":" << s.cache_hits;
  if (!s.error.empty()) out << ",\"error\":\"" << json_escape(s.error) << "\"";
  out << "}";
  return out.str();
}

/// POST /sweep body -> spec, mirroring `wcle_cli sweep`: whitespace-split
/// tokens; a spec=<e1..e14> token selects a builtin sized by scale=<0|1|2>
/// (default: WCLE_BENCH_SCALE) with the remaining tokens refining it; plain
/// grid-grammar tokens otherwise.
ExperimentSpec spec_from_body(const std::string& body) {
  std::istringstream in(body);
  std::vector<std::string> tokens;
  std::string builtin;
  int scale = default_bench_scale();
  std::string token;
  while (in >> token) {
    if (token.rfind("spec=", 0) == 0) {
      builtin = token.substr(5);
    } else if (token.rfind("scale=", 0) == 0) {
      const auto v = strict_u64(token.substr(6));
      if (!v || *v > 2)
        throw std::invalid_argument("scale=" + token.substr(6) +
                                    " (0 = quick, 1 = default, 2 = extended)");
      scale = static_cast<int>(*v);
    } else {
      tokens.push_back(token);
    }
  }
  if (!builtin.empty())
    return parse_spec_onto(builtin_experiment(builtin, scale), tokens);
  if (tokens.empty())
    throw std::invalid_argument(
        "empty spec (body must hold grid-grammar tokens or spec=<e1..e14>)");
  return parse_spec(tokens);
}

}  // namespace

Server::Server(const ServeConfig& config)
    : config_(config),
      cache_(config.cache_max_bytes),
      loop_(config.host, config.port, this) {
  jobs_ = std::make_unique<JobQueue>(&cache_, config.workers,
                                     [this] { loop_.wake(); });
}

void Server::listen() { loop_.listen(); }

int Server::run() { return loop_.run(); }

void Server::respond(Conn& c, const HttpRequest& req, int status,
                     const std::string& content_type,
                     const std::string& body) {
  if (status >= 400) ++bad_requests_;
  const bool close = req.wants_close() || status >= 400 || loop_.draining();
  c.out += http_response(status, content_type, body, close);
  if (close) c.close_after_flush = true;
}

void Server::on_input(Conn& c) {
  // Drain every complete pipelined request; stop once this connection is
  // committed to a stream or a close.
  while (!c.streaming && !c.close_after_flush) {
    HttpParseResult parsed = http_parse(c.in);
    if (parsed.status == HttpParseStatus::kNeedMore) break;
    if (parsed.status == HttpParseStatus::kError) {
      ++requests_;
      ++bad_requests_;
      c.out += http_response(parsed.error_status, "application/json",
                             error_body(parsed.error_status, parsed.error),
                             /*close=*/true);
      c.close_after_flush = true;
      break;
    }
    handle_request(c, parsed.request);
  }
}

void Server::handle_request(Conn& c, const HttpRequest& req) {
  ++requests_;
  const std::string& path = req.path;

  if (path == "/healthz") {
    if (req.method != "GET")
      return respond(c, req, 405, "application/json",
                     error_body(405, "use GET /healthz"));
    return respond(c, req, 200, "application/json",
                   std::string("{\"ok\":true,\"draining\":") +
                       (loop_.draining() ? "true" : "false") + "}\n");
  }
  if (path == "/metricz") {
    if (req.method != "GET")
      return respond(c, req, 405, "application/json",
                     error_body(405, "use GET /metricz"));
    return respond(c, req, 200, "application/json", metricz_json() + "\n");
  }
  if (path == "/cache") {
    if (req.method != "GET")
      return respond(c, req, 405, "application/json",
                     error_body(405, "use GET /cache"));
    return respond(c, req, 200, "application/json", cache_.to_json() + "\n");
  }
  if (path == "/sweep") {
    if (req.method != "POST")
      return respond(c, req, 405, "application/json",
                     error_body(405, "use POST /sweep with spec tokens"));
    if (loop_.draining())
      return respond(c, req, 503, "application/json",
                     error_body(503, "draining, not accepting new jobs"));
    try {
      const ExperimentSpec spec = spec_from_body(req.body);
      const std::uint64_t id = jobs_->submit(spec);
      ++jobs_submitted_;
      const JobQueue::Status s = jobs_->status(id);
      return respond(c, req, 202, "application/json", status_json(s) + "\n");
    } catch (const std::exception& e) {
      return respond(c, req, 400, "application/json",
                     error_body(400, e.what()));
    }
  }
  if (path == "/jobs") {
    if (req.method != "GET")
      return respond(c, req, 405, "application/json",
                     error_body(405, "use GET /jobs"));
    std::string body = "{\"jobs\":[";
    bool first = true;
    for (const JobQueue::Status& s : jobs_->statuses()) {
      if (!first) body += ",";
      first = false;
      body += status_json(s);
    }
    body += "]}\n";
    return respond(c, req, 200, "application/json", body);
  }
  if (path.rfind("/jobs/", 0) == 0) {
    std::string rest = path.substr(6);
    bool results = false;
    const std::string suffix = "/results";
    if (rest.size() > suffix.size() &&
        rest.compare(rest.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      results = true;
      rest = rest.substr(0, rest.size() - suffix.size());
    }
    const auto id = strict_u64(rest);
    if (!id)
      return respond(c, req, 404, "application/json",
                     error_body(404, "job ids are decimal integers"));
    const JobQueue::Status s = jobs_->status(*id);
    if (!s.exists)
      return respond(c, req, 404, "application/json",
                     error_body(404, "no such job " + rest));
    if (!results) {
      if (req.method != "GET")
        return respond(c, req, 405, "application/json",
                       error_body(405, "use GET /jobs/<id>"));
      return respond(c, req, 200, "application/json", status_json(s) + "\n");
    }
    if (req.method != "GET")
      return respond(c, req, 405, "application/json",
                     error_body(405, "use GET /jobs/<id>/results"));
    return start_stream(c, *id);
  }

  respond(c, req, 404, "application/json",
          error_body(404, "unknown path " + path));
}

void Server::start_stream(Conn& c, std::uint64_t job) {
  ++streams_opened_;
  c.out += http_stream_head(200, "application/jsonl");
  c.streaming = true;
  c.stream_job = job;
  c.stream_cursor = 0;
  advance_stream(c);  // whatever is already complete goes out immediately
}

void Server::advance_stream(Conn& c) {
  if (!c.streaming) return;
  std::string lines;
  const bool finished = jobs_->stream(c.stream_job, &c.stream_cursor, &lines);
  c.out += http_chunk(lines);
  if (finished) {
    c.out += kHttpStreamEnd;
    c.streaming = false;
    c.close_after_flush = true;  // the stream head promised Connection: close
  }
}

void Server::on_wake() {
  for (Conn* c : loop_.connections()) advance_stream(*c);
}

void Server::on_drain() {
  jobs_->begin_drain();
  // Parked keep-alive connections would hold the process open forever;
  // streams are left to finish their job.
  for (Conn* c : loop_.connections())
    if (!c->streaming) c->close_after_flush = true;
}

void Server::on_close(Conn& c) { c.streaming = false; }

std::string Server::metricz_json() {
  // The StatRegistry update path is deliberately not thread-safe, so the
  // daemon never shares one across threads: each /metricz request builds a
  // fresh registry from component-owned counters and serializes it. That
  // keeps obs's register-then-update discipline AND gives a race-free
  // export for free.
  StatRegistry reg;
  const CellCache::Stats cs = cache_.stats();
  std::uint64_t cells_total = 0, cells_completed = 0, jobs_done = 0;
  const std::vector<JobQueue::Status> statuses = jobs_->statuses();
  for (const JobQueue::Status& s : statuses) {
    cells_total += s.cells;
    cells_completed += s.completed;
    if (s.state == "done" || s.state == "failed") ++jobs_done;
  }

  reg.add(reg.counter("serve.http.requests"), requests_);
  reg.add(reg.counter("serve.http.bad_requests"), bad_requests_);
  reg.add(reg.counter("serve.http.streams_opened"), streams_opened_);
  reg.add(reg.counter("serve.jobs.submitted"), jobs_submitted_);
  reg.add(reg.counter("serve.jobs.finished"), jobs_done);
  reg.add(reg.counter("serve.cells.total"), cells_total);
  reg.add(reg.counter("serve.cells.completed"), cells_completed);
  reg.add(reg.counter("serve.cache.hits"), cs.hits);
  reg.add(reg.counter("serve.cache.misses"), cs.misses);
  reg.add(reg.counter("serve.cache.insertions"), cs.insertions);
  reg.add(reg.counter("serve.cache.evictions"), cs.evictions);
  reg.set_max(reg.gauge("serve.cache.entries"), cs.entries);
  reg.set_max(reg.gauge("serve.cache.bytes"), cs.bytes);
  reg.set_max(reg.gauge("serve.cache.bytes_high"), cs.bytes_high);
  reg.set_max(reg.gauge("serve.cache.max_bytes"), cs.max_bytes);
  reg.set_max(reg.gauge("serve.jobs.known"), statuses.size());
  reg.set_max(reg.gauge("serve.connections"), loop_.connections().size());
  reg.set_max(reg.gauge("serve.draining"), loop_.draining() ? 1 : 0);
  return to_json(reg);
}

}  // namespace wcle
