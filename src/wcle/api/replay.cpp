#include "wcle/api/replay.hpp"

#include <algorithm>
#include <sstream>

#include "wcle/api/scenario.hpp"
#include "wcle/api/sweep.hpp"
#include "wcle/trace/reader.hpp"

namespace wcle {

namespace {

std::string describe_round(const TraceRound& r) {
  std::ostringstream out;
  out << "round=" << r.round << " sends=" << r.sends << " quanta=" << r.quanta
      << " delivered=" << r.delivered << " drop_rand=" << r.dropped_rand
      << " drop_crash=" << r.dropped_crash << " drop_link=" << r.dropped_link
      << " backlog=" << r.backlog;
  return out.str();
}

std::string describe_event(const TraceEvent& e) {
  std::ostringstream out;
  out << "round=" << e.round << " kind=" << trace_event_kind_name(e.kind)
      << " a=" << e.a << " b=" << e.b << " label=\"" << e.label << "\"";
  return out.str();
}

std::string describe_meta(const TraceRunMeta& m) {
  std::ostringstream out;
  out << "run=" << m.run << " cell=" << m.cell << " trial=" << m.trial
      << " seed=" << m.seed << " n=" << m.n << " algorithm=" << m.algorithm
      << " family=" << m.family;
  return out.str();
}

bool same_round(const TraceRound& a, const TraceRound& b) {
  return a.round == b.round && a.sends == b.sends && a.quanta == b.quanta &&
         a.delivered == b.delivered && a.dropped_rand == b.dropped_rand &&
         a.dropped_crash == b.dropped_crash &&
         a.dropped_link == b.dropped_link && a.backlog == b.backlog;
}

bool same_event(const TraceEvent& a, const TraceEvent& b) {
  return a.round == b.round && a.kind == b.kind && a.a == b.a && a.b == b.b &&
         a.label == b.label;
}

bool same_meta(const TraceRunMeta& a, const TraceRunMeta& b) {
  return a.run == b.run && a.cell == b.cell && a.trial == b.trial &&
         a.seed == b.seed && a.n == b.n && a.algorithm == b.algorithm &&
         a.family == b.family;
}

/// A two-sided "original vs regenerated" block for one record.
std::string side_by_side(const std::string& what, std::uint64_t run,
                         const std::string& original,
                         const std::string& regenerated) {
  std::ostringstream out;
  out << "first differing record: run " << run << ", " << what << "\n"
      << "  original:    " << original << "\n"
      << "  regenerated: " << regenerated;
  return out.str();
}

/// Walks both parsed streams in record order and describes the first
/// disagreement. Returns an empty string when the decoded records agree
/// (a pure framing difference — e.g. a truncated trailer).
std::string decode_first_difference(const TraceFileData& a,
                                    const TraceFileData& b) {
  const std::size_t runs = std::min(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < runs; ++i) {
    const TraceRunData& ra = a.runs[i];
    const TraceRunData& rb = b.runs[i];
    if (!same_meta(ra.meta, rb.meta))
      return side_by_side("run meta", ra.meta.run, describe_meta(ra.meta),
                          describe_meta(rb.meta));
    const std::size_t rows = std::min(ra.rounds.size(), rb.rounds.size());
    for (std::size_t j = 0; j < rows; ++j)
      if (!same_round(ra.rounds[j], rb.rounds[j]))
        return side_by_side("round row #" + std::to_string(j), ra.meta.run,
                            describe_round(ra.rounds[j]),
                            describe_round(rb.rounds[j]));
    if (ra.rounds.size() != rb.rounds.size()) {
      const bool more_a = ra.rounds.size() > rb.rounds.size();
      const TraceRound& extra =
          more_a ? ra.rounds[rows] : rb.rounds[rows];
      return side_by_side("round row #" + std::to_string(rows), ra.meta.run,
                          more_a ? describe_round(extra) : "<absent>",
                          more_a ? "<absent>" : describe_round(extra));
    }
    const std::size_t evs = std::min(ra.events.size(), rb.events.size());
    for (std::size_t j = 0; j < evs; ++j)
      if (!same_event(ra.events[j], rb.events[j]))
        return side_by_side("event #" + std::to_string(j), ra.meta.run,
                            describe_event(ra.events[j]),
                            describe_event(rb.events[j]));
    if (ra.events.size() != rb.events.size()) {
      const bool more_a = ra.events.size() > rb.events.size();
      const TraceEvent& extra = more_a ? ra.events[evs] : rb.events[evs];
      return side_by_side("event #" + std::to_string(evs), ra.meta.run,
                          more_a ? describe_event(extra) : "<absent>",
                          more_a ? "<absent>" : describe_event(extra));
    }
  }
  if (a.runs.size() != b.runs.size()) {
    std::ostringstream out;
    out << "first differing record: run count — original holds "
        << a.runs.size() << " run(s), regenerated " << b.runs.size();
    return out.str();
  }
  return "";
}

}  // namespace

ReplayReport verify_replay(const std::string& path, unsigned threads,
                           bool diff, std::uint32_t shards) {
  ReplayReport report;
  const std::string original = read_file_bytes(path);
  report.header = parse_trace_header(original, &report.format);
  report.original_bytes = original.size();

  ExperimentSpec spec = parse_spec(report.header.spec);
  // Shards override: regenerate under a different worker-shard count while
  // byte-comparing against the recorded stream (and writing the *original*
  // header, so the comparison is apples-to-apples). A single-value knob
  // leaves the cell grid and its ordering untouched; it only changes how
  // each round is served, which the canonical merge makes unobservable.
  if (shards != 0) spec.knobs["shards"] = {std::to_string(shards)};

  std::ostringstream buf;
  const std::unique_ptr<TraceWriter> writer =
      make_trace_writer(report.format, buf);
  writer->header(report.header);
  const std::vector<CellResult> results =
      run_sweep(spec, /*sinks=*/{}, threads, writer.get());
  report.runs = static_cast<std::uint64_t>(results.size()) *
                static_cast<std::uint64_t>(spec.trials);

  const std::string regenerated = buf.str();
  report.regenerated_bytes = regenerated.size();
  if (regenerated == original) {
    report.ok = true;
    report.detail = "byte-identical: " + std::to_string(report.runs) +
                    " run(s), " + std::to_string(original.size()) + " bytes";
    return report;
  }
  const std::size_t limit = std::min(original.size(), regenerated.size());
  std::size_t at = 0;
  while (at < limit && original[at] == regenerated[at]) ++at;
  report.first_difference = at;
  report.detail = "MISMATCH at byte " + std::to_string(at) + " (original " +
                  std::to_string(original.size()) + " bytes, regenerated " +
                  std::to_string(regenerated.size()) + ")";
  if (diff) {
    try {
      report.diff = decode_first_difference(parse_trace(original),
                                            parse_trace(regenerated));
      if (report.diff.empty())
        report.diff =
            "records decode identically — framing-level difference only "
            "(e.g. a truncated or duplicated trailer)";
    } catch (const std::exception& e) {
      report.diff = std::string("diff decoding failed: ") + e.what();
    }
  }
  return report;
}

}  // namespace wcle
