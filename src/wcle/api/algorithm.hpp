// The unified algorithm surface: every protocol in the library — the paper's
// implicit election (Algorithms 1+2), the explicit variant (Corollary 14),
// and all comparison baselines — is exposed behind one polymorphic
// `Algorithm` interface so the harness, the CLI, the trial runner, and the
// benches can treat them interchangeably. This is what lets Theorem 13 be
// *checked* rather than asserted: many algorithms, one set of run conditions,
// one result schema.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "wcle/core/params.hpp"
#include "wcle/fault/outcome.hpp"
#include "wcle/fault/verdict.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/sim/metrics.hpp"

namespace wcle {

/// Inputs common to every algorithm run. Protocol families ignore the knobs
/// they do not consume (a broadcast does not read c1; an election does not
/// read `source`), which is what keeps one options struct sufficient.
struct RunOptions {
  /// Election-family tunables. `params.seed` is THE seed of the run: every
  /// algorithm derives all randomness from it, so equal options imply
  /// bit-identical results.
  ElectionParams params;
  /// Root / source / initiator for broadcast-style protocols (flood
  /// broadcast, push-pull, BFS tree, tmix estimation).
  NodeId source = 0;
  /// Rumor payload width for broadcast protocols.
  std::uint32_t value_bits = 32;
  /// A-priori mixing time for the known-tmix baseline; 0 = the adapter
  /// estimates it offline (the "oracle" the paper's algorithm does without).
  std::uint32_t tmix_hint = 0;
  /// Walk-length safety factor c3 applied on top of tmix for known-tmix.
  double tmix_multiplier = 2.0;
  /// Per-node probe budget for the port prober; 0 = ceil(sqrt(n)).
  std::uint64_t probe_budget = 0;
  /// Round cap for push-pull (0 = the protocol's generous default).
  std::uint64_t max_rounds = 0;

  std::uint64_t seed() const { return params.seed; }
  void set_seed(std::uint64_t s) { params.seed = s; }
};

/// The uniform outcome schema. `leaders` holds the distinguished node(s) at
/// termination: the elected leader(s) for election protocols, the
/// source/root/initiator for broadcast and diagnostic protocols (documented
/// per adapter). `extras` carries algorithm-specific observables
/// (phases, walk lengths, candidates, tree depth, ...) as ordered key→value
/// pairs so aggregation and serialization need no per-algorithm code.
struct RunResult {
  std::string algorithm;
  std::vector<NodeId> leaders;
  std::uint64_t rounds = 0;
  Metrics totals;
  bool success = false;
  /// Fault exposure of the run (empty = fault-free); adapters copy it from
  /// Network::fault_outcome() so the verdict layer can judge the execution.
  FaultOutcome faults;
  /// Safety/liveness/agreement classification; attached by the harness
  /// (run_trials, CLI run) via attach_verdict — evaluated == false on
  /// results that never passed through it.
  Verdict verdict;
  std::map<std::string, double> extras;

  std::uint64_t leader_count() const { return leaders.size(); }
  /// One-line human-readable rendering (CLI `run` output).
  std::string summary() const;
};

/// Abstract protocol. Implementations are stateless: all run state lives in
/// the call, so one registered instance can serve concurrent trial workers.
class Algorithm {
 public:
  enum class Kind {
    kElection,    ///< elects leader(s); success == exactly one
    kBroadcast,   ///< disseminates from `options.source`; success == complete
    kDiagnostic,  ///< measures a quantity (probing, tmix estimation)
  };

  virtual ~Algorithm() = default;

  /// Registry key: lowercase snake_case, stable across releases.
  virtual std::string name() const = 0;
  /// One-line description with paper provenance (theorem/citation).
  virtual std::string describe() const = 0;
  virtual Kind kind() const = 0;

  /// Whether the protocol's w.h.p. guarantee applies to `g`. Algorithms run
  /// on any connected graph, but e.g. the clique-referee election of [25] is
  /// only correct on complete graphs — the smoke tests consult this before
  /// asserting success.
  virtual bool reliable_on(const Graph& /*g*/) const { return true; }

  /// Static, graph-independent summary of reliable_on-style restrictions and
  /// extra knowledge the protocol assumes ("complete graphs only", "needs a
  /// tmix oracle"). Empty = no caveat. Shown by `wcle_cli list` so
  /// restricted baselines are not silently misread as general.
  virtual std::string caveat() const { return ""; }

  /// True for offline probes (contender sampling, graph profiling) that
  /// measure a quantity without driving the CONGEST transport — their
  /// RunResult carries extras but no rounds/messages.
  virtual bool offline() const { return false; }

  /// Executes one run. Deterministic in `options` (seed included).
  virtual RunResult run(const Graph& g, const RunOptions& options) const = 0;
};

/// Human-readable kind label ("election", "broadcast", "diagnostic").
std::string kind_name(Algorithm::Kind kind);

/// Computes result.verdict from result.faults / leaders / rounds (see
/// fault/verdict.hpp): the at-most-one-surviving-leader safety rule applies
/// to elections, liveness uses options.max_rounds as the round budget
/// (0 = no budget). Idempotent; called once per run by run_trials and the
/// CLI `run` path.
void attach_verdict(const Graph& g, const RunOptions& options,
                    Algorithm::Kind kind, RunResult& result);

}  // namespace wcle
