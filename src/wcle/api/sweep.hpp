// The sweep engine: expands an ExperimentSpec's grid into cells, executes
// every cell through the run_trials worker pool, and streams each cell's
// TrialStats to the attached sinks in deterministic cell order. Cells run in
// parallel across a worker pool, but a cell's trials always use the
// single-threaded trial path and results are emitted in expansion order —
// so the streamed output is bit-identical for ANY thread count (the same
// guarantee run_trials gives within one cell, lifted to the whole grid).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "wcle/api/scenario.hpp"
#include "wcle/api/trials.hpp"

namespace wcle {

class Sink;
class TraceWriter;

/// One point of the expanded grid. `options` is fully resolved (knobs,
/// bandwidth regime, drop probability applied); run_trials supplies the
/// per-trial seeds on top of it.
struct SweepCell {
  std::size_t index = 0;  ///< position in expansion order (post-filter)
  std::string algorithm;
  std::string family;
  std::string bandwidth;
  std::uint64_t requested_n = 0;
  double drop = 0.0;
  double crash = 0.0;
  double linkfail = 0.0;
  std::string adversary = "random";
  std::vector<std::pair<std::string, std::string>> knobs;  ///< resolved
  RunOptions options;
};

/// A finished cell: the resolved graph shape plus the aggregated trials.
struct CellResult {
  SweepCell cell;
  std::uint64_t n = 0;  ///< actual node count after family snapping
  std::uint64_t m = 0;  ///< edge count
  TrialStats stats;
};

/// Expands the grid in the documented axis order (family, n, algorithm,
/// bandwidth, drop, crash, linkfail, adversary, knob combinations).
/// Validates algorithm names against the registry; family strings are
/// validated when the graphs are built.
std::vector<SweepCell> expand_cells(const ExperimentSpec& spec);

/// The exact cell list run_sweep executes: expand_cells plus the
/// skip_unreliable filter (which needs the graphs — an election algorithm
/// that is unreliable on a given family/size is dropped and the survivors
/// re-indexed). Anything that schedules cells independently of run_sweep
/// (the serve job queue) MUST use this, not expand_cells, or its cell
/// indices — and therefore its output bytes — drift from the CLI's.
std::vector<SweepCell> sweep_cells(const ExperimentSpec& spec);

/// Runs one cell exactly as run_sweep would: builds the (family, n) graph
/// with spec.graph_seed, runs spec.trials seeded trials on the
/// single-threaded trial path. Deterministic: depends only on (spec, cell),
/// so results are safe to cache under canonical_cell_key and bit-identical
/// to the same cell inside a full run_sweep.
CellResult run_sweep_cell(const ExperimentSpec& spec, const SweepCell& cell);

/// Runs the sweep: builds each distinct (family, n) graph once, filters
/// unreliable (algorithm, graph) cells when spec.skip_unreliable is set,
/// executes the remaining cells on `threads` workers (0 = hardware
/// concurrency), and streams results to `sinks` in cell order. Returns the
/// results in the same order. Output is independent of `threads`.
///
/// A non-null `trace` (trace/writer.hpp) additionally records every trial's
/// per-round timeline: runs stream to the writer in (cell, trial) order —
/// byte-identical for any worker count — and the writer's trailer is
/// emitted after the last cell. The caller writes the header before calling.
/// Tracing is observational only: aggregates, sink bytes, and return value
/// are unchanged.
std::vector<CellResult> run_sweep(const ExperimentSpec& spec,
                                  const std::vector<Sink*>& sinks = {},
                                  unsigned threads = 0,
                                  TraceWriter* trace = nullptr);

}  // namespace wcle
