// String-keyed registry of every Algorithm the library ships. The built-in
// protocols register on first access (explicit registration from one
// translation unit — immune to the static-initializer dropping that plagues
// self-registration in static libraries); external code can add its own
// algorithms with `add` or the WCLE_REGISTER_ALGORITHM macro.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "wcle/api/algorithm.hpp"

namespace wcle {

class AlgorithmRegistry {
 public:
  /// The process-wide registry, with all built-in algorithms registered.
  static AlgorithmRegistry& instance();

  /// Registers `algorithm` under algorithm->name(). Throws
  /// std::invalid_argument on a duplicate or empty name.
  void add(std::unique_ptr<Algorithm> algorithm);

  /// Lookup; nullptr when absent.
  const Algorithm* find(const std::string& name) const;

  /// Lookup; throws std::out_of_range (message lists known names) if absent.
  const Algorithm& at(const std::string& name) const;

  bool contains(const std::string& name) const { return find(name) != nullptr; }

  /// All registered names, sorted.
  std::vector<std::string> names() const;

  /// All registered algorithms, sorted by name.
  std::vector<const Algorithm*> all() const;

  std::size_t size() const { return algorithms_.size(); }

 private:
  AlgorithmRegistry() = default;
  std::vector<std::unique_ptr<Algorithm>> algorithms_;  // kept name-sorted
};

/// Registers all built-in algorithms into `registry`; called exactly once by
/// AlgorithmRegistry::instance(). Defined in registry.cpp next to the list of
/// factories so adding a protocol is a one-line change.
namespace detail {
void register_builtin_algorithms(AlgorithmRegistry& registry);
}

/// Static-initialization helper for algorithms defined outside the library:
///   WCLE_REGISTER_ALGORITHM(MyAlgorithm);
/// Only use from translation units guaranteed to be linked in (binaries, not
/// static-library members).
struct AlgorithmRegistrar {
  explicit AlgorithmRegistrar(std::unique_ptr<Algorithm> algorithm);
};

#define WCLE_REGISTER_ALGORITHM(cls)                            \
  static ::wcle::AlgorithmRegistrar wcle_registrar_##cls {      \
    std::make_unique<cls>()                                     \
  }

}  // namespace wcle
