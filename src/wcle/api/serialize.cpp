#include "wcle/api/serialize.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace wcle {

namespace {

// The rendering primitives themselves live in support/json.cpp; this file
// only assembles the result/trial schemas on top of them.
std::string num(double v) { return json_number(v); }

void append_summary(std::ostringstream& out, const std::string& key,
                    const Summary& s) {
  out << "\"" << json_escape(key) << "\":{\"count\":" << s.count
      << ",\"mean\":" << num(s.mean) << ",\"stddev\":" << num(s.stddev)
      << ",\"min\":" << num(s.min) << ",\"median\":" << num(s.median)
      << ",\"max\":" << num(s.max) << "}";
}

}  // namespace

std::string to_json(const RunResult& r) {
  std::ostringstream out;
  out << "{\"algorithm\":\"" << json_escape(r.algorithm) << "\""
      << ",\"success\":" << (r.success ? "true" : "false") << ",\"leaders\":[";
  for (std::size_t i = 0; i < r.leaders.size(); ++i)
    out << (i ? "," : "") << r.leaders[i];
  out << "],\"rounds\":" << r.rounds
      << ",\"congest_messages\":" << r.totals.congest_messages
      << ",\"logical_messages\":" << r.totals.logical_messages
      << ",\"total_bits\":" << r.totals.total_bits
      << ",\"max_edge_backlog\":" << r.totals.max_edge_backlog
      << ",\"dropped_messages\":" << r.totals.dropped_messages
      << ",\"crash_dropped_messages\":" << r.totals.crash_dropped_messages
      << ",\"link_dropped_messages\":" << r.totals.link_dropped_messages
      << ",\"pool_msg_slots\":" << r.totals.pool_msg_slots
      << ",\"pool_msg_live_high\":" << r.totals.pool_msg_live_high
      << ",\"pool_id_blocks\":" << r.totals.pool_id_blocks
      << ",\"pool_id_live_high\":" << r.totals.pool_id_live_high
      << ",\"verdict\":{\"evaluated\":"
      << (r.verdict.evaluated ? "true" : "false")
      << ",\"safe\":" << (r.verdict.safe ? "true" : "false")
      << ",\"live\":" << (r.verdict.live ? "true" : "false")
      << ",\"agreement\":" << num(r.verdict.agreement)
      << ",\"surviving\":" << r.verdict.surviving
      << ",\"surviving_leaders\":" << r.verdict.surviving_leaders
      << "},\"extras\":{";
  bool first = true;
  for (const auto& [key, value] : r.extras) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(key) << "\":" << num(value);
  }
  out << "}}";
  return out.str();
}

std::string to_json(const TrialStats& s) {
  std::ostringstream out;
  out << "{\"algorithm\":\"" << json_escape(s.algorithm) << "\""
      << ",\"trials\":" << s.trials << ",\"threads\":" << s.threads
      << ",\"success_rate\":" << num(s.success_rate)
      << ",\"zero_leader_rate\":" << num(s.zero_leader_rate)
      << ",\"multi_leader_rate\":" << num(s.multi_leader_rate)
      << ",\"safety_rate\":" << num(s.safety_rate)
      << ",\"liveness_rate\":" << num(s.liveness_rate)
      << ",\"metrics\":{";
  append_summary(out, "congest_messages", s.congest_messages);
  out << ",";
  append_summary(out, "logical_messages", s.logical_messages);
  out << ",";
  append_summary(out, "total_bits", s.total_bits);
  out << ",";
  append_summary(out, "rounds", s.rounds);
  out << ",";
  append_summary(out, "leader_count", s.leader_count);
  out << ",";
  append_summary(out, "dropped_messages", s.dropped_messages);
  out << ",";
  append_summary(out, "crash_dropped_messages", s.crash_dropped_messages);
  out << ",";
  append_summary(out, "link_dropped_messages", s.link_dropped_messages);
  out << ",";
  append_summary(out, "agreement", s.agreement);
  out << ",";
  append_summary(out, "pool_msg_slots", s.pool_msg_slots);
  out << ",";
  append_summary(out, "pool_msg_live_high", s.pool_msg_live_high);
  out << ",";
  append_summary(out, "pool_id_blocks", s.pool_id_blocks);
  out << ",";
  append_summary(out, "pool_id_live_high", s.pool_id_live_high);
  out << "},\"extras\":{";
  bool first = true;
  for (const auto& [key, summary] : s.extras) {
    if (!first) out << ",";
    first = false;
    append_summary(out, key, summary);
  }
  out << "}}";
  return out.str();
}

}  // namespace wcle
