#include "wcle/api/serialize.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace wcle {

namespace {

// Shortest-round-trip double rendering; JSON has no NaN/Inf, map to null.
// Integral values render as plain integers ("10", not the equally-short but
// unreadable "1e+01" the round-trip search would pick).
std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  if (std::floor(v) == v && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  if (parsed == v) {
    for (int prec = 1; prec < 17; ++prec) {
      char shorter[32];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      std::sscanf(shorter, "%lf", &parsed);
      if (parsed == v) return shorter;
    }
  }
  return buf;
}

void append_summary(std::ostringstream& out, const std::string& key,
                    const Summary& s) {
  out << "\"" << json_escape(key) << "\":{\"count\":" << s.count
      << ",\"mean\":" << num(s.mean) << ",\"stddev\":" << num(s.stddev)
      << ",\"min\":" << num(s.min) << ",\"median\":" << num(s.median)
      << ",\"max\":" << num(s.max) << "}";
}

}  // namespace

std::string json_number(double value) { return num(value); }

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json(const RunResult& r) {
  std::ostringstream out;
  out << "{\"algorithm\":\"" << json_escape(r.algorithm) << "\""
      << ",\"success\":" << (r.success ? "true" : "false") << ",\"leaders\":[";
  for (std::size_t i = 0; i < r.leaders.size(); ++i)
    out << (i ? "," : "") << r.leaders[i];
  out << "],\"rounds\":" << r.rounds
      << ",\"congest_messages\":" << r.totals.congest_messages
      << ",\"logical_messages\":" << r.totals.logical_messages
      << ",\"total_bits\":" << r.totals.total_bits
      << ",\"max_edge_backlog\":" << r.totals.max_edge_backlog
      << ",\"dropped_messages\":" << r.totals.dropped_messages
      << ",\"crash_dropped_messages\":" << r.totals.crash_dropped_messages
      << ",\"link_dropped_messages\":" << r.totals.link_dropped_messages
      << ",\"verdict\":{\"evaluated\":"
      << (r.verdict.evaluated ? "true" : "false")
      << ",\"safe\":" << (r.verdict.safe ? "true" : "false")
      << ",\"live\":" << (r.verdict.live ? "true" : "false")
      << ",\"agreement\":" << num(r.verdict.agreement)
      << ",\"surviving\":" << r.verdict.surviving
      << ",\"surviving_leaders\":" << r.verdict.surviving_leaders
      << "},\"extras\":{";
  bool first = true;
  for (const auto& [key, value] : r.extras) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(key) << "\":" << num(value);
  }
  out << "}}";
  return out.str();
}

std::string to_json(const TrialStats& s) {
  std::ostringstream out;
  out << "{\"algorithm\":\"" << json_escape(s.algorithm) << "\""
      << ",\"trials\":" << s.trials << ",\"threads\":" << s.threads
      << ",\"success_rate\":" << num(s.success_rate)
      << ",\"zero_leader_rate\":" << num(s.zero_leader_rate)
      << ",\"multi_leader_rate\":" << num(s.multi_leader_rate)
      << ",\"safety_rate\":" << num(s.safety_rate)
      << ",\"liveness_rate\":" << num(s.liveness_rate)
      << ",\"metrics\":{";
  append_summary(out, "congest_messages", s.congest_messages);
  out << ",";
  append_summary(out, "logical_messages", s.logical_messages);
  out << ",";
  append_summary(out, "total_bits", s.total_bits);
  out << ",";
  append_summary(out, "rounds", s.rounds);
  out << ",";
  append_summary(out, "leader_count", s.leader_count);
  out << ",";
  append_summary(out, "dropped_messages", s.dropped_messages);
  out << ",";
  append_summary(out, "crash_dropped_messages", s.crash_dropped_messages);
  out << ",";
  append_summary(out, "link_dropped_messages", s.link_dropped_messages);
  out << ",";
  append_summary(out, "agreement", s.agreement);
  out << "},\"extras\":{";
  bool first = true;
  for (const auto& [key, summary] : s.extras) {
    if (!first) out << ",";
    first = false;
    append_summary(out, key, summary);
  }
  out << "}}";
  return out.str();
}

}  // namespace wcle
