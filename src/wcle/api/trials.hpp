// Generic repeated-trial runner over the unified Algorithm interface: seeds
// base_seed..base_seed+trials-1 fan out over a std::thread worker pool, each
// trial derives all randomness from its own seed, and results are aggregated
// in seed order — so the statistics are bit-identical for any thread count,
// including 1. One TrialStats schema serves every registered algorithm.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "wcle/api/algorithm.hpp"
#include "wcle/support/stats.hpp"

namespace wcle {

class TraceRecorder;

/// Aggregates of repeated runs of one algorithm on one graph.
struct TrialStats {
  std::string algorithm;
  int trials = 0;
  unsigned threads = 1;         ///< worker threads actually used
  double success_rate = 0.0;    ///< fraction with result.success
  double zero_leader_rate = 0.0;   ///< runs ending with no distinguished node
  double multi_leader_rate = 0.0;  ///< runs ending with several
  /// Fault-aware verdict rates (fault/verdict.hpp): fraction of runs judged
  /// safe / live. 1.0 on fault-free successful sweeps.
  double safety_rate = 0.0;
  double liveness_rate = 0.0;
  Summary congest_messages;
  Summary logical_messages;
  Summary total_bits;
  Summary rounds;
  Summary leader_count;
  Summary dropped_messages;  ///< random-drop losses (all zero when drop = 0)
  Summary crash_dropped_messages;  ///< crash-stop losses
  Summary link_dropped_messages;   ///< failed-link losses
  Summary agreement;  ///< surviving-coverage fraction per run
  /// Data-plane pool gauges promoted from Network::pool_stats() via Metrics
  /// (obs): message-pool footprint and occupancy high-water marks, so every
  /// sink carries the zero-allocation evidence alongside the message bill.
  Summary pool_msg_slots;
  Summary pool_msg_live_high;
  Summary pool_id_blocks;
  Summary pool_id_live_high;
  /// Per-key summaries of RunResult::extras. A key missing from some trial's
  /// extras is summarized over the trials that reported it.
  std::map<std::string, Summary> extras;
};

/// Runs `trials` seeded executions of `algorithm` on `g` and aggregates.
/// Trial i uses options with seed = base_seed + i (other fields unchanged).
/// `threads` = 0 picks min(hardware_concurrency, trials); any value yields
/// identical TrialStats because per-trial results depend only on the seed.
/// A non-null `traces` is resized to `trials` and trial i records its
/// per-round timeline into (*traces)[i] (trace/recorder.hpp); recording is
/// observational only, so the aggregates are unchanged — and per-trial
/// recorders keep traced trials thread-count-invariant too.
TrialStats run_trials(const Algorithm& algorithm, const Graph& g,
                      RunOptions options, int trials,
                      std::uint64_t base_seed = 1000, unsigned threads = 0,
                      std::vector<TraceRecorder>* traces = nullptr);

}  // namespace wcle
