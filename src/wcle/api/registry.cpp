#include "wcle/api/registry.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "wcle/baselines/bfs_tree.hpp"
#include "wcle/baselines/candidate_flood.hpp"
#include "wcle/baselines/clique_referee.hpp"
#include "wcle/baselines/flood_broadcast.hpp"
#include "wcle/baselines/flood_max.hpp"
#include "wcle/baselines/known_tmix.hpp"
#include "wcle/baselines/port_prober.hpp"
#include "wcle/baselines/push_pull.hpp"
#include "wcle/baselines/territory_election.hpp"
#include "wcle/baselines/tmix_estimator.hpp"
#include "wcle/core/explicit_election.hpp"
#include "wcle/core/leader_election.hpp"

namespace wcle {

// The probe factories are defined in analysis/, which layers *above* api.
// Forward declarations instead of an #include keep the dependency edge
// pointing the right way: analysis supplies the definitions at link time,
// the same adapter-beside-protocol seam the baselines use.
std::unique_ptr<Algorithm> make_contender_stage_algorithm();
std::unique_ptr<Algorithm> make_graph_profile_algorithm();

namespace detail {

void register_builtin_algorithms(AlgorithmRegistry& registry) {
  registry.add(make_election_algorithm());
  registry.add(make_explicit_election_algorithm());
  registry.add(make_flood_max_algorithm());
  registry.add(make_flood_broadcast_algorithm());
  registry.add(make_candidate_flood_algorithm());
  registry.add(make_bfs_tree_algorithm());
  registry.add(make_push_pull_algorithm());
  registry.add(make_port_prober_algorithm());
  registry.add(make_clique_referee_algorithm());
  registry.add(make_territory_election_algorithm());
  registry.add(make_known_tmix_algorithm());
  registry.add(make_tmix_estimator_algorithm());
  registry.add(make_estimate_then_elect_algorithm());
  registry.add(make_contender_stage_algorithm());
  registry.add(make_graph_profile_algorithm());
}

}  // namespace detail

AlgorithmRegistry& AlgorithmRegistry::instance() {
  static AlgorithmRegistry* registry = [] {
    auto* r = new AlgorithmRegistry();
    detail::register_builtin_algorithms(*r);
    return r;
  }();
  return *registry;
}

void AlgorithmRegistry::add(std::unique_ptr<Algorithm> algorithm) {
  if (!algorithm) throw std::invalid_argument("registry: null algorithm");
  const std::string name = algorithm->name();
  if (name.empty()) throw std::invalid_argument("registry: empty name");
  const auto pos = std::lower_bound(
      algorithms_.begin(), algorithms_.end(), name,
      [](const auto& a, const std::string& key) { return a->name() < key; });
  if (pos != algorithms_.end() && (*pos)->name() == name)
    throw std::invalid_argument("registry: duplicate algorithm '" + name +
                                "'");
  algorithms_.insert(pos, std::move(algorithm));
}

const Algorithm* AlgorithmRegistry::find(const std::string& name) const {
  const auto pos = std::lower_bound(
      algorithms_.begin(), algorithms_.end(), name,
      [](const auto& a, const std::string& key) { return a->name() < key; });
  if (pos == algorithms_.end() || (*pos)->name() != name) return nullptr;
  return pos->get();
}

const Algorithm& AlgorithmRegistry::at(const std::string& name) const {
  if (const Algorithm* a = find(name)) return *a;
  std::ostringstream msg;
  msg << "unknown algorithm '" << name << "'; known:";
  for (const auto& a : algorithms_) msg << " " << a->name();
  throw std::out_of_range(msg.str());
}

std::vector<std::string> AlgorithmRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(algorithms_.size());
  for (const auto& a : algorithms_) out.push_back(a->name());
  return out;
}

std::vector<const Algorithm*> AlgorithmRegistry::all() const {
  std::vector<const Algorithm*> out;
  out.reserve(algorithms_.size());
  for (const auto& a : algorithms_) out.push_back(a.get());
  return out;
}

AlgorithmRegistrar::AlgorithmRegistrar(std::unique_ptr<Algorithm> algorithm) {
  AlgorithmRegistry::instance().add(std::move(algorithm));
}

}  // namespace wcle
