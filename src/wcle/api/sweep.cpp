#include "wcle/api/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "wcle/api/registry.hpp"
#include "wcle/api/sink.hpp"
#include "wcle/graph/families.hpp"
#include "wcle/trace/writer.hpp"

namespace wcle {

std::vector<SweepCell> expand_cells(const ExperimentSpec& spec) {
  if (spec.trials <= 0)
    throw std::invalid_argument("sweep: trials must be >= 1");
  if (spec.algorithms.empty() || spec.families.empty() || spec.sizes.empty() ||
      spec.bandwidths.empty() || spec.drops.empty() || spec.crashes.empty() ||
      spec.linkfails.empty() || spec.adversaries.empty())
    throw std::invalid_argument("sweep: every axis needs at least one value");
  for (const std::string& algo : spec.algorithms)
    AlgorithmRegistry::instance().at(algo);  // throws with the known list

  // Knob combinations in alphabetical key order, values in listed order.
  std::vector<std::pair<std::string, std::vector<std::string>>> knob_axes(
      spec.knobs.begin(), spec.knobs.end());
  std::size_t knob_combos = 1;
  for (const auto& [key, values] : knob_axes) {
    if (values.empty())
      throw std::invalid_argument("sweep: knob '" + key + "' has no values");
    knob_combos *= values.size();
  }

  std::vector<SweepCell> cells;
  cells.reserve(spec.cell_count());
  for (const std::string& family : spec.families) {
    for (const std::uint64_t n : spec.sizes) {
      for (const std::string& algo : spec.algorithms) {
        for (const std::string& bandwidth : spec.bandwidths) {
          for (const double drop : spec.drops) {
            for (const double crash : spec.crashes) {
              for (const double linkfail : spec.linkfails) {
                for (const std::string& adversary : spec.adversaries) {
                  for (std::size_t combo = 0; combo < knob_combos; ++combo) {
                    SweepCell cell;
                    cell.index = cells.size();
                    cell.algorithm = algo;
                    cell.family = family;
                    cell.bandwidth = bandwidth;
                    cell.requested_n = n;
                    cell.drop = drop;
                    cell.crash = crash;
                    cell.linkfail = linkfail;
                    cell.adversary = adversary;
                    // Mixed-radix decode of the combo index,
                    // most-significant knob first, so listed value order is
                    // the inner loop.
                    std::size_t rest = combo;
                    std::size_t radix = knob_combos;
                    for (const auto& [key, values] : knob_axes) {
                      radix /= values.size();
                      const std::size_t pick = rest / radix;
                      rest %= radix;
                      cell.knobs.emplace_back(key, values[pick]);
                    }
                    // Bandwidth first, then knobs: an explicit wide=/c1=
                    // knob must win over what the bandwidth regime implies.
                    // Fault axes apply last (the scalar fault knobs —
                    // crash-round, churn windows — only shape the schedule).
                    apply_bandwidth(cell.options, bandwidth);
                    for (const auto& [key, value] : cell.knobs)
                      apply_knob(cell.options, key, value);
                    cell.options.params.drop_probability = drop;
                    cell.options.params.faults.crash_fraction = crash;
                    cell.options.params.faults.linkfail_fraction = linkfail;
                    cell.options.params.faults.adversary = adversary;
                    cells.push_back(std::move(cell));
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

namespace {

using GraphMap = std::map<std::pair<std::string, std::uint64_t>, Graph>;

/// expand_cells + the skip_unreliable filter, sharing the graph map with
/// the caller so run_sweep builds each distinct (family, n) graph exactly
/// once. This is THE cell list: run_sweep and the serve job queue both get
/// their cells (and cell indices) from here, which is what keeps their
/// output bytes identical.
std::vector<SweepCell> cells_with_graphs(const ExperimentSpec& spec,
                                         GraphMap& graphs) {
  std::vector<SweepCell> cells = expand_cells(spec);

  // Build each distinct (family, n) graph once, in expansion order.
  for (const SweepCell& cell : cells) {
    const auto key = std::make_pair(cell.family, cell.requested_n);
    if (!graphs.count(key))
      graphs.emplace(key, make_family(cell.family,
                                      static_cast<NodeId>(cell.requested_n),
                                      spec.graph_seed));
  }

  if (spec.skip_unreliable) {
    std::vector<SweepCell> kept;
    for (SweepCell& cell : cells) {
      const Graph& g = graphs.at({cell.family, cell.requested_n});
      const Algorithm& algo = AlgorithmRegistry::instance().at(cell.algorithm);
      if (algo.kind() == Algorithm::Kind::kElection && !algo.reliable_on(g))
        continue;  // e.g. clique_referee off-clique: not a fair row
      cell.index = kept.size();
      kept.push_back(std::move(cell));
    }
    cells = std::move(kept);
  }
  return cells;
}

}  // namespace

std::vector<SweepCell> sweep_cells(const ExperimentSpec& spec) {
  GraphMap graphs;
  return cells_with_graphs(spec, graphs);
}

CellResult run_sweep_cell(const ExperimentSpec& spec, const SweepCell& cell) {
  const Graph g = make_family(cell.family,
                              static_cast<NodeId>(cell.requested_n),
                              spec.graph_seed);
  CellResult r;
  r.cell = cell;
  r.n = g.node_count();
  r.m = g.edge_count();
  r.stats = run_trials(AlgorithmRegistry::instance().at(cell.algorithm), g,
                       cell.options, spec.trials, spec.base_seed,
                       /*threads=*/1);
  return r;
}

std::vector<CellResult> run_sweep(const ExperimentSpec& spec,
                                  const std::vector<Sink*>& sinks,
                                  unsigned threads, TraceWriter* trace) {
  GraphMap graphs;
  std::vector<SweepCell> cells = cells_with_graphs(spec, graphs);

  for (Sink* sink : sinks)
    if (sink) sink->begin(spec, cells);

  std::vector<CellResult> results(cells.size());
  std::vector<char> done(cells.size(), 0);
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr failure;

  // Each cell's trials run on the single-threaded trial path; parallelism
  // comes from cells. That keeps TrialStats::threads (and therefore every
  // serialized byte) independent of the worker count.
  std::vector<std::vector<TraceRecorder>> cell_traces(
      trace ? cells.size() : 0);
  auto run_cell = [&](std::size_t i) {
    const SweepCell& cell = cells[i];
    const Graph& g = graphs.at({cell.family, cell.requested_n});
    CellResult r;
    r.cell = cell;
    r.n = g.node_count();
    r.m = g.edge_count();
    r.stats = run_trials(AlgorithmRegistry::instance().at(cell.algorithm), g,
                         cell.options, spec.trials, spec.base_seed,
                         /*threads=*/1, trace ? &cell_traces[i] : nullptr);
    return r;
  };
  // Timelines stream in (cell, trial) order alongside the sinks, then free
  // their memory. Workers may run ahead of the in-order flush cursor, so a
  // traced sweep can buffer every completed-but-unflushed cell's rows;
  // traced runs are meant for smoke scales, not scale-2 grids.
  auto flush_trace = [&](std::size_t i) {
    if (!trace) return;
    const CellResult& r = results[i];
    for (std::size_t t = 0; t < cell_traces[i].size(); ++t) {
      TraceRunMeta meta;
      meta.run = static_cast<std::uint64_t>(r.cell.index) * spec.trials + t;
      meta.cell = r.cell.index;
      meta.trial = t;
      meta.seed = spec.base_seed + t;
      meta.n = r.n;
      meta.algorithm = r.cell.algorithm;
      meta.family = r.cell.family;
      write_run(*trace, meta, cell_traces[i][t]);
    }
    cell_traces[i].clear();
    cell_traces[i].shrink_to_fit();
  };
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < cells.size() && !failed.load();
         i = next.fetch_add(1)) {
      try {
        CellResult r = run_cell(i);
        const std::lock_guard<std::mutex> lock(mu);
        results[i] = std::move(r);
        done[i] = 1;
        cv.notify_all();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mu);
        if (!failure) failure = std::current_exception();
        failed.store(true);
        cv.notify_all();
      }
    }
  };

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  unsigned workers = threads == 0 ? hw : threads;
  workers = std::min<unsigned>(
      workers, static_cast<unsigned>(std::max<std::size_t>(1, cells.size())));

  if (workers <= 1) {
    // Inline: compute and stream one cell at a time.
    for (std::size_t i = 0; i < cells.size(); ++i) {
      results[i] = run_cell(i);
      for (Sink* sink : sinks)
        if (sink) sink->cell(results[i]);
      flush_trace(i);
    }
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
    // Stream results in cell order as they become ready. Sink I/O happens
    // outside the lock: once done[i] is observed under the mutex, results[i]
    // is fully written and never touched again, so workers keep claiming
    // cells while slow sinks drain. A throwing sink must not escape while
    // the pool is unjoined (std::terminate) — stop the workers, join, then
    // rethrow.
    std::exception_ptr sink_failure;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done[i] || failed.load(); });
        if (failed.load()) break;
      }
      try {
        for (Sink* sink : sinks)
          if (sink) sink->cell(results[i]);
        flush_trace(i);
      } catch (...) {
        sink_failure = std::current_exception();
        failed.store(true);
        break;
      }
    }
    for (std::thread& t : pool) t.join();
    if (failure) std::rethrow_exception(failure);
    if (sink_failure) std::rethrow_exception(sink_failure);
  }

  for (Sink* sink : sinks)
    if (sink) sink->end(spec);
  if (trace)
    trace->finish(static_cast<std::uint64_t>(cells.size()) *
                  static_cast<std::uint64_t>(spec.trials));
  return results;
}

}  // namespace wcle
