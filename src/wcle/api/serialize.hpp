// Dependency-free JSON rendering of the unified result/trial schemas, so
// `wcle_cli trials --format=json` can feed bench trajectory files
// (BENCH_*.json) and external tooling without ad-hoc table parsing.
#pragma once

#include <string>

#include "wcle/api/algorithm.hpp"
#include "wcle/api/trials.hpp"
#include "wcle/support/json.hpp"  // re-exports json_escape / json_number

namespace wcle {

/// JSON object for one run: algorithm, success, leaders, rounds, metrics,
/// extras. Deterministic key order (extras are map-sorted).
std::string to_json(const RunResult& result);

/// JSON object for aggregated trials: rates, per-metric summaries
/// {count, mean, stddev, min, median, max}, and summarized extras.
std::string to_json(const TrialStats& stats);

}  // namespace wcle
