#include "wcle/api/algorithm.hpp"

#include <sstream>

namespace wcle {

std::string RunResult::summary() const {
  std::ostringstream out;
  out << algorithm << ": " << (success ? "success" : "FAILED") << ", "
      << leaders.size() << " leader(s)";
  if (!leaders.empty()) {
    out << " [";
    for (std::size_t i = 0; i < leaders.size() && i < 4; ++i)
      out << (i ? " " : "") << leaders[i];
    if (leaders.size() > 4) out << " ...";
    out << "]";
  }
  out << ", " << totals.congest_messages << " msgs, " << rounds << " rounds";
  if (verdict.evaluated) out << ", verdict[" << verdict.summary() << "]";
  for (const auto& [key, value] : extras) out << ", " << key << "=" << value;
  return out.str();
}

void attach_verdict(const Graph& g, const RunOptions& options,
                    Algorithm::Kind kind, RunResult& result) {
  result.verdict = classify_execution(
      g, result.faults, result.leaders, result.rounds, options.max_rounds,
      kind == Algorithm::Kind::kElection);
}

std::string kind_name(Algorithm::Kind kind) {
  switch (kind) {
    case Algorithm::Kind::kElection: return "election";
    case Algorithm::Kind::kBroadcast: return "broadcast";
    case Algorithm::Kind::kDiagnostic: return "diagnostic";
  }
  return "unknown";
}

}  // namespace wcle
