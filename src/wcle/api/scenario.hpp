// The declarative experiment surface: an ExperimentSpec names an algorithm
// (registry key), a graph family (family registry key), and value grids over
// every scenario axis the harness understands — n, trials, bandwidth regime,
// message-drop probability, and the RunOptions knobs. The sweep engine
// (sweep.hpp) expands the grid into cells and executes them; the sinks
// (sink.hpp) render the streamed results. Every experiment bench E1-E13 is a
// builtin spec here, so any table in the repo is reproducible from
// `wcle_cli sweep --spec=eK` alone.
//
// Grid grammar (one token per axis, parse_spec):
//
//   algo=election,flood_max      algorithm axis ("all" = whole registry)
//   family=expander,torus        family axis (parameterized families use
//                                ':', e.g. lowerbound:0.004, dumbbell:torus)
//   n=256,512,1024               size axis
//   bandwidth=standard,wide,256  transport axis: named regime or raw bits
//   drop=0,0.01,0.1              fault axis: per-message loss probability
//   crash=0,0.1,0.3              fault axis: crash-stop node fraction
//   linkfail=0,0.05              fault axis: failed-link fraction
//   adversary=random,degree,contenders   fault axis: victim strategy
//   trials=5  base-seed=1000  graph-seed=1        scalars (no grids)
//   reliable=1                   drop (algo, graph) cells outside the
//                                algorithm's w.h.p. domain (reliable_on)
//   extras=phases,final_length   TrialStats extras keys added as table
//                                columns (mean); JSONL always carries all
//   name=e1  title=...           identification (no grids)
//
// Any other key must be a RunOptions knob and grids like the axes above:
//   c1= c2= wide= paper-schedule= lazy-walks= coalesce= source= value-bits=
//   tmix= tmix-mult= budget= max-rounds= crash-round= linkfail-round=
//   churn= churn-start= churn-end=
//
// Cells expand in a fixed documented order — family (outer), n, algorithm,
// bandwidth, drop, crash, linkfail, adversary, then knob combinations (knob
// keys alphabetical, values in listed order) — and every cell's trials reuse
// the same base seed, so two cells differing in one axis are seed-paired
// comparisons.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "wcle/api/algorithm.hpp"

namespace wcle {

struct ExperimentSpec {
  std::string name = "custom";  ///< spec id (builtin: e1..e13)
  std::string title;            ///< banner printed by the table sinks
  std::string note;             ///< trailing commentary under the table
  std::vector<std::string> algorithms{"election"};
  std::vector<std::string> families{"expander"};
  std::vector<std::uint64_t> sizes{512};
  std::vector<std::string> bandwidths{"standard"};
  std::vector<double> drops{0.0};
  std::vector<double> crashes{0.0};
  std::vector<double> linkfails{0.0};
  std::vector<std::string> adversaries{"random"};
  /// RunOptions knob grids, keyed by the CLI spellings listed above.
  /// Alphabetical key order defines the expansion order.
  std::map<std::string, std::vector<std::string>> knobs;
  std::vector<std::string> table_extras;  ///< extras keys shown as columns
  int trials = 5;
  std::uint64_t base_seed = 1000;
  std::uint64_t graph_seed = 1;
  bool skip_unreliable = false;

  /// Number of grid cells the spec expands to (before reliable_on filtering).
  std::size_t cell_count() const;

  /// The spec re-serialized in the grid grammar (a reproducibility line:
  /// `wcle_cli sweep <to_string()>` re-runs the experiment).
  std::string to_string() const;
};

/// Parses grid-grammar tokens (each "key=v1,v2,..."). Throws
/// std::invalid_argument on unknown keys, malformed values, empty grids, or
/// unknown algorithm names. Graph family names are validated lazily by
/// make_family at sweep time (parameterized values need the size to build).
ExperimentSpec parse_spec(const std::vector<std::string>& tokens);

/// Same, splitting `text` on whitespace.
ExperimentSpec parse_spec(const std::string& text);

/// Applies grid-grammar tokens on top of `base` (e.g. a builtin experiment):
/// the first mention of an axis key replaces that axis of the base, repeated
/// mentions append, and axes the tokens never name keep the base's grids.
ExperimentSpec parse_spec_onto(ExperimentSpec base,
                               const std::vector<std::string>& tokens);

/// Applies one knob to `options`. Throws std::invalid_argument for an
/// unknown key or malformed value. The key set is shared with the parser.
void apply_knob(RunOptions& options, const std::string& key,
                const std::string& value);

/// Applies one bandwidth-axis value ("standard", "wide", or raw bits).
void apply_bandwidth(RunOptions& options, const std::string& value);

/// The canonical one-cell spec for a single `run`/`trials` invocation: the
/// spec whose sweep expansion reproduces exactly `options` (trace pointer
/// aside) on graph (family, n, graph_seed), trial seeds base_seed.. — the
/// replayable identity written into trace headers. Non-default knobs are
/// reverse-mapped to the grammar with round-trip-exact number formatting.
/// Throws std::invalid_argument for options the grammar cannot express
/// (explicit fault seed, pinned crash victims).
ExperimentSpec single_run_spec(const std::string& algorithm,
                               const std::string& family, std::uint64_t n,
                               int trials, std::uint64_t base_seed,
                               std::uint64_t graph_seed,
                               const RunOptions& options);

struct SweepCell;

/// The canonical identity of one sweep cell: the one-cell replayable spec
/// (single_run_spec over the cell's resolved options, carrying the parent
/// spec's trials/base_seed/graph_seed) rendered by ExperimentSpec::
/// to_string(). Two cells share a key exactly when they are the same
/// computation — same algorithm, graph family/size/seed, resolved knobs,
/// trial count, and trial seeds — regardless of which grid they came from
/// or their position in it. This string is what trace headers record for
/// single runs and what the serve CellCache keys on.
std::string canonical_cell_key(const ExperimentSpec& spec,
                               const SweepCell& cell);

/// All recognized knob keys, sorted.
std::vector<std::string> knob_names();

/// The builtin experiment registry: E1-E14 as specs, sized by `scale`
/// (0 = smoke/CI, 1 = default, 2 = extended — the WCLE_BENCH_SCALE levels).
/// Throws std::invalid_argument for an unknown name.
ExperimentSpec builtin_experiment(const std::string& name, int scale = 1);

/// Names of all builtin experiments, in e1..e14 order.
std::vector<std::string> builtin_experiment_names();

/// One-line summaries (name -> title) for `wcle_cli list`.
std::vector<std::pair<std::string, std::string>> builtin_experiment_titles();

/// WCLE_BENCH_SCALE from the environment, clamped to [0, 2]; 1 when unset.
int default_bench_scale();

}  // namespace wcle
