#include "wcle/api/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>

#include "wcle/api/registry.hpp"
#include "wcle/api/serialize.hpp"
#include "wcle/api/sweep.hpp"
#include "wcle/fault/adversary.hpp"
#include "wcle/support/strict_parse.hpp"

namespace wcle {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(s);
  while (std::getline(in, item, sep)) out.push_back(item);
  return out;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  if (const auto v = strict_u64(value)) return *v;
  throw std::invalid_argument("spec: " + key + "=" + value +
                              " is not a non-negative integer");
}

std::uint32_t parse_u32(const std::string& key, const std::string& value) {
  const std::uint64_t v = parse_u64(key, value);
  if (v > 0xffffffffull)
    throw std::invalid_argument("spec: " + key + "=" + value +
                                " exceeds the 32-bit limit");
  return static_cast<std::uint32_t>(v);
}

double parse_double(const std::string& key, const std::string& value) {
  if (const auto v = strict_double(value)) return *v;
  throw std::invalid_argument("spec: " + key + "=" + value +
                              " is not a number");
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "1" || value == "true" || value == "yes" || value == "on")
    return true;
  if (value == "0" || value == "false" || value == "no" || value == "off")
    return false;
  throw std::invalid_argument("spec: " + key + "=" + value +
                              " is not a boolean (use true/false)");
}

// Shortest round-trip rendering (serialize.cpp's json_number): a value
// written into a spec line parses back to the identical double, which the
// trace replay verifier depends on — a lossy "%g" here would make a
// replayed run silently diverge from the recorded one.
std::string format_double(double v) { return json_number(v); }

template <typename T>
std::string join(const std::vector<T>& values) {
  std::ostringstream out;
  for (std::size_t i = 0; i < values.size(); ++i)
    out << (i ? "," : "") << values[i];
  return out.str();
}

}  // namespace

void apply_knob(RunOptions& options, const std::string& key,
                const std::string& value) {
  if (key == "c1") options.params.c1 = parse_double(key, value);
  else if (key == "c2") options.params.c2 = parse_double(key, value);
  else if (key == "wide") options.params.wide_messages = parse_bool(key, value);
  else if (key == "paper-schedule")
    options.params.paper_schedule = parse_bool(key, value);
  else if (key == "lazy-walks")
    options.params.lazy_walks = parse_bool(key, value);
  else if (key == "coalesce")
    options.params.coalesce_tokens = parse_bool(key, value);
  else if (key == "max-phases")
    options.params.max_phases = parse_u32(key, value);
  else if (key == "max-length")
    options.params.max_length = parse_u32(key, value);
  else if (key == "initial-length")
    options.params.initial_length = parse_u32(key, value);
  else if (key == "source") options.source = parse_u32(key, value);
  else if (key == "value-bits") options.value_bits = parse_u32(key, value);
  else if (key == "tmix") options.tmix_hint = parse_u32(key, value);
  else if (key == "tmix-mult")
    options.tmix_multiplier = parse_double(key, value);
  else if (key == "budget") options.probe_budget = parse_u64(key, value);
  else if (key == "max-rounds") options.max_rounds = parse_u64(key, value);
  else if (key == "crash-round")
    options.params.faults.crash_round = parse_u64(key, value);
  else if (key == "linkfail-round")
    options.params.faults.linkfail_round = parse_u64(key, value);
  else if (key == "churn") {
    options.params.faults.churn_fraction = parse_double(key, value);
    if (options.params.faults.churn_fraction < 0.0 ||
        options.params.faults.churn_fraction > 1.0)
      throw std::invalid_argument("spec: churn=" + value +
                                  " must be in [0, 1]");
  } else if (key == "churn-start")
    options.params.faults.churn_start = parse_u64(key, value);
  else if (key == "churn-end")
    options.params.faults.churn_end = parse_u64(key, value);
  else if (key == "trace-every") {
    options.params.trace_every = parse_u32(key, value);
    if (options.params.trace_every == 0)
      throw std::invalid_argument(
          "spec: trace-every=0 (use 1 for every round)");
  } else if (key == "trace-walks") {
    options.params.trace_walks = parse_u32(key, value);
    if (options.params.trace_walks == 0)
      throw std::invalid_argument(
          "spec: trace-walks=0 (use 1 for every walk, or omit the knob)");
  } else if (key == "shards") {
    options.params.shards = parse_u32(key, value);
    if (options.params.shards == 0)
      throw std::invalid_argument(
          "spec: shards=0 (use 1 for the single-worker engine)");
  } else
    throw std::invalid_argument(
        "spec: unknown key '" + key + "' (axes: algo family n bandwidth drop "
        "crash linkfail adversary trials base-seed graph-seed reliable extras "
        "name title; knobs: " + join(knob_names()) + ")");
}

void apply_bandwidth(RunOptions& options, const std::string& value) {
  if (value == "standard") {
    options.params.wide_messages = false;
    options.params.bandwidth_bits = 0;
  } else if (value == "wide") {
    options.params.wide_messages = true;
    options.params.bandwidth_bits = 0;
  } else {
    const std::uint32_t bits = parse_u32("bandwidth", value);
    if (bits == 0)
      throw std::invalid_argument("spec: bandwidth=0 is not a valid budget");
    options.params.wide_messages = false;
    options.params.bandwidth_bits = bits;
  }
}

std::vector<std::string> knob_names() {
  return {"budget",     "c1",           "c2",            "churn",
          "churn-end",  "churn-start",  "coalesce",      "crash-round",
          "initial-length", "lazy-walks", "linkfail-round", "max-length",
          "max-phases", "max-rounds",   "paper-schedule", "shards",
          "source",     "tmix",         "tmix-mult",     "trace-every",
          "trace-walks", "value-bits",  "wide"};
}

ExperimentSpec single_run_spec(const std::string& algorithm,
                               const std::string& family, std::uint64_t n,
                               int trials, std::uint64_t base_seed,
                               std::uint64_t graph_seed,
                               const RunOptions& options) {
  const ElectionParams& p = options.params;
  if (p.faults.seed != 0)
    throw std::invalid_argument(
        "single_run_spec: an explicit fault seed is not expressible in the "
        "spec grammar");
  if (!p.faults.pinned_crashes.empty())
    throw std::invalid_argument(
        "single_run_spec: pinned crash victims are not expressible in the "
        "spec grammar");

  ExperimentSpec spec;
  spec.name = "single";
  spec.algorithms = {algorithm};
  spec.families = {family};
  spec.sizes = {n};
  spec.bandwidths = {p.bandwidth_bits != 0 ? std::to_string(p.bandwidth_bits)
                     : p.wide_messages     ? "wide"
                                           : "standard"};
  spec.drops = {p.drop_probability};
  spec.crashes = {p.faults.crash_fraction};
  spec.linkfails = {p.faults.linkfail_fraction};
  spec.adversaries = {p.faults.adversary};
  spec.trials = trials;
  spec.base_seed = base_seed;
  spec.graph_seed = graph_seed;

  // Non-default knobs, reverse-mapped to the grammar keys apply_knob reads.
  // expand_cells applies bandwidth before knobs, so an explicit wide=true
  // knob keeps the wide regime even alongside a raw-bits bandwidth.
  const RunOptions def;
  const auto knob = [&spec](const std::string& key, bool differs,
                            std::string value) {
    if (differs) spec.knobs[key] = {std::move(value)};
  };
  knob("c1", p.c1 != def.params.c1, format_double(p.c1));
  knob("c2", p.c2 != def.params.c2, format_double(p.c2));
  knob("wide", p.wide_messages && p.bandwidth_bits != 0, "true");
  knob("paper-schedule", p.paper_schedule, "true");
  knob("lazy-walks", !p.lazy_walks, "false");
  knob("coalesce", !p.coalesce_tokens, "false");
  knob("max-phases", p.max_phases != def.params.max_phases,
       std::to_string(p.max_phases));
  knob("max-length", p.max_length != def.params.max_length,
       std::to_string(p.max_length));
  knob("initial-length", p.initial_length != def.params.initial_length,
       std::to_string(p.initial_length));
  knob("source", options.source != def.source,
       std::to_string(options.source));
  knob("value-bits", options.value_bits != def.value_bits,
       std::to_string(options.value_bits));
  knob("tmix", options.tmix_hint != def.tmix_hint,
       std::to_string(options.tmix_hint));
  knob("tmix-mult", options.tmix_multiplier != def.tmix_multiplier,
       format_double(options.tmix_multiplier));
  knob("budget", options.probe_budget != def.probe_budget,
       std::to_string(options.probe_budget));
  knob("max-rounds", options.max_rounds != def.max_rounds,
       std::to_string(options.max_rounds));
  knob("crash-round", p.faults.crash_round != def.params.faults.crash_round,
       std::to_string(p.faults.crash_round));
  knob("linkfail-round",
       p.faults.linkfail_round != def.params.faults.linkfail_round,
       std::to_string(p.faults.linkfail_round));
  knob("churn", p.faults.churn_fraction != 0.0,
       format_double(p.faults.churn_fraction));
  knob("churn-start", p.faults.churn_start != 0,
       std::to_string(p.faults.churn_start));
  knob("churn-end", p.faults.churn_end != 0,
       std::to_string(p.faults.churn_end));
  knob("trace-every", p.trace_every != def.params.trace_every,
       std::to_string(p.trace_every));
  knob("trace-walks", p.trace_walks != def.params.trace_walks,
       std::to_string(p.trace_walks));
  // shards is reverse-mapped like any other knob, so canonical_cell_key does
  // NOT collapse cells across shard counts. Deliberate: results are
  // bit-identical either way (the headline invariant), but the serve cache
  // and sweep resume logic key on "same computation as specified", and a
  // shards=4 run legitimately differs in footprint gauges.
  knob("shards", p.shards != def.params.shards, std::to_string(p.shards));
  return spec;
}

std::string canonical_cell_key(const ExperimentSpec& spec,
                               const SweepCell& cell) {
  // cell.options is fully resolved (bandwidth regime + knobs applied), so
  // the reverse-mapping in single_run_spec reconstructs exactly the knobs
  // that differ from defaults — cells from different grids that resolve to
  // the same computation collapse onto one key.
  return single_run_spec(cell.algorithm, cell.family, cell.requested_n,
                         spec.trials, spec.base_seed, spec.graph_seed,
                         cell.options)
      .to_string();
}

ExperimentSpec parse_spec_onto(ExperimentSpec spec,
                               const std::vector<std::string>& tokens) {
  // The first mention of an axis key replaces the base's grid; later
  // mentions of the same key append (so "n=64 n=128" still accumulates).
  std::set<std::string> replaced;
  const auto fresh = [&replaced](const std::string& key) {
    return replaced.insert(key).second;
  };

  for (const std::string& token : tokens) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::invalid_argument("spec: token '" + token +
                                  "' is not key=value[,value..]");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (value.empty())
      throw std::invalid_argument("spec: " + key + "= has no value");
    const std::vector<std::string> values = split(value, ',');

    if (key == "algo" || key == "algorithm") {
      if (fresh("algo")) spec.algorithms.clear();
      for (const std::string& v : values) {
        if (v == "all") {
          for (const std::string& name : AlgorithmRegistry::instance().names())
            spec.algorithms.push_back(name);
        } else if (AlgorithmRegistry::instance().contains(v)) {
          spec.algorithms.push_back(v);
        } else {
          // invalid_argument like every other grammar error (the registry's
          // own lookup throws out_of_range, which the header contract
          // deliberately does not expose).
          throw std::invalid_argument("spec: unknown algorithm '" + v +
                                      "'; known: " +
                                      join(AlgorithmRegistry::instance()
                                               .names()) +
                                      ", all");
        }
      }
    } else if (key == "family") {
      if (fresh("family")) spec.families.clear();
      for (const std::string& v : values) spec.families.push_back(v);
    } else if (key == "n") {
      if (fresh("n")) spec.sizes.clear();
      for (const std::string& v : values)
        spec.sizes.push_back(parse_u64(key, v));
    } else if (key == "bandwidth" || key == "b") {
      if (fresh("bandwidth")) spec.bandwidths.clear();
      RunOptions scratch;
      for (const std::string& v : values) {
        apply_bandwidth(scratch, v);  // validates
        spec.bandwidths.push_back(v);
      }
    } else if (key == "drop" || key == "crash" || key == "linkfail") {
      std::vector<double>& axis = key == "drop"    ? spec.drops
                                  : key == "crash" ? spec.crashes
                                                   : spec.linkfails;
      if (fresh(key)) axis.clear();
      for (const std::string& v : values) {
        const double p = parse_double(key, v);
        if (p < 0.0 || p > 1.0)
          throw std::invalid_argument("spec: " + key + "=" + v +
                                      " must be in [0, 1]");
        axis.push_back(p);
      }
    } else if (key == "adversary") {
      if (fresh("adversary")) spec.adversaries.clear();
      for (const std::string& v : values) {
        if (!is_adversary_name(v))
          throw std::invalid_argument("spec: unknown adversary '" + v +
                                      "'; known: " +
                                      joined_adversary_names());
        spec.adversaries.push_back(v);
      }
    } else if (key == "trials") {
      const std::uint64_t t = parse_u64(key, value);
      if (t == 0 || t > 1000000)
        throw std::invalid_argument("spec: trials must be in [1, 1e6]");
      spec.trials = static_cast<int>(t);
    } else if (key == "base-seed" || key == "base_seed") {
      spec.base_seed = parse_u64(key, value);
    } else if (key == "graph-seed" || key == "graph_seed") {
      spec.graph_seed = parse_u64(key, value);
    } else if (key == "reliable") {
      spec.skip_unreliable = parse_bool(key, value);
    } else if (key == "extras") {
      if (fresh("extras")) spec.table_extras.clear();
      spec.table_extras.insert(spec.table_extras.end(), values.begin(),
                               values.end());
    } else if (key == "name") {
      spec.name = value;
    } else if (key == "title") {
      spec.title = value;
    } else {
      RunOptions scratch;
      for (const std::string& v : values) apply_knob(scratch, key, v);
      if (fresh("knob:" + key)) spec.knobs.erase(key);
      auto& grid = spec.knobs[key];
      grid.insert(grid.end(), values.begin(), values.end());
    }
  }
  return spec;
}

ExperimentSpec parse_spec(const std::vector<std::string>& tokens) {
  // The default-constructed spec carries the documented axis defaults
  // (election on a 512-node expander, reliable standard transport).
  return parse_spec_onto(ExperimentSpec{}, tokens);
}

ExperimentSpec parse_spec(const std::string& text) {
  std::istringstream in(text);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  return parse_spec(tokens);
}

std::size_t ExperimentSpec::cell_count() const {
  std::size_t count = algorithms.size() * families.size() * sizes.size() *
                      bandwidths.size() * drops.size() * crashes.size() *
                      linkfails.size() * adversaries.size();
  for (const auto& [key, values] : knobs) count *= values.size();
  return count;
}

std::string ExperimentSpec::to_string() const {
  std::ostringstream out;
  out << "name=" << name << " algo=" << join(algorithms)
      << " family=" << join(families) << " n=" << join(sizes)
      << " bandwidth=" << join(bandwidths);
  const auto join_doubles = [](const std::vector<double>& values) {
    std::vector<std::string> strs;
    for (const double v : values) strs.push_back(format_double(v));
    return join(strs);
  };
  out << " drop=" << join_doubles(drops);
  // Inactive fault axes are folded out of the reproduction line (keeps the
  // pre-fault specs' lines stable).
  if (crashes.size() > 1 || crashes[0] > 0.0)
    out << " crash=" << join_doubles(crashes);
  if (linkfails.size() > 1 || linkfails[0] > 0.0)
    out << " linkfail=" << join_doubles(linkfails);
  if (adversaries.size() > 1 || adversaries[0] != "random")
    out << " adversary=" << join(adversaries);
  for (const auto& [key, values] : knobs)
    out << " " << key << "=" << join(values);
  out << " trials=" << trials << " base-seed=" << base_seed
      << " graph-seed=" << graph_seed;
  if (skip_unreliable) out << " reliable=1";
  if (!table_extras.empty()) out << " extras=" << join(table_extras);
  return out.str();
}

int default_bench_scale() {
  if (const char* s = std::getenv("WCLE_BENCH_SCALE")) {
    const int v = std::atoi(s);
    if (v >= 0 && v <= 2) return v;
  }
  return 1;
}

// ------------------------------------------------------------- builtins

namespace {

template <typename T>
std::vector<T> pick(int scale, std::vector<T> s0, std::vector<T> s1,
                    std::vector<T> s2) {
  return scale <= 0 ? s0 : scale == 1 ? s1 : s2;
}

int pick_trials(int scale, int s0, int s1, int s2) {
  return scale <= 0 ? s0 : scale == 1 ? s1 : s2;
}

}  // namespace

ExperimentSpec builtin_experiment(const std::string& name, int scale) {
  ExperimentSpec s;
  s.name = name;
  if (name == "e1") {
    s.title = "E1: Theorem 13 — messages on 6-regular expanders";
    s.note = "theory: messages ~ sqrt(n) polylog; the empirical exponent of "
             "msgs in n should sit near 0.5, and msgs/m shrink toward 0";
    s.algorithms = {"election"};
    s.families = {"expander"};
    s.sizes = pick<std::uint64_t>(scale, {128, 256}, {256, 512, 1024, 2048},
                                  {256, 512, 1024, 2048, 4096, 8192});
    s.trials = pick_trials(scale, 2, 5, 5);
  } else if (name == "e2") {
    s.title = "E2: Theorem 13 — time on 6-regular expanders";
    s.note = "theory: rounds = polylog(n) only; measured rounds must stay "
             "below scheduled_rounds (Lemma 12's congestion padding)";
    s.algorithms = {"election"};
    s.families = {"expander"};
    s.sizes = pick<std::uint64_t>(scale, {128, 256}, {256, 512, 1024, 2048},
                                  {256, 512, 1024, 2048, 4096});
    s.trials = pick_trials(scale, 2, 5, 5);
    s.table_extras = {"final_length", "phases", "scheduled_rounds"};
  } else if (name == "e3") {
    s.title = "E3: Theorem 13 on hypercubes (tmix = O(log n log log n))";
    s.note = "the hypercube corollary: O~(sqrt n) messages, polylog time";
    s.algorithms = {"election"};
    s.families = {"hypercube"};
    s.sizes = pick<std::uint64_t>(scale, {128, 256}, {128, 256, 512, 1024},
                                  {128, 256, 512, 1024, 2048});
    s.trials = pick_trials(scale, 2, 5, 5);
    s.table_extras = {"final_length", "phases"};
  } else if (name == "e4") {
    s.title = "E4: cliques — sublinearity in m, crossover vs Omega(m) "
              "flooding";
    s.note = "ours/m must shrink toward 0; the flooding baselines pay "
             "Omega(m); referee[25] is the clique-specialized algorithm ours "
             "generalizes";
    s.algorithms = {"election", "clique_referee", "candidate_flood",
                    "flood_max"};
    s.families = {"clique"};
    s.sizes = pick<std::uint64_t>(scale, {64, 128}, {64, 128, 256, 512, 1024},
                                  {64, 128, 256, 512, 1024, 2048});
    s.trials = pick_trials(scale, 2, 5, 5);
  } else if (name == "e5") {
    s.title = "E5: Lemma 1 — contender concentration in [3/4, 5/4] c1 log n";
    s.note = "mean(in_window) must grow toward 1 with n (Chernoff); "
             "mean(zero) ~ n^-c1";
    s.algorithms = {"contender_stage"};
    s.families = {"ring"};
    s.sizes = pick<std::uint64_t>(scale, {256, 1024},
                                  {256, 1024, 4096, 16384, 65536},
                                  {256, 1024, 4096, 16384, 65536, 262144});
    s.trials = pick_trials(scale, 100, 500, 2000);
    s.table_extras = {"contenders", "expected", "in_window", "zero"};
  } else if (name == "e6") {
    s.title = "E6: Lemmas 3/6 — stopping t_u tracks tmix; bandwidth and "
              "coalescing ablations";
    s.note = "final_length/tmix should be a small constant across families; "
             "the wide rows recover ~log^2 n messages (Lemma 12's 2nd "
             "regime); coalesce=false charts the naive-token ablation";
    s.algorithms = {"election"};
    s.families = {"clique", "hypercube", "torus", "expander"};
    s.sizes = pick<std::uint64_t>(scale, {64}, {256}, {256, 1024});
    s.bandwidths = {"standard", "wide"};
    s.knobs["coalesce"] = {"true", "false"};
    s.trials = pick_trials(scale, 2, 3, 5);
    s.table_extras = {"final_length", "phases"};
  } else if (name == "e7") {
    s.title = "E7: Theorem 15 — messages vs Omega(sqrt(n)/phi^{3/4}) on "
              "G(alpha)";
    s.note = "measured messages must sit between the Theorem 15 lower "
             "envelope and the Theorem 13 upper envelope (the sandwich)";
    s.algorithms = {"election"};
    s.families = {"lowerbound:0.003", "lowerbound:0.006"};
    s.sizes = pick<std::uint64_t>(scale, {300}, {700}, {1200});
    s.trials = pick_trials(scale, 1, 2, 2);
    s.table_extras = {"final_length", "phases"};
  } else if (name == "e8") {
    s.title = "E8: Lemma 16 — conductance of G(alpha) is Theta(alpha)";
    s.note = "sweep_phi/alpha must stay within a constant band across the "
             "alpha sweep; cheeger bounds sandwich it";
    s.algorithms = {"graph_profile"};
    s.families = {"lowerbound:0.001", "lowerbound:0.002", "lowerbound:0.004",
                  "lowerbound:0.006"};
    s.sizes = pick<std::uint64_t>(scale, {400}, {2000}, {4000});
    s.trials = 1;
    s.table_extras = {"sweep_phi", "cheeger_lower", "cheeger_upper", "tmix"};
  } else if (name == "e9") {
    s.title = "E9: Corollary 14 — explicit = implicit election + push-pull "
              "broadcast";
    s.note = "Cor 14's two cost terms measured; asymptotically the broadcast "
             "dominates (crossover ~2^20 nodes, past simulable sizes)";
    s.algorithms = {"explicit_election"};
    s.families = {"clique", "torus"};
    s.sizes = pick<std::uint64_t>(scale, {64, 144}, {256, 576, 1024},
                                  {256, 576, 1024, 2048});
    s.trials = pick_trials(scale, 1, 3, 3);
    s.table_extras = {"election_messages", "broadcast_messages",
                      "broadcast_rounds"};
  } else if (name == "e10") {
    s.title = "E10: Corollaries 26/27 — broadcast & spanning tree on "
              "G(alpha)";
    s.note = "no broadcast or ST algorithm can beat n/sqrt(phi) messages on "
             "this family: all rows must stay Omega(1) above it";
    s.algorithms = {"push_pull", "flood_broadcast", "bfs_tree"};
    s.families = {"lowerbound:0.0015", "lowerbound:0.003",
                  "lowerbound:0.006"};
    s.sizes = pick<std::uint64_t>(scale, {300}, {800}, {1500, 3000});
    s.trials = pick_trials(scale, 1, 2, 2);
  } else if (name == "e11") {
    s.title = "E11: Theorem 28 — unknown n forces Omega(m) (dumbbell "
              "elections)";
    s.note = "with the true n the election stays correct on the dumbbell; "
             "the split-brain half-runs of the indistinguishability argument "
             "are bench_e11's supplemental table";
    s.algorithms = {"election"};
    s.families = {"dumbbell:torus", "dumbbell:hypercube"};
    s.sizes = pick<std::uint64_t>(scale, {128}, {128, 288}, {128, 288, 512});
    s.trials = pick_trials(scale, 1, 2, 3);
  } else if (name == "e12") {
    s.title = "E12: the price of not knowing tmix — paper vs Kutten et al. "
              "[25] vs estimate-then-elect [29]";
    s.note = "known_tmix assumes the oracle the paper removes; "
             "estimate_then_elect pays the Omega(m) estimation fee — the "
             "reason guess-and-double exists";
    s.algorithms = {"election", "known_tmix", "estimate_then_elect"};
    s.families = {"clique", "hypercube", "expander", "torus"};
    s.sizes = pick<std::uint64_t>(scale, {64}, {256}, {256, 512});
    s.trials = pick_trials(scale, 2, 5, 5);
    s.table_extras = {"final_length", "walk_length"};
  } else if (name == "e13") {
    s.title = "E13: every registered algorithm under one harness";
    s.note = "one registry, one trial engine, one schema — the Theorem 13 "
             "comparison as a single sweep (unreliable (algo, graph) cells "
             "are skipped)";
    s.algorithms = AlgorithmRegistry::instance().names();
    s.families = {"clique", "hypercube", "expander"};
    s.sizes = pick<std::uint64_t>(scale, {64}, {256}, {512});
    s.trials = pick_trials(scale, 2, 3, 3);
    s.skip_unreliable = true;
  } else if (name == "e14") {
    s.title = "E14: fault sweep — crash/linkfail/adversary grid, "
              "verdict rates for the core election vs the baselines";
    s.note = "crash-stop victims picked by the adversary at round 1; failed "
             "links eat traffic but still bill congestion; safety = at most "
             "one surviving leader, liveness = cap-free termination within "
             "max-rounds, agreement = best surviving-component coverage";
    s.algorithms = {"election", "explicit_election", "flood_max",
                    "candidate_flood", "territory_election", "known_tmix",
                    "estimate_then_elect"};
    s.families = {"expander"};
    s.sizes = pick<std::uint64_t>(scale, {32}, {128}, {256, 512});
    s.crashes = pick<double>(scale, {0.0, 0.2}, {0.0, 0.1, 0.3},
                             {0.0, 0.1, 0.3, 0.5});
    s.linkfails = pick<double>(scale, {0.0}, {0.0, 0.05}, {0.0, 0.05, 0.15});
    s.adversaries = pick<std::string>(scale, {"random"},
                                      {"random", "degree", "contenders"},
                                      {"random", "degree", "contenders"});
    // Keep faulty elections bounded: a starved contender must not
    // guess-and-double into t_u = 8n^2 walks, and push-pull sub-broadcasts
    // must not spin their generous default cap when survivors are
    // unreachable. max-rounds doubles as the liveness budget.
    s.knobs["max-length"] = pick<std::string>(scale, {"128"}, {"256"},
                                              {"512"});
    s.knobs["max-rounds"] = pick<std::string>(scale, {"2000"}, {"4000"},
                                              {"8000"});
    s.trials = pick_trials(scale, 2, 3, 5);
    s.skip_unreliable = true;
  } else {
    throw std::invalid_argument("unknown builtin experiment '" + name +
                                "' (known: " +
                                join(builtin_experiment_names()) +
                                ")");
  }
  return s;
}

std::vector<std::string> builtin_experiment_names() {
  return {"e1", "e2", "e3", "e4", "e5", "e6", "e7",
          "e8", "e9", "e10", "e11", "e12", "e13", "e14"};
}

std::vector<std::pair<std::string, std::string>> builtin_experiment_titles() {
  std::vector<std::pair<std::string, std::string>> out;
  for (const std::string& name : builtin_experiment_names())
    out.emplace_back(name, builtin_experiment(name, 1).title);
  return out;
}

}  // namespace wcle
