// Pluggable result sinks for the sweep engine: each finished cell streams to
// every attached sink in deterministic cell order. Three renderings ship:
// the paper-style aligned Table (what the benches print), CSV (the same rows
// machine-readably), and JSONL (one self-contained JSON object per cell —
// the full TrialStats schema, suitable for trajectory files and the
// determinism checks in CI).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "wcle/api/scenario.hpp"
#include "wcle/api/sweep.hpp"
#include "wcle/support/table.hpp"

namespace wcle {

class Sink {
 public:
  virtual ~Sink() = default;

  /// Called once before any cell, with the expanded (post-filter) cells.
  virtual void begin(const ExperimentSpec& /*spec*/,
                     const std::vector<SweepCell>& /*cells*/) {}
  /// Called once per cell, in cell order, as results become available.
  virtual void cell(const CellResult& result) = 0;
  /// Called once after the last cell.
  virtual void end(const ExperimentSpec& /*spec*/) {}
};

/// Paper-style table: one row per cell. Axis columns that are constant
/// across the whole spec are folded out of the table (a single-algorithm
/// sweep does not waste a column repeating the name); `spec.table_extras`
/// keys appear as mean columns, "-" where an algorithm lacks the key.
/// Prints the banner + table + note in end().
class TableSink : public Sink {
 public:
  explicit TableSink(std::ostream& out, bool csv = false)
      : out_(&out), csv_(csv) {}

  void begin(const ExperimentSpec& spec,
             const std::vector<SweepCell>& cells) override;
  void cell(const CellResult& result) override;
  void end(const ExperimentSpec& spec) override;

 private:
  std::ostream* out_;
  bool csv_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  // Which optional columns the spec's grids make vary:
  bool show_algorithm_ = false, show_family_ = false, show_bandwidth_ = false,
       show_drop_ = false, show_crash_ = false, show_linkfail_ = false,
       show_adversary_ = false, show_verdict_ = false;
  std::vector<std::string> knob_columns_;
  std::vector<std::string> extras_columns_;
};

/// CSV rendering of the same rows (Table::write_csv), no banner or note.
class CsvSink final : public TableSink {
 public:
  explicit CsvSink(std::ostream& out) : TableSink(out, /*csv=*/true) {}
};

/// One JSON object per cell, streamed as cells complete. Lines are
/// byte-identical for any worker-thread count, which is what the CI
/// determinism job diffs. Each cell() call writes its full line and then
/// flushes the stream — a contract, not an implementation detail: consumers
/// tailing a live sweep (the serve daemon's result streams, `tail -f` on a
/// redirected file) see whole lines the moment their cell completes, never
/// a torn or buffered-back prefix.
class JsonlSink final : public Sink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(&out) {}
  void cell(const CellResult& result) override;

 private:
  std::ostream* out_;
};

/// JSON object for one cell (the JsonlSink line, reusable in tests).
std::string to_json(const CellResult& result);

}  // namespace wcle
