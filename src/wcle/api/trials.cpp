#include "wcle/api/trials.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "wcle/trace/recorder.hpp"

namespace wcle {

TrialStats run_trials(const Algorithm& algorithm, const Graph& g,
                      RunOptions options, int trials, std::uint64_t base_seed,
                      unsigned threads, std::vector<TraceRecorder>* traces) {
  TrialStats stats;
  stats.algorithm = algorithm.name();
  stats.trials = trials;
  if (traces) {
    traces->clear();
    traces->resize(static_cast<std::size_t>(std::max(trials, 0)));
  }
  if (trials <= 0) {
    stats.threads = 0;
    return stats;
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  unsigned workers = threads == 0 ? hw : threads;
  workers = std::min<unsigned>(workers, static_cast<unsigned>(trials));
  stats.threads = workers;

  // Results land in seed order regardless of which worker produced them;
  // aggregation below is sequential, so thread count cannot change any bit.
  std::vector<RunResult> results(static_cast<std::size_t>(trials));
  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr failure;
  std::mutex failure_mutex;
  auto worker = [&] {
    for (int i = next.fetch_add(1); i < trials && !failed.load();
         i = next.fetch_add(1)) {
      try {
        RunOptions opt = options;
        opt.set_seed(base_seed + static_cast<std::uint64_t>(i));
        opt.params.trace =
            traces ? &(*traces)[static_cast<std::size_t>(i)] : nullptr;
        RunResult r = algorithm.run(g, opt);
        attach_verdict(g, opt, algorithm.kind(), r);
        results[static_cast<std::size_t>(i)] = std::move(r);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (!failure) failure = std::current_exception();
        failed.store(true);  // all workers stop claiming trials
      }
    }
  };

  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (failure) std::rethrow_exception(failure);

  int ok = 0, zero = 0, multi = 0, safe = 0, live = 0;
  std::vector<double> msgs, logical, bits, rounds, leaders, dropped,
      crash_dropped, link_dropped, agree, pool_slots, pool_live, pool_blocks,
      pool_ids;
  std::map<std::string, std::vector<double>> extra_samples;
  for (const RunResult& r : results) {
    if (r.success) ++ok;
    if (r.leaders.empty()) ++zero;
    if (r.leaders.size() > 1) ++multi;
    if (r.verdict.safe) ++safe;
    if (r.verdict.live) ++live;
    msgs.push_back(static_cast<double>(r.totals.congest_messages));
    logical.push_back(static_cast<double>(r.totals.logical_messages));
    bits.push_back(static_cast<double>(r.totals.total_bits));
    rounds.push_back(static_cast<double>(r.rounds));
    leaders.push_back(static_cast<double>(r.leaders.size()));
    dropped.push_back(static_cast<double>(r.totals.dropped_messages));
    crash_dropped.push_back(
        static_cast<double>(r.totals.crash_dropped_messages));
    link_dropped.push_back(
        static_cast<double>(r.totals.link_dropped_messages));
    agree.push_back(r.verdict.agreement);
    pool_slots.push_back(static_cast<double>(r.totals.pool_msg_slots));
    pool_live.push_back(static_cast<double>(r.totals.pool_msg_live_high));
    pool_blocks.push_back(static_cast<double>(r.totals.pool_id_blocks));
    pool_ids.push_back(static_cast<double>(r.totals.pool_id_live_high));
    for (const auto& [key, value] : r.extras)
      extra_samples[key].push_back(value);
  }
  const double dn = static_cast<double>(trials);
  stats.success_rate = ok / dn;
  stats.zero_leader_rate = zero / dn;
  stats.multi_leader_rate = multi / dn;
  stats.safety_rate = safe / dn;
  stats.liveness_rate = live / dn;
  stats.congest_messages = summarize(std::move(msgs));
  stats.logical_messages = summarize(std::move(logical));
  stats.total_bits = summarize(std::move(bits));
  stats.rounds = summarize(std::move(rounds));
  stats.leader_count = summarize(std::move(leaders));
  stats.dropped_messages = summarize(std::move(dropped));
  stats.crash_dropped_messages = summarize(std::move(crash_dropped));
  stats.link_dropped_messages = summarize(std::move(link_dropped));
  stats.agreement = summarize(std::move(agree));
  stats.pool_msg_slots = summarize(std::move(pool_slots));
  stats.pool_msg_live_high = summarize(std::move(pool_live));
  stats.pool_id_blocks = summarize(std::move(pool_blocks));
  stats.pool_id_live_high = summarize(std::move(pool_ids));
  for (auto& [key, samples] : extra_samples)
    stats.extras[key] = summarize(std::move(samples));
  return stats;
}

}  // namespace wcle
