#include "wcle/api/sink.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "wcle/api/serialize.hpp"

namespace wcle {

void TableSink::begin(const ExperimentSpec& spec,
                      const std::vector<SweepCell>& cells) {
  // Fold constant axes out of the table; reliable_on filtering can make the
  // algorithm column meaningful even for a single-algorithm grid, so axis
  // variability is judged on the spec's grids.
  show_family_ = spec.families.size() > 1;
  show_algorithm_ = spec.algorithms.size() > 1;
  show_bandwidth_ = spec.bandwidths.size() > 1;
  show_drop_ = spec.drops.size() > 1 ||
               (spec.drops.size() == 1 && spec.drops[0] > 0.0);
  show_crash_ = spec.crashes.size() > 1 ||
                (spec.crashes.size() == 1 && spec.crashes[0] > 0.0);
  show_linkfail_ = spec.linkfails.size() > 1 ||
                   (spec.linkfails.size() == 1 && spec.linkfails[0] > 0.0);
  show_adversary_ = spec.adversaries.size() > 1;
  // Any active fault axis makes the verdict columns meaningful — including
  // churn, which travels as a knob grid rather than a tracked axis.
  const auto churn = spec.knobs.find("churn");
  const bool churn_active =
      churn != spec.knobs.end() &&
      std::any_of(churn->second.begin(), churn->second.end(),
                  [](const std::string& v) { return v != "0"; });
  show_verdict_ = show_drop_ || show_crash_ || show_linkfail_ || churn_active;
  knob_columns_.clear();
  for (const auto& [key, values] : spec.knobs)
    if (values.size() > 1) knob_columns_.push_back(key);
  extras_columns_ = spec.table_extras;

  headers_.clear();
  if (show_family_) headers_.push_back("family");
  headers_.push_back("n");
  headers_.push_back("m");
  if (show_algorithm_) headers_.push_back("algorithm");
  if (show_bandwidth_) headers_.push_back("B");
  if (show_drop_) headers_.push_back("drop");
  if (show_crash_) headers_.push_back("crash");
  if (show_linkfail_) headers_.push_back("linkfail");
  if (show_adversary_) headers_.push_back("adversary");
  for (const std::string& key : knob_columns_) headers_.push_back(key);
  headers_.push_back("msgs(mean)");
  headers_.push_back("msgs(max)");
  headers_.push_back("rounds(mean)");
  if (show_drop_) headers_.push_back("dropped(mean)");
  if (show_verdict_) {
    headers_.push_back("safety");
    headers_.push_back("liveness");
    headers_.push_back("agree(mean)");
  }
  for (const std::string& key : extras_columns_)
    headers_.push_back(key + "(mean)");
  // Data-plane pool gauges (obs): worst-case message-pool occupancy and
  // footprint across the cell's trials — the zero-allocation evidence.
  headers_.push_back("pool-live(max)");
  headers_.push_back("pool-slots(max)");
  headers_.push_back("success");
  rows_.clear();
  (void)cells;
}

void TableSink::cell(const CellResult& r) {
  std::vector<std::string> row;
  if (show_family_) row.push_back(r.cell.family);
  row.push_back(std::to_string(r.n));
  row.push_back(std::to_string(r.m));
  if (show_algorithm_) row.push_back(r.cell.algorithm);
  if (show_bandwidth_) row.push_back(r.cell.bandwidth);
  if (show_drop_) row.push_back(Table::num(r.cell.drop, 3));
  if (show_crash_) row.push_back(Table::num(r.cell.crash, 3));
  if (show_linkfail_) row.push_back(Table::num(r.cell.linkfail, 3));
  if (show_adversary_) row.push_back(r.cell.adversary);
  for (const std::string& key : knob_columns_) {
    std::string value = "-";
    for (const auto& [k, v] : r.cell.knobs)
      if (k == key) value = v;
    row.push_back(value);
  }
  row.push_back(Table::num(r.stats.congest_messages.mean));
  row.push_back(Table::num(r.stats.congest_messages.max));
  row.push_back(Table::num(r.stats.rounds.mean));
  if (show_drop_) row.push_back(Table::num(r.stats.dropped_messages.mean));
  if (show_verdict_) {
    row.push_back(Table::num(r.stats.safety_rate, 2));
    row.push_back(Table::num(r.stats.liveness_rate, 2));
    row.push_back(Table::num(r.stats.agreement.mean, 2));
  }
  for (const std::string& key : extras_columns_) {
    const auto it = r.stats.extras.find(key);
    row.push_back(it == r.stats.extras.end() ? "-"
                                             : Table::num(it->second.mean));
  }
  row.push_back(Table::num(r.stats.pool_msg_live_high.max));
  row.push_back(Table::num(r.stats.pool_msg_slots.max));
  row.push_back(Table::num(r.stats.success_rate, 2));
  rows_.push_back(std::move(row));
}

void TableSink::end(const ExperimentSpec& spec) {
  Table table(headers_);
  for (auto& row : rows_) table.add_row(std::move(row));
  if (csv_) {
    table.write_csv(*out_);
  } else {
    if (!spec.title.empty()) *out_ << "\n=== " << spec.title << " ===\n";
    table.print(*out_);
    if (!spec.note.empty()) *out_ << spec.note << "\n";
    *out_ << "reproduce: wcle_cli sweep " << spec.to_string() << "\n";
  }
  out_->flush();
}

void JsonlSink::cell(const CellResult& result) {
  *out_ << to_json(result) << "\n";
  out_->flush();
}

std::string to_json(const CellResult& r) {
  std::ostringstream out;
  out << "{\"cell\":" << r.cell.index << ",\"algorithm\":\""
      << json_escape(r.cell.algorithm) << "\",\"family\":\""
      << json_escape(r.cell.family) << "\",\"requested_n\":"
      << r.cell.requested_n << ",\"n\":" << r.n << ",\"m\":" << r.m
      << ",\"bandwidth\":\"" << json_escape(r.cell.bandwidth)
      << "\",\"drop\":" << json_number(r.cell.drop)
      << ",\"crash\":" << json_number(r.cell.crash)
      << ",\"linkfail\":" << json_number(r.cell.linkfail)
      << ",\"adversary\":\"" << json_escape(r.cell.adversary)
      << "\",\"knobs\":{";
  bool first = true;
  for (const auto& [key, value] : r.cell.knobs) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(key) << "\":\"" << json_escape(value) << "\"";
  }
  out << "},\"stats\":" << to_json(r.stats) << "}";
  return out.str();
}

}  // namespace wcle
