#include "wcle/core/leader_election.hpp"

#include <memory>

#include "wcle/api/algorithm.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "wcle/rw/walk_engine.hpp"
#include "wcle/sim/network.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

namespace {

/// Winner marks travel inside id sets with the top bit set ("appends it to
/// all future messages", Algorithm 2 step 7). Random ids are < n^4 <= 9e18,
/// so the top bit is always free.
constexpr std::uint64_t kWinnerBit = 1ull << 63;

struct Contender {
  NodeId node = 0;
  std::uint32_t length = 1;    ///< current guess t_u
  bool active = true;          ///< still guess-and-doubling
  bool stopped = false;        ///< properties satisfied (or cap-forced)
  bool leader = false;
  bool has_winner = false;     ///< received a winner message
  std::uint64_t distinct = 0;  ///< distinct proxies reported in Round 1
  std::vector<std::uint64_t> i2;  ///< adjacent contenders' random ids
  std::vector<std::uint64_t> i4;  ///< union of I3 sets
};

enum class Stage { kRound1, kRound2, kRound3, kWinner };

void split_marks(const std::vector<std::uint64_t>& ids,
                 std::vector<std::uint64_t>& plain,
                 std::vector<std::uint64_t>& marks) {
  plain.clear();
  marks.clear();
  for (const std::uint64_t id : ids)
    (id & kWinnerBit ? marks : plain).push_back(id);
}

void sorted_union_into(std::vector<std::uint64_t>& dst,
                       const std::vector<std::uint64_t>& src) {
  std::vector<std::uint64_t> merged;
  merged.reserve(dst.size() + src.size());
  std::set_union(dst.begin(), dst.end(), src.begin(), src.end(),
                 std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  dst = std::move(merged);
}

}  // namespace

ElectionResult run_leader_election(const Graph& g,
                                   const ElectionParams& params) {
  const NodeId n = g.node_count();
  if (n < 2)
    throw std::invalid_argument("run_leader_election: need n >= 2");
  if (!g.is_connected())
    throw std::invalid_argument("run_leader_election: graph must be connected");

  ElectionResult res;
  Rng root(params.seed);
  Rng id_rng = root.fork(0x1d5);
  Rng coin_rng = root.fork(0xc01);
  Rng walk_rng = root.fork(0x3a1);

  // Algorithm 1: random ids from [1, n^4]; contenders with prob c1 log n / n.
  std::vector<std::uint64_t> rid(n);
  const std::uint64_t space = params.id_space(n);
  for (NodeId v = 0; v < n; ++v) rid[v] = id_rng.next_in(1, space);

  const double pc = params.contender_probability(n);
  std::vector<NodeId> contender_nodes;
  for (NodeId v = 0; v < n; ++v)
    if (coin_rng.next_bool(pc)) contender_nodes.push_back(v);
  res.contenders = contender_nodes;
  if (contender_nodes.empty()) return res;  // fails; probability n^{-c1}

  Network net(g, congest_config_for(params, n));
  // Report the contender set before the first round so the "contenders"
  // adversary can target exactly these nodes when its crash batch fires.
  for (const NodeId v : contender_nodes) net.note_contender(v);
  WalkEngine engine(g, net, walk_rng,
                    {params.lazy_walks, params.coalesce_tokens});

  // Lookup-only contender table: iteration always runs over the sorted
  // contender_nodes vector, never over the map, so hash order cannot reach
  // the event order or any RNG draw.
  std::unordered_map<NodeId, Contender> state;
  for (const NodeId v : contender_nodes) {
    Contender c;
    c.node = v;
    c.length = params.initial_length;
    state.emplace(v, std::move(c));
  }

  const std::uint64_t walks = params.walk_count(n);
  const std::uint64_t need_intersect = params.intersection_threshold(n);
  const std::uint64_t need_distinct =
      std::min<std::uint64_t>(params.distinct_threshold(n), walks);
  const std::uint32_t max_len = params.effective_max_length(n);

  std::vector<char> winner_at(n, 0);            // node-level winner knowledge
  std::vector<std::uint64_t> winner_mark_at(n, 0);
  // Lookup-only (find/operator[] by proxy id, never iterated); the I3 sets
  // it stores are kept sorted by sorted_union_into, so payload order is
  // deterministic too.
  std::unordered_map<NodeId, std::vector<std::uint64_t>> proxy_i3;

  Stage stage = Stage::kRound1;

  // Uniform event reactor: captures stage results and runs the winner cascade
  // (steps 5-7 of Algorithm 2) in whatever stage a winner mark shows up.
  std::function<void(std::vector<WalkEvent>)> process_events =
      [&](std::vector<WalkEvent> initial) {
        std::deque<WalkEvent> q(std::make_move_iterator(initial.begin()),
                                std::make_move_iterator(initial.end()));
        auto enqueue = [&](std::vector<WalkEvent> more) {
          for (WalkEvent& e : more) q.push_back(std::move(e));
        };
        // Step 6: the first time any node learns of a winner it notifies
        // every contender it is a proxy for (unicast up their trails).
        auto node_learns_winner = [&](NodeId node,
                                      const std::vector<std::uint64_t>& marks) {
          if (winner_at[node]) return;
          winner_at[node] = 1;
          winner_mark_at[node] = marks.front();
          std::vector<NodeId> origins;
          for (const auto& [x, cnt] : engine.registrations(node))
            origins.push_back(x);
          std::sort(origins.begin(), origins.end());
          for (const NodeId x : origins)
            enqueue(engine.begin_unicast_up(node, x, marks));
        };
        // Step 7: the first time a contender learns of a winner it forwards
        // the mark to all its proxies (and appends it to future messages).
        auto contender_learns_winner =
            [&](Contender& c, const std::vector<std::uint64_t>& marks) {
              node_learns_winner(c.node, marks);
              if (c.has_winner) return;
              c.has_winner = true;
              enqueue(engine.begin_flood_down(c.node, marks));
            };

        std::vector<std::uint64_t> plain, marks;
        while (!q.empty()) {
          WalkEvent ev = std::move(q.front());
          q.pop_front();
          // Crash-stop: a dead node takes no local steps. The transport
          // already suppresses its traffic; this guard stops the *local*
          // completions (e.g. a contender whose walks all stayed home).
          if (!net.node_up(ev.node)) continue;
          switch (ev.kind) {
            case WalkEvent::Kind::kConvergecastDone: {
              Contender& c = state.at(ev.origin);
              split_marks(ev.reply.ids, plain, marks);
              if (stage == Stage::kRound1) {
                c.i2 = plain;
                c.distinct = ev.reply.distinct_proxies;
              } else if (stage == Stage::kRound3) {
                c.i4 = plain;
              }
              if (!marks.empty()) contender_learns_winner(c, marks);
              break;
            }
            case WalkEvent::Kind::kFloodAtProxy: {
              split_marks(ev.ids, plain, marks);
              if (stage == Stage::kRound2 && !plain.empty())
                sorted_union_into(proxy_i3[ev.node], plain);
              if (!marks.empty()) node_learns_winner(ev.node, marks);
              break;
            }
            case WalkEvent::Kind::kUnicastAtOrigin: {
              Contender& c = state.at(ev.origin);
              split_marks(ev.ids, plain, marks);
              if (!marks.empty()) contender_learns_winner(c, marks);
              break;
            }
          }
        }
      };

  auto pump_network = [&]() {
    net.run_until_idle([&](const Delivery& d) {
      assert(WalkEngine::owns_tag(d.msg.tag));
      process_events(engine.handle(d));
    });
  };

  // Paper-schedule mode: idle-step the network to the sub-phase boundary
  // (messages are unaffected; only the clock advances, exactly as nodes
  // sleeping out the congestion pad would).
  auto pad_to = [&](std::uint64_t absolute_round) {
    if (!params.paper_schedule) return;
    while (net.round() < absolute_round) net.step();
  };

  // Round-1/Round-3 proxy payload builders.
  const ProxyPayloadFn round1_payload = [&](NodeId proxy, NodeId origin,
                                            std::uint64_t units) {
    ReplyPayload p;
    p.proxy_nodes = 1;
    p.distinct_proxies = (units == 1) ? 1 : 0;
    for (const auto& [x, cnt] : engine.registrations(proxy))
      if (x != origin) p.add_id(rid[x]);
    if (winner_at[proxy]) p.add_id(winner_mark_at[proxy]);
    return p;
  };
  const ProxyPayloadFn round3_payload = [&](NodeId proxy, NodeId /*origin*/,
                                            std::uint64_t /*units*/) {
    ReplyPayload p;
    const auto it = proxy_i3.find(proxy);
    if (it != proxy_i3.end()) p.ids = it->second;
    if (winner_at[proxy]) p.add_id(winner_mark_at[proxy]);
    return p;
  };

  std::uint64_t stopped_count = 0;
  bool any_active = true;
  while (any_active && res.phases < params.max_phases) {
    res.phases += 1;
    std::vector<NodeId> walkers;
    std::uint32_t phase_len = 0;
    for (const NodeId v : contender_nodes) {
      Contender& c = state.at(v);
      // Crash-stop: a dead contender leaves the race (it neither walks nor
      // decides; its proxies keep their registrations but nobody asks).
      if (c.active && !net.node_up(v)) c.active = false;
      if (c.active) {
        walkers.push_back(v);
        phase_len = std::max(phase_len, c.length);
      }
    }
    if (walkers.empty()) break;  // every remaining contender crashed
    const Metrics before = net.metrics();
    const std::uint64_t phase_start = net.round();
    const std::uint64_t T = params.scheduled_T(n, phase_len);
    // Timeline: one guess-and-double phase begins, walks of length phase_len.
    net.note_phase("walk_phase", phase_len);

    // Walk stage: all active contenders run their parallel walks.
    std::vector<WalkOrder> orders;
    orders.reserve(walkers.size());
    for (const NodeId v : walkers)
      orders.push_back({v, walks, state.at(v).length});
    engine.run_walk_stage(orders);
    pad_to(phase_start + T);

    // Round 1: proxies report d and I1 back along the trails.
    stage = Stage::kRound1;
    for (const NodeId v : walkers) {
      state.at(v).i2.clear();
      state.at(v).i4.clear();
      state.at(v).distinct = 0;
    }
    proxy_i3.clear();
    process_events(engine.begin_convergecast(walkers, round1_payload));
    pump_network();
    pad_to(phase_start + 2 * T);

    // Round 2: contenders flood I2 (plus their own id and any winner mark).
    stage = Stage::kRound2;
    for (const NodeId v : walkers) {
      Contender& c = state.at(v);
      std::vector<std::uint64_t> payload = c.i2;
      payload.push_back(rid[v]);
      std::sort(payload.begin(), payload.end());
      if (c.has_winner) payload.push_back(winner_mark_at[v]);
      process_events(engine.begin_flood_down(v, std::move(payload)));
    }
    pump_network();
    pad_to(phase_start + 3 * T);

    // Round 3: proxies report I3 = union of received I2 sets.
    stage = Stage::kRound3;
    process_events(engine.begin_convergecast(walkers, round3_payload));
    pump_network();
    pad_to(phase_start + 4 * T);

    // Stopping decision + winner rule (steps 4-5).
    stage = Stage::kWinner;
    std::vector<NodeId> new_leaders;
    for (const NodeId v : walkers) {
      Contender& c = state.at(v);
      if (!net.node_up(v)) {  // crashed mid-phase: no stopping decision
        c.active = false;
        continue;
      }
      const std::uint64_t adjacent = c.i2.size();
      const bool properties_met =
          adjacent >= need_intersect && c.distinct >= need_distinct;
      const bool cap_forced = !properties_met && 2ull * c.length > max_len;
      if (!properties_met && !cap_forced) {
        c.length *= 2;
        continue;
      }
      c.active = false;
      c.stopped = true;
      ++stopped_count;
      if (cap_forced) res.hit_phase_cap = true;
      std::uint64_t max_known = 0;
      for (const std::uint64_t id : c.i4)
        if (id != rid[v]) max_known = std::max(max_known, id);
      if (!c.has_winner && rid[v] > max_known) {
        c.leader = true;
        new_leaders.push_back(v);
      }
    }

    // Winner stage: leaders notify proxies; cascade runs to quiescence
    // (the paper's 2T wait).
    for (const NodeId v : new_leaders) {
      winner_at[v] = 1;
      winner_mark_at[v] = rid[v] | kWinnerBit;
      state.at(v).has_winner = true;
      net.note_phase("winner_declared", v);
      process_events(
          engine.begin_flood_down(v, {rid[v] | kWinnerBit}));
    }
    pump_network();
    pad_to(phase_start + 6 * T);  // the paper's 2T winner-propagation wait

    PhaseStats ps;
    ps.length = phase_len;
    ps.active = walkers.size();
    ps.stopped_after = stopped_count;
    ps.metrics = net.metrics().since(before);
    res.phase_stats.push_back(ps);
    res.final_length = std::max(res.final_length, phase_len);
    res.scheduled_rounds += 6 * params.scheduled_T(n, phase_len);

    any_active = false;
    for (const NodeId v : contender_nodes)
      if (state.at(v).active) any_active = true;
  }
  if (any_active) res.hit_phase_cap = true;

  for (const NodeId v : contender_nodes) {
    if (state.at(v).leader) {
      res.leaders.push_back(v);
      if (res.leader_random_id == 0) res.leader_random_id = rid[v];
    }
  }
  net.note_phase("election_done", res.leaders.size());
  res.totals = net.metrics();
  res.faults = net.fault_outcome();
  res.faults.hit_round_cap = res.hit_phase_cap;
  return res;
}

namespace {

class ElectionAlgorithm final : public Algorithm {
 public:
  std::string name() const override { return "election"; }
  std::string describe() const override {
    return "the paper's implicit election: guess-and-double random walks, no "
           "knowledge of tmix (Algorithms 1+2, Theorem 13)";
  }
  Kind kind() const override { return Kind::kElection; }
  RunResult run(const Graph& g, const RunOptions& options) const override {
    const ElectionResult r = run_leader_election(g, options.params);
    RunResult out;
    out.algorithm = name();
    out.leaders = r.leaders;
    out.rounds = r.totals.rounds;
    out.totals = r.totals;
    out.success = r.success();
    out.faults = r.faults;
    out.extras["contenders"] = static_cast<double>(r.contenders.size());
    out.extras["phases"] = static_cast<double>(r.phases);
    out.extras["final_length"] = static_cast<double>(r.final_length);
    out.extras["scheduled_rounds"] = static_cast<double>(r.scheduled_rounds);
    // Per-trial Lemma 12 check: measured rounds must fit inside the paper's
    // schedule. Kept paired here because aggregated summaries (rounds.max vs
    // scheduled_rounds.min) cannot compare across trials.
    out.extras["schedule_slack"] = static_cast<double>(r.scheduled_rounds) -
                                   static_cast<double>(r.totals.rounds);
    out.extras["hit_phase_cap"] = r.hit_phase_cap ? 1.0 : 0.0;
    return out;
  }
};

}  // namespace

std::unique_ptr<Algorithm> make_election_algorithm() {
  return std::make_unique<ElectionAlgorithm>();
}

}  // namespace wcle
