#include "wcle/core/params.hpp"

#include <algorithm>
#include <cmath>

#include "wcle/sim/network.hpp"

namespace wcle {

double ElectionParams::log2_n(NodeId n) const {
  return std::log2(std::max<double>(2.0, static_cast<double>(n)));
}

double ElectionParams::contender_probability(NodeId n) const {
  return std::min(1.0, c1 * log2_n(n) / static_cast<double>(n));
}

std::uint64_t ElectionParams::walk_count(NodeId n) const {
  const double w = c2 * std::sqrt(static_cast<double>(n) * log2_n(n));
  return static_cast<std::uint64_t>(std::ceil(w));
}

std::uint64_t ElectionParams::intersection_threshold(NodeId n) const {
  // Paper: (3/4) c1 log n, valid once Lemma 1's Chernoff concentration has
  // kicked in ("sufficiently large c1", large n). At simulable sizes the
  // contender count X ~ Binomial(n, c1 log n / n) fluctuates by several
  // sigma, so an uncapped threshold can exceed X-1 and make stopping
  // impossible. Nodes know n and c1, so they can cap the threshold at a
  // 3-sigma lower quantile of X (minus themselves) — a finite-size
  // correction that converges to the paper's constant as n grows.
  const double mu = c1 * log2_n(n);
  const double p = contender_probability(n);
  const double sigma = std::sqrt(mu * (1.0 - p));
  const double quantile = std::floor(mu - 3.0 * sigma) - 1.0;
  const double paper = std::ceil(0.75 * mu);
  const double tau = std::max(1.0, std::min(paper, quantile));
  return static_cast<std::uint64_t>(tau);
}

std::uint64_t ElectionParams::distinct_threshold(NodeId n) const {
  // The paper's asymptotic threshold is (c2/2) sqrt(n log n) = walks/2,
  // assuming proxy collisions are negligible (walks << n). At simulable n the
  // walk count is a sizable fraction of n, so we use half the *exact*
  // expected number of distinct proxies under the stationary distribution,
  // E[distinct] = w (1 - 1/n)^{w-1}, which converges to walks/2 as n grows.
  const double w = static_cast<double>(walk_count(n));
  const double expected =
      w * std::pow(1.0 - 1.0 / static_cast<double>(n), w - 1.0);
  return static_cast<std::uint64_t>(std::ceil(0.5 * expected));
}

std::uint32_t ElectionParams::effective_max_length(NodeId n) const {
  if (max_length != 0) return max_length;
  const double cap = 8.0 * static_cast<double>(n) * static_cast<double>(n);
  return static_cast<std::uint32_t>(
      std::min(cap, static_cast<double>(1u << 24)));
}

std::uint64_t ElectionParams::scheduled_T(NodeId n, std::uint32_t t) const {
  const double lg = log2_n(n);
  return static_cast<std::uint64_t>(
      std::ceil((25.0 / 16.0) * c1 * static_cast<double>(t) * lg * lg));
}

std::uint64_t ElectionParams::id_space(NodeId n) const {
  const double space =
      std::pow(static_cast<double>(std::max<NodeId>(n, 2)), 4.0);
  const double cap = 9.0e18;  // stay within uint64
  return static_cast<std::uint64_t>(std::min(space, cap));
}

CongestConfig congest_config_for(const ElectionParams& params, NodeId n) {
  CongestConfig cfg = params.wide_messages ? CongestConfig::wide(n)
                                           : CongestConfig::standard(n);
  if (params.bandwidth_bits != 0) cfg.bandwidth_bits = params.bandwidth_bits;
  cfg.drop_probability = params.drop_probability;
  // Salted so the drop stream is independent of the id/coin/walk streams
  // forked from the same seed.
  cfg.drop_seed = params.seed ^ 0xD209D5EEDull;
  cfg.faults = params.faults;
  // The fault stream gets its own salt; an explicit faults.seed survives so
  // composed protocols (explicit election = election + broadcast, which run
  // on different sub-seeds) can share one set of victims.
  if (cfg.faults.seed == 0) cfg.faults.seed = params.seed ^ 0xFA017C4A5Dull;
  cfg.trace = params.trace;
  cfg.trace_every = params.trace_every;
  cfg.trace_walks = params.trace_walks;
  cfg.shards = params.shards;
  return cfg;
}

}  // namespace wcle
