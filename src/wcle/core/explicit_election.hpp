// Explicit leader election (Corollary 14): implicit election followed by a
// push-pull broadcast of the leader's id. The result keeps the two cost
// components separate because the paper's headline observation is that the
// broadcast — not the election — dominates the explicit variant's messages
// on well-connected graphs.
#pragma once

#include <memory>

// wcle-lint: layering-ok(Corollary 14 composes the push-pull baseline)
#include "wcle/baselines/push_pull.hpp"
#include "wcle/core/leader_election.hpp"

namespace wcle {

struct ExplicitElectionResult {
  ElectionResult election;    ///< the implicit stage
  BroadcastResult broadcast;  ///< leader-id dissemination
  bool success = false;       ///< exactly one leader and everyone informed

  std::uint64_t total_congest_messages() const {
    return election.totals.congest_messages + broadcast.totals.congest_messages;
  }
  std::uint64_t total_rounds() const {
    return election.totals.rounds + broadcast.rounds;
  }
};

/// `broadcast_max_rounds` caps the push-pull stage (0 = its generous
/// default); under faults an unreachable survivor would otherwise spin the
/// full default cap. Both stages share one fault universe: the broadcast
/// reuses the election's fault seed, so the same nodes are dead in both.
ExplicitElectionResult run_explicit_election(
    const Graph& g, const ElectionParams& params,
    std::uint64_t broadcast_max_rounds = 0);

class Algorithm;

/// Factory for the `explicit_election` registry adapter (see
/// wcle/api/registry.hpp).
std::unique_ptr<Algorithm> make_explicit_election_algorithm();

}  // namespace wcle
