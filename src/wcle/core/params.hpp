// Tunable constants of the leader-election algorithm (Section 3). The paper
// leaves c1 ("sufficiently large"), c2 (>= 2) and the congestion padding as
// constants; they are exposed here so experiments can ablate them. All
// logarithms are base 2.
#pragma once

#include <cstdint>

#include "wcle/fault/plan.hpp"
#include "wcle/graph/graph.hpp"

namespace wcle {

class TraceRecorder;

struct ElectionParams {
  /// Contender sampling rate multiplier: Pr[contender] = c1 * log2(n) / n.
  double c1 = 4.0;
  /// Walk-count multiplier: each contender runs ceil(c2 * sqrt(n log2 n))
  /// parallel walks. The paper requires c2 >= 2.
  double c2 = 2.0;
  /// First guess for the walk length t_u.
  std::uint32_t initial_length = 1;
  /// Cap on guess-and-double iterations (engineering guard; the algorithm
  /// stops by t_u = O(tmix) w.h.p. long before this).
  std::uint32_t max_phases = 30;
  /// Cap on t_u (0 = choose 8*n^2 clamped to 2^24, enough for any connected
  /// graph since tmix = O(n^2 log n) in the worst case at our scales).
  std::uint32_t max_length = 0;
  /// Use the O(log^3 n)-bit message regime of Lemma 12's second bound.
  bool wide_messages = false;
  /// Custom per-edge bandwidth in bits; 0 = derive from the regime
  /// (standard, or wide when wide_messages is set). Lets sweeps chart the
  /// Lemma 12 bandwidth axis beyond the two named regimes.
  std::uint32_t bandwidth_bits = 0;
  /// Fault axis: probability that a fully-transmitted CONGEST message is
  /// lost instead of delivered (seeded from `seed`, so faulty runs stay
  /// reproducible). 0 = the paper's reliable model.
  double drop_probability = 0.0;
  /// Structured fault axis: crash-stop schedule, link failures, churn, and
  /// the adversary strategy (fault/plan.hpp). Like drop_probability this
  /// rides into CongestConfig via congest_config_for, so every protocol
  /// funnels through one fault model; faults.seed = 0 derives the fault
  /// stream from `seed`.
  FaultPlan faults;
  /// Ablation (DESIGN.md §5 item 4): lazy walks (paper) vs non-lazy. Non-lazy
  /// walks carry a parity trap on bipartite graphs and break stopping there.
  bool lazy_walks = true;
  /// Ablation (DESIGN.md §5 item 1): token coalescing (paper) vs naive
  /// per-walk tokens; changes message accounting only.
  bool coalesce_tokens = true;
  /// Execute the paper's literal lockstep schedule: every sub-phase is padded
  /// to its full congestion-safe duration (walk: T, exchanges: 3T, winner
  /// wait: 2T, T = (25/16) c1 t_u log^2 n). Message counts are unchanged;
  /// measured rounds become exactly the scheduled bound. Default false: run
  /// each sub-phase to quiescence and *assert* it fits inside T.
  bool paper_schedule = false;
  /// Opt-in per-round event recorder (trace/recorder.hpp); rides into
  /// CongestConfig via congest_config_for so every Network a protocol (or a
  /// composition of protocols) drives appends to one timeline. Null = off.
  /// Purely observational — never changes results.
  TraceRecorder* trace = nullptr;
  /// Sampled tracing: record every K-th round row (events are always kept),
  /// making traced large-scale sweeps cheap. 1 = record every round. Rides
  /// into CongestConfig::trace_every via congest_config_for; purely
  /// observational like `trace` itself.
  std::uint32_t trace_every = 1;
  /// Per-walk token tracing (schema v2): record a walk_hop for every
  /// delivered walk-token message whose origin id is on the K-grid
  /// (origin % K == 0; K = 1 records every walk). 0 = off (the default).
  /// Rides into CongestConfig::trace_walks via congest_config_for; requires
  /// `trace` to be wired and is purely observational like it.
  std::uint32_t trace_walks = 0;
  /// Worker shards for the round engine (CongestConfig::shards). Results are
  /// bit-identical at any value — only wall time and pool footprint vary —
  /// so this is a performance knob, not an experiment axis. Clamped to
  /// [1, node count] by the transport.
  std::uint32_t shards = 1;
  /// Root seed; all ids, coin flips, and walks derive from it.
  std::uint64_t seed = 1;

  double log2_n(NodeId n) const;
  double contender_probability(NodeId n) const;
  std::uint64_t walk_count(NodeId n) const;
  /// Intersection property threshold: ceil((3/4) c1 log2 n) adjacent others.
  std::uint64_t intersection_threshold(NodeId n) const;
  /// Distinctness property threshold: ceil((c2/2) sqrt(n log2 n)).
  std::uint64_t distinct_threshold(NodeId n) const;
  /// Effective t_u cap (resolves the max_length=0 default).
  std::uint32_t effective_max_length(NodeId n) const;
  /// The paper's congestion-padded sub-phase duration
  /// T = (25/16) c1 t log2^2 n.
  std::uint64_t scheduled_T(NodeId n, std::uint32_t t) const;
  /// Random node ids are drawn uniformly from [1, id_space(n)] ~ n^4.
  std::uint64_t id_space(NodeId n) const;
};

struct CongestConfig;

/// The CONGEST transport configuration one run of any protocol should use:
/// bandwidth from `bandwidth_bits` (custom) or the regime default
/// (wide/standard per `wide_messages`), fault fields from `drop_probability`
/// with the drop stream seeded from `seed`. Every adapter and core protocol
/// funnels through this so the bandwidth and fault axes apply uniformly.
CongestConfig congest_config_for(const ElectionParams& params, NodeId n);

}  // namespace wcle
