// The paper's randomized implicit leader-election algorithm (Algorithms 1+2):
//
//   1. Every node draws a random id from [1, n^4] and becomes a *contender*
//      with probability c1 log n / n (Lemma 1 bounds the contender count).
//   2. Each active contender u runs c2 sqrt(n log n) parallel lazy random
//      walks of its current guess t_u, then exchanges three synchronized
//      rounds with its proxies (walk endpoints):
//        Round 1 (proxies -> u): distinctness booleans d and the sets I1 of
//                 other contenders registered at each proxy;
//        Round 2 (u -> proxies): I2, the union of the I1 sets;
//        Round 3 (proxies -> u): I3, the union of the I2 sets the proxy saw.
//      u stops once the Intersection property (adjacent to >= (3/4) c1 log n
//      other contenders) and the Distinctness property (>= (c2/2) sqrt(n log n)
//      distinct proxies) hold; otherwise it doubles t_u (guess-and-double, so
//      no knowledge of tmix is needed — the paper's key contribution).
//   3. A stopping contender that holds the largest id in I4 (union of the I3
//      sets) and has never seen a winner message elects itself leader and
//      notifies its proxies; proxies notify their contenders, contenders their
//      proxies, and every later message carries the winner mark, which is what
//      makes "at most one leader" hold across phases (Lemmas 7-11).
//
// The implementation runs on the CONGEST transport with real congestion and
// the message-coalescing tricks of Lemma 12 (see rw/walk_engine.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "wcle/core/params.hpp"
#include "wcle/fault/outcome.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/sim/metrics.hpp"

namespace wcle {

/// Per-phase observability for experiments (E2/E6 time decomposition).
struct PhaseStats {
  std::uint32_t length = 0;          ///< t_u of the active contenders
  std::uint64_t active = 0;          ///< contenders walking this phase
  std::uint64_t stopped_after = 0;   ///< cumulative stopped contenders
  Metrics metrics;                   ///< network delta for this phase
};

/// Outcome of one election run.
struct ElectionResult {
  std::vector<NodeId> leaders;     ///< nodes whose flag is raised
  std::vector<NodeId> contenders;  ///< nodes that competed
  std::uint64_t leader_random_id = 0;  ///< random id of the (first) leader
  std::uint32_t final_length = 0;  ///< largest t_u used by any contender
  std::uint64_t phases = 0;
  bool hit_phase_cap = false;      ///< guess-and-double guard triggered
  Metrics totals;                  ///< whole-run network metrics
  FaultOutcome faults;             ///< fault exposure (empty = fault-free)
  std::vector<PhaseStats> phase_stats;
  /// Paper-schedule round bound: sum over phases of 6T, T = O(t_u log^2 n).
  /// Measured totals.rounds must stay below this (asserted in tests).
  std::uint64_t scheduled_rounds = 0;

  bool success() const { return leaders.size() == 1; }
};

/// Runs implicit leader election on `g` (which the nodes know only through
/// ports plus the value n, per the model). Deterministic in params.seed.
ElectionResult run_leader_election(const Graph& g,
                                   const ElectionParams& params);

class Algorithm;

/// Factory for the `election` registry adapter (see wcle/api/registry.hpp).
std::unique_ptr<Algorithm> make_election_algorithm();

}  // namespace wcle
