#include "wcle/core/explicit_election.hpp"

#include <memory>

#include "wcle/api/algorithm.hpp"

#include "wcle/support/bits.hpp"

namespace wcle {

ExplicitElectionResult run_explicit_election(const Graph& g,
                                             const ElectionParams& params) {
  ExplicitElectionResult res;
  res.election = run_leader_election(g, params);
  if (res.election.leaders.empty()) return res;  // nothing to broadcast

  const std::uint32_t leader_id_bits = id_bits(g.node_count());
  ElectionParams bcast_params = params;
  bcast_params.seed = params.seed ^ 0xb40adca57ull;
  res.broadcast = run_push_pull(g, res.election.leaders, leader_id_bits,
                                bcast_params.seed, /*max_rounds=*/0,
                                congest_config_for(bcast_params,
                                                   g.node_count()));
  res.success = res.election.success() && res.broadcast.complete;
  return res;
}

namespace {

class ExplicitElectionAlgorithm final : public Algorithm {
 public:
  std::string name() const override { return "explicit_election"; }
  std::string describe() const override {
    return "implicit election followed by push-pull broadcast of the leader "
           "id (Corollary 14)";
  }
  Kind kind() const override { return Kind::kElection; }
  RunResult run(const Graph& g, const RunOptions& options) const override {
    const ExplicitElectionResult r = run_explicit_election(g, options.params);
    RunResult out;
    out.algorithm = name();
    out.leaders = r.election.leaders;
    out.rounds = r.total_rounds();
    out.totals = r.election.totals;
    out.totals += r.broadcast.totals;
    out.success = r.success;
    out.extras["election_messages"] =
        static_cast<double>(r.election.totals.congest_messages);
    out.extras["broadcast_messages"] =
        static_cast<double>(r.broadcast.totals.congest_messages);
    out.extras["broadcast_rounds"] = static_cast<double>(r.broadcast.rounds);
    out.extras["informed"] = static_cast<double>(r.broadcast.informed);
    out.extras["phases"] = static_cast<double>(r.election.phases);
    return out;
  }
};

}  // namespace

std::unique_ptr<Algorithm> make_explicit_election_algorithm() {
  return std::make_unique<ExplicitElectionAlgorithm>();
}

}  // namespace wcle
