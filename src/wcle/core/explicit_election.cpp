#include "wcle/core/explicit_election.hpp"

#include <memory>

#include "wcle/api/algorithm.hpp"

#include "wcle/support/bits.hpp"
#include "wcle/trace/recorder.hpp"

namespace wcle {

ExplicitElectionResult run_explicit_election(
    const Graph& g, const ElectionParams& params,
    std::uint64_t broadcast_max_rounds) {
  ExplicitElectionResult res;
  res.election = run_leader_election(g, params);
  if (res.election.leaders.empty()) return res;  // nothing to broadcast

  const std::uint32_t leader_id_bits = id_bits(g.node_count());
  ElectionParams bcast_params = params;
  bcast_params.seed = params.seed ^ 0xb40adca57ull;
  // The broadcast runs on a different sub-seed but in the SAME fault
  // universe: reuse the election's fault seed (same link failures) and pin
  // the election's actual crash victims, so even hint-dependent strategies
  // ("contenders", whose picks depend on what the first stage reported)
  // kill the same nodes in both stages — a leader that died stays dead.
  bcast_params.faults.seed =
      congest_config_for(params, g.node_count()).faults.seed;
  bcast_params.faults.pinned_crashes = res.election.faults.crashed;
  // Timeline: the broadcast stage opens a new segment on the same recorder;
  // annotate the stage boundary so traces show where Corollary 14's second
  // cost term begins.
  if (params.trace)
    params.trace->annotate("stage_broadcast", res.election.leaders.front());
  res.broadcast = run_push_pull(g, res.election.leaders, leader_id_bits,
                                bcast_params.seed, broadcast_max_rounds,
                                congest_config_for(bcast_params,
                                                   g.node_count()));
  res.success = res.election.success() && res.broadcast.complete;
  return res;
}

namespace {

class ExplicitElectionAlgorithm final : public Algorithm {
 public:
  std::string name() const override { return "explicit_election"; }
  std::string describe() const override {
    return "implicit election followed by push-pull broadcast of the leader "
           "id (Corollary 14)";
  }
  Kind kind() const override { return Kind::kElection; }
  RunResult run(const Graph& g, const RunOptions& options) const override {
    const ExplicitElectionResult r =
        run_explicit_election(g, options.params, options.max_rounds);
    RunResult out;
    out.algorithm = name();
    out.leaders = r.election.leaders;
    out.rounds = r.total_rounds();
    out.totals = r.election.totals;
    out.totals += r.broadcast.totals;
    out.success = r.success;
    // The election stage's exposure carries the adversary's real victims
    // (contender targeting happens there); the broadcast stage only adds
    // its liveness verdict.
    out.faults = r.election.faults;
    out.faults.hit_round_cap =
        r.election.faults.hit_round_cap || r.broadcast.faults.hit_round_cap;
    out.extras["election_messages"] =
        static_cast<double>(r.election.totals.congest_messages);
    out.extras["broadcast_messages"] =
        static_cast<double>(r.broadcast.totals.congest_messages);
    out.extras["broadcast_rounds"] = static_cast<double>(r.broadcast.rounds);
    out.extras["informed"] = static_cast<double>(r.broadcast.informed);
    out.extras["phases"] = static_cast<double>(r.election.phases);
    return out;
  }
};

}  // namespace

std::unique_ptr<Algorithm> make_explicit_election_algorithm() {
  return std::make_unique<ExplicitElectionAlgorithm>();
}

}  // namespace wcle
