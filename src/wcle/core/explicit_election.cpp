#include "wcle/core/explicit_election.hpp"

#include "wcle/support/bits.hpp"

namespace wcle {

ExplicitElectionResult run_explicit_election(const Graph& g,
                                             const ElectionParams& params) {
  ExplicitElectionResult res;
  res.election = run_leader_election(g, params);
  if (res.election.leaders.empty()) return res;  // nothing to broadcast

  const std::uint32_t leader_id_bits = id_bits(g.node_count());
  res.broadcast = run_push_pull(g, res.election.leaders, leader_id_bits,
                                params.seed ^ 0xb40adca57ull);
  res.success = res.election.success() && res.broadcast.complete;
  return res;
}

}  // namespace wcle
