#include "wcle/analysis/experiment.hpp"

#include <cmath>

#include "wcle/api/registry.hpp"
#include "wcle/graph/spectral.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

ElectionTrialStats run_election_trials(const Graph& g, ElectionParams params,
                                       int trials, std::uint64_t base_seed) {
  RunOptions options;
  options.params = params;
  // threads=1: legacy callers include timed bench loops whose wall-clock
  // numbers must not silently change with core count; the parallel fan-out
  // is opt-in through run_trials directly.
  const TrialStats s =
      run_trials(AlgorithmRegistry::instance().at("election"), g, options,
                 trials, base_seed, /*threads=*/1);
  ElectionTrialStats stats;
  stats.trials = trials;
  stats.success_rate = s.success_rate;
  stats.zero_leader_rate = s.zero_leader_rate;
  stats.multi_leader_rate = s.multi_leader_rate;
  stats.congest_messages = s.congest_messages;
  stats.rounds = s.rounds;
  const auto extra = [&s](const char* key) {
    const auto it = s.extras.find(key);
    return it == s.extras.end() ? Summary{} : it->second;
  };
  stats.scheduled_rounds = extra("scheduled_rounds");
  stats.final_length = extra("final_length");
  stats.phases = extra("phases");
  stats.contenders = extra("contenders");
  return stats;
}

GraphProfile profile_graph(const Graph& g, std::uint32_t mix_samples,
                           std::uint64_t max_t) {
  GraphProfile p;
  p.n = g.node_count();
  p.m = g.edge_count();
  Rng rng(0x9a99);
  p.tmix = mixing_time_estimate(g, mix_samples, rng, max_t);
  const double gap = spectral_gap(g);
  const CheegerBounds cb = cheeger_bounds(gap);
  p.cheeger_lower = cb.lower;
  p.cheeger_upper = cb.upper;
  p.sweep_conductance = conductance_sweep(g);
  return p;
}

double theorem13_message_envelope(std::uint64_t n, std::uint64_t tmix) {
  const double lg = std::log2(std::max<double>(2.0, static_cast<double>(n)));
  return std::sqrt(static_cast<double>(n)) * std::pow(lg, 3.5) *
         static_cast<double>(tmix);
}

double theorem13_time_envelope(std::uint64_t n, std::uint64_t tmix) {
  const double lg = std::log2(std::max<double>(2.0, static_cast<double>(n)));
  return static_cast<double>(tmix) * lg * lg;
}

double theorem15_message_envelope(std::uint64_t n, double phi) {
  return std::sqrt(static_cast<double>(n)) / std::pow(phi, 0.75);
}

}  // namespace wcle
