#include "wcle/analysis/experiment.hpp"

#include <cmath>

#include "wcle/graph/spectral.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

ElectionTrialStats run_election_trials(const Graph& g, ElectionParams params,
                                       int trials, std::uint64_t base_seed) {
  ElectionTrialStats stats;
  stats.trials = trials;
  std::vector<double> msgs, rounds, sched, len, phases, cont;
  int ok = 0, zero = 0, multi = 0;
  for (int t = 0; t < trials; ++t) {
    params.seed = base_seed + static_cast<std::uint64_t>(t);
    const ElectionResult r = run_leader_election(g, params);
    if (r.success())
      ++ok;
    else if (r.leaders.empty())
      ++zero;
    else
      ++multi;
    msgs.push_back(static_cast<double>(r.totals.congest_messages));
    rounds.push_back(static_cast<double>(r.totals.rounds));
    sched.push_back(static_cast<double>(r.scheduled_rounds));
    len.push_back(static_cast<double>(r.final_length));
    phases.push_back(static_cast<double>(r.phases));
    cont.push_back(static_cast<double>(r.contenders.size()));
  }
  const double dn = trials > 0 ? static_cast<double>(trials) : 1.0;
  stats.success_rate = ok / dn;
  stats.zero_leader_rate = zero / dn;
  stats.multi_leader_rate = multi / dn;
  stats.congest_messages = summarize(std::move(msgs));
  stats.rounds = summarize(std::move(rounds));
  stats.scheduled_rounds = summarize(std::move(sched));
  stats.final_length = summarize(std::move(len));
  stats.phases = summarize(std::move(phases));
  stats.contenders = summarize(std::move(cont));
  return stats;
}

GraphProfile profile_graph(const Graph& g, std::uint32_t mix_samples,
                           std::uint64_t max_t) {
  GraphProfile p;
  p.n = g.node_count();
  p.m = g.edge_count();
  Rng rng(0x9a99);
  p.tmix = mixing_time_estimate(g, mix_samples, rng, max_t);
  const double gap = spectral_gap(g);
  const CheegerBounds cb = cheeger_bounds(gap);
  p.cheeger_lower = cb.lower;
  p.cheeger_upper = cb.upper;
  p.sweep_conductance = conductance_sweep(g);
  return p;
}

double theorem13_message_envelope(std::uint64_t n, std::uint64_t tmix) {
  const double lg = std::log2(std::max<double>(2.0, static_cast<double>(n)));
  return std::sqrt(static_cast<double>(n)) * std::pow(lg, 3.5) *
         static_cast<double>(tmix);
}

double theorem13_time_envelope(std::uint64_t n, std::uint64_t tmix) {
  const double lg = std::log2(std::max<double>(2.0, static_cast<double>(n)));
  return static_cast<double>(tmix) * lg * lg;
}

double theorem15_message_envelope(std::uint64_t n, double phi) {
  return std::sqrt(static_cast<double>(n)) / std::pow(phi, 0.75);
}

}  // namespace wcle
