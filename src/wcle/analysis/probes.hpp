// Diagnostic probe algorithms that make the paper's *analysis* experiments
// sweep-shaped: measurements that are not message-passing protocols but that
// the experiment grid still needs to chart as curves over (family, n). Both
// register in the algorithm registry so `run_trials` / the sweep engine can
// drive them with the same seeding and schema as everything else.
//
//   contender_stage — samples Algorithm 1's contender lottery (Lemma 1 /
//                     bench E5): per trial it reports the contender count and
//                     whether it landed in the paper's
//                     [3/4 c1 log n, 5/4 c1 log n] window. success means the
//                     lottery produced at least one contender (the n^{-c1}
//                     total-failure event); Pr[in window] is mean(in_window)
//                     in the extras.
//   graph_profile   — runs profile_graph (tmix estimate + Cheeger bounds +
//                     sweep-cut conductance, bench E8) and reports the
//                     profile in extras; rounds = estimated tmix so the
//                     uniform table's rounds column charts mixing curves.
#pragma once

#include <memory>

namespace wcle {

class Algorithm;

std::unique_ptr<Algorithm> make_contender_stage_algorithm();
std::unique_ptr<Algorithm> make_graph_profile_algorithm();

}  // namespace wcle
