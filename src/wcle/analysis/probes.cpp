#include "wcle/analysis/probes.hpp"

#include <algorithm>
#include <string>

#include "wcle/analysis/experiment.hpp"
#include "wcle/api/algorithm.hpp"
#include "wcle/support/rng.hpp"

namespace wcle {

namespace {

class ContenderStageAlgorithm final : public Algorithm {
 public:
  std::string name() const override { return "contender_stage"; }
  std::string describe() const override {
    return "samples Algorithm 1's contender lottery; success == at least one "
           "contender, mean(in_window) == Pr[Lemma 1's [3/4, 5/4] window]";
  }
  Kind kind() const override { return Kind::kDiagnostic; }
  std::string caveat() const override {
    return "statistical probe, sends no messages";
  }
  bool offline() const override { return true; }
  RunResult run(const Graph& g, const RunOptions& options) const override {
    const NodeId n = g.node_count();
    const double p = options.params.contender_probability(n);
    Rng rng(options.seed());
    std::uint64_t count = 0;
    for (NodeId v = 0; v < n; ++v) count += rng.next_bool(p);

    const double mu = options.params.c1 * options.params.log2_n(n);
    const double x = static_cast<double>(count);
    const bool in_window = x >= 0.75 * mu && x <= 1.25 * mu;

    RunResult out;
    out.algorithm = name();
    // Diagnostic convention: the distinguished node is the probe coordinator.
    out.leaders = {options.source < n ? options.source : 0};
    // success == "the lottery produced at least one contender" (the event
    // whose failure dooms the election, probability n^{-c1}); the window
    // statistic of Lemma 1 travels in extras so a sweep charts
    // Pr[in window] as mean(in_window).
    out.success = count > 0;
    out.extras["contenders"] = x;
    out.extras["expected"] = mu;
    out.extras["in_window"] = in_window ? 1.0 : 0.0;
    out.extras["zero"] = count == 0 ? 1.0 : 0.0;
    return out;
  }
};

class GraphProfileAlgorithm final : public Algorithm {
 public:
  std::string name() const override { return "graph_profile"; }
  std::string describe() const override {
    return "offline graph characterization: tmix estimate, Cheeger bounds, "
           "sweep-cut conductance (the per-row context of every bench)";
  }
  Kind kind() const override { return Kind::kDiagnostic; }
  std::string caveat() const override {
    return "offline analysis, sends no messages";
  }
  bool offline() const override { return true; }
  RunResult run(const Graph& g, const RunOptions& options) const override {
    // probe_budget doubles as the mixing-sample count here (its per-protocol
    // meaning, like `source` for broadcasts); 0 keeps the cheap default.
    const std::uint32_t samples =
        options.probe_budget == 0
            ? 2
            : static_cast<std::uint32_t>(std::min<std::uint64_t>(
                  options.probe_budget, 64));
    const GraphProfile p = profile_graph(g, samples);

    RunResult out;
    out.algorithm = name();
    out.leaders = {options.source < g.node_count() ? options.source : 0};
    out.success = true;
    out.rounds = p.tmix;  // charts mixing curves through the uniform schema
    out.extras["tmix"] = static_cast<double>(p.tmix);
    out.extras["cheeger_lower"] = p.cheeger_lower;
    out.extras["cheeger_upper"] = p.cheeger_upper;
    out.extras["sweep_phi"] = p.sweep_conductance;
    out.extras["edges"] = static_cast<double>(p.m);
    out.extras["t13_msg_envelope"] = theorem13_message_envelope(p.n, p.tmix);
    out.extras["t13_time_envelope"] = theorem13_time_envelope(p.n, p.tmix);
    return out;
  }
};

}  // namespace

std::unique_ptr<Algorithm> make_contender_stage_algorithm() {
  return std::make_unique<ContenderStageAlgorithm>();
}

std::unique_ptr<Algorithm> make_graph_profile_algorithm() {
  return std::make_unique<GraphProfileAlgorithm>();
}

}  // namespace wcle
