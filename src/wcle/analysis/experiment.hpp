// Experiment harness: repeated seeded trials with aggregation, plus the graph
// characterization (tmix, conductance bounds) every bench row reports next to
// measured costs so the paper's shapes can be checked directly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "wcle/api/trials.hpp"
#include "wcle/core/leader_election.hpp"
#include "wcle/core/params.hpp"
#include "wcle/graph/graph.hpp"
#include "wcle/support/stats.hpp"

namespace wcle {

/// Aggregates of repeated election trials on one graph. Legacy schema kept
/// for the core algorithm's callers; new code should prefer the uniform
/// `TrialStats` from run_trials (wcle/api/trials.hpp), of which this is a
/// field-for-field projection.
struct ElectionTrialStats {
  int trials = 0;
  double success_rate = 0.0;   ///< fraction electing exactly one leader
  double zero_leader_rate = 0.0;
  double multi_leader_rate = 0.0;
  Summary congest_messages;
  Summary rounds;
  Summary scheduled_rounds;
  Summary final_length;        ///< stopping t_u
  Summary phases;
  Summary contenders;
};

/// Runs `trials` elections with seeds base_seed+i and aggregates. Implemented
/// as run_trials(registry "election", ...) — one trial engine for every
/// algorithm — with the multi-threaded seed fan-out that engine provides.
ElectionTrialStats run_election_trials(const Graph& g, ElectionParams params,
                                       int trials,
                                       std::uint64_t base_seed = 1000);

/// Graph characterization for bench rows.
struct GraphProfile {
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint64_t tmix = 0;        ///< estimated mixing time (lazy walk)
  double cheeger_lower = 0.0;    ///< spectral lower bound on phi
  double cheeger_upper = 0.0;
  double sweep_conductance = 0.0;  ///< sweep-cut upper bound on phi
};

/// Profiles `g` (spectral gap + sampled mixing time). `mix_samples` point-mass
/// sources are tried; `max_t` caps the mixing-time search.
GraphProfile profile_graph(const Graph& g, std::uint32_t mix_samples = 4,
                           std::uint64_t max_t = 1u << 22);

/// Theoretical message envelope of Theorem 13: sqrt(n) log^{7/2} n * tmix
/// (constant-free; used to normalize measured curves).
double theorem13_message_envelope(std::uint64_t n, std::uint64_t tmix);

/// Theoretical time envelope of Theorem 13: tmix log^2 n.
double theorem13_time_envelope(std::uint64_t n, std::uint64_t tmix);

/// Lower-bound envelope of Theorem 15: sqrt(n) / phi^{3/4}.
double theorem15_message_envelope(std::uint64_t n, double phi);

}  // namespace wcle
