// Minimal dependency-free command-line option parsing for the wcle driver
// binary and examples: `--key=value` / `--key value` / bare flags, with typed
// accessors and defaulting. Kept in the library so it is unit-testable.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace wcle {

/// A parsed --listen=HOST:PORT pair (CliArgs::get_host_port).
struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};

/// Parsed command line: one optional positional command followed by options.
class CliArgs {
 public:
  /// Parses argv[1..). The first token not starting with "--" becomes the
  /// command; later bare tokens are positional arguments.
  static CliArgs parse(int argc, const char* const* argv);

  const std::string& command() const { return command_; }
  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Marks `key` consumed (it is a recognized option) like the getters do.
  bool has(const std::string& key) const;

  /// Typed accessors; return `fallback` when absent. Throw
  /// std::invalid_argument on malformed numeric values — including negative
  /// values passed to get_u64, which std::stoull would silently wrap.
  /// Every lookup marks the key consumed (see unconsumed()).
  std::string get(const std::string& key, const std::string& fallback) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// HOST:PORT accessor (--listen=127.0.0.1:8080). A bare ":8080" or all-
  /// digit "8080" keeps `fallback_host`; a bare "HOST" or "HOST:" keeps
  /// `fallback_port`. Throws std::invalid_argument for an empty or ":"-only
  /// value, a non-numeric port, or a port out of the 16-bit range.
  HostPort get_host_port(const std::string& key,
                         const std::string& fallback_host,
                         std::uint16_t fallback_port) const;

  /// All option keys present on the command line, sorted.
  std::vector<std::string> keys() const;

  /// Keys present on the command line that no accessor ever looked up —
  /// almost always typos. Drivers print these as warnings after dispatch.
  std::vector<std::string> unconsumed() const;

 private:
  std::string command_;
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> options_;
  /// Which keys the caller looked up; mutable so const getters can record.
  mutable std::set<std::string> consumed_;
};

}  // namespace wcle
