#include "wcle/analysis/cli.hpp"

#include <stdexcept>

#include "wcle/support/strict_parse.hpp"

namespace wcle {

CliArgs CliArgs::parse(int argc, const char* const* argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      if (args.command_.empty())
        args.command_ = token;
      else
        args.positionals_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      args.options_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0 &&
               !args.command_.empty()) {
      // `--key value` form (only after a command, so bare flags before the
      // command never swallow it).
      args.options_[body] = argv[++i];
    } else {
      args.options_[body] = "";  // bare flag
    }
  }
  return args;
}

bool CliArgs::has(const std::string& key) const {
  consumed_.insert(key);
  return options_.count(key) > 0;
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  consumed_.insert(key);
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

std::uint64_t CliArgs::get_u64(const std::string& key,
                               std::uint64_t fallback) const {
  consumed_.insert(key);
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  // std::stoull accepts "-1" (also " -1", skipping whitespace) and wraps it
  // to 2^64-1; require the value to lead with a digit so negatives and
  // whitespace-padded negatives are rejected up front.
  if (it->second.empty() || it->second[0] < '0' || it->second[0] > '9')
    throw std::invalid_argument("CliArgs: --" + key +
                                " expects a non-negative integer, got '" +
                                it->second + "'");
  std::size_t used = 0;
  const std::uint64_t v = std::stoull(it->second, &used);
  if (used != it->second.size())
    throw std::invalid_argument("CliArgs: bad integer for --" + key);
  return v;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  consumed_.insert(key);
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  std::size_t used = 0;
  const double v = std::stod(it->second, &used);
  if (used != it->second.size())
    throw std::invalid_argument("CliArgs: bad number for --" + key);
  return v;
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  consumed_.insert(key);
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1")
    return true;
  if (it->second == "false" || it->second == "0") return false;
  throw std::invalid_argument("CliArgs: bad boolean for --" + key);
}

HostPort CliArgs::get_host_port(const std::string& key,
                                const std::string& fallback_host,
                                std::uint16_t fallback_port) const {
  consumed_.insert(key);
  HostPort hp{fallback_host, fallback_port};
  const auto it = options_.find(key);
  if (it == options_.end()) return hp;
  const std::string& value = it->second;
  if (value.empty())
    throw std::invalid_argument("CliArgs: --" + key +
                                " expects HOST:PORT, got an empty value");

  const auto parse_port = [&key](const std::string& text) {
    if (const auto v = strict_u64(text); v && *v <= 65535)
      return static_cast<std::uint16_t>(*v);
    throw std::invalid_argument("CliArgs: --" + key + " port '" + text +
                                "' is not in 0..65535");
  };

  const std::size_t colon = value.find(':');
  if (colon == std::string::npos) {
    // "8080" is a port, anything else is a host (IPv4 hosts contain dots).
    if (value.find_first_not_of("0123456789") == std::string::npos)
      hp.port = parse_port(value);
    else
      hp.host = value;
    return hp;
  }
  const std::string host = value.substr(0, colon);
  const std::string port = value.substr(colon + 1);
  if (host.empty() && port.empty())
    throw std::invalid_argument("CliArgs: --" + key +
                                " expects HOST:PORT, got ':'");
  if (port.find(':') != std::string::npos)
    throw std::invalid_argument("CliArgs: --" + key + "=" + value +
                                " holds more than one ':' (IPv6 literals are "
                                "not supported)");
  if (!host.empty()) hp.host = host;
  if (!port.empty()) hp.port = parse_port(port);
  return hp;
}

std::vector<std::string> CliArgs::keys() const {
  std::vector<std::string> out;
  out.reserve(options_.size());
  for (const auto& [k, v] : options_) out.push_back(k);
  return out;
}

std::vector<std::string> CliArgs::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : options_)
    if (consumed_.count(k) == 0) out.push_back(k);
  return out;
}

}  // namespace wcle
