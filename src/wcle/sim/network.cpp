#include "wcle/sim/network.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "wcle/trace/recorder.hpp"

namespace wcle {

// ---------------------------------------------------------------- IdArena

std::uint32_t IdArena::size_class(std::uint32_t n) noexcept {
  // Smallest c with (1 << c) >= n.
  std::uint32_t c = 0;
  while ((1u << c) < n) ++c;
  return c;
}

// The arena is the payload store of the steady-state transport: once a
// workload's footprint is warm, every alloc() is served from a free list or
// bump space and the heap is never touched (pool_stats() pins this in
// test_dataplane). The suppressions below are the cold-start growth points —
// each one is amortized over the run and unreachable once capacities warm.
// wcle-lint: begin-no-alloc
std::uint64_t* IdArena::alloc(std::uint32_t n) {
  assert(n >= 1);
  ++alloc_calls_;
  ++live_;
  const std::uint32_t cls = size_class(n);
  if (!free_[cls].empty()) {
    std::uint64_t* p = free_[cls].back();
    free_[cls].pop_back();
    return p;
  }
  const std::uint32_t cap = 1u << cls;
  if (cap > kChunkWords) {
    // Oversized payload: a dedicated allocation outside the bump chunks
    // (the cursor must never wander into it while it is live), recycled
    // through its free list until the drain rewind hands it back.
    oversized_.push_back(std::make_unique<std::uint64_t[]>(cap));
    return oversized_.back().get();
  }
  // Bump-allocate; move to the next fixed-size chunk (allocating one if
  // needed) when the current one cannot fit the slot. Skipped tails are
  // reclaimed by the next maybe_reset rewind.
  if (cur_used_ + cap > kChunkWords) {
    ++cur_chunk_;
    cur_used_ = 0;
  }
  if (cur_chunk_ == chunks_.size())
    chunks_.push_back(std::make_unique<std::uint64_t[]>(kChunkWords));
  std::uint64_t* p = chunks_[cur_chunk_].get() + cur_used_;
  cur_used_ += cap;
  return p;
}

void IdArena::release(const std::uint64_t* p, std::uint32_t n) {
  assert(p != nullptr && live_ > 0);
  --live_;
  // wcle-lint: no-alloc-ok(free-list tracks live slots; flat once warm)
  free_[size_class(n)].push_back(const_cast<std::uint64_t*>(p));
  free_dirty_ = true;
}
// wcle-lint: end-no-alloc

void IdArena::maybe_reset() {
  if (live_ != 0) return;
  cur_chunk_ = 0;
  cur_used_ = 0;
  if (free_dirty_) {
    for (auto& list : free_) list.clear();
    free_dirty_ = false;
  }
  // Oversized slots are pathological (a > 2^14-word id list); hand them back
  // to the heap rather than pinning their footprint for the rest of the run.
  if (!oversized_.empty()) oversized_.clear();
}

// ---------------------------------------------------------------- Network

Network::Network(const Graph& g, CongestConfig cfg)
    : g_(&g),
      cfg_(cfg),
      plan_(ShardPlan::make(g.node_count(), cfg.shards)),
      drop_rng_(cfg.drop_seed) {
  if (cfg_.bandwidth_bits == 0)
    throw std::invalid_argument("Network: bandwidth_bits must be >= 1");
  if (cfg_.drop_probability < 0.0 || cfg_.drop_probability > 1.0)
    throw std::invalid_argument("Network: drop_probability must be in [0, 1]");
  if (cfg_.faults.any())
    faults_ = std::make_unique<FaultInjector>(g, cfg_.faults, cfg_.trace);
  if (cfg_.trace) {
    cfg_.trace->set_sample_every(cfg_.trace_every);
    cfg_.trace->set_trace_walks(cfg_.trace_walks);
    cfg_.trace->begin_segment();
  }
  first_lane_ = lane_bases(g);
  lanes_.resize(first_lane_.back());
  lane_src_.resize(lanes_.size());
  for (NodeId v = 0; v < g.node_count(); ++v)
    for (std::uint64_t lane = first_lane_[v]; lane < first_lane_[v + 1];
         ++lane)
      lane_src_[lane] = v;
  shards_.resize(plan_.shards);
  if (plan_.shards > 1)
    executor_ = std::make_unique<ShardExecutor>(plan_.shards);
}

Network::PoolStats Network::shard_pool_stats(std::uint32_t s) const noexcept {
  PoolStats out;
  const Shard& sh = shards_[s];
  out.id_heap_blocks = sh.ids.chunk_count();
  out.id_alloc_calls = sh.ids.alloc_calls();
  out.id_live = sh.ids.live();
  out.msg_slots = sh.msgs.size();
  out.msg_live = sh.msgs.size() - sh.free_msgs.size();
  out.delivery_capacity = 0;  // delivered_ is shared, reported in pool_stats
  return out;
}

Network::PoolStats Network::pool_stats() const noexcept {
  PoolStats s;
  for (std::uint32_t i = 0; i < plan_.shards; ++i) {
    const PoolStats part = shard_pool_stats(i);
    s.id_heap_blocks += part.id_heap_blocks;
    s.id_alloc_calls += part.id_alloc_calls;
    s.id_live += part.id_live;
    s.msg_slots += part.msg_slots;
    s.msg_live += part.msg_live;
  }
  s.delivery_capacity = delivered_.capacity();
  return s;
}

void Network::note_contender(NodeId node) {
  if (faults_) faults_->note_contender(node);
  if (cfg_.trace)
    cfg_.trace->event(metrics_.rounds + 1, TraceEventKind::kContender, node);
}

void Network::note_phase(const char* label, std::uint64_t value) {
  if (cfg_.trace)
    cfg_.trace->event(metrics_.rounds + 1, TraceEventKind::kPhase, value, 0,
                      label);
}

void Network::run_on_shards(const std::function<void(std::uint32_t)>& fn) {
  if (executor_ == nullptr) {
    for (std::uint32_t s = 0; s < plan_.shards; ++s) fn(s);
    return;
  }
  executor_->run(fn);
}

// send()/step() are the zero-allocation data plane (PR 5, sharded in PR 10):
// in steady state a queued message reuses a pooled slot in its shard, its
// payload reuses arena space, and a delivery is a view — no heap traffic per
// message or per delivery. The region makes that property checkable at the
// source level; every suppressed line below is a warm-up-only growth point
// whose flatness pool_stats() proves dynamically.
// wcle-lint: begin-no-alloc
std::uint32_t Network::alloc_msg(Shard& shard) {
  if (!shard.free_msgs.empty()) {
    const std::uint32_t slot = shard.free_msgs.back();
    shard.free_msgs.pop_back();
    return slot;
  }
  shard.msgs.emplace_back();
  return static_cast<std::uint32_t>(shard.msgs.size() - 1);
}

void Network::free_msg(Shard& shard, std::uint32_t slot) {
  // wcle-lint: no-alloc-ok(free-list bounded by pool size)
  shard.free_msgs.push_back(slot);
}

void Network::send(NodeId from, Port port, const Message& msg) {
  assert(from < g_->node_count());
  assert(port < g_->degree(from));
  assert(msg.bits >= 1);
  // Crash-stop: a dead node's sends never happen — no queueing, no
  // bandwidth, just the fault counter.
  if (faults_ && !faults_->node_up(from)) {
    metrics_.crash_dropped_messages += 1;
    if (cfg_.trace) cfg_.trace->on_muted_send(metrics_.rounds + 1);
    return;
  }
  if (cfg_.trace) cfg_.trace->on_send(metrics_.rounds + 1);
  metrics_.logical_messages += 1;
  metrics_.total_bits += msg.bits;
  const std::uint64_t lane = lane_index(from, port);
  Shard& shard = shards_[plan_.shard_of(from)];

  const std::uint32_t slot = alloc_msg(shard);
  QueuedMessage& q = shard.msgs[slot];
  q.a = msg.a;
  q.b = msg.b;
  q.c = msg.c;
  q.d = msg.d;
  q.bits = msg.bits;
  q.tag = msg.tag;
  q.next = kNil;
  q.ids_len = msg.ids.size();
  if (q.ids_len > 0) {
    std::uint64_t* stored = shard.ids.alloc(q.ids_len);
    std::memcpy(stored, msg.ids.data(), q.ids_len * sizeof(std::uint64_t));
    q.ids = stored;
  } else {
    q.ids = nullptr;
  }

  Lane& l = lanes_[lane];
  if (l.tail == kNil)
    l.head = slot;
  else
    shard.msgs[l.tail].next = slot;
  l.tail = slot;
  l.count += 1;
  metrics_.max_edge_backlog =
      std::max<std::uint64_t>(metrics_.max_edge_backlog, l.count);
  if (!l.active) {
    l.active = true;
    // The canonical order under sharding: send() is single-threaded, so
    // this counter totally orders lane activations, and each shard's
    // active list is stamp-ascending by construction.
    l.stamp = ++stamp_counter_;
    // wcle-lint: no-alloc-ok(bounded by directed edges; warms once)
    shard.active.push_back(lane);
    ++shard.active_count;
  }
}

void Network::serve_shard(std::uint32_t s) {
  Shard& sh = shards_[s];
  sh.candidates.clear();
  sh.d_quanta = 0;
  sh.d_crash = 0;
  sh.d_link = 0;
  sh.d_by_tag.fill(0);
  const std::uint32_t B = cfg_.bandwidth_bits;

  // Serve one quantum per backlogged directed edge of this shard. New sends
  // happen strictly between rounds, so iterating a snapshot of the active
  // list is safe; lanes drained this round are compacted out. Everything
  // mutated here is shard-local (this shard's lanes, pool, arena, counters);
  // the graph and the fault tables are read-only during the service stage.
  std::uint64_t write = 0;
  const std::uint64_t count = sh.active.size();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t lane = sh.active[i];
    Lane& l = lanes_[lane];
    if (l.head == kNil) {
      l.active = false;
      --sh.active_count;
      continue;
    }
    QueuedMessage& head = sh.msgs[l.head];
    sh.d_quanta += 1;
    sh.d_by_tag[head.tag] += 1;
    l.served_bits += B;
    if (l.served_bits >= head.bits) {
      // Fully transmitted. The RNG-free fault axes are consulted here, in
      // the worker: an eaten message has already paid its congestion bill,
      // it just never reaches the other endpoint, and it never consumes a
      // drop draw — so eating it shard-locally cannot shift the drop
      // stream. The random-drop axis itself is deferred to the stamp-merged
      // barrier stage, where the draws happen in canonical order.
      const NodeId from = lane_src_[lane];
      const Port port = static_cast<Port>(lane - first_lane_[from]);
      bool eaten = false;
      if (faults_) {
        if (!faults_->link_up(from, port)) {
          sh.d_link += 1;
          eaten = true;
        } else if (!faults_->node_up(from) ||
                   !faults_->node_up(g_->neighbor(from, port))) {
          // Sender died before the transmission completed, or the receiver
          // is down — crash-stop eats the message either way.
          sh.d_crash += 1;
          eaten = true;
        }
      }
      if (!eaten) {
        // Candidate for the barrier merge: scalars are copied (the pool
        // slot is recycled below), the payload pointer stays valid until
        // the merge releases or retires it.
        Candidate c;
        c.stamp = l.stamp;
        c.a = head.a;
        c.b = head.b;
        c.c = head.c;
        c.d = head.d;
        c.ids = head.ids;
        c.ids_len = head.ids_len;
        c.bits = head.bits;
        c.dst = g_->neighbor(from, port);
        c.port = g_->mirror_port(from, port);
        c.shard = s;
        c.tag = head.tag;
        // wcle-lint: no-alloc-ok(capacity bounded by deliveries per round)
        sh.candidates.push_back(c);
      } else if (head.ids_len > 0) {
        sh.ids.release(head.ids, head.ids_len);
      }
      const std::uint32_t served = l.head;
      l.head = head.next;
      if (l.head == kNil) l.tail = kNil;
      l.count -= 1;
      free_msg(sh, served);
      l.served_bits = 0;
    }
    if (l.head == kNil) {
      l.active = false;
      --sh.active_count;
    } else {
      sh.active[write++] = lane;
    }
  }
  // Every live lane has been compacted to [0, write) in stamp order.
  // wcle-lint: no-alloc-ok(shrinks to compacted prefix; never grows)
  sh.active.resize(write);
}

const std::vector<Delivery>& Network::step() {
  delivered_.clear();
  // Views handed out by the previous step are dead now; recycle their
  // payload slots, and rewind each arena whenever it drained — the "reset
  // per round-batch" that keeps one warm footprint for the whole run.
  for (Shard& sh : shards_) {
    if (!sh.retired_ids.empty()) {
      for (const auto& [p, len] : sh.retired_ids) sh.ids.release(p, len);
      sh.retired_ids.clear();
    }
    sh.ids.maybe_reset();
  }
  // Pool gauges (obs): occupancy peaks right here — every send of the
  // inter-step window is queued, nothing has been served yet — so this is
  // where the high-water marks are sampled. Scalar maxes only; the gauges
  // never feed back into service order. Occupancy gauges (live) are
  // shard-invariant; capacity gauges (slots/blocks) sum per-shard pools and
  // legitimately vary with the shard count.
  std::uint64_t msg_live = 0, id_live = 0, msg_slots = 0, id_blocks = 0;
  for (const Shard& sh : shards_) {
    msg_live += sh.msgs.size() - sh.free_msgs.size();
    id_live += sh.ids.live();
    msg_slots += sh.msgs.size();
    id_blocks += sh.ids.chunk_count();
  }
  metrics_.pool_msg_live_high =
      std::max<std::uint64_t>(metrics_.pool_msg_live_high, msg_live);
  metrics_.pool_id_live_high =
      std::max<std::uint64_t>(metrics_.pool_id_live_high, id_live);
  metrics_.pool_msg_slots =
      std::max<std::uint64_t>(metrics_.pool_msg_slots, msg_slots);
  metrics_.pool_id_blocks =
      std::max<std::uint64_t>(metrics_.pool_id_blocks, id_blocks);
  metrics_.rounds += 1;
  // Fault events fire at the start of their round, before any service:
  // crash_round = 1 means the victims never deliver a single message. The
  // injector advances here, sequentially — the shard workers below only
  // read its tables.
  // wcle-lint: no-alloc-transitive-ok(fault rounds sit outside the contract)
  if (faults_) faults_->advance(metrics_.rounds);
  // Tracing snapshots the counters it attributes per-round so the service
  // loop below stays hook-free: the row is the delta across this step.
  std::uint64_t before_quanta = 0, before_rand = 0, before_crash = 0,
                before_link = 0;
  if (cfg_.trace) {
    before_quanta = metrics_.congest_messages;
    before_rand = metrics_.dropped_messages;
    before_crash = metrics_.crash_dropped_messages;
    before_link = metrics_.link_dropped_messages;
  }

  // Phase A — parallel service: one worker per shard serves its own lanes
  // and emits completion candidates into its fixed inbox buffer.
  if (executor_ == nullptr)
    serve_shard(0);
  else
    // wcle-lint: no-alloc-transitive-ok(fork/join handoff, not per-message)
    executor_->run([this](std::uint32_t s) { serve_shard(s); });

  // Barrier: fold the order-independent per-shard metric deltas (sums).
  for (const Shard& sh : shards_) {
    metrics_.congest_messages += sh.d_quanta;
    metrics_.crash_dropped_messages += sh.d_crash;
    metrics_.link_dropped_messages += sh.d_link;
    if (sh.d_quanta > 0)
      for (std::size_t t = 0; t < sh.d_by_tag.size(); ++t)
        metrics_.congest_messages_by_tag[t] += sh.d_by_tag[t];
  }

  // Phase B — canonical merge: gather every shard's candidates and sort by
  // activation stamp BEFORE any RNG-relevant disposal. Stamps are unique
  // and totally ordered by the sequential send() path, so this reproduces
  // the exact service order the unsharded engine produces — the drop-RNG
  // stream, the delivery order, and every downstream protocol decision are
  // bit-identical at any shard count.
  merged_.clear();
  for (const Shard& sh : shards_)
    for (const Candidate& c : sh.candidates)
      // wcle-lint: no-alloc-ok(capacity pinned flat by the pool_stats test)
      merged_.push_back(c);
  std::sort(merged_.begin(), merged_.end(),
            [](const Candidate& x, const Candidate& y) {
              return x.stamp < y.stamp;
            });
  for (const Candidate& c : merged_) {
    bool eaten = false;
    if (cfg_.drop_probability > 0.0 &&
        drop_rng_.next_bool(cfg_.drop_probability)) {
      metrics_.dropped_messages += 1;
      eaten = true;
    }
    if (!eaten) {
      Delivery d;
      d.dst = c.dst;
      d.port = c.port;
      d.msg.tag = c.tag;
      d.msg.a = c.a;
      d.msg.b = c.b;
      d.msg.c = c.c;
      d.msg.d = c.d;
      d.msg.bits = c.bits;
      d.msg.ids = IdSpan(c.ids, c.ids_len);
      // wcle-lint: no-alloc-ok(capacity pinned flat by the pool_stats test)
      delivered_.push_back(d);
      // The view must outlive this step; release the payload next step.
      if (c.ids_len > 0)
        // wcle-lint: no-alloc-ok(bounded by deliveries per round; warms once)
        shards_[c.shard].retired_ids.push_back({c.ids, c.ids_len});
    } else if (c.ids_len > 0) {
      shards_[c.shard].ids.release(c.ids, c.ids_len);
    }
  }
  std::uint64_t backlog = 0;
  for (const Shard& sh : shards_) backlog += sh.active_count;
  if (cfg_.trace)
    cfg_.trace->on_round(
        metrics_.rounds,
        static_cast<std::uint32_t>(metrics_.congest_messages - before_quanta),
        static_cast<std::uint32_t>(delivered_.size()),
        static_cast<std::uint32_t>(metrics_.dropped_messages - before_rand),
        static_cast<std::uint32_t>(metrics_.crash_dropped_messages -
                                   before_crash),
        static_cast<std::uint32_t>(metrics_.link_dropped_messages -
                                   before_link),
        static_cast<std::uint32_t>(backlog));
  return delivered_;
}
// wcle-lint: end-no-alloc

}  // namespace wcle
