#include "wcle/sim/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "wcle/trace/recorder.hpp"

namespace wcle {

Network::Network(const Graph& g, CongestConfig cfg)
    : g_(&g), cfg_(cfg), drop_rng_(cfg.drop_seed) {
  if (cfg_.bandwidth_bits == 0)
    throw std::invalid_argument("Network: bandwidth_bits must be >= 1");
  if (cfg_.drop_probability < 0.0 || cfg_.drop_probability > 1.0)
    throw std::invalid_argument("Network: drop_probability must be in [0, 1]");
  if (cfg_.faults.any())
    faults_ = std::make_unique<FaultInjector>(g, cfg_.faults, cfg_.trace);
  if (cfg_.trace) cfg_.trace->begin_segment();
  first_lane_ = lane_bases(g);
  lanes_.resize(first_lane_.back());
}

void Network::note_contender(NodeId node) {
  if (faults_) faults_->note_contender(node);
  if (cfg_.trace)
    cfg_.trace->event(metrics_.rounds + 1, TraceEventKind::kContender, node);
}

void Network::note_phase(const char* label, std::uint64_t value) {
  if (cfg_.trace)
    cfg_.trace->event(metrics_.rounds + 1, TraceEventKind::kPhase, value, 0,
                      label);
}

void Network::send(NodeId from, Port port, Message msg) {
  assert(from < g_->node_count());
  assert(port < g_->degree(from));
  assert(msg.bits >= 1);
  // Crash-stop: a dead node's sends never happen — no queueing, no
  // bandwidth, just the fault counter.
  if (faults_ && !faults_->node_up(from)) {
    metrics_.crash_dropped_messages += 1;
    if (cfg_.trace) cfg_.trace->on_muted_send(metrics_.rounds + 1);
    return;
  }
  if (cfg_.trace) cfg_.trace->on_send(metrics_.rounds + 1);
  metrics_.logical_messages += 1;
  metrics_.total_bits += msg.bits;
  const std::uint64_t lane = lane_index(from, port);
  Lane& l = lanes_[lane];
  l.fifo.push_back(std::move(msg));
  metrics_.max_edge_backlog =
      std::max<std::uint64_t>(metrics_.max_edge_backlog, l.fifo.size());
  if (!l.active) {
    l.active = true;
    active_.push_back(lane);
    ++active_count_;
  }
}

const std::vector<Delivery>& Network::step() {
  delivered_.clear();
  metrics_.rounds += 1;
  // Fault events fire at the start of their round, before any service:
  // crash_round = 1 means the victims never deliver a single message.
  if (faults_) faults_->advance(metrics_.rounds);
  // Tracing snapshots the counters it attributes per-round so the service
  // loop below stays hook-free: the row is the delta across this step.
  std::uint64_t before_quanta = 0, before_rand = 0, before_crash = 0,
                before_link = 0;
  if (cfg_.trace) {
    before_quanta = metrics_.congest_messages;
    before_rand = metrics_.dropped_messages;
    before_crash = metrics_.crash_dropped_messages;
    before_link = metrics_.link_dropped_messages;
  }
  const std::uint32_t B = cfg_.bandwidth_bits;

  // Serve one quantum per backlogged directed edge. New sends triggered by the
  // caller happen strictly after step() returns, so iterating a snapshot of
  // the active list is safe; lanes drained this round are compacted out.
  std::uint64_t write = 0;
  const std::uint64_t count = active_.size();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t lane = active_[i];
    Lane& l = lanes_[lane];
    if (l.fifo.empty()) {
      l.active = false;
      --active_count_;
      continue;
    }
    Message& head = l.fifo.front();
    metrics_.congest_messages += 1;
    metrics_.congest_messages_by_tag[head.tag] += 1;
    l.served_bits += B;
    if (l.served_bits >= head.bits) {
      // Fully transmitted. The fault axes are consulted only now: an eaten
      // message has already paid its congestion bill, it just never reaches
      // the other endpoint. Check order is fixed (failed link, crashed
      // endpoint, then the random drop) so the drop stream stays
      // reproducible; the p == 0 guard keeps the reliable model free of Rng
      // draws, bit-identical to the pre-fault implementation.
      // Recover (from, port) from the lane index by binary search on bases.
      const auto it = std::upper_bound(first_lane_.begin(),
                                       first_lane_.end(), lane);
      const NodeId from = static_cast<NodeId>(
          std::distance(first_lane_.begin(), it) - 1);
      const Port port = static_cast<Port>(lane - first_lane_[from]);
      bool eaten = false;
      if (faults_) {
        if (!faults_->link_up(from, port)) {
          metrics_.link_dropped_messages += 1;
          eaten = true;
        } else if (!faults_->node_up(from) ||
                   !faults_->node_up(g_->neighbor(from, port))) {
          // Sender died before the transmission completed, or the receiver
          // is down — crash-stop eats the message either way.
          metrics_.crash_dropped_messages += 1;
          eaten = true;
        }
      }
      if (!eaten && cfg_.drop_probability > 0.0 &&
          drop_rng_.next_bool(cfg_.drop_probability)) {
        metrics_.dropped_messages += 1;
        eaten = true;
      }
      if (!eaten) {
        Delivery d;
        d.dst = g_->neighbor(from, port);
        d.port = g_->mirror_port(from, port);
        d.msg = std::move(head);
        delivered_.push_back(std::move(d));
      }
      l.fifo.pop_front();
      l.served_bits = 0;
    }
    if (l.fifo.empty()) {
      l.active = false;
      --active_count_;
    } else {
      active_[write++] = lane;
    }
  }
  // No sends can interleave with the loop (the caller regains control only
  // after step() returns), so every live lane has been compacted to [0,write).
  active_.resize(write);
  if (cfg_.trace)
    cfg_.trace->on_round(
        metrics_.rounds,
        static_cast<std::uint32_t>(metrics_.congest_messages - before_quanta),
        static_cast<std::uint32_t>(delivered_.size()),
        static_cast<std::uint32_t>(metrics_.dropped_messages - before_rand),
        static_cast<std::uint32_t>(metrics_.crash_dropped_messages -
                                   before_crash),
        static_cast<std::uint32_t>(metrics_.link_dropped_messages -
                                   before_link),
        static_cast<std::uint32_t>(active_count_));
  return delivered_;
}

}  // namespace wcle
