#include "wcle/sim/network.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "wcle/trace/recorder.hpp"

namespace wcle {

// ---------------------------------------------------------------- IdArena

std::uint32_t IdArena::size_class(std::uint32_t n) noexcept {
  // Smallest c with (1 << c) >= n.
  std::uint32_t c = 0;
  while ((1u << c) < n) ++c;
  return c;
}

// The arena is the payload store of the steady-state transport: once a
// workload's footprint is warm, every alloc() is served from a free list or
// bump space and the heap is never touched (pool_stats() pins this in
// test_dataplane). The suppressions below are the cold-start growth points —
// each one is amortized over the run and unreachable once capacities warm.
// wcle-lint: begin-no-alloc
std::uint64_t* IdArena::alloc(std::uint32_t n) {
  assert(n >= 1);
  ++alloc_calls_;
  ++live_;
  const std::uint32_t cls = size_class(n);
  if (!free_[cls].empty()) {
    std::uint64_t* p = free_[cls].back();
    free_[cls].pop_back();
    return p;
  }
  const std::uint32_t cap = 1u << cls;
  if (cap > kChunkWords) {
    // Oversized payload: a dedicated allocation outside the bump chunks
    // (the cursor must never wander into it while it is live), recycled
    // through its free list until the drain rewind hands it back.
    oversized_.push_back(std::make_unique<std::uint64_t[]>(cap));
    return oversized_.back().get();
  }
  // Bump-allocate; move to the next fixed-size chunk (allocating one if
  // needed) when the current one cannot fit the slot. Skipped tails are
  // reclaimed by the next maybe_reset rewind.
  if (cur_used_ + cap > kChunkWords) {
    ++cur_chunk_;
    cur_used_ = 0;
  }
  if (cur_chunk_ == chunks_.size())
    chunks_.push_back(std::make_unique<std::uint64_t[]>(kChunkWords));
  std::uint64_t* p = chunks_[cur_chunk_].get() + cur_used_;
  cur_used_ += cap;
  return p;
}

void IdArena::release(const std::uint64_t* p, std::uint32_t n) {
  assert(p != nullptr && live_ > 0);
  --live_;
  // wcle-lint: no-alloc-ok(free-list tracks live slots; flat once warm)
  free_[size_class(n)].push_back(const_cast<std::uint64_t*>(p));
  free_dirty_ = true;
}
// wcle-lint: end-no-alloc

void IdArena::maybe_reset() {
  if (live_ != 0) return;
  cur_chunk_ = 0;
  cur_used_ = 0;
  if (free_dirty_) {
    for (auto& list : free_) list.clear();
    free_dirty_ = false;
  }
  // Oversized slots are pathological (a > 2^14-word id list); hand them back
  // to the heap rather than pinning their footprint for the rest of the run.
  if (!oversized_.empty()) oversized_.clear();
}

// ---------------------------------------------------------------- Network

Network::Network(const Graph& g, CongestConfig cfg)
    : g_(&g), cfg_(cfg), drop_rng_(cfg.drop_seed) {
  if (cfg_.bandwidth_bits == 0)
    throw std::invalid_argument("Network: bandwidth_bits must be >= 1");
  if (cfg_.drop_probability < 0.0 || cfg_.drop_probability > 1.0)
    throw std::invalid_argument("Network: drop_probability must be in [0, 1]");
  if (cfg_.faults.any())
    faults_ = std::make_unique<FaultInjector>(g, cfg_.faults, cfg_.trace);
  if (cfg_.trace) {
    cfg_.trace->set_sample_every(cfg_.trace_every);
    cfg_.trace->set_trace_walks(cfg_.trace_walks);
    cfg_.trace->begin_segment();
  }
  first_lane_ = lane_bases(g);
  lanes_.resize(first_lane_.back());
  lane_src_.resize(lanes_.size());
  for (NodeId v = 0; v < g.node_count(); ++v)
    for (std::uint64_t lane = first_lane_[v]; lane < first_lane_[v + 1];
         ++lane)
      lane_src_[lane] = v;
}

Network::PoolStats Network::pool_stats() const noexcept {
  PoolStats s;
  s.id_heap_blocks = ids_.chunk_count();
  s.id_alloc_calls = ids_.alloc_calls();
  s.id_live = ids_.live();
  s.msg_slots = msgs_.size();
  s.msg_live = msgs_.size() - free_msgs_.size();
  s.delivery_capacity = delivered_.capacity();
  return s;
}

void Network::note_contender(NodeId node) {
  if (faults_) faults_->note_contender(node);
  if (cfg_.trace)
    cfg_.trace->event(metrics_.rounds + 1, TraceEventKind::kContender, node);
}

void Network::note_phase(const char* label, std::uint64_t value) {
  if (cfg_.trace)
    cfg_.trace->event(metrics_.rounds + 1, TraceEventKind::kPhase, value, 0,
                      label);
}

// send()/step() are the zero-allocation data plane (PR 5): in steady state a
// queued message reuses a pooled slot, its payload reuses arena space, and a
// delivery is a view — no heap traffic per message or per delivery. The
// region makes that property checkable at the source level; every suppressed
// line below is a warm-up-only growth point whose flatness pool_stats()
// proves dynamically.
// wcle-lint: begin-no-alloc
std::uint32_t Network::alloc_msg() {
  if (!free_msgs_.empty()) {
    const std::uint32_t slot = free_msgs_.back();
    free_msgs_.pop_back();
    return slot;
  }
  msgs_.emplace_back();
  return static_cast<std::uint32_t>(msgs_.size() - 1);
}

void Network::free_msg(std::uint32_t slot) {
  // wcle-lint: no-alloc-ok(free-list bounded by pool size)
  free_msgs_.push_back(slot);
}

void Network::send(NodeId from, Port port, const Message& msg) {
  assert(from < g_->node_count());
  assert(port < g_->degree(from));
  assert(msg.bits >= 1);
  // Crash-stop: a dead node's sends never happen — no queueing, no
  // bandwidth, just the fault counter.
  if (faults_ && !faults_->node_up(from)) {
    metrics_.crash_dropped_messages += 1;
    if (cfg_.trace) cfg_.trace->on_muted_send(metrics_.rounds + 1);
    return;
  }
  if (cfg_.trace) cfg_.trace->on_send(metrics_.rounds + 1);
  metrics_.logical_messages += 1;
  metrics_.total_bits += msg.bits;
  const std::uint64_t lane = lane_index(from, port);

  const std::uint32_t slot = alloc_msg();
  QueuedMessage& q = msgs_[slot];
  q.a = msg.a;
  q.b = msg.b;
  q.c = msg.c;
  q.d = msg.d;
  q.bits = msg.bits;
  q.tag = msg.tag;
  q.next = kNil;
  q.ids_len = msg.ids.size();
  if (q.ids_len > 0) {
    std::uint64_t* stored = ids_.alloc(q.ids_len);
    std::memcpy(stored, msg.ids.data(), q.ids_len * sizeof(std::uint64_t));
    q.ids = stored;
  } else {
    q.ids = nullptr;
  }

  Lane& l = lanes_[lane];
  if (l.tail == kNil)
    l.head = slot;
  else
    msgs_[l.tail].next = slot;
  l.tail = slot;
  l.count += 1;
  metrics_.max_edge_backlog =
      std::max<std::uint64_t>(metrics_.max_edge_backlog, l.count);
  if (!l.active) {
    l.active = true;
    // wcle-lint: no-alloc-ok(bounded by directed edges; warms once)
    active_.push_back(lane);
    ++active_count_;
  }
}

const std::vector<Delivery>& Network::step() {
  delivered_.clear();
  // Views handed out by the previous step are dead now; recycle their
  // payload slots, and rewind the arena whenever the network drained — the
  // "reset per round-batch" that keeps one warm footprint for the whole run.
  if (!retired_ids_.empty()) {
    for (const auto& [p, len] : retired_ids_) ids_.release(p, len);
    retired_ids_.clear();
  }
  ids_.maybe_reset();
  // Pool gauges (obs): occupancy peaks right here — every send of the
  // inter-step window is queued, nothing has been served yet — so this is
  // where the high-water marks are sampled. Scalar maxes only; the gauges
  // never feed back into service order.
  metrics_.pool_msg_live_high = std::max<std::uint64_t>(
      metrics_.pool_msg_live_high, msgs_.size() - free_msgs_.size());
  metrics_.pool_id_live_high =
      std::max<std::uint64_t>(metrics_.pool_id_live_high, ids_.live());
  metrics_.pool_msg_slots =
      std::max<std::uint64_t>(metrics_.pool_msg_slots, msgs_.size());
  metrics_.pool_id_blocks =
      std::max<std::uint64_t>(metrics_.pool_id_blocks, ids_.chunk_count());
  metrics_.rounds += 1;
  // Fault events fire at the start of their round, before any service:
  // crash_round = 1 means the victims never deliver a single message.
  // wcle-lint: no-alloc-transitive-ok(fault rounds sit outside the contract)
  if (faults_) faults_->advance(metrics_.rounds);
  // Tracing snapshots the counters it attributes per-round so the service
  // loop below stays hook-free: the row is the delta across this step.
  std::uint64_t before_quanta = 0, before_rand = 0, before_crash = 0,
                before_link = 0;
  if (cfg_.trace) {
    before_quanta = metrics_.congest_messages;
    before_rand = metrics_.dropped_messages;
    before_crash = metrics_.crash_dropped_messages;
    before_link = metrics_.link_dropped_messages;
  }
  const std::uint32_t B = cfg_.bandwidth_bits;

  // Serve one quantum per backlogged directed edge. New sends triggered by the
  // caller happen strictly after step() returns, so iterating a snapshot of
  // the active list is safe; lanes drained this round are compacted out.
  std::uint64_t write = 0;
  const std::uint64_t count = active_.size();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t lane = active_[i];
    Lane& l = lanes_[lane];
    if (l.head == kNil) {
      l.active = false;
      --active_count_;
      continue;
    }
    QueuedMessage& head = msgs_[l.head];
    metrics_.congest_messages += 1;
    metrics_.congest_messages_by_tag[head.tag] += 1;
    l.served_bits += B;
    if (l.served_bits >= head.bits) {
      // Fully transmitted. The fault axes are consulted only now: an eaten
      // message has already paid its congestion bill, it just never reaches
      // the other endpoint. Check order is fixed (failed link, crashed
      // endpoint, then the random drop) so the drop stream stays
      // reproducible; the p == 0 guard keeps the reliable model free of Rng
      // draws, bit-identical to the pre-fault implementation.
      const NodeId from = lane_src_[lane];
      const Port port = static_cast<Port>(lane - first_lane_[from]);
      bool eaten = false;
      if (faults_) {
        if (!faults_->link_up(from, port)) {
          metrics_.link_dropped_messages += 1;
          eaten = true;
        } else if (!faults_->node_up(from) ||
                   !faults_->node_up(g_->neighbor(from, port))) {
          // Sender died before the transmission completed, or the receiver
          // is down — crash-stop eats the message either way.
          metrics_.crash_dropped_messages += 1;
          eaten = true;
        }
      }
      if (!eaten && cfg_.drop_probability > 0.0 &&
          drop_rng_.next_bool(cfg_.drop_probability)) {
        metrics_.dropped_messages += 1;
        eaten = true;
      }
      if (!eaten) {
        Delivery d;
        d.dst = g_->neighbor(from, port);
        d.port = g_->mirror_port(from, port);
        d.msg.tag = head.tag;
        d.msg.a = head.a;
        d.msg.b = head.b;
        d.msg.c = head.c;
        d.msg.d = head.d;
        d.msg.bits = head.bits;
        d.msg.ids = IdSpan(head.ids, head.ids_len);
        // wcle-lint: no-alloc-ok(capacity pinned flat by the pool_stats test)
        delivered_.push_back(d);
        // The view must outlive this step; release the payload next step.
        // wcle-lint: no-alloc-ok(bounded by deliveries per round; warms once)
        if (head.ids_len > 0) retired_ids_.push_back({head.ids, head.ids_len});
      } else if (head.ids_len > 0) {
        ids_.release(head.ids, head.ids_len);
      }
      const std::uint32_t served = l.head;
      l.head = head.next;
      if (l.head == kNil) l.tail = kNil;
      l.count -= 1;
      free_msg(served);
      l.served_bits = 0;
    }
    if (l.head == kNil) {
      l.active = false;
      --active_count_;
    } else {
      active_[write++] = lane;
    }
  }
  // No sends can interleave with the loop (the caller regains control only
  // after step() returns), so every live lane has been compacted to [0,write).
  // wcle-lint: no-alloc-ok(shrinks to compacted prefix; never grows)
  active_.resize(write);
  if (cfg_.trace)
    cfg_.trace->on_round(
        metrics_.rounds,
        static_cast<std::uint32_t>(metrics_.congest_messages - before_quanta),
        static_cast<std::uint32_t>(delivered_.size()),
        static_cast<std::uint32_t>(metrics_.dropped_messages - before_rand),
        static_cast<std::uint32_t>(metrics_.crash_dropped_messages -
                                   before_crash),
        static_cast<std::uint32_t>(metrics_.link_dropped_messages -
                                   before_link),
        static_cast<std::uint32_t>(active_count_));
  return delivered_;
}
// wcle-lint: end-no-alloc

}  // namespace wcle
